#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "server/protocol.h"
#include "server/query_server.h"

namespace hypo {
namespace {

constexpr char kReachProgram[] = R"(
reach(X, Y) <- edge(X, Y).
reach(X, Z) <- edge(X, Y), reach(Y, Z).
edge(a, b).
edge(b, c).
)";

std::unique_ptr<QueryServer> MakeServer(const std::string& engine,
                                        int pool = 2,
                                        const char* program = kReachProgram) {
  ServerOptions options;
  options.engine_name = engine;
  options.pool_size = pool;
  auto server = QueryServer::Create(program, options);
  EXPECT_TRUE(server.ok()) << server.status();
  return server.ok() ? std::move(*server) : nullptr;
}

class ServerTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(AllEngines, ServerTest,
                         ::testing::Values("tabled", "stratified",
                                           "bottomup"));

TEST_P(ServerTest, AnswersTrackMutationsAcrossEpochs) {
  auto server = MakeServer(GetParam());
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->epoch(), 1);

  auto q1 = server->Query("reach(a, X)");
  ASSERT_TRUE(q1.ok()) << q1.status();
  EXPECT_EQ(q1->answers.size(), 2u);  // b, c.

  auto ins = server->Insert("edge(c, d)");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins->changed, 1);
  EXPECT_EQ(ins->epoch, 2);

  auto q2 = server->Query("reach(a, X)");
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_EQ(q2->answers.size(), 3u);  // b, c, d.

  auto ret = server->Retract("edge(a, b)");
  ASSERT_TRUE(ret.ok()) << ret.status();
  EXPECT_EQ(ret->epoch, 3);

  auto q3 = server->Query("reach(a, X)");
  ASSERT_TRUE(q3.ok()) << q3.status();
  EXPECT_TRUE(q3->answers.empty());

  // Ground query: boolean outcome.
  auto q4 = server->Query("reach(b, d)");
  ASSERT_TRUE(q4.ok()) << q4.status();
  EXPECT_TRUE(q4->boolean);
  EXPECT_TRUE(q4->proven);
}

TEST_P(ServerTest, NoOpMutationsDoNotTurnTheEpoch) {
  auto server = MakeServer(GetParam());
  ASSERT_NE(server, nullptr);

  auto dup = server->Insert("edge(a, b)");  // Already present.
  ASSERT_TRUE(dup.ok()) << dup.status();
  EXPECT_EQ(dup->changed, 0);
  EXPECT_EQ(dup->epoch, 1);

  auto absent = server->Retract("edge(x, y)");
  ASSERT_TRUE(absent.ok()) << absent.status();
  EXPECT_EQ(absent->changed, 0);
  EXPECT_EQ(absent->epoch, 1);

  // Insert-then-retract of the same new fact nets to nothing.
  auto insert = server->ParseMutation("edge(p, q)", /*insert=*/true);
  auto retract = server->ParseMutation("edge(p, q)", /*insert=*/false);
  ASSERT_TRUE(insert.ok() && retract.ok());
  auto batch = server->ApplyBatch({*insert, *retract});
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->changed, 0);
  EXPECT_EQ(batch->epoch, 1);

  EXPECT_EQ(server->counters().noop_batches, 3);
}

TEST_P(ServerTest, BatchAppliesAtomicallyInOneEpoch) {
  auto server = MakeServer(GetParam());
  ASSERT_NE(server, nullptr);
  auto add = server->ParseMutation("edge(c, d)", /*insert=*/true);
  auto del = server->ParseMutation("edge(a, b)", /*insert=*/false);
  ASSERT_TRUE(add.ok() && del.ok());
  auto outcome = server->ApplyBatch({*add, *del});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->changed, 2);
  EXPECT_EQ(outcome->epoch, 2);

  auto q = server->Query("reach(b, X)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->answers.size(), 2u);  // c, d.
  EXPECT_EQ(server->counters().base_facts, 2);
}

TEST_P(ServerTest, ConcurrentQueriesNeverSeeTornEpochs) {
  // Readers hammer reach(a, X) while a writer toggles edge(a, b). Every
  // answer set must be consistent with SOME epoch: {} (edge absent) or
  // {b, c} (edge present) — a 1-element answer would mean a query
  // observed a half-applied mutation.
  auto server = MakeServer(GetParam(), /*pool=*/4);
  ASSERT_NE(server, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto q = server->Query("reach(a, X)");
        if (!q.ok()) {
          errors.fetch_add(1);
          continue;
        }
        size_t n = q->answers.size();
        if (n != 0 && n != 2) torn.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 50; ++i) {
      auto out = (i % 2 == 0) ? server->Retract("edge(a, b)")
                              : server->Insert("edge(a, b)");
      if (!out.ok()) errors.fetch_add(1);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(server->epoch(), 51) << "50 toggles, every one a net change";
}

TEST_P(ServerTest, PerQueryGovernanceTripsWithoutKillingTheServer) {
  // A chain long enough that the all-pairs query cannot finish in one
  // microsecond, so the deadline trips at a metering check.
  std::string program =
      "reach(X, Y) <- edge(X, Y).\n"
      "reach(X, Z) <- edge(X, Y), reach(Y, Z).\n";
  for (int i = 0; i < 60; ++i) {
    program += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
               ").\n";
  }
  auto server = MakeServer(GetParam(), /*pool=*/1, program.c_str());
  ASSERT_NE(server, nullptr);

  QuerySpec tight;
  tight.timeout_micros = 1;
  auto tripped = server->Query("reach(X, Y)", tight);
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.status().code(), StatusCode::kDeadlineExceeded)
      << tripped.status();

  // The same engine, re-leased with the default (unlimited) budget,
  // answers fine: governance is per-query, not per-server.
  auto q = server->Query("reach(n0, n60)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->proven);
}

TEST(QueryServerTest, CreateRejectsBadConfigurations) {
  ServerOptions demand;
  demand.engine_name = "bottomup";
  demand.engine_options.demand = true;
  EXPECT_EQ(QueryServer::Create(kReachProgram, demand).status().code(),
            StatusCode::kInvalidArgument);

  ServerOptions unknown;
  unknown.engine_name = "quantum";
  EXPECT_EQ(QueryServer::Create(kReachProgram, unknown).status().code(),
            StatusCode::kInvalidArgument);

  ServerOptions empty_pool;
  empty_pool.pool_size = 0;
  EXPECT_EQ(QueryServer::Create(kReachProgram, empty_pool).status().code(),
            StatusCode::kInvalidArgument);

  ServerOptions ok;
  EXPECT_EQ(QueryServer::Create("reach(X <- ", ok).status().code(),
            StatusCode::kInvalidArgument)
      << "parse errors surface at Create";
}

TEST(QueryServerTest, RepairStatsAccumulateAcrossEpochs) {
  ServerOptions options;
  options.engine_name = "bottomup";
  options.pool_size = 1;
  // Every constant appears in two facts, so retracting one fact keeps the
  // domain stable — a shrunken domain falls back to a full recompute and
  // would bypass the incremental path this test pins down.
  auto server = QueryServer::Create(
      "reach(X, Y) <- edge(X, Y).\n"
      "reach(X, Z) <- edge(X, Y), reach(Y, Z).\n"
      "edge(a, b). edge(b, c). edge(c, a).\n",
      options);
  ASSERT_TRUE(server.ok()) << server.status();

  // Warm the model, then retract: the bottom-up engine must take the
  // incremental DRed path, visible in the server's repair counters.
  ASSERT_TRUE((*server)->Query("reach(a, X)").ok());
  ASSERT_TRUE((*server)->Retract("edge(b, c)").ok());
  auto counters = (*server)->counters();
  EXPECT_GE(counters.repair.base_deltas, 1);
  EXPECT_GE(counters.repair.strata_repaired +
                counters.repair.strata_recomputed,
            1);
}

#if HYPO_FAILPOINTS
TEST(QueryServerTest, FailedRepairForcesReinitAndServesTheNewEpoch) {
  // Regression: an engine whose repair aborts mid-flight must not re-enter
  // the pool "repaired ahead" (or behind) of the committed base. The
  // server forces a full re-Init on the failed engine under the epoch
  // write lock, so the error surfaces but every later answer is coherent
  // with the new epoch.
  std::string program =
      "reach(X, Y) <- edge(X, Y).\n"
      "reach(X, Z) <- edge(X, Y), reach(Y, Z).\n"
      "blocked(X, Y) <- node(X), node(Y), ~reach(X, Y).\n"
      "edge(a, b). edge(b, c). edge(c, a).\n"
      "node(a). node(b). node(c).\n";
  ServerOptions options;
  options.engine_name = "bottomup";
  options.pool_size = 1;
  auto server = QueryServer::Create(program, options);
  ASSERT_TRUE(server.ok()) << server.status();
  // Warm the model so the retract takes the repair path; the negated
  // premise forces a stratum recompute, where bottomup.round sits.
  auto warm = (*server)->Query("blocked(a, X)");
  ASSERT_TRUE(warm.ok()) << warm.status();

  FailpointRegistry& registry = FailpointRegistry::Global();
  registry.Arm("bottomup.round", 1, Status::Internal("injected mid-repair"));
  auto out = (*server)->Retract("edge(b, c)");
  registry.DisarmAll();
  ASSERT_FALSE(out.ok()) << "the injected repair failure must surface";
  EXPECT_NE(out.status().message().find("injected mid-repair"),
            std::string::npos)
      << out.status();
  EXPECT_EQ((*server)->epoch(), 2)
      << "the batch committed to the base; the epoch must turn";

  // The re-Init'd engine serves the post-retract world: b lost its only
  // outgoing edge.
  auto q = (*server)->Query("reach(b, X)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->answers.empty());
  auto blocked = (*server)->Query("blocked(b, a)");
  ASSERT_TRUE(blocked.ok()) << blocked.status();
  EXPECT_TRUE(blocked->proven);

  // The pool stays serviceable for further epochs.
  ASSERT_TRUE((*server)->Insert("edge(b, c)").ok());
  auto healed = (*server)->Query("reach(b, a)");
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_TRUE(healed->proven);
}
#endif  // HYPO_FAILPOINTS

TEST(ProtocolTest, ScriptedSessionSpeaksTheLineProtocol) {
  auto server = MakeServer("bottomup");
  ASSERT_NE(server, nullptr);
  std::istringstream in(
      "# comment lines and blanks are ignored\n"
      "\n"
      "ping\n"
      "query reach(a, X)\n"
      "insert edge(c, d)\n"
      "query reach(a, d)\n"
      "retract edge(a, b)\n"
      "query reach(a, X)\n"
      "epoch\n"
      "shutdown\n"
      "query reach(a, X)\n");  // After shutdown: must not be evaluated.
  std::ostringstream out;
  EXPECT_EQ(RunSession(server.get(), in, out), 0);
  EXPECT_EQ(out.str(),
            "ok pong\n"
            "ok 2 answers\n"
            "- X=b\n"
            "- X=c\n"
            "ok epoch=2 changed=1\n"
            "ok yes\n"
            "ok epoch=3 changed=1\n"
            "ok 0 answers\n"
            "ok epoch=3\n"
            "ok bye\n");
}

TEST(ProtocolTest, BatchCommandsAndErrorsKeepTheSessionAlive) {
  auto server = MakeServer("tabled");
  ASSERT_NE(server, nullptr);
  std::istringstream in(
      "begin\n"
      "insert edge(c, d)\n"
      "retract edge(a, b)\n"
      "commit\n"
      "commit\n"
      "begin\n"
      "insert edge(z, z)\n"
      "abort\n"
      "query reach(z, X)\n"
      "insert not-a-fact(\n"
      "frobnicate\n"
      "set timeout_ms=abc\n"
      "set timeout_ms=100\n"
      "stats\n");
  std::ostringstream out;
  EXPECT_EQ(RunSession(server.get(), in, out), 0);
  std::string text = out.str();
  EXPECT_NE(text.find("ok batch\n"), std::string::npos);
  EXPECT_NE(text.find("ok queued\n"), std::string::npos);
  EXPECT_NE(text.find("ok epoch=2 changed=2\n"), std::string::npos);
  EXPECT_NE(text.find("err FailedPrecondition: no batch to commit"),
            std::string::npos);
  EXPECT_NE(text.find("ok aborted\n"), std::string::npos);
  EXPECT_NE(text.find("ok 0 answers\n"), std::string::npos)
      << "the aborted batch must not have applied";
  EXPECT_NE(text.find("err InvalidArgument"), std::string::npos);
  EXPECT_NE(text.find("unknown command \"frobnicate\""), std::string::npos);
  EXPECT_NE(text.find("ok set\n"), std::string::npos);
  EXPECT_NE(text.find("noop_mutations=0"), std::string::npos);
  EXPECT_NE(text.find("base_facts=2"), std::string::npos);
}

}  // namespace
}  // namespace hypo
