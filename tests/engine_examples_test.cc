#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "queries/chains.h"
#include "queries/hamiltonian.h"
#include "queries/ladder.h"
#include "queries/nationality.h"
#include "queries/parity.h"
#include "queries/university.h"

namespace hypo {
namespace {

enum class EngineKind { kBottomUp, kTabled, kStratified };

const char* KindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBottomUp: return "BottomUp";
    case EngineKind::kTabled: return "Tabled";
    case EngineKind::kStratified: return "StratifiedProver";
  }
  return "?";
}

// The eager bottom-up engine materializes the full addition lattice on
// rules whose hypothetical insertions are not select-guarded (the
// university fixture's `within1`); only the goal-directed engines run
// those tests. BottomUpLimitationTest pins the documented behavior.
#define SKIP_EAGER_ENGINE()                                          \
  if (GetParam() == EngineKind::kBottomUp) {                         \
    GTEST_SKIP() << "eager engine exhausts states on unguarded "     \
                    "hypothetical rules (documented limitation)";    \
  }

std::unique_ptr<Engine> MakeEngine(EngineKind kind, const RuleBase* rules,
                                   const Database* db,
                                   EngineOptions options = EngineOptions()) {
  switch (kind) {
    case EngineKind::kBottomUp:
      return std::make_unique<BottomUpEngine>(rules, db, options);
    case EngineKind::kTabled:
      return std::make_unique<TabledEngine>(rules, db, options);
    case EngineKind::kStratified:
      return std::make_unique<StratifiedProver>(rules, db, options);
  }
  return nullptr;
}

/// Runs every example on all engines; they must agree with the paper.
class ExamplesTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  bool Prove(Engine* engine, SymbolTable* symbols, const std::string& text) {
    auto query = ParseQuery(text, symbols);
    EXPECT_TRUE(query.ok()) << query.status();
    auto result = engine->ProveQuery(*query);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status();
    return result.ok() && *result;
  }

  std::vector<Tuple> Answers(Engine* engine, SymbolTable* symbols,
                             const std::string& text) {
    auto query = ParseQuery(text, symbols);
    EXPECT_TRUE(query.ok()) << query.status();
    auto result = engine->Answers(*query);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status();
    return result.ok() ? *result : std::vector<Tuple>{};
  }
};

TEST_P(ExamplesTest, Example1HypotheticalCourse) {
  // Without the Example 3 rules the fixture is Horn-only and linearly
  // stratifiable, so every engine runs it.
  ProgramFixture f = MakeUniversityFixture(/*include_example3=*/false);
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  ASSERT_TRUE(engine->Init().ok());
  // Plain graduation: mary yes (his101 + eng201), tony not yet.
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(), "grad(mary)"));
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "grad(tony)"));
  // "If Tony took cs452, would he be eligible to graduate?" — yes.
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(),
                    "grad(tony)[add: take(tony, cs452)]"));
  // An unrelated course does not help.
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(),
                     "grad(tony)[add: take(tony, m101)]"));
}

TEST_P(ExamplesTest, Example2OneMoreCourse) {
  ProgramFixture f = MakeUniversityFixture(/*include_example3=*/false);
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  ASSERT_TRUE(engine->Init().ok());
  // ∃C grad(S)[add: take(S, C)] — who could graduate with one more course?
  std::vector<Tuple> answers =
      Answers(engine.get(), f.symbols.get(), "grad(S)[add: take(S, C)]");
  std::set<std::string> students;
  for (const Tuple& t : answers) {
    students.insert(f.symbols->ConstName(t[0]));  // S is var 0.
  }
  EXPECT_EQ(students, (std::set<std::string>{"tony", "mary"}));
}

TEST_P(ExamplesTest, Example3DualDegree) {
  SKIP_EAGER_ENGINE();
  ProgramFixture f = MakeUniversityFixture();
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  if (GetParam() == EngineKind::kStratified) {
    // Example 3 is not linearly stratifiable (see MakeUniversityFixture):
    // the paper's §4 restriction genuinely excludes this §2 example.
    EXPECT_FALSE(engine->Init().ok());
    return;
  }
  ASSERT_TRUE(engine->Init().ok());
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(), "degree(sue, mathphys)"));
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(), "degree(kim, mathphys)"));
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "degree(tony, mathphys)"));
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "degree(bob, mathphys)"));
  // within1 itself.
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(), "within1(kim, math)"));
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "within1(bob, math)"));
}

TEST_P(ExamplesTest, Example4AddCascade) {
  // R, DB ⊢ a<i> iff markers 1..i-1 are already database facts.
  for (int prefix : {0, 2, 4}) {
    ProgramFixture f = MakeAddCascadeFixture(/*n=*/4, prefix);
    auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
    ASSERT_TRUE(engine->Init().ok());
    for (int i = 1; i <= 5; ++i) {
      bool expected = (i - 1) <= prefix;
      EXPECT_EQ(Prove(engine.get(), f.symbols.get(),
                      "a" + std::to_string(i)),
                expected)
          << "prefix=" << prefix << " i=" << i;
    }
  }
}

TEST_P(ExamplesTest, Example5OrderLoop) {
  for (int n : {1, 3, 6}) {
    ProgramFixture f = MakeOrderLoopFixture(n);
    auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
    ASSERT_TRUE(engine->Init().ok());
    EXPECT_TRUE(Prove(engine.get(), f.symbols.get(), "a")) << "n=" << n;
    // d alone does not hold: the b markers are only added hypothetically.
    EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "d")) << "n=" << n;
  }
}

TEST_P(ExamplesTest, Example6Parity) {
  for (int n = 0; n <= 7; ++n) {
    ProgramFixture f = MakeParityFixture(n);
    auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
    ASSERT_TRUE(engine->Init().ok());
    bool is_even = (n % 2 == 0);
    EXPECT_EQ(Prove(engine.get(), f.symbols.get(), "even"), is_even)
        << "n=" << n;
    EXPECT_EQ(Prove(engine.get(), f.symbols.get(), "odd"), !is_even)
        << "n=" << n;
  }
}

TEST_P(ExamplesTest, Example7HamiltonianPath) {
  struct Case {
    Graph graph;
    bool expected;
    const char* label;
  };
  Random rng(2026);
  std::vector<Case> cases = {
      {MakePathGraph(4), true, "path4"},
      {MakeCycleGraph(5), true, "cycle5"},
      {MakeCompleteGraph(4), true, "complete4"},
      {MakeDisconnectedCliques(6), false, "cliques6"},
      {MakeRandomGraph(5, 0.3, &rng), false, "random-sparse"},
  };
  // Make the random case label honest: compute the baseline.
  cases.back().expected = HamiltonianPathExists(cases.back().graph);
  for (const Case& c : cases) {
    ProgramFixture f = MakeHamiltonianFixture(c.graph, /*with_no_rule=*/false);
    auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
    ASSERT_TRUE(engine->Init().ok());
    EXPECT_EQ(Prove(engine.get(), f.symbols.get(), "yes"), c.expected)
        << c.label;
    EXPECT_EQ(c.expected, HamiltonianPathExists(c.graph)) << c.label;
  }
}

TEST_P(ExamplesTest, Example8Complement) {
  for (bool has_path : {true, false}) {
    Graph g = has_path ? MakeCompleteGraph(4) : MakeDisconnectedCliques(4);
    ProgramFixture f = MakeHamiltonianFixture(g, /*with_no_rule=*/true);
    auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
    ASSERT_TRUE(engine->Init().ok());
    EXPECT_EQ(Prove(engine.get(), f.symbols.get(), "yes"), has_path);
    EXPECT_EQ(Prove(engine.get(), f.symbols.get(), "no"), !has_path);
  }
}

TEST_P(ExamplesTest, Example8HamiltonianCircuitVariant) {
  // Example 8's literal wording is about circuits; the circuit rulebase
  // must agree with the direct baseline on graphs where path- and
  // circuit-existence differ.
  Random rng(77);
  struct Case {
    Graph graph;
    const char* label;
  };
  std::vector<Case> cases = {
      {MakePathGraph(4), "path4 (path yes, circuit no)"},
      {MakeCycleGraph(4), "cycle4 (both yes)"},
      {MakeCompleteGraph(4), "complete4"},
      {MakeRandomGraph(5, 0.4, &rng), "random5"},
  };
  for (const Case& c : cases) {
    bool expected = HamiltonianCircuitExists(c.graph);
    ProgramFixture f = MakeHamiltonianCircuitFixture(c.graph);
    auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
    ASSERT_TRUE(engine->Init().ok()) << c.label;
    EXPECT_EQ(Prove(engine.get(), f.symbols.get(), "cyes"), expected)
        << c.label;
  }
}

TEST_P(ExamplesTest, Example9LadderAlternates) {
  const int k = 4;
  ProgramFixture f = MakeStrataLadderFixture(k);
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  ASSERT_TRUE(engine->Init().ok());
  for (int i = 1; i <= k; ++i) {
    bool expected = (i % 2 == 1);  // a1 true, a2 false, a3 true, ...
    EXPECT_EQ(Prove(engine.get(), f.symbols.get(), "a" + std::to_string(i)),
              expected)
        << "i=" << i;
  }
}

TEST_P(ExamplesTest, NationalityActLineage) {
  // §1 motivation: eligibility through a chain of hypothetical
  // "were he still alive" clauses. The recursion nests hypothetical
  // states two deep for brian.
  ProgramFixture f = MakeNationalityFixture();
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  ASSERT_TRUE(engine->Init().ok());
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "eligible(george)"))
      << "george is deceased";
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(), "eligible(henry)"))
      << "henry's father would be eligible if alive";
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(), "eligible(brian)"))
      << "two hypothetical generations deep";
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "eligible(cora)"));
  // And the direct check: george would be eligible were he alive.
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(),
                    "eligible(george)[add: alive(george)]"));
}

TEST_P(ExamplesTest, EmptyDatabaseEdgeCases) {
  ProgramFixture f;  // No rules, no facts.
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  ASSERT_TRUE(engine->Init().ok());
  Fact fact;
  fact.predicate = *f.symbols->InternPredicate("ghost", 0);
  auto result = engine->ProveFact(fact);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST_P(ExamplesTest, QueryWithFreshConstants) {
  // Query constants outside dom(R, DB) must extend the domain (Def. 3).
  ProgramFixture f = MakeUniversityFixture(/*include_example3=*/false);
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  ASSERT_TRUE(engine->Init().ok());
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(),
                    "take(ghost, cs999)[add: take(ghost, cs999)]"));
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "grad(ghost)"));
}

TEST_P(ExamplesTest, HypotheticalIsNotPersistent) {
  // After proving a hypothetical query, the addition must be retracted.
  ProgramFixture f = MakeUniversityFixture(/*include_example3=*/false);
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  ASSERT_TRUE(engine->Init().ok());
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(),
                    "grad(tony)[add: take(tony, cs452)]"));
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(), "grad(tony)"))
      << "the hypothetical insertion leaked into the database";
  EXPECT_FALSE(Prove(engine.get(), f.symbols.get(),
                     "take(tony, cs452)"));
}

TEST_P(ExamplesTest, MonotoneUnderAdditions) {
  // §3.1: without negation-by-failure the system is monotonic — anything
  // provable stays provable after an insertion.
  ProgramFixture f = MakeUniversityFixture(/*include_example3=*/false);
  auto engine = MakeEngine(GetParam(), &f.rules, &f.db);
  ASSERT_TRUE(engine->Init().ok());
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(), "grad(mary)"));
  EXPECT_TRUE(Prove(engine.get(), f.symbols.get(),
                    "grad(mary)[add: take(mary, cs250)]"));
}

INSTANTIATE_TEST_SUITE_P(Engines, ExamplesTest,
                         ::testing::Values(EngineKind::kBottomUp,
                                           EngineKind::kTabled,
                                           EngineKind::kStratified),
                         [](const auto& info) {
                           return KindName(info.param);
                         });

TEST(BottomUpLimitationTest, ExhaustsOnUnguardedHypotheticalRules) {
  // The university fixture's within1 rule enumerates take(S, C) over the
  // whole domain, so the eager engine's reachable state lattice explodes;
  // it must fail *cleanly* with ResourceExhausted rather than diverge.
  ProgramFixture f = MakeUniversityFixture();
  EngineOptions options;
  options.max_states = 2000;
  BottomUpEngine engine(&f.rules, &f.db, options);
  ASSERT_TRUE(engine.Init().ok());
  auto query = ParseQuery("grad(mary)", f.symbols.get());
  ASSERT_TRUE(query.ok());
  auto result = engine.ProveQuery(*query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Example10Test, BottomUpEvaluatesNonLinearRulebase) {
  ProgramFixture f = MakeExample10Fixture();
  BottomUpEngine engine(&f.rules, &f.db);
  ASSERT_TRUE(engine.Init().ok());
  auto prove = [&](const char* name) {
    Fact fact;
    fact.predicate = f.symbols->FindPredicate(name);
    auto r = engine.ProveFact(fact);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && *r;
  };
  EXPECT_TRUE(prove("a1"));
  EXPECT_TRUE(prove("d2"));
  EXPECT_FALSE(prove("c2"));
  EXPECT_FALSE(prove("b2"));
  EXPECT_TRUE(prove("a2"));
}

TEST(Example10Test, StratifiedProverRejectsIt) {
  ProgramFixture f = MakeExample10Fixture();
  StratifiedProver prover(&f.rules, &f.db);
  EXPECT_FALSE(prover.Init().ok());
}

TEST(EngineStatsTest, CountersMove) {
  ProgramFixture f = MakeParityFixture(4);
  BottomUpEngine engine(&f.rules, &f.db);
  ASSERT_TRUE(engine.Init().ok());
  auto query = ParseQuery("even", f.symbols.get());
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(engine.ProveQuery(*query).ok());
  EXPECT_GT(engine.stats().states_evaluated, 0);
  EXPECT_GT(engine.stats().facts_derived, 0);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().facts_derived, 0);
}

TEST(EngineLimitsTest, MaxStatesSurfacesCleanly) {
  ProgramFixture f = MakeParityFixture(8);
  EngineOptions options;
  options.max_states = 3;
  BottomUpEngine engine(&f.rules, &f.db, options);
  ASSERT_TRUE(engine.Init().ok());
  auto query = ParseQuery("even", f.symbols.get());
  ASSERT_TRUE(query.ok());
  auto result = engine.ProveQuery(*query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace hypo
