// Durability layer tests: journal framing and replay, checkpoint
// round-trips, torn-tail vs corruption taxonomy, crash-anywhere failpoint
// sweeps with a shadow in-memory oracle, read-only degradation, and a
// randomized recovery-vs-oracle differential across engines and thread
// counts (DESIGN.md "Durability & recovery").

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "base/io_util.h"
#include "db/database.h"
#include "server/checkpoint.h"
#include "server/journal.h"
#include "server/protocol.h"
#include "server/query_server.h"

namespace hypo {
namespace {

constexpr char kReachProgram[] = R"(
reach(X, Y) <- edge(X, Y).
reach(X, Z) <- edge(X, Y), reach(Y, Z).
edge(a, b).
edge(b, c).
)";

/// Fresh per-test scratch directory (removed up front so a rerun never
/// sees a previous run's files).
std::string FreshDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "hypo_durability_" + tag + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

ServerOptions DurableOptions(
    const std::string& engine, const std::string& dir,
    Journal::FsyncPolicy policy = Journal::FsyncPolicy::kAlways,
    int64_t checkpoint_every = 0, int threads = 1) {
  ServerOptions options;
  options.engine_name = engine;
  options.pool_size = 2;
  options.engine_options.num_threads = threads;
  options.durability.data_dir = dir;
  options.durability.fsync_policy = policy;
  options.durability.checkpoint_every = checkpoint_every;
  options.durability.retry_backoff_ms = 0;  // Keep failpoint sweeps fast.
  return options;
}

std::unique_ptr<QueryServer> MustCreate(const ServerOptions& options,
                                        const char* program = kReachProgram) {
  auto server = QueryServer::Create(program, options);
  EXPECT_TRUE(server.ok()) << server.status();
  return server.ok() ? std::move(*server) : nullptr;
}

/// Flips one byte of `path` in place.
void FlipByte(const std::string& path, int64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(offset);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(offset);
  f.write(&byte, 1);
}

void TruncateFile(const std::string& path, int64_t size) {
  std::filesystem::resize_file(path, static_cast<uintmax_t>(size));
}

std::string OnlyCheckpoint(const std::string& dir) {
  std::string found;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find("checkpoint-") == 0 && name.find(".tmp") == std::string::npos) {
      EXPECT_TRUE(found.empty()) << "multiple checkpoints in " << dir;
      found = entry.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no checkpoint in " << dir;
  return found;
}

std::string OnlyJournal(const std::string& dir) {
  std::string found;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find("journal-") == 0) {
      EXPECT_TRUE(found.empty()) << "multiple journals in " << dir;
      found = entry.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no journal in " << dir;
  return found;
}

using NamedFacts =
    std::vector<std::pair<std::string, std::vector<std::string>>>;

// ---------------------------------------------------------------------------
// Journal unit tests.

TEST(JournalTest, AppendAndReplayRoundTrip) {
  const std::string dir = FreshDir("jrt");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = JournalPath(dir, 1);
  auto journal =
      Journal::Create(path, 1, Journal::FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(journal.ok()) << journal.status();
  for (uint64_t epoch = 2; epoch <= 4; ++epoch) {
    NamedFacts inserts = {{"edge", {"x" + std::to_string(epoch), "y"}}};
    NamedFacts retracts;
    if (epoch == 3) retracts.push_back({"edge", {"x2", "y"}});
    Status s = (*journal)->Append(
        epoch, EncodeJournalPayload(epoch, inserts, retracts));
    ASSERT_TRUE(s.ok()) << s;
  }
  EXPECT_EQ((*journal)->appends(), 3);
  EXPECT_EQ((*journal)->fsyncs(), 3);

  auto replay = ReplayJournal(path, 1);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->torn_records_dropped, 0);
  EXPECT_EQ(replay->records[0].epoch, 2u);
  EXPECT_EQ(replay->records[2].epoch, 4u);
  ASSERT_EQ(replay->records[1].retracts.size(), 1u);
  EXPECT_EQ(replay->records[1].retracts[0].first, "edge");
  EXPECT_EQ(replay->records[1].inserts[0].second,
            (std::vector<std::string>{"x3", "y"}));
}

TEST(JournalTest, WrongBaseEpochIsDataLoss) {
  const std::string dir = FreshDir("jbe");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = JournalPath(dir, 7);
  auto journal =
      Journal::Create(path, 7, Journal::FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(journal.ok()) << journal.status();
  auto replay = ReplayJournal(path, 3);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST(JournalTest, TornTailDropsOnlyTheFinalRecord) {
  const std::string dir = FreshDir("torn");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = JournalPath(dir, 1);
  auto journal =
      Journal::Create(path, 1, Journal::FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(journal.ok()) << journal.status();
  // Record the valid prefix length after each append so the sweep can
  // tell which record a cut lands inside.
  std::vector<int64_t> boundaries;
  boundaries.push_back(*FileSize(path));
  for (uint64_t epoch = 2; epoch <= 4; ++epoch) {
    NamedFacts inserts = {{"edge", {"a", "b" + std::to_string(epoch)}}};
    ASSERT_TRUE(
        (*journal)->Append(epoch, EncodeJournalPayload(epoch, inserts, {}))
            .ok());
    boundaries.push_back(*FileSize(path));
  }
  const std::string pristine = *ReadFileToString(path);

  // Cut the file at EVERY byte length from just-after-header to full.
  // Replay must recover the longest whole-record prefix, report a torn
  // tail iff the cut is mid-record, and never report corruption.
  for (int64_t cut = boundaries.front();
       cut <= static_cast<int64_t>(pristine.size()); ++cut) {
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(pristine.data(), cut);
    }
    auto replay = ReplayJournal(path, 1);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": " << replay.status();
    size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    EXPECT_EQ(replay->records.size(), whole) << "cut=" << cut;
    EXPECT_EQ(replay->valid_bytes, boundaries[whole]) << "cut=" << cut;
    EXPECT_EQ(replay->torn_records_dropped,
              cut == boundaries[whole] ? 0 : 1)
        << "cut=" << cut;
  }
}

TEST(JournalTest, MidJournalCorruptionIsDataLossNamingTheRecord) {
  const std::string dir = FreshDir("corrupt");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = JournalPath(dir, 1);
  auto journal =
      Journal::Create(path, 1, Journal::FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(journal.ok()) << journal.status();
  std::vector<int64_t> boundaries = {*FileSize(path)};
  for (uint64_t epoch = 2; epoch <= 4; ++epoch) {
    NamedFacts inserts = {{"edge", {"a", "b" + std::to_string(epoch)}}};
    ASSERT_TRUE(
        (*journal)->Append(epoch, EncodeJournalPayload(epoch, inserts, {}))
            .ok());
    boundaries.push_back(*FileSize(path));
  }
  // Flip one payload byte inside record 1 (the second record): past its
  // 8-byte frame, before record 2.
  FlipByte(path, boundaries[1] + 12);
  auto replay = ReplayJournal(path, 1);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(replay.status().message().find("record 1"), std::string::npos)
      << replay.status();

  // Header damage is corruption too, not a torn tail.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write("HYPOJRNX", 8);
    std::string rest(20, '\0');
    f.write(rest.data(), rest.size());
  }
  auto bad_magic = ReplayJournal(path, 1);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Database snapshot round-trip.

TEST(DatabaseSnapshotTest, SerializeDeserializePreservesRowOrder) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db(symbols);
  ASSERT_TRUE(db.Insert("edge", {"c", "d"}).ok());
  ASSERT_TRUE(db.Insert("edge", {"a", "b"}).ok());
  ASSERT_TRUE(db.Insert("label", {"a"}).ok());
  std::string bytes;
  db.SerializeRelations(&bytes);

  Database copy(symbols);
  ASSERT_TRUE(copy.DeserializeRelations(bytes).ok());
  EXPECT_EQ(copy.size(), db.size());
  const PredicateId edge = symbols->FindPredicate("edge");
  auto rows = copy.TuplesFor(edge);
  ASSERT_EQ(rows.size(), 2u);
  // Insertion order survives the round-trip: (c, d) first.
  EXPECT_EQ(rows.At(0, 0), symbols->FindConst("c"));
  EXPECT_EQ(rows.At(1, 0), symbols->FindConst("a"));

  // Identical logical contents serialize to identical bytes.
  std::string again;
  copy.SerializeRelations(&again);
  EXPECT_EQ(bytes, again);

  Database full(symbols);
  ASSERT_TRUE(full.Insert("edge", {"x", "y"}).ok());
  EXPECT_FALSE(full.DeserializeRelations(bytes).ok());
}

// ---------------------------------------------------------------------------
// Server-level recovery.

class DurableServerTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(AllEngines, DurableServerTest,
                         ::testing::Values("tabled", "stratified",
                                           "bottomup"));

TEST_P(DurableServerTest, RestartRecoversCommittedState) {
  const std::string dir = FreshDir("restart");
  std::string before;
  {
    auto server = MustCreate(DurableOptions(GetParam(), dir));
    ASSERT_NE(server, nullptr);
    ASSERT_TRUE(server->Insert("edge(c, d)").ok());
    ASSERT_TRUE(server->Retract("edge(a, b)").ok());
    ASSERT_TRUE(server->Insert("edge(d, e)").ok());
    EXPECT_EQ(server->epoch(), 4);
    before = server->CanonicalState();
    ASSERT_TRUE(server->Shutdown().ok());
  }
  auto server = MustCreate(DurableOptions(GetParam(), dir));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->epoch(), 4);
  EXPECT_EQ(server->CanonicalState(), before);
  EXPECT_EQ(server->counters().recoveries, 1);

  auto q = server->Query("reach(b, X)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->answers.size(), 3u);  // c, d, e.
  // Mutations continue past the recovered epoch.
  auto ins = server->Insert("edge(e, f)");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins->epoch, 5);
}

TEST_P(DurableServerTest, RestartWithoutShutdownReplaysTheJournal) {
  const std::string dir = FreshDir("noshutdown");
  std::string before;
  {
    auto server = MustCreate(DurableOptions(GetParam(), dir));
    ASSERT_NE(server, nullptr);
    ASSERT_TRUE(server->Insert("edge(c, d)").ok());
    ASSERT_TRUE(server->Insert("edge(d, e)").ok());
    before = server->CanonicalState();
    // No Shutdown: the process "crashes" here. fsync=always means every
    // acknowledged batch is already in the journal.
  }
  auto server = MustCreate(DurableOptions(GetParam(), dir));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->epoch(), 3);
  EXPECT_EQ(server->CanonicalState(), before);
}

TEST_P(DurableServerTest, GroupAndOffPoliciesFlushAtShutdown) {
  for (auto policy :
       {Journal::FsyncPolicy::kGroup, Journal::FsyncPolicy::kOff}) {
    const std::string dir =
        FreshDir(std::string("policy_") + Journal::PolicyName(policy));
    std::string before;
    {
      auto server = MustCreate(DurableOptions(GetParam(), dir, policy));
      ASSERT_NE(server, nullptr);
      ASSERT_TRUE(server->Insert("edge(c, d)").ok());
      ASSERT_TRUE(server->Insert("edge(d, e)").ok());
      before = server->CanonicalState();
      ASSERT_TRUE(server->Shutdown().ok());
    }
    auto server = MustCreate(DurableOptions(GetParam(), dir, policy));
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(server->CanonicalState(), before);
  }
}

TEST_P(DurableServerTest, PeriodicCheckpointsBoundTheJournal) {
  const std::string dir = FreshDir("periodic");
  auto server = MustCreate(DurableOptions(
      GetParam(), dir, Journal::FsyncPolicy::kAlways, /*checkpoint_every=*/2));
  ASSERT_NE(server, nullptr);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        server->Insert("edge(n" + std::to_string(i) + ", m)").ok());
  }
  // 6 turns, checkpoint every 2: epoch 7, checkpoints at 3, 5, 7 (plus
  // the initial seed checkpoint) — and GC keeps only the newest pair.
  EXPECT_EQ(server->epoch(), 7);
  EXPECT_EQ(server->counters().checkpoints, 4);
  EXPECT_NE(OnlyCheckpoint(dir).find("7.ckpt"), std::string::npos);
  OnlyJournal(dir);
  const std::string before = server->CanonicalState();
  server.reset();  // Crash (no Shutdown): journal past checkpoint-7 is empty.

  auto recovered = MustCreate(DurableOptions(GetParam(), dir));
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->epoch(), 7);
  EXPECT_EQ(recovered->CanonicalState(), before);
}

TEST(DurabilityTest, CorruptCheckpointIsDataLoss) {
  const std::string dir = FreshDir("ckptflip");
  {
    auto server = MustCreate(DurableOptions("tabled", dir));
    ASSERT_NE(server, nullptr);
    ASSERT_TRUE(server->Insert("edge(c, d)").ok());
    ASSERT_TRUE(server->Shutdown().ok());
  }
  const std::string ckpt = OnlyCheckpoint(dir);
  FlipByte(ckpt, *FileSize(ckpt) - 3);  // Somewhere in the relations.
  auto server =
      QueryServer::Create(kReachProgram, DurableOptions("tabled", dir));
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kDataLoss) << server.status();
}

TEST(DurabilityTest, CorruptJournalRecordFailsRecoveryWithItsIndex) {
  const std::string dir = FreshDir("jrnflip");
  std::vector<int64_t> boundaries;
  {
    auto server = MustCreate(DurableOptions("tabled", dir));
    ASSERT_NE(server, nullptr);
    boundaries.push_back(*FileSize(OnlyJournal(dir)));
    ASSERT_TRUE(server->Insert("edge(c, d)").ok());
    boundaries.push_back(*FileSize(OnlyJournal(dir)));
    ASSERT_TRUE(server->Insert("edge(d, e)").ok());
    // Crash without Shutdown so the journal carries both records.
  }
  FlipByte(OnlyJournal(dir), boundaries[0] + 10);  // Inside record 0.
  auto server =
      QueryServer::Create(kReachProgram, DurableOptions("tabled", dir));
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kDataLoss) << server.status();
  EXPECT_NE(server.status().message().find("record 0"), std::string::npos)
      << server.status();
}

TEST(DurabilityTest, TornFinalRecordIsTruncatedNotFatal) {
  const std::string dir = FreshDir("jrntorn");
  std::string state_after_first;
  int64_t second_record_start = 0;
  {
    auto server = MustCreate(DurableOptions("tabled", dir));
    ASSERT_NE(server, nullptr);
    ASSERT_TRUE(server->Insert("edge(c, d)").ok());
    state_after_first = server->CanonicalState();
    second_record_start = *FileSize(OnlyJournal(dir));
    ASSERT_TRUE(server->Insert("edge(d, e)").ok());
  }
  // Shear the second record mid-payload, as a crash mid-write would.
  TruncateFile(OnlyJournal(dir), second_record_start + 5);
  auto server = MustCreate(DurableOptions("tabled", dir));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->epoch(), 2);  // Only the first record survived.
  EXPECT_EQ(server->CanonicalState(), state_after_first);
  EXPECT_EQ(server->counters().torn_records_dropped, 1);
  // The torn bytes were truncated away: appending resumes cleanly.
  auto ins = server->Insert("edge(z, w)");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins->epoch, 3);
}

// ---------------------------------------------------------------------------
// Randomized recovery differential: a durable server restarted mid-run
// must stay canonically equal to a never-restarted in-memory oracle, for
// every engine and (bottomup) thread count.

struct DiffParam {
  const char* engine;
  int threads;
};

class RecoveryDifferentialTest
    : public ::testing::TestWithParam<DiffParam> {};

INSTANTIATE_TEST_SUITE_P(
    EnginesAndThreads, RecoveryDifferentialTest,
    ::testing::Values(DiffParam{"tabled", 1}, DiffParam{"stratified", 1},
                      DiffParam{"bottomup", 1}, DiffParam{"bottomup", 8}),
    [](const ::testing::TestParamInfo<DiffParam>& info) {
      return std::string(info.param.engine) + "_t" +
             std::to_string(info.param.threads);
    });

/// One mutation as surface text — the currency both servers understand
/// regardless of how their symbol tables diverged.
struct TextMutation {
  bool insert;
  std::string fact;
};

/// Parses and applies `batch` to `server`; returns the outcome status.
StatusOr<MutationOutcome> ApplyText(QueryServer* server,
                                    const std::vector<TextMutation>& batch) {
  std::vector<QueryServer::Mutation> parsed;
  parsed.reserve(batch.size());
  for (const TextMutation& m : batch) {
    auto p = server->ParseMutation(m.fact, m.insert);
    if (!p.ok()) return p.status();
    parsed.push_back(std::move(*p));
  }
  return server->ApplyBatch(parsed);
}

TEST_P(RecoveryDifferentialTest, RandomizedBatchesSurviveRestarts) {
  const std::string dir = FreshDir(std::string("diff_") +
                                   GetParam().engine + "_" +
                                   std::to_string(GetParam().threads));
  ServerOptions durable_opts =
      DurableOptions(GetParam().engine, dir, Journal::FsyncPolicy::kAlways,
                     /*checkpoint_every=*/3, GetParam().threads);
  ServerOptions oracle_opts = durable_opts;
  oracle_opts.durability = DurabilityOptions();  // In-memory shadow.

  auto durable = MustCreate(durable_opts);
  auto oracle = MustCreate(oracle_opts);
  ASSERT_NE(durable, nullptr);
  ASSERT_NE(oracle, nullptr);

  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const char* consts[] = {"a", "b", "c", "d", "e", "f"};
  auto random_batch = [&]() {
    std::vector<TextMutation> batch;
    const int n = 1 + static_cast<int>(next() % 4);
    for (int i = 0; i < n; ++i) {
      const bool insert = next() % 3 != 0;  // Insert-leaning.
      batch.push_back({insert, std::string("edge(") + consts[next() % 6] +
                                   ", " + consts[next() % 6] + ")"});
    }
    return batch;
  };

  for (int round = 0; round < 30; ++round) {
    // Restart the durable server (simulated crash: no Shutdown) twice
    // along the way; the oracle never restarts.
    if (round == 10 || round == 20) {
      durable.reset();
      durable = MustCreate(durable_opts);
      ASSERT_NE(durable, nullptr);
      EXPECT_EQ(durable->counters().recoveries, 1);
      ASSERT_EQ(durable->CanonicalState(), oracle->CanonicalState())
          << "after restart at round " << round;
    }
    const auto batch = random_batch();
    auto d = ApplyText(durable.get(), batch);
    auto o = ApplyText(oracle.get(), batch);
    ASSERT_TRUE(d.ok()) << d.status();
    ASSERT_TRUE(o.ok()) << o.status();
    EXPECT_EQ(d->changed, o->changed) << "round " << round;
    EXPECT_EQ(d->epoch, o->epoch) << "round " << round;
    ASSERT_EQ(durable->CanonicalState(), oracle->CanonicalState())
        << "round " << round;

    // Query answers agree too — the recovered base drives the engines to
    // the same model, not just the same fact set. Compared as sets: answer
    // ORDER can track symbol-table intern order, which legitimately
    // diverges once the durable server has been recovered.
    auto dq = durable->Query("reach(a, X)");
    auto oq = oracle->Query("reach(a, X)");
    ASSERT_TRUE(dq.ok()) << dq.status();
    ASSERT_TRUE(oq.ok()) << oq.status();
    auto da = dq->answers;
    auto oa = oq->answers;
    std::sort(da.begin(), da.end());
    std::sort(oa.begin(), oa.end());
    EXPECT_EQ(da, oa) << "round " << round;
  }

  // Final restart after a clean shutdown for good measure.
  ASSERT_TRUE(durable->Shutdown().ok());
  durable.reset();
  durable = MustCreate(durable_opts);
  ASSERT_NE(durable, nullptr);
  EXPECT_EQ(durable->CanonicalState(), oracle->CanonicalState());
}

// ---------------------------------------------------------------------------
// Line-protocol surface: the `checkpoint` verb, the journal counters in
// `stats`, and the signal-drain stop flag.

TEST(DurabilityProtocolTest, CheckpointVerbAndStatsCounters) {
  const std::string dir = FreshDir("protocol");
  auto server = MustCreate(DurableOptions("tabled", dir));
  ASSERT_NE(server, nullptr);
  std::istringstream in(
      "insert edge(c, d)\n"
      "checkpoint\n"
      "stats\n"
      "shutdown\n");
  std::ostringstream out;
  EXPECT_EQ(RunSession(server.get(), in, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("ok checkpoint epoch=2\n"), std::string::npos) << text;
  EXPECT_NE(text.find(" journal_appends="), std::string::npos) << text;
  EXPECT_NE(text.find(" fsyncs="), std::string::npos) << text;
  EXPECT_NE(text.find(" checkpoints=2"), std::string::npos) << text;
  EXPECT_NE(text.find(" recoveries=0"), std::string::npos) << text;
  EXPECT_NE(text.find(" torn_records_dropped=0"), std::string::npos) << text;
  EXPECT_NE(text.find(" read_only=0"), std::string::npos) << text;
}

TEST(DurabilityProtocolTest, CheckpointVerbErrsWhenDurabilityIsOff) {
  ServerOptions options;
  options.engine_name = "tabled";
  auto server = MustCreate(options);
  ASSERT_NE(server, nullptr);
  std::istringstream in("checkpoint\n");
  std::ostringstream out;
  EXPECT_EQ(RunSession(server.get(), in, out), 0);
  EXPECT_NE(out.str().find("err FailedPrecondition"), std::string::npos)
      << out.str();
}

TEST(DurabilityProtocolTest, StopFlagEndsTheSessionBetweenCommands) {
  ServerOptions options;
  options.engine_name = "tabled";
  auto server = MustCreate(options);
  ASSERT_NE(server, nullptr);
  // The flag is already set when the session starts: no command on the
  // stream may execute (hypo_serve then drains via Shutdown and exits 3).
  std::atomic<bool> stop{true};
  std::istringstream in("insert edge(c, d)\nquery reach(a, X)\n");
  std::ostringstream out;
  EXPECT_EQ(RunSession(server.get(), in, out, &stop), 0);
  EXPECT_EQ(out.str(), "");
  EXPECT_EQ(server->epoch(), 1);
}

// ---------------------------------------------------------------------------
// Failpoint-driven crash-anywhere sweep and read-only degradation. Only
// meaningful when the failpoint framework is compiled in (the registry
// class itself does not exist otherwise).

#if HYPO_FAILPOINTS

/// Durable write-path sites, in the order a commit crosses them.
const char* kDurabilitySites[] = {
    "journal.append",     "journal.append.unacked",
    "journal.fsync",      "journal.create",
    "checkpoint.write",   "checkpoint.fsync",
    "checkpoint.rename",  "checkpoint.dirsync",
};

TEST(DurabilityFailpointTest, ReadOnlyDegradationAndRecovery) {
  const std::string dir = FreshDir("readonly");
  auto server = MustCreate(DurableOptions("tabled", dir));
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->Insert("edge(c, d)").ok());
  const std::string committed = server->CanonicalState();

  // A persistently failing device: every append attempt (including the
  // bounded retries) fails from now on.
  FailpointRegistry::Global().ArmSticky(
      "journal.append", 1,
      Status::FailedPrecondition("injected device failure"));
  auto failed = server->Insert("edge(d, e)");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable)
      << failed.status();
  EXPECT_TRUE(server->read_only());
  EXPECT_TRUE(server->counters().read_only);

  // Queries keep serving the last committed epoch; further mutations are
  // rejected immediately (no more device traffic).
  auto q = server->Query("reach(a, X)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->answers.size(), 3u);  // b, c, d.
  auto still = server->Insert("edge(e, f)");
  ASSERT_FALSE(still.ok());
  EXPECT_EQ(still.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server->CanonicalState(), committed);
  // Checkpoints are refused too — the journal holds the durable truth.
  EXPECT_EQ(server->Checkpoint().code(), StatusCode::kUnavailable);

  FailpointRegistry::Global().DisarmAll();
  server.reset();

  // Restart: the "device" recovered; read-write service resumes with
  // exactly the acknowledged state.
  server = MustCreate(DurableOptions("tabled", dir));
  ASSERT_NE(server, nullptr);
  EXPECT_FALSE(server->read_only());
  EXPECT_EQ(server->CanonicalState(), committed);
  auto ins = server->Insert("edge(d, e)");
  ASSERT_TRUE(ins.ok()) << ins.status();
}

TEST(DurabilityFailpointTest, CrashAnywhereRecoversToTheAckedState) {
  for (const char* site : kDurabilitySites) {
    for (int64_t nth : {1, 2, 4}) {
      SCOPED_TRACE(std::string(site) + " nth=" + std::to_string(nth));
      const std::string dir = FreshDir("sweep");
      FailpointRegistry::Global().DisarmAll();

      // checkpoint_every=2 drives the checkpoint/rotation sites from
      // inside ordinary epoch turns.
      ServerOptions opts = DurableOptions(
          "tabled", dir, Journal::FsyncPolicy::kAlways,
          /*checkpoint_every=*/2);
      // The shadow oracle tracks exactly the ACKED batches.
      ServerOptions oracle_opts = opts;
      oracle_opts.durability = DurabilityOptions();
      auto oracle = MustCreate(oracle_opts);
      ASSERT_NE(oracle, nullptr);

      FailpointRegistry::Global().ArmSticky(
          site, nth, Status::FailedPrecondition("injected crash"));
      auto durable = QueryServer::Create(kReachProgram, opts);
      if (durable.ok()) {
        const char* consts[] = {"c", "d", "e", "f", "g", "h"};
        for (int i = 0; i < 6; ++i) {
          const std::vector<TextMutation> batch = {
              {true, std::string("edge(") + consts[i] + ", x)"}};
          auto out = ApplyText(durable->get(), batch);
          if (out.ok()) {
            auto oo = ApplyText(oracle.get(), batch);
            ASSERT_TRUE(oo.ok()) << oo.status();
          }
        }
      }
      // else: the injected failure hit server startup (e.g. the seed
      // checkpoint); the acked state is just the program's facts.

      FailpointRegistry::Global().DisarmAll();
      durable = QueryServer::Create(kReachProgram, opts);
      ASSERT_TRUE(durable.ok()) << durable.status();
      EXPECT_EQ((*durable)->CanonicalState(), oracle->CanonicalState());
      // The recovered server is fully serviceable read-write.
      auto ins = (*durable)->Insert("edge(z, z)");
      ASSERT_TRUE(ins.ok()) << ins.status();
    }
  }
}

#endif  // HYPO_FAILPOINTS

}  // namespace
}  // namespace hypo
