#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/stratification.h"
#include "ast/printer.h"
#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "queries/parity.h"
#include "workload/random_programs.h"

namespace hypo {
namespace {

/// Collects, for every IDB predicate, the full set of derivable ground
/// facts by querying each ground atom over the domain.
StatusOr<std::set<std::string>> DeriveAll(Engine* engine,
                                          const ProgramFixture& fixture) {
  std::set<std::string> facts;
  const SymbolTable& symbols = fixture.rules.symbols();
  std::vector<ConstId> domain;
  for (int c = 0; c < symbols.num_consts(); ++c) domain.push_back(c);

  for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
    if (!fixture.rules.IsDefined(pred)) continue;
    int arity = symbols.PredicateArity(pred);
    // Enumerate every ground atom of this predicate.
    std::vector<int> index(arity, 0);
    while (true) {
      Fact fact;
      fact.predicate = pred;
      for (int i = 0; i < arity; ++i) fact.args.push_back(domain[index[i]]);
      HYPO_ASSIGN_OR_RETURN(bool holds, engine->ProveFact(fact));
      if (holds) facts.insert(FactToString(fact, symbols));
      // Advance the odometer.
      int pos = arity - 1;
      while (pos >= 0 &&
             ++index[pos] == static_cast<int>(domain.size())) {
        index[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
      if (arity == 0) break;
    }
    if (arity == 0) {
      // Handled above (single iteration).
    }
  }
  return facts;
}

TEST(DifferentialTest, EnginesAgreeOnRandomPrograms) {
  RandomProgramOptions options;
  int tested = 0;
  int skipped = 0;
  int stratified_covered = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    EngineOptions engine_options;
    engine_options.max_states = 40'000;
    engine_options.max_steps = 3'000'000;
    // Cross-check every memoized goal lookup against the from-scratch
    // canonical overlay key (cheap here: overlays stay small).
    engine_options.validate_contexts = true;

    TabledEngine tabled(&fixture.rules, &fixture.db, engine_options);
    auto reference = DeriveAll(&tabled, fixture);
    if (!reference.ok()) {
      ASSERT_EQ(reference.status().code(), StatusCode::kResourceExhausted)
          << reference.status();
      ++skipped;
      continue;
    }

    BottomUpEngine bottom_up(&fixture.rules, &fixture.db, engine_options);
    auto eager = DeriveAll(&bottom_up, fixture);
    if (eager.ok()) {
      EXPECT_EQ(*eager, *reference)
          << "seed " << seed << " program:\n"
          << RuleBaseToString(fixture.rules);
    } else {
      ASSERT_EQ(eager.status().code(), StatusCode::kResourceExhausted);
      ++skipped;
    }

    if (CheckLinearlyStratifiable(fixture.rules).ok()) {
      StratifiedProver prover(&fixture.rules, &fixture.db, engine_options);
      ASSERT_TRUE(prover.Init().ok());
      auto strat = DeriveAll(&prover, fixture);
      if (strat.ok()) {
        EXPECT_EQ(*strat, *reference)
            << "seed " << seed << " program:\n"
            << RuleBaseToString(fixture.rules);
        ++stratified_covered;
      } else {
        ASSERT_EQ(strat.status().code(), StatusCode::kResourceExhausted);
        ++skipped;
      }
    }
    ++tested;
  }
  EXPECT_GE(tested, 30) << "too many programs skipped (" << skipped << ")";
  EXPECT_GE(stratified_covered, 5)
      << "the generator should produce linearly stratifiable programs too";
}

TEST(DifferentialTest, DeletionProgramsTabledSelfConsistent) {
  // Random programs whose hypothetical premises carry [del: ...] groups.
  // Only the TabledEngine supports deletions: it must agree with itself
  // memo-warm vs memo-cold (same engine asked twice, fresh engine), with
  // the interned-context oracle enabled; the other engines must reject
  // such programs cleanly at Init.
  RandomProgramOptions options;
  options.num_rules = 6;
  options.hypothetical_probability = 0.5;
  options.deletion_probability = 0.5;
  int tested = 0;
  for (uint64_t seed = 300; seed < 320; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);
    if (!fixture.rules.HasDeletions()) continue;

    EngineOptions engine_options;
    engine_options.max_states = 40'000;
    engine_options.max_steps = 3'000'000;
    engine_options.validate_contexts = true;

    TabledEngine engine(&fixture.rules, &fixture.db, engine_options);
    auto cold = DeriveAll(&engine, fixture);
    if (!cold.ok()) {
      ASSERT_EQ(cold.status().code(), StatusCode::kResourceExhausted)
          << cold.status();
      continue;
    }
    auto warm = DeriveAll(&engine, fixture);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(*warm, *cold)
        << "seed " << seed << ": memo-warm replay diverged, program:\n"
        << RuleBaseToString(fixture.rules);

    TabledEngine fresh(&fixture.rules, &fixture.db, engine_options);
    auto refreshed = DeriveAll(&fresh, fixture);
    ASSERT_TRUE(refreshed.ok()) << refreshed.status();
    EXPECT_EQ(*refreshed, *cold)
        << "seed " << seed << ": fresh engine diverged, program:\n"
        << RuleBaseToString(fixture.rules);

    BottomUpEngine bottom_up(&fixture.rules, &fixture.db, engine_options);
    EXPECT_EQ(bottom_up.Init().code(), StatusCode::kUnimplemented);
    StratifiedProver prover(&fixture.rules, &fixture.db, engine_options);
    EXPECT_EQ(prover.Init().code(), StatusCode::kUnimplemented);
    ++tested;
  }
  EXPECT_GE(tested, 8) << "generator produced too few deletion programs";
}

TEST(DifferentialTest, NestedHypotheticalsAgreeAcrossEngines) {
  // Hypothetical-dense programs: IDB predicates may be queried inside
  // hypothetical premises, so proofs routinely stack overlay frames. All
  // three engines must produce identical answer sets, with the interned
  // context id cross-validated on every memoized lookup.
  RandomProgramOptions options;
  options.num_rules = 6;
  options.hypothetical_probability = 0.6;
  options.negation_probability = 0.15;
  int tested = 0;
  int stratified_covered = 0;
  for (uint64_t seed = 400; seed < 420; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    EngineOptions engine_options;
    engine_options.max_states = 40'000;
    engine_options.max_steps = 3'000'000;
    engine_options.validate_contexts = true;

    TabledEngine tabled(&fixture.rules, &fixture.db, engine_options);
    auto reference = DeriveAll(&tabled, fixture);
    if (!reference.ok()) {
      ASSERT_EQ(reference.status().code(), StatusCode::kResourceExhausted)
          << reference.status();
      continue;
    }

    BottomUpEngine bottom_up(&fixture.rules, &fixture.db, engine_options);
    auto eager = DeriveAll(&bottom_up, fixture);
    if (eager.ok()) {
      EXPECT_EQ(*eager, *reference)
          << "seed " << seed << " program:\n"
          << RuleBaseToString(fixture.rules);
    } else {
      ASSERT_EQ(eager.status().code(), StatusCode::kResourceExhausted);
    }

    if (CheckLinearlyStratifiable(fixture.rules).ok()) {
      StratifiedProver prover(&fixture.rules, &fixture.db, engine_options);
      ASSERT_TRUE(prover.Init().ok());
      auto strat = DeriveAll(&prover, fixture);
      if (strat.ok()) {
        EXPECT_EQ(*strat, *reference)
            << "seed " << seed << " program:\n"
            << RuleBaseToString(fixture.rules);
        ++stratified_covered;
      } else {
        ASSERT_EQ(strat.status().code(), StatusCode::kResourceExhausted);
      }
    }
    ++tested;
  }
  EXPECT_GE(tested, 12) << "too many hypothetical-dense programs skipped";
  EXPECT_GE(stratified_covered, 3);
}

TEST(DifferentialTest, MonotoneForNegationFreePrograms) {
  // §3.1: without negation the system is monotonic. Derive, add one EDB
  // fact, derive again: the first set must be contained in the second.
  RandomProgramOptions options;
  options.negation_probability = 0.0;
  options.num_rules = 6;
  for (uint64_t seed = 100; seed < 115; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    EngineOptions engine_options;
    engine_options.max_states = 40'000;
    TabledEngine before(&fixture.rules, &fixture.db, engine_options);
    auto derived_before = DeriveAll(&before, fixture);
    if (!derived_before.ok()) continue;

    // Add one fresh EDB fact.
    SymbolTable* symbols = fixture.symbols.get();
    PredicateId e0 = symbols->FindPredicate("e0");
    ASSERT_NE(e0, kInvalidPredicate);
    Fact extra;
    extra.predicate = e0;
    for (int i = 0; i < symbols->PredicateArity(e0); ++i) {
      extra.args.push_back(symbols->FindConst("c0"));
    }
    fixture.db.Insert(extra);

    TabledEngine after(&fixture.rules, &fixture.db, engine_options);
    auto derived_after = DeriveAll(&after, fixture);
    if (!derived_after.ok()) continue;

    EXPECT_TRUE(std::includes(derived_after->begin(), derived_after->end(),
                              derived_before->begin(),
                              derived_before->end()))
        << "monotonicity violated at seed " << seed;
  }
}

TEST(DifferentialTest, ParityOrderIndependence) {
  // Example 6's order-independence: permuting the database constants
  // (equivalently, feeding tuples in any order) never changes the answer.
  for (int n : {3, 4}) {
    ProgramFixture fixture = MakeParityFixture(n);
    std::vector<ConstId> permutation;
    for (int c = 0; c < fixture.symbols->num_consts(); ++c) {
      permutation.push_back(c);
    }
    Random rng(7);
    for (int trial = 0; trial < 4; ++trial) {
      rng.Shuffle(permutation);
      Database permuted =
          PermuteDatabaseConstants(fixture.db, permutation);
      TabledEngine engine(&fixture.rules, &permuted);
      Fact even;
      even.predicate = fixture.symbols->FindPredicate("even");
      auto r = engine.ProveFact(even);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(*r, n % 2 == 0) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(DifferentialTest, DeductionTheoremForAdditions) {
  // Inference rule 2 as a metamorphic property: R, DB ⊢ A[add: B] must
  // coincide with R, DB + {B} ⊢ A, for random programs, random ground
  // facts A and B.
  RandomProgramOptions options;
  options.num_rules = 6;
  for (uint64_t seed = 200; seed < 220; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);
    SymbolTable* symbols = fixture.symbols.get();

    // Pick A: a random IDB ground atom; B: a random EDB ground atom.
    // Not every generated name is necessarily interned (a predicate the
    // generator never used), so scan for the ones that exist.
    auto ground = [&](const char* stem, int count) -> StatusOr<Fact> {
      std::vector<PredicateId> candidates;
      for (int i = 0; i < count; ++i) {
        PredicateId pred =
            symbols->FindPredicate(stem + std::to_string(i));
        if (pred != kInvalidPredicate) candidates.push_back(pred);
      }
      if (candidates.empty()) {
        return Status::NotFound("no predicate with this stem");
      }
      Fact f;
      f.predicate = candidates[rng.Uniform(candidates.size())];
      for (int i = 0; i < symbols->PredicateArity(f.predicate); ++i) {
        f.args.push_back(symbols->FindConst(
            "c" + std::to_string(rng.Uniform(options.num_constants))));
      }
      return f;
    };
    auto a_or = ground("p", options.num_idb_predicates);
    auto b_or = ground("e", options.num_edb_predicates);
    if (!a_or.ok() || !b_or.ok()) continue;
    Fact a = *a_or;
    Fact b = *b_or;

    EngineOptions engine_options;
    engine_options.max_states = 40'000;

    // Left side: the hypothetical query over the original database.
    TabledEngine left(&fixture.rules, &fixture.db, engine_options);
    Query query;
    Atom query_atom{a.predicate, {}};
    for (ConstId c : a.args) query_atom.args.push_back(Term::MakeConst(c));
    Atom added_atom{b.predicate, {}};
    for (ConstId c : b.args) added_atom.args.push_back(Term::MakeConst(c));
    query.premises.push_back(
        Premise::Hypothetical(query_atom, {added_atom}));
    auto lhs = left.ProveQuery(query);
    if (!lhs.ok()) continue;  // Resource limits: skip.

    // Right side: B inserted into the database for real.
    Database extended = fixture.db.Clone();
    extended.Insert(b);
    TabledEngine right(&fixture.rules, &extended, engine_options);
    auto rhs = right.ProveFact(a);
    if (!rhs.ok()) continue;

    EXPECT_EQ(*lhs, *rhs) << "seed " << seed << ": deduction theorem "
                          << "violated for " << FactToString(a, *symbols)
                          << " [add: " << FactToString(b, *symbols) << "]";
  }
}

TEST(DifferentialTest, IncrementalDeltaMatchesRebuildAcrossInterleavings) {
  // The server contract: after any interleaving of base-fact inserts and
  // retracts, an engine maintained through ApplyBaseDelta must answer
  // exactly like a from-scratch engine over the mutated database. Runs
  // every engine family, the bottom-up one at 1 and 8 threads (the
  // incremental repair itself is sequential; the threads exercise the
  // repaired model being re-served by the parallel fixpoint).
  struct Config {
    const char* name;
    int threads;
  };
  const Config kConfigs[] = {
      {"tabled", 1}, {"stratified", 1}, {"bottomup", 1}, {"bottomup", 8}};

  RandomProgramOptions options;
  options.num_rules = 5;
  options.hypothetical_probability = 0.25;
  options.negation_probability = 0.2;

  auto make_engine = [](const std::string& name, const ProgramFixture& f,
                        const EngineOptions& eo) -> std::unique_ptr<Engine> {
    if (name == "tabled") {
      return std::make_unique<TabledEngine>(&f.rules, &f.db, eo);
    }
    if (name == "stratified") {
      return std::make_unique<StratifiedProver>(&f.rules, &f.db, eo);
    }
    return std::make_unique<BottomUpEngine>(&f.rules, &f.db, eo);
  };

  int interleavings_checked = 0;
  for (const Config& config : kConfigs) {
    for (uint64_t seed = 500; seed < 504; ++seed) {
      Random rng(seed);
      ProgramFixture fixture = MakeRandomProgram(options, &rng);
      if (std::string(config.name) == "stratified" &&
          !CheckLinearlyStratifiable(fixture.rules).ok()) {
        continue;
      }

      EngineOptions engine_options;
      engine_options.max_states = 40'000;
      engine_options.max_steps = 3'000'000;
      engine_options.num_threads = config.threads;

      std::unique_ptr<Engine> live =
          make_engine(config.name, fixture, engine_options);
      ASSERT_TRUE(live->Init().ok());

      SymbolTable* symbols = fixture.symbols.get();
      auto random_fact = [&](const char* stem, int count) -> Fact {
        Fact f;
        f.predicate = kInvalidPredicate;
        std::vector<PredicateId> candidates;
        for (int i = 0; i < count; ++i) {
          PredicateId pred =
              symbols->FindPredicate(stem + std::to_string(i));
          if (pred != kInvalidPredicate) candidates.push_back(pred);
        }
        if (candidates.empty()) return f;
        f.predicate = candidates[rng.Uniform(candidates.size())];
        for (int i = 0; i < symbols->PredicateArity(f.predicate); ++i) {
          f.args.push_back(symbols->FindConst(
              "c" + std::to_string(rng.Uniform(options.num_constants))));
        }
        return f;
      };

      bool skipped = false;
      for (int step = 0; step < 5 && !skipped; ++step) {
        // One mutation batch of 1-3 changes. Mostly EDB facts; sometimes
        // a base fact of an IDB predicate, which stresses the DRed
        // rederivation path (a retracted derived-and-base fact may keep
        // rule support, a re-inserted one may already be derived).
        BaseDelta delta;
        int batch = 1 + static_cast<int>(rng.Uniform(3));
        for (int k = 0; k < batch; ++k) {
          bool retract = rng.Uniform(2) == 0 && !fixture.db.empty();
          if (retract) {
            std::vector<Fact> pool;
            fixture.db.ForEach([&](const Fact& f) { pool.push_back(f); });
            const Fact& victim = pool[rng.Uniform(pool.size())];
            if (fixture.db.Retract(victim)) delta.retracts.push_back(victim);
          } else {
            const char* stem = rng.Uniform(5) == 0 ? "p" : "e";
            int count = stem[0] == 'p' ? options.num_idb_predicates
                                       : options.num_edb_predicates;
            Fact fresh = random_fact(stem, count);
            if (fresh.predicate == kInvalidPredicate) continue;
            if (fixture.db.Insert(fresh)) delta.inserts.push_back(fresh);
          }
        }

        Status applied = live->ApplyBaseDelta(delta);
        ASSERT_TRUE(applied.ok())
            << config.name << "/t" << config.threads << " seed " << seed
            << " step " << step << ": " << applied;

        auto incremental = DeriveAll(live.get(), fixture);
        if (!incremental.ok()) {
          ASSERT_EQ(incremental.status().code(),
                    StatusCode::kResourceExhausted);
          skipped = true;
          break;
        }
        std::unique_ptr<Engine> rebuilt =
            make_engine(config.name, fixture, engine_options);
        auto scratch = DeriveAll(rebuilt.get(), fixture);
        if (!scratch.ok()) {
          ASSERT_EQ(scratch.status().code(), StatusCode::kResourceExhausted);
          skipped = true;
          break;
        }
        EXPECT_EQ(*incremental, *scratch)
            << config.name << "/t" << config.threads << " seed " << seed
            << " step " << step << " diverged after "
            << delta.inserts.size() << " inserts / "
            << delta.retracts.size() << " retracts, program:\n"
            << RuleBaseToString(fixture.rules);
        ++interleavings_checked;
      }
    }
  }
  EXPECT_GE(interleavings_checked, 40)
      << "too many interleavings skipped on resource limits";
}

TEST(PermuteDatabaseTest, RenamesFacts) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db(symbols);
  ASSERT_TRUE(db.Insert("edge", {"a", "b"}).ok());
  ConstId a = symbols->FindConst("a");
  ConstId b = symbols->FindConst("b");
  std::vector<ConstId> permutation(symbols->num_consts());
  permutation[a] = b;
  permutation[b] = a;
  Database renamed = PermuteDatabaseConstants(db, permutation);
  Fact swapped;
  swapped.predicate = symbols->FindPredicate("edge");
  swapped.args = {b, a};
  EXPECT_TRUE(renamed.Contains(swapped));
  EXPECT_EQ(renamed.size(), 1);
}

}  // namespace
}  // namespace hypo
