#include <memory>

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "parser/lexer.h"
#include "parser/parser.h"

namespace hypo {
namespace {

std::shared_ptr<SymbolTable> Syms() {
  return std::make_shared<SymbolTable>();
}

TEST(LexerTest, TokenizesRule) {
  auto tokens = Tokenize("grad(S) <- take(S, his101).");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  ASSERT_EQ(tokens->size(), 13u);  // 12 tokens + End.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "grad");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kVariable);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kArrow);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, ColonDashIsArrow) {
  auto tokens = Tokenize("p :- q.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kArrow);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("p. % trailing words ~!@\nq.");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[2].text, "q");
  EXPECT_EQ((*tokens)[2].line, 2);
}

TEST(LexerTest, QuotedConstants) {
  auto tokens = Tokenize("p('Hello world').");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].text, "Hello world");
}

TEST(LexerTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(Tokenize("p('oops").ok());
}

TEST(LexerTest, BadCharacterReportsPosition) {
  auto tokens = Tokenize("p.\n  ?");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, NumeralsAreConstants) {
  auto tokens = Tokenize("next(0, 1).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].text, "0");
}

TEST(ParserTest, RoundTripsThroughPrinter) {
  const char* text =
      "grad(S) <- take(S, his101), take(S, eng201).\n"
      "within1(S, D) <- degree(S, D)[add: take(S, C)].\n"
      "sel(X) <- a(X), ~b(X).\n"
      "fact0.\n";
  auto rules = ParseRuleBase(text, Syms());
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_EQ(RuleBaseToString(*rules), text);
}

TEST(ParserTest, MultiAtomAdditions) {
  auto rules = ParseRuleBase("p <- q[add: r(a), s(b), t(c)].", Syms());
  ASSERT_TRUE(rules.ok()) << rules.status();
  const Rule& rule = rules->rule(0);
  ASSERT_EQ(rule.premises.size(), 1u);
  EXPECT_EQ(rule.premises[0].kind, PremiseKind::kHypothetical);
  EXPECT_EQ(rule.premises[0].additions.size(), 3u);
}

TEST(ParserTest, NegatedHypotheticalSuggestsRewrite) {
  auto rules = ParseRuleBase("p <- ~q[add: r].", Syms());
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("c <- A[add: B]"),
            std::string::npos);
}

TEST(ParserTest, MissingPeriodFails) {
  EXPECT_FALSE(ParseRuleBase("p <- q", Syms()).ok());
}

TEST(ParserTest, ArityMismatchAcrossRulesFails) {
  EXPECT_FALSE(ParseRuleBase("p(a). q <- p(a, b).", Syms()).ok());
}

TEST(ParserTest, VariablesScopedPerRule) {
  auto rules = ParseRuleBase("p(X) <- q(X).\nr(X) <- s(X).", Syms());
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->rule(0).num_vars(), 1);
  EXPECT_EQ(rules->rule(1).num_vars(), 1);
}

TEST(ParserTest, AddKeywordRequired) {
  auto rules = ParseRuleBase("p <- q[insert: r].", Syms());
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("add"), std::string::npos);
}

TEST(ParseFactsTest, LoadsGroundAtoms) {
  auto symbols = Syms();
  Database db(symbols);
  ASSERT_TRUE(ParseFactsInto("edge(a, b). edge(b, c). flag.", &db).ok());
  EXPECT_EQ(db.size(), 3);
  PredicateId edge = symbols->FindPredicate("edge");
  EXPECT_EQ(db.CountFor(edge), 2);
}

TEST(ParseFactsTest, RejectsNonGround) {
  auto symbols = Syms();
  Database db(symbols);
  EXPECT_FALSE(ParseFactsInto("edge(a, X).", &db).ok());
}

TEST(ParseFactsTest, RejectsRules) {
  auto symbols = Syms();
  Database db(symbols);
  EXPECT_FALSE(ParseFactsInto("p <- q.", &db).ok());
}

TEST(ParseQueryTest, GroundAndExistential) {
  auto symbols = Syms();
  auto q1 = ParseQuery("grad(tony)[add: take(tony, cs452)]", symbols.get());
  ASSERT_TRUE(q1.ok()) << q1.status();
  EXPECT_EQ(q1->premises.size(), 1u);
  EXPECT_EQ(q1->num_vars(), 0);

  auto q2 = ParseQuery("grad(S)[add: take(S, C)].", symbols.get());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->num_vars(), 2);
}

TEST(ParseQueryTest, ConjunctionsAllowed) {
  auto symbols = Syms();
  auto q = ParseQuery("node(X), path(X)[add: pnode(X)], ~bad(X)",
                      symbols.get());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->premises.size(), 3u);
}

TEST(ParseQueryTest, TrailingGarbageFails) {
  auto symbols = Syms();
  EXPECT_FALSE(ParseQuery("p(X). q", symbols.get()).ok());
}

TEST(ParseFactTest, SingleGroundAtom) {
  auto symbols = Syms();
  auto f = ParseFact("edge(a, b)", symbols.get());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->args.size(), 2u);
  EXPECT_FALSE(ParseFact("edge(a, X)", symbols.get()).ok());
}

TEST(ParseProgramTest, SplitsFactsFromRules) {
  auto program = ParseProgram(
      "edge(a, b).\n"
      "path(X, Y) <- edge(X, Y).\n"
      "edge(b, c).\n",
      Syms());
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules.num_rules(), 1);
  EXPECT_EQ(program->facts.size(), 2);
}

}  // namespace
}  // namespace hypo
