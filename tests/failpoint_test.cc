// Tests for the deterministic fault-injection framework (base/failpoint.h)
// and the differential "abort anywhere" sweep it enables: for every
// failpoint site a workload crosses, inject a fault at the 1st / middle /
// last hit, require the typed error (or an unaffected answer), then
// re-run the *same* engine instance to completion and require answers
// identical to the clean reference. Any stale memo entry, dirty model, or
// half-merged round a fault leaves behind shows up as a diff.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"

namespace hypo {
namespace {

const char* const kConfigs[] = {"tabled", "stratified", "bottomup",
                                "bottomup-demand", "bottomup-t8"};

std::unique_ptr<Engine> MakeEngine(const std::string& kind,
                                   const RuleBase* rules, const Database* db) {
  EngineOptions options;
  if (kind == "tabled") {
    return std::make_unique<TabledEngine>(rules, db, options);
  }
  if (kind == "stratified") {
    return std::make_unique<StratifiedProver>(rules, db, options);
  }
  options.demand = kind == "bottomup-demand";
  options.num_threads = kind == "bottomup-t8" ? 8 : 1;
  return std::make_unique<BottomUpEngine>(rules, db, options);
}

/// One query's outcome as a comparable string: "yes"/"no" for closed
/// queries, the sorted answer tuples for open ones, "error: ..." on any
/// failure. Sorting makes the encoding insensitive to the enumeration
/// order, which may legitimately differ between a fresh model and one
/// recomputed after an injected abort.
std::string RunOne(Engine* engine, const Query& query) {
  if (query.num_vars() == 0) {
    auto r = engine->ProveQuery(query);
    if (!r.ok()) return "error: " + r.status().ToString();
    return *r ? "yes" : "no";
  }
  auto r = engine->Answers(query);
  if (!r.ok()) return "error: " + r.status().ToString();
  std::vector<Tuple> tuples = std::move(*r);
  std::sort(tuples.begin(), tuples.end());
  std::string out;
  for (const Tuple& tuple : tuples) {
    out += '(';
    for (ConstId c : tuple) {
      out += std::to_string(c);
      out += ',';
    }
    out += ')';
  }
  return out;
}

std::vector<std::string> RunAll(Engine* engine,
                                const std::vector<Query>& queries) {
  std::vector<std::string> out;
  out.reserve(queries.size());
  for (const Query& q : queries) out.push_back(RunOne(engine, q));
  return out;
}

class FailpointTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = std::make_shared<SymbolTable>();

  /// A small program exercising every premise kind the engines meter:
  /// linear recursion, stratified negation, a hypothetical rule premise.
  RuleBase BuildProgram() {
    auto rules = ParseRuleBase(
        "reach(X, Y) <- edge(X, Y).\n"
        "reach(X, Z) <- edge(X, Y), reach(Y, Z).\n"
        "blocked(X) <- node(X), ~reach(a, X).\n"
        "bridge(X, Y) <- reach(X, Y)[add: edge(c, d)].",
        symbols_);
    EXPECT_TRUE(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  void BuildFacts(Database* db) {
    for (const char* e : {"ab", "bc", "de"}) {
      ASSERT_TRUE(db->Insert("edge", {std::string(1, e[0]),
                                      std::string(1, e[1])})
                      .ok());
    }
    for (const char* n : {"a", "b", "c", "d", "e"}) {
      ASSERT_TRUE(db->Insert("node", {n}).ok());
    }
  }

  std::vector<Query> BuildQueries() {
    std::vector<Query> out;
    for (const char* text :
         {"reach(a, c)", "reach(a, X)", "blocked(X)", "bridge(a, e)",
          "reach(a, e)[add: edge(c, d)]", "reach(X, e)[add: edge(c, d)]"}) {
      auto q = ParseQuery(text, symbols_.get());
      EXPECT_TRUE(q.ok()) << text << ": " << q.status();
      out.push_back(std::move(*q));
    }
    return out;
  }
};

TEST_F(FailpointTest, EnabledMatchesBuildConfig) {
  // HYPO_FAILPOINTS is forced off for Release by the top-level CMake;
  // everything below this test skips there instead of failing.
  EXPECT_EQ(FailpointsEnabled(), HYPO_FAILPOINTS != 0);
}

#if HYPO_FAILPOINTS

TEST_F(FailpointTest, RegistryCountsAndFiresNthHit) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  registry.ResetCounts();

  Database db(symbols_);
  ASSERT_TRUE(db.Insert("p", {"a"}).ok());
  EXPECT_EQ(registry.HitCount("db.insert"), 1);

  // nth = 2 counts from the Arm call: the next hit passes, the one after
  // fires, and the trigger clears itself (one-shot).
  registry.Arm("db.insert", 2, Status::Internal("injected"));
  EXPECT_TRUE(db.Insert("p", {"b"}).ok());
  Status fired = db.Insert("p", {"c"});
  EXPECT_EQ(fired.code(), StatusCode::kInternal);
  EXPECT_EQ(fired.message(), "injected");
  EXPECT_TRUE(db.Insert("p", {"c"}).ok());

  // Hit counters kept across DisarmAll, zeroed by ResetCounts; the site
  // shows up in the discovery listing.
  registry.Arm("db.insert", 1, Status::Internal("never fires"));
  registry.DisarmAll();
  EXPECT_TRUE(db.Insert("p", {"d"}).ok());
  bool listed = false;
  for (const auto& [site, count] : registry.HitSites()) {
    if (site == "db.insert") {
      listed = true;
      EXPECT_GE(count, 5);
    }
  }
  EXPECT_TRUE(listed);
  registry.ResetCounts();
  EXPECT_EQ(registry.HitCount("db.insert"), 0);
}

TEST_F(FailpointTest, DifferentialAbortAnywhereSweep) {
  RuleBase rules = BuildProgram();
  Database db(symbols_);
  BuildFacts(&db);
  std::vector<Query> queries = BuildQueries();
  FailpointRegistry& registry = FailpointRegistry::Global();

  for (const char* kind : kConfigs) {
    // Clean reference run; its hit counters discover which sites this
    // engine configuration actually crosses.
    registry.DisarmAll();
    registry.ResetCounts();
    auto reference_engine = MakeEngine(kind, &rules, &db);
    ASSERT_TRUE(reference_engine->Init().ok()) << kind;
    registry.ResetCounts();  // Discover query-time sites only.
    std::vector<std::string> reference =
        RunAll(reference_engine.get(), queries);
    for (const std::string& r : reference) {
      ASSERT_EQ(r.find("error"), std::string::npos)
          << kind << " reference run failed: " << r;
    }
    std::vector<std::pair<std::string, int64_t>> sites = registry.HitSites();
    ASSERT_FALSE(sites.empty()) << kind << " crossed no failpoint sites";

    for (const auto& [site, count] : sites) {
      for (int64_t nth : std::set<int64_t>{1, count / 2 + 1, count}) {
        auto engine = MakeEngine(kind, &rules, &db);
        ASSERT_TRUE(engine->Init().ok()) << kind;
        registry.Arm(site, nth,
                     Status::ResourceExhausted("injected fault at " + site));
        std::vector<std::string> faulted = RunAll(engine.get(), queries);
        registry.DisarmAll();
        // The fault may surface in whichever query crosses the site nth;
        // every other query must be byte-identical to the reference —
        // a changed *answer* means the abort corrupted state.
        for (size_t i = 0; i < queries.size(); ++i) {
          if (faulted[i] == reference[i]) continue;
          EXPECT_NE(faulted[i].find("injected fault"), std::string::npos)
              << kind << " site=" << site << " nth=" << nth << " query#" << i
              << ": wrong answer instead of the injected error: "
              << faulted[i];
        }
        // Same instance, faults cleared: full recovery to the reference.
        std::vector<std::string> recovered = RunAll(engine.get(), queries);
        EXPECT_EQ(recovered, reference)
            << kind << " site=" << site << " nth=" << nth
            << ": answers diverged after recovering from an injected abort";
      }
    }
  }
  registry.DisarmAll();
  registry.ResetCounts();
}

#endif  // HYPO_FAILPOINTS

}  // namespace
}  // namespace hypo
