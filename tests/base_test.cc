#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/random.h"
#include "base/status.h"
#include "base/statusor.h"
#include "base/string_util.h"

namespace hypo {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, CopyPreservesContent) {
  Status s = Status::NotFound("missing");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "missing");
  // The original is unaffected by the copy.
  EXPECT_EQ(s.message(), "missing");
}

TEST(StatusTest, MoveTransfersContent) {
  Status s = Status::Internal("boom");
  Status t = std::move(s);
  EXPECT_EQ(t.code(), StatusCode::kInternal);
  EXPECT_EQ(t.message(), "boom");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, GovernanceFactories) {
  Status d = Status::DeadlineExceeded("late");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: late");
  Status c = Status::Cancelled("stop");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.ToString(), "Cancelled: stop");
}

TEST(StatusTest, LimitTripMessageFormat) {
  // The uniform shape every engine's limit trips use: limit name,
  // configured value, observed value.
  EXPECT_EQ(LimitTripMessage("max_steps", 100, 257),
            "max_steps exceeded: configured 100, observed 257");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::OutOfRange("idx"); };
  auto outer = [&]() -> Status {
    HYPO_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusIsRejected) {
  StatusOr<int> v{Status::OK()};
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, AssignOrReturnUnwraps) {
  auto inner = []() -> StatusOr<int> { return 7; };
  auto outer = [&]() -> StatusOr<int> {
    HYPO_ASSIGN_OR_RETURN(int x, inner());
    return x + 1;
  };
  EXPECT_EQ(*outer(), 8);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> StatusOr<int> {
    return Status::ResourceExhausted("cap");
  };
  auto outer = [&]() -> StatusOr<int> {
    HYPO_ASSIGN_OR_RETURN(int x, inner());
    return x + 1;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kResourceExhausted);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(HashTest, CombineIsOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashTest, VectorHashDistinguishesLengths) {
  std::vector<int> a = {0};
  std::vector<int> b = {0, 0};
  EXPECT_NE(HashVector(a, a.size()), HashVector(b, b.size()));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("take_2"));
  EXPECT_TRUE(IsIdentifier("_x"));
  EXPECT_FALSE(IsIdentifier("2x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

}  // namespace
}  // namespace hypo
