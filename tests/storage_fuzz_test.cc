#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/stratification.h"
#include "ast/printer.h"
#include "base/random.h"
#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "workload/random_programs.h"

namespace hypo {
namespace {

// Differential fuzzing of the two storage backends (columnar flat
// storage vs the reference hash path): identical contents, identical
// probe answers in identical order, identical engine results at every
// thread count, across insert/retract interleavings and
// Seal/Unseal/epoch cycles.

Database CopyWithBackend(const Database& src,
                         std::shared_ptr<SymbolTable> symbols,
                         StorageBackend backend) {
  Database out(std::move(symbols), backend);
  src.ForEach([&](const Fact& f) { out.Insert(f); });
  return out;
}

/// Every tuple of `pred` whose `mask` columns equal `key`, by full scan
/// in insertion order — the specification ProbeIndex must match.
std::vector<Tuple> BruteForceProbe(const Database& db, PredicateId pred,
                                   ColumnMask mask, const Tuple& key) {
  std::vector<Tuple> out;
  const Database::RowsView rows = db.TuplesFor(pred);
  for (size_t r = 0; r < rows.size(); ++r) {
    Tuple t = rows.TupleAt(r);
    size_t k = 0;
    bool match = true;
    for (size_t col = 0; col < t.size(); ++col) {
      if ((mask >> col) & 1u) {
        if (t[col] != key[k++]) {
          match = false;
          break;
        }
      }
    }
    if (match) out.push_back(std::move(t));
  }
  return out;
}

/// Resolves a ProbeIndex answer to materialized tuples; a ScanAllMarker
/// resolves through the brute-force scan (that is its contract).
std::vector<Tuple> ResolveProbe(const Database& db, PredicateId pred,
                                ColumnMask mask, const Tuple& key) {
  Database::RowRange range = db.ProbeIndex(pred, mask, key);
  if (range.scan_all) return BruteForceProbe(db, pred, mask, key);
  std::vector<Tuple> out;
  const Database::RowsView rows = db.TuplesFor(pred);
  out.reserve(range.count);
  for (size_t i = 0; i < range.count; ++i) {
    out.push_back(rows.TupleAt(static_cast<size_t>(range.data[i])));
  }
  return out;
}

Fact RandomFact(const SymbolTable& symbols, PredicateId pred, int num_consts,
                Random* rng) {
  Fact f;
  f.predicate = pred;
  for (int i = 0; i < symbols.PredicateArity(pred); ++i) {
    f.args.push_back(static_cast<ConstId>(rng->Uniform(num_consts)));
  }
  return f;
}

/// Both backends, driven through the same random insert/retract
/// interleaving with Seal/Unseal epoch cycles, must agree with each
/// other and with the brute-force scan on every probe.
TEST(StorageFuzzTest, ProbesMatchBruteForceAcrossInterleavings) {
  constexpr int kNumConsts = 6;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Random rng(900 + seed);
    auto symbols = std::make_shared<SymbolTable>();
    std::vector<PredicateId> preds;
    for (int arity = 0; arity <= 3; ++arity) {
      preds.push_back(
          *symbols->InternPredicate("r" + std::to_string(arity), arity));
    }
    for (int c = 0; c < kNumConsts; ++c) {
      symbols->InternConst("c" + std::to_string(c));
    }
    Database columnar(symbols, StorageBackend::kColumnar);
    Database hash(symbols, StorageBackend::kReferenceHash);

    std::vector<Fact> live;
    for (int step = 0; step < 120; ++step) {
      // Mutate both databases identically.
      if (!live.empty() && rng.Bernoulli(0.35)) {
        size_t victim = rng.Uniform(live.size());
        Fact f = live[victim];
        live.erase(live.begin() + victim);
        ASSERT_TRUE(columnar.Retract(f));
        ASSERT_TRUE(hash.Retract(f));
      } else {
        PredicateId pred = preds[rng.Uniform(preds.size())];
        Fact f = RandomFact(*symbols, pred, kNumConsts, &rng);
        bool fresh = columnar.Insert(f);
        ASSERT_EQ(fresh, hash.Insert(f)) << "duplicate detection diverged";
        if (fresh) live.push_back(f);
      }
      ASSERT_EQ(columnar.size(), hash.size());
      ASSERT_EQ(columnar.constants(), hash.constants())
          << "tracked constant domains diverged at step " << step;

      // Every few steps, run an epoch cycle: prepare + seal (sorted on
      // the columnar side), probe sealed, then unseal.
      bool sealed_phase = step % 7 == 6;
      if (sealed_phase) {
        columnar.EnableSortedIndexes();
        for (Database* db : {&columnar, &hash}) {
          for (PredicateId pred : preds) {
            int arity = symbols->PredicateArity(pred);
            for (ColumnMask mask = 1;
                 mask < (1u << arity); ++mask) {
              db->PrepareIndex(pred, mask);
            }
          }
          db->SealIndexes();
        }
      }

      // Random probes: both backends match the brute-force scan exactly,
      // including result order (insertion order within the match set).
      for (int probe = 0; probe < 4; ++probe) {
        PredicateId pred = preds[rng.Uniform(preds.size())];
        int arity = symbols->PredicateArity(pred);
        if (arity == 0) continue;
        ColumnMask mask =
            1u + static_cast<ColumnMask>(rng.Uniform((1u << arity) - 1));
        Tuple key;
        for (int col = 0; col < arity; ++col) {
          if ((mask >> col) & 1u) {
            key.push_back(static_cast<ConstId>(rng.Uniform(kNumConsts)));
          }
        }
        std::vector<Tuple> expect = BruteForceProbe(columnar, pred, mask, key);
        EXPECT_EQ(ResolveProbe(columnar, pred, mask, key), expect)
            << "columnar probe diverged, seed " << seed << " step " << step;
        EXPECT_EQ(ResolveProbe(hash, pred, mask, key), expect)
            << "hash probe diverged, seed " << seed << " step " << step;
      }

      if (sealed_phase) {
        columnar.UnsealIndexes();
        hash.UnsealIndexes();
      }
    }
    // Byte accounting differs by design — exact arena bytes on the
    // columnar side, the conservative per-fact estimate on the hash
    // side — but both must be positive while facts are stored and the
    // columnar figure must equal its own arena report.
    if (!live.empty()) {
      EXPECT_GT(columnar.ApproxBytes(), 0);
      EXPECT_GT(hash.ApproxBytes(), 0);
      EXPECT_GT(columnar.ArenaBytes(), 0);
    }
    EXPECT_EQ(hash.ArenaBytes(), 0) << "reference backend has no arena";
  }
}

/// ClearRelation behaves identically on both backends, including the
/// tracked constant domain and subsequent probes.
TEST(StorageFuzzTest, ClearRelationParity) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Random rng(7100 + seed);
    auto symbols = std::make_shared<SymbolTable>();
    PredicateId p = *symbols->InternPredicate("p", 2);
    PredicateId q = *symbols->InternPredicate("q", 1);
    for (int c = 0; c < 5; ++c) symbols->InternConst("c" + std::to_string(c));
    Database columnar(symbols, StorageBackend::kColumnar);
    Database hash(symbols, StorageBackend::kReferenceHash);
    for (int i = 0; i < 30; ++i) {
      PredicateId pred = rng.Bernoulli(0.5) ? p : q;
      Fact f = RandomFact(*symbols, pred, 5, &rng);
      ASSERT_EQ(columnar.Insert(f), hash.Insert(f));
    }
    ASSERT_EQ(columnar.ClearRelation(p), hash.ClearRelation(p));
    EXPECT_EQ(columnar.size(), hash.size());
    EXPECT_EQ(columnar.constants(), hash.constants());
    EXPECT_TRUE(columnar.TuplesFor(p).empty());
    ConstId c0 = symbols->FindConst("c0");
    EXPECT_EQ(ResolveProbe(columnar, q, 0b1, {c0}),
              ResolveProbe(hash, q, 0b1, {c0}));
  }
}

/// All three engine families, at 1 and 8 threads for the bottom-up one,
/// derive bit-identical models on both storage backends.
TEST(StorageFuzzTest, EnginesBitIdenticalAcrossBackendsAndThreads) {
  RandomProgramOptions options;
  options.num_rules = 6;
  options.negation_probability = 0.2;
  options.hypothetical_probability = 0.25;

  const StorageBackend kBackends[] = {StorageBackend::kColumnar,
                                      StorageBackend::kReferenceHash};
  int programs_checked = 0;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    EngineOptions eo;
    eo.max_states = 40'000;
    eo.max_steps = 3'000'000;

    // Reference: bottom-up, 1 thread, columnar. FactsFor returns the
    // model's tuples in derivation order, so comparing the vectors (not
    // sets) checks bit-identical iteration order across backends.
    Database columnar_db =
        CopyWithBackend(fixture.db, fixture.symbols, StorageBackend::kColumnar);
    BottomUpEngine reference(&fixture.rules, &columnar_db, eo);
    if (!reference.Init().ok()) continue;

    std::vector<PredicateId> idb;
    for (int pred = 0; pred < fixture.symbols->num_predicates(); ++pred) {
      if (fixture.rules.IsDefined(pred)) idb.push_back(pred);
    }
    bool skipped = false;
    std::vector<std::vector<Tuple>> expect;
    for (PredicateId pred : idb) {
      auto facts = reference.FactsFor(pred);
      if (!facts.ok()) {
        ASSERT_EQ(facts.status().code(), StatusCode::kResourceExhausted);
        skipped = true;
        break;
      }
      expect.push_back(*std::move(facts));
    }
    if (skipped) continue;

    for (StorageBackend backend : kBackends) {
      Database db = CopyWithBackend(fixture.db, fixture.symbols, backend);
      for (int threads : {1, 8}) {
        EngineOptions peo = eo;
        peo.num_threads = threads;
        BottomUpEngine engine(&fixture.rules, &db, peo);
        ASSERT_TRUE(engine.Init().ok());
        for (size_t i = 0; i < idb.size(); ++i) {
          auto facts = engine.FactsFor(idb[i]);
          ASSERT_TRUE(facts.ok()) << facts.status();
          EXPECT_EQ(*facts, expect[i])
              << "seed " << seed << " backend "
              << (backend == StorageBackend::kColumnar ? "columnar" : "hash")
              << " t" << threads << " diverged on "
              << fixture.symbols->PredicateName(idb[i]) << "\n"
              << RuleBaseToString(fixture.rules);
        }
      }

      // The top-down engines must prove exactly the reference model's
      // facts (and nothing checkable beyond it diverges — spot-check
      // with the derived facts themselves).
      TabledEngine tabled(&fixture.rules, &db, eo);
      std::unique_ptr<StratifiedProver> stratified;
      if (CheckLinearlyStratifiable(fixture.rules).ok()) {
        stratified =
            std::make_unique<StratifiedProver>(&fixture.rules, &db, eo);
      }
      for (size_t i = 0; i < idb.size() && !skipped; ++i) {
        for (const Tuple& args : expect[i]) {
          Fact f;
          f.predicate = idb[i];
          f.args = args;
          auto proved = tabled.ProveFact(f);
          if (!proved.ok()) {
            skipped = true;
            break;
          }
          EXPECT_TRUE(*proved) << "tabled missed a model fact, seed "
                               << seed;
          if (stratified != nullptr) {
            auto sp = stratified->ProveFact(f);
            if (sp.ok()) {
              EXPECT_TRUE(*sp) << "stratified missed a model fact, seed "
                               << seed;
            }
          }
        }
      }
    }
    ++programs_checked;
  }
  EXPECT_GE(programs_checked, 5)
      << "too many programs skipped on resource limits to be meaningful";
}

/// Incremental base-fact maintenance (the server epoch path) stays
/// bit-identical across backends under insert/retract interleavings.
TEST(StorageFuzzTest, ApplyBaseDeltaParityAcrossBackends) {
  RandomProgramOptions options;
  options.num_rules = 5;
  options.negation_probability = 0.2;
  options.hypothetical_probability = 0.2;

  for (uint64_t seed = 200; seed < 206; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    EngineOptions eo;
    eo.max_states = 40'000;
    eo.max_steps = 3'000'000;

    Database columnar_db =
        CopyWithBackend(fixture.db, fixture.symbols, StorageBackend::kColumnar);
    Database hash_db = CopyWithBackend(fixture.db, fixture.symbols,
                                       StorageBackend::kReferenceHash);
    BottomUpEngine columnar_engine(&fixture.rules, &columnar_db, eo);
    BottomUpEngine hash_engine(&fixture.rules, &hash_db, eo);
    if (!columnar_engine.Init().ok() || !hash_engine.Init().ok()) continue;

    std::vector<PredicateId> idb;
    for (int pred = 0; pred < fixture.symbols->num_predicates(); ++pred) {
      if (fixture.rules.IsDefined(pred)) idb.push_back(pred);
    }

    std::vector<Fact> live;
    columnar_db.ForEach([&](const Fact& f) { live.push_back(f); });
    bool skipped = false;
    for (int step = 0; step < 4 && !skipped; ++step) {
      BaseDelta delta;
      int batch = 1 + static_cast<int>(rng.Uniform(3));
      for (int k = 0; k < batch; ++k) {
        if (!live.empty() && rng.Bernoulli(0.4)) {
          size_t victim = rng.Uniform(live.size());
          Fact f = live[victim];
          live.erase(live.begin() + victim);
          ASSERT_TRUE(columnar_db.Retract(f));
          ASSERT_TRUE(hash_db.Retract(f));
          delta.retracts.push_back(f);
        } else {
          PredicateId pred = static_cast<PredicateId>(
              rng.Uniform(fixture.symbols->num_predicates()));
          Fact f = RandomFact(*fixture.symbols, pred,
                              options.num_constants, &rng);
          if (!columnar_db.Insert(f)) {
            hash_db.Insert(f);  // Keep the two databases in lockstep.
            continue;
          }
          ASSERT_TRUE(hash_db.Insert(f));
          live.push_back(f);
          delta.inserts.push_back(f);
        }
      }
      if (!columnar_engine.ApplyBaseDelta(delta).ok() ||
          !hash_engine.ApplyBaseDelta(delta).ok()) {
        skipped = true;
        break;
      }
      for (PredicateId pred : idb) {
        auto lhs = columnar_engine.FactsFor(pred);
        auto rhs = hash_engine.FactsFor(pred);
        if (!lhs.ok() || !rhs.ok()) {
          skipped = true;
          break;
        }
        EXPECT_EQ(*lhs, *rhs)
            << "backends diverged after delta, seed " << seed << " step "
            << step << "\n" << RuleBaseToString(fixture.rules);
      }
    }
  }
}

// HYPO_STORAGE selects the backend process-wide; a typo must fail fast
// (the CLI and the server refuse to start), never silently evaluate on
// the default backend. Both valid spellings and the unset/empty forms
// must pass.
TEST(StorageFuzzTest, ValidateStorageEnvAcceptsOnlyKnownBackends) {
  const char* saved = std::getenv("HYPO_STORAGE");
  std::string saved_value = saved != nullptr ? saved : "";

  for (const char* good : {"columnar", "hash", ""}) {
    ASSERT_EQ(setenv("HYPO_STORAGE", good, 1), 0);
    Status s = Database::ValidateStorageEnv();
    EXPECT_TRUE(s.ok()) << "\"" << good << "\": " << s;
  }
  ASSERT_EQ(unsetenv("HYPO_STORAGE"), 0);
  EXPECT_TRUE(Database::ValidateStorageEnv().ok());

  for (const char* bad : {"colmnar", "HASH", "columnar ", "rowwise"}) {
    ASSERT_EQ(setenv("HYPO_STORAGE", bad, 1), 0);
    Status s = Database::ValidateStorageEnv();
    ASSERT_FALSE(s.ok()) << "accepted \"" << bad << "\"";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s;
    EXPECT_NE(s.message().find(bad), std::string::npos)
        << "the offending value should be echoed: " << s;
  }

  if (saved != nullptr) {
    ASSERT_EQ(setenv("HYPO_STORAGE", saved_value.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("HYPO_STORAGE"), 0);
  }
}

}  // namespace
}  // namespace hypo
