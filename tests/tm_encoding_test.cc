#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/stratification.h"
#include "encode/tm_encoder.h"
#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "tm/machines_library.h"
#include "tm/simulator.h"

namespace hypo {
namespace {

/// Decides `accept` for the §5.1 encoding of `machines` on `input` with
/// the given engine, and checks it matches the simulator.
void CheckEncodingAgainstSimulator(const std::vector<MachineSpec>& machines,
                                   const std::vector<int>& input, int n,
                                   const char* label) {
  CascadeSimulator sim(machines, n, n);
  auto expected = sim.Accepts(input);
  ASSERT_TRUE(expected.ok()) << label << ": " << expected.status();

  auto encoding = EncodeCascade(machines, input, n);
  ASSERT_TRUE(encoding.ok()) << label << ": " << encoding.status();
  ProgramFixture& program = encoding->program;

  Fact accept;
  accept.predicate =
      program.symbols->FindPredicate(encoding->accept_predicate);
  ASSERT_NE(accept.predicate, kInvalidPredicate);

  {
    StratifiedProver prover(&program.rules, &program.db);
    ASSERT_TRUE(prover.Init().ok()) << label;
    auto got = prover.ProveFact(accept);
    ASSERT_TRUE(got.ok()) << label << ": " << got.status();
    EXPECT_EQ(*got, *expected) << label << " (stratified prover)";
  }
  {
    TabledEngine tabled(&program.rules, &program.db);
    auto got = tabled.ProveFact(accept);
    ASSERT_TRUE(got.ok()) << label << ": " << got.status();
    EXPECT_EQ(*got, *expected) << label << " (tabled)";
  }
}

TEST(TmEncodingTest, SingleMachineDeterministic) {
  CheckEncodingAgainstSimulator({MakeFirstCellIsOneMachine()},
                                {kSym1}, 3, "first-cell yes");
  CheckEncodingAgainstSimulator({MakeFirstCellIsOneMachine()},
                                {kSym0}, 3, "first-cell no");
}

TEST(TmEncodingTest, ContainsOneScans) {
  CheckEncodingAgainstSimulator({MakeContainsOneMachine()},
                                {kSym0, kSym1}, 4, "contains-one yes");
  CheckEncodingAgainstSimulator({MakeContainsOneMachine()},
                                {kSym0, kSym0}, 4, "contains-one no");
}

TEST(TmEncodingTest, ParityMachineEncodes) {
  for (int ones = 0; ones <= 3; ++ones) {
    std::vector<int> input;
    for (int i = 0; i < ones; ++i) input.push_back(kSym1);
    input.push_back(kSym0);
    CheckEncodingAgainstSimulator(
        {MakeParityMachine(/*accept_even=*/true)}, input, 7,
        ("parity ones=" + std::to_string(ones)).c_str());
  }
}

TEST(TmEncodingTest, NondeterministicGuess) {
  CheckEncodingAgainstSimulator({MakeGuessMachine()}, {kSym0}, 3, "guess");
}

TEST(TmEncodingTest, OracleCascadeBothAnswers) {
  std::vector<MachineSpec> yes_cascade = {MakeAskOracleMachine(true),
                                          MakeFirstCellIsOneMachine()};
  CheckEncodingAgainstSimulator(yes_cascade, {kSym1}, 4, "oracle-yes on 1");
  CheckEncodingAgainstSimulator(yes_cascade, {kSym0}, 4, "oracle-yes on 0");

  std::vector<MachineSpec> no_cascade = {MakeAskOracleMachine(false),
                                         MakeFirstCellIsOneMachine()};
  CheckEncodingAgainstSimulator(no_cascade, {kSym1}, 4, "oracle-no on 1");
  CheckEncodingAgainstSimulator(no_cascade, {kSym0}, 4, "oracle-no on 0");
}

TEST(TmEncodingTest, ThreeLevelCascade) {
  std::vector<MachineSpec> cascade = {MakeExpectNoMachine(),
                                      MakeAskOracleMachine(true),
                                      MakeFirstCellIsOneMachine()};
  CheckEncodingAgainstSimulator(cascade, {kSym1}, 4, "three-level");
}

TEST(TmEncodingTest, StratificationMatchesCascadeDepth) {
  // Theorem 1's shape: the encoding of a k-machine cascade has k strata.
  struct Case {
    std::vector<MachineSpec> machines;
    int expected_strata;
  };
  std::vector<Case> cases;
  cases.push_back({{MakeParityMachine(true)}, 1});
  cases.push_back(
      {{MakeAskOracleMachine(true), MakeFirstCellIsOneMachine()}, 2});
  cases.push_back({{MakeExpectNoMachine(), MakeAskOracleMachine(true),
                    MakeFirstCellIsOneMachine()},
                   3});
  for (const Case& c : cases) {
    auto encoding = EncodeCascade(c.machines, {kSym1}, 4);
    ASSERT_TRUE(encoding.ok()) << encoding.status();
    auto strat = ComputeLinearStratification(encoding->program.rules);
    ASSERT_TRUE(strat.ok()) << strat.status();
    EXPECT_EQ(strat->num_strata, c.expected_strata);
    // accept_i must live in Σ_i.
    for (int i = 1; i <= c.expected_strata; ++i) {
      PredicateId accept_i = encoding->program.symbols->FindPredicate(
          "accept_" + std::to_string(i));
      ASSERT_NE(accept_i, kInvalidPredicate);
      EXPECT_EQ(strat->StratumOf(accept_i), i);
      EXPECT_TRUE(strat->InSigma(accept_i));
    }
  }
}

TEST(TmEncodingTest, BottomUpEngineAgreesOnSmallEncoding) {
  // The encoding is select-guarded (control facts gate every transition),
  // so even the eager engine stays bounded.
  auto encoding = EncodeCascade({MakeFirstCellIsOneMachine()}, {kSym1}, 3);
  ASSERT_TRUE(encoding.ok());
  BottomUpEngine engine(&encoding->program.rules, &encoding->program.db);
  Fact accept;
  accept.predicate =
      encoding->program.symbols->FindPredicate(encoding->accept_predicate);
  auto got = engine.ProveFact(accept);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(*got);
}

TEST(TmEncodingTest, RejectsBadGeometry) {
  EXPECT_FALSE(EncodeCascade({MakeFirstCellIsOneMachine()}, {}, 1).ok());
  EXPECT_FALSE(EncodeCascade({MakeFirstCellIsOneMachine()},
                             {kSym1, kSym1, kSym1}, 2)
                   .ok());
  EXPECT_FALSE(EncodeCascade({}, {}, 4).ok());
}

}  // namespace
}  // namespace hypo
