#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/stratification.h"
#include "ast/printer.h"
#include "base/random.h"
#include "engine/binding.h"
#include "engine/bottom_up.h"
#include "engine/plan.h"
#include "engine/scan.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "engine/vm/compiler.h"
#include "workload/random_programs.h"

namespace hypo {
namespace {

// Structural invariants of BodyPlan (the contract every walker and the
// bytecode compiler rely on), checked over random programs, plus a
// differential fuzz across the three engines × {interp, vm} executors ×
// thread counts × storage backends: the compiled bytecode must be
// answer-identical to the interpretive plan walker everywhere.

/// The statically-bound probe signature `step` should carry: column i is
/// fixed iff argument i is a constant or a variable bound by an earlier
/// step (mirrors BoundSignature's runtime computation, including the
/// kMaxIndexedColumns cutoff).
ColumnMask StaticMask(const Atom& atom, const std::vector<bool>& bound) {
  ColumnMask mask = 0;
  int limit = std::min<int>(static_cast<int>(atom.args.size()),
                            kMaxIndexedColumns);
  for (int i = 0; i < limit; ++i) {
    const Term& t = atom.args[i];
    if (t.is_const() || bound[t.var_index()]) mask |= 1u << i;
  }
  return mask;
}

void MarkAtomBound(const Atom& atom, std::vector<bool>* bound) {
  for (const Term& t : atom.args) {
    if (t.is_var()) (*bound)[t.var_index()] = true;
  }
}

bool AtomFullyBound(const Atom& atom, const std::vector<bool>& bound) {
  for (const Term& t : atom.args) {
    if (t.is_var() && !bound[t.var_index()]) return false;
  }
  return true;
}

TEST(PlanTest, BodyPlanOrderingInvariants) {
  RandomProgramOptions options;
  options.num_rules = 10;
  options.max_premises = 4;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    Random rng(7000 + seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);
    for (int r = 0; r < fixture.rules.num_rules(); ++r) {
      const Rule& rule = fixture.rules.rule(r);
      BodyPlan plan = BodyPlan::Build(rule.premises, &rule.head,
                                      rule.num_vars(), &fixture.db);
      SCOPED_TRACE("seed " + std::to_string(seed) + " rule " +
                   std::to_string(r) + "\n" +
                   RuleBaseToString(fixture.rules));

      std::vector<int> premise_steps(rule.premises.size(), 0);
      std::vector<bool> bound(rule.num_vars(), false);
      std::vector<bool> prev_bound = bound;  // Before the previous step.
      bool seen_negated = false;
      for (size_t s = 0; s < plan.steps.size(); ++s) {
        const PlanStep& step = plan.steps[s];
        std::vector<bool> before = bound;
        switch (step.kind) {
          case PlanStep::Kind::kMatchPositive: {
            EXPECT_FALSE(seen_negated)
                << "positive premise planned after a negated one";
            ASSERT_GE(step.premise_index, 0);
            const Premise& p = rule.premises[step.premise_index];
            ++premise_steps[step.premise_index];
            // Static mask == the mask the plan recorded == the mask the
            // runtime computes from an equivalently-bound Binding.
            EXPECT_EQ(step.probe_mask, StaticMask(p.atom, bound));
            Binding binding(rule.num_vars());
            for (int v = 0; v < rule.num_vars(); ++v) {
              if (bound[v]) binding.Set(v, 0);
            }
            Tuple key;
            EXPECT_EQ(step.probe_mask,
                      BoundSignature(p.atom, binding, &key));
            MarkAtomBound(p.atom, &bound);
            break;
          }
          case PlanStep::Kind::kEnumerateVars: {
            EXPECT_FALSE(seen_negated)
                << "enumeration planned after a negated premise";
            EXPECT_FALSE(step.enum_vars.empty());
            for (VarIndex v : step.enum_vars) bound[v] = true;
            break;
          }
          case PlanStep::Kind::kHypothetical: {
            EXPECT_FALSE(seen_negated)
                << "hypothetical premise planned after a negated one";
            ASSERT_GE(step.premise_index, 0);
            const Premise& p = rule.premises[step.premise_index];
            ++premise_steps[step.premise_index];
            // A hypothetical test needs every variable ground.
            EXPECT_TRUE(AtomFullyBound(p.atom, bound));
            for (const Atom& a : p.additions) {
              EXPECT_TRUE(AtomFullyBound(a, bound));
            }
            for (const Atom& a : p.deletions) {
              EXPECT_TRUE(AtomFullyBound(a, bound));
            }
            // Adjacency: when an enumeration immediately precedes this
            // test, it binds exactly the premise's still-unbound
            // variables — the planner pairs each hypothetical with its
            // own grounding step, nothing interleaves.
            if (s > 0 &&
                plan.steps[s - 1].kind == PlanStep::Kind::kEnumerateVars) {
              std::set<VarIndex> needed;
              auto collect = [&](const Atom& a) {
                for (const Term& t : a.args) {
                  if (t.is_var() && !prev_bound[t.var_index()]) {
                    needed.insert(t.var_index());
                  }
                }
              };
              collect(p.atom);
              for (const Atom& a : p.additions) collect(a);
              for (const Atom& a : p.deletions) collect(a);
              std::set<VarIndex> enumerated(
                  plan.steps[s - 1].enum_vars.begin(),
                  plan.steps[s - 1].enum_vars.end());
              EXPECT_EQ(enumerated, needed)
                  << "enumeration before a hypothetical premise does not "
                     "bind exactly its free variables";
            }
            break;
          }
          case PlanStep::Kind::kNegated: {
            seen_negated = true;
            ASSERT_GE(step.premise_index, 0);
            ++premise_steps[step.premise_index];
            break;
          }
        }
        prev_bound = std::move(before);
      }
      for (size_t i = 0; i < premise_steps.size(); ++i) {
        EXPECT_EQ(premise_steps[i], 1)
            << "premise " << i << " planned " << premise_steps[i]
            << " times";
      }
    }
  }
}

TEST(PlanTest, CompiledBytecodeAgreesWithPlan) {
  RandomProgramOptions options;
  options.num_rules = 10;
  options.max_premises = 4;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Random rng(8200 + seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);
    for (int r = 0; r < fixture.rules.num_rules(); ++r) {
      const Rule& rule = fixture.rules.rule(r);
      BodyPlan plan = BodyPlan::Build(rule.premises, &rule.head,
                                      rule.num_vars(), &fixture.db);
      vm::CompileInput in;
      in.premises = &rule.premises;
      in.plan = &plan;
      in.num_vars = rule.num_vars();
      vm::Program prog = vm::Compile(in);
      SCOPED_TRACE("seed " + std::to_string(seed) + " rule " +
                   std::to_string(r) + "\n" +
                   vm::Disassemble(prog, rule.premises,
                                   fixture.rules.symbols()));

      ASSERT_FALSE(prog.ops.empty());
      EXPECT_EQ(prog.ops.back().code, vm::OpCode::kEmitHead);
      EXPECT_EQ(prog.num_vars, rule.num_vars());

      // Probe masks survive compilation: a scan op carries exactly the
      // plan step's statically-computed signature.
      std::vector<ColumnMask> step_mask(rule.premises.size(), 0);
      std::vector<bool> has_mask(rule.premises.size(), false);
      for (const PlanStep& step : plan.steps) {
        if (step.kind == PlanStep::Kind::kMatchPositive) {
          step_mask[step.premise_index] = step.probe_mask;
          has_mask[step.premise_index] = true;
        }
      }
      bool seen_neg_op = false;
      for (const vm::Op& op : prog.ops) {
        switch (op.code) {
          case vm::OpCode::kScan:
            EXPECT_FALSE(seen_neg_op);
            ASSERT_TRUE(has_mask[op.premise_index]);
            EXPECT_EQ(op.mask, step_mask[op.premise_index]);
            break;
          case vm::OpCode::kTestGround:
          case vm::OpCode::kEnumDomain:
          case vm::OpCode::kProveCall:
          case vm::OpCode::kHypoTest:
            EXPECT_FALSE(seen_neg_op)
                << "binding op compiled after a negation op";
            break;
          case vm::OpCode::kNegGround:
          case vm::OpCode::kNegProbe:
          case vm::OpCode::kNegCall:
            seen_neg_op = true;
            break;
          case vm::OpCode::kEmitHead:
            break;
        }
      }
    }
  }
}

/// Collects every derivable IDB ground fact (differential_test's oracle
/// loop, reused here to diff executors instead of engines).
StatusOr<std::set<std::string>> DeriveAll(Engine* engine,
                                          const ProgramFixture& fixture) {
  std::set<std::string> facts;
  const SymbolTable& symbols = fixture.rules.symbols();
  std::vector<ConstId> domain;
  for (int c = 0; c < symbols.num_consts(); ++c) domain.push_back(c);

  for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
    if (!fixture.rules.IsDefined(pred)) continue;
    int arity = symbols.PredicateArity(pred);
    std::vector<int> index(arity, 0);
    while (true) {
      Fact fact;
      fact.predicate = pred;
      for (int i = 0; i < arity; ++i) fact.args.push_back(domain[index[i]]);
      HYPO_ASSIGN_OR_RETURN(bool holds, engine->ProveFact(fact));
      if (holds) facts.insert(FactToString(fact, symbols));
      int pos = arity - 1;
      while (pos >= 0 &&
             ++index[pos] == static_cast<int>(domain.size())) {
        index[pos] = 0;
        --pos;
      }
      if (pos < 0 || arity == 0) break;
    }
  }
  return facts;
}

/// All-free-variable Answers() for every IDB predicate, rendered to
/// strings — exercises the per-query compile path (ProveFact exercises
/// the head-bound rule programs).
StatusOr<std::set<std::string>> AnswerAll(Engine* engine,
                                          const ProgramFixture& fixture) {
  std::set<std::string> rows;
  const SymbolTable& symbols = fixture.rules.symbols();
  for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
    if (!fixture.rules.IsDefined(pred)) continue;
    int arity = symbols.PredicateArity(pred);
    Query query;
    Premise p;
    p.kind = PremiseKind::kPositive;
    p.atom.predicate = pred;
    for (int i = 0; i < arity; ++i) {
      p.atom.args.push_back(Term::MakeVar(i));
      query.var_names.push_back("V" + std::to_string(i));
    }
    query.premises.push_back(std::move(p));
    HYPO_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                          engine->Answers(query));
    for (const Tuple& t : answers) {
      std::ostringstream row;
      row << symbols.PredicateName(pred);
      for (ConstId c : t) row << " " << c;
      rows.insert(row.str());
    }
  }
  return rows;
}

struct ExecutorConfig {
  std::string label;
  ExecutorKind executor;
  int threads;
};

TEST(PlanTest, VmMatchesInterpreterAcrossEnginesThreadsAndBackends) {
  RandomProgramOptions options;
  int compared = 0;
  int skipped = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Random rng(4100 + seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    for (StorageBackend backend :
         {StorageBackend::kColumnar, StorageBackend::kReferenceHash}) {
      Database db(fixture.symbols, backend);
      fixture.db.ForEach([&](const Fact& f) { db.Insert(f); });

      EngineOptions base_options;
      base_options.max_states = 40'000;
      base_options.max_steps = 3'000'000;

      // Reference: the interpretive walker on the tabled oracle engine.
      EngineOptions ref_options = base_options;
      ref_options.executor = ExecutorKind::kInterp;
      TabledEngine reference_engine(&fixture.rules, &db, ref_options);
      auto reference = DeriveAll(&reference_engine, fixture);
      if (!reference.ok()) {
        ASSERT_EQ(reference.status().code(),
                  StatusCode::kResourceExhausted)
            << reference.status();
        ++skipped;
        continue;
      }
      auto ref_answers = AnswerAll(&reference_engine, fixture);
      ASSERT_TRUE(ref_answers.ok()) << ref_answers.status();

      auto check = [&](Engine* engine, const std::string& label) {
        auto derived = DeriveAll(engine, fixture);
        if (!derived.ok()) {
          ASSERT_EQ(derived.status().code(),
                    StatusCode::kResourceExhausted)
              << label << ": " << derived.status();
          ++skipped;
          return;
        }
        EXPECT_EQ(*derived, *reference)
            << label << " diverged, seed " << seed << " program:\n"
            << RuleBaseToString(fixture.rules);
        auto answers = AnswerAll(engine, fixture);
        ASSERT_TRUE(answers.ok()) << label << ": " << answers.status();
        EXPECT_EQ(*answers, *ref_answers)
            << label << " Answers() diverged, seed " << seed;
        ++compared;
      };

      {
        EngineOptions o = base_options;
        o.executor = ExecutorKind::kVm;
        TabledEngine engine(&fixture.rules, &db, o);
        check(&engine, "tabled/vm");
      }
      for (const ExecutorConfig& cfg :
           {ExecutorConfig{"bottomup/interp/t1", ExecutorKind::kInterp, 1},
            ExecutorConfig{"bottomup/vm/t1", ExecutorKind::kVm, 1},
            ExecutorConfig{"bottomup/interp/t8", ExecutorKind::kInterp, 8},
            ExecutorConfig{"bottomup/vm/t8", ExecutorKind::kVm, 8}}) {
        EngineOptions o = base_options;
        o.executor = cfg.executor;
        o.num_threads = cfg.threads;
        BottomUpEngine engine(&fixture.rules, &db, o);
        check(&engine, cfg.label);
      }
      if (CheckLinearlyStratifiable(fixture.rules).ok()) {
        for (ExecutorKind executor :
             {ExecutorKind::kInterp, ExecutorKind::kVm}) {
          EngineOptions o = base_options;
          o.executor = executor;
          StratifiedProver engine(&fixture.rules, &db, o);
          check(&engine,
                executor == ExecutorKind::kVm ? "stratified/vm"
                                              : "stratified/interp");
        }
      }
    }
  }
  EXPECT_GE(compared, 60) << "too many configurations skipped (" << skipped
                          << ")";
}

}  // namespace
}  // namespace hypo
