#include <memory>

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "ast/rule_builder.h"
#include "ast/rulebase.h"
#include "ast/symbol_table.h"

namespace hypo {
namespace {

TEST(SymbolTableTest, InternPredicateIsIdempotent) {
  SymbolTable symbols;
  auto a = symbols.InternPredicate("edge", 2);
  auto b = symbols.InternPredicate("edge", 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(symbols.num_predicates(), 1);
  EXPECT_EQ(symbols.PredicateName(*a), "edge");
  EXPECT_EQ(symbols.PredicateArity(*a), 2);
}

TEST(SymbolTableTest, ArityMismatchRejected) {
  SymbolTable symbols;
  ASSERT_TRUE(symbols.InternPredicate("p", 2).ok());
  StatusOr<PredicateId> bad = symbols.InternPredicate("p", 3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SymbolTableTest, FindReturnsInvalidForUnknown) {
  SymbolTable symbols;
  EXPECT_EQ(symbols.FindPredicate("nope"), kInvalidPredicate);
  EXPECT_EQ(symbols.FindConst("nope"), kInvalidConst);
}

TEST(SymbolTableTest, ConstInterning) {
  SymbolTable symbols;
  ConstId a = symbols.InternConst("tony");
  ConstId b = symbols.InternConst("tony");
  ConstId c = symbols.InternConst("mary");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(symbols.ConstName(c), "mary");
  EXPECT_EQ(symbols.num_consts(), 2);
}

TEST(TermTest, ConstVsVar) {
  Term c = Term::MakeConst(3);
  Term v = Term::MakeVar(3);
  EXPECT_TRUE(c.is_const());
  EXPECT_TRUE(v.is_var());
  EXPECT_NE(c, v);
  EXPECT_EQ(c, Term::MakeConst(3));
}

TEST(RuleBuilderTest, BuildsHornRule) {
  SymbolTable symbols;
  RuleBuilder b(&symbols);
  Term s = b.Var("S");
  b.Head(b.A("grad", {s}))
      .Positive(b.A("take", {s, b.C("his101")}))
      .Positive(b.A("take", {s, b.C("eng201")}));
  StatusOr<Rule> rule = std::move(b).Build();
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->premises.size(), 2u);
  EXPECT_EQ(rule->num_vars(), 1);
  EXPECT_FALSE(rule->HasHypotheticalPremise());
  EXPECT_EQ(RuleToString(*rule, symbols),
            "grad(S) <- take(S, his101), take(S, eng201).");
}

TEST(RuleBuilderTest, BuildsHypotheticalRule) {
  SymbolTable symbols;
  RuleBuilder b(&symbols);
  Term s = b.Var("S");
  Term c = b.Var("C");
  b.Head(b.A("within1", {s}))
      .Hypothetical(b.A("grad", {s}), {b.A("take", {s, c})});
  StatusOr<Rule> rule = std::move(b).Build();
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_TRUE(rule->HasHypotheticalPremise());
  EXPECT_EQ(RuleToString(*rule, symbols),
            "within1(S) <- grad(S)[add: take(S, C)].");
}

TEST(RuleBuilderTest, SameVarNameSharesIndex) {
  SymbolTable symbols;
  RuleBuilder b(&symbols);
  Term x1 = b.Var("X");
  Term x2 = b.Var("X");
  EXPECT_EQ(x1, x2);
}

TEST(RuleBuilderTest, ArityMismatchSurfacesAtBuild) {
  SymbolTable symbols;
  RuleBuilder b(&symbols);
  b.Head(b.A("p", {b.C("a")}));
  b.Positive(b.A("p", {b.C("a"), b.C("b")}));  // p/2 conflicts with p/1.
  StatusOr<Rule> rule = std::move(b).Build();
  EXPECT_FALSE(rule.ok());
}

TEST(RuleBuilderTest, MissingHeadRejected) {
  SymbolTable symbols;
  RuleBuilder b(&symbols);
  b.Positive(b.A("p", {}));
  StatusOr<Rule> rule = std::move(b).Build();
  EXPECT_FALSE(rule.ok());
}

TEST(RuleBuilderTest, EmptyAdditionsRejected) {
  SymbolTable symbols;
  RuleBuilder b(&symbols);
  b.Head(b.A("p", {})).Hypothetical(b.A("q", {}), {});
  StatusOr<Rule> rule = std::move(b).Build();
  EXPECT_FALSE(rule.ok());
}

TEST(RuleBaseTest, DefinitionIndexing) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules(symbols);
  RuleBuilder b(symbols.get());
  b.Head(b.A("p", {})).Positive(b.A("q", {}));
  rules.AddRule(std::move(b).Build().value());
  RuleBuilder b2(symbols.get());
  b2.Head(b2.A("p", {})).Positive(b2.A("r", {}));
  rules.AddRule(std::move(b2).Build().value());

  PredicateId p = symbols->FindPredicate("p");
  PredicateId q = symbols->FindPredicate("q");
  EXPECT_EQ(rules.DefinitionOf(p).size(), 2u);
  EXPECT_TRUE(rules.DefinitionOf(q).empty());
  EXPECT_TRUE(rules.IsDefined(p));
  EXPECT_FALSE(rules.IsDefined(q));
}

TEST(RuleBaseTest, ConstantFreeDetection) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules(symbols);
  {
    RuleBuilder b(symbols.get());
    Term x = b.Var("X");
    b.Head(b.A("p", {x})).Positive(b.A("q", {x}));
    rules.AddRule(std::move(b).Build().value());
  }
  EXPECT_TRUE(rules.IsConstantFree());
  {
    RuleBuilder b(symbols.get());
    b.Head(b.A("p", {b.C("a")}));
    rules.AddRule(std::move(b).Build().value());
  }
  EXPECT_FALSE(rules.IsConstantFree());
}

TEST(RuleBaseTest, MergeRequiresSharedSymbols) {
  auto s1 = std::make_shared<SymbolTable>();
  auto s2 = std::make_shared<SymbolTable>();
  RuleBase r1(s1), r2(s2);
  EXPECT_FALSE(r1.Merge(r2).ok());
  RuleBase r3(s1);
  EXPECT_TRUE(r1.Merge(r3).ok());
}

TEST(PrinterTest, NegatedAndFactRules) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules(symbols);
  {
    RuleBuilder b(symbols.get());
    Term x = b.Var("X");
    b.Head(b.A("sel", {x}))
        .Positive(b.A("a", {x}))
        .Negated(b.A("b", {x}));
    rules.AddRule(std::move(b).Build().value());
  }
  {
    RuleBuilder b(symbols.get());
    b.Head(b.A("fact0", {}));
    rules.AddRule(std::move(b).Build().value());
  }
  EXPECT_EQ(RuleBaseToString(rules),
            "sel(X) <- a(X), ~b(X).\nfact0.\n");
}

}  // namespace
}  // namespace hypo
