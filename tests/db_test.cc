#include <memory>

#include <gtest/gtest.h>

#include "db/context_interner.h"
#include "db/database.h"
#include "db/fact_interner.h"
#include "db/overlay.h"

namespace hypo {
namespace {

class DbTest : public ::testing::Test {
 protected:
  DbTest() : symbols_(std::make_shared<SymbolTable>()), db_(symbols_) {}

  Fact MakeFact(const std::string& pred,
                const std::vector<std::string>& args) {
    Fact f;
    f.predicate = *symbols_->InternPredicate(pred, args.size());
    for (const std::string& a : args) {
      f.args.push_back(symbols_->InternConst(a));
    }
    return f;
  }

  std::shared_ptr<SymbolTable> symbols_;
  Database db_;
};

TEST_F(DbTest, InsertAndContains) {
  Fact f = MakeFact("edge", {"a", "b"});
  EXPECT_FALSE(db_.Contains(f));
  EXPECT_TRUE(db_.Insert(f));
  EXPECT_TRUE(db_.Contains(f));
  EXPECT_FALSE(db_.Insert(f)) << "duplicate insert reports not-new";
  EXPECT_EQ(db_.size(), 1);
}

TEST_F(DbTest, TuplesForPreservesInsertionOrder) {
  db_.Insert(MakeFact("p", {"c"}));
  db_.Insert(MakeFact("p", {"a"}));
  db_.Insert(MakeFact("p", {"b"}));
  PredicateId p = symbols_->FindPredicate("p");
  const Database::RowsView tuples = db_.TuplesFor(p);
  ASSERT_EQ(tuples.size(), 3u);
  EXPECT_EQ(symbols_->ConstName(tuples.At(0, 0)), "c");
  EXPECT_EQ(symbols_->ConstName(tuples.At(2, 0)), "b");
}

TEST_F(DbTest, TuplesForUnknownPredicateIsEmpty) {
  EXPECT_TRUE(db_.TuplesFor(123456).empty());
}

TEST_F(DbTest, StringInsertInternsEverything) {
  ASSERT_TRUE(db_.Insert("take", {"tony", "cs250"}).ok());
  EXPECT_NE(symbols_->FindPredicate("take"), kInvalidPredicate);
  EXPECT_NE(symbols_->FindConst("tony"), kInvalidConst);
  EXPECT_EQ(db_.size(), 1);
  // Arity punning is rejected.
  EXPECT_FALSE(db_.Insert("take", {"tony"}).ok());
}

TEST_F(DbTest, CloneIsIndependent) {
  db_.Insert(MakeFact("p", {"a"}));
  Database copy = db_.Clone();
  copy.Insert(MakeFact("p", {"b"}));
  EXPECT_EQ(db_.size(), 1);
  EXPECT_EQ(copy.size(), 2);
}

TEST_F(DbTest, ConstantsTracked) {
  db_.Insert(MakeFact("edge", {"a", "b"}));
  EXPECT_EQ(db_.constants().size(), 2u);
}

TEST_F(DbTest, ForEachVisitsAllFacts) {
  db_.Insert(MakeFact("p", {"a"}));
  db_.Insert(MakeFact("q", {"a", "b"}));
  int count = 0;
  db_.ForEach([&count](const Fact&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST_F(DbTest, ClearEmpties) {
  db_.Insert(MakeFact("p", {"a"}));
  db_.Clear();
  EXPECT_TRUE(db_.empty());
  EXPECT_TRUE(db_.constants().empty());
}

TEST_F(DbTest, ClearResetsSeal) {
  // Regression: Clear() used to leave sealed_ = true, so a cleared-and-
  // refilled database served stale ScanAllMarker probes forever.
  db_.Insert(MakeFact("edge", {"a", "b"}));
  PredicateId edge = symbols_->FindPredicate("edge");
  ConstId a = symbols_->FindConst("a");
  db_.PrepareIndex(edge, 0b1);
  db_.SealIndexes();
  ASSERT_TRUE(db_.sealed());

  db_.Clear();
  EXPECT_FALSE(db_.sealed()) << "Clear must start a fresh, unsealed epoch";

  // Reinsert and probe: the index must be rebuilt lazily over the new
  // contents, not answered from sealed (and now empty) state.
  db_.Insert(MakeFact("edge", {"a", "c"}));
  Database::RowRange bucket = db_.ProbeIndex(edge, 0b1, {a});
  ASSERT_FALSE(bucket.scan_all);
  ASSERT_NE(bucket, Database::ScanAllMarker());
  EXPECT_EQ(bucket.count, 1u);
}

TEST_F(DbTest, TypedInsertWhileSealedStartsNewEpoch) {
  // Regression: inserting into a sealed database used to leave every
  // column index frozen at its pre-seal built_upto, silently hiding the
  // new tuples from all subsequent probes.
  db_.Insert(MakeFact("edge", {"a", "b"}));
  PredicateId edge = symbols_->FindPredicate("edge");
  ConstId a = symbols_->FindConst("a");
  ASSERT_EQ(db_.ProbeIndex(edge, 0b1, {a}).count, 1u);
  db_.SealIndexes();

  EXPECT_TRUE(db_.Insert(MakeFact("edge", {"a", "c"})));
  EXPECT_FALSE(db_.sealed()) << "typed Insert auto-unseals";
  Database::RowRange bucket = db_.ProbeIndex(edge, 0b1, {a});
  ASSERT_FALSE(bucket.scan_all);
  EXPECT_EQ(bucket.count, 2u) << "the index catches up past built_upto";

  // A duplicate insert is not a mutation and must not break the seal.
  db_.SealIndexes();
  EXPECT_FALSE(db_.Insert(MakeFact("edge", {"a", "c"})));
  EXPECT_TRUE(db_.sealed());
}

TEST_F(DbTest, StringInsertWhileSealedIsRejected) {
  ASSERT_TRUE(db_.Insert("edge", {"a", "b"}).ok());
  db_.SealIndexes();
  Status s = db_.Insert("edge", {"a", "c"});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db_.sealed()) << "the rejected insert must not mutate";
  EXPECT_EQ(db_.size(), 1);
  db_.UnsealIndexes();
  EXPECT_TRUE(db_.Insert("edge", {"a", "c"}).ok());
}

TEST_F(DbTest, RetractRemovesFactAndConstants) {
  Fact ab = MakeFact("edge", {"a", "b"});
  Fact bc = MakeFact("edge", {"b", "c"});
  db_.Insert(ab);
  db_.Insert(bc);
  ASSERT_EQ(db_.constants().size(), 3u);

  EXPECT_TRUE(db_.Retract(ab));
  EXPECT_FALSE(db_.Contains(ab));
  EXPECT_EQ(db_.size(), 1);
  // "b" survives (still in bc); "a" lost its last reference.
  EXPECT_EQ(db_.constants().count(symbols_->FindConst("a")), 0u);
  EXPECT_EQ(db_.constants().count(symbols_->FindConst("b")), 1u);

  EXPECT_FALSE(db_.Retract(ab)) << "retracting an absent fact is a no-op";
  EXPECT_EQ(db_.size(), 1);
}

TEST_F(DbTest, RetractInvalidatesIndexes) {
  db_.Insert(MakeFact("edge", {"a", "b"}));
  db_.Insert(MakeFact("edge", {"c", "d"}));
  db_.Insert(MakeFact("edge", {"a", "e"}));
  PredicateId edge = symbols_->FindPredicate("edge");
  ConstId a = symbols_->FindConst("a");
  ASSERT_EQ(db_.ProbeIndex(edge, 0b1, {a}).count, 2u);

  // Retraction shifts stored positions; the rebuilt index must agree
  // with the surviving tuples, not the stale positions.
  ASSERT_TRUE(db_.Retract(MakeFact("edge", {"a", "b"})));
  Database::RowRange bucket = db_.ProbeIndex(edge, 0b1, {a});
  ASSERT_FALSE(bucket.empty());
  ASSERT_EQ(bucket.count, 1u);
  const Database::RowsView all = db_.TuplesFor(edge);
  EXPECT_EQ(symbols_->ConstName(all.At(bucket.data[0], 1)), "e");
}

TEST_F(DbTest, RetractWhileSealedUnseals) {
  Fact ab = MakeFact("edge", {"a", "b"});
  db_.Insert(ab);
  db_.SealIndexes();
  EXPECT_TRUE(db_.Retract(ab));
  EXPECT_FALSE(db_.sealed());
  EXPECT_TRUE(db_.empty());
}

TEST_F(DbTest, RetractLastTupleDropsRelation) {
  Fact f = MakeFact("p", {"a"});
  db_.Insert(f);
  PredicateId p = symbols_->FindPredicate("p");
  EXPECT_TRUE(db_.Retract(f));
  EXPECT_TRUE(db_.TuplesFor(p).empty());
  EXPECT_TRUE(db_.NonEmptyPredicates().empty());
  EXPECT_EQ(db_.ApproxBytes(), 0);
}

TEST_F(DbTest, ClearRelationRemovesAllTuplesOfPredicate) {
  db_.Insert(MakeFact("p", {"a"}));
  db_.Insert(MakeFact("p", {"b"}));
  db_.Insert(MakeFact("q", {"a"}));
  PredicateId p = symbols_->FindPredicate("p");
  EXPECT_EQ(db_.ClearRelation(p), 2);
  EXPECT_EQ(db_.size(), 1);
  EXPECT_FALSE(db_.Contains(MakeFact("p", {"a"})));
  EXPECT_TRUE(db_.Contains(MakeFact("q", {"a"})));
  // "b" only appeared in p; "a" survives via q.
  EXPECT_EQ(db_.constants().count(symbols_->FindConst("b")), 0u);
  EXPECT_EQ(db_.constants().count(symbols_->FindConst("a")), 1u);
  EXPECT_EQ(db_.ClearRelation(p), 0) << "clearing again is a no-op";
}

TEST_F(DbTest, FirstArgIndexFindsTuples) {
  db_.Insert(MakeFact("edge", {"a", "b"}));
  db_.Insert(MakeFact("edge", {"c", "d"}));
  db_.Insert(MakeFact("edge", {"a", "d"}));
  PredicateId edge = symbols_->FindPredicate("edge");
  ConstId a = symbols_->FindConst("a");
  Database::RowRange bucket = db_.ProbeIndex(edge, 0b1, {a});
  ASSERT_FALSE(bucket.empty());
  ASSERT_EQ(bucket.count, 2u);
  const Database::RowsView all = db_.TuplesFor(edge);
  EXPECT_EQ(all.At(bucket.data[0], 0), a);
  EXPECT_EQ(all.At(bucket.data[1], 0), a);
}

TEST_F(DbTest, ProbeIndexOnAnyColumnMask) {
  db_.Insert(MakeFact("t", {"a", "x"}));
  db_.Insert(MakeFact("t", {"b", "x"}));
  db_.Insert(MakeFact("t", {"a", "y"}));
  PredicateId t = symbols_->FindPredicate("t");
  ConstId x = symbols_->FindConst("x");
  ConstId a = symbols_->FindConst("a");

  // Second column only (mask 0b10).
  Database::RowRange by_second = db_.ProbeIndex(t, 0b10, {x});
  ASSERT_FALSE(by_second.empty());
  ASSERT_EQ(by_second.count, 2u);
  const Database::RowsView all = db_.TuplesFor(t);
  for (size_t i = 0; i < by_second.count; ++i) {
    EXPECT_EQ(all.At(by_second.data[i], 1), x);
  }

  // Both columns (mask 0b11): a unique tuple.
  Database::RowRange exact = db_.ProbeIndex(t, 0b11, {a, x});
  ASSERT_FALSE(exact.empty());
  ASSERT_EQ(exact.count, 1u);
  EXPECT_EQ(all.TupleAt(exact.data[0]), (Tuple{a, x}));

  // A key with no matching tuples yields an empty range, and probing an
  // unknown predicate is harmless.
  ConstId b = symbols_->FindConst("b");
  EXPECT_TRUE(db_.ProbeIndex(t, 0b11, {b, symbols_->FindConst("y")}).empty());
  EXPECT_TRUE(db_.ProbeIndex(999999, 0b1, {a}).empty());
}

TEST_F(DbTest, ProbeIndexExtendsLazilyAsRelationGrows) {
  db_.Insert(MakeFact("p", {"a", "x"}));
  PredicateId p = symbols_->FindPredicate("p");
  ConstId x = symbols_->FindConst("x");
  ASSERT_EQ(db_.ProbeIndex(p, 0b10, {x}).count, 1u);
  int64_t builds = db_.index_builds();

  // Tuples inserted after the index was built show up on the next probe
  // without a rebuild: the index is extended incrementally.
  db_.Insert(MakeFact("p", {"b", "x"}));
  Database::RowRange bucket = db_.ProbeIndex(p, 0b10, {x});
  ASSERT_FALSE(bucket.empty());
  EXPECT_EQ(bucket.count, 2u);
  EXPECT_EQ(db_.index_builds(), builds)
      << "re-probing the same (predicate, mask) must not count as a build";

  // A different mask on the same relation is a distinct index.
  ConstId a = symbols_->FindConst("a");
  ASSERT_FALSE(db_.ProbeIndex(p, 0b01, {a}).empty());
  EXPECT_EQ(db_.index_builds(), builds + 1);
  EXPECT_EQ(db_.index_probes(), 3);
}

TEST_F(DbTest, SortedSealAnswersProbesFromPermutation) {
  // Explicitly columnar: sorted permutations are a columnar-only path,
  // and the suite may run with HYPO_STORAGE=hash flipping the default.
  Database db(symbols_, StorageBackend::kColumnar);
  db.Insert(MakeFact("edge", {"c", "d"}));
  db.Insert(MakeFact("edge", {"a", "b"}));
  db.Insert(MakeFact("edge", {"a", "e"}));
  db.Insert(MakeFact("edge", {"b", "b"}));
  PredicateId edge = symbols_->FindPredicate("edge");
  ConstId a = symbols_->FindConst("a");

  db.EnableSortedIndexes();
  db.PrepareIndex(edge, 0b1);
  db.SealIndexes();
  ASSERT_TRUE(db.sealed());
  ASSERT_TRUE(db.sorted_indexes_enabled());

  Database::RowRange range = db.ProbeIndex(edge, 0b1, {a});
  ASSERT_FALSE(range.scan_all);
  ASSERT_EQ(range.count, 2u);
  // Equal-key runs keep ascending row order, i.e. insertion order: the
  // (a, b) tuple was inserted before (a, e).
  const Database::RowsView all = db.TuplesFor(edge);
  EXPECT_LT(range.data[0], range.data[1]);
  EXPECT_EQ(symbols_->ConstName(all.At(range.data[0], 1)), "b");
  EXPECT_EQ(symbols_->ConstName(all.At(range.data[1], 1)), "e");
  EXPECT_GE(db.sorted_probes(), 1);
  EXPECT_GE(db.merge_join_rows(), 2);

  // A missing key binary-searches to an empty range.
  EXPECT_TRUE(db.ProbeIndex(edge, 0b1, {symbols_->FindConst("d")}).empty());
}

TEST_F(DbTest, SortedIndexSurvivesUnsealResealCycles) {
  Database db(symbols_, StorageBackend::kColumnar);
  db.Insert(MakeFact("edge", {"a", "b"}));
  PredicateId edge = symbols_->FindPredicate("edge");
  ConstId a = symbols_->FindConst("a");
  db.EnableSortedIndexes();
  db.PrepareIndex(edge, 0b1);
  db.SealIndexes();
  ASSERT_EQ(db.ProbeIndex(edge, 0b1, {a}).count, 1u);
  int64_t sort_micros_after_first_seal = db.index_sort_micros();

  // Unseal + reseal with no mutation: the permutation version matches,
  // so the reseal is O(1) and must not re-sort.
  db.UnsealIndexes();
  db.SealIndexes();
  EXPECT_EQ(db.index_sort_micros(), sort_micros_after_first_seal);
  EXPECT_EQ(db.ProbeIndex(edge, 0b1, {a}).count, 1u);

  // Mutation bumps the version: the next seal re-sorts and the probe
  // sees the new tuple.
  db.Insert(MakeFact("edge", {"a", "c"}));
  EXPECT_FALSE(db.sealed());
  db.SealIndexes();
  EXPECT_EQ(db.ProbeIndex(edge, 0b1, {a}).count, 2u);

  // Retract drops the relation's indexes (row ids shift); a sealed probe
  // without re-preparation degrades to a correct full scan. Re-preparing
  // before the reseal — the server's epoch flow — restores the range.
  ASSERT_TRUE(db.Retract(MakeFact("edge", {"a", "b"})));
  db.SealIndexes();
  EXPECT_EQ(db.ProbeIndex(edge, 0b1, {a}), Database::ScanAllMarker());
  db.UnsealIndexes();
  db.PrepareIndex(edge, 0b1);
  db.SealIndexes();
  Database::RowRange range = db.ProbeIndex(edge, 0b1, {a});
  ASSERT_EQ(range.count, 1u);
  EXPECT_EQ(symbols_->ConstName(db.TuplesFor(edge).At(range.data[0], 1)),
            "c");
}

TEST_F(DbTest, BackendsAgreeOnProbesAndOrder) {
  Database col_db(symbols_, StorageBackend::kColumnar);
  Database hash_db(symbols_, StorageBackend::kReferenceHash);
  ASSERT_EQ(col_db.backend(), StorageBackend::kColumnar);
  ASSERT_EQ(hash_db.backend(), StorageBackend::kReferenceHash);

  std::vector<Fact> facts = {
      MakeFact("edge", {"c", "d"}), MakeFact("edge", {"a", "b"}),
      MakeFact("edge", {"a", "e"}), MakeFact("edge", {"b", "b"}),
      MakeFact("p", {"a"})};
  for (const Fact& f : facts) {
    ASSERT_TRUE(col_db.Insert(f));
    ASSERT_TRUE(hash_db.Insert(f));
  }
  PredicateId edge = symbols_->FindPredicate("edge");
  ConstId a = symbols_->FindConst("a");
  ConstId b = symbols_->FindConst("b");

  // Same tuples in the same insertion order.
  const Database::RowsView cols = col_db.TuplesFor(edge);
  const Database::RowsView rows = hash_db.TuplesFor(edge);
  ASSERT_EQ(cols.size(), rows.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(cols.TupleAt(i), rows.TupleAt(i));
  }

  // Probes resolve to the same row ids in the same order, sealed (with
  // sorted indexes on the columnar side) or unsealed.
  for (int sealed = 0; sealed < 2; ++sealed) {
    if (sealed) {
      col_db.EnableSortedIndexes();
      for (Database* d : {&col_db, &hash_db}) {
        d->PrepareIndex(edge, 0b1);
        d->PrepareIndex(edge, 0b10);
        d->SealIndexes();
      }
    }
    for (ColumnMask mask : {ColumnMask{0b1}, ColumnMask{0b10}}) {
      for (ConstId key : {a, b}) {
        Database::RowRange lhs = col_db.ProbeIndex(edge, mask, {key});
        Database::RowRange rhs = hash_db.ProbeIndex(edge, mask, {key});
        ASSERT_EQ(lhs.scan_all, rhs.scan_all);
        ASSERT_EQ(lhs.count, rhs.count);
        for (size_t i = 0; i < lhs.count; ++i) {
          EXPECT_EQ(lhs.data[i], rhs.data[i]);
        }
      }
    }
  }
  EXPECT_GT(col_db.ArenaBytes(), 0) << "columnar tracks its arena";
  EXPECT_EQ(hash_db.ArenaBytes(), 0) << "reference backend has no arena";
}

TEST_F(DbTest, ReferenceHashBackendRetractAndClearRelation) {
  Database db(symbols_, StorageBackend::kReferenceHash);
  Fact ab = MakeFact("edge", {"a", "b"});
  Fact bc = MakeFact("edge", {"b", "c"});
  db.Insert(ab);
  db.Insert(bc);
  db.Insert(MakeFact("p", {"d"}));
  ASSERT_EQ(db.constants().size(), 4u);

  EXPECT_TRUE(db.Retract(ab));
  // Satellite regression: the tracked constant domain shrinks exactly —
  // "a" lost its last reference, "b" survives via bc.
  EXPECT_EQ(db.constants().count(symbols_->FindConst("a")), 0u);
  EXPECT_EQ(db.constants().count(symbols_->FindConst("b")), 1u);

  PredicateId edge = symbols_->FindPredicate("edge");
  EXPECT_EQ(db.ClearRelation(edge), 1);
  EXPECT_EQ(db.constants().count(symbols_->FindConst("b")), 0u);
  EXPECT_EQ(db.constants().count(symbols_->FindConst("c")), 0u);
  EXPECT_EQ(db.constants().size(), 1u) << "only p(d)'s constant remains";
  EXPECT_EQ(db.size(), 1);
}

TEST_F(DbTest, ColumnarConstantDomainShrinksAfterRetract) {
  // Same regression on the columnar default: retracting the last tuple
  // mentioning a constant must drop it from constants() so ComputeDomain
  // (Definition 3) shrinks with the database.
  Fact ab = MakeFact("edge", {"a", "b"});
  Fact aa = MakeFact("edge", {"a", "a"});
  db_.Insert(ab);
  db_.Insert(aa);
  ASSERT_EQ(db_.constants().size(), 2u);
  EXPECT_TRUE(db_.Retract(ab));
  EXPECT_EQ(db_.constants().count(symbols_->FindConst("b")), 0u)
      << "b's only reference was retracted";
  EXPECT_EQ(db_.constants().count(symbols_->FindConst("a")), 1u)
      << "a is still referenced twice by edge(a, a)";
  db_.Clear();
  EXPECT_TRUE(db_.constants().empty());
}

TEST_F(DbTest, ZeroArityRelationAcrossBackends) {
  for (StorageBackend backend :
       {StorageBackend::kColumnar, StorageBackend::kReferenceHash}) {
    Database db(symbols_, backend);
    Fact yes = MakeFact("yes", {});
    EXPECT_FALSE(db.Contains(yes));
    EXPECT_TRUE(db.Insert(yes));
    EXPECT_TRUE(db.Contains(yes));
    EXPECT_FALSE(db.Insert(yes));
    EXPECT_EQ(db.TuplesFor(yes.predicate).size(), 1u);
    EXPECT_TRUE(db.Retract(yes));
    EXPECT_FALSE(db.Contains(yes));
    EXPECT_EQ(db.size(), 0);
  }
}

TEST_F(DbTest, FactToStringFormats) {
  Fact f = MakeFact("edge", {"a", "b"});
  EXPECT_EQ(FactToString(f, *symbols_), "edge(a, b)");
  Fact zero = MakeFact("yes", {});
  EXPECT_EQ(FactToString(zero, *symbols_), "yes");
}

TEST(FactInternerTest, InterningIsStable) {
  FactInterner interner;
  Fact f1{0, {1, 2}};
  Fact f2{0, {2, 1}};
  FactId a = interner.Intern(f1);
  FactId b = interner.Intern(f2);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern(f1), a);
  EXPECT_EQ(interner.Get(b), f2);
  EXPECT_EQ(interner.size(), 2);
}

class OverlayTest : public DbTest {
 protected:
  OverlayTest() : overlay_(&db_, &interner_) {}
  FactInterner interner_;
  OverlayDatabase overlay_;
};

TEST_F(OverlayTest, SeesBaseFacts) {
  Fact f = MakeFact("p", {"a"});
  db_.Insert(f);
  EXPECT_TRUE(overlay_.Contains(f));
}

TEST_F(OverlayTest, AddAndRetract) {
  Fact f = MakeFact("p", {"a"});
  overlay_.PushFrame();
  EXPECT_TRUE(overlay_.Add(f));
  EXPECT_TRUE(overlay_.Contains(f));
  EXPECT_EQ(overlay_.num_added(), 1);
  overlay_.PopFrame();
  EXPECT_FALSE(overlay_.Contains(f));
  EXPECT_EQ(overlay_.num_added(), 0);
}

TEST_F(OverlayTest, NoOpAddNotRecorded) {
  Fact f = MakeFact("p", {"a"});
  db_.Insert(f);
  overlay_.PushFrame();
  EXPECT_FALSE(overlay_.Add(f)) << "already a database fact";
  EXPECT_EQ(overlay_.num_added(), 0);
  EXPECT_TRUE(overlay_.CanonicalKey().empty());
  overlay_.PopFrame();
}

TEST_F(OverlayTest, NestedFrames) {
  Fact f1 = MakeFact("p", {"a"});
  Fact f2 = MakeFact("p", {"b"});
  overlay_.PushFrame();
  overlay_.Add(f1);
  overlay_.PushFrame();
  overlay_.Add(f2);
  EXPECT_EQ(overlay_.num_added(), 2);
  overlay_.PopFrame();
  EXPECT_TRUE(overlay_.Contains(f1));
  EXPECT_FALSE(overlay_.Contains(f2));
  overlay_.PopFrame();
  EXPECT_FALSE(overlay_.Contains(f1));
}

TEST_F(OverlayTest, CanonicalKeyIsOrderIndependent) {
  Fact f1 = MakeFact("p", {"a"});
  Fact f2 = MakeFact("p", {"b"});
  overlay_.PushFrame();
  overlay_.Add(f1);
  overlay_.Add(f2);
  auto key12 = overlay_.CanonicalKey();
  overlay_.PopFrame();
  overlay_.PushFrame();
  overlay_.Add(f2);
  overlay_.Add(f1);
  auto key21 = overlay_.CanonicalKey();
  overlay_.PopFrame();
  EXPECT_EQ(key12, key21);
}

TEST_F(OverlayTest, AddedTuplesVisibleForScan) {
  Fact f = MakeFact("edge", {"a", "b"});
  overlay_.PushFrame();
  overlay_.Add(f);
  PredicateId edge = symbols_->FindPredicate("edge");
  ASSERT_EQ(overlay_.AddedTuplesFor(edge).size(), 1u);
  overlay_.PopFrame();
  EXPECT_TRUE(overlay_.AddedTuplesFor(edge).empty());
}

TEST_F(OverlayTest, DeleteMasksBaseFact) {
  Fact f = MakeFact("p", {"a"});
  db_.Insert(f);
  overlay_.PushFrame();
  EXPECT_TRUE(overlay_.Delete(f));
  EXPECT_FALSE(overlay_.Contains(f));
  EXPECT_TRUE(overlay_.has_deletions());
  overlay_.PopFrame();
  EXPECT_TRUE(overlay_.Contains(f));
  EXPECT_FALSE(overlay_.has_deletions());
}

TEST_F(OverlayTest, DeleteAbsentFactIsNoOp) {
  Fact f = MakeFact("p", {"a"});
  overlay_.PushFrame();
  EXPECT_FALSE(overlay_.Delete(f));
  EXPECT_FALSE(overlay_.has_deletions());
  overlay_.PopFrame();
}

TEST_F(OverlayTest, DeleteAddedFact) {
  Fact f = MakeFact("p", {"a"});
  overlay_.PushFrame();
  overlay_.Add(f);
  EXPECT_TRUE(overlay_.Delete(f));
  EXPECT_FALSE(overlay_.Contains(f));
  // The stored tuple remains but is filtered by the mask.
  PredicateId p = symbols_->FindPredicate("p");
  ASSERT_EQ(overlay_.AddedTuplesFor(p).size(), 1u);
  EXPECT_FALSE(overlay_.TupleVisible(p, overlay_.AddedTuplesFor(p)[0]));
  overlay_.PopFrame();
}

TEST_F(OverlayTest, AddUnmasksDeletedFact) {
  Fact f = MakeFact("p", {"a"});
  db_.Insert(f);
  overlay_.PushFrame();
  overlay_.Delete(f);
  EXPECT_FALSE(overlay_.Contains(f));
  EXPECT_TRUE(overlay_.Add(f));
  EXPECT_TRUE(overlay_.Contains(f));
  overlay_.PopFrame();
  EXPECT_TRUE(overlay_.Contains(f));
}

TEST_F(OverlayTest, CanonicalKeyReflectsDeletions) {
  Fact base_fact = MakeFact("p", {"a"});
  Fact added_fact = MakeFact("p", {"b"});
  db_.Insert(base_fact);

  overlay_.PushFrame();
  overlay_.Delete(base_fact);
  auto key_del = overlay_.CanonicalKey();
  EXPECT_EQ(key_del.size(), 2u) << "separator + masked base id";
  EXPECT_EQ(key_del[0], -1);
  overlay_.PopFrame();
  EXPECT_TRUE(overlay_.CanonicalKey().empty());

  // Add then delete the same new fact: canonically the empty state.
  overlay_.PushFrame();
  overlay_.Add(added_fact);
  overlay_.Delete(added_fact);
  EXPECT_TRUE(overlay_.CanonicalKey().empty());
  overlay_.PopFrame();

  // Delete then re-add a base fact: also the empty state.
  overlay_.PushFrame();
  overlay_.Delete(base_fact);
  overlay_.Add(base_fact);
  EXPECT_TRUE(overlay_.CanonicalKey().empty());
  overlay_.PopFrame();
}

TEST_F(OverlayTest, NestedFramesWithDeletions) {
  Fact f = MakeFact("p", {"a"});
  db_.Insert(f);
  overlay_.PushFrame();
  overlay_.Delete(f);
  overlay_.PushFrame();
  overlay_.Add(f);
  EXPECT_TRUE(overlay_.Contains(f));
  overlay_.PopFrame();
  EXPECT_FALSE(overlay_.Contains(f)) << "inner unmask undone";
  overlay_.PopFrame();
  EXPECT_TRUE(overlay_.Contains(f));
}

TEST_F(OverlayTest, ForEachAddedSkipsMasked) {
  overlay_.PushFrame();
  Fact fa = MakeFact("p", {"a"});
  Fact fb = MakeFact("p", {"b"});
  overlay_.Add(fa);
  overlay_.Add(fb);
  overlay_.Delete(fa);
  int count = 0;
  overlay_.ForEachAdded([&](const Fact& f) {
    ++count;
    EXPECT_EQ(f, fb);
  });
  EXPECT_EQ(count, 1);
  overlay_.PopFrame();
}

TEST(ContextInternerTest, EmptyContextIsIdZero) {
  ContextInterner interner;
  EXPECT_EQ(ContextInterner::kEmptyContext, 0);
  EXPECT_EQ(interner.num_contexts(), 1);
  EXPECT_TRUE(interner.Elements(ContextInterner::kEmptyContext).empty());
}

TEST(ContextInternerTest, InsertEraseRoundTrip) {
  ContextInterner interner;
  int64_t e = ContextInterner::AddedElement(7);
  ContextId with = interner.Insert(ContextInterner::kEmptyContext, e);
  EXPECT_NE(with, ContextInterner::kEmptyContext);
  EXPECT_EQ(interner.Elements(with), std::vector<int64_t>{e});
  EXPECT_EQ(interner.Erase(with, e), ContextInterner::kEmptyContext);
  // The round trip is cached: replaying it hits the edge cache.
  int64_t transitions_before = interner.transitions();
  int64_t hits_before = interner.transition_hits();
  EXPECT_EQ(interner.Insert(ContextInterner::kEmptyContext, e), with);
  EXPECT_EQ(interner.transitions(), transitions_before + 1);
  EXPECT_EQ(interner.transition_hits(), hits_before + 1);
}

TEST(ContextInternerTest, InsertionOrderIrrelevant) {
  ContextInterner interner;
  int64_t a = ContextInterner::AddedElement(1);
  int64_t b = ContextInterner::MaskedElement(2);
  ContextId ab = interner.Insert(interner.Insert(0, a), b);
  ContextId ba = interner.Insert(interner.Insert(0, b), a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(interner.num_contexts(), 4) << "{}, {a}, {b}, {a,b}";
}

TEST(ContextInternerTest, AddedAndMaskedElementsAreDistinct) {
  EXPECT_NE(ContextInterner::AddedElement(5),
            ContextInterner::MaskedElement(5));
}

TEST_F(OverlayTest, ContextIdTracksMutations) {
  Fact f1 = MakeFact("p", {"a"});
  Fact f2 = MakeFact("p", {"b"});
  EXPECT_EQ(overlay_.context_id(), ContextInterner::kEmptyContext);

  overlay_.PushFrame();
  overlay_.Add(f1);
  ContextId c1 = overlay_.context_id();
  EXPECT_NE(c1, ContextInterner::kEmptyContext);
  EXPECT_TRUE(overlay_.DebugContextConsistent());

  overlay_.PushFrame();
  overlay_.Add(f2);
  ContextId c12 = overlay_.context_id();
  EXPECT_NE(c12, c1);
  EXPECT_TRUE(overlay_.DebugContextConsistent());
  overlay_.PopFrame();

  EXPECT_EQ(overlay_.context_id(), c1) << "pop restores the context id";
  overlay_.PopFrame();
  EXPECT_EQ(overlay_.context_id(), ContextInterner::kEmptyContext);
  EXPECT_TRUE(overlay_.DebugContextConsistent());
}

TEST_F(OverlayTest, ContextIdOrderIndependent) {
  Fact f1 = MakeFact("p", {"a"});
  Fact f2 = MakeFact("p", {"b"});
  overlay_.PushFrame();
  overlay_.Add(f1);
  overlay_.Add(f2);
  ContextId c12 = overlay_.context_id();
  overlay_.PopFrame();
  overlay_.PushFrame();
  overlay_.Add(f2);
  overlay_.Add(f1);
  EXPECT_EQ(overlay_.context_id(), c12)
      << "same fact set must intern to the same context id";
  overlay_.PopFrame();
}

TEST_F(OverlayTest, ContextIdReflectsDeletions) {
  Fact base_fact = MakeFact("p", {"a"});
  Fact added_fact = MakeFact("p", {"b"});
  db_.Insert(base_fact);

  // Masking a base fact is a distinct, non-empty context.
  overlay_.PushFrame();
  overlay_.Delete(base_fact);
  EXPECT_NE(overlay_.context_id(), ContextInterner::kEmptyContext);
  EXPECT_TRUE(overlay_.DebugContextConsistent());
  overlay_.PopFrame();
  EXPECT_EQ(overlay_.context_id(), ContextInterner::kEmptyContext);

  // Add-then-delete of a new fact is canonically the empty state.
  overlay_.PushFrame();
  overlay_.Add(added_fact);
  overlay_.Delete(added_fact);
  EXPECT_EQ(overlay_.context_id(), ContextInterner::kEmptyContext);
  EXPECT_TRUE(overlay_.DebugContextConsistent());
  overlay_.PopFrame();

  // Delete-then-re-add of a base fact is canonically the empty state.
  overlay_.PushFrame();
  overlay_.Delete(base_fact);
  overlay_.Add(base_fact);
  EXPECT_EQ(overlay_.context_id(), ContextInterner::kEmptyContext);
  EXPECT_TRUE(overlay_.DebugContextConsistent());
  overlay_.PopFrame();
}

TEST_F(OverlayTest, DeleteReAddDeleteAcrossNestedFrames) {
  // Regression for the kDidUnmask undo in PopFrame: delete a base fact,
  // re-add (unmask) it in an inner frame, delete it again in a third
  // frame, then unwind, checking visibility and context at every step.
  Fact f = MakeFact("p", {"a"});
  db_.Insert(f);

  overlay_.PushFrame();
  overlay_.Delete(f);
  ContextId deleted = overlay_.context_id();
  EXPECT_FALSE(overlay_.Contains(f));

  overlay_.PushFrame();
  overlay_.Add(f);  // Unmask.
  EXPECT_TRUE(overlay_.Contains(f));
  EXPECT_EQ(overlay_.context_id(), ContextInterner::kEmptyContext)
      << "mask + unmask cancels back to the base state";
  EXPECT_TRUE(overlay_.DebugContextConsistent());

  overlay_.PushFrame();
  overlay_.Delete(f);  // Mask again.
  EXPECT_FALSE(overlay_.Contains(f));
  EXPECT_EQ(overlay_.context_id(), deleted)
      << "re-deleting reaches the same interned context";
  EXPECT_TRUE(overlay_.DebugContextConsistent());

  overlay_.PopFrame();  // Undo second delete.
  EXPECT_TRUE(overlay_.Contains(f));
  EXPECT_EQ(overlay_.context_id(), ContextInterner::kEmptyContext);
  EXPECT_TRUE(overlay_.DebugContextConsistent());

  overlay_.PopFrame();  // Undo the unmask: the first delete is live again.
  EXPECT_FALSE(overlay_.Contains(f));
  EXPECT_EQ(overlay_.context_id(), deleted);
  EXPECT_TRUE(overlay_.DebugContextConsistent());

  overlay_.PopFrame();  // Undo the first delete.
  EXPECT_TRUE(overlay_.Contains(f));
  EXPECT_EQ(overlay_.context_id(), ContextInterner::kEmptyContext);
  EXPECT_TRUE(overlay_.DebugContextConsistent());
}

TEST_F(OverlayTest, AddedProbeByFirstArg) {
  PredicateId edge = symbols_->InternPredicate("edge", 2).value();
  ConstId a = symbols_->InternConst("a");
  ConstId c = symbols_->InternConst("c");
  EXPECT_EQ(overlay_.AddedProbe(edge, 0b1, {a}), nullptr);

  overlay_.PushFrame();
  overlay_.Add(MakeFact("edge", {"a", "b"}));
  overlay_.Add(MakeFact("edge", {"c", "d"}));
  overlay_.Add(MakeFact("edge", {"a", "d"}));

  const std::vector<RowId>* bucket = overlay_.AddedProbe(edge, 0b1, {a});
  ASSERT_NE(bucket, nullptr);
  ASSERT_EQ(bucket->size(), 2u);
  const auto& all = overlay_.AddedTuplesFor(edge);
  EXPECT_EQ(all[(*bucket)[0]][0], a);
  EXPECT_EQ(all[(*bucket)[1]][0], a);
  ASSERT_NE(overlay_.AddedProbe(edge, 0b1, {c}), nullptr);
  EXPECT_EQ(overlay_.AddedProbe(edge, 0b1, {c})->size(), 1u);

  overlay_.PopFrame();
  EXPECT_EQ(overlay_.AddedProbe(edge, 0b1, {a}), nullptr)
      << "popping the frame empties the first-arg buckets";
}

TEST_F(OverlayTest, AddedProbeOnSecondColumnAcrossFrames) {
  PredicateId edge = symbols_->InternPredicate("edge", 2).value();
  ConstId d = symbols_->InternConst("d");

  overlay_.PushFrame();
  overlay_.Add(MakeFact("edge", {"a", "d"}));
  overlay_.PushFrame();
  overlay_.Add(MakeFact("edge", {"c", "d"}));
  overlay_.Add(MakeFact("edge", {"c", "e"}));

  const std::vector<RowId>* bucket = overlay_.AddedProbe(edge, 0b10, {d});
  ASSERT_NE(bucket, nullptr);
  ASSERT_EQ(bucket->size(), 2u);
  const auto& all = overlay_.AddedTuplesFor(edge);
  EXPECT_EQ(all[(*bucket)[0]][1], d);
  EXPECT_EQ(all[(*bucket)[1]][1], d);

  // Popping the inner frame trims the mask index back to one entry; the
  // bucket node survives so a later probe still finds the outer tuple.
  overlay_.PopFrame();
  bucket = overlay_.AddedProbe(edge, 0b10, {d});
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 1u);
  overlay_.PopFrame();
  EXPECT_EQ(overlay_.AddedProbe(edge, 0b10, {d}), nullptr);
}

TEST_F(OverlayTest, ForEachAddedInInsertionOrder) {
  overlay_.PushFrame();
  overlay_.Add(MakeFact("p", {"b"}));
  overlay_.Add(MakeFact("p", {"a"}));
  std::vector<std::string> names;
  overlay_.ForEachAdded([&](const Fact& f) {
    names.push_back(symbols_->ConstName(f.args[0]));
  });
  overlay_.PopFrame();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
}

}  // namespace
}  // namespace hypo
