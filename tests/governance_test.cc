// Tests for the unified resource-governance layer (QueryGuard): wall-
// clock deadlines, approximate memory budgets, and cooperative
// cancellation, across all three engines and (bottom-up) at 1 and 8
// threads. The invariants under test:
//
//   * a trip returns the matching typed status (kDeadlineExceeded /
//     kResourceExhausted / kCancelled) with the uniform limit message
//     (limit name, configured value, observed value) — never a wrong
//     answer;
//   * a tripped engine answers fresh queries correctly once the limit is
//     relaxed (mutable_options) or the token reset — no dirty model or
//     stale memo entry is ever served;
//   * the guard counters (guard_checks, deadline headroom, byte peak,
//     cancellations) survive parallel barrier merges exactly.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"

namespace hypo {
namespace {

const char* const kConfigs[] = {"tabled", "stratified", "bottomup",
                                "bottomup-demand", "bottomup-t8"};

std::unique_ptr<Engine> MakeEngine(const std::string& kind,
                                   const RuleBase* rules, const Database* db,
                                   EngineOptions options) {
  if (kind == "tabled") {
    return std::make_unique<TabledEngine>(rules, db, options);
  }
  if (kind == "stratified") {
    return std::make_unique<StratifiedProver>(rules, db, options);
  }
  options.demand = kind == "bottomup-demand";
  options.num_threads = kind == "bottomup-t8" ? 8 : 1;
  return std::make_unique<BottomUpEngine>(rules, db, options);
}

EngineOptions* MutableOptions(Engine* engine) {
  if (auto* t = dynamic_cast<TabledEngine*>(engine)) {
    return t->mutable_options();
  }
  if (auto* s = dynamic_cast<StratifiedProver*>(engine)) {
    return s->mutable_options();
  }
  return dynamic_cast<BottomUpEngine*>(engine)->mutable_options();
}

class GovernanceTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = std::make_shared<SymbolTable>();

  RuleBase ParseRules(const char* text) {
    auto rules = ParseRuleBase(text, symbols_);
    EXPECT_TRUE(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  /// edge(n0, n1), ..., edge(n<n-2>, n<n-1>).
  void BuildChain(Database* db, int n) {
    for (int i = 0; i + 1 < n; ++i) {
      ASSERT_TRUE(db->Insert("edge", {"n" + std::to_string(i),
                                      "n" + std::to_string(i + 1)})
                      .ok());
    }
  }

  RuleBase ReachRules() {
    return ParseRules(
        "reach(X, Y) <- edge(X, Y).\n"
        "reach(X, Z) <- edge(X, Y), reach(Y, Z).");
  }
};

// An already-expired deadline trips the first guard check inside the
// fixpoint / proof search; the status is typed, the message uniform, and
// the same warm instance answers correctly once the deadline is lifted.
TEST_F(GovernanceTest, DeadlineTripsMidFixpointAndInstanceRecovers) {
  RuleBase rules = ReachRules();
  Database db(symbols_);
  BuildChain(&db, 400);
  auto goal = ParseFact("reach(n0, n399)", symbols_.get());
  ASSERT_TRUE(goal.ok());

  for (const char* kind : kConfigs) {
    EngineOptions options;
    options.timeout_micros = 1;
    auto engine = MakeEngine(kind, &rules, &db, options);

    auto tripped = engine->ProveFact(*goal);
    ASSERT_FALSE(tripped.ok()) << kind << " ignored an expired deadline";
    EXPECT_EQ(tripped.status().code(), StatusCode::kDeadlineExceeded)
        << kind << ": " << tripped.status();
    EXPECT_NE(tripped.status().message().find(
                  "timeout_micros exceeded: configured 1, observed"),
              std::string::npos)
        << kind << ": " << tripped.status();
    const EngineStats& stats = engine->stats();
    EXPECT_GT(stats.guard_checks, 0) << kind;
    EXPECT_LT(stats.deadline_micros_remaining, 0)
        << kind << ": headroom at completion should be negative on a trip";

    // Same instance, deadline lifted: the answer must match a fresh run.
    MutableOptions(engine.get())->timeout_micros = 0;
    engine->ResetStats();
    auto answer = engine->ProveFact(*goal);
    ASSERT_TRUE(answer.ok()) << kind << ": " << answer.status();
    EXPECT_TRUE(*answer) << kind << " lost a provable fact after a trip";
  }
}

// The deadline also governs hypothetical child-state materialization: the
// top state is pre-warmed without limits, so the expensive work the
// expired deadline meets is the *child* model (or context subproof)
// triggered by the query's [add: ...] premise.
TEST_F(GovernanceTest, DeadlineTripsMidHypotheticalMaterialization) {
  RuleBase rules = ReachRules();
  Database db(symbols_);
  BuildChain(&db, 300);
  auto warm = ParseFact("reach(n0, n299)", symbols_.get());
  // The added edge closes the chain into a cycle: the child state's
  // closure is a fresh quadratic fixpoint, far past any microsecond.
  auto hypo = ParseQuery("reach(n299, n5)[add: edge(n299, n0)]",
                         symbols_.get());
  ASSERT_TRUE(warm.ok() && hypo.ok());

  for (const char* kind : kConfigs) {
    auto engine = MakeEngine(kind, &rules, &db, EngineOptions());
    auto warmed = engine->ProveFact(*warm);
    ASSERT_TRUE(warmed.ok()) << kind << ": " << warmed.status();
    ASSERT_TRUE(*warmed) << kind;

    MutableOptions(engine.get())->timeout_micros = 1;
    auto tripped = engine->ProveQuery(*hypo);
    ASSERT_FALSE(tripped.ok())
        << kind << " ignored the deadline inside a hypothetical state";
    EXPECT_EQ(tripped.status().code(), StatusCode::kDeadlineExceeded)
        << kind << ": " << tripped.status();

    // The aborted child must not poison the instance: lift the deadline
    // and demand the same hypothetical answer.
    MutableOptions(engine.get())->timeout_micros = 0;
    engine->ResetStats();
    auto answer = engine->ProveQuery(*hypo);
    ASSERT_TRUE(answer.ok()) << kind << ": " << answer.status();
    EXPECT_TRUE(*answer)
        << kind << " served a dirty hypothetical model after a trip";
  }
}

// A tiny memory budget trips kResourceExhausted with the byte counters in
// the message, records the observed peak, and the instance answers
// correctly after the budget is lifted.
TEST_F(GovernanceTest, MemoryBudgetTripsAndInstanceRecovers) {
  RuleBase rules = ReachRules();
  Database db(symbols_);
  BuildChain(&db, 400);
  auto goal = ParseFact("reach(n0, n399)", symbols_.get());
  ASSERT_TRUE(goal.ok());

  for (const char* kind : kConfigs) {
    EngineOptions options;
    options.max_memory_bytes = 1024;
    auto engine = MakeEngine(kind, &rules, &db, options);

    auto tripped = engine->ProveFact(*goal);
    ASSERT_FALSE(tripped.ok()) << kind << " ignored a 1KiB memory budget";
    EXPECT_EQ(tripped.status().code(), StatusCode::kResourceExhausted)
        << kind << ": " << tripped.status();
    EXPECT_NE(tripped.status().message().find(
                  "max_memory_bytes exceeded: configured 1024, observed"),
              std::string::npos)
        << kind << ": " << tripped.status();
    EXPECT_GT(engine->stats().budget_bytes_peak, 1024) << kind;

    MutableOptions(engine.get())->max_memory_bytes = 0;
    engine->ResetStats();
    auto answer = engine->ProveFact(*goal);
    ASSERT_TRUE(answer.ok()) << kind << ": " << answer.status();
    EXPECT_TRUE(*answer) << kind << " lost a provable fact after a memory trip";
  }
}

// A pre-cancelled token aborts the query with kCancelled and bumps the
// cancellation counter; after Reset() the same instance answers exactly
// like a fresh engine.
TEST_F(GovernanceTest, PreCancelledTokenAbortsAndResetRecovers) {
  RuleBase rules = ReachRules();
  Database db(symbols_);
  BuildChain(&db, 400);
  auto goal = ParseFact("reach(n0, n399)", symbols_.get());
  auto open = ParseQuery("reach(n0, X)", symbols_.get());
  ASSERT_TRUE(goal.ok() && open.ok());

  for (const char* kind : kConfigs) {
    EngineOptions options;
    options.cancel = std::make_shared<CancellationToken>();
    options.cancel->Cancel();
    auto engine = MakeEngine(kind, &rules, &db, options);

    auto tripped = engine->ProveFact(*goal);
    ASSERT_FALSE(tripped.ok()) << kind << " ignored a cancelled token";
    EXPECT_EQ(tripped.status().code(), StatusCode::kCancelled)
        << kind << ": " << tripped.status();
    EXPECT_EQ(engine->stats().cancellations, 1) << kind;

    options.cancel->Reset();
    engine->ResetStats();
    auto answer = engine->ProveFact(*goal);
    ASSERT_TRUE(answer.ok()) << kind << ": " << answer.status();
    EXPECT_TRUE(*answer) << kind << " lost a provable fact after a cancel";

    // The model-building engines can also be asked for the full answer
    // set (the tabled oracle's open-query enumeration is deliberately out
    // of scope — it is priced per grounding, not per model).
    if (std::string(kind) != "tabled") {
      auto answers = engine->Answers(*open);
      ASSERT_TRUE(answers.ok()) << kind << ": " << answers.status();
      std::sort(answers->begin(), answers->end());
      auto fresh = MakeEngine(kind, &rules, &db, EngineOptions());
      auto reference = fresh->Answers(*open);
      ASSERT_TRUE(reference.ok()) << reference.status();
      std::sort(reference->begin(), reference->end());
      EXPECT_EQ(*answers, *reference)
          << kind << ": post-cancel answers diverged from a fresh engine";
    }
  }
}

// Cancellation arriving asynchronously mid-evaluation (the SIGINT path)
// aborts cooperatively. The chain grows until the cancel lands before
// the query completes, so the test cannot flake on a fast machine.
TEST_F(GovernanceTest, AsyncCancelAbortsInFlightQuery) {
  RuleBase rules = ReachRules();
  for (const char* kind : kConfigs) {
    bool observed_cancel = false;
    for (int n : {300, 600, 1200, 2400, 4800}) {
      Database db(symbols_);
      BuildChain(&db, n);
      auto open = ParseQuery("reach(X, Y)", symbols_.get());
      ASSERT_TRUE(open.ok());
      EngineOptions options;
      auto token = std::make_shared<CancellationToken>();
      options.cancel = token;
      auto engine = MakeEngine(kind, &rules, &db, options);

      std::thread canceller([token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        token->Cancel();
      });
      auto result = engine->Answers(*open);
      canceller.join();
      if (result.ok()) continue;  // Finished first; grow the chain.

      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << kind << ": " << result.status();
      observed_cancel = true;

      // The same instance keeps working after a reset.
      token->Reset();
      auto probe = ParseFact("reach(n0, n1)", symbols_.get());
      ASSERT_TRUE(probe.ok());
      auto again = engine->ProveFact(*probe);
      ASSERT_TRUE(again.ok()) << kind << ": " << again.status();
      EXPECT_TRUE(*again) << kind;
      break;
    }
    EXPECT_TRUE(observed_cancel)
        << kind << ": every chain size outran the 2ms cancel";
  }
}

// With generous limits armed, governance never trips, answers are
// unchanged, and the guard counters come back meaningful — including
// through the 8-thread barrier merges, where per-worker counts must
// combine exactly (guard_checks summed, peak maxed, headroom from the
// arming thread only).
TEST_F(GovernanceTest, ArmedGuardCountersSurviveParallelMerges) {
  RuleBase rules = ReachRules();
  Database db(symbols_);
  BuildChain(&db, 300);
  auto goal = ParseFact("reach(n0, n299)", symbols_.get());
  auto open = ParseQuery("reach(n0, X)", symbols_.get());
  ASSERT_TRUE(goal.ok() && open.ok());

  std::vector<Tuple> reference;
  for (const char* kind : kConfigs) {
    EngineOptions options;
    options.timeout_micros = 60'000'000;
    options.max_memory_bytes = 1LL << 40;
    options.cancel = std::make_shared<CancellationToken>();
    auto engine = MakeEngine(kind, &rules, &db, options);

    auto proved = engine->ProveFact(*goal);
    ASSERT_TRUE(proved.ok()) << kind << ": " << proved.status();
    EXPECT_TRUE(*proved) << kind << " lost a provable fact under guards";
    if (std::string(kind) != "tabled") {
      auto answers = engine->Answers(*open);
      ASSERT_TRUE(answers.ok()) << kind << ": " << answers.status();
      std::sort(answers->begin(), answers->end());  // Engines order freely.
      if (reference.empty()) {
        reference = *answers;
      } else {
        EXPECT_EQ(*answers, reference) << kind << " diverged under guards";
      }
    }
    const EngineStats& stats = engine->stats();
    EXPECT_GT(stats.guard_checks, 0) << kind;
    EXPECT_GT(stats.deadline_micros_remaining, 0)
        << kind << ": headroom should be positive on completion";
    EXPECT_GT(stats.budget_bytes_peak, 0) << kind;
    EXPECT_EQ(stats.cancellations, 0) << kind;
  }
}

// The memory budget meters tracked_bytes_, so the counter must stay
// EXACTLY in sync with the materialized states across every
// ApplyBaseDelta commit path — incremental insert, DRed retract, the
// negation-forced recompute, and repairs with hypothetical child states
// resident. Drift would make budget trips fire early or, worse, late.
TEST_F(GovernanceTest, TrackedBytesStayExactAcrossBaseDeltaRepairs) {
  RuleBase rules = ParseRules(
      "reach(X, Y) <- edge(X, Y).\n"
      "reach(X, Z) <- edge(X, Y), reach(Y, Z).\n"
      "blocked(X, Y) <- node(X), node(Y), ~reach(X, Y).\n");
  Database db(symbols_);
  BuildChain(&db, 8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.Insert("node", {"n" + std::to_string(i)}).ok());
  }

  for (int threads : {1, 8}) {
    EngineOptions options;
    options.num_threads = threads;
    BottomUpEngine engine(&rules, &db, options);
    // Materialize the base model plus a hypothetical child state, so the
    // repair has both flavors of resident state to reconcile.
    auto base_q = ParseQuery("blocked(n7, n0)", symbols_.get());
    auto hypo_q = ParseQuery("reach(n5, n9)[add: edge(n7, n9)]",
                             symbols_.get());
    ASSERT_TRUE(base_q.ok() && hypo_q.ok());
    ASSERT_TRUE(engine.ProveQuery(*base_q).ok());
    ASSERT_TRUE(engine.ProveQuery(*hypo_q).ok());
    // (No exactness claim here: during live fixpoints the counter runs on
    // cheap per-fact estimates. The repair commit below must re-anchor it
    // to the truth.)

    struct Step {
      const char* fact;
      bool insert;
    };
    // Insert-only (incremental), retract (DRed delete-and-rederive), and
    // a retract that flips negation-derived facts (stratum recompute).
    const Step steps[] = {{"edge(n3, n5)", true},
                          {"edge(n3, n5)", false},
                          {"edge(n0, n1)", false},
                          {"edge(n0, n1)", true}};
    for (const Step& step : steps) {
      auto fact = ParseFact(step.fact, symbols_.get());
      ASSERT_TRUE(fact.ok());
      BaseDelta delta;
      if (step.insert) {
        ASSERT_TRUE(db.Insert(*fact));
        delta.inserts.push_back(*fact);
      } else {
        ASSERT_TRUE(db.Retract(*fact));
        delta.retracts.push_back(*fact);
      }
      ASSERT_TRUE(engine.ApplyBaseDelta(delta).ok()) << step.fact;
      EXPECT_EQ(engine.TrackedBytesForTest(),
                engine.ExactTrackedBytesForTest())
          << "threads=" << threads << ": drift after "
          << (step.insert ? "insert " : "retract ") << step.fact;
      // The repaired instance still answers; accounting stayed live.
      ASSERT_TRUE(engine.ProveQuery(*base_q).ok());
      EXPECT_EQ(engine.TrackedBytesForTest(),
                engine.ExactTrackedBytesForTest())
          << "threads=" << threads << ": drift after post-repair query";
    }
  }
}

}  // namespace
}  // namespace hypo
