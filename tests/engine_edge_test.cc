#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "queries/parity.h"

namespace hypo {
namespace {

class EngineEdgeTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = std::make_shared<SymbolTable>();

  RuleBase Parse(const char* text) {
    auto rules = ParseRuleBase(text, symbols_);
    EXPECT_TRUE(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  Query Q(const std::string& text) {
    auto query = ParseQuery(text, symbols_.get());
    EXPECT_TRUE(query.ok()) << query.status();
    return std::move(query).value();
  }
};

TEST_F(EngineEdgeTest, RepeatedHeadVariables) {
  RuleBase rules = Parse("diag(X, X) <- node(X).\nhas_diag <- diag(X, Y).");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("node(a). node(b).", &db).ok());
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<Engine> engine;
    if (kind == 0) engine = std::make_unique<TabledEngine>(&rules, &db);
    if (kind == 1) engine = std::make_unique<BottomUpEngine>(&rules, &db);
    if (kind == 2) engine = std::make_unique<StratifiedProver>(&rules, &db);
    ASSERT_TRUE(engine->Init().ok()) << engine->name();
    auto answers = engine->Answers(Q("diag(X, Y)"));
    ASSERT_TRUE(answers.ok()) << engine->name();
    EXPECT_EQ(answers->size(), 2u) << engine->name();
    for (const Tuple& t : *answers) EXPECT_EQ(t[0], t[1]);
    auto off_diag = engine->ProveQuery(Q("diag(a, b)"));
    ASSERT_TRUE(off_diag.ok());
    EXPECT_FALSE(*off_diag) << engine->name();
  }
}

TEST_F(EngineEdgeTest, ConjunctiveQuerySharesBindings) {
  RuleBase rules = Parse("ok(X) <- q(X)[add: mark(X)].\nq(X) <- p(X), mark(X).");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("p(a). p(b). blocked(b).", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  // X must be bound consistently across both premises.
  auto answers = engine.Answers(Q("ok(X), ~blocked(X)"));
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(symbols_->ConstName((*answers)[0][0]), "a");
}

TEST_F(EngineEdgeTest, MemoReuseAcrossQueries) {
  ProgramFixture fixture = MakeParityFixture(6);
  StratifiedProver prover(&fixture.rules, &fixture.db);
  ASSERT_TRUE(prover.Init().ok());
  auto even = ParseQuery("even", fixture.symbols.get());
  ASSERT_TRUE(even.ok());
  ASSERT_TRUE(prover.ProveQuery(*even).ok());
  int64_t goals_first = prover.stats().goals_expanded;
  ASSERT_TRUE(prover.ProveQuery(*even).ok());
  EXPECT_EQ(prover.stats().goals_expanded, goals_first)
      << "second identical query must be answered from the memo";
  EXPECT_GT(prover.stats().memo_hits, 0);
}

TEST_F(EngineEdgeTest, EvalStrategyDoesNotChangeAnswers) {
  ProgramFixture fixture = MakeParityFixture(5);
  for (EvalStrategy strategy :
       {EvalStrategy::kNaive, EvalStrategy::kRuleFilter,
        EvalStrategy::kDeltaSeminaive}) {
    EngineOptions options;
    options.eval_strategy = strategy;
    BottomUpEngine engine(&fixture.rules, &fixture.db, options);
    Fact odd;
    odd.predicate = fixture.symbols->FindPredicate("odd");
    auto r = engine.ProveFact(odd);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(*r) << "strategy=" << static_cast<int>(strategy);
  }
}

TEST_F(EngineEdgeTest, GroundRuleHeadsActAsDerivedFacts) {
  RuleBase rules = Parse("axiom(a).\nuses(X) <- axiom(X).");
  Database db(symbols_);
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(*engine.ProveQuery(Q("uses(a)")));
  EXPECT_FALSE(*engine.ProveQuery(Q("uses(b)")));
}

TEST_F(EngineEdgeTest, NegationOnlyVariableEnumeratesInQueries) {
  // In a top-level query every variable (even negation-only ones) is
  // enumerated over the domain: answers are the non-q elements.
  RuleBase rules = Parse("q(a).");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("el(a). el(b). el(c).", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  auto answers = engine.Answers(Q("el(X), ~q(X)"));
  ASSERT_TRUE(answers.ok());
  std::set<std::string> got;
  for (const Tuple& t : *answers) got.insert(symbols_->ConstName(t[0]));
  EXPECT_EQ(got, (std::set<std::string>{"b", "c"}));
}

TEST_F(EngineEdgeTest, HypotheticalQueryOfUndefinedPredicate) {
  // The queried atom of a hypothetical premise may itself be extensional:
  // only inference rule 1 applies inside the new state.
  RuleBase rules = Parse("w <- ghost[add: ghost].\nv <- ghost[add: other].");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("seed.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(*engine.ProveQuery(Q("w")));
  EXPECT_FALSE(*engine.ProveQuery(Q("v")));
}

TEST_F(EngineEdgeTest, SelfSupportIsNotAProof) {
  // p <- p must not prove p (least fixpoint), in any engine, including
  // through a hypothetical no-op premise.
  RuleBase rules = Parse("p <- p.\nr <- r[add: unrelated].");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("unrelated.", &db).ok());
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<Engine> engine;
    if (kind == 0) engine = std::make_unique<TabledEngine>(&rules, &db);
    if (kind == 1) engine = std::make_unique<BottomUpEngine>(&rules, &db);
    if (kind == 2) engine = std::make_unique<StratifiedProver>(&rules, &db);
    ASSERT_TRUE(engine->Init().ok()) << engine->name();
    EXPECT_FALSE(*engine->ProveQuery(Q("p"))) << engine->name();
    EXPECT_FALSE(*engine->ProveQuery(Q("r"))) << engine->name();
  }
}

TEST_F(EngineEdgeTest, MutualRecursionThroughHypothesis) {
  // ping/pong recurse through growing states and terminate with the
  // right answer everywhere.
  RuleBase rules = Parse(
      "ping(X) <- step(X, Y), pong(Y)[add: seen(X)].\n"
      "pong(X) <- step(X, Y), ping(Y)[add: seen(X)].\n"
      "pong(X) <- final(X).\n");
  Database db(symbols_);
  ASSERT_TRUE(
      ParseFactsInto("step(a, b). step(b, c). final(c).", &db).ok());
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<Engine> engine;
    if (kind == 0) engine = std::make_unique<TabledEngine>(&rules, &db);
    if (kind == 1) engine = std::make_unique<BottomUpEngine>(&rules, &db);
    if (kind == 2) engine = std::make_unique<StratifiedProver>(&rules, &db);
    ASSERT_TRUE(engine->Init().ok()) << engine->name();
    // pong(a) -> ping(b) -> pong(c) <- final(c): provable in two hops;
    // ping(a) -> pong(b) -> ping(c) dead-ends (no step out of c).
    EXPECT_FALSE(*engine->ProveQuery(Q("ping(a)"))) << engine->name();
    EXPECT_TRUE(*engine->ProveQuery(Q("pong(a)"))) << engine->name();
  }
}

TEST_F(EngineEdgeTest, ResetStatsClearsCounters) {
  ProgramFixture fixture = MakeParityFixture(4);
  TabledEngine engine(&fixture.rules, &fixture.db);
  auto even = ParseQuery("even", fixture.symbols.get());
  ASSERT_TRUE(even.ok());
  ASSERT_TRUE(engine.ProveQuery(*even).ok());
  EXPECT_GT(engine.stats().goals_expanded, 0);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().goals_expanded, 0);
  EXPECT_EQ(engine.stats().max_goal_depth, 0);
}

TEST_F(EngineEdgeTest, MaxStepsLimitSurfaces) {
  ProgramFixture fixture = MakeParityFixture(8);
  EngineOptions options;
  options.max_steps = 5;
  TabledEngine engine(&fixture.rules, &fixture.db, options);
  auto even = ParseQuery("even", fixture.symbols.get());
  ASSERT_TRUE(even.ok());
  auto r = engine.ProveQuery(*even);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineEdgeTest, ExtensionalEnumerationIsMetered) {
  // The addition's variables occur nowhere else, so the plan runs a
  // domain^3 kEnumerateVars loop that expands no goals at all. Before the
  // enumeration counter, such loops ran to completion regardless of
  // max_steps; they must surface ResourceExhausted instead.
  RuleBase rules = Parse("p0 <- ghost[add: e0(X, Y, Z)].");
  Database db(symbols_);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db.Insert("el", {"c" + std::to_string(i)}).ok());
  }
  EngineOptions options;
  options.max_steps = 1000;
  {
    TabledEngine engine(&rules, &db, options);
    auto r = engine.ProveQuery(Q("p0"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_GT(engine.stats().enumerations, options.max_steps);
  }
  {
    StratifiedProver prover(&rules, &db, options);
    auto r = prover.ProveQuery(Q("p0"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST_F(EngineEdgeTest, NegatedEnumerationIsMetered) {
  // ∄-reading of a negated extensional premise with three free variables:
  // ExistsProvable grounds domain^3 instances, none of which expand a
  // goal. The enumeration counter must trip max_steps here too.
  RuleBase rules = Parse("q <- ~e0(X, Y, Z).");
  Database db(symbols_);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db.Insert("el", {"c" + std::to_string(i)}).ok());
  }
  EngineOptions options;
  options.max_steps = 1000;
  TabledEngine engine(&rules, &db, options);
  auto r = engine.ProveQuery(Q("q"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineEdgeTest, RepeatedOutOfDomainConstantRebuildsOnce) {
  // A query constant outside dom(R, DB) folds into the domain with one
  // re-Init; asking again (even with the constant repeated inside one
  // query) must not rebuild or grow the extra-constant list again.
  RuleBase rules = Parse("p(X) <- el(X).");
  Database db(symbols_);
  ASSERT_TRUE(db.Insert("el", {"a"}).ok());
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<Engine> engine;
    if (kind == 0) engine = std::make_unique<TabledEngine>(&rules, &db);
    if (kind == 1) engine = std::make_unique<BottomUpEngine>(&rules, &db);
    if (kind == 2) engine = std::make_unique<StratifiedProver>(&rules, &db);
    ASSERT_TRUE(engine->Init().ok()) << engine->name();
    EXPECT_EQ(engine->stats().domain_rebuilds, 1) << engine->name();
    EXPECT_FALSE(*engine->ProveQuery(Q("p(zz), p(zz)")));
    EXPECT_EQ(engine->stats().domain_rebuilds, 2)
        << engine->name() << ": one rebuild for the new constant";
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(*engine->ProveQuery(Q("p(zz)")));
    }
    EXPECT_EQ(engine->stats().domain_rebuilds, 2)
        << engine->name()
        << ": repeated queries with the same constant must not rebuild";
  }
}

TEST_F(EngineEdgeTest, RecursionThroughNegationRejectedEverywhere) {
  RuleBase rules = Parse("p <- ~q. q <- ~p.");
  Database db(symbols_);
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<Engine> engine;
    if (kind == 0) engine = std::make_unique<TabledEngine>(&rules, &db);
    if (kind == 1) engine = std::make_unique<BottomUpEngine>(&rules, &db);
    if (kind == 2) engine = std::make_unique<StratifiedProver>(&rules, &db);
    Status s = engine->Init();
    ASSERT_FALSE(s.ok()) << engine->name();
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << engine->name();
  }
}

TEST_F(EngineEdgeTest, MismatchedSymbolTablesRejected) {
  RuleBase rules = Parse("p <- q.");
  auto other_symbols = std::make_shared<SymbolTable>();
  Database db(other_symbols);
  TabledEngine engine(&rules, &db);
  Status s = engine.Init();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hypo
