#include <vector>

#include <gtest/gtest.h>

#include "tm/machine.h"
#include "tm/machines_library.h"
#include "tm/simulator.h"

namespace hypo {
namespace {

TEST(ValidateMachineTest, AcceptsLibraryMachines) {
  EXPECT_TRUE(ValidateMachine(MakeFirstCellIsOneMachine()).ok());
  EXPECT_TRUE(ValidateMachine(MakeParityMachine(true)).ok());
  EXPECT_TRUE(ValidateMachine(MakeParityMachine(false)).ok());
  EXPECT_TRUE(ValidateMachine(MakeContainsOneMachine()).ok());
  EXPECT_TRUE(ValidateMachine(MakeGuessMachine()).ok());
  EXPECT_TRUE(ValidateMachine(MakeAskOracleMachine(true)).ok());
  EXPECT_TRUE(ValidateMachine(MakeExpectNoMachine()).ok());
}

TEST(ValidateMachineTest, RejectsBadSpecs) {
  MachineSpec m = MakeFirstCellIsOneMachine();
  m.accepting_states.clear();
  EXPECT_FALSE(ValidateMachine(m).ok());

  m = MakeFirstCellIsOneMachine();
  m.transitions[0].next_state = 99;
  EXPECT_FALSE(ValidateMachine(m).ok());

  m = MakeFirstCellIsOneMachine();
  m.transitions[0].move_work = 2;
  EXPECT_FALSE(ValidateMachine(m).ok());

  // A machine without q? must not touch the oracle tape.
  m = MakeFirstCellIsOneMachine();
  m.transitions[0].oracle_write = kSym1;
  EXPECT_FALSE(ValidateMachine(m).ok());

  // An oracle-using machine must write the oracle tape on every step.
  m = MakeAskOracleMachine(true);
  m.transitions[0].oracle_write = -1;
  EXPECT_FALSE(ValidateMachine(m).ok());
}

TEST(ValidateCascadeTest, BottomMachineMayNotUseOracle) {
  EXPECT_FALSE(ValidateCascade({MakeAskOracleMachine(true)}).ok());
  EXPECT_TRUE(ValidateCascade(
                  {MakeAskOracleMachine(true), MakeFirstCellIsOneMachine()})
                  .ok());
  EXPECT_FALSE(ValidateCascade({}).ok());
}

TEST(SimulatorTest, FirstCellIsOne) {
  CascadeSimulator sim({MakeFirstCellIsOneMachine()}, 4, 4);
  EXPECT_TRUE(*sim.Accepts({kSym1}));
  EXPECT_FALSE(*sim.Accepts({kSym0}));
  EXPECT_FALSE(*sim.Accepts({}));
  EXPECT_TRUE(*sim.Accepts({kSym1, kSym0}));
}

TEST(SimulatorTest, ContainsOne) {
  CascadeSimulator sim({MakeContainsOneMachine()}, 6, 6);
  EXPECT_TRUE(*sim.Accepts({kSym0, kSym0, kSym1}));
  EXPECT_FALSE(*sim.Accepts({kSym0, kSym0, kSym0}));
  EXPECT_TRUE(*sim.Accepts({kSym1}));
  EXPECT_FALSE(*sim.Accepts({}));
}

TEST(SimulatorTest, ParityScansCorrectly) {
  for (bool accept_even : {true, false}) {
    CascadeSimulator sim({MakeParityMachine(accept_even)}, 8, 8);
    for (int ones = 0; ones <= 4; ++ones) {
      std::vector<int> input;
      for (int i = 0; i < ones; ++i) input.push_back(kSym1);
      for (int i = ones; i < 5; ++i) input.push_back(kSym0);
      bool expected = accept_even == (ones % 2 == 0);
      EXPECT_EQ(*sim.Accepts(input), expected)
          << "ones=" << ones << " accept_even=" << accept_even;
    }
  }
}

TEST(SimulatorTest, TimeBoundKillsLongRuns) {
  // parity on 5 cells needs ~6 ticks; 4 are not enough.
  CascadeSimulator sim({MakeParityMachine(true)}, 8, 4);
  EXPECT_FALSE(*sim.Accepts({kSym0, kSym0, kSym0, kSym0, kSym0}));
}

TEST(SimulatorTest, TapeEdgeKillsBranch) {
  // contains-one walking right off a 2-cell tape dies without accepting.
  CascadeSimulator sim({MakeContainsOneMachine()}, 2, 8);
  EXPECT_FALSE(*sim.Accepts({kSym0, kSym0}));
}

TEST(SimulatorTest, NondeterministicGuess) {
  CascadeSimulator sim({MakeGuessMachine()}, 4, 4);
  EXPECT_TRUE(*sim.Accepts({kSym0}));
  EXPECT_TRUE(*sim.Accepts({}));
  EXPECT_GT(sim.branches_explored(), 0);
}

TEST(SimulatorTest, OracleCascadeYes) {
  // M_2 copies its first cell to the oracle; M_1 accepts iff it is '1'.
  CascadeSimulator sim(
      {MakeAskOracleMachine(/*accept_on_yes=*/true),
       MakeFirstCellIsOneMachine()},
      4, 8);
  EXPECT_TRUE(*sim.Accepts({kSym1}));
  EXPECT_FALSE(*sim.Accepts({kSym0}));
}

TEST(SimulatorTest, OracleCascadeNo) {
  // M_2 accepts iff the oracle answers *no* (the coNP-flavored boundary).
  CascadeSimulator sim(
      {MakeAskOracleMachine(/*accept_on_yes=*/false),
       MakeFirstCellIsOneMachine()},
      4, 8);
  EXPECT_FALSE(*sim.Accepts({kSym1}));
  EXPECT_TRUE(*sim.Accepts({kSym0}));
}

TEST(SimulatorTest, ExpectNoCascadeAlwaysAccepts) {
  CascadeSimulator sim(
      {MakeExpectNoMachine(), MakeFirstCellIsOneMachine()}, 4, 8);
  EXPECT_TRUE(*sim.Accepts({kSym0}));
  EXPECT_TRUE(*sim.Accepts({kSym1}));
}

TEST(SimulatorTest, ThreeLevelCascade) {
  // M_3 = expect-no over (M_2 = ask-oracle-yes over M_1 = first-cell-is-1).
  // M_3 writes '0' to M_2's tape; M_2 copies that '0' down to M_1, which
  // rejects; M_2 rejects; M_3 sees "no" and accepts. Always accepts.
  CascadeSimulator sim({MakeExpectNoMachine(), MakeAskOracleMachine(true),
                        MakeFirstCellIsOneMachine()},
                       4, 12);
  EXPECT_TRUE(*sim.Accepts({kSym1}));
  EXPECT_TRUE(*sim.Accepts({}));
}

TEST(SimulatorTest, BranchBudgetSurfacesCleanly) {
  CascadeSimulator sim({MakeGuessMachine()}, 4, 4);
  sim.set_max_branches(1);
  auto r = sim.Accepts({kSym0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(SimulatorTest, InputValidation) {
  CascadeSimulator sim({MakeFirstCellIsOneMachine()}, 2, 2);
  EXPECT_FALSE(sim.Accepts({kSym1, kSym1, kSym1}).ok()) << "input too long";
  EXPECT_FALSE(sim.Accepts({99}).ok()) << "symbol out of range";
}

}  // namespace
}  // namespace hypo
