// Tests for the persistent cross-query layer introduced with the
// MemoBoard, and for restricted predicates:
//
//   * parser: `:- assumable p/2.` / `:- retractable q/1.` directives
//     populate the rulebase's restriction sets; malformed directives are
//     typed parse errors;
//   * front-end checks: hypothetical insertion/deletion of an
//     unrestricted predicate is rejected with kFailedPrecondition, both
//     for rules (at Init) and for queries, on every engine;
//   * MemoBoard unit behaviour: epoch bumps invalidate, the byte budget
//     evicts, context re-interning reports reuse;
//   * cross-engine sharing: a second engine attached to the same board
//     answers from the board (goal memo for the top-down engines, base
//     model adoption for the bottom-up engine), bit-identically;
//   * epoch-bump interleaving: after a base mutation, the first repaired
//     engine republishes and a sibling adopts instead of repairing;
//   * differential: board on vs board off (and restricted vs not, and
//     threads 1 vs 8) derive identical fact sets on random programs;
//   * server: the new counters surface through QueryServer/stats and the
//     cache-off escape hatch changes no answers.

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/restricted.h"
#include "analysis/stratification.h"
#include "ast/printer.h"
#include "engine/bottom_up.h"
#include "engine/memo_board.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "server/protocol.h"
#include "server/query_server.h"
#include "workload/random_programs.h"

namespace hypo {
namespace {

// The paper's running example (§2): tony graduates if he takes the right
// courses; one_course_away asks hypothetically.
constexpr char kCoursesRules[] = R"(
grad(S) <- take(S, his101), take(S, eng201).
grad(S) <- take(S, cs250), take(S, cs452).
can_grad(S) <- grad(S)[add: take(S, cs452)].
)";

constexpr char kCoursesFacts[] = R"(
take(tony, his101).
take(tony, cs250).
take(mary, his101).
take(mary, eng201).
)";

std::unique_ptr<Engine> MakeEngine(const std::string& kind,
                                   const RuleBase* rules, const Database* db,
                                   EngineOptions options = {}) {
  if (kind == "tabled") {
    return std::make_unique<TabledEngine>(rules, db, options);
  }
  if (kind == "stratified") {
    return std::make_unique<StratifiedProver>(rules, db, options);
  }
  if (kind == "bottomup-t8") options.num_threads = 8;
  return std::make_unique<BottomUpEngine>(rules, db, options);
}

class CrossQueryTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = std::make_shared<SymbolTable>();

  RuleBase ParseRules(const std::string& text) {
    auto rules = ParseRuleBase(text, symbols_);
    EXPECT_TRUE(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  Database ParseFacts(const std::string& text) {
    Database db(symbols_);
    EXPECT_TRUE(ParseFactsInto(text, &db).ok());
    return db;
  }

  Query MustQuery(const std::string& text) {
    auto q = ParseQuery(text, symbols_.get());
    EXPECT_TRUE(q.ok()) << q.status();
    return std::move(q).value();
  }

  PredicateId Pred(const std::string& name, int arity) {
    auto id = symbols_->InternPredicate(name, arity);
    EXPECT_TRUE(id.ok()) << id.status();
    return *id;
  }
};

// ---------------------------------------------------------------------------
// Parser: restriction directives.

TEST_F(CrossQueryTest, DirectivesPopulateRestrictionSets) {
  RuleBase rules = ParseRules(
      ":- assumable take/2.\n"
      ":- retractable take/2.\n"
      ":- assumable enrolled/1.\n"
      "grad(S) <- take(S, cs250).\n");
  EXPECT_TRUE(rules.has_restrictions());
  EXPECT_EQ(rules.assumable().count(Pred("take", 2)), 1u);
  EXPECT_EQ(rules.retractable().count(Pred("take", 2)), 1u);
  EXPECT_EQ(rules.assumable().count(Pred("enrolled", 1)), 1u);
  EXPECT_EQ(rules.retractable().count(Pred("enrolled", 1)), 0u);
  // Undeclared rulebases keep the pre-directive behaviour.
  RuleBase plain = ParseRules("grad(S) <- take(S, cs250).\n");
  EXPECT_FALSE(plain.has_restrictions());
}

TEST_F(CrossQueryTest, MalformedDirectivesAreTypedParseErrors) {
  const char* bad[] = {
      ":- frobnicate take/2.",       // Unknown directive verb.
      ":- assumable take.",          // Missing arity.
      ":- assumable take/x.",        // Non-integer arity.
      ":- assumable Take/2.",        // Variables cannot be predicates.
      ":- assumable take/2",         // Missing final period.
  };
  for (const char* text : bad) {
    auto rules = ParseRuleBase(text, symbols_);
    ASSERT_FALSE(rules.ok()) << "accepted: " << text;
    EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument)
        << text << ": " << rules.status();
  }
}

TEST_F(CrossQueryTest, ParseProgramCarriesDirectives) {
  auto program = ParseProgram(
      std::string(":- assumable take/2.\n") + kCoursesRules + kCoursesFacts,
      symbols_);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_TRUE(program->rules.has_restrictions());
  EXPECT_EQ(program->rules.assumable().count(Pred("take", 2)), 1u);
}

// ---------------------------------------------------------------------------
// Front-end checks: rejection is typed and engine-independent.

TEST_F(CrossQueryTest, UndeclaredRuleHypothesisRejectedAtInit) {
  // `grad` is not assumable, so the rule's [add: grad(...)] must be
  // rejected — by every engine, with the typed status.
  RuleBase rules = ParseRules(
      ":- assumable take/2.\n"
      "grad(S) <- take(S, his101), take(S, eng201).\n"
      "bogus(S) <- can_grad(S)[add: grad(S)].\n");
  Database db = ParseFacts(kCoursesFacts);
  for (const char* kind : {"tabled", "stratified", "bottomup"}) {
    auto engine = MakeEngine(kind, &rules, &db);
    Status s = engine->Init();
    ASSERT_FALSE(s.ok()) << kind << " accepted an unrestricted insertion";
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << kind << ": " << s;
    EXPECT_NE(s.message().find("grad/1"), std::string::npos) << s;
    EXPECT_NE(s.message().find("assumable"), std::string::npos) << s;
  }
}

TEST_F(CrossQueryTest, UndeclaredQueryHypothesisRejected) {
  RuleBase rules = ParseRules(std::string(":- assumable take/2.\n"
                                          ":- retractable take/2.\n") +
                              kCoursesRules);
  Database db = ParseFacts(kCoursesFacts);
  Query allowed = MustQuery("grad(tony)[add: take(tony, cs452)]");
  Query denied = MustQuery("grad(tony)[add: grad(mary)]");
  for (const char* kind : {"tabled", "stratified", "bottomup"}) {
    auto engine = MakeEngine(kind, &rules, &db);
    auto ok = engine->ProveQuery(allowed);
    ASSERT_TRUE(ok.ok()) << kind << ": " << ok.status();
    EXPECT_TRUE(*ok) << kind;
    auto rejected = engine->ProveQuery(denied);
    ASSERT_FALSE(rejected.ok()) << kind;
    EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition)
        << kind << ": " << rejected.status();
    // Answers() runs the same gate.
    auto answers = engine->Answers(MustQuery("grad(X)[add: grad(mary)]"));
    ASSERT_FALSE(answers.ok()) << kind;
    EXPECT_EQ(answers.status().code(), StatusCode::kFailedPrecondition);
  }
  // Deletions check the retractable set (TabledEngine only).
  auto tabled = MakeEngine("tabled", &rules, &db);
  auto del_ok = tabled->ProveQuery(MustQuery("grad(mary)[del: take(mary, eng201)]"));
  ASSERT_TRUE(del_ok.ok()) << del_ok.status();
  EXPECT_FALSE(*del_ok);
  auto del_bad = tabled->ProveQuery(MustQuery("grad(mary)[del: grad(mary)]"));
  ASSERT_FALSE(del_bad.ok());
  EXPECT_EQ(del_bad.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(del_bad.status().message().find("retractable"), std::string::npos);
}

TEST_F(CrossQueryTest, ConeDropsIrrelevantContextElements) {
  // `unrelated` cannot reach grad's derivation cone, so it must not be
  // part of grad's canonical overlay; `take` must be.
  RuleBase rules = ParseRules(std::string(":- assumable take/2.\n"
                                          ":- assumable unrelated/1.\n") +
                              kCoursesRules + "other(X) <- unrelated(X).\n");
  RestrictionAnalysis analysis(&rules);
  ASSERT_TRUE(analysis.active());
  PredicateId grad = Pred("grad", 1);
  EXPECT_TRUE(analysis.Relevant(grad, Pred("take", 2)));
  EXPECT_FALSE(analysis.Relevant(grad, Pred("unrelated", 1)));
  EXPECT_TRUE(analysis.Relevant(Pred("other", 1), Pred("unrelated", 1)));
}

// ---------------------------------------------------------------------------
// MemoBoard unit behaviour.

TEST(MemoBoardTest, EpochBumpInvalidatesGoalsAndModels) {
  MemoBoard board;
  board.BeginEpoch(1);
  board.PublishGoal(/*fact=*/7, /*context=*/0, /*domain_fp=*/42, true);
  EXPECT_EQ(board.LookupGoal(7, 0, 42), 1);
  auto symbols = std::make_shared<SymbolTable>();
  auto model = std::make_shared<Database>(symbols);
  ASSERT_TRUE(model->Insert("p", {"a"}).ok());
  board.PublishModel(/*context=*/0, /*domain_fp=*/42, model);
  EXPECT_NE(board.LookupModel(0, 42), nullptr);

  board.BeginEpoch(2);
  EXPECT_EQ(board.LookupGoal(7, 0, 42), 0) << "stale goal served";
  EXPECT_EQ(board.LookupModel(0, 42), nullptr) << "stale model served";

  // Republished entries are visible again under the new epoch; a
  // mismatched domain fingerprint never answers.
  board.PublishGoal(7, 0, 42, false);
  EXPECT_EQ(board.LookupGoal(7, 0, 42), -1);
  EXPECT_EQ(board.LookupGoal(7, 0, 43), 0);
  board.PublishModel(0, 42, model);
  EXPECT_NE(board.LookupModel(0, 42), nullptr);
  EXPECT_EQ(board.LookupModel(0, 43), nullptr);
  EXPECT_EQ(board.snapshot_stats().epoch, 2);
}

TEST(MemoBoardTest, ByteBudgetEvictsLeastRecentlyUsedModels) {
  MemoBoard board(/*max_bytes=*/2048);
  board.BeginEpoch(1);
  auto symbols = std::make_shared<SymbolTable>();
  for (int m = 0; m < 16; ++m) {
    auto model = std::make_shared<Database>(symbols);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(
          model->Insert("p", {"c" + std::to_string(m * 32 + i)}).ok());
    }
    board.PublishModel(/*context=*/m, /*domain_fp=*/1, std::move(model));
  }
  MemoBoard::Stats stats = board.snapshot_stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_EQ(stats.model_publishes, 16);
  // The most recent publish survives; the budget holds (interner bytes
  // are reported on top of the budgeted entry bytes).
  EXPECT_NE(board.LookupModel(15, 1), nullptr);
}

TEST(MemoBoardTest, ContextReuseIsReportedOnlyForRealOverlays) {
  MemoBoard board;
  board.BeginEpoch(1);
  bool reused = true;
  ContextId empty = board.InternContext({}, &reused);
  EXPECT_EQ(empty, ContextInterner::kEmptyContext);
  EXPECT_FALSE(reused) << "the empty context is not a reuse signal";

  ContextId first = board.InternContext({3, 5}, &reused);
  EXPECT_FALSE(reused);
  ContextId again = board.InternContext({3, 5}, &reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(first, again);
  ContextId other = board.InternContext({3, 7}, &reused);
  EXPECT_FALSE(reused);
  EXPECT_NE(other, first);
  EXPECT_EQ(board.snapshot_stats().contexts_reused, 1);
}

// ---------------------------------------------------------------------------
// Cross-engine reuse through a shared board.

TEST_F(CrossQueryTest, SecondTabledEngineAnswersFromTheBoard) {
  RuleBase rules = ParseRules(kCoursesRules);
  Database db = ParseFacts(kCoursesFacts);
  MemoBoard board;
  board.BeginEpoch(1);

  TabledEngine a(&rules, &db);
  a.AttachMemoBoard(&board);
  TabledEngine b(&rules, &db);
  b.AttachMemoBoard(&board);

  Query q = MustQuery("can_grad(tony)");
  auto first = a.ProveQuery(q);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(*first);
  EXPECT_GT(board.snapshot_stats().goal_publishes, 0);

  auto second = b.ProveQuery(q);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(*second);
  EXPECT_GT(b.stats().cache_hits_cross_query, 0)
      << "warm sibling recomputed instead of using the board";
}

TEST_F(CrossQueryTest, StratifiedProverAdoptsTabledGoals) {
  RuleBase rules = ParseRules(kCoursesRules);
  Database db = ParseFacts(kCoursesFacts);
  MemoBoard board;
  board.BeginEpoch(1);

  TabledEngine a(&rules, &db);
  a.AttachMemoBoard(&board);
  StratifiedProver b(&rules, &db);
  b.AttachMemoBoard(&board);

  Query q = MustQuery("grad(mary)");
  auto first = a.ProveQuery(q);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(*first);
  auto second = b.ProveQuery(q);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(*second) << "cross-procedure goal sharing changed the answer";
}

TEST_F(CrossQueryTest, SecondBottomUpEngineAdoptsTheBaseModel) {
  RuleBase rules = ParseRules(kCoursesRules);
  Database db = ParseFacts(kCoursesFacts);
  MemoBoard board;
  board.BeginEpoch(1);

  BottomUpEngine a(&rules, &db);
  a.AttachMemoBoard(&board);
  BottomUpEngine b(&rules, &db);
  b.AttachMemoBoard(&board);

  Query q = MustQuery("grad(X)");
  auto first = a.Answers(q);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(board.snapshot_stats().model_publishes, 1)
      << "base model not published";

  auto second = b.Answers(q);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*second, *first);
  EXPECT_GT(b.stats().cache_hits_cross_query, 0)
      << "warm sibling re-ran the fixpoint";
  EXPECT_GT(board.snapshot_stats().model_hits, 0);
}

TEST_F(CrossQueryTest, EpochBumpRepairRepublishAdoptInterleaving) {
  RuleBase rules = ParseRules(kCoursesRules);
  Database db = ParseFacts(kCoursesFacts);
  MemoBoard board;
  board.BeginEpoch(1);

  BottomUpEngine a(&rules, &db);
  a.AttachMemoBoard(&board);
  BottomUpEngine b(&rules, &db);
  b.AttachMemoBoard(&board);
  Query q = MustQuery("grad(X)");
  ASSERT_TRUE(a.Answers(q).ok());
  ASSERT_TRUE(b.Answers(q).ok());

  // Base mutation: tony takes cs452, so grad(tony) becomes true outright.
  auto fact = ParseFact("take(tony, cs452)", symbols_.get());
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(db.Insert(*fact));
  BaseDelta delta;
  delta.inserts.push_back(*fact);

  board.BeginEpoch(2);
  // First engine repairs against the new epoch and republishes...
  ASSERT_TRUE(a.ApplyBaseDelta(delta).ok());
  MemoBoard::Stats mid = board.snapshot_stats();
  EXPECT_GE(mid.model_publishes, 2) << "repaired model not republished";
  // ...so the sibling skips its own repair and adopts at its next query.
  ASSERT_TRUE(b.ApplyBaseDelta(delta).ok());
  b.ResetStats();
  auto warm = b.Answers(q);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_GT(b.stats().cache_hits_cross_query, 0)
      << "sibling repaired instead of adopting across the epoch bump";

  // Ground truth: a fresh board-less engine over the mutated base.
  BottomUpEngine fresh(&rules, &db);
  auto expect = fresh.Answers(q);
  ASSERT_TRUE(expect.ok()) << expect.status();
  EXPECT_EQ(*warm, *expect);
}

// ---------------------------------------------------------------------------
// Differential: the board must never change an answer.

/// Same contract as differential_test's DeriveAll: all derivable ground
/// IDB facts by odometer enumeration.
StatusOr<std::set<std::string>> DeriveAll(Engine* engine,
                                          const ProgramFixture& fixture) {
  std::set<std::string> facts;
  const SymbolTable& symbols = fixture.rules.symbols();
  for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
    if (!fixture.rules.IsDefined(pred)) continue;
    int arity = symbols.PredicateArity(pred);
    std::vector<int> index(arity, 0);
    while (true) {
      Fact fact;
      fact.predicate = pred;
      for (int i = 0; i < arity; ++i) fact.args.push_back(index[i]);
      HYPO_ASSIGN_OR_RETURN(bool holds, engine->ProveFact(fact));
      if (holds) facts.insert(FactToString(fact, symbols));
      int pos = arity - 1;
      while (pos >= 0 &&
             ++index[pos] == symbols.num_consts()) {
        index[pos] = 0;
        --pos;
      }
      if (pos < 0 || arity == 0) break;
    }
  }
  return facts;
}

TEST(CrossQueryDifferential, BoardOnOffBitIdenticalAcrossEnginesAndThreads) {
  RandomProgramOptions options;
  int tested = 0;
  for (uint64_t seed = 500; seed < 508; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    EngineOptions engine_options;
    engine_options.max_states = 40'000;
    engine_options.max_steps = 3'000'000;

    // Ground truth: board-less tabled engine.
    TabledEngine reference_engine(&fixture.rules, &fixture.db,
                                  engine_options);
    auto reference = DeriveAll(&reference_engine, fixture);
    if (!reference.ok()) {
      ASSERT_EQ(reference.status().code(), StatusCode::kResourceExhausted)
          << reference.status();
      continue;
    }

    const bool stratifiable =
        CheckLinearlyStratifiable(fixture.rules).ok();
    // Each config runs TWO engines against one shared board — the second
    // is the board-warm path — plus restricted mode (every predicate
    // declared assumable turns on cone canonicalization without changing
    // the admissible programs).
    for (bool restricted : {false, true}) {
      if (restricted) {
        for (int p = 0; p < fixture.symbols->num_predicates(); ++p) {
          fixture.rules.DeclareAssumable(p);
        }
      }
      for (const char* kind :
           {"tabled", "stratified", "bottomup", "bottomup-t8"}) {
        if (std::string(kind) == "stratified" && !stratifiable) continue;
        MemoBoard board;
        board.BeginEpoch(1);
        auto cold = MakeEngine(kind, &fixture.rules, &fixture.db,
                               engine_options);
        cold->AttachMemoBoard(&board);
        auto warm = MakeEngine(kind, &fixture.rules, &fixture.db,
                               engine_options);
        warm->AttachMemoBoard(&board);
        for (Engine* engine : {cold.get(), warm.get()}) {
          auto derived = DeriveAll(engine, fixture);
          if (!derived.ok()) {
            ASSERT_EQ(derived.status().code(),
                      StatusCode::kResourceExhausted)
                << derived.status();
            continue;
          }
          EXPECT_EQ(*derived, *reference)
              << "seed " << seed << " kind " << kind << " restricted "
              << restricted << " board-warm " << (engine == warm.get())
              << " program:\n"
              << RuleBaseToString(fixture.rules);
        }
      }
    }
    ++tested;
  }
  EXPECT_GE(tested, 5) << "too many programs skipped";
}

// ---------------------------------------------------------------------------
// Server integration.

constexpr char kServerProgram[] = R"(
:- assumable edge/2.
reach(X, Y) <- edge(X, Y).
reach(X, Z) <- edge(X, Y), reach(Y, Z).
edge(a, b).
edge(b, c).
)";

TEST(CrossQueryServerTest, CountersSurfaceContextReuseAndRejections) {
  ServerOptions options;
  options.engine_name = "tabled";
  options.pool_size = 2;
  auto server = QueryServer::Create(kServerProgram, options);
  ASSERT_TRUE(server.ok()) << server.status();

  // The subgoal chain reach(a,q) -> reach(b,q) -> reach(c,q) consults the
  // board once per goal, all under the same cone-canonical overlay
  // {edge(c,q)} — every consult past the first re-interns the context.
  auto q = (*server)->Query("reach(a, q)[add: edge(c, q)]");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->proven);
  auto counters = (*server)->counters();
  EXPECT_GT(counters.contexts_reused, 0)
      << "the overlay context should have been re-interned";

  // Violations are rejected before an engine is leased and counted.
  auto rejected = (*server)->Query("reach(a, c)[add: reach(q, r)]");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*server)->counters().restricted_rejections, 1);
}

TEST(CrossQueryServerTest, CountersSurfaceCrossQueryHits) {
  // Engine leasing is LIFO, so the sibling engine only serves while the
  // primary is busy; a chain long enough to keep the all-pairs query busy
  // for a while makes two concurrent queries overlap (retried in the rare
  // case they don't). The sibling's first serve adopts the base model the
  // primary already published.
  std::string program =
      "reach(X, Y) <- edge(X, Y).\n"
      "reach(X, Z) <- edge(X, Y), reach(Y, Z).\n";
  for (int i = 0; i < 120; ++i) {
    program += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
               ").\n";
  }
  ServerOptions options;
  options.engine_name = "bottomup";
  options.pool_size = 2;
  auto server = QueryServer::Create(program, options);
  ASSERT_TRUE(server.ok()) << server.status();

  ASSERT_TRUE((*server)->Query("reach(n0, n1)").ok());  // Publish.
  for (int attempt = 0;
       attempt < 50 && (*server)->counters().cache_hits_cross_query == 0;
       ++attempt) {
    std::thread other([&] { (void)(*server)->Query("reach(X, Y)"); });
    auto q = (*server)->Query("reach(X, Y)");
    EXPECT_TRUE(q.ok()) << q.status();
    other.join();
  }
  EXPECT_GT((*server)->counters().cache_hits_cross_query, 0)
      << "sibling engine never adopted the published base model";
}

TEST(CrossQueryServerTest, CacheOffEscapeHatchChangesNoAnswers) {
  for (const char* engine : {"tabled", "stratified", "bottomup"}) {
    ServerOptions on;
    on.engine_name = engine;
    on.pool_size = 2;
    ServerOptions off = on;
    off.cross_query_cache = false;
    auto with_cache = QueryServer::Create(kServerProgram, on);
    auto without = QueryServer::Create(kServerProgram, off);
    ASSERT_TRUE(with_cache.ok() && without.ok());
    for (int round = 0; round < 2; ++round) {
      for (QueryServer* server : {with_cache->get(), without->get()}) {
        ASSERT_TRUE(server->Insert("edge(c, d" + std::to_string(round) +
                                   ")")
                        .ok());
      }
      for (const char* q : {"reach(a, X)", "reach(b, X)"}) {
        auto a = (*with_cache)->Query(q);
        auto b = (*without)->Query(q);
        ASSERT_TRUE(a.ok() && b.ok());
        std::sort(a->answers.begin(), a->answers.end());
        std::sort(b->answers.begin(), b->answers.end());
        EXPECT_EQ(a->answers, b->answers) << engine << " " << q;
      }
    }
    EXPECT_EQ((*without)->counters().cache_hits_cross_query, 0);
  }
}

TEST(CrossQueryServerTest, StatsVerbReportsTheNewCounters) {
  ServerOptions options;
  options.engine_name = "bottomup";
  options.pool_size = 2;
  auto server = QueryServer::Create(kServerProgram, options);
  ASSERT_TRUE(server.ok()) << server.status();
  std::istringstream in(
      "query reach(a, X)\n"
      "query reach(a, X)\n"
      "query reach(a, c)[add: reach(x, y)]\n"
      "stats\n");
  std::ostringstream out;
  EXPECT_EQ(RunSession(server->get(), in, out), 0);
  std::string text = out.str();
  EXPECT_NE(text.find("cache_hits_cross_query="), std::string::npos) << text;
  EXPECT_NE(text.find("contexts_reused="), std::string::npos) << text;
  EXPECT_NE(text.find("restricted_rejections=1"), std::string::npos) << text;
  EXPECT_NE(text.find("err FailedPrecondition"), std::string::npos) << text;
}

}  // namespace
}  // namespace hypo
