// Tests for the parallel fixpoint layer: the work-stealing ThreadPool,
// and the BottomUpEngine's determinism guarantee — answers, models, and
// the core derivation counters are identical at every thread count.

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "base/thread_pool.h"
#include "engine/bottom_up.h"
#include "parser/parser.h"
#include "workload/random_programs.h"

namespace hypo {
namespace {

// ---------------------------------------------------------------------
// ThreadPool.

TEST(ThreadPoolTest, RunsEveryTaskInBatch) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&ran]() -> Status {
      ran.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunBatch(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.tasks_run(), 64);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&ran]() -> Status {
      ++ran;
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunBatch(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPoolTest, ReturnsFirstErrorInTaskOrderNotCompletionOrder) {
  ThreadPool pool(4);
  // Every task runs; errors at indexes 2, 5, 7 — RunBatch must report
  // index 2's regardless of which thread finished first.
  for (int repeat = 0; repeat < 20; ++repeat) {
    std::atomic<int> ran{0};
    std::vector<std::function<Status()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&ran, i]() -> Status {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 2 || i == 5 || i == 7) {
          return Status::Internal("task " + std::to_string(i));
        }
        return Status::OK();
      });
    }
    Status status = pool.RunBatch(std::move(tasks));
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "task 2");
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPoolTest, NestedBatchesComplete) {
  ThreadPool pool(2);
  std::atomic<int> inner_ran{0};
  std::vector<std::function<Status()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &inner_ran]() -> Status {
      std::vector<std::function<Status()>> inner;
      for (int j = 0; j < 6; ++j) {
        inner.push_back([&inner_ran]() -> Status {
          inner_ran.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        });
      }
      return pool.RunBatch(std::move(inner));
    });
  }
  ASSERT_TRUE(pool.RunBatch(std::move(outer)).ok());
  EXPECT_EQ(inner_ran.load(), 24);
}

// ---------------------------------------------------------------------
// BottomUpEngine determinism across thread counts.

/// Collects, for every IDB predicate, the full set of derivable ground
/// facts by querying each ground atom over the domain (same oracle as the
/// engine differential test).
StatusOr<std::set<std::string>> DeriveAll(Engine* engine,
                                          const ProgramFixture& fixture) {
  std::set<std::string> facts;
  const SymbolTable& symbols = fixture.rules.symbols();
  std::vector<ConstId> domain;
  for (int c = 0; c < symbols.num_consts(); ++c) domain.push_back(c);

  for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
    if (!fixture.rules.IsDefined(pred)) continue;
    int arity = symbols.PredicateArity(pred);
    std::vector<int> index(arity, 0);
    while (true) {
      Fact fact;
      fact.predicate = pred;
      for (int i = 0; i < arity; ++i) fact.args.push_back(domain[index[i]]);
      HYPO_ASSIGN_OR_RETURN(bool holds, engine->ProveFact(fact));
      if (holds) facts.insert(FactToString(fact, symbols));
      int pos = arity - 1;
      while (pos >= 0 && ++index[pos] == static_cast<int>(domain.size())) {
        index[pos] = 0;
        --pos;
      }
      if (pos < 0 || arity == 0) break;
    }
  }
  return facts;
}

// Random programs with negation and hypothetical premises: at 8 threads
// the engine must produce exactly the answer set of the sequential
// engine, derive exactly the same number of facts, and materialize
// exactly the same set of hypothetical states. (Scheduling-dependent
// counters — join_probes, goals_expanded, memo_hits — are excluded:
// buffered rounds legitimately revisit instantiations the sequential
// engine resolved within a round.)
TEST(ParallelDifferentialTest, EightThreadsMatchesSequential) {
  RandomProgramOptions options;
  for (bool demand : {false, true}) {
    int tested = 0;
    for (uint64_t seed = 100; seed < 120; ++seed) {
      Random rng(seed);
      ProgramFixture fixture = MakeRandomProgram(options, &rng);

      EngineOptions sequential;
      sequential.max_states = 40'000;
      sequential.max_steps = 3'000'000;
      sequential.demand = demand;
      EngineOptions parallel = sequential;
      parallel.num_threads = 8;

      BottomUpEngine one(&fixture.rules, &fixture.db, sequential);
      auto reference = DeriveAll(&one, fixture);
      if (!reference.ok()) {
        ASSERT_EQ(reference.status().code(), StatusCode::kResourceExhausted)
            << reference.status();
        continue;
      }

      BottomUpEngine eight(&fixture.rules, &fixture.db, parallel);
      auto answers = DeriveAll(&eight, fixture);
      ASSERT_TRUE(answers.ok()) << answers.status();
      EXPECT_EQ(*answers, *reference)
          << "seed " << seed << " demand " << demand << " program:\n"
          << RuleBaseToString(fixture.rules);
      EXPECT_EQ(eight.stats().facts_derived, one.stats().facts_derived)
          << "seed " << seed << " demand " << demand;
      EXPECT_EQ(eight.stats().states_evaluated, one.stats().states_evaluated)
          << "seed " << seed << " demand " << demand;
      EXPECT_EQ(eight.stats().magic_facts, one.stats().magic_facts)
          << "seed " << seed << " demand " << demand;
      ++tested;
    }
    EXPECT_GE(tested, 15) << "too many programs aborted (demand=" << demand
                          << ")";
  }
}

// [del: ...] programs are TabledEngine-only; the parallel engine must
// reject them exactly like the sequential one (clean Unimplemented at
// Init, never a crash or a wrong model).
TEST(ParallelDifferentialTest, DeletionProgramsRejectedAtEveryThreadCount) {
  RandomProgramOptions options;
  options.hypothetical_probability = 0.6;
  options.deletion_probability = 0.6;
  int covered = 0;
  for (uint64_t seed = 500; seed < 510; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);
    if (!fixture.rules.HasDeletions()) continue;
    ++covered;
    for (int threads : {1, 8}) {
      EngineOptions opts;
      opts.num_threads = threads;
      BottomUpEngine engine(&fixture.rules, &fixture.db, opts);
      Status status = engine.Init();
      EXPECT_EQ(status.code(), StatusCode::kUnimplemented)
          << "seed " << seed << " threads " << threads << ": " << status;
    }
  }
  EXPECT_GE(covered, 3) << "the generator should produce [del:] programs";
}

// The models themselves must be bit-identical runs apart: FactsFor
// exposes insertion order, so this checks the sorted barrier merge makes
// derivation order (not just the answer set) thread-count independent.
TEST(ParallelDifferentialTest, RepeatRunsAreDeterministic) {
  RandomProgramOptions options;
  options.num_rules = 10;
  Random rng(7);
  ProgramFixture fixture = MakeRandomProgram(options, &rng);
  const SymbolTable& symbols = fixture.rules.symbols();

  EngineOptions parallel;
  parallel.num_threads = 4;

  std::vector<std::vector<Tuple>> first_run;
  for (int run = 0; run < 3; ++run) {
    BottomUpEngine engine(&fixture.rules, &fixture.db, parallel);
    std::vector<std::vector<Tuple>> models;
    for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
      if (!fixture.rules.IsDefined(pred)) continue;
      auto tuples = engine.FactsFor(pred);
      ASSERT_TRUE(tuples.ok()) << tuples.status();
      models.push_back(*tuples);
    }
    if (run == 0) {
      first_run = std::move(models);
    } else {
      EXPECT_EQ(models, first_run) << "run " << run << " diverged";
    }
  }
}

// A program wide enough to actually trigger sharded rounds: sanity-check
// the new counters and that the pool really engaged.
TEST(ParallelDifferentialTest, ParallelRoundsEngage) {
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = ParseRuleBase(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).",
      symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();
  Database db(symbols);
  for (int c = 0; c < 40; ++c) {
    for (int len = 0; len < 20; ++len) {
      ASSERT_TRUE(db.Insert("edge", {"n" + std::to_string(c) + "_" +
                                         std::to_string(len),
                                     "n" + std::to_string(c) + "_" +
                                         std::to_string(len + 1)})
                      .ok());
    }
  }
  EngineOptions options;
  options.num_threads = 4;
  BottomUpEngine engine(&*rules, &db, options);
  auto probe = ParseFact("t(n0_0, n0_20)", symbols.get());
  ASSERT_TRUE(probe.ok());
  auto result = engine.ProveFact(*probe);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(*result);
  const EngineStats& stats = engine.stats();
  EXPECT_GT(stats.parallel_rounds, 0);
  EXPECT_GE(stats.peak_workers, 1);
  EXPECT_EQ(stats.facts_derived, 40 * (20 * 21) / 2);  // All sub-chains.

  // The sequential engine derives the identical closure.
  BottomUpEngine sequential(&*rules, &db);
  auto same = sequential.ProveFact(*probe);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
  EXPECT_EQ(sequential.stats().facts_derived, stats.facts_derived);
  EXPECT_EQ(sequential.stats().parallel_rounds, 0);
}

// ---------------------------------------------------------------------
// Abort safety under parallel evaluation.

// A budget abort raised on one worker must cancel the whole pool cleanly
// and leave no half-computed model behind: subsequent queries either
// answer correctly or fail loudly with ResourceExhausted again.
TEST(ParallelAbortTest, AbortCancelsPoolAndMarksModelDirty) {
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = ParseRuleBase(
      "blow(X, Y, Z) <- d(X), d(Y), d(Z).\n"
      "easy(X) <- ebase(X).",
      symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();
  Database db(symbols);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.Insert("d", {"c" + std::to_string(i)}).ok());
  }
  ASSERT_TRUE(db.Insert("ebase", {"a"}).ok());
  auto easy = ParseFact("easy(a)", symbols.get());
  auto scan = ParseQuery("blow(X, Y, Z)", symbols.get());
  ASSERT_TRUE(easy.ok() && scan.ok());

  EngineOptions tight;
  tight.max_steps = 1'000;  // The blow rule alone derives 27'000 facts.
  tight.num_threads = 8;
  BottomUpEngine engine(&*rules, &db, tight);
  auto first = engine.Answers(*scan);
  ASSERT_FALSE(first.ok()) << "the budget should force an abort";
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);

  engine.ResetStats();
  auto second = engine.ProveFact(*easy);
  if (second.ok()) {
    EXPECT_TRUE(*second) << "an aborted parallel model was served as complete";
  } else {
    EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  }

  // With the budget lifted, a fresh parallel engine answers everything.
  EngineOptions roomy;
  roomy.num_threads = 8;
  BottomUpEngine fresh(&*rules, &db, roomy);
  auto full = fresh.Answers(*scan);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->size(), 27'000u);
  auto reference = fresh.ProveFact(*easy);
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(*reference);
}

// max_steps must bound parallel evaluation globally (the per-worker
// counters publish into one shared meter), not per worker: 8 workers may
// overshoot by at most one publish interval each, never by a factor.
TEST(ParallelAbortTest, StepBudgetIsGlobalAcrossWorkers) {
  auto symbols = std::make_shared<SymbolTable>();
  auto rules =
      ParseRuleBase("blow(X, Y, Z) <- d(X), d(Y), d(Z).", symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();
  Database db(symbols);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.Insert("d", {"c" + std::to_string(i)}).ok());
  }
  auto probe = ParseFact("blow(c0, c0, c0)", symbols.get());
  ASSERT_TRUE(probe.ok());

  EngineOptions tight;
  tight.max_steps = 2'000;
  tight.num_threads = 8;
  BottomUpEngine engine(&*rules, &db, tight);
  auto result = engine.ProveFact(*probe);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // 27'000 derivations dwarf the budget; the abort must fire well before
  // workers could each spend a private 2'000-step allowance times 8.
  EXPECT_LT(engine.stats().goals_expanded, 27'000);
}

}  // namespace
}  // namespace hypo
