#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/stratification.h"
#include "encode/counter.h"
#include "encode/generic_query.h"
#include "encode/order.h"
#include "engine/tabled.h"
#include "engine/stratified_prover.h"
#include "parser/parser.h"
#include "tm/machines_library.h"

namespace hypo {
namespace {

/// Loads an explicit order x1 < x2 < ... < xn as ofirst/onext/olast facts
/// plus d(xi) domain facts.
void LoadOrderFacts(int n, Database* db) {
  auto name = [](int i) { return "x" + std::to_string(i); };
  ASSERT_TRUE(db->Insert("ofirst", {name(1)}).ok());
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(db->Insert("onext", {name(i), name(i + 1)}).ok());
  }
  ASSERT_TRUE(db->Insert("olast", {name(n)}).ok());
  for (int i = 1; i <= n; ++i) {
    ASSERT_TRUE(db->Insert("d", {name(i)}).ok());
  }
}

TEST(CounterTest, EnumeratesAllTuplesInOrder) {
  for (int l : {1, 2, 3}) {
    for (int n : {2, 3}) {
      auto symbols = std::make_shared<SymbolTable>();
      RuleBase rules(symbols);
      CounterNames counter = CounterNames::ForArity(l);
      ASSERT_TRUE(AppendCounterRules(l, OrderNames(), counter, &rules).ok());
      Database db(symbols);
      LoadOrderFacts(n, &db);

      TabledEngine engine(&rules, &db);
      ASSERT_TRUE(engine.Init().ok());

      // Walk the counter from first via next; we must see n^l distinct
      // values and then stop exactly at last.
      auto query = ParseQuery(
          l == 1 ? "ctr1_first(A0)"
                 : (l == 2 ? "ctr2_first(A0, A1)"
                           : "ctr3_first(A0, A1, A2)"),
          symbols.get());
      ASSERT_TRUE(query.ok()) << query.status();
      auto first = engine.Answers(*query);
      ASSERT_TRUE(first.ok()) << first.status();
      ASSERT_EQ(first->size(), 1u) << "l=" << l << " n=" << n;

      int expected = 1;
      for (int i = 0; i < l; ++i) expected *= n;

      Tuple current = (*first)[0];
      std::set<Tuple> seen = {current};
      PredicateId next_pred = symbols->FindPredicate(counter.next);
      PredicateId last_pred = symbols->FindPredicate(counter.last);
      ASSERT_NE(next_pred, kInvalidPredicate);
      while (true) {
        // Find the successor of `current` by querying next(current, Ȳ).
        Query q;
        Atom atom;
        atom.predicate = next_pred;
        for (ConstId c : current) atom.args.push_back(Term::MakeConst(c));
        for (int i = 0; i < l; ++i) {
          atom.args.push_back(Term::MakeVar(i));
          q.var_names.push_back("V" + std::to_string(i));
        }
        q.premises.push_back(Premise::Positive(atom));
        auto successors = engine.Answers(q);
        ASSERT_TRUE(successors.ok()) << successors.status();
        if (successors->empty()) break;
        ASSERT_EQ(successors->size(), 1u) << "next must be a function";
        current = (*successors)[0];
        EXPECT_TRUE(seen.insert(current).second) << "cycle in counter";
      }
      EXPECT_EQ(static_cast<int>(seen.size()), expected)
          << "l=" << l << " n=" << n;
      // The final tuple is `last`.
      Fact last_fact;
      last_fact.predicate = last_pred;
      last_fact.args = current;
      auto is_last = engine.ProveFact(last_fact);
      ASSERT_TRUE(is_last.ok());
      EXPECT_TRUE(*is_last);
    }
  }
}

TEST(OrderAssertionTest, AssertsEveryOrder) {
  // With accept <- witness[add: marker], the order rules prove `yes` iff
  // the domain is non-empty (any order reaches accept).
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules(symbols);
  ASSERT_TRUE(
      AppendOrderAssertionRules(OrderNames(), "accept", "yes", &rules).ok());
  {
    auto extra = ParseRuleBase("accept <- witness.", symbols);
    ASSERT_TRUE(extra.ok());
    ASSERT_TRUE(rules.Merge(*extra).ok());
  }
  Database db(symbols);
  ASSERT_TRUE(db.Insert("d", {"a"}).ok());
  ASSERT_TRUE(db.Insert("d", {"b"}).ok());
  ASSERT_TRUE(db.Insert("witness", {}).ok());

  TabledEngine engine(&rules, &db);
  auto yes = ParseQuery("yes", symbols.get());
  ASSERT_TRUE(yes.ok());
  auto r = engine.ProveQuery(*yes);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
}

TEST(OrderAssertionTest, FailingAcceptMeansNo) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules(symbols);
  ASSERT_TRUE(
      AppendOrderAssertionRules(OrderNames(), "accept", "yes", &rules).ok());
  {
    auto extra = ParseRuleBase("accept <- witness.", symbols);
    ASSERT_TRUE(extra.ok());
    ASSERT_TRUE(rules.Merge(*extra).ok());
  }
  Database db(symbols);
  ASSERT_TRUE(db.Insert("d", {"a"}).ok());
  // No witness: every asserted order fails to reach accept.
  TabledEngine engine(&rules, &db);
  auto yes = ParseQuery("yes", symbols.get());
  ASSERT_TRUE(yes.ok());
  auto r = engine.ProveQuery(*yes);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(*r);
}

/// Direct parity of relation `a` in `db`.
bool DirectParityEven(const Database& db, const SymbolTable& symbols) {
  PredicateId a = symbols.FindPredicate("a");
  return a == kInvalidPredicate || db.CountFor(a) % 2 == 0;
}

class ParityPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(ParityPipelineTest, MatchesDirectEvaluation) {
  const int n = GetParam();  // Domain size; a(·) holds for every element.
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(/*accept_even=*/true)};
  spec.schema = {{"a", 1}};

  auto symbols = std::make_shared<SymbolTable>();
  auto rules = BuildYesNoQueryRules(spec, symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_TRUE(rules->IsConstantFree());
  ASSERT_TRUE(ValidateGenericQueryGeometry(spec, n).ok());

  Database db(symbols);
  for (int i = 1; i <= n; ++i) {
    ASSERT_TRUE(db.Insert("a", {"e" + std::to_string(i)}).ok());
  }

  TabledEngine engine(&*rules, &db);
  auto yes = ParseQuery("yes", symbols.get());
  ASSERT_TRUE(yes.ok());
  auto got = engine.ProveQuery(*yes);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, DirectParityEven(db, *symbols)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(DomainSizes, ParityPipelineTest,
                         ::testing::Values(2, 3, 4));

TEST(ParityPipelineTest, StratifiedProverAgrees) {
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(true)};
  spec.schema = {{"a", 1}};
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = BuildYesNoQueryRules(spec, symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();

  Database db(symbols);
  ASSERT_TRUE(db.Insert("a", {"e1"}).ok());
  ASSERT_TRUE(db.Insert("a", {"e2"}).ok());
  ASSERT_TRUE(db.Insert("a", {"e3"}).ok());

  StratifiedProver prover(&*rules, &db);
  ASSERT_TRUE(prover.Init().ok());
  EXPECT_EQ(prover.stratification().num_strata, 1)
      << "one machine, one stratum (Theorem 2's k)";
  auto yes = ParseQuery("yes", symbols.get());
  ASSERT_TRUE(yes.ok());
  auto got = prover.ProveQuery(*yes);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_FALSE(*got) << "three elements: odd";
}

TEST(GenericityTest, AnswerInvariantUnderRenaming) {
  // The consistency criterion (§6.2.3): renaming the database constants
  // must not change the answer. Rename e1..e3 -> z/q/m.
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(true)};
  spec.schema = {{"a", 1}};

  for (const std::vector<std::string>& names :
       {std::vector<std::string>{"e1", "e2"},
        std::vector<std::string>{"zebra", "quail"},
        std::vector<std::string>{"m", "k"}}) {
    auto symbols = std::make_shared<SymbolTable>();
    auto rules = BuildYesNoQueryRules(spec, symbols);
    ASSERT_TRUE(rules.ok());
    Database db(symbols);
    for (const std::string& name : names) {
      ASSERT_TRUE(db.Insert("a", {name}).ok());
    }
    TabledEngine engine(&*rules, &db);
    auto yes = ParseQuery("yes", symbols.get());
    ASSERT_TRUE(yes.ok());
    auto got = engine.ProveQuery(*yes);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(*got) << "two elements: even, regardless of names";
  }
}

TEST(Corollary2Test, OutputQueryViaAddedRelation) {
  // Corollary 2 over the parity machine: the tape now holds two bitmap
  // blocks, p0 (always a single '1': the candidate tuple) then a. The
  // machine counts every '1' up to the first blank, i.e. decides whether
  // 1 + |a| is even. The resulting output query is constant per database:
  //
  //   out(DB) = D when |a| is odd, ∅ when |a| is even.
  //
  // Counter arity 3 keeps a blank cell after the two blocks even on a
  // two-element domain.
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(true)};
  spec.schema = {{"a", 1}};
  spec.counter_arity = 3;
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = BuildOutputQueryRules(spec, /*output_arity=*/1, symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_TRUE(rules->IsConstantFree());

  Database db(symbols);
  ASSERT_TRUE(db.Insert("a", {"u"}).ok());
  ASSERT_TRUE(db.Insert("a", {"v"}).ok());
  ASSERT_TRUE(db.Insert("a", {"w"}).ok());

  TabledEngine engine(&*rules, &db);
  auto query = ParseQuery("out(X)", symbols.get());
  ASSERT_TRUE(query.ok());
  auto answers = engine.Answers(*query);
  ASSERT_TRUE(answers.ok()) << answers.status();
  std::set<std::string> got;
  for (const Tuple& t : *answers) got.insert(symbols->ConstName(t[0]));
  EXPECT_EQ(got, (std::set<std::string>{"u", "v", "w"}))
      << "|a| = 3 odd: every domain element is an answer";
}

TEST(Corollary2Test, EmptyAnswerWhenParityFlips) {
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(true)};
  spec.schema = {{"a", 1}};
  spec.counter_arity = 3;
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = BuildOutputQueryRules(spec, /*output_arity=*/1, symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();

  Database db(symbols);
  ASSERT_TRUE(db.Insert("a", {"u"}).ok());
  ASSERT_TRUE(db.Insert("a", {"v"}).ok());

  TabledEngine engine(&*rules, &db);
  auto query = ParseQuery("out(X)", symbols.get());
  ASSERT_TRUE(query.ok());
  auto answers = engine.Answers(*query);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_TRUE(answers->empty()) << "|a| = 2 even: 1 + |a| odd, no answers";
}

TEST(TwoStratumPipelineTest, CascadeThroughLemma2) {
  // A two-machine cascade through the full §6 pipeline: the top machine
  // copies the bitmap onto the oracle tape and asks the contains-one
  // machine about it. With a non-empty `a`, block 0 contains a '1', so
  // the oracle answers yes: the accept_on_yes variant proves `yes`, the
  // accept-on-no variant does not. The resulting rulebases have two
  // strata (Theorem 2's k = 2).
  for (bool accept_on_yes : {true, false}) {
    GenericQuerySpec spec;
    spec.machines = {MakeCopyAndAskMachine(accept_on_yes),
                     MakeContainsOneMachine()};
    spec.schema = {{"a", 1}};
    spec.counter_arity = 3;  // Room for copy + invoke + oracle scan.
    auto symbols = std::make_shared<SymbolTable>();
    auto rules = BuildYesNoQueryRules(spec, symbols);
    ASSERT_TRUE(rules.ok()) << rules.status();
    EXPECT_TRUE(rules->IsConstantFree());
    auto strat = ComputeLinearStratification(*rules);
    ASSERT_TRUE(strat.ok()) << strat.status();
    EXPECT_EQ(strat->num_strata, 2);

    Database db(symbols);
    ASSERT_TRUE(db.Insert("a", {"u"}).ok());
    ASSERT_TRUE(db.Insert("a", {"v"}).ok());
    TabledEngine engine(&*rules, &db);
    auto yes = ParseQuery("yes", symbols.get());
    ASSERT_TRUE(yes.ok());
    auto got = engine.ProveQuery(*yes);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, accept_on_yes)
        << "accept_on_yes=" << accept_on_yes;
  }
}

TEST(GeometryTest, Validation) {
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(true)};
  spec.schema = {{"a", 1}};
  EXPECT_TRUE(ValidateGenericQueryGeometry(spec, 2).ok());
  EXPECT_FALSE(ValidateGenericQueryGeometry(spec, 1).ok());
  spec.counter_arity = 1;  // Equal to max arity: rejected.
  EXPECT_FALSE(ValidateGenericQueryGeometry(spec, 3).ok());
}

}  // namespace
}  // namespace hypo
