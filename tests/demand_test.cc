// Coverage for EngineOptions::demand (the magic-set rewrite of
// analysis/demand_transform.h): demand-driven evaluation must return
// exactly the answers of the undirected fixpoint while deriving fewer
// facts on bound queries, and it must agree with the TabledEngine on
// random programs with negation and hypothetical premises.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "engine/bottom_up.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "workload/random_programs.h"

namespace hypo {
namespace {

EngineOptions DemandOptions(bool demand) {
  EngineOptions options;
  options.demand = demand;
  options.max_states = 40'000;
  options.max_steps = 3'000'000;
  return options;
}

class DemandTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = std::make_shared<SymbolTable>();

  RuleBase Parse(const char* text) {
    auto rules = ParseRuleBase(text, symbols_);
    EXPECT_TRUE(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  Query Q(const std::string& text) {
    auto query = ParseQuery(text, symbols_.get());
    EXPECT_TRUE(query.ok()) << query.status();
    return std::move(query).value();
  }

  /// A linear chain edge(v0, v1), ..., edge(v{n-1}, v{n}).
  Database ChainDb(int n) {
    Database db(symbols_);
    std::string text;
    for (int i = 0; i < n; ++i) {
      text += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
              ").\n";
    }
    EXPECT_TRUE(ParseFactsInto(text, &db).ok());
    return db;
  }
};

TEST_F(DemandTest, BoundReachabilityPrunesDerivations) {
  // t(v0, Y) demands only the source row of the transitive closure:
  // the magic rewrite must return the same 99 answers while deriving
  // O(n) facts instead of the full O(n^2) closure.
  RuleBase rules = Parse(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).");
  Database db = ChainDb(99);

  BottomUpEngine off(&rules, &db, DemandOptions(false));
  auto full = off.Answers(Q("t(v0, Y)"));
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->size(), 99u);

  BottomUpEngine on(&rules, &db, DemandOptions(true));
  auto demanded = on.Answers(Q("t(v0, Y)"));
  ASSERT_TRUE(demanded.ok()) << demanded.status();
  std::set<Tuple> want(full->begin(), full->end());
  std::set<Tuple> got(demanded->begin(), demanded->end());
  EXPECT_EQ(got, want);

  EXPECT_GT(on.stats().magic_facts, 0);
  EXPECT_GT(on.stats().demanded_predicates, 0);
  EXPECT_LT(on.stats().facts_derived * 4, off.stats().facts_derived)
      << "demand-on derived " << on.stats().facts_derived
      << " facts, demand-off " << off.stats().facts_derived;
}

TEST_F(DemandTest, ChildStateStopsAtDemandedStratum) {
  // Once a query has demanded `blocked` (stratum 1, above the negation),
  // a hypothetical query that only needs `t` must compute its child
  // state through t's stratum and skip blocked's.
  RuleBase rules = Parse(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).\n"
      "blocked(X, Y) <- t(X, Y), ~t(Y, X).");
  Database db = ChainDb(5);

  BottomUpEngine on(&rules, &db, DemandOptions(true));
  auto blocked = on.ProveQuery(Q("blocked(v0, v3)"));
  ASSERT_TRUE(blocked.ok()) << blocked.status();
  EXPECT_TRUE(*blocked);
  EXPECT_EQ(on.stats().strata_skipped, 0);

  // Adding edge(v5, v0) closes the chain into a cycle, so t(v2, v0)
  // becomes derivable in the child state — whose model only needs t.
  auto bridged = on.ProveQuery(Q("t(v2, v0)[add: edge(v5, v0)]"));
  ASSERT_TRUE(bridged.ok()) << bridged.status();
  EXPECT_TRUE(*bridged);
  EXPECT_GT(on.stats().strata_skipped, 0)
      << "the child state should never have run blocked's stratum";
  EXPECT_EQ(on.num_states(), 2);

  BottomUpEngine off(&rules, &db, DemandOptions(false));
  for (const char* query :
       {"blocked(v0, v3)", "t(v2, v0)[add: edge(v5, v0)]", "t(v2, v0)"}) {
    auto want = off.ProveQuery(Q(query));
    auto got = on.ProveQuery(Q(query));
    ASSERT_TRUE(want.ok() && got.ok()) << query;
    EXPECT_EQ(*got, *want) << query;
  }
}

TEST_F(DemandTest, NegatedPremisesGetFullDemand) {
  // A negated premise must see the complete relation it negates even
  // when the rest of the query is tightly bound (Tekle–Liu full demand).
  RuleBase rules = Parse(
      "r(X, Y) <- edge(X, Y).\n"
      "r(X, Y) <- r(X, Z), edge(Z, Y).\n"
      "gap(X, Y) <- node(X), node(Y), ~r(X, Y).");
  Database db = ChainDb(6);
  ASSERT_TRUE(
      ParseFactsInto("node(v0). node(v3). node(v6).", &db).ok());

  for (const char* query :
       {"gap(v3, v0)", "gap(v0, v3)", "gap(v6, v6)", "r(v0, v6)"}) {
    BottomUpEngine off(&rules, &db, DemandOptions(false));
    BottomUpEngine on(&rules, &db, DemandOptions(true));
    auto want = off.ProveQuery(Q(query));
    auto got = on.ProveQuery(Q(query));
    ASSERT_TRUE(want.ok() && got.ok()) << query;
    EXPECT_EQ(*got, *want) << query;
  }
}

TEST_F(DemandTest, HypotheticalPremisePropagatesDemand) {
  // A hypothetical premise materializes a child state; demand must seed
  // that child's magic relation with the queried ground atom so only
  // the needed slice of the hypothetical world is computed.
  RuleBase rules = Parse(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).");
  Database db = ChainDb(9);

  // The chain stops at v9; the query asks whether adding edge(v9, v20)
  // would connect v0 to v20 (the new constant widens the domain).
  for (bool demand : {false, true}) {
    BottomUpEngine engine(&rules, &db, DemandOptions(demand));
    auto bridged = engine.ProveQuery(Q("t(v0, v20)[add: edge(v9, v20)]"));
    ASSERT_TRUE(bridged.ok()) << bridged.status();
    EXPECT_TRUE(*bridged) << "demand=" << demand;
    auto unbridged = engine.ProveQuery(Q("t(v0, v20)"));
    ASSERT_TRUE(unbridged.ok());
    EXPECT_FALSE(*unbridged) << "demand=" << demand;
    EXPECT_EQ(engine.num_states(), 2) << "demand=" << demand;
    if (demand) EXPECT_GT(engine.stats().magic_facts, 0);
  }
}

TEST_F(DemandTest, ProfileWidensMonotonicallyAcrossQueries) {
  // Widening the demand profile (bound query, then a full scan, then
  // another bound query) must re-extend the memoized state rather than
  // losing or corrupting earlier answers.
  RuleBase rules = Parse(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).");
  Database db = ChainDb(30);

  BottomUpEngine off(&rules, &db, DemandOptions(false));
  BottomUpEngine on(&rules, &db, DemandOptions(true));

  auto first = on.Answers(Q("t(v0, Y)"));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->size(), 30u);

  // Full scan widens t to full demand; must match the undirected model.
  auto pred = symbols_->InternPredicate("t", 2);
  ASSERT_TRUE(pred.ok());
  auto scan_on = on.FactsFor(*pred);
  auto scan_off = off.FactsFor(*pred);
  ASSERT_TRUE(scan_on.ok() && scan_off.ok());
  std::set<Tuple> got(scan_on->begin(), scan_on->end());
  std::set<Tuple> want(scan_off->begin(), scan_off->end());
  EXPECT_EQ(got, want);
  EXPECT_EQ(want.size(), 30u * 31u / 2u);

  // A later bound query is served from the re-extended model.
  auto second = on.Answers(Q("t(v5, Y)"));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->size(), 25u);
}

/// The base-state model as a printable set, via full scans of every
/// defined predicate.
StatusOr<std::set<std::string>> ModelOf(BottomUpEngine* engine,
                                        const ProgramFixture& fixture) {
  std::set<std::string> facts;
  const SymbolTable& symbols = fixture.rules.symbols();
  for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
    if (!fixture.rules.IsDefined(pred)) continue;
    HYPO_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, engine->FactsFor(pred));
    for (const Tuple& t : tuples) {
      facts.insert(FactToString(Fact{pred, t}, symbols));
    }
  }
  return facts;
}

TEST(DemandFuzzTest, ThreeWayDifferentialOnRandomPrograms) {
  // Demand-on BottomUpEngine vs demand-off BottomUpEngine vs the
  // TabledEngine over random programs with negation and hypothetical
  // premises: ground probes and full scans must agree everywhere, and
  // demand must never materialize more states than eager evaluation.
  RandomProgramOptions options;
  options.negation_probability = 0.25;
  options.hypothetical_probability = 0.45;
  int tested = 0;
  for (uint64_t seed = 900; seed < 935; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);
    const SymbolTable& symbols = fixture.rules.symbols();

    BottomUpEngine off(&fixture.rules, &fixture.db, DemandOptions(false));
    BottomUpEngine on(&fixture.rules, &fixture.db, DemandOptions(true));
    TabledEngine tabled(&fixture.rules, &fixture.db, DemandOptions(false));

    // Phase 1: ground probes (partial, per-query demand). Probe every
    // ground atom over the first two constants of every IDB predicate.
    std::vector<ConstId> probes;
    for (int c = 0; c < symbols.num_consts() && c < 2; ++c) probes.push_back(c);
    bool skipped = false;
    for (int pred = 0; pred < symbols.num_predicates() && !skipped; ++pred) {
      if (!fixture.rules.IsDefined(pred)) continue;
      int arity = symbols.PredicateArity(pred);
      if (arity > 0 && probes.empty()) continue;
      std::vector<int> index(arity, 0);
      while (!skipped) {
        Fact fact;
        fact.predicate = pred;
        for (int i = 0; i < arity; ++i) fact.args.push_back(probes[index[i]]);
        auto want = off.ProveFact(fact);
        auto got = on.ProveFact(fact);
        auto ref = tabled.ProveFact(fact);
        if (!want.ok() || !got.ok() || !ref.ok()) {
          for (const auto* status : {&want, &got, &ref}) {
            if (!status->ok()) {
              ASSERT_EQ(status->status().code(),
                        StatusCode::kResourceExhausted)
                  << status->status();
            }
          }
          skipped = true;
          break;
        }
        EXPECT_EQ(*got, *want)
            << "demand diverged on " << FactToString(fact, symbols)
            << " at seed " << seed << ":\n"
            << RuleBaseToString(fixture.rules);
        EXPECT_EQ(*got, *ref)
            << "engines diverged on " << FactToString(fact, symbols)
            << " at seed " << seed << ":\n"
            << RuleBaseToString(fixture.rules);
        int pos = arity - 1;
        while (pos >= 0 &&
               ++index[pos] == static_cast<int>(probes.size())) {
          index[pos] = 0;
          --pos;
        }
        if (pos < 0 || arity == 0) break;
      }
    }
    if (skipped) continue;

    // Phase 2: full scans (widens the profile to full demand).
    auto eager = ModelOf(&off, fixture);
    auto demanded = ModelOf(&on, fixture);
    if (!eager.ok() || !demanded.ok()) {
      for (const auto* model : {&eager, &demanded}) {
        if (!model->ok()) {
          ASSERT_EQ(model->status().code(), StatusCode::kResourceExhausted)
              << model->status();
        }
      }
      continue;
    }
    EXPECT_EQ(*demanded, *eager)
        << "demand diverged from eager at seed " << seed << ":\n"
        << RuleBaseToString(fixture.rules);
    EXPECT_LE(on.num_states(), off.num_states())
        << "demand materialized more states at seed " << seed << ":\n"
        << RuleBaseToString(fixture.rules);
    ++tested;
  }
  EXPECT_GE(tested, 25) << "too many programs skipped";
}

}  // namespace
}  // namespace hypo
