// Differential coverage for EngineOptions::eval_strategy: the naive,
// rule-filtered, and tuple-level delta semi-naive fixpoints must compute
// identical perfect models on every program the BottomUpEngine accepts,
// and the delta rewrite must never fire more rule instantiations than
// naive re-evaluation does.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "engine/bottom_up.h"
#include "parser/parser.h"
#include "workload/random_programs.h"

namespace hypo {
namespace {

EngineOptions StrategyOptions(EvalStrategy strategy) {
  EngineOptions options;
  options.eval_strategy = strategy;
  options.max_states = 40'000;
  options.max_steps = 3'000'000;
  return options;
}

/// The base-state model as a printable set: every stored or derived fact
/// of every defined predicate.
StatusOr<std::set<std::string>> ModelOf(BottomUpEngine* engine,
                                        const ProgramFixture& fixture) {
  std::set<std::string> facts;
  const SymbolTable& symbols = fixture.rules.symbols();
  for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
    if (!fixture.rules.IsDefined(pred)) continue;
    HYPO_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, engine->FactsFor(pred));
    for (const Tuple& t : tuples) {
      facts.insert(FactToString(Fact{pred, t}, symbols));
    }
  }
  return facts;
}

constexpr EvalStrategy kAllStrategies[] = {
    EvalStrategy::kNaive, EvalStrategy::kRuleFilter,
    EvalStrategy::kDeltaSeminaive};

TEST(EvalStrategyTest, RandomProgramsAgreeAcrossStrategies) {
  // Negation + hypothetical premises, including nested hypotheticals
  // (IDB predicates queried under [add: ...]): all three strategies must
  // produce the same model, and delta must not out-fire naive.
  RandomProgramOptions options;
  options.negation_probability = 0.25;
  options.hypothetical_probability = 0.45;
  int tested = 0;
  for (uint64_t seed = 500; seed < 540; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    std::vector<std::set<std::string>> models;
    std::vector<int64_t> instantiations;
    bool skipped = false;
    for (EvalStrategy strategy : kAllStrategies) {
      BottomUpEngine engine(&fixture.rules, &fixture.db,
                            StrategyOptions(strategy));
      auto model = ModelOf(&engine, fixture);
      if (!model.ok()) {
        ASSERT_EQ(model.status().code(), StatusCode::kResourceExhausted)
            << model.status();
        skipped = true;
        break;
      }
      models.push_back(*std::move(model));
      instantiations.push_back(engine.stats().goals_expanded);
    }
    if (skipped) continue;
    EXPECT_EQ(models[0], models[1])
        << "rule-filter diverged from naive at seed " << seed << ":\n"
        << RuleBaseToString(fixture.rules);
    EXPECT_EQ(models[0], models[2])
        << "delta semi-naive diverged from naive at seed " << seed << ":\n"
        << RuleBaseToString(fixture.rules);
    EXPECT_LE(instantiations[2], instantiations[0])
        << "delta fired more rule instantiations than naive at seed "
        << seed << ":\n"
        << RuleBaseToString(fixture.rules);
    ++tested;
  }
  EXPECT_GE(tested, 30) << "too many programs skipped";
}

TEST(EvalStrategyTest, HypotheticalDenseProgramsAgree) {
  RandomProgramOptions options;
  options.num_rules = 6;
  options.hypothetical_probability = 0.6;
  options.negation_probability = 0.15;
  int tested = 0;
  for (uint64_t seed = 700; seed < 720; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);

    std::vector<std::set<std::string>> models;
    bool skipped = false;
    for (EvalStrategy strategy : kAllStrategies) {
      BottomUpEngine engine(&fixture.rules, &fixture.db,
                            StrategyOptions(strategy));
      auto model = ModelOf(&engine, fixture);
      if (!model.ok()) {
        ASSERT_EQ(model.status().code(), StatusCode::kResourceExhausted)
            << model.status();
        skipped = true;
        break;
      }
      models.push_back(*std::move(model));
    }
    if (skipped) continue;
    EXPECT_EQ(models[0], models[1]) << "seed " << seed << " program:\n"
                                    << RuleBaseToString(fixture.rules);
    EXPECT_EQ(models[0], models[2]) << "seed " << seed << " program:\n"
                                    << RuleBaseToString(fixture.rules);
    ++tested;
  }
  EXPECT_GE(tested, 12) << "too many hypothetical-dense programs skipped";
}

/// A degenerate same-stratum hypothetical (`base(a)` is already a DB
/// fact, so `p(X)[add: base(a)]` is a positive check on the in-progress
/// model): the delta rewrite cannot restrict such a rule and must fall
/// back to full re-evaluation whenever `p` grows. A missed fallback
/// loses trig(b)/trig(c).
TEST(EvalStrategyTest, DegenerateHypotheticalTracksGrowingModel) {
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = ParseRuleBase(
      "p(X) <- base(X).\n"
      "p(Y) <- p(X), step(X, Y).\n"
      "trig(X) <- p(X)[add: base(a)].\n",
      symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();
  Database db(symbols);
  ASSERT_TRUE(db.Insert("base", {"a"}).ok());
  ASSERT_TRUE(db.Insert("step", {"a", "b"}).ok());
  ASSERT_TRUE(db.Insert("step", {"b", "c"}).ok());

  for (EvalStrategy strategy : kAllStrategies) {
    BottomUpEngine engine(&*rules, &db, StrategyOptions(strategy));
    PredicateId trig = symbols->FindPredicate("trig");
    ASSERT_NE(trig, kInvalidPredicate);
    auto tuples = engine.FactsFor(trig);
    ASSERT_TRUE(tuples.ok()) << tuples.status();
    EXPECT_EQ(tuples->size(), 3u)
        << "strategy " << static_cast<int>(strategy)
        << " lost derivations from the degenerate hypothetical";
  }
}

/// Transitive closure over a path: the delta strategy must agree with
/// the baselines, reach the same fixpoint in comparable rounds, and do
/// asymptotically less join work (tracked by join_probes/delta_facts).
TEST(EvalStrategyTest, TransitiveClosureDeltaDoesLessWork) {
  const int n = 24;
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = ParseRuleBase(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).\n",
      symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();
  Database db(symbols);
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(db.Insert("edge", {"v" + std::to_string(i),
                                   "v" + std::to_string(i + 1)})
                    .ok());
  }
  PredicateId t = symbols->FindPredicate("t");
  ASSERT_NE(t, kInvalidPredicate);

  std::set<Tuple> expected;
  int64_t naive_probes = 0;
  int64_t naive_instantiations = 0;
  for (EvalStrategy strategy : kAllStrategies) {
    BottomUpEngine engine(&*rules, &db, StrategyOptions(strategy));
    auto tuples = engine.FactsFor(t);
    ASSERT_TRUE(tuples.ok()) << tuples.status();
    std::set<Tuple> got(tuples->begin(), tuples->end());
    // n*(n-1)/2 ordered reachable pairs on a path of n vertices.
    EXPECT_EQ(got.size(), static_cast<size_t>(n * (n - 1) / 2));
    if (strategy == EvalStrategy::kNaive) {
      expected = got;
      naive_probes = engine.stats().join_probes;
      naive_instantiations = engine.stats().goals_expanded;
      continue;
    }
    EXPECT_EQ(got, expected) << "strategy " << static_cast<int>(strategy);
    if (strategy == EvalStrategy::kDeltaSeminaive) {
      EXPECT_LT(engine.stats().join_probes, naive_probes / 4)
          << "delta semi-naive should cut join probes dramatically";
      EXPECT_LE(engine.stats().goals_expanded, naive_instantiations);
      EXPECT_GT(engine.stats().delta_facts, 0);
      EXPECT_GT(engine.stats().index_builds, 0);
    }
  }
}

}  // namespace
}  // namespace hypo
