#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "base/random.h"
#include "parser/parser.h"
#include "workload/random_programs.h"

namespace hypo {
namespace {

/// The parser must never crash: every input yields OK or a Status error.
TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Random rng(424242);
  const std::string alphabet =
      "abcXYZ_09 ()[],.~:<->%'\n\t";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    int len = static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < len; ++i) {
      input += alphabet[rng.Uniform(alphabet.size())];
    }
    auto symbols = std::make_shared<SymbolTable>();
    auto rules = ParseRuleBase(input, symbols);      // Must not crash.
    auto query = ParseQuery(input, symbols.get());   // Must not crash.
    (void)rules;
    (void)query;
  }
}

/// Structured token soup: grammar-adjacent fragments glued randomly.
TEST(ParserFuzzTest, TokenSoupNeverCrashes) {
  Random rng(31337);
  const char* pieces[] = {"p",    "(",  ")", "X",   ",", ".",  "<-",
                          "~",    "[",  "]", "add", ":", "del", "q(X)",
                          "a123", "'q'", "%c\n"};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    int len = static_cast<int>(rng.Uniform(25));
    for (int i = 0; i < len; ++i) {
      input += pieces[rng.Uniform(std::size(pieces))];
      if (rng.Bernoulli(0.3)) input += ' ';
    }
    auto symbols = std::make_shared<SymbolTable>();
    auto rules = ParseRuleBase(input, symbols);
    (void)rules;
  }
}

/// Printer/parser round trip: printing a random program and re-parsing it
/// yields a rulebase that prints identically.
TEST(ParserFuzzTest, PrinterParserRoundTrip) {
  RandomProgramOptions options;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Random rng(seed);
    ProgramFixture fixture = MakeRandomProgram(options, &rng);
    std::string printed = RuleBaseToString(fixture.rules);

    auto symbols = std::make_shared<SymbolTable>();
    auto reparsed = ParseRuleBase(printed, symbols);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status() << "\n"
        << printed;
    EXPECT_EQ(RuleBaseToString(*reparsed), printed) << "seed " << seed;
  }
}

/// Large but valid input parses without issue (no quadratic blowups).
TEST(ParserFuzzTest, LargeProgram) {
  std::string text;
  for (int i = 0; i < 5000; ++i) {
    text += "p" + std::to_string(i) + "(X) <- q" + std::to_string(i) +
            "(X), ~r" + std::to_string(i) + "(X).\n";
  }
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = ParseRuleBase(text, symbols);
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_EQ(rules->num_rules(), 5000);
}

}  // namespace
}  // namespace hypo
