#include <gtest/gtest.h>

#include "analysis/report.h"
#include "queries/hamiltonian.h"
#include "queries/ladder.h"
#include "queries/parity.h"

namespace hypo {
namespace {

TEST(ReportTest, ParityReportShape) {
  ProgramFixture fixture = MakeParityFixture(2);
  std::string report = ExplainStratification(fixture.rules);
  EXPECT_NE(report.find("1 stratum"), std::string::npos) << report;
  EXPECT_NE(report.find("Σ_1"), std::string::npos);
  EXPECT_NE(report.find("even <- select(X), odd[add: b(X)]."),
            std::string::npos);
  EXPECT_NE(report.find("select/1: Δ_1"), std::string::npos);
  EXPECT_NE(report.find("even/0: Σ_1"), std::string::npos);
  EXPECT_NE(report.find("a/1: extensional"), std::string::npos);
}

TEST(ReportTest, LadderReportsAllStrata) {
  ProgramFixture fixture = MakeStrataLadderFixture(3);
  std::string report = ExplainStratification(fixture.rules);
  EXPECT_NE(report.find("3 strata"), std::string::npos) << report;
  EXPECT_NE(report.find("stratum 3"), std::string::npos);
  EXPECT_NE(report.find("a3/0: Σ_3"), std::string::npos);
}

TEST(ReportTest, NonStratifiableExplains) {
  ProgramFixture fixture = MakeExample10Fixture();
  std::string report = ExplainStratification(fixture.rules);
  EXPECT_NE(report.find("not linearly stratifiable"), std::string::npos)
      << report;
  EXPECT_NE(report.find("non-linear"), std::string::npos);
  EXPECT_NE(report.find("TabledEngine"), std::string::npos);
}

TEST(ReportTest, HamiltonianDeltaSubstrata) {
  ProgramFixture fixture =
      MakeHamiltonianFixture(MakeCycleGraph(3), /*with_no_rule=*/true);
  std::string report = ExplainStratification(fixture.rules);
  EXPECT_NE(report.find("2 strata"), std::string::npos) << report;
  EXPECT_NE(report.find("no <- ~yes."), std::string::npos);
}

}  // namespace
}  // namespace hypo
