#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "encode/tm_encoder.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "tm/machines_library.h"
#include "tm/simulator.h"

namespace hypo {
namespace {

/// Generates a random valid non-deterministic machine. With
/// `with_oracle`, the oracle protocol states exist and every transition
/// writes the oracle tape (as ValidateMachine requires).
MachineSpec RandomMachine(Random* rng, bool with_oracle) {
  MachineSpec m;
  m.name = "random";
  m.num_symbols = 3;
  int base_states = 3 + static_cast<int>(rng->Uniform(3));  // 3..5
  m.num_states = base_states + (with_oracle ? 3 : 0);
  m.initial_state = 0;
  m.accepting_states = {base_states - 1};
  if (with_oracle) {
    m.query_state = base_states;
    m.yes_state = base_states + 1;
    m.no_state = base_states + 2;
  }
  // For each (state, symbol), 0..2 random transitions. Transitions may
  // originate from q_y/q_n but never from q?.
  std::vector<int> sources;
  for (int q = 0; q < base_states; ++q) sources.push_back(q);
  if (with_oracle) {
    sources.push_back(m.yes_state);
    sources.push_back(m.no_state);
  }
  for (int q : sources) {
    for (int sym = 0; sym < m.num_symbols; ++sym) {
      int count = static_cast<int>(rng->Uniform(3));
      for (int t = 0; t < count; ++t) {
        Transition tr;
        tr.state = q;
        tr.read = sym;
        // Target any state, including q? when the machine has an oracle.
        tr.next_state = static_cast<int>(rng->Uniform(m.num_states));
        tr.write = static_cast<int>(rng->Uniform(m.num_symbols));
        tr.move_work = static_cast<int>(rng->Uniform(3)) - 1;
        if (with_oracle) {
          tr.oracle_write = static_cast<int>(rng->Uniform(m.num_symbols));
          tr.move_oracle = static_cast<int>(rng->Uniform(3)) - 1;
        }
        m.transitions.push_back(tr);
      }
    }
  }
  return m;
}

std::vector<int> RandomInput(Random* rng, int max_len) {
  std::vector<int> input;
  int len = static_cast<int>(rng->Uniform(max_len + 1));
  for (int i = 0; i < len; ++i) {
    input.push_back(static_cast<int>(rng->Uniform(3)));
  }
  return input;
}

TEST(TmRandomDifferentialTest, SingleMachinesMatchSimulator) {
  const int kN = 4;  // Counter size: keeps each case sub-millisecond.
  int agreements = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Random rng(seed);
    MachineSpec machine = RandomMachine(&rng, /*with_oracle=*/false);
    ASSERT_TRUE(ValidateMachine(machine).ok()) << "seed " << seed;
    std::vector<int> input = RandomInput(&rng, kN);

    CascadeSimulator sim({machine}, kN, kN);
    auto expected = sim.Accepts(input);
    ASSERT_TRUE(expected.ok()) << "seed " << seed << ": "
                               << expected.status();

    auto encoding = EncodeCascade({machine}, input, kN);
    ASSERT_TRUE(encoding.ok()) << encoding.status();
    StratifiedProver prover(&encoding->program.rules,
                            &encoding->program.db);
    ASSERT_TRUE(prover.Init().ok()) << "seed " << seed;
    Fact accept;
    accept.predicate = encoding->program.symbols->FindPredicate("accept");
    auto got = prover.ProveFact(accept);
    ASSERT_TRUE(got.ok()) << "seed " << seed << ": " << got.status();
    EXPECT_EQ(*got, *expected) << "seed " << seed;
    if (*got == *expected) ++agreements;
  }
  EXPECT_EQ(agreements, 60);
}

TEST(TmRandomDifferentialTest, OracleCascadesMatchSimulator) {
  const int kN = 4;
  for (uint64_t seed = 100; seed < 130; ++seed) {
    Random rng(seed);
    MachineSpec top = RandomMachine(&rng, /*with_oracle=*/true);
    MachineSpec bottom = RandomMachine(&rng, /*with_oracle=*/false);
    ASSERT_TRUE(ValidateCascade({top, bottom}).ok()) << "seed " << seed;
    std::vector<int> input = RandomInput(&rng, kN);

    CascadeSimulator sim({top, bottom}, kN, kN);
    auto expected = sim.Accepts(input);
    ASSERT_TRUE(expected.ok()) << expected.status();

    auto encoding = EncodeCascade({top, bottom}, input, kN);
    ASSERT_TRUE(encoding.ok()) << encoding.status();
    // Use the general engine here so the test also exercises a second
    // evaluation path over the same rulebases.
    TabledEngine engine(&encoding->program.rules, &encoding->program.db);
    Fact accept;
    accept.predicate = encoding->program.symbols->FindPredicate("accept");
    auto got = engine.ProveFact(accept);
    ASSERT_TRUE(got.ok()) << "seed " << seed << ": " << got.status();
    EXPECT_EQ(*got, *expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hypo
