#include <memory>

#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "analysis/scc.h"
#include "analysis/stratification.h"
#include "parser/parser.h"
#include "queries/hamiltonian.h"
#include "queries/ladder.h"
#include "queries/parity.h"

namespace hypo {
namespace {

RuleBase Parse(const char* text, std::shared_ptr<SymbolTable> symbols) {
  auto rules = ParseRuleBase(text, std::move(symbols));
  EXPECT_TRUE(rules.ok()) << rules.status();
  return std::move(rules).value();
}

TEST(DependencyGraphTest, EdgeKinds) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("p <- q, ~r, s[add: t].", symbols);
  DependencyGraph graph = DependencyGraph::Build(rules);
  ASSERT_EQ(graph.edges().size(), 3u);
  EXPECT_EQ(graph.edges()[0].kind, EdgeKind::kPositive);
  EXPECT_EQ(graph.edges()[1].kind, EdgeKind::kNegative);
  EXPECT_EQ(graph.edges()[2].kind, EdgeKind::kHypothetical);
  // The added atom t contributes no edge (Definition 4).
  PredicateId t = symbols->FindPredicate("t");
  for (const DepEdge& e : graph.edges()) EXPECT_NE(e.premise, t);
}

TEST(SccTest, CycleDetection) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("p <- q. q <- p. r <- p. s <- s. t <- p.", symbols);
  DependencyGraph graph = DependencyGraph::Build(rules);
  SccResult sccs = ComputeSccs(graph);
  PredicateId p = symbols->FindPredicate("p");
  PredicateId q = symbols->FindPredicate("q");
  PredicateId r = symbols->FindPredicate("r");
  PredicateId s = symbols->FindPredicate("s");
  EXPECT_TRUE(sccs.MutuallyRecursive(p, q));
  EXPECT_FALSE(sccs.MutuallyRecursive(p, r));
  EXPECT_TRUE(sccs.MutuallyRecursive(s, s)) << "self-loop is recursive";
  EXPECT_FALSE(sccs.MutuallyRecursive(r, r)) << "no self-loop";
}

TEST(SccTest, TopologicalNumbering) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("p <- q. q <- r.", symbols);
  DependencyGraph graph = DependencyGraph::Build(rules);
  SccResult sccs = ComputeSccs(graph);
  // Every edge must run from a component to one with an id <= its own.
  for (const DepEdge& e : graph.edges()) {
    EXPECT_LE(sccs.component_of[e.premise], sccs.component_of[e.head]);
  }
}

TEST(NegationStrataTest, StratifiesChains) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("p <- ~q. q <- ~r. r <- base.", symbols);
  auto strata = ComputeNegationStrata(rules);
  ASSERT_TRUE(strata.ok()) << strata.status();
  PredicateId p = symbols->FindPredicate("p");
  PredicateId q = symbols->FindPredicate("q");
  PredicateId r = symbols->FindPredicate("r");
  EXPECT_EQ(strata->stratum_of_pred[r], 0);
  EXPECT_EQ(strata->stratum_of_pred[q], 1);
  EXPECT_EQ(strata->stratum_of_pred[p], 2);
  EXPECT_EQ(strata->num_strata, 3);
}

TEST(NegationStrataTest, RejectsRecursionThroughNegation) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("p <- ~q. q <- ~p.", symbols);
  EXPECT_FALSE(ComputeNegationStrata(rules).ok());
}

TEST(NegationStrataTest, HypotheticalCountsAsPositive) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("p <- p[add: c]. q <- ~p.", symbols);
  auto strata = ComputeNegationStrata(rules);
  ASSERT_TRUE(strata.ok()) << strata.status();
  EXPECT_EQ(strata->stratum_of_pred[symbols->FindPredicate("p")], 0);
  EXPECT_EQ(strata->stratum_of_pred[symbols->FindPredicate("q")], 1);
}

TEST(LinearityTest, CountsRecursiveOccurrences) {
  auto symbols = std::make_shared<SymbolTable>();
  // First rule: non-linear (two recursive premises). Second: linear.
  RuleBase rules = Parse("p <- p[add: c], p[add: d]. q <- q[add: c].",
                         symbols);
  DependencyGraph graph = DependencyGraph::Build(rules);
  SccResult sccs = ComputeSccs(graph);
  LinearityInfo info = AnalyzeLinearity(rules, graph, sccs);
  EXPECT_EQ(info.recursive_occurrences[0], 2);
  EXPECT_FALSE(info.rule_is_linear[0]);
  EXPECT_TRUE(info.rule_is_linear[1]);
  int cp = sccs.component_of[symbols->FindPredicate("p")];
  EXPECT_TRUE(info.scc_has_nonlinear_recursion[cp]);
  EXPECT_TRUE(info.scc_has_hypothetical_recursion[cp]);
}

TEST(LinearityTest, IndirectNonLinearityDetected) {
  // The paper's n+1 rules that "may appear linear but taken together imply
  // rule (2)": a <- b, d1, d2.  d1 <- a[add: c1].  d2 <- a[add: c2].
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("a <- b, d1, d2. d1 <- a[add: c1]. d2 <- a[add: c2].",
                         symbols);
  EXPECT_FALSE(CheckLinearlyStratifiable(rules).ok());
}

TEST(LinearStratificationTest, LadderHasKStrata) {
  for (int k = 1; k <= 5; ++k) {
    ProgramFixture fixture = MakeStrataLadderFixture(k);
    auto strat = ComputeLinearStratification(fixture.rules);
    ASSERT_TRUE(strat.ok()) << strat.status();
    EXPECT_EQ(strat->num_strata, k) << "ladder k=" << k;
    for (int i = 1; i <= k; ++i) {
      PredicateId a =
          fixture.symbols->FindPredicate("a" + std::to_string(i));
      EXPECT_EQ(strat->StratumOf(a), i);
      EXPECT_TRUE(strat->InSigma(a));
    }
  }
}

TEST(LinearStratificationTest, ParityIsOneStratum) {
  ProgramFixture fixture = MakeParityFixture(3);
  auto strat = ComputeLinearStratification(fixture.rules);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_EQ(strat->num_strata, 1);
  PredicateId even = fixture.symbols->FindPredicate("even");
  PredicateId odd = fixture.symbols->FindPredicate("odd");
  PredicateId select = fixture.symbols->FindPredicate("select");
  EXPECT_TRUE(strat->InSigma(even));
  EXPECT_TRUE(strat->InSigma(odd));
  EXPECT_FALSE(strat->InSigma(select));
  EXPECT_EQ(strat->partition_of_pred[select], 1);  // Δ1.
  EXPECT_EQ(strat->partition_of_pred[even], 2);    // Σ1.
}

TEST(LinearStratificationTest, HamiltonianWithNoRuleIsTwoStrata) {
  ProgramFixture ham =
      MakeHamiltonianFixture(MakeCycleGraph(3), /*with_no_rule=*/false);
  auto strat = ComputeLinearStratification(ham.rules);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_EQ(strat->num_strata, 1);

  ProgramFixture ham_no =
      MakeHamiltonianFixture(MakeCycleGraph(3), /*with_no_rule=*/true);
  auto strat_no = ComputeLinearStratification(ham_no.rules);
  ASSERT_TRUE(strat_no.ok()) << strat_no.status();
  EXPECT_EQ(strat_no->num_strata, 2)
      << "example 8's single extra rule adds a stratum";
}

TEST(LinearStratificationTest, Example10Rejected) {
  ProgramFixture fixture = MakeExample10Fixture();
  Status s = CheckLinearlyStratifiable(fixture.rules);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("non-linear"), std::string::npos);
}

TEST(LinearStratificationTest, NegativeRecursionRejected) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("p <- ~q. q <- ~p.", symbols);
  Status s = CheckLinearlyStratifiable(rules);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("negation"), std::string::npos);
}

TEST(LinearStratificationTest, PureHornNonLinearAllowed) {
  // Non-linear recursion without hypotheses stays in Δ (ordinary Datalog).
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules =
      Parse("t(X, Y) <- e(X, Y). t(X, Y) <- t(X, Z), t(Z, Y).", symbols);
  auto strat = ComputeLinearStratification(rules);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_EQ(strat->num_strata, 1);
  PredicateId t = symbols->FindPredicate("t");
  EXPECT_FALSE(strat->InSigma(t));
  EXPECT_EQ(strat->partition_of_pred[t], 1);
}

TEST(LinearStratificationTest, DeltaSubstrataOrdered) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse("p <- ~q. q <- ~r. r <- base.", symbols);
  auto strat = ComputeLinearStratification(rules);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_EQ(strat->num_strata, 1);
  ASSERT_EQ(strat->delta_substrata.size(), 1u);
  EXPECT_EQ(strat->delta_substrata[0].size(), 3u)
      << "three negation substrata inside Δ1";
}

TEST(LinearStratificationTest, FrameAxiomShapeAccepted) {
  // The §5.1.4 frame-axiom shape: positive recursion plus negation of a
  // same-segment predicate, all inside one Δ.
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules = Parse(
      "cell(J, T2) <- next(T, T2), cell(J, T), ~active(J, T).\n"
      "active(J, T) <- control(J, T).",
      symbols);
  auto strat = ComputeLinearStratification(rules);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_EQ(strat->num_strata, 1);
  EXPECT_FALSE(strat->InSigma(symbols->FindPredicate("cell")));
}

TEST(LinearStratificationTest, EmptyRulebase) {
  auto symbols = std::make_shared<SymbolTable>();
  RuleBase rules(symbols);
  auto strat = ComputeLinearStratification(rules);
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->num_strata, 0);
}

}  // namespace
}  // namespace hypo
