// Regression tests for error recovery after a resource-limit abort.
//
// Historically an abort (kResourceExhausted mid-proof) could poison an
// engine's memo tables: the top-down engines leaked `kInProgress` goal
// entries that later queries pruned on (silently returning false for
// provable facts), and the bottom-up engine served a half-computed
// state model from its memo. After an abort the engine must either
// answer correctly or fail loudly again — never return a wrong answer.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"

namespace hypo {
namespace {

class AbortRecoveryTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = std::make_shared<SymbolTable>();

  RuleBase Parse(const char* text) {
    auto rules = ParseRuleBase(text, symbols_);
    EXPECT_TRUE(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  /// Retries `fact` on `engine` (resetting the saturated counters after
  /// each abort) until the engine produces an answer, and returns it.
  /// The memoized failures accumulated by each attempt make the next
  /// attempt strictly cheaper, so this terminates; a stale kInProgress
  /// entry instead short-circuits the retry into a wrong `false`.
  bool RetryUntilAnswered(Engine* engine, const Fact& fact) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      auto result = engine->ProveFact(fact);
      if (result.ok()) return *result;
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << result.status();
      engine->ResetStats();
    }
    ADD_FAILURE() << engine->name()
                  << " made no progress across retries after aborts";
    return false;
  }
};

// goal(c) is provable through the cheap `easy` rule, but the engine
// first explores the failing `probe` search over 200 g-edges, which
// needs several aborted attempts' worth of memoized failures to
// complete. Each abort leaves goal(c) on the proof stack; if its
// kInProgress memo entry leaks, the very next attempt prunes on the
// stale entry and returns false for a provable fact. (The repeated
// variable in probe(Y, Y, Y) keeps the planner from reordering the
// defined premise ahead of the edge scan.)
TEST_F(AbortRecoveryTest, TabledEngineRecoversAfterAbort) {
  RuleBase rules = Parse(
      "goal(X) <- g(X, Y), probe(Y, Y, Y).\n"
      "goal(X) <- easy(X).\n"
      "probe(A, B, C) <- w1(A), w2(B).");
  Database db(symbols_);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Insert("g", {"c", "l" + std::to_string(i)}).ok());
  }
  ASSERT_TRUE(db.Insert("easy", {"c"}).ok());
  auto goal = ParseFact("goal(c)", symbols_.get());
  ASSERT_TRUE(goal.ok());

  EngineOptions tight;
  tight.max_steps = 60;
  TabledEngine engine(&rules, &db, tight);

  auto first = engine.ProveFact(*goal);
  ASSERT_FALSE(first.ok()) << "the budget should force an abort";
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
  engine.ResetStats();
  EXPECT_TRUE(RetryUntilAnswered(&engine, *goal))
      << "a provable fact turned false after an abort (stale memo)";

  EngineOptions roomy;
  TabledEngine fresh(&rules, &db, roomy);
  auto reference = fresh.ProveFact(*goal);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_TRUE(*reference);
}

// Same shape for the StratifiedProver, with the recursion routed
// through a hypothetical premise so `s` and `goal` land in a Sigma
// partition and are proved by the goal-memoized ProveSigma (the Delta
// predicates are computed bottom-up and have no goal memo to poison).
TEST_F(AbortRecoveryTest, StratifiedProverRecoversAfterAbort) {
  RuleBase rules = Parse(
      "goal(X) <- s(X).\n"
      "goal(X) <- easy(X).\n"
      "s(X) <- e(X, Y), s(Y)[add: h(X)].");
  Database db(symbols_);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Insert("e", {"c", "l" + std::to_string(i)}).ok());
  }
  ASSERT_TRUE(db.Insert("easy", {"c"}).ok());
  auto goal = ParseFact("goal(c)", symbols_.get());
  ASSERT_TRUE(goal.ok());

  EngineOptions tight;
  tight.max_steps = 60;
  StratifiedProver engine(&rules, &db, tight);
  ASSERT_TRUE(engine.Init().ok());

  auto first = engine.ProveFact(*goal);
  ASSERT_FALSE(first.ok()) << "the budget should force an abort";
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
  engine.ResetStats();
  EXPECT_TRUE(RetryUntilAnswered(&engine, *goal))
      << "a provable fact turned false after an abort (stale memo)";

  EngineOptions roomy;
  StratifiedProver fresh(&rules, &db, roomy);
  ASSERT_TRUE(fresh.Init().ok());
  auto reference = fresh.ProveFact(*goal);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_TRUE(*reference);
}

// The bottom-up engine memoizes whole state models. An abort mid-model
// used to leave the half-computed model in the memo, and later queries
// read it as complete: easy(a) is derived by a rule the aborted run
// never reached, so the poisoned engine answered `false`. Now the state
// is marked dirty and recomputed (failing loudly again if the budget
// still does not suffice) — it must never answer `false`.
TEST_F(AbortRecoveryTest, BottomUpEngineDoesNotServeAbortedModels) {
  RuleBase rules = Parse(
      "blow(X, Y, Z) <- d(X), d(Y), d(Z).\n"
      "easy(X) <- ebase(X).");
  Database db(symbols_);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.Insert("d", {"c" + std::to_string(i)}).ok());
  }
  ASSERT_TRUE(db.Insert("ebase", {"a"}).ok());
  auto easy = ParseFact("easy(a)", symbols_.get());
  ASSERT_TRUE(easy.ok());
  auto scan = ParseQuery("blow(X, Y, Z)", symbols_.get());
  ASSERT_TRUE(scan.ok());

  EngineOptions tight;
  tight.max_steps = 1'000;  // The blow rule alone derives 27'000 facts.
  for (bool demand : {false, true}) {
    EngineOptions options = tight;
    options.demand = demand;
    BottomUpEngine engine(&rules, &db, options);
    // The open scan demands the full blow relation in both modes, so
    // the budget aborts the model mid-stratum either way.
    auto first = engine.Answers(*scan);
    ASSERT_FALSE(first.ok()) << "the budget should force an abort";
    EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
    engine.ResetStats();
    auto second = engine.ProveFact(*easy);
    if (second.ok()) {
      EXPECT_TRUE(*second)
          << "an aborted model was served as complete (demand=" << demand
          << ")";
    } else {
      EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
    }
  }

  BottomUpEngine fresh(&rules, &db);
  auto reference = fresh.ProveFact(*easy);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_TRUE(*reference);
}

// The narrow demand-mode poisoning window: a state whose model already
// completed gets a new magic seed (a query for a different source), the
// seed-triggered re-extension aborts, and the next identical query
// finds the seed already inserted — nothing else flags the model as
// incomplete, so without the dirty marker the engine silently returns
// the partial answer set.
TEST_F(AbortRecoveryTest, BottomUpSeedRerunAbortMarksStateDirty) {
  RuleBase rules = Parse(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).");
  Database db(symbols_);
  // s0 reaches a single node; s1 heads a 2000-node chain whose closure
  // needs one fixpoint round per node, far past the step budget — so an
  // abort leaves a genuinely truncated answer set in the model.
  ASSERT_TRUE(db.Insert("edge", {"s0", "a0"}).ok());
  ASSERT_TRUE(db.Insert("edge", {"s1", "b0"}).ok());
  for (int i = 0; i + 1 < 2000; ++i) {
    ASSERT_TRUE(
        db.Insert("edge", {"b" + std::to_string(i), "b" + std::to_string(i + 1)})
            .ok());
  }
  auto cheap = ParseQuery("t(s0, X)", symbols_.get());
  auto expensive = ParseQuery("t(s1, X)", symbols_.get());
  ASSERT_TRUE(cheap.ok() && expensive.ok());

  EngineOptions options;
  options.demand = true;
  options.max_steps = 1'500;
  BottomUpEngine engine(&rules, &db, options);

  auto first = engine.Answers(*cheap);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->size(), 1u);

  auto second = engine.Answers(*expensive);
  ASSERT_FALSE(second.ok()) << "the budget should abort the re-extension";
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  engine.ResetStats();
  auto third = engine.Answers(*expensive);
  if (third.ok()) {
    EXPECT_EQ(third->size(), 2000u)
        << "a partially re-extended model was served as complete";
  } else {
    EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  }

  // The cheap query's answers must also survive the aborted extension.
  engine.ResetStats();
  auto cheap_again = engine.Answers(*cheap);
  if (cheap_again.ok()) EXPECT_EQ(cheap_again->size(), 1u);
}

// A rule whose head variables appear under negation only is evaluated
// by enumerating the domain; those iterations used to be unmetered, so
// max_steps never triggered no matter how large the cross product. The
// enumeration counter must trip the limit and abort cleanly.
TEST_F(AbortRecoveryTest, BottomUpEnumerationIsMetered) {
  RuleBase rules = Parse("pair(X, Y) <- ~q(X, Y).");
  Database db(symbols_);
  // q holds over the full 120x120 grid, so `pair` derives nothing and
  // the rule's work is pure domain enumeration (14'400 iterations).
  for (int i = 0; i < 120; ++i) {
    for (int j = 0; j < 120; ++j) {
      ASSERT_TRUE(
          db.Insert("q", {"c" + std::to_string(i), "c" + std::to_string(j)})
              .ok());
    }
  }
  auto probe = ParseFact("pair(c0, c1)", symbols_.get());
  ASSERT_TRUE(probe.ok());

  EngineOptions tight;
  tight.max_steps = 5'000;
  BottomUpEngine engine(&rules, &db, tight);
  auto result = engine.ProveFact(*probe);
  ASSERT_FALSE(result.ok())
      << "domain enumeration ran unmetered past max_steps";
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(engine.stats().enumerations, tight.max_steps);

  EngineOptions roomy;
  BottomUpEngine fresh(&rules, &db, roomy);
  auto reference = fresh.ProveFact(*probe);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_FALSE(*reference);
  EXPECT_GT(fresh.stats().enumerations, 14'000);
}

// Governance trips (deadline, cancellation) must behave exactly like the
// max_steps aborts above: fail loudly with the typed code, then answer
// correctly on the *same* instance once the limit is relaxed or the
// token reset — never serve a stale or partial result.
TEST_F(AbortRecoveryTest, EnginesRecoverAfterDeadlineAndCancel) {
  RuleBase rules = Parse(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).");
  Database db(symbols_);
  for (int i = 0; i + 1 < 400; ++i) {
    ASSERT_TRUE(db.Insert("edge", {"n" + std::to_string(i),
                                   "n" + std::to_string(i + 1)})
                    .ok());
  }
  auto goal = ParseFact("t(n0, n399)", symbols_.get());
  ASSERT_TRUE(goal.ok());

  auto run = [&](Engine* engine, EngineOptions* options) {
    // An already-expired deadline trips at the very first guard check.
    options->timeout_micros = 1;
    auto tripped = engine->ProveFact(*goal);
    ASSERT_FALSE(tripped.ok()) << engine->name();
    EXPECT_EQ(tripped.status().code(), StatusCode::kDeadlineExceeded)
        << engine->name() << ": " << tripped.status();

    options->timeout_micros = 0;
    options->cancel = std::make_shared<CancellationToken>();
    options->cancel->Cancel();  // Pre-cancelled.
    auto cancelled = engine->ProveFact(*goal);
    ASSERT_FALSE(cancelled.ok()) << engine->name();
    EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled)
        << engine->name() << ": " << cancelled.status();

    options->cancel->Reset();
    engine->ResetStats();
    auto answer = engine->ProveFact(*goal);
    ASSERT_TRUE(answer.ok()) << engine->name() << ": " << answer.status();
    EXPECT_TRUE(*answer) << engine->name()
                         << " lost a provable fact after governance trips";
  };

  {
    TabledEngine engine(&rules, &db);
    run(&engine, engine.mutable_options());
  }
  {
    StratifiedProver engine(&rules, &db);
    ASSERT_TRUE(engine.Init().ok());
    run(&engine, engine.mutable_options());
  }
  for (int threads : {1, 8}) {
    EngineOptions options;
    options.num_threads = threads;
    BottomUpEngine engine(&rules, &db, options);
    run(&engine, engine.mutable_options());
  }
}

}  // namespace
}  // namespace hypo
