#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "engine/proof.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "queries/parity.h"
#include "queries/university.h"

namespace hypo {
namespace {

class ProofTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = std::make_shared<SymbolTable>();

  RuleBase Parse(const char* text) {
    auto rules = ParseRuleBase(text, symbols_);
    EXPECT_TRUE(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  Fact F(const std::string& text, SymbolTable* symbols) {
    auto fact = ParseFact(text, symbols);
    EXPECT_TRUE(fact.ok()) << fact.status();
    return std::move(fact).value();
  }
};

TEST_F(ProofTest, DatabaseFactIsALeaf) {
  RuleBase rules = Parse("p <- q.");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("q.", &db).ok());
  TabledEngine engine(&rules, &db);
  auto proof = engine.ExplainFact(F("q", symbols_.get()));
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_EQ(proof->kind, ProofNode::Kind::kDatabaseFact);
  EXPECT_TRUE(proof->children.empty());
}

TEST_F(ProofTest, RuleChainIsNested) {
  RuleBase rules = Parse("p <- q.\nq <- r.");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("r.", &db).ok());
  TabledEngine engine(&rules, &db);
  auto proof = engine.ExplainFact(F("p", symbols_.get()));
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_EQ(proof->kind, ProofNode::Kind::kRule);
  ASSERT_EQ(proof->children.size(), 1u);
  EXPECT_EQ(proof->children[0].kind, ProofNode::Kind::kRule);
  ASSERT_EQ(proof->children[0].children.size(), 1u);
  EXPECT_EQ(proof->children[0].children[0].kind,
            ProofNode::Kind::kDatabaseFact);
}

TEST_F(ProofTest, UnprovableFactIsNotFound) {
  RuleBase rules = Parse("p <- q.");
  Database db(symbols_);
  TabledEngine engine(&rules, &db);
  auto proof = engine.ExplainFact(F("p", symbols_.get()));
  ASSERT_FALSE(proof.ok());
  EXPECT_EQ(proof.status().code(), StatusCode::kNotFound);
}

TEST_F(ProofTest, AvoidsCircularJustification) {
  // p <- p would justify p by itself; the reconstruction must pick the
  // non-circular rule even though p <- p is listed first.
  RuleBase rules = Parse("p <- p.\np <- base.");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("base.", &db).ok());
  TabledEngine engine(&rules, &db);
  auto proof = engine.ExplainFact(F("p", symbols_.get()));
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_EQ(proof->rule_index, 1) << "must use p <- base";
}

TEST_F(ProofTest, HypotheticalContextRecorded) {
  ProgramFixture f = MakeUniversityFixture(/*include_example3=*/false);
  TabledEngine engine(&f.rules, &f.db);
  // Explain: one_away-style derived fact through a hypothetical premise.
  auto extra = ParseRuleBase(
      "one_away(S) <- ~grad(S), grad(S)[add: take(S, cs452)].",
      f.symbols);
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(f.rules.Merge(*extra).ok());
  TabledEngine engine2(&f.rules, &f.db);
  auto proof = engine2.ExplainFact(F("one_away(tony)", f.symbols.get()));
  ASSERT_TRUE(proof.ok()) << proof.status();
  std::string rendered = ProofToString(*proof, *f.symbols);
  EXPECT_NE(rendered.find("one_away(tony)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("+take(tony, cs452)"), std::string::npos)
      << "the hypothetical addition must be shown:\n" << rendered;
  EXPECT_NE(rendered.find("[hypothetical addition]"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("~grad(tony)"), std::string::npos)
      << "the NAF premise must be shown:\n" << rendered;
}

TEST_F(ProofTest, ParityProofWalksTheCopyChain) {
  ProgramFixture f = MakeParityFixture(2);
  TabledEngine engine(&f.rules, &f.db);
  Fact even;
  even.predicate = f.symbols->FindPredicate("even");
  auto proof = engine.ExplainFact(even);
  ASSERT_TRUE(proof.ok()) << proof.status();
  std::string rendered = ProofToString(*proof, *f.symbols);
  // even -> odd -> even, with two b-additions along the way.
  EXPECT_NE(rendered.find("odd"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("+b("), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("no instance provable"), std::string::npos)
      << "the final ~select(X) step:\n" << rendered;
}

TEST_F(ProofTest, DeletionRecordedInProof) {
  RuleBase rules = Parse(
      "alive <- person, ~dead.\nrevival <- alive[del: dead].");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("person. dead.", &db).ok());
  TabledEngine engine(&rules, &db);
  auto proof = engine.ExplainFact(F("revival", symbols_.get()));
  ASSERT_TRUE(proof.ok()) << proof.status();
  std::string rendered = ProofToString(*proof, *symbols_);
  EXPECT_NE(rendered.find("-dead"), std::string::npos)
      << "the hypothetical deletion must be shown:\n" << rendered;
}

}  // namespace
}  // namespace hypo
