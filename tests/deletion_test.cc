#include <memory>

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"

namespace hypo {
namespace {

/// Hypothetical deletion ([4]'s extension): `A[del: C]` — infer A if
/// removing C from the database allows the inference of A.
class DeletionTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = std::make_shared<SymbolTable>();

  RuleBase Parse(const char* text) {
    auto rules = ParseRuleBase(text, symbols_);
    EXPECT_TRUE(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  bool Prove(TabledEngine* engine, const std::string& text) {
    auto query = ParseQuery(text, symbols_.get());
    EXPECT_TRUE(query.ok()) << query.status();
    auto r = engine->ProveQuery(*query);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status();
    return r.ok() && *r;
  }
};

TEST_F(DeletionTest, ParserAcceptsDelGroups) {
  RuleBase rules = Parse(
      "p(X) <- q(X)[del: r(X)].\n"
      "s(X) <- q(X)[add: t(X)][del: r(X), u(X)].\n");
  EXPECT_TRUE(rules.HasDeletions());
  EXPECT_EQ(rules.rule(0).premises[0].deletions.size(), 1u);
  EXPECT_EQ(rules.rule(1).premises[0].additions.size(), 1u);
  EXPECT_EQ(rules.rule(1).premises[0].deletions.size(), 2u);
  // Round trip through the printer.
  EXPECT_EQ(RuleToString(rules.rule(1), *symbols_),
            "s(X) <- q(X)[add: t(X)][del: r(X), u(X)].");
}

TEST_F(DeletionTest, BadBracketKeywordRejected) {
  auto rules = ParseRuleBase("p <- q[remove: r].", symbols_);
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("'add' or 'del'"),
            std::string::npos);
}

TEST_F(DeletionTest, BasicCounterfactual) {
  // "Would the site still be reachable if this link were cut?"
  RuleBase rules = Parse(
      "reach(X, Y) <- link(X, Y).\n"
      "reach(X, Y) <- link(X, Z), reach(Z, Y).\n"
      "fragile <- reach(a, c), vulnerable.\n"
      "vulnerable <- ~robust.\n"
      "robust <- reach(a, c)[del: link(a, b)].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("link(a, b). link(b, c).", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(Prove(&engine, "reach(a, c)"));
  EXPECT_FALSE(Prove(&engine, "robust"))
      << "cutting a->b disconnects a from c";
  EXPECT_TRUE(Prove(&engine, "fragile"));

  // Add a bypass link: now robust.
  Database db2(symbols_);
  ASSERT_TRUE(
      ParseFactsInto("link(a, b). link(b, c). link(a, c).", &db2).ok());
  TabledEngine engine2(&rules, &db2);
  ASSERT_TRUE(engine2.Init().ok());
  EXPECT_TRUE(Prove(&engine2, "robust"));
  EXPECT_FALSE(Prove(&engine2, "fragile"));
}

TEST_F(DeletionTest, DeletionIsNotPersistent) {
  RuleBase rules = Parse("gone <- ~p, q.\nprobe <- gone[del: p].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("p. q.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(Prove(&engine, "probe"));
  // The deletion was retracted: p is still there afterwards.
  EXPECT_TRUE(Prove(&engine, "p"));
  EXPECT_FALSE(Prove(&engine, "gone"));
}

TEST_F(DeletionTest, DeleteThenAddRestoresState) {
  // del-then-add of the same fact inside one premise: present (additions
  // apply after deletions).
  RuleBase rules = Parse("w <- p[del: p][add: p].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("p.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(Prove(&engine, "w"));
}

TEST_F(DeletionTest, AddThenDeleteViaNestedPremises) {
  // Nested premises: add r then delete it again; the inner state equals
  // the original, and the memoized result must reflect that.
  RuleBase rules = Parse(
      "inner <- ~r, base.\n"
      "middle <- inner[del: r].\n"
      "outer <- middle[add: r].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("base.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  // outer: add r, then middle deletes r -> inner sees ~r over base: true.
  EXPECT_TRUE(Prove(&engine, "outer"));
}

TEST_F(DeletionTest, DeletingAbsentFactIsNoOp) {
  RuleBase rules = Parse("w <- base[del: ghost].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("base.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(Prove(&engine, "w"));
}

TEST_F(DeletionTest, DeletionWithVariables) {
  // Delete one tuple chosen by a variable binding.
  RuleBase rules = Parse(
      "still_has(X) <- item(Y), other(X, Y), item(X)[del: item(Y)].\n"
      "other(X, Y) <- item(X), item(Y), ~same(X, X, Y).\n"
      "same(X, X, X) <- item(X).\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("item(a). item(b).", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  // Deleting the *other* item leaves item(X): true for both a and b.
  EXPECT_TRUE(Prove(&engine, "still_has(a)"));
  EXPECT_TRUE(Prove(&engine, "still_has(b)"));
}

TEST_F(DeletionTest, ScansRespectMasking) {
  // A negated *scan* (∄ form) and a positive scan must both skip masked
  // tuples within the hypothetical context.
  RuleBase rules = Parse(
      "empty_q <- ~q(X).\n"
      "probe <- empty_q[del: q(a)].\n"
      "someq <- q(X).\n"
      "probe2 <- someq[del: q(a)].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("q(a).", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_FALSE(Prove(&engine, "empty_q"));
  EXPECT_TRUE(Prove(&engine, "probe")) << "after deleting q(a), ~q(X) holds";
  EXPECT_TRUE(Prove(&engine, "someq"));
  EXPECT_FALSE(Prove(&engine, "probe2"))
      << "positive scan must not see the masked tuple";
}

TEST_F(DeletionTest, DeleteDerivedFactHasNoEffect) {
  // Deletion removes *database entries*; derived conclusions are not
  // entries, so deleting one does not block its re-derivation.
  RuleBase rules = Parse(
      "derived <- base.\n"
      "probe <- derived[del: derived].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("base.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(Prove(&engine, "probe"))
      << "derived is re-derivable from base regardless of the deletion";
}

TEST_F(DeletionTest, OscillationTerminates) {
  // add/del cycles return to previously seen states; tabling must prune.
  RuleBase rules = Parse(
      "p <- q[del: m].\n"
      "q <- p[add: m].\n"
      "p <- base, m.\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("base. m.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(Prove(&engine, "p")) << "p <- base, m directly";
  // q: add m (no-op, present) then p at same state -> true.
  EXPECT_TRUE(Prove(&engine, "q"));
}

TEST_F(DeletionTest, NonMonotoneUnderDeletion) {
  RuleBase rules = Parse("alive <- person, ~dead.\n"
                         "ghost_story <- alive[add: dead].\n"
                         "revival <- alive[del: dead].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("person. dead.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_FALSE(Prove(&engine, "alive"));
  EXPECT_FALSE(Prove(&engine, "ghost_story"));
  EXPECT_TRUE(Prove(&engine, "revival"));
}

TEST_F(DeletionTest, OtherEnginesRejectDeletions) {
  RuleBase rules = Parse("p <- q[del: r].\n");
  Database db(symbols_);
  {
    BottomUpEngine engine(&rules, &db);
    Status s = engine.Init();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
  }
  {
    StratifiedProver prover(&rules, &db);
    Status s = prover.Init();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
  }
}

TEST_F(DeletionTest, QueryLevelDeletionRejectedByOtherEngines) {
  // Even with a deletion-free rulebase, a *query* with [del: ...] must be
  // rejected by the engines that cannot honor it.
  RuleBase rules = Parse("p <- q.\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("q.", &db).ok());
  auto query = ParseQuery("p[del: q]", symbols_.get());
  ASSERT_TRUE(query.ok());
  {
    BottomUpEngine engine(&rules, &db);
    ASSERT_TRUE(engine.Init().ok());
    auto r = engine.ProveQuery(*query);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
  }
  {
    TabledEngine engine(&rules, &db);
    ASSERT_TRUE(engine.Init().ok());
    auto r = engine.ProveQuery(*query);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(*r) << "without q, p is underivable";
  }
}

TEST_F(DeletionTest, StateCanonicalizationMergesEquivalentPaths) {
  // Two different routes to the same visible state (delete base fact vs.
  // never seeing it) must share one memo entry — observable through
  // engine stats, but at minimum the answers must agree.
  RuleBase rules = Parse(
      "holds <- ~x, base.\n"
      "via_del <- holds[del: x].\n"
      "via_del_twice <- probe2[del: x].\n"
      "probe2 <- holds[del: x].\n");
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("base. x.", &db).ok());
  TabledEngine engine(&rules, &db);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(Prove(&engine, "via_del"));
  EXPECT_TRUE(Prove(&engine, "via_del_twice"))
      << "deleting an already-deleted fact is the same state";
}

}  // namespace
}  // namespace hypo
