
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependency_graph.cc" "src/analysis/CMakeFiles/hypo_analysis.dir/dependency_graph.cc.o" "gcc" "src/analysis/CMakeFiles/hypo_analysis.dir/dependency_graph.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/hypo_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/hypo_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/scc.cc" "src/analysis/CMakeFiles/hypo_analysis.dir/scc.cc.o" "gcc" "src/analysis/CMakeFiles/hypo_analysis.dir/scc.cc.o.d"
  "/root/repo/src/analysis/stratification.cc" "src/analysis/CMakeFiles/hypo_analysis.dir/stratification.cc.o" "gcc" "src/analysis/CMakeFiles/hypo_analysis.dir/stratification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/hypo_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hypo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
