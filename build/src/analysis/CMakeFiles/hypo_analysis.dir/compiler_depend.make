# Empty compiler generated dependencies file for hypo_analysis.
# This may be replaced when dependencies are built.
