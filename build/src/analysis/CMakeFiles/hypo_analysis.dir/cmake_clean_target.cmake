file(REMOVE_RECURSE
  "libhypo_analysis.a"
)
