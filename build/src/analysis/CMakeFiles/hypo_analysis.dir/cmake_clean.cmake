file(REMOVE_RECURSE
  "CMakeFiles/hypo_analysis.dir/dependency_graph.cc.o"
  "CMakeFiles/hypo_analysis.dir/dependency_graph.cc.o.d"
  "CMakeFiles/hypo_analysis.dir/report.cc.o"
  "CMakeFiles/hypo_analysis.dir/report.cc.o.d"
  "CMakeFiles/hypo_analysis.dir/scc.cc.o"
  "CMakeFiles/hypo_analysis.dir/scc.cc.o.d"
  "CMakeFiles/hypo_analysis.dir/stratification.cc.o"
  "CMakeFiles/hypo_analysis.dir/stratification.cc.o.d"
  "libhypo_analysis.a"
  "libhypo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
