file(REMOVE_RECURSE
  "CMakeFiles/hypo_workload.dir/random_programs.cc.o"
  "CMakeFiles/hypo_workload.dir/random_programs.cc.o.d"
  "libhypo_workload.a"
  "libhypo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
