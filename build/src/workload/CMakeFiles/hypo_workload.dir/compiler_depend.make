# Empty compiler generated dependencies file for hypo_workload.
# This may be replaced when dependencies are built.
