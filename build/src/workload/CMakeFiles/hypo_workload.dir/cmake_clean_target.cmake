file(REMOVE_RECURSE
  "libhypo_workload.a"
)
