file(REMOVE_RECURSE
  "CMakeFiles/hypo_db.dir/database.cc.o"
  "CMakeFiles/hypo_db.dir/database.cc.o.d"
  "CMakeFiles/hypo_db.dir/overlay.cc.o"
  "CMakeFiles/hypo_db.dir/overlay.cc.o.d"
  "libhypo_db.a"
  "libhypo_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
