
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/hypo_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/hypo_db.dir/database.cc.o.d"
  "/root/repo/src/db/overlay.cc" "src/db/CMakeFiles/hypo_db.dir/overlay.cc.o" "gcc" "src/db/CMakeFiles/hypo_db.dir/overlay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/hypo_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hypo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
