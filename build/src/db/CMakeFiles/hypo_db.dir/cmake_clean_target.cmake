file(REMOVE_RECURSE
  "libhypo_db.a"
)
