# Empty compiler generated dependencies file for hypo_db.
# This may be replaced when dependencies are built.
