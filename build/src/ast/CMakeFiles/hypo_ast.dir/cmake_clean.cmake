file(REMOVE_RECURSE
  "CMakeFiles/hypo_ast.dir/printer.cc.o"
  "CMakeFiles/hypo_ast.dir/printer.cc.o.d"
  "CMakeFiles/hypo_ast.dir/rule_builder.cc.o"
  "CMakeFiles/hypo_ast.dir/rule_builder.cc.o.d"
  "CMakeFiles/hypo_ast.dir/rulebase.cc.o"
  "CMakeFiles/hypo_ast.dir/rulebase.cc.o.d"
  "CMakeFiles/hypo_ast.dir/symbol_table.cc.o"
  "CMakeFiles/hypo_ast.dir/symbol_table.cc.o.d"
  "libhypo_ast.a"
  "libhypo_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
