# Empty dependencies file for hypo_ast.
# This may be replaced when dependencies are built.
