file(REMOVE_RECURSE
  "libhypo_ast.a"
)
