
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/printer.cc" "src/ast/CMakeFiles/hypo_ast.dir/printer.cc.o" "gcc" "src/ast/CMakeFiles/hypo_ast.dir/printer.cc.o.d"
  "/root/repo/src/ast/rule_builder.cc" "src/ast/CMakeFiles/hypo_ast.dir/rule_builder.cc.o" "gcc" "src/ast/CMakeFiles/hypo_ast.dir/rule_builder.cc.o.d"
  "/root/repo/src/ast/rulebase.cc" "src/ast/CMakeFiles/hypo_ast.dir/rulebase.cc.o" "gcc" "src/ast/CMakeFiles/hypo_ast.dir/rulebase.cc.o.d"
  "/root/repo/src/ast/symbol_table.cc" "src/ast/CMakeFiles/hypo_ast.dir/symbol_table.cc.o" "gcc" "src/ast/CMakeFiles/hypo_ast.dir/symbol_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hypo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
