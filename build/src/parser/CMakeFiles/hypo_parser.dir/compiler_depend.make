# Empty compiler generated dependencies file for hypo_parser.
# This may be replaced when dependencies are built.
