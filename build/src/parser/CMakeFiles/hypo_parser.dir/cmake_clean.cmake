file(REMOVE_RECURSE
  "CMakeFiles/hypo_parser.dir/lexer.cc.o"
  "CMakeFiles/hypo_parser.dir/lexer.cc.o.d"
  "CMakeFiles/hypo_parser.dir/parser.cc.o"
  "CMakeFiles/hypo_parser.dir/parser.cc.o.d"
  "libhypo_parser.a"
  "libhypo_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
