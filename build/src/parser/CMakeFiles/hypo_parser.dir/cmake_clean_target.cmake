file(REMOVE_RECURSE
  "libhypo_parser.a"
)
