# Empty compiler generated dependencies file for hypo_encode.
# This may be replaced when dependencies are built.
