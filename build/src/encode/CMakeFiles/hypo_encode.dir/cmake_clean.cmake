file(REMOVE_RECURSE
  "CMakeFiles/hypo_encode.dir/bitmap.cc.o"
  "CMakeFiles/hypo_encode.dir/bitmap.cc.o.d"
  "CMakeFiles/hypo_encode.dir/counter.cc.o"
  "CMakeFiles/hypo_encode.dir/counter.cc.o.d"
  "CMakeFiles/hypo_encode.dir/generic_query.cc.o"
  "CMakeFiles/hypo_encode.dir/generic_query.cc.o.d"
  "CMakeFiles/hypo_encode.dir/order.cc.o"
  "CMakeFiles/hypo_encode.dir/order.cc.o.d"
  "CMakeFiles/hypo_encode.dir/tm_encoder.cc.o"
  "CMakeFiles/hypo_encode.dir/tm_encoder.cc.o.d"
  "libhypo_encode.a"
  "libhypo_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
