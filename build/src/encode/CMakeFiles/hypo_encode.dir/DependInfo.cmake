
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encode/bitmap.cc" "src/encode/CMakeFiles/hypo_encode.dir/bitmap.cc.o" "gcc" "src/encode/CMakeFiles/hypo_encode.dir/bitmap.cc.o.d"
  "/root/repo/src/encode/counter.cc" "src/encode/CMakeFiles/hypo_encode.dir/counter.cc.o" "gcc" "src/encode/CMakeFiles/hypo_encode.dir/counter.cc.o.d"
  "/root/repo/src/encode/generic_query.cc" "src/encode/CMakeFiles/hypo_encode.dir/generic_query.cc.o" "gcc" "src/encode/CMakeFiles/hypo_encode.dir/generic_query.cc.o.d"
  "/root/repo/src/encode/order.cc" "src/encode/CMakeFiles/hypo_encode.dir/order.cc.o" "gcc" "src/encode/CMakeFiles/hypo_encode.dir/order.cc.o.d"
  "/root/repo/src/encode/tm_encoder.cc" "src/encode/CMakeFiles/hypo_encode.dir/tm_encoder.cc.o" "gcc" "src/encode/CMakeFiles/hypo_encode.dir/tm_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tm/CMakeFiles/hypo_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/hypo_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hypo_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/hypo_db.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hypo_base.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/hypo_parser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
