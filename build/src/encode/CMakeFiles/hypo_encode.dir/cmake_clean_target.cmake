file(REMOVE_RECURSE
  "libhypo_encode.a"
)
