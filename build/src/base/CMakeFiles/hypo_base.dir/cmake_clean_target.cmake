file(REMOVE_RECURSE
  "libhypo_base.a"
)
