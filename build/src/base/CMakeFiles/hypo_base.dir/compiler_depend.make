# Empty compiler generated dependencies file for hypo_base.
# This may be replaced when dependencies are built.
