file(REMOVE_RECURSE
  "CMakeFiles/hypo_base.dir/status.cc.o"
  "CMakeFiles/hypo_base.dir/status.cc.o.d"
  "CMakeFiles/hypo_base.dir/string_util.cc.o"
  "CMakeFiles/hypo_base.dir/string_util.cc.o.d"
  "libhypo_base.a"
  "libhypo_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
