file(REMOVE_RECURSE
  "libhypo_queries.a"
)
