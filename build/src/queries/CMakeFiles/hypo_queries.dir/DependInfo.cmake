
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queries/chains.cc" "src/queries/CMakeFiles/hypo_queries.dir/chains.cc.o" "gcc" "src/queries/CMakeFiles/hypo_queries.dir/chains.cc.o.d"
  "/root/repo/src/queries/graphs.cc" "src/queries/CMakeFiles/hypo_queries.dir/graphs.cc.o" "gcc" "src/queries/CMakeFiles/hypo_queries.dir/graphs.cc.o.d"
  "/root/repo/src/queries/hamiltonian.cc" "src/queries/CMakeFiles/hypo_queries.dir/hamiltonian.cc.o" "gcc" "src/queries/CMakeFiles/hypo_queries.dir/hamiltonian.cc.o.d"
  "/root/repo/src/queries/ladder.cc" "src/queries/CMakeFiles/hypo_queries.dir/ladder.cc.o" "gcc" "src/queries/CMakeFiles/hypo_queries.dir/ladder.cc.o.d"
  "/root/repo/src/queries/nationality.cc" "src/queries/CMakeFiles/hypo_queries.dir/nationality.cc.o" "gcc" "src/queries/CMakeFiles/hypo_queries.dir/nationality.cc.o.d"
  "/root/repo/src/queries/parity.cc" "src/queries/CMakeFiles/hypo_queries.dir/parity.cc.o" "gcc" "src/queries/CMakeFiles/hypo_queries.dir/parity.cc.o.d"
  "/root/repo/src/queries/university.cc" "src/queries/CMakeFiles/hypo_queries.dir/university.cc.o" "gcc" "src/queries/CMakeFiles/hypo_queries.dir/university.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/hypo_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hypo_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/hypo_db.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hypo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
