# Empty compiler generated dependencies file for hypo_queries.
# This may be replaced when dependencies are built.
