file(REMOVE_RECURSE
  "CMakeFiles/hypo_queries.dir/chains.cc.o"
  "CMakeFiles/hypo_queries.dir/chains.cc.o.d"
  "CMakeFiles/hypo_queries.dir/graphs.cc.o"
  "CMakeFiles/hypo_queries.dir/graphs.cc.o.d"
  "CMakeFiles/hypo_queries.dir/hamiltonian.cc.o"
  "CMakeFiles/hypo_queries.dir/hamiltonian.cc.o.d"
  "CMakeFiles/hypo_queries.dir/ladder.cc.o"
  "CMakeFiles/hypo_queries.dir/ladder.cc.o.d"
  "CMakeFiles/hypo_queries.dir/nationality.cc.o"
  "CMakeFiles/hypo_queries.dir/nationality.cc.o.d"
  "CMakeFiles/hypo_queries.dir/parity.cc.o"
  "CMakeFiles/hypo_queries.dir/parity.cc.o.d"
  "CMakeFiles/hypo_queries.dir/university.cc.o"
  "CMakeFiles/hypo_queries.dir/university.cc.o.d"
  "libhypo_queries.a"
  "libhypo_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
