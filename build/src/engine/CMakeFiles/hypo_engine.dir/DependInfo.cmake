
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bottom_up.cc" "src/engine/CMakeFiles/hypo_engine.dir/bottom_up.cc.o" "gcc" "src/engine/CMakeFiles/hypo_engine.dir/bottom_up.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/hypo_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/hypo_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/hypo_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/hypo_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/proof.cc" "src/engine/CMakeFiles/hypo_engine.dir/proof.cc.o" "gcc" "src/engine/CMakeFiles/hypo_engine.dir/proof.cc.o.d"
  "/root/repo/src/engine/stratified_prover.cc" "src/engine/CMakeFiles/hypo_engine.dir/stratified_prover.cc.o" "gcc" "src/engine/CMakeFiles/hypo_engine.dir/stratified_prover.cc.o.d"
  "/root/repo/src/engine/tabled.cc" "src/engine/CMakeFiles/hypo_engine.dir/tabled.cc.o" "gcc" "src/engine/CMakeFiles/hypo_engine.dir/tabled.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hypo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hypo_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/hypo_db.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hypo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
