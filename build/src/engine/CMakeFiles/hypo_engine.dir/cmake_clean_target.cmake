file(REMOVE_RECURSE
  "libhypo_engine.a"
)
