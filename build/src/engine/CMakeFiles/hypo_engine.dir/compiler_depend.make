# Empty compiler generated dependencies file for hypo_engine.
# This may be replaced when dependencies are built.
