file(REMOVE_RECURSE
  "CMakeFiles/hypo_engine.dir/bottom_up.cc.o"
  "CMakeFiles/hypo_engine.dir/bottom_up.cc.o.d"
  "CMakeFiles/hypo_engine.dir/engine.cc.o"
  "CMakeFiles/hypo_engine.dir/engine.cc.o.d"
  "CMakeFiles/hypo_engine.dir/plan.cc.o"
  "CMakeFiles/hypo_engine.dir/plan.cc.o.d"
  "CMakeFiles/hypo_engine.dir/proof.cc.o"
  "CMakeFiles/hypo_engine.dir/proof.cc.o.d"
  "CMakeFiles/hypo_engine.dir/stratified_prover.cc.o"
  "CMakeFiles/hypo_engine.dir/stratified_prover.cc.o.d"
  "CMakeFiles/hypo_engine.dir/tabled.cc.o"
  "CMakeFiles/hypo_engine.dir/tabled.cc.o.d"
  "libhypo_engine.a"
  "libhypo_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
