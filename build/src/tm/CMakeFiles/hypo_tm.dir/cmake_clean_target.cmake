file(REMOVE_RECURSE
  "libhypo_tm.a"
)
