
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tm/machine.cc" "src/tm/CMakeFiles/hypo_tm.dir/machine.cc.o" "gcc" "src/tm/CMakeFiles/hypo_tm.dir/machine.cc.o.d"
  "/root/repo/src/tm/machines_library.cc" "src/tm/CMakeFiles/hypo_tm.dir/machines_library.cc.o" "gcc" "src/tm/CMakeFiles/hypo_tm.dir/machines_library.cc.o.d"
  "/root/repo/src/tm/simulator.cc" "src/tm/CMakeFiles/hypo_tm.dir/simulator.cc.o" "gcc" "src/tm/CMakeFiles/hypo_tm.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hypo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
