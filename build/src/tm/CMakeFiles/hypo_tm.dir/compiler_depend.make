# Empty compiler generated dependencies file for hypo_tm.
# This may be replaced when dependencies are built.
