file(REMOVE_RECURSE
  "CMakeFiles/hypo_tm.dir/machine.cc.o"
  "CMakeFiles/hypo_tm.dir/machine.cc.o.d"
  "CMakeFiles/hypo_tm.dir/machines_library.cc.o"
  "CMakeFiles/hypo_tm.dir/machines_library.cc.o.d"
  "CMakeFiles/hypo_tm.dir/simulator.cc.o"
  "CMakeFiles/hypo_tm.dir/simulator.cc.o.d"
  "libhypo_tm.a"
  "libhypo_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
