file(REMOVE_RECURSE
  "CMakeFiles/tm_encoding_test.dir/tm_encoding_test.cc.o"
  "CMakeFiles/tm_encoding_test.dir/tm_encoding_test.cc.o.d"
  "tm_encoding_test"
  "tm_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
