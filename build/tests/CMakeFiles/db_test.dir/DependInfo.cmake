
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/db_test.cc" "tests/CMakeFiles/db_test.dir/db_test.cc.o" "gcc" "tests/CMakeFiles/db_test.dir/db_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/hypo_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hypo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/hypo_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/hypo_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hypo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/hypo_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/hypo_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/hypo_db.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hypo_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hypo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
