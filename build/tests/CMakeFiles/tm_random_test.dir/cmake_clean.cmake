file(REMOVE_RECURSE
  "CMakeFiles/tm_random_test.dir/tm_random_test.cc.o"
  "CMakeFiles/tm_random_test.dir/tm_random_test.cc.o.d"
  "tm_random_test"
  "tm_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
