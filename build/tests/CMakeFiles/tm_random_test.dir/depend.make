# Empty dependencies file for tm_random_test.
# This may be replaced when dependencies are built.
