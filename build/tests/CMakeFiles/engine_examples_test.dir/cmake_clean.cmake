file(REMOVE_RECURSE
  "CMakeFiles/engine_examples_test.dir/engine_examples_test.cc.o"
  "CMakeFiles/engine_examples_test.dir/engine_examples_test.cc.o.d"
  "engine_examples_test"
  "engine_examples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
