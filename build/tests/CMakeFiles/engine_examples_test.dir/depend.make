# Empty dependencies file for engine_examples_test.
# This may be replaced when dependencies are built.
