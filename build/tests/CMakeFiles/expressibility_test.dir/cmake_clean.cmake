file(REMOVE_RECURSE
  "CMakeFiles/expressibility_test.dir/expressibility_test.cc.o"
  "CMakeFiles/expressibility_test.dir/expressibility_test.cc.o.d"
  "expressibility_test"
  "expressibility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expressibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
