# Empty dependencies file for expressibility_test.
# This may be replaced when dependencies are built.
