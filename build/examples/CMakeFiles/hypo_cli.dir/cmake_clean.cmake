file(REMOVE_RECURSE
  "CMakeFiles/hypo_cli.dir/hypo_cli.cpp.o"
  "CMakeFiles/hypo_cli.dir/hypo_cli.cpp.o.d"
  "hypo_cli"
  "hypo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
