# Empty compiler generated dependencies file for hypo_cli.
# This may be replaced when dependencies are built.
