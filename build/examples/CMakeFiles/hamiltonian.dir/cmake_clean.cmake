file(REMOVE_RECURSE
  "CMakeFiles/hamiltonian.dir/hamiltonian.cpp.o"
  "CMakeFiles/hamiltonian.dir/hamiltonian.cpp.o.d"
  "hamiltonian"
  "hamiltonian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
