# Empty compiler generated dependencies file for hamiltonian.
# This may be replaced when dependencies are built.
