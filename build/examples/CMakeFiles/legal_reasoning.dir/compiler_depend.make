# Empty compiler generated dependencies file for legal_reasoning.
# This may be replaced when dependencies are built.
