file(REMOVE_RECURSE
  "CMakeFiles/legal_reasoning.dir/legal_reasoning.cpp.o"
  "CMakeFiles/legal_reasoning.dir/legal_reasoning.cpp.o.d"
  "legal_reasoning"
  "legal_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legal_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
