# Empty dependencies file for parity_audit.
# This may be replaced when dependencies are built.
