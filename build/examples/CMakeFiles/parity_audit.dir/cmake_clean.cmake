file(REMOVE_RECURSE
  "CMakeFiles/parity_audit.dir/parity_audit.cpp.o"
  "CMakeFiles/parity_audit.dir/parity_audit.cpp.o.d"
  "parity_audit"
  "parity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
