file(REMOVE_RECURSE
  "CMakeFiles/expressibility.dir/expressibility.cpp.o"
  "CMakeFiles/expressibility.dir/expressibility.cpp.o.d"
  "expressibility"
  "expressibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
