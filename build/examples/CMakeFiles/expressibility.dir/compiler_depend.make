# Empty compiler generated dependencies file for expressibility.
# This may be replaced when dependencies are built.
