file(REMOVE_RECURSE
  "CMakeFiles/bench_order.dir/bench_order.cc.o"
  "CMakeFiles/bench_order.dir/bench_order.cc.o.d"
  "bench_order"
  "bench_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
