file(REMOVE_RECURSE
  "CMakeFiles/bench_hamiltonian.dir/bench_hamiltonian.cc.o"
  "CMakeFiles/bench_hamiltonian.dir/bench_hamiltonian.cc.o.d"
  "bench_hamiltonian"
  "bench_hamiltonian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
