# Empty compiler generated dependencies file for bench_hamiltonian.
# This may be replaced when dependencies are built.
