# Empty dependencies file for bench_proof_length.
# This may be replaced when dependencies are built.
