file(REMOVE_RECURSE
  "CMakeFiles/bench_proof_length.dir/bench_proof_length.cc.o"
  "CMakeFiles/bench_proof_length.dir/bench_proof_length.cc.o.d"
  "bench_proof_length"
  "bench_proof_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proof_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
