file(REMOVE_RECURSE
  "CMakeFiles/bench_tm_encoding.dir/bench_tm_encoding.cc.o"
  "CMakeFiles/bench_tm_encoding.dir/bench_tm_encoding.cc.o.d"
  "bench_tm_encoding"
  "bench_tm_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tm_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
