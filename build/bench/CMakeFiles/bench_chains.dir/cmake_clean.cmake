file(REMOVE_RECURSE
  "CMakeFiles/bench_chains.dir/bench_chains.cc.o"
  "CMakeFiles/bench_chains.dir/bench_chains.cc.o.d"
  "bench_chains"
  "bench_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
