# Empty compiler generated dependencies file for bench_chains.
# This may be replaced when dependencies are built.
