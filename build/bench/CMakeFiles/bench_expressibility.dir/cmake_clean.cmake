file(REMOVE_RECURSE
  "CMakeFiles/bench_expressibility.dir/bench_expressibility.cc.o"
  "CMakeFiles/bench_expressibility.dir/bench_expressibility.cc.o.d"
  "bench_expressibility"
  "bench_expressibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
