# Empty compiler generated dependencies file for bench_expressibility.
# This may be replaced when dependencies are built.
