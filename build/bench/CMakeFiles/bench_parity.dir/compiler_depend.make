# Empty compiler generated dependencies file for bench_parity.
# This may be replaced when dependencies are built.
