file(REMOVE_RECURSE
  "CMakeFiles/bench_stratify.dir/bench_stratify.cc.o"
  "CMakeFiles/bench_stratify.dir/bench_stratify.cc.o.d"
  "bench_stratify"
  "bench_stratify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stratify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
