# Empty dependencies file for bench_stratify.
# This may be replaced when dependencies are built.
