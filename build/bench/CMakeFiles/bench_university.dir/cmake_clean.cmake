file(REMOVE_RECURSE
  "CMakeFiles/bench_university.dir/bench_university.cc.o"
  "CMakeFiles/bench_university.dir/bench_university.cc.o.d"
  "bench_university"
  "bench_university.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_university.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
