#ifndef HYPO_AST_RULE_H_
#define HYPO_AST_RULE_H_

#include <string>
#include <vector>

#include "ast/symbol_table.h"
#include "ast/term.h"

namespace hypo {

/// An atomic formula: predicate applied to terms. Arity always matches the
/// predicate's registered arity (enforced at construction by RuleBuilder
/// and the parser).
struct Atom {
  PredicateId predicate = kInvalidPredicate;
  std::vector<Term> args;

  bool IsGround() const {
    for (const Term& t : args) {
      if (t.is_var()) return false;
    }
    return true;
  }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
};

/// The kind of a rule premise (Definition 1 plus negation-by-failure,
/// §3.1). `~A[add:B]` is intentionally unrepresentable: the paper excludes
/// it, and the parser suggests the `C <- A[add:B]` rewriting instead.
enum class PremiseKind {
  kPositive,      // A
  kNegated,       // ~A
  kHypothetical,  // A[add: B1, ..., Bm] and/or A[del: C1, ..., Cm]
};

/// One premise of a hypothetical rule.
///
/// For kHypothetical, `atom` is the queried formula A and `additions` are
/// the hypothetically inserted atoms B1..Bm. Definition 1 shows a single
/// added atom, but the paper's own §5.1 transition rules insert three atoms
/// at once, so a list is supported (see DESIGN.md §2).
///
/// `deletions` implements the extension the paper attributes to [4]:
/// `A[del: C]` — "infer A if *removing* C from the database allows the
/// inference of A" — which raises data-complexity from PSPACE to EXPTIME
/// and is therefore supported only by the general TabledEngine. Deletions
/// are applied before additions; a fact in both lists ends up present.
struct Premise {
  PremiseKind kind = PremiseKind::kPositive;
  Atom atom;
  std::vector<Atom> additions;  // kHypothetical: inserted atoms.
  std::vector<Atom> deletions;  // kHypothetical: removed atoms.

  static Premise Positive(Atom a) {
    return Premise{PremiseKind::kPositive, std::move(a), {}, {}};
  }
  static Premise Negated(Atom a) {
    return Premise{PremiseKind::kNegated, std::move(a), {}, {}};
  }
  static Premise Hypothetical(Atom a, std::vector<Atom> additions,
                              std::vector<Atom> deletions = {}) {
    return Premise{PremiseKind::kHypothetical, std::move(a),
                   std::move(additions), std::move(deletions)};
  }
};

/// A hypothetical rule `head <- premise_1, ..., premise_k` (Definition 2).
/// k == 0 makes the rule a (possibly non-ground) fact rule.
///
/// Variables are rule-local: `var_names[i]` is the surface name of the
/// variable with VarIndex i. All structural sharing is by value; rules are
/// cheap to copy relative to evaluation cost.
struct Rule {
  Atom head;
  std::vector<Premise> premises;
  std::vector<std::string> var_names;

  int num_vars() const { return static_cast<int>(var_names.size()); }

  /// True if some premise is hypothetical.
  bool HasHypotheticalPremise() const {
    for (const Premise& p : premises) {
      if (p.kind == PremiseKind::kHypothetical) return true;
    }
    return false;
  }

  /// True if some premise hypothetically deletes facts ([del: ...]).
  bool HasDeletions() const {
    for (const Premise& p : premises) {
      if (!p.deletions.empty()) return true;
    }
    return false;
  }

  /// True if some premise is negated.
  bool HasNegatedPremise() const {
    for (const Premise& p : premises) {
      if (p.kind == PremiseKind::kNegated) return true;
    }
    return false;
  }
};

}  // namespace hypo

#endif  // HYPO_AST_RULE_H_
