#ifndef HYPO_AST_QUERY_H_
#define HYPO_AST_QUERY_H_

#include <string>
#include <vector>

#include "ast/rule.h"

namespace hypo {

/// A query: a conjunction of premises with rule-local variables, i.e. a
/// headless rule body. Free variables are read existentially, matching the
/// paper's Example 2 (`∃c, grad(s)[add: take(s, c)]`).
///
/// Engines offer two entry points over a Query:
///  * Prove   — is there a binding of the variables making every premise
///              inferable?
///  * Answers — every distinct binding of a designated variable list.
struct Query {
  std::vector<Premise> premises;
  std::vector<std::string> var_names;

  int num_vars() const { return static_cast<int>(var_names.size()); }
};

}  // namespace hypo

#endif  // HYPO_AST_QUERY_H_
