#include "ast/printer.h"

#include "base/logging.h"

namespace hypo {

std::string TermToString(const Term& term, const SymbolTable& symbols,
                         const std::vector<std::string>* var_names) {
  if (term.is_const()) return symbols.ConstName(term.const_id());
  HYPO_CHECK(var_names != nullptr) << "variable term without name context";
  HYPO_CHECK(term.var_index() >= 0 &&
             term.var_index() < static_cast<int>(var_names->size()))
      << "variable index out of range";
  return (*var_names)[term.var_index()];
}

std::string AtomToString(const Atom& atom, const SymbolTable& symbols,
                         const std::vector<std::string>* var_names) {
  std::string out = symbols.PredicateName(atom.predicate);
  if (atom.args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += TermToString(atom.args[i], symbols, var_names);
  }
  out += ")";
  return out;
}

std::string PremiseToString(const Premise& premise,
                            const SymbolTable& symbols,
                            const std::vector<std::string>* var_names) {
  switch (premise.kind) {
    case PremiseKind::kPositive:
      return AtomToString(premise.atom, symbols, var_names);
    case PremiseKind::kNegated:
      return "~" + AtomToString(premise.atom, symbols, var_names);
    case PremiseKind::kHypothetical: {
      std::string out = AtomToString(premise.atom, symbols, var_names);
      if (!premise.additions.empty()) {
        out += "[add: ";
        for (size_t i = 0; i < premise.additions.size(); ++i) {
          if (i > 0) out += ", ";
          out += AtomToString(premise.additions[i], symbols, var_names);
        }
        out += "]";
      }
      if (!premise.deletions.empty()) {
        out += "[del: ";
        for (size_t i = 0; i < premise.deletions.size(); ++i) {
          if (i > 0) out += ", ";
          out += AtomToString(premise.deletions[i], symbols, var_names);
        }
        out += "]";
      }
      return out;
    }
  }
  return "<bad premise>";
}

std::string RuleToString(const Rule& rule, const SymbolTable& symbols) {
  std::string out = AtomToString(rule.head, symbols, &rule.var_names);
  if (rule.premises.empty()) {
    out += ".";
    return out;
  }
  out += " <- ";
  for (size_t i = 0; i < rule.premises.size(); ++i) {
    if (i > 0) out += ", ";
    out += PremiseToString(rule.premises[i], symbols, &rule.var_names);
  }
  out += ".";
  return out;
}

std::string RuleBaseToString(const RuleBase& rulebase) {
  std::string out;
  for (const Rule& rule : rulebase.rules()) {
    out += RuleToString(rule, rulebase.symbols());
    out += "\n";
  }
  return out;
}

}  // namespace hypo
