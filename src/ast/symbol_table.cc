#include "ast/symbol_table.h"

#include "base/logging.h"

namespace hypo {

StatusOr<PredicateId> SymbolTable::InternPredicate(std::string_view name,
                                                   int arity) {
  if (arity < 0) {
    return Status::InvalidArgument("negative arity for predicate '" +
                                   std::string(name) + "'");
  }
  auto it = predicate_index_.find(std::string(name));
  if (it != predicate_index_.end()) {
    const PredicateInfo& info = predicates_[it->second];
    if (info.arity != arity) {
      return Status::InvalidArgument(
          "predicate '" + std::string(name) + "' used with arity " +
          std::to_string(arity) + " but registered with arity " +
          std::to_string(info.arity));
    }
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(PredicateInfo{std::string(name), arity});
  predicate_index_.emplace(std::string(name), id);
  return id;
}

PredicateId SymbolTable::FindPredicate(std::string_view name) const {
  auto it = predicate_index_.find(std::string(name));
  return it == predicate_index_.end() ? kInvalidPredicate : it->second;
}

ConstId SymbolTable::InternConst(std::string_view name) {
  auto it = const_index_.find(std::string(name));
  if (it != const_index_.end()) return it->second;
  ConstId id = static_cast<ConstId>(consts_.size());
  consts_.emplace_back(name);
  const_index_.emplace(std::string(name), id);
  return id;
}

ConstId SymbolTable::FindConst(std::string_view name) const {
  auto it = const_index_.find(std::string(name));
  return it == const_index_.end() ? kInvalidConst : it->second;
}

const std::string& SymbolTable::PredicateName(PredicateId id) const {
  HYPO_CHECK(id >= 0 && id < num_predicates()) << "bad predicate id " << id;
  return predicates_[id].name;
}

int SymbolTable::PredicateArity(PredicateId id) const {
  HYPO_CHECK(id >= 0 && id < num_predicates()) << "bad predicate id " << id;
  return predicates_[id].arity;
}

const std::string& SymbolTable::ConstName(ConstId id) const {
  HYPO_CHECK(id >= 0 && id < num_consts()) << "bad constant id " << id;
  return consts_[id];
}

}  // namespace hypo
