#ifndef HYPO_AST_PRINTER_H_
#define HYPO_AST_PRINTER_H_

#include <string>
#include <vector>

#include "ast/rule.h"
#include "ast/rulebase.h"
#include "ast/symbol_table.h"

namespace hypo {

/// Renders `term` using `var_names` for variables (may be null only if the
/// term is a constant).
std::string TermToString(const Term& term, const SymbolTable& symbols,
                         const std::vector<std::string>* var_names);

/// Renders an atom, e.g. "take(S, cs452)".
std::string AtomToString(const Atom& atom, const SymbolTable& symbols,
                         const std::vector<std::string>* var_names = nullptr);

/// Renders a premise, e.g. "~b(X)" or "grad(S)[add: take(S, C)]".
std::string PremiseToString(const Premise& premise,
                            const SymbolTable& symbols,
                            const std::vector<std::string>* var_names);

/// Renders a rule in the surface syntax, e.g.
/// "grad(S) <- take(S, his101), take(S, eng201)."
std::string RuleToString(const Rule& rule, const SymbolTable& symbols);

/// Renders every rule, one per line.
std::string RuleBaseToString(const RuleBase& rulebase);

}  // namespace hypo

#endif  // HYPO_AST_PRINTER_H_
