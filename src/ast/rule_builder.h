#ifndef HYPO_AST_RULE_BUILDER_H_
#define HYPO_AST_RULE_BUILDER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ast/rule.h"
#include "ast/symbol_table.h"
#include "base/status.h"
#include "base/statusor.h"

namespace hypo {

/// Fluent, arity-checked construction of a single Rule.
///
/// Used by generated rulebases (the §5.1/§6 encoders and the example
/// library); hand-written rulebases normally go through the parser instead.
/// Errors (arity mismatches) are accumulated and reported by Build(), so
/// call sites can chain without per-call checks:
///
///   RuleBuilder b(symbols);
///   Term s = b.Var("s");
///   b.Head(b.A("grad", {s}))
///    .Positive(b.A("take", {s, b.C("his101")}))
///    .Negated(b.A("suspended", {s}));
///   HYPO_ASSIGN_OR_RETURN(Rule rule, std::move(b).Build());
class RuleBuilder {
 public:
  explicit RuleBuilder(SymbolTable* symbols) : symbols_(symbols) {}

  /// Returns the rule-local variable named `name`, creating it on first use.
  Term Var(std::string_view name);

  /// Returns the constant term for `name` (interning it globally).
  Term C(std::string_view name);

  /// Builds an arity-checked atom. On arity mismatch the error is recorded
  /// and a placeholder returned; Build() will fail.
  Atom A(std::string_view predicate, std::vector<Term> args);

  RuleBuilder& Head(Atom atom);
  RuleBuilder& Positive(Atom atom);
  RuleBuilder& Negated(Atom atom);
  RuleBuilder& Hypothetical(Atom query, std::vector<Atom> additions,
                            std::vector<Atom> deletions = {});

  /// Finalizes the rule. Fails if any atom was malformed or no head was set.
  StatusOr<Rule> Build() &&;

 private:
  SymbolTable* symbols_;
  Status status_;
  bool has_head_ = false;
  Rule rule_;
  std::unordered_map<std::string, VarIndex> var_index_;
};

}  // namespace hypo

#endif  // HYPO_AST_RULE_BUILDER_H_
