#include "ast/rule_builder.h"

namespace hypo {

Term RuleBuilder::Var(std::string_view name) {
  auto it = var_index_.find(std::string(name));
  if (it != var_index_.end()) return Term::MakeVar(it->second);
  VarIndex index = static_cast<VarIndex>(rule_.var_names.size());
  rule_.var_names.emplace_back(name);
  var_index_.emplace(std::string(name), index);
  return Term::MakeVar(index);
}

Term RuleBuilder::C(std::string_view name) {
  return Term::MakeConst(symbols_->InternConst(name));
}

Atom RuleBuilder::A(std::string_view predicate, std::vector<Term> args) {
  StatusOr<PredicateId> id =
      symbols_->InternPredicate(predicate, static_cast<int>(args.size()));
  if (!id.ok()) {
    if (status_.ok()) status_ = id.status();
    return Atom{};
  }
  return Atom{*id, std::move(args)};
}

RuleBuilder& RuleBuilder::Head(Atom atom) {
  rule_.head = std::move(atom);
  has_head_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::Positive(Atom atom) {
  rule_.premises.push_back(Premise::Positive(std::move(atom)));
  return *this;
}

RuleBuilder& RuleBuilder::Negated(Atom atom) {
  rule_.premises.push_back(Premise::Negated(std::move(atom)));
  return *this;
}

RuleBuilder& RuleBuilder::Hypothetical(Atom query,
                                       std::vector<Atom> additions,
                                       std::vector<Atom> deletions) {
  if (additions.empty() && deletions.empty() && status_.ok()) {
    status_ = Status::InvalidArgument(
        "hypothetical premise requires at least one added or deleted atom");
  }
  rule_.premises.push_back(Premise::Hypothetical(
      std::move(query), std::move(additions), std::move(deletions)));
  return *this;
}

StatusOr<Rule> RuleBuilder::Build() && {
  if (!status_.ok()) return status_;
  if (!has_head_) {
    return Status::InvalidArgument("rule has no head");
  }
  if (rule_.head.predicate == kInvalidPredicate) {
    return Status::InvalidArgument("rule head is malformed");
  }
  return std::move(rule_);
}

}  // namespace hypo
