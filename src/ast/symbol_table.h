#ifndef HYPO_AST_SYMBOL_TABLE_H_
#define HYPO_AST_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"

namespace hypo {

/// Interned id of a predicate symbol. Dense, starting at 0.
using PredicateId = int32_t;

/// Interned id of a constant symbol. Dense, starting at 0.
using ConstId = int32_t;

constexpr PredicateId kInvalidPredicate = -1;
constexpr ConstId kInvalidConst = -1;

/// Interns predicate and constant symbols to dense integer ids.
///
/// Predicates carry an arity that is fixed at first registration; using the
/// same name with a different arity is rejected (Definition 12 fixes the
/// database schema, and arity punning is invariably a bug in rulebases).
///
/// A SymbolTable is shared by the RuleBase, the Database, and the engines
/// evaluating them. It is append-only: ids remain valid for its lifetime.
class SymbolTable {
 public:
  SymbolTable() = default;

  // Shared by rulebase/database/engine objects; copying would silently
  // fork the id space, so forbid it.
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Interns `name` as a predicate of the given arity. Returns the existing
  /// id if already interned with the same arity; error on arity mismatch.
  StatusOr<PredicateId> InternPredicate(std::string_view name, int arity);

  /// Returns the id of an already-interned predicate, or kInvalidPredicate.
  PredicateId FindPredicate(std::string_view name) const;

  /// Interns `name` as a constant (idempotent).
  ConstId InternConst(std::string_view name);

  /// Returns the id of an already-interned constant, or kInvalidConst.
  ConstId FindConst(std::string_view name) const;

  const std::string& PredicateName(PredicateId id) const;
  int PredicateArity(PredicateId id) const;
  const std::string& ConstName(ConstId id) const;

  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  int num_consts() const { return static_cast<int>(consts_.size()); }

 private:
  struct PredicateInfo {
    std::string name;
    int arity;
  };

  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::string, PredicateId> predicate_index_;
  std::vector<std::string> consts_;
  std::unordered_map<std::string, ConstId> const_index_;
};

}  // namespace hypo

#endif  // HYPO_AST_SYMBOL_TABLE_H_
