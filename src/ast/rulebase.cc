#include "ast/rulebase.h"

namespace hypo {

void RuleBase::AddRule(Rule rule) {
  int index = static_cast<int>(rules_.size());
  definitions_[rule.head.predicate].push_back(index);
  defined_.insert(rule.head.predicate);
  IndexAtomConstants(rule.head);
  for (const Premise& p : rule.premises) {
    IndexAtomConstants(p.atom);
    for (const Atom& a : p.additions) IndexAtomConstants(a);
    for (const Atom& a : p.deletions) IndexAtomConstants(a);
    if (!p.deletions.empty()) has_deletions_ = true;
  }
  rules_.push_back(std::move(rule));
}

Status RuleBase::Merge(const RuleBase& other) {
  if (other.symbols_.get() != symbols_.get()) {
    return Status::InvalidArgument(
        "RuleBase::Merge requires both rulebases to share one SymbolTable");
  }
  for (const Rule& r : other.rules_) AddRule(r);
  if (other.has_restrictions_) {
    has_restrictions_ = true;
    assumable_.insert(other.assumable_.begin(), other.assumable_.end());
    retractable_.insert(other.retractable_.begin(),
                        other.retractable_.end());
  }
  return Status::OK();
}

const std::vector<int>& RuleBase::DefinitionOf(PredicateId pred) const {
  static const std::vector<int>* const kEmpty = new std::vector<int>();
  auto it = definitions_.find(pred);
  return it == definitions_.end() ? *kEmpty : it->second;
}

void RuleBase::IndexAtomConstants(const Atom& atom) {
  for (const Term& t : atom.args) {
    if (t.is_const()) constants_.insert(t.const_id());
  }
}

}  // namespace hypo
