#ifndef HYPO_AST_TERM_H_
#define HYPO_AST_TERM_H_

#include <cstdint>

#include "ast/symbol_table.h"

namespace hypo {

/// Index of a variable within the rule that contains it (dense, 0-based).
using VarIndex = int32_t;

/// A term is either a constant symbol or a rule-local variable.
///
/// The logic is function-free (Definition 1 onward), so these are the only
/// two cases; there is no term nesting and no manual memory management.
class Term {
 public:
  static Term MakeConst(ConstId id) { return Term(/*is_var=*/false, id); }
  static Term MakeVar(VarIndex index) { return Term(/*is_var=*/true, index); }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  ConstId const_id() const { return id_; }
  VarIndex var_index() const { return id_; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.is_var_ == b.is_var_ && a.id_ == b.id_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

 private:
  Term(bool is_var, int32_t id) : is_var_(is_var), id_(id) {}

  bool is_var_;
  int32_t id_;  // ConstId or VarIndex depending on is_var_.
};

}  // namespace hypo

#endif  // HYPO_AST_TERM_H_
