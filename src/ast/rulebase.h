#ifndef HYPO_AST_RULEBASE_H_
#define HYPO_AST_RULEBASE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/rule.h"
#include "ast/symbol_table.h"
#include "base/status.h"

namespace hypo {

/// A set of hypothetical rules sharing one SymbolTable.
///
/// Provides the paper's Definition 5 notion of the *definition* of a
/// predicate (the rules whose conclusion uses it) and bookkeeping the
/// analysis module needs (which predicates are intensional, which constants
/// occur). Append-only; rule indices are stable.
class RuleBase {
 public:
  explicit RuleBase(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {}

  /// Appends `rule` and indexes it under its head predicate.
  void AddRule(Rule rule);

  /// Appends every rule of `other` (which must share this SymbolTable).
  Status Merge(const RuleBase& other);

  const std::vector<Rule>& rules() const { return rules_; }
  int num_rules() const { return static_cast<int>(rules_.size()); }
  const Rule& rule(int index) const { return rules_[index]; }

  /// Indices of the rules defining `pred` (Definition 5). Empty for
  /// extensional predicates.
  const std::vector<int>& DefinitionOf(PredicateId pred) const;

  /// True iff some rule concludes `pred` (i.e. `pred` is intensional).
  bool IsDefined(PredicateId pred) const {
    return defined_.count(pred) > 0;
  }

  /// Every constant symbol appearing in some rule. Part of dom(R, DB).
  const std::unordered_set<ConstId>& constants() const { return constants_; }

  /// True iff no rule mentions a constant symbol — the syntactic
  /// genericity condition of §6.1 ("constant free").
  bool IsConstantFree() const { return constants_.empty(); }

  /// True iff some rule uses hypothetical deletion ([del: ...]) — the [4]
  /// extension supported only by the general TabledEngine.
  bool HasDeletions() const { return has_deletions_; }

  /// Restricted predicates (Sáenz-Pérez): `:- assumable p/2.` declares
  /// that p may appear in hypothetical additions, `:- retractable q/1.`
  /// that q may be hypothetically deleted. As long as *no* directive has
  /// been seen the rulebase is unrestricted (everything allowed, the
  /// paper's original semantics); the first directive switches every
  /// predicate to deny-by-default.
  void DeclareAssumable(PredicateId pred) {
    has_restrictions_ = true;
    assumable_.insert(pred);
  }
  void DeclareRetractable(PredicateId pred) {
    has_restrictions_ = true;
    retractable_.insert(pred);
  }
  bool has_restrictions() const { return has_restrictions_; }
  const std::unordered_set<PredicateId>& assumable() const {
    return assumable_;
  }
  const std::unordered_set<PredicateId>& retractable() const {
    return retractable_;
  }

  const SymbolTable& symbols() const { return *symbols_; }
  SymbolTable* mutable_symbols() { return symbols_.get(); }
  const std::shared_ptr<SymbolTable>& symbols_ptr() const { return symbols_; }

 private:
  void IndexAtomConstants(const Atom& atom);

  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Rule> rules_;
  std::unordered_map<PredicateId, std::vector<int>> definitions_;
  std::unordered_set<PredicateId> defined_;
  std::unordered_set<ConstId> constants_;
  std::unordered_set<PredicateId> assumable_;
  std::unordered_set<PredicateId> retractable_;
  bool has_deletions_ = false;
  bool has_restrictions_ = false;
};

}  // namespace hypo

#endif  // HYPO_AST_RULEBASE_H_
