#include "encode/order.h"

#include "ast/rule_builder.h"

namespace hypo {

namespace {

Status Add(RuleBase* rules, RuleBuilder&& b) {
  HYPO_ASSIGN_OR_RETURN(Rule rule, std::move(b).Build());
  rules->AddRule(std::move(rule));
  return Status::OK();
}

}  // namespace

Status AppendOrderAssertionRules(const OrderNames& order,
                                 const std::string& accept_predicate,
                                 const std::string& yes_predicate,
                                 RuleBase* rules) {
  SymbolTable* symbols = rules->mutable_symbols();
  const std::string oselect = order.first + "_sel";
  const std::string oselected = order.first + "_seld";

  {  // yes <- oselect(X), order(X)[add: ofirst(X)].
    RuleBuilder b(symbols);
    Term x = b.Var("X");
    b.Head(b.A(yes_predicate, {}))
        .Positive(b.A(oselect, {x}))
        .Hypothetical(b.A("order_ext", {x}), {b.A(order.first, {x})});
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }
  {  // order(X) <- oselect(Y), order(Y)[add: onext(X, Y)].
    RuleBuilder b(symbols);
    Term x = b.Var("X");
    Term y = b.Var("Y");
    b.Head(b.A("order_ext", {x}))
        .Positive(b.A(oselect, {y}))
        .Hypothetical(b.A("order_ext", {y}), {b.A(order.next, {x, y})});
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }
  {  // order(X) <- ~oselect(Y), accept[add: olast(X)].
    RuleBuilder b(symbols);
    Term x = b.Var("X");
    Term y = b.Var("Y");
    b.Head(b.A("order_ext", {x}))
        .Negated(b.A(oselect, {y}))
        .Hypothetical(b.A(accept_predicate, {}), {b.A(order.last, {x})});
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }
  {  // oselect(Y) <- d(Y), ~oselected(Y).
    RuleBuilder b(symbols);
    Term y = b.Var("Y");
    b.Head(b.A(oselect, {y}))
        .Positive(b.A(order.domain, {y}))
        .Negated(b.A(oselected, {y}));
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }
  {  // oselected(Y) <- ofirst(Y).
    RuleBuilder b(symbols);
    Term y = b.Var("Y");
    b.Head(b.A(oselected, {y})).Positive(b.A(order.first, {y}));
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }
  {  // oselected(Y) <- onext(X, Y).
    RuleBuilder b(symbols);
    Term y = b.Var("Y");
    b.Head(b.A(oselected, {y}))
        .Positive(b.A(order.next, {b.Var("X"), y}));
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }
  return Status::OK();
}

Status AppendDomainRules(const OrderNames& order,
                         const std::vector<std::pair<std::string, int>>&
                             schema,
                         RuleBase* rules) {
  SymbolTable* symbols = rules->mutable_symbols();
  for (const auto& [name, arity] : schema) {
    for (int pos = 0; pos < arity; ++pos) {
      RuleBuilder b(symbols);
      std::vector<Term> args;
      for (int i = 0; i < arity; ++i) {
        args.push_back(b.Var("X" + std::to_string(i)));
      }
      b.Head(b.A(order.domain, {args[pos]})).Positive(b.A(name, args));
      HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
    }
  }
  return Status::OK();
}

}  // namespace hypo
