#ifndef HYPO_ENCODE_BITMAP_H_
#define HYPO_ENCODE_BITMAP_H_

#include <string>
#include <utility>
#include <vector>

#include "ast/rulebase.h"
#include "base/status.h"
#include "encode/counter.h"

namespace hypo {

/// §6.2.2: appends the rules that lay the database out as a bitmap on
/// M_k's initial work tape.
///
/// Tape positions are l-tuples read as base-n numerals whose digits are
/// domain elements (most significant first, per AppendCounterRules).
/// Relation i of arity α_i occupies the cells whose digit string is
///
///   (block digits for i) · (padding: min element) · (x1 .. x_α_i)
///
/// with α = max arity and l - α block digits, so blocks are contiguous
/// and disjoint. The cell holds symbol '1' (initial_s2) if P_i(x̄) is a
/// database fact, '0' (initial_s1) if x̄ is a tuple of domain elements
/// not in P_i — the crucial use of negation-by-failure — and blank
/// (initial_s0) everywhere else.
///
/// Geometry: requires l >= max_arity + 1 and, at query time, that the
/// number of relations fits in n^(l - α) blocks (n = domain size). All
/// rules are constant-free.
///
/// The symbol naming matches the machine alphabet of machines_library.h:
/// initial_s0 = blank, initial_s1 = '0', initial_s2 = '1'.
Status AppendBitmapRules(int l,
                         const std::vector<std::pair<std::string, int>>&
                             schema,
                         const OrderNames& order,
                         const std::string& initial_prefix,
                         RuleBase* rules);

}  // namespace hypo

#endif  // HYPO_ENCODE_BITMAP_H_
