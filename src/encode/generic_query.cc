#include "encode/generic_query.h"

#include <algorithm>

#include "ast/rule_builder.h"
#include "encode/bitmap.h"
#include "encode/counter.h"
#include "encode/order.h"
#include "encode/tm_encoder.h"

namespace hypo {

namespace {

int EffectiveCounterArity(const GenericQuerySpec& spec) {
  int max_arity = 0;
  for (const auto& [name, arity] : spec.schema) {
    max_arity = std::max(max_arity, arity);
  }
  return spec.counter_arity > 0 ? spec.counter_arity : max_arity + 1;
}

Status BuildInto(const GenericQuerySpec& spec, RuleBase* rules) {
  if (spec.schema.empty()) {
    return Status::InvalidArgument("generic query needs a schema");
  }
  const int l = EffectiveCounterArity(spec);
  const OrderNames order;
  const CounterNames counter = CounterNames::ForArity(l);

  HYPO_RETURN_IF_ERROR(AppendDomainRules(order, spec.schema, rules));
  HYPO_RETURN_IF_ERROR(
      AppendOrderAssertionRules(order, "accept", "yes", rules));
  HYPO_RETURN_IF_ERROR(AppendCounterRules(l, order, counter, rules));
  HYPO_RETURN_IF_ERROR(
      AppendBitmapRules(l, spec.schema, order, "initial_s", rules));

  TmEncodeOptions options;
  options.counter_arity = l;
  options.first = counter.first;
  options.next = counter.next;
  options.last = counter.last;
  options.dom = counter.dom;
  options.tapes_from_rules = true;
  options.initial_prefix = "initial_s";
  return AppendCascadeRules(spec.machines, /*input=*/{}, /*counter_size=*/0,
                            options, rules, /*db=*/nullptr);
}

}  // namespace

StatusOr<RuleBase> BuildYesNoQueryRules(
    const GenericQuerySpec& spec, std::shared_ptr<SymbolTable> symbols) {
  RuleBase rules(std::move(symbols));
  HYPO_RETURN_IF_ERROR(BuildInto(spec, &rules));
  if (!rules.IsConstantFree()) {
    return Status::Internal(
        "Lemma 2 construction produced a rulebase with constants");
  }
  return rules;
}

StatusOr<RuleBase> BuildOutputQueryRules(
    const GenericQuerySpec& spec, int output_arity,
    std::shared_ptr<SymbolTable> symbols) {
  if (output_arity < 1) {
    return Status::InvalidArgument("output arity must be positive");
  }
  GenericQuerySpec extended = spec;
  extended.schema.insert(extended.schema.begin(), {"p0", output_arity});
  if (spec.counter_arity == 0) {
    extended.counter_arity = 0;  // Recomputed over the extended schema.
  }
  RuleBase rules(std::move(symbols));
  HYPO_RETURN_IF_ERROR(BuildInto(extended, &rules));

  // out(X̄) <- d(X1), ..., d(Xα0), yes[add: p0(X̄)].
  const OrderNames order;
  RuleBuilder b(rules.mutable_symbols());
  std::vector<Term> xs;
  for (int i = 0; i < output_arity; ++i) {
    xs.push_back(b.Var("X" + std::to_string(i)));
  }
  for (const Term& x : xs) b.Positive(b.A(order.domain, {x}));
  b.Hypothetical(b.A("yes", {}), {b.A("p0", xs)});
  b.Head(b.A("out", xs));
  HYPO_ASSIGN_OR_RETURN(Rule rule, std::move(b).Build());
  rules.AddRule(std::move(rule));
  if (!rules.IsConstantFree()) {
    return Status::Internal(
        "Corollary 2 construction produced a rulebase with constants");
  }
  return rules;
}

Status ValidateGenericQueryGeometry(const GenericQuerySpec& spec,
                                    int domain_size) {
  if (domain_size < 2) {
    return Status::InvalidArgument(
        "the §6 construction needs a domain of size >= 2 (the paper's "
        "construction shares this restriction)");
  }
  int max_arity = 0;
  for (const auto& [name, arity] : spec.schema) {
    max_arity = std::max(max_arity, arity);
  }
  const int l = EffectiveCounterArity(spec);
  if (l <= max_arity) {
    return Status::InvalidArgument(
        "counter arity must exceed the maximum relation arity");
  }
  // Blocks: schema.size() block prefixes must fit in n^(l - max_arity).
  double blocks = 1;
  for (int i = 0; i < l - max_arity; ++i) blocks *= domain_size;
  if (static_cast<double>(spec.schema.size()) > blocks) {
    return Status::InvalidArgument(
        "schema does not fit in the bitmap block space; increase the "
        "counter arity");
  }
  return Status::OK();
}

}  // namespace hypo
