#include "encode/bitmap.h"

#include <algorithm>

#include "ast/rule_builder.h"

namespace hypo {

namespace {

Status Add(RuleBase* rules, RuleBuilder&& b) {
  HYPO_ASSIGN_OR_RETURN(Rule rule, std::move(b).Build());
  rules->AddRule(std::move(rule));
  return Status::OK();
}

}  // namespace

Status AppendBitmapRules(int l,
                         const std::vector<std::pair<std::string, int>>&
                             schema,
                         const OrderNames& order,
                         const std::string& initial_prefix,
                         RuleBase* rules) {
  if (schema.empty()) {
    return Status::InvalidArgument("bitmap encoding needs a schema");
  }
  int max_arity = 0;
  for (const auto& [name, arity] : schema) {
    if (arity < 1) {
      return Status::InvalidArgument("relation '" + name +
                                     "' must have positive arity");
    }
    max_arity = std::max(max_arity, arity);
  }
  const int block_digits = l - max_arity;
  if (block_digits < 1) {
    return Status::InvalidArgument(
        "counter arity l must exceed the maximum relation arity");
  }
  SymbolTable* symbols = rules->mutable_symbols();
  auto block_pred = [&](size_t i) {
    return initial_prefix + "block_" + std::to_string(i);
  };

  // Block prefixes: block_0 = (min, ..., min); block_<i+1> = block_<i> + 1
  // via a block-width counter.
  CounterNames block_counter =
      CounterNames::ForArity(block_digits, initial_prefix + "blk");
  HYPO_RETURN_IF_ERROR(
      AppendCounterRules(block_digits, order, block_counter, rules));
  {
    RuleBuilder b(symbols);
    std::vector<Term> zs;
    for (int i = 0; i < block_digits; ++i) {
      zs.push_back(b.Var("Z" + std::to_string(i)));
    }
    b.Positive(b.A(block_counter.first, zs));
    b.Head(b.A(block_pred(0), zs));
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }
  for (size_t i = 1; i < schema.size(); ++i) {
    RuleBuilder b(symbols);
    std::vector<Term> xs, ys;
    for (int d = 0; d < block_digits; ++d) {
      xs.push_back(b.Var("X" + std::to_string(d)));
      ys.push_back(b.Var("Y" + std::to_string(d)));
    }
    std::vector<Term> next_args = xs;
    next_args.insert(next_args.end(), ys.begin(), ys.end());
    b.Positive(b.A(block_pred(i - 1), xs));
    b.Positive(b.A(block_counter.next, next_args));
    b.Head(b.A(block_pred(i), ys));
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }

  // Cell contents per relation.
  for (size_t i = 0; i < schema.size(); ++i) {
    const auto& [name, arity] = schema[i];
    const int padding = max_arity - arity;
    for (bool present : {true, false}) {
      RuleBuilder b(symbols);
      std::vector<Term> position;
      // Block digits.
      std::vector<Term> zs;
      for (int d = 0; d < block_digits; ++d) {
        zs.push_back(b.Var("Z" + std::to_string(d)));
      }
      b.Positive(b.A(block_pred(i), zs));
      position.insert(position.end(), zs.begin(), zs.end());
      // Padding digits: the minimum element.
      for (int d = 0; d < padding; ++d) {
        Term p = b.Var("P" + std::to_string(d));
        b.Positive(b.A(order.first, {p}));
        position.push_back(p);
      }
      // Entry digits.
      std::vector<Term> xs;
      for (int d = 0; d < arity; ++d) {
        xs.push_back(b.Var("E" + std::to_string(d)));
      }
      position.insert(position.end(), xs.begin(), xs.end());
      if (present) {
        b.Positive(b.A(name, xs));
        b.Head(b.A(initial_prefix + "2", position));  // '1'
      } else {
        for (const Term& x : xs) b.Positive(b.A(order.domain, {x}));
        b.Negated(b.A(name, xs));
        b.Head(b.A(initial_prefix + "1", position));  // '0'
      }
      HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
    }
  }

  // Blanks everywhere else:
  //   initial_s0(J̄) <- d(J1), ..., d(Jl), ~initial_s1(J̄), ~initial_s2(J̄).
  {
    RuleBuilder b(symbols);
    std::vector<Term> js;
    for (int d = 0; d < l; ++d) js.push_back(b.Var("J" + std::to_string(d)));
    for (const Term& j : js) b.Positive(b.A(order.domain, {j}));
    b.Negated(b.A(initial_prefix + "1", js));
    b.Negated(b.A(initial_prefix + "2", js));
    b.Head(b.A(initial_prefix + "0", js));
    HYPO_RETURN_IF_ERROR(Add(rules, std::move(b)));
  }
  return Status::OK();
}

}  // namespace hypo
