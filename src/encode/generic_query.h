#ifndef HYPO_ENCODE_GENERIC_QUERY_H_
#define HYPO_ENCODE_GENERIC_QUERY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ast/rulebase.h"
#include "base/statusor.h"
#include "tm/machine.h"

namespace hypo {

/// Input to the Lemma 2 / Corollary 2 construction: an oracle-machine
/// cascade deciding a generic query over databases of the given schema.
///
/// The machine reads its input as the §6.2.2 bitmap: one block per schema
/// relation, in schema order, each cell '1'/'0' for tuple presence, blank
/// outside the blocks. The cascade must be generic-correct: its answer
/// may depend only on the bitmap, which the order-assertion rules present
/// under every possible domain order.
struct GenericQuerySpec {
  std::vector<MachineSpec> machines;  // machines[0] = M_k.
  std::vector<std::pair<std::string, int>> schema;  // (name, arity).
  /// Counter arity l; 0 means max_arity + 1. Must exceed the max arity,
  /// and at query time n^(l - max_arity) must cover the schema size and
  /// n^l must bound the machines' running time.
  int counter_arity = 0;
};

/// Lemma 2: builds a constant-free rulebase R(ψ) with a 0-ary predicate
/// `yes` such that for every database DB of the spec's schema (with
/// domain size >= 2),
///
///   R(ψ), DB ⊢ yes   iff   the cascade accepts the bitmap of DB.
///
/// Assembly: active-domain rules, hypothetical order assertion (§6.2.1),
/// arity-l counter (§6.2.2), bitmap rules, and the machine encoding with
/// rule-defined initial tapes. The number of strata equals the cascade
/// depth (the order rules join the top stratum, as the paper notes).
StatusOr<RuleBase> BuildYesNoQueryRules(
    const GenericQuerySpec& spec, std::shared_ptr<SymbolTable> symbols);

/// Corollary 2: builds R(φ) for an output query of arity `output_arity`.
/// A fresh relation `p0` (of that arity) is prepended to the schema — the
/// machine sees its bitmap as block 0 — and the answer relation is
///
///   out(X̄) <- d(X1), ..., d(Xα0), yes[add: p0(X̄)].
StatusOr<RuleBase> BuildOutputQueryRules(
    const GenericQuerySpec& spec, int output_arity,
    std::shared_ptr<SymbolTable> symbols);

/// Geometry check at query time: with domain size n, verifies that the
/// schema fits in the block space and the counter is non-degenerate.
Status ValidateGenericQueryGeometry(const GenericQuerySpec& spec,
                                    int domain_size);

}  // namespace hypo

#endif  // HYPO_ENCODE_GENERIC_QUERY_H_
