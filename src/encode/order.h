#ifndef HYPO_ENCODE_ORDER_H_
#define HYPO_ENCODE_ORDER_H_

#include <string>
#include <utility>
#include <vector>

#include "ast/rulebase.h"
#include "base/status.h"
#include "encode/counter.h"

namespace hypo {

/// §6.2.1: appends the rules that hypothetically assert every possible
/// linear order on the data domain, running `accept_predicate` (0-ary)
/// under each one:
///
///   yes <- oselect(X), order(X)[add: ofirst(X)].
///   order(X) <- oselect(Y), order(Y)[add: onext(X, Y)].
///   order(X) <- ~oselect(Y), accept[add: olast(X)].
///   oselect(Y) <- d(Y), ~oselected(Y).
///   oselected(Y) <- ofirst(Y).
///   oselected(Y) <- onext(X, Y).
///
/// The rules are linear and constant-free and live in the top stratum.
/// For a generic query the machine accepts under every order or under
/// none (§6.2.3), so `yes` is order-independent.
Status AppendOrderAssertionRules(const OrderNames& order,
                                 const std::string& accept_predicate,
                                 const std::string& yes_predicate,
                                 RuleBase* rules);

/// Appends the active-domain rules: d(X) <- p(..., X, ...) for every
/// argument position of every relation in `schema` (name, arity pairs).
Status AppendDomainRules(const OrderNames& order,
                         const std::vector<std::pair<std::string, int>>&
                             schema,
                         RuleBase* rules);

}  // namespace hypo

#endif  // HYPO_ENCODE_ORDER_H_
