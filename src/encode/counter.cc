#include "encode/counter.h"

#include <string>
#include <vector>

#include "ast/rule_builder.h"

namespace hypo {

Status AppendCounterRules(int l, const OrderNames& order,
                          const CounterNames& counter, RuleBase* rules) {
  if (l < 1) return Status::InvalidArgument("counter arity must be >= 1");
  SymbolTable* symbols = rules->mutable_symbols();
  auto add = [rules](RuleBuilder&& b) -> Status {
    HYPO_ASSIGN_OR_RETURN(Rule rule, std::move(b).Build());
    rules->AddRule(std::move(rule));
    return Status::OK();
  };
  auto var = [](const std::string& stem, int i) {
    return stem + std::to_string(i);
  };

  {  // first(X1..Xl) <- ofirst(X1), ..., ofirst(Xl).
    RuleBuilder b(symbols);
    std::vector<Term> xs;
    for (int i = 0; i < l; ++i) xs.push_back(b.Var(var("X", i)));
    for (const Term& x : xs) b.Positive(b.A(order.first, {x}));
    b.Head(b.A(counter.first, xs));
    HYPO_RETURN_IF_ERROR(add(std::move(b)));
  }
  {  // last(X1..Xl) <- olast(X1), ..., olast(Xl).
    RuleBuilder b(symbols);
    std::vector<Term> xs;
    for (int i = 0; i < l; ++i) xs.push_back(b.Var(var("X", i)));
    for (const Term& x : xs) b.Positive(b.A(order.last, {x}));
    b.Head(b.A(counter.last, xs));
    HYPO_RETURN_IF_ERROR(add(std::move(b)));
  }
  {  // dom(X1..Xl) <- d(X1), ..., d(Xl).
    RuleBuilder b(symbols);
    std::vector<Term> xs;
    for (int i = 0; i < l; ++i) xs.push_back(b.Var(var("X", i)));
    for (const Term& x : xs) b.Positive(b.A(order.domain, {x}));
    b.Head(b.A(counter.dom, xs));
    HYPO_RETURN_IF_ERROR(add(std::move(b)));
  }
  // Ripple-carry increment: for each digit position p (0 = most
  // significant), one rule where digits 0..p-1 are shared, digit p
  // advances by onext, and digits p+1..l-1 wrap from olast to ofirst.
  for (int p = 0; p < l; ++p) {
    RuleBuilder b(symbols);
    std::vector<Term> xs(l, Term::MakeConst(0));
    std::vector<Term> ys(l, Term::MakeConst(0));
    for (int i = 0; i < p; ++i) {
      Term shared = b.Var(var("S", i));
      xs[i] = shared;
      ys[i] = shared;
      b.Positive(b.A(order.domain, {shared}));
    }
    Term from = b.Var("XP");
    Term to = b.Var("YP");
    xs[p] = from;
    ys[p] = to;
    b.Positive(b.A(order.next, {from, to}));
    for (int i = p + 1; i < l; ++i) {
      Term wrap_from = b.Var(var("L", i));
      Term wrap_to = b.Var(var("F", i));
      xs[i] = wrap_from;
      ys[i] = wrap_to;
      b.Positive(b.A(order.last, {wrap_from}));
      b.Positive(b.A(order.first, {wrap_to}));
    }
    std::vector<Term> args = xs;
    args.insert(args.end(), ys.begin(), ys.end());
    b.Head(b.A(counter.next, args));
    HYPO_RETURN_IF_ERROR(add(std::move(b)));
  }
  return Status::OK();
}

}  // namespace hypo
