#ifndef HYPO_ENCODE_TM_ENCODER_H_
#define HYPO_ENCODE_TM_ENCODER_H_

#include <string>
#include <vector>

#include "ast/rulebase.h"
#include "base/statusor.h"
#include "queries/fixture.h"
#include "tm/machine.h"

namespace hypo {

/// Options shared by the two uses of the machine encoding:
///
///  * §5.1 (lower bound): a unary counter first/next/last materialized as
///    database facts over fresh constants n0..n<N-1>, and initial tape
///    contents as database facts — the defaults.
///  * §6 (expressibility): an arity-l counter defined by rules over a
///    hypothetically asserted order (see AppendCounterRules), initial
///    tapes defined by rules from `initial_prefix` bitmap predicates, and
///    no constants anywhere (the rulebase stays generic).
struct TmEncodeOptions {
  /// Number of variables representing one time tick / tape position.
  int counter_arity = 1;

  /// Counter predicate names (arity counter_arity, 2*counter_arity,
  /// counter_arity, counter_arity respectively). `dom` enumerates all
  /// counter tuples and is required when counter_arity > 1 or
  /// tapes_from_rules is set.
  std::string first = "first";
  std::string next = "next";
  std::string last = "last";
  std::string dom;

  /// §6 mode: initial tapes come from rules over `initial_prefix<sym>`
  /// predicates (M_k) and blanks (lower machines) rather than DB facts.
  bool tapes_from_rules = false;
  std::string initial_prefix = "initial_s";
};

/// Encoding result: rules (and, in §5.1 mode, the database DB(s̄)).
struct TmEncoding {
  ProgramFixture program;
  std::string accept_predicate;  // 0-ary; "accept".
};

/// The §5.1 lower-bound construction: encodes an oracle-machine cascade
/// M_k, ..., M_1 (machines[0] = M_k) as a linearly stratified rulebase
/// R(L) plus database DB(s̄) with
///
///   R(L), DB(s̄) ⊢ accept   iff   the cascade accepts `input`,
///
/// machine M_i living in stratum i. `counter_size` is the paper's n^l
/// (time ticks = tape cells). Construction notes:
///
///  * per accepting state:  accept_i(T) <- control_i_q(J1, J2, T).
///  * per transition, one hypothetical rule inserting the successor id.
///    Writes land at the *old* head positions: the paper's rule writes at
///    the moved position, which its own §5.1.4 frame axiom would
///    contradict (the old cell would both propagate and be overwritten) —
///    see DESIGN.md §2.
///  * oracle protocol rules; the negation-by-failure on oracle_<i-1> is
///    the stratum boundary.
///  * §5.1.4 frame axioms, with active_<i> covering the machine's own
///    work head and the oracle head of the machine above, except in the
///    suspended state q?.
StatusOr<TmEncoding> EncodeCascade(const std::vector<MachineSpec>& machines,
                                   const std::vector<int>& input,
                                   int counter_size);

/// Generalized form used by the §6 pipeline: appends the machine rules to
/// `rules` following `options`; emits counter/tape database facts only in
/// the default (§5.1) configuration, via `db` (may be null in §6 mode).
Status AppendCascadeRules(const std::vector<MachineSpec>& machines,
                          const std::vector<int>& input, int counter_size,
                          const TmEncodeOptions& options, RuleBase* rules,
                          Database* db);

}  // namespace hypo

#endif  // HYPO_ENCODE_TM_ENCODER_H_
