#include "encode/tm_encoder.h"

#include <string>

#include "ast/rule_builder.h"

namespace hypo {

namespace {

/// Predicate-name scheme. Machine levels use the paper's indices: level k
/// is the top machine (receives the input), level 1 the bottom oracle.
struct Names {
  static std::string Cell(int level, int symbol) {
    return "cell_" + std::to_string(level) + "_s" + std::to_string(symbol);
  }
  static std::string Control(int level, int state) {
    return "control_" + std::to_string(level) + "_q" + std::to_string(state);
  }
  static std::string Accept(int level) {
    return "accept_" + std::to_string(level);
  }
  static std::string Oracle(int level) {
    return "oracle_" + std::to_string(level);
  }
  static std::string Active(int level) {
    return "active_" + std::to_string(level);
  }
  static std::string Counter(int value) {
    return "n" + std::to_string(value);
  }
};

class CascadeEncoder {
 public:
  CascadeEncoder(const std::vector<MachineSpec>& machines,
                 const std::vector<int>& input, int counter_size,
                 const TmEncodeOptions& options, RuleBase* rules,
                 Database* db)
      : machines_(machines),
        input_(input),
        n_(counter_size),
        options_(options),
        rules_(rules),
        db_(db) {}

  Status Encode() {
    HYPO_RETURN_IF_ERROR(ValidateCascade(machines_));
    const bool facts_mode = !options_.tapes_from_rules;
    if (facts_mode) {
      if (n_ < 2) {
        return Status::InvalidArgument("counter_size must be at least 2");
      }
      if (static_cast<int>(input_.size()) > n_) {
        return Status::InvalidArgument("input longer than the tape");
      }
      if (db_ == nullptr) {
        return Status::InvalidArgument("§5.1 mode requires a database");
      }
      HYPO_RETURN_IF_ERROR(BuildDatabase());
    } else {
      if (options_.dom.empty()) {
        return Status::InvalidArgument(
            "rule-defined tapes require a counter domain predicate");
      }
      HYPO_RETURN_IF_ERROR(BuildInitialTapeRules());
    }
    const int k = static_cast<int>(machines_.size());
    for (int idx = 0; idx < k; ++idx) {
      HYPO_RETURN_IF_ERROR(EncodeMachine(machines_[idx], k - idx));
    }
    HYPO_RETURN_IF_ERROR(BuildFrameAxioms());
    return BuildTopRule();
  }

 private:
  int g() const { return options_.counter_arity; }
  SymbolTable* symbols() { return rules_->mutable_symbols(); }

  Status AddRule(RuleBuilder&& builder) {
    HYPO_ASSIGN_OR_RETURN(Rule rule, std::move(builder).Build());
    rules_->AddRule(std::move(rule));
    return Status::OK();
  }

  /// A group of `g` variables stem_0..stem_<g-1> standing for one counter
  /// value (time tick or tape position).
  std::vector<Term> Group(RuleBuilder* b, const std::string& stem) {
    std::vector<Term> out;
    out.reserve(g());
    for (int i = 0; i < g(); ++i) {
      out.push_back(b->Var(stem + "_" + std::to_string(i)));
    }
    return out;
  }

  static std::vector<Term> Concat(std::initializer_list<std::vector<Term>>
                                      groups) {
    std::vector<Term> out;
    for (const auto& group : groups) {
      out.insert(out.end(), group.begin(), group.end());
    }
    return out;
  }

  Status BuildDatabase() {
    // The counter: first(n0), next(n_j, n_j+1), last(n_{N-1}).
    HYPO_RETURN_IF_ERROR(db_->Insert(options_.first, {Names::Counter(0)}));
    for (int j = 0; j + 1 < n_; ++j) {
      HYPO_RETURN_IF_ERROR(db_->Insert(
          options_.next, {Names::Counter(j), Names::Counter(j + 1)}));
    }
    HYPO_RETURN_IF_ERROR(
        db_->Insert(options_.last, {Names::Counter(n_ - 1)}));

    // Initial tapes at time n0: input on M_k's work tape, blanks below.
    const int k = static_cast<int>(machines_.size());
    for (int j = 0; j < n_; ++j) {
      int symbol = j < static_cast<int>(input_.size()) ? input_[j] : kBlank;
      HYPO_RETURN_IF_ERROR(db_->Insert(
          Names::Cell(k, symbol), {Names::Counter(j), Names::Counter(0)}));
    }
    for (int level = 1; level < k; ++level) {
      for (int j = 0; j < n_; ++j) {
        HYPO_RETURN_IF_ERROR(
            db_->Insert(Names::Cell(level, kBlank),
                        {Names::Counter(j), Names::Counter(0)}));
      }
    }
    return Status::OK();
  }

  /// §6 mode: cell_k_s<c>(J̄, T̄) <- initial_s<c>(J̄), first(T̄); blanks on
  /// the lower tapes from the counter-domain predicate.
  Status BuildInitialTapeRules() {
    const int k = static_cast<int>(machines_.size());
    for (int c = 0; c < machines_[0].num_symbols; ++c) {
      RuleBuilder b(symbols());
      std::vector<Term> j = Group(&b, "J");
      std::vector<Term> t = Group(&b, "T");
      b.Head(b.A(Names::Cell(k, c), Concat({j, t})))
          .Positive(b.A(options_.initial_prefix + std::to_string(c), j))
          .Positive(b.A(options_.first, t));
      HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
    }
    for (int level = 1; level < k; ++level) {
      RuleBuilder b(symbols());
      std::vector<Term> j = Group(&b, "J");
      std::vector<Term> t = Group(&b, "T");
      b.Head(b.A(Names::Cell(level, kBlank), Concat({j, t})))
          .Positive(b.A(options_.dom, j))
          .Positive(b.A(options_.first, t));
      HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
    }
    return Status::OK();
  }

  Status EncodeMachine(const MachineSpec& m, int level) {
    // (i) Accepting states: accept_i(T̄) <- control_i_qa(J̄1, J̄2, T̄).
    for (int qa : m.accepting_states) {
      RuleBuilder b(symbols());
      std::vector<Term> t = Group(&b, "T");
      b.Head(b.A(Names::Accept(level), t))
          .Positive(b.A(Names::Control(level, qa),
                        Concat({Group(&b, "J1"), Group(&b, "J2"), t})));
      HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
    }

    // (ii) One hypothetical rule per transition.
    for (const Transition& tr : m.transitions) {
      RuleBuilder b(symbols());
      std::vector<Term> t = Group(&b, "T");
      std::vector<Term> t2 = Group(&b, "T2");
      std::vector<Term> j1 = Group(&b, "J1");
      std::vector<Term> j2 = Group(&b, "J2");
      b.Positive(b.A(options_.next, Concat({t, t2})));
      b.Positive(b.A(Names::Control(level, tr.state),
                     Concat({j1, j2, t})));
      b.Positive(b.A(Names::Cell(level, tr.read), Concat({j1, t})));
      std::vector<Term> j1n = j1;
      if (tr.move_work == 1) {
        j1n = Group(&b, "J1N");
        b.Positive(b.A(options_.next, Concat({j1, j1n})));
      } else if (tr.move_work == -1) {
        j1n = Group(&b, "J1N");
        b.Positive(b.A(options_.next, Concat({j1n, j1})));
      }
      std::vector<Term> j2n = j2;
      if (tr.move_oracle == 1) {
        j2n = Group(&b, "J2N");
        b.Positive(b.A(options_.next, Concat({j2, j2n})));
      } else if (tr.move_oracle == -1) {
        j2n = Group(&b, "J2N");
        b.Positive(b.A(options_.next, Concat({j2n, j2})));
      }
      std::vector<Atom> additions;
      additions.push_back(
          b.A(Names::Control(level, tr.next_state), Concat({j1n, j2n, t2})));
      additions.push_back(
          b.A(Names::Cell(level, tr.write), Concat({j1, t2})));
      if (tr.oracle_write >= 0) {
        additions.push_back(
            b.A(Names::Cell(level - 1, tr.oracle_write), Concat({j2, t2})));
      }
      b.Hypothetical(b.A(Names::Accept(level), t2), std::move(additions));
      b.Head(b.A(Names::Accept(level), t));
      HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
    }

    // (iii) The oracle protocol; the NAF rule is the stratum boundary.
    if (m.UsesOracle()) {
      const std::string oracle = Names::Oracle(level - 1);
      for (bool yes : {true, false}) {
        RuleBuilder b(symbols());
        std::vector<Term> t = Group(&b, "T");
        std::vector<Term> t2 = Group(&b, "T2");
        std::vector<Term> j1 = Group(&b, "J1");
        std::vector<Term> j2 = Group(&b, "J2");
        b.Positive(b.A(options_.next, Concat({t, t2})));
        b.Positive(b.A(Names::Control(level, m.query_state),
                       Concat({j1, j2, t})));
        if (yes) {
          b.Positive(b.A(oracle, t));
        } else {
          b.Negated(b.A(oracle, t));
        }
        int resume = yes ? m.yes_state : m.no_state;
        b.Hypothetical(
            b.A(Names::Accept(level), t2),
            {b.A(Names::Control(level, resume), Concat({j1, j2, t2}))});
        b.Head(b.A(Names::Accept(level), t));
        HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
      }
      // oracle_<i-1>(T̄) <- first(J̄),
      //                  accept_<i-1>(T̄)[add: control_<i-1>_q0(J̄, J̄, T̄)].
      const MachineSpec& below =
          machines_[machines_.size() - static_cast<size_t>(level - 1)];
      RuleBuilder b(symbols());
      std::vector<Term> t = Group(&b, "T");
      std::vector<Term> j = Group(&b, "J");
      b.Head(b.A(oracle, t))
          .Positive(b.A(options_.first, j))
          .Hypothetical(b.A(Names::Accept(level - 1), t),
                        {b.A(Names::Control(level - 1, below.initial_state),
                             Concat({j, j, t}))});
      HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
    }
    return Status::OK();
  }

  Status BuildFrameAxioms() {
    const int k = static_cast<int>(machines_.size());
    for (int level = 1; level <= k; ++level) {
      const MachineSpec& m = machines_[k - level];
      // cell_i_c(J̄, T̄2) <- next(T̄, T̄2), cell_i_c(J̄, T̄), ~active_i(J̄, T̄).
      for (int c = 0; c < m.num_symbols; ++c) {
        RuleBuilder b(symbols());
        std::vector<Term> j = Group(&b, "J");
        std::vector<Term> t = Group(&b, "T");
        std::vector<Term> t2 = Group(&b, "T2");
        b.Head(b.A(Names::Cell(level, c), Concat({j, t2})))
            .Positive(b.A(options_.next, Concat({t, t2})))
            .Positive(b.A(Names::Cell(level, c), Concat({j, t})))
            .Negated(b.A(Names::Active(level), Concat({j, t})));
        HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
      }
      // The machine's own work head is active except when suspended in q?.
      for (int q = 0; q < m.num_states; ++q) {
        if (m.UsesOracle() && q == m.query_state) continue;
        RuleBuilder b(symbols());
        std::vector<Term> j = Group(&b, "J");
        std::vector<Term> t = Group(&b, "T");
        b.Head(b.A(Names::Active(level), Concat({j, t})))
            .Positive(b.A(Names::Control(level, q),
                          Concat({j, Group(&b, "J2"), t})));
        HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
      }
      // The oracle head of the machine above writes this tape too.
      if (level + 1 <= k && machines_[k - (level + 1)].UsesOracle()) {
        const MachineSpec& above = machines_[k - (level + 1)];
        for (int q = 0; q < above.num_states; ++q) {
          if (q == above.query_state) continue;
          RuleBuilder b(symbols());
          std::vector<Term> j = Group(&b, "J");
          std::vector<Term> t = Group(&b, "T");
          b.Head(b.A(Names::Active(level), Concat({j, t})))
              .Positive(b.A(Names::Control(level + 1, q),
                            Concat({Group(&b, "J1"), j, t})));
          HYPO_RETURN_IF_ERROR(AddRule(std::move(b)));
        }
      }
    }
    return Status::OK();
  }

  Status BuildTopRule() {
    const int k = static_cast<int>(machines_.size());
    RuleBuilder b(symbols());
    std::vector<Term> x = Group(&b, "X");
    b.Head(b.A("accept", {}))
        .Positive(b.A(options_.first, x))
        .Hypothetical(b.A(Names::Accept(k), x),
                      {b.A(Names::Control(k, machines_[0].initial_state),
                           Concat({x, x, x}))});
    return AddRule(std::move(b));
  }

  const std::vector<MachineSpec>& machines_;
  const std::vector<int>& input_;
  const int n_;
  const TmEncodeOptions& options_;
  RuleBase* rules_;
  Database* db_;
};

}  // namespace

StatusOr<TmEncoding> EncodeCascade(const std::vector<MachineSpec>& machines,
                                   const std::vector<int>& input,
                                   int counter_size) {
  TmEncoding out;
  out.accept_predicate = "accept";
  TmEncodeOptions options;
  HYPO_RETURN_IF_ERROR(AppendCascadeRules(machines, input, counter_size,
                                          options, &out.program.rules,
                                          &out.program.db));
  return out;
}

Status AppendCascadeRules(const std::vector<MachineSpec>& machines,
                          const std::vector<int>& input, int counter_size,
                          const TmEncodeOptions& options, RuleBase* rules,
                          Database* db) {
  CascadeEncoder encoder(machines, input, counter_size, options, rules, db);
  return encoder.Encode();
}

}  // namespace hypo
