#ifndef HYPO_ENCODE_COUNTER_H_
#define HYPO_ENCODE_COUNTER_H_

#include <string>

#include "ast/rulebase.h"
#include "base/status.h"

namespace hypo {

/// Names of the base linear order (arity 1) the counter is built from.
/// In the §6 pipeline these are the hypothetically asserted order
/// predicates; in tests they can be ordinary database facts.
struct OrderNames {
  std::string first = "ofirst";
  std::string next = "onext";
  std::string last = "olast";
  std::string domain = "d";  // d(x): the data domain.
};

/// Names of the generated arity-`l` counter predicates.
struct CounterNames {
  std::string first;  // arity l
  std::string next;   // arity 2l
  std::string last;   // arity l
  std::string dom;    // arity l: every counter tuple.

  static CounterNames ForArity(int l, const std::string& prefix = "ctr") {
    std::string stem = prefix + std::to_string(l) + "_";
    return CounterNames{stem + "first", stem + "next", stem + "last",
                        stem + "dom"};
  }
};

/// §6.2.2: appends Horn rules defining a counter from 0 to n^l - 1 over
/// l-tuples of domain elements, given a linear order on the n elements:
///
///   first(x̄)    — x̄ is (min, ..., min);
///   next(x̄, ȳ)  — ȳ is x̄ + 1 in the lexicographic order (ripple carry:
///                 some digit advances, everything to its right wraps
///                 from max to min);
///   last(x̄)     — x̄ is (max, ..., max);
///   dom(x̄)      — x̄ is any l-tuple of domain elements.
///
/// All rules are constant-free, so the construction preserves genericity.
Status AppendCounterRules(int l, const OrderNames& order,
                          const CounterNames& counter, RuleBase* rules);

}  // namespace hypo

#endif  // HYPO_ENCODE_COUNTER_H_
