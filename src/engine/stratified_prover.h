#ifndef HYPO_ENGINE_STRATIFIED_PROVER_H_
#define HYPO_ENGINE_STRATIFIED_PROVER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#include <functional>

#include "analysis/restricted.h"
#include "analysis/stratification.h"
#include "base/hash.h"
#include "db/fact_interner.h"
#include "db/overlay.h"
#include "engine/binding.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "engine/vm/bytecode.h"
#include "engine/vm/executor.h"

namespace hypo {

/// The paper's §5.2 evaluation procedure for linearly stratified
/// rulebases: a deterministic realization of the PROVE_Σi / PROVE_Δi
/// cascade.
///
/// * PROVE_Σi (top-down, the paper's NP machine) becomes depth-first
///   backtracking over rule choices and ground substitutions, with tabling:
///   results are memoized per (ground goal, database state). Re-entering a
///   goal that is already on the DFS stack with the same state is pruned
///   (sound for least-fixpoint semantics); failures are cached only when
///   they did not depend on the pruning of a *shallower* in-progress goal,
///   the standard completion condition of tabled evaluation.
/// * PROVE_Δi (bottom-up, the paper's P machine) computes the perfect
///   model of Δ_i over the current state, substratum by substratum
///   (§5.2.2's LFP/T/TEST), invoking the Σ machinery of lower strata as
///   the oracle for hypothetical and lower-stratum premises. Δ models are
///   memoized per (stratum, state).
///
/// Hypothetical insertions use a single OverlayDatabase with undo frames:
/// each proof branch inserts, tests, and retracts, exactly the discipline
/// §5.1.2 describes.
///
/// Init() fails (InvalidArgument) if the rulebase is not linearly
/// stratifiable; the BottomUpEngine handles that general case.
class StratifiedProver : public Engine {
 public:
  /// Neither pointer is owned; both must outlive the prover.
  StratifiedProver(const RuleBase* rulebase, const Database* db,
                   EngineOptions options = EngineOptions());

  Status Init() override;
  StatusOr<bool> ProveFact(const Fact& fact) override;
  StatusOr<bool> ProveQuery(const Query& query) override;
  StatusOr<std::vector<Tuple>> Answers(const Query& query) override;

  const EngineStats& stats() const override;
  void ResetStats() override { stats_ = EngineStats(); }
  std::string name() const override { return "stratified-prover"; }

  /// Premise order, probe masks, and (VM mode) disassembled bytecode for
  /// every rule: head-bound for Σ-headed rules, entry-unbound for
  /// Δ-headed rules (run by the DeltaModelFor fixpoint).
  std::string ExplainPlans() const override;

  /// The governance fields (timeout_micros, max_memory_bytes, cancel) may
  /// be changed between queries — e.g. to retry a tripped query with a
  /// larger budget on the same warm engine. Changing the evaluation
  /// fields after Init() is undefined.
  EngineOptions* mutable_options() override { return &options_; }

  /// Shares settled Σ goal-memo entries with a server-lifetime MemoBoard
  /// (same discipline as TabledEngine::AttachMemoBoard).
  void AttachMemoBoard(MemoBoard* board) override;

  /// The stratification computed by Init (valid afterwards).
  const LinearStratification& stratification() const { return strat_; }

 private:
  /// Tabling entry for a Σ goal.
  struct GoalEntry {
    enum class Status : uint8_t { kInProgress, kTrue, kFalse } status;
    int depth;  // DFS depth at which the goal was entered (kInProgress).
  };
  /// Memo key: interned goal fact x interned hypothetical context. Both
  /// ids are O(1) to obtain at lookup time — no per-goal vector build.
  struct GoalKey {
    FactId fact;
    ContextId context;
    friend bool operator==(const GoalKey& a, const GoalKey& b) {
      return a.fact == b.fact && a.context == b.context;
    }
  };
  struct GoalKeyHash {
    size_t operator()(const GoalKey& k) const {
      return static_cast<size_t>(
          HashCombine(static_cast<uint64_t>(k.fact),
                      static_cast<uint64_t>(k.context)));
    }
  };

  struct DeltaKey {
    int stratum;
    ContextId context;
    friend bool operator==(const DeltaKey& a, const DeltaKey& b) {
      return a.stratum == b.stratum && a.context == b.context;
    }
  };
  struct DeltaKeyHash {
    size_t operator()(const DeltaKey& k) const {
      return static_cast<size_t>(
          HashCombine(static_cast<uint64_t>(k.context),
                      static_cast<uint64_t>(k.stratum) + 0x9e37));
    }
  };

  /// Evaluation context threaded through premise walking.
  struct EvalContext {
    int depth = 0;
    /// Accumulates the minimum recorded depth of any in-progress goal
    /// whose pruning this computation depended on (INT_MAX if none).
    int* min_pruned = nullptr;
    /// When non-null, a Δ model under construction: same-partition
    /// predicates match against it directly.
    Database* building_ext = nullptr;
    int building_partition = 0;
  };

  int PartitionOf(PredicateId pred) const {
    // Predicates interned after Init (by queries) are extensional.
    if (pred < 0 ||
        pred >= static_cast<int>(strat_.partition_of_pred.size())) {
      return 0;
    }
    return strat_.partition_of_pred[pred];
  }

  /// Decides R, state ⊢ goal for a ground atom (dispatch by partition).
  StatusOr<bool> ProveGround(const Fact& goal, EvalContext* ctx);

  /// PROVE_Σ for a goal whose predicate lives in an even partition.
  StatusOr<bool> ProveSigma(const Fact& goal, EvalContext* ctx);

  /// Perfect model of Δ_i over the current overlay state (memoized).
  StatusOr<const Database*> DeltaModelFor(int stratum_i);

  /// Recursive premise-plan walker; `sink` returns false to stop early.
  StatusOr<bool> WalkPlan(const std::vector<Premise>& premises,
                          const BodyPlan& plan, size_t step,
                          Binding* binding, EvalContext* ctx,
                          const std::function<StatusOr<bool>(
                              const Binding&)>& sink);

  /// VM executor host (see BottomUpEngine::VmHost for why this is a
  /// nested class template). Defined in stratified_prover.cc.
  template <typename EmitFn>
  struct VmHost;

  /// Runs one compiled program under `ctx`. `frame->regs` arrives
  /// pre-seeded by MatchHead for Σ rule programs, all-kUnbound otherwise.
  template <typename EmitFn>
  StatusOr<bool> RunProgram(const std::vector<Premise>& premises,
                            const vm::Program& prog, EvalContext* ctx,
                            vm::FrameStack::Frame* frame,
                            const EmitFn& emit);

  /// Positive-premise matching: dispatches on the predicate's partition.
  StatusOr<bool> MatchPositive(const Atom& atom, Binding* binding,
                               EvalContext* ctx,
                               const std::function<StatusOr<bool>()>& next);

  /// Negated premise: ∄ semantics over still-unbound variables.
  StatusOr<bool> TestNegated(const Atom& atom, Binding* binding,
                             EvalContext* ctx);

  /// True iff some extension of `binding` matches `atom` among the stored
  /// relations (base, overlay, and the given Δ model if any).
  bool ExistsStored(const Atom& atom, Binding* binding,
                    const Database* model_ext);

  Status EnsureConstants(const Query& query);
  Status EnsureFactConstants(const Fact& fact);
  Status CheckLimits();
  void ClearMemos();

  /// Approximate bytes held by the goal memo, interners, memoized Δ-model
  /// contents, and any Δ model mid-construction — O(1), read by the
  /// QueryGuard memory budget at metering frequency.
  int64_t MemoryBytes() const;

  /// Counts one domain-grounding iteration and enforces max_steps on
  /// enumeration-heavy plans (checked every 256 iterations). Inline: the
  /// fast path must cost one increment and one predictable branch.
  Status CountEnumeration() {
    if ((++stats_.enumerations & 255) != 0) return Status::OK();
    return CheckLimits();
  }

  /// Current interned context id, optionally cross-validated against the
  /// legacy canonical key (options_.validate_contexts).
  ContextId CurrentContext() const;

  /// Board-local id of the locally interned fact (cached per local id).
  FactId BoardFact(FactId local_id, const Fact& fact);

  /// Board context of the current overlay state, canonicalized for
  /// `goal_pred` when restrictions are declared (see
  /// TabledEngine::BoardContext).
  ContextId BoardContext(PredicateId goal_pred);

  const RuleBase* rulebase_;
  const Database* base_;
  EngineOptions options_;

  LinearStratification strat_;
  std::vector<BodyPlan> rule_plans_;
  /// One program per rule (VM executor only; empty under kInterp):
  /// Σ-headed rules compile head-bound, Δ-headed rules entry-unbound.
  std::vector<vm::Program> rule_programs_;
  /// Reusable VM frames, depth-indexed for re-entrant subproofs. Safe as
  /// an engine member: the prover serves one query at a time.
  vm::FrameStack vm_frames_;
  std::vector<ConstId> domain_;
  std::unordered_set<ConstId> domain_set_;
  std::vector<ConstId> extra_constants_;

  FactInterner interner_;
  std::unique_ptr<OverlayDatabase> overlay_;

  std::unordered_map<GoalKey, GoalEntry, GoalKeyHash> goal_memo_;
  std::unordered_map<DeltaKey, std::unique_ptr<Database>, DeltaKeyHash>
      delta_models_;
  QueryGuard guard_;
  /// Contents bytes of every memoized Δ model, accumulated at memoization
  /// and reset by ClearMemos (closes the old accounting gap where only
  /// the map entries, not the models, counted toward memo_bytes).
  int64_t delta_model_bytes_ = 0;
  /// Innermost Δ model currently under construction, so the memory budget
  /// sees in-flight fixpoints. Nested DeltaModelFor calls save/restore it;
  /// outer in-flight models go momentarily uncounted (approximation).
  const Database* building_model_ = nullptr;

  // Persistent cross-query cache (optional; see AttachMemoBoard).
  MemoBoard* board_ = nullptr;
  std::unique_ptr<RestrictionAnalysis> restrictions_;
  uint64_t domain_fp_ = 0;
  std::vector<FactId> board_facts_;  // local FactId -> board id, -1 unknown.
  std::unordered_map<ContextId, ContextId> board_contexts_;
  std::vector<int64_t> board_elems_;  // Scratch for BoardContext.

  // stats() refreshes the derived fields (context counters, memo bytes)
  // on read; the hot path only touches the plain counters.
  mutable EngineStats stats_;
  bool initialized_ = false;
};

}  // namespace hypo

#endif  // HYPO_ENGINE_STRATIFIED_PROVER_H_
