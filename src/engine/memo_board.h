#ifndef HYPO_ENGINE_MEMO_BOARD_H_
#define HYPO_ENGINE_MEMO_BOARD_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "db/context_interner.h"
#include "db/database.h"
#include "db/fact_interner.h"

namespace hypo {

/// Server-lifetime cross-query cache shared by an engine pool.
///
/// Within one run, each engine already memoizes goals per
/// (FactId, ContextId) and the BottomUpEngine caches whole per-context
/// models — but all of that dies with the query (or, in the server, stays
/// private to whichever pooled engine happened to serve it). The board
/// promotes the *settled* portion of those tables to a shared,
/// epoch-versioned store:
///
///  - a goal memo (fact, context, domain fingerprint) -> bool for the
///    top-down engines, fed only with entries the engines cached as
///    definite (kTrue, or context-free kFalse), so sharing across engine
///    types is sound — the inference relation R, DB+context |- goal does
///    not depend on which procedure decided it;
///  - a model store (context, domain fingerprint) -> immutable Database
///    snapshot for the BottomUpEngine's completed per-context models;
///    adopters Clone() the snapshot instead of re-running the fixpoint.
///
/// Fact and context ids are board-local: each attached engine keeps its
/// own interners and translates through InternFact/InternContext (ids are
/// engine-local and NOT interchangeable). All engines sharing a board
/// must evaluate the same rulebase over the same base database and
/// SymbolTable — the server's engine pool guarantees this.
///
/// Epochs: every entry is tagged with the board epoch current at publish
/// time. BeginEpoch(e) makes entries from older epochs stale; stale
/// entries answer as misses and are dropped lazily on touch. After an
/// epoch bump the first engine to repair (Engine::ApplyBaseDelta)
/// republishes the repaired base model at the new epoch, so the rest of
/// the pool adopts instead of repairing — that is the warm path
/// BM_CrossQueryMemoReuse measures.
///
/// Eviction: total footprint is tracked exactly for models (their own
/// ApproxBytes) and structurally for memo entries; when max_bytes is
/// exceeded, models are evicted least-recently-used first, then the goal
/// memo is dropped wholesale. One mutex guards everything — board calls
/// sit on cold paths (memo miss, model materialization), never inside a
/// join loop.
class MemoBoard {
 public:
  struct Stats {
    int64_t goal_hits = 0;
    int64_t goal_publishes = 0;
    int64_t model_hits = 0;
    int64_t model_publishes = 0;
    int64_t contexts_reused = 0;
    int64_t evictions = 0;
    int64_t bytes = 0;
    int64_t epoch = 0;
  };

  explicit MemoBoard(int64_t max_bytes = 256ll << 20)
      : max_bytes_(max_bytes) {}

  MemoBoard(const MemoBoard&) = delete;
  MemoBoard& operator=(const MemoBoard&) = delete;

  /// Enters epoch `epoch`; entries published under older epochs become
  /// stale. Call under the server's exclusive epoch lock, before any
  /// engine repairs.
  void BeginEpoch(int64_t epoch);
  int64_t epoch() const;

  /// Board-local id of `fact` (shared SymbolTable assumed).
  FactId InternFact(const Fact& fact);

  /// Board-local context id for canonical, sorted board element set
  /// `elems` (ContextInterner encoding over board fact ids). Sets
  /// `*reused` to true when the context was already interned — the
  /// cross-query context-reuse signal.
  ContextId InternContext(const std::vector<int64_t>& elems, bool* reused);

  /// Goal memo: 0 = unknown, +1 = provable, -1 = not provable. Entries
  /// from stale epochs answer 0 and are dropped.
  int LookupGoal(FactId fact, ContextId context, uint64_t domain_fp);
  void PublishGoal(FactId fact, ContextId context, uint64_t domain_fp,
                   bool provable);

  /// Model store. The returned snapshot is immutable and safe to hold
  /// across board mutations (shared_ptr); adopters must Clone() before
  /// mutating. Null on miss/stale.
  std::shared_ptr<const Database> LookupModel(ContextId context,
                                              uint64_t domain_fp);
  void PublishModel(ContextId context, uint64_t domain_fp,
                    std::shared_ptr<const Database> model);

  Stats snapshot_stats() const;

 private:
  struct Key {
    int64_t a;
    int64_t b;
    friend bool operator==(const Key& x, const Key& y) {
      return x.a == y.a && x.b == y.b;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(
          HashCombine(static_cast<uint64_t>(k.a),
                      static_cast<uint64_t>(k.b)));
    }
  };
  struct GoalEntry {
    int64_t epoch;
    bool provable;
  };
  struct ModelEntry {
    int64_t epoch;
    int64_t bytes;
    std::shared_ptr<const Database> model;
    std::list<Key>::iterator lru;
  };

  static Key GoalKeyOf(FactId fact, ContextId context, uint64_t domain_fp) {
    return Key{(static_cast<int64_t>(fact) << 32) |
                   static_cast<uint32_t>(context),
               static_cast<int64_t>(domain_fp)};
  }
  static Key ModelKeyOf(ContextId context, uint64_t domain_fp) {
    return Key{static_cast<int64_t>(context),
               static_cast<int64_t>(domain_fp)};
  }

  static constexpr int64_t kGoalEntryBytes = 64;

  /// Evicts LRU models (then the goal memo) until bytes_ <= max_bytes_.
  /// Caller holds mu_.
  void EvictLocked();

  mutable std::mutex mu_;
  int64_t max_bytes_;
  int64_t epoch_ = 0;
  int64_t bytes_ = 0;

  FactInterner facts_;
  ContextInterner contexts_;

  std::unordered_map<Key, GoalEntry, KeyHash> goals_;
  std::unordered_map<Key, ModelEntry, KeyHash> models_;
  std::list<Key> model_lru_;  // Front = most recently used.

  mutable Stats stats_;
};

}  // namespace hypo

#endif  // HYPO_ENGINE_MEMO_BOARD_H_
