#ifndef HYPO_ENGINE_BOTTOM_UP_H_
#define HYPO_ENGINE_BOTTOM_UP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/demand_transform.h"
#include "analysis/stratification.h"
#include "base/thread_pool.h"
#include "db/context_interner.h"
#include "db/fact_interner.h"
#include "engine/binding.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "engine/state_cache.h"
#include "engine/vm/bytecode.h"
#include "engine/vm/executor.h"

namespace hypo {

/// The reference evaluation procedure for hypothetical rulebases with
/// stratified negation (§3 + §3.1): a memoized, per-database-state
/// perfect-model computation.
///
/// A *state* is the base database plus a set of hypothetically added
/// facts. For each state the engine computes the perfect model bottom-up,
/// stratum by stratum; a hypothetical premise `A[add: C̄]` encountered
/// during the fixpoint triggers (memoized) evaluation of the strictly
/// larger state `DB + C̄`, or degenerates to a positive premise when every
/// added fact is already a database fact of the current state. States only
/// grow, so the recursion is well-founded; the number of states can be
/// exponential in the database (the paper's PSPACE-hardness), which the
/// `max_states` option converts into a clean error.
///
/// With `EngineOptions::demand` the engine evaluates the magic-set rewrite
/// of the rulebase instead (analysis/demand_transform.h): each query seeds
/// the magic relations of the state it probes, rules run guarded so only
/// demanded slices are derived, and per-state models are computed only
/// through the stratum the query needs (`State::completed_through`). The
/// demand profile widens monotonically across queries; memoized states are
/// kept and monotonically *re-extended* (their models are append-only sets
/// of true facts, so re-running the strata under a wider profile only adds
/// facts — see DESIGN.md for why answers are unchanged).
///
/// With `EngineOptions::num_threads >= 2` the top-level state's fixpoint
/// runs *parallel rounds* (see DESIGN.md "Parallel evaluation"): each
/// round's rule versions are partitioned into hash shards of a designated
/// premise's tuples, evaluated against frozen (sealed) relations on a
/// work-stealing pool with per-worker insertion buffers, and merged
/// deterministically (sorted by predicate, then tuple) at the round
/// barrier. Hypothetical child states encountered by concurrent workers
/// are materialized through a sharded, mutex-striped state cache keyed by
/// interned ContextIds, so independent hypothetical branches proceed in
/// parallel while duplicate requests for the same state wait instead of
/// recomputing. Answers and models are identical at every thread count;
/// only scheduling-dependent machinery counters (rounds, probes) differ.
///
/// This engine makes no linearity assumption — it accepts every rulebase
/// the paper's inference system defines (Definition 3 + stratified NAF) —
/// and serves as the ground-truth oracle the StratifiedProver is
/// cross-checked against.
class BottomUpEngine : public Engine {
 public:
  /// Neither pointer is owned; both must outlive the engine.
  BottomUpEngine(const RuleBase* rulebase, const Database* db,
                 EngineOptions options = EngineOptions());

  Status Init() override;
  StatusOr<bool> ProveFact(const Fact& fact) override;
  StatusOr<bool> ProveQuery(const Query& query) override;
  StatusOr<std::vector<Tuple>> Answers(const Query& query) override;

  /// All tuples of `pred` derivable at the base state (extensional plus
  /// derived). Convenience for examples and tests. Under demand this
  /// registers full demand for `pred` (the whole relation is asked for).
  StatusOr<std::vector<Tuple>> FactsFor(PredicateId pred);

  const EngineStats& stats() const override;
  void ResetStats() override;
  std::string name() const override { return "bottom-up"; }

  /// Number of distinct database states currently memoized.
  int64_t num_states() const { return states_.size(); }

  /// The governance fields (timeout_micros, max_memory_bytes, cancel) may
  /// be changed between queries — e.g. to retry a tripped query with a
  /// larger budget on the same warm engine. Changing the evaluation
  /// fields (strategy, demand, threads) after Init() is undefined.
  EngineOptions* mutable_options() override { return &options_; }

  /// Incremental repair of the memoized base-state model after the caller
  /// mutated the base Database (see Engine::ApplyBaseDelta). Hypothetical
  /// child states are dropped (they recompute lazily); the base model is
  /// repaired stratum by stratum — insertion semi-naive rounds for pure
  /// growth, DRed delete-and-rederive for retractions, and a recompute-
  /// and-diff fallback for strata whose negated or hypothetical premises
  /// the delta can flip. Falls back to a full Init() when the domain
  /// changed or demand-driven evaluation is active.
  Status ApplyBaseDelta(const BaseDelta& delta) override;

  /// Shares the base state's full model with a server-lifetime MemoBoard:
  /// a freshly computed (or freshly repaired) base model is published, and
  /// an epoch-current model published by a sibling engine over the same
  /// rulebase/base/domain is adopted instead of recomputed or re-repaired.
  void AttachMemoBoard(MemoBoard* board) override;

  std::vector<std::pair<PredicateId, ColumnMask>> BaseProbeSignatures()
      const override {
    return static_sigs_;
  }

  /// Premise order, probe masks, and (VM executor) disassembled bytecode
  /// per compiled rule version of the active program.
  std::string ExplainPlans() const override;

  /// Test hooks (governance_test): the incrementally tracked model-byte
  /// total and an exact re-sum over the live states. ApplyBaseDelta must
  /// leave these equal (satellite byte-accounting exactness).
  int64_t TrackedBytesForTest() const {
    return tracked_bytes_.load(std::memory_order_relaxed);
  }
  int64_t ExactTrackedBytesForTest() const {
    int64_t bytes = 0;
    states_.ForEach([&bytes](const State& s) { bytes += StateBytes(s); });
    return bytes;
  }

 private:
  using StateKey = std::vector<FactId>;

  struct State {
    StateKey key;                           // Sorted added-fact ids.
    std::unordered_set<FactId> added_set;   // Same ids, for membership.
    Database ext;                           // Added + derived facts.
    /// Highest stratum whose fixpoint has completed for this state under
    /// the current demand (-1 = none). Without demand every state is
    /// computed through the last stratum on materialization; with demand
    /// this grows monotonically as queries ask deeper.
    int completed_through = -1;
    /// The demand_version_ the model was last (re)computed under; a
    /// mismatch means the transformed program changed (profile widened)
    /// and the state must be re-extended before use.
    int demand_version = 0;
    /// True while a (re)computation is running: a model left behind by an
    /// aborted ComputeModel is incomplete and must be recomputed on the
    /// next touch, not served from the memo (abort recovery).
    bool dirty = false;
    /// ShardedStateCache's in-flight flag: true while some thread runs
    /// the compute step for this state outside the shard lock.
    bool computing = false;

    State(std::shared_ptr<SymbolTable> symbols, StorageBackend backend)
        : ext(std::move(symbols), backend) {}
  };

  /// Shared abort-and-metering state for one parallel fixpoint region.
  /// Workers accumulate counters in private EngineStats and publish the
  /// deltas here at metering checks, so max_steps is enforced against the
  /// *global* totals and one worker's ResourceExhausted short-circuits
  /// every in-flight task at its next check (cooperative abort).
  struct ParallelMeter {
    std::atomic<int64_t> goals{0};
    std::atomic<int64_t> enums{0};
    std::atomic<bool> abort{false};
    std::mutex mu;
    Status first_error = Status::OK();

    /// Records the first error and raises the abort flag.
    void Record(const Status& s) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = s;
      abort.store(true, std::memory_order_release);
    }
    Status FirstError() {
      std::lock_guard<std::mutex> lock(mu);
      return first_error;
    }
  };

  /// Per-evaluation-thread accumulator: all hot-path counters go to
  /// `stats` (the engine's own stats_ on the sequential path, a private
  /// per-task struct on workers, merged at the round barrier so counts
  /// are exact), and `meter` (parallel regions only) carries the shared
  /// abort flag plus published counter snapshots for limit enforcement.
  struct WorkCtx {
    EngineStats* stats = nullptr;
    ParallelMeter* meter = nullptr;
    int64_t published_goals = 0;
    int64_t published_enums = 0;
    /// Unflushed local delta of tracked_bytes_: bytes this thread has
    /// added to memoized models since its last flush (see CheckLimits).
    int64_t local_bytes = 0;
    /// Reusable VM register/scan frames (executor == kVm). Per-thread by
    /// construction, depth-indexed so hypothetical sub-fixpoints that
    /// re-enter RunProgram on this thread get their own frame.
    vm::FrameStack vm_frames;
  };

  /// Compiled bytecode versions of one rule body (executor == kVm): the
  /// full instantiation plus one delta version per positive premise index
  /// (the semi-naive rounds designate same-stratum premises; the DRed
  /// repair rounds can designate ANY positive premise, so all of them are
  /// compiled up front).
  struct RuleProgs {
    vm::Program full;
    std::vector<std::pair<int, vm::Program>> deltas;  // (premise, program)

    const vm::Program* For(int delta_premise) const {
      if (delta_premise < 0) return &full;
      for (const auto& [premise, prog] : deltas) {
        if (premise == delta_premise) return &prog;
      }
      return nullptr;
    }
  };

  /// Static per-rule facts for the tuple-level semi-naive rewrite,
  /// computed once per program build against the rule's own stratum.
  struct RuleDeltaInfo {
    /// Positive premises whose predicate can gain tuples during the
    /// rule's stratum fixpoint; each is designated as the delta premise
    /// of one rewritten rule version.
    std::vector<int> delta_premises;
    /// Queried predicates of hypothetical premises that live in the same
    /// stratum: `A[add: C̄]` degenerates to a Visible(A) check when every
    /// C is already present, so the premise can flip as A's relation
    /// grows — such rules fall back to full re-evaluation in rounds
    /// where one of these predicates changed.
    std::vector<PredicateId> hypo_sensitive_preds;
  };

  /// Per-round evaluation context threaded through WalkPlan: the state
  /// under construction, the optional delta designation, the calling
  /// thread's work accumulator, and (parallel rounds) the private
  /// insertion buffer plus the shard filter.
  struct EvalCtx {
    State* state = nullptr;
    int delta_premise = -1;          // Designated premise index, or -1.
    const Database* delta = nullptr; // Last round's newly derived tuples.
    WorkCtx* work = nullptr;
    /// DRed overdeletion evaluates non-designated positive premises
    /// against the PRE-epoch model: facts deleted so far this epoch
    /// (physically gone) count as visible again (`vis_plus`) and facts
    /// newly visible this epoch are filtered out (`vis_minus`). Null on
    /// every other path — one predictable branch per candidate.
    const Database* vis_plus = nullptr;
    const Database* vis_minus = nullptr;
    /// Parallel rounds: derived heads go here (deduped per task) instead
    /// of into state->ext, which is sealed; merged at the barrier.
    Database* buffer = nullptr;
    /// Shard filter: instantiations whose `shard_premise` tuple does not
    /// hash to `shard` (mod num_shards) are skipped — each instantiation
    /// fires in exactly one shard. -1 / 1 disables filtering.
    int shard_premise = -1;
    int shard = 0;
    int num_shards = 1;
  };

  /// The program the fixpoint actually evaluates: the magic-set rewrite
  /// when demand is active, the original rulebase otherwise.
  const RuleBase& active() const {
    return demand_program_ != nullptr ? demand_program_->rules : *rulebase_;
  }

  /// True iff `fact` holds in `state` (base database or ext model).
  bool Visible(const State& state, const Fact& fact) const {
    return base_->Contains(fact) || state.ext.Contains(fact);
  }

  /// Re-initializes the domain (and drops all memoized states) if the
  /// query mentions constants outside the current domain.
  Status EnsureConstants(const Query& query);

  /// Same for a probed ground fact: its constants join dom(R, DB) for
  /// this and later evaluations (Definition 3's domain, extended by the
  /// constants the caller introduces).
  Status EnsureFactConstants(const Fact& fact);

  /// Recomputes strata / plans / delta info / static probe signatures
  /// over active(). Called by Init() and whenever the demand program is
  /// rebuilt.
  Status RebuildActivePlans();

  /// Server-epoch plan staleness (ApplyBaseDelta): when the netted delta
  /// moved any watched base relation's cardinality by more than 2x in
  /// either direction since the plans were ordered, re-runs
  /// RebuildActivePlans (plans AND compiled programs; models untouched).
  Status MaybeReplanForCardinality();

  /// Rebuilds the demand program when forced or when the profile widened
  /// since the last build; bumps demand_version_ so memoized states are
  /// re-extended lazily on their next touch.
  Status RefreshDemandProgram(bool widened);

  /// Registers query/fact demand with the profile, rebuilds the program
  /// if it widened, and emits the magic seed facts plus the stratum the
  /// top state must be computed through. No-ops (through = last stratum)
  /// when demand is off.
  Status PrepareFactDemand(const Fact& fact, std::vector<Fact>* seeds,
                           int* through);
  Status PrepareQueryDemand(const Query& query, std::vector<Fact>* seeds,
                            int* through);

  /// Stratum the model must reach for `pred` to be complete: its stratum
  /// in the active program (-1 for extensional predicates, which need no
  /// rules at all). Only meaningful under demand; without it callers use
  /// the last stratum.
  int StratumCap(PredicateId pred) const;

  /// The cache key of `key` (a sorted added-fact id set): its interned
  /// ContextId. Takes intern_mu_.
  int64_t InternStateKey(const StateKey& key);

  /// Ensures the state for `ckey`/`key` exists with `seeds` inserted into
  /// its magic relations and its model computed through stratum `through`
  /// (both monotone), then runs `read` on it under the owning cache-shard
  /// lock. All concurrent access to a memoized state funnels through
  /// here: the shard lock covers creation, the needs-run decision, seed
  /// insertion, and the caller's read, while the expensive model
  /// computation runs outside it with the state marked in-flight
  /// (duplicate requests wait; independent states proceed in parallel).
  /// Template (instantiated only in bottom_up.cc) so the per-call read
  /// closure needs no std::function erasure on the hypothetical hot path.
  template <typename Read>
  Status EnsureState(int64_t ckey, const StateKey& key, int through,
                     const std::vector<Fact>& seeds, WorkCtx* work,
                     bool allow_parallel, const Read& read);

  /// Main-thread entry: EnsureState + return the raw State*. Only safe
  /// outside parallel regions (top-level query evaluation), where no
  /// worker can be mutating the state behind the pointer.
  StatusOr<State*> MaterializeState(const StateKey& key, int through,
                                    const std::vector<Fact>& seeds,
                                    WorkCtx* work);

  /// Computes (or re-extends) `state`'s model through stratum `through`.
  /// With `allow_parallel` and a pool, each stratum runs parallel rounds;
  /// child states reached during any round are always computed
  /// sequentially on whichever worker gets there first.
  Status ComputeModel(State* state, int through, WorkCtx* work,
                      bool allow_parallel);

  /// One stratum of ComputeModel as parallel rounds (see class comment).
  Status ComputeStratumParallel(State* state, int stratum, WorkCtx* work);

  /// One stratum of ComputeModel as sequential rounds; also the rebuild
  /// step of ApplyBaseDelta's recompute-and-diff fallback.
  Status ComputeStratumSequential(State* state, int stratum, WorkCtx* work);

  // --- Incremental base-delta repair (ApplyBaseDelta) ---------------------
  //
  // `ins` / `del` accumulate the NET visibility changes of the epoch,
  // bottom-up: seeded from the base mutation, then extended by each
  // stratum's own derived-fact changes before the next stratum runs. The
  // two are kept disjoint (a fact restored by rederivation simply leaves
  // `del` again), so a premise's pre-epoch truth is exactly
  //   (Visible(state, f) && !ins.Contains(f)) || del.Contains(f).

  /// Repairs the base state's model stratum by stratum against `delta`.
  /// On error the model is only partially repaired; the caller must drop
  /// it (ApplyBaseDelta does).
  Status RepairBaseModel(State* state, const BaseDelta& delta, WorkCtx* work);

  /// Repairs one stratum: skip (irrelevant), delta rounds (insertions
  /// and/or DRed), or recompute-and-diff, extending ins/del in place.
  Status RepairStratum(State* state, int stratum, Database* ins,
                       Database* del, WorkCtx* work);

  /// The delta-round path: DRed overdeletion + physical removal +
  /// rederivation for retractions, then insertion semi-naive rounds.
  Status RepairStratumIncremental(State* state, int stratum, Database* ins,
                                  Database* del, WorkCtx* work);

  /// The fallback path: snapshot the stratum's pre-repair visible head
  /// relations, clear and recompute them from scratch, and diff old vs
  /// new into ins/del. Used when the delta can flip a negated premise or
  /// reaches a hypothetical one (child models change wholesale).
  Status RepairStratumRecompute(State* state, int stratum, Database* ins,
                                Database* del, WorkCtx* work);

  /// True iff some rule of `stratum` derives `fact` in the CURRENT model
  /// (DRed's rederivation test, run after overdeleted facts are removed).
  StatusOr<bool> HeadDerivable(const Fact& fact, int stratum, State* state,
                               WorkCtx* work);

  /// VM executor host: mirrors WalkPlan's per-step semantics and counter
  /// order. A nested class (rather than a function-local one) because it
  /// needs a member template — AcceptRow sees both Database::Scan::Row
  /// and Tuple rows — which local classes cannot declare. Defined in
  /// bottom_up.cc.
  template <typename EmitFn>
  struct VmHost;

  /// Runs one compiled program against `ctx` (VM executor). `emit`
  /// receives the complete register file per instantiation and follows
  /// the sink protocol (false stops the enumeration). Instantiated only
  /// in bottom_up.cc.
  template <typename EmitFn>
  StatusOr<bool> RunProgram(const std::vector<Premise>& premises,
                            const vm::Program& prog, EvalCtx* ctx,
                            const EmitFn& emit);

  /// Evaluates one rule version over `ctx->state`, inserting derived
  /// heads into the model; predicates that gained tuples go to `changed`
  /// (a set: one entry per predicate per round, not per fact), and the
  /// new facts themselves to `next_delta` when delta tracking is on.
  /// With ctx->buffer set (parallel rounds) derived heads go to the
  /// buffer instead and both out-params must be null.
  Status EvaluateRule(int rule_index, EvalCtx* ctx, Database* next_delta,
                      std::unordered_set<PredicateId>* changed);

  /// Recursive plan walker shared by rule evaluation and queries.
  /// `sink` returns false to stop enumeration early. The walker returns
  /// false iff the sink stopped it.
  StatusOr<bool> WalkPlan(const std::vector<Premise>& premises,
                          const BodyPlan& plan, size_t step,
                          Binding* binding, EvalCtx* ctx,
                          const std::function<StatusOr<bool>(
                              const Binding&)>& sink);

  /// Tests a fully ground hypothetical premise against `state`.
  StatusOr<bool> TestHypothetical(State* state, const Fact& query,
                                  const std::vector<Fact>& additions,
                                  WorkCtx* work);

  /// True iff some extension of `binding` matches `atom` in `state`;
  /// probes the generalized access paths on all bound columns.
  bool ExistsMatch(const State& state, const Atom& atom, Binding* binding,
                   WorkCtx* work);

  Status CheckLimits(WorkCtx* work);

  /// Approximate bytes attributable to one memoized state: model contents
  /// (ext.ApproxBytes()) plus struct/key/id-set overhead. The unit both
  /// the incremental accounting and RecomputeTrackedBytes sum in.
  static int64_t StateBytes(const State& s);

  /// Total approximate engine memory for the QueryGuard budget: tracked
  /// state bytes (plus this thread's unflushed delta) and both interners.
  /// O(1), safe at metering frequency from any evaluation thread.
  int64_t MemoryBytes(const WorkCtx* work) const;

  /// Re-sums tracked_bytes_ exactly over the live states. Called when a
  /// memory budget arms, so budgeted queries start from truth instead of
  /// inheriting drift left by earlier error paths or abandoned buffers.
  void RecomputeTrackedBytes();

  /// Counts one domain-grounding iteration and enforces max_steps on
  /// enumeration-heavy plans (checked every 256 iterations so purely
  /// extensional domain^n loops cannot run away unmetered). Inline: the
  /// fast path must cost one increment and one predictable branch.
  Status CountEnumeration(WorkCtx* work) {
    if ((++work->stats->enumerations & 255) != 0) return Status::OK();
    return CheckLimits(work);
  }

  const RuleBase* rulebase_;
  const Database* base_;
  EngineOptions options_;

  NegationStrata strata_;
  std::vector<BodyPlan> rule_plans_;
  /// Compiled programs per active-program rule; empty when the executor
  /// is kInterp. Rebuilt with the plans (Init, demand refresh, server
  /// epoch replans).
  std::vector<RuleProgs> rule_programs_;
  std::vector<RuleDeltaInfo> rule_delta_info_;
  /// Base-relation cardinalities the current plans were ordered against
  /// (positive-premise predicates of the active program). A server epoch
  /// whose netted delta moves any of them by more than 2x triggers a
  /// replan + recompile (ApplyBaseDelta).
  std::vector<std::pair<PredicateId, int64_t>> planned_counts_;
  /// Every (predicate, probe-mask) signature any plan step of the active
  /// program can probe at runtime, deduplicated. The parallel fixpoint
  /// PrepareIndex()es all of them before sealing a database, so sealed
  /// probes always find an up-to-date index.
  std::vector<std::pair<PredicateId, ColumnMask>> static_sigs_;
  std::vector<ConstId> domain_;
  std::unordered_set<ConstId> domain_set_;
  std::vector<ConstId> extra_constants_;

  // Demand-driven evaluation (options_.demand). The profile accumulates
  // monotonically over the engine's lifetime; the program is rebuilt (and
  // demand_version_ bumped) whenever the profile widens.
  std::unique_ptr<DemandProfile> demand_profile_;
  std::unique_ptr<DemandProgram> demand_program_;
  int demand_version_ = 0;

  /// Guards interner_ and ctx_interner_ (the only tables workers mutate
  /// outside the state cache). Never held while acquiring a cache-shard
  /// lock, so the shard-then-intern lock order is acyclic.
  std::mutex intern_mu_;
  FactInterner interner_;
  ContextInterner ctx_interner_;

  ShardedStateCache<State> states_;

  /// Persistent cross-query cache (optional; see AttachMemoBoard). Only
  /// the base state's whole model is shared — hypothetical child states
  /// stay engine-local (their keys are local fact ids, and workers touch
  /// them concurrently). domain_fp_ keys published models so engines
  /// whose domains diverged (extra query constants) never cross-adopt.
  MemoBoard* board_ = nullptr;
  uint64_t domain_fp_ = 0;

  QueryGuard guard_;
  /// Approximate bytes held by all memoized states' models (contents plus
  /// per-state overhead), maintained incrementally: evaluation threads
  /// accumulate into WorkCtx::local_bytes and flush here at metering
  /// checks. Atomic because workers flush while others read it through
  /// the guard's memory check. Per-round delta/buffer databases are
  /// transient and deliberately uncounted.
  std::atomic<int64_t> tracked_bytes_{0};

  /// The work-stealing pool behind parallel rounds: num_threads - 1
  /// workers (the calling thread participates). Null when num_threads
  /// <= 1 — that path never touches any parallel machinery.
  std::unique_ptr<ThreadPool> pool_;

  mutable EngineStats stats_;
  /// Index builds on per-round delta relations already destroyed;
  /// stats() adds the live databases' counts on top. Atomic: child-state
  /// computations on workers retire their own deltas concurrently.
  std::atomic<int64_t> retired_index_builds_{0};
  bool initialized_ = false;
};

}  // namespace hypo

#endif  // HYPO_ENGINE_BOTTOM_UP_H_
