#ifndef HYPO_ENGINE_BOTTOM_UP_H_
#define HYPO_ENGINE_BOTTOM_UP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#include <functional>

#include "analysis/demand_transform.h"
#include "analysis/stratification.h"
#include "base/hash.h"
#include "db/fact_interner.h"
#include "engine/binding.h"
#include "engine/engine.h"
#include "engine/plan.h"

namespace hypo {

/// The reference evaluation procedure for hypothetical rulebases with
/// stratified negation (§3 + §3.1): a memoized, per-database-state
/// perfect-model computation.
///
/// A *state* is the base database plus a set of hypothetically added
/// facts. For each state the engine computes the perfect model bottom-up,
/// stratum by stratum; a hypothetical premise `A[add: C̄]` encountered
/// during the fixpoint triggers (memoized) evaluation of the strictly
/// larger state `DB + C̄`, or degenerates to a positive premise when every
/// added fact is already a database fact of the current state. States only
/// grow, so the recursion is well-founded; the number of states can be
/// exponential in the database (the paper's PSPACE-hardness), which the
/// `max_states` option converts into a clean error.
///
/// With `EngineOptions::demand` the engine evaluates the magic-set rewrite
/// of the rulebase instead (analysis/demand_transform.h): each query seeds
/// the magic relations of the state it probes, rules run guarded so only
/// demanded slices are derived, and per-state models are computed only
/// through the stratum the query needs (`State::completed_through`). The
/// demand profile widens monotonically across queries; memoized states are
/// kept and monotonically *re-extended* (their models are append-only sets
/// of true facts, so re-running the strata under a wider profile only adds
/// facts — see DESIGN.md for why answers are unchanged).
///
/// This engine makes no linearity assumption — it accepts every rulebase
/// the paper's inference system defines (Definition 3 + stratified NAF) —
/// and serves as the ground-truth oracle the StratifiedProver is
/// cross-checked against.
class BottomUpEngine : public Engine {
 public:
  /// Neither pointer is owned; both must outlive the engine.
  BottomUpEngine(const RuleBase* rulebase, const Database* db,
                 EngineOptions options = EngineOptions());

  Status Init() override;
  StatusOr<bool> ProveFact(const Fact& fact) override;
  StatusOr<bool> ProveQuery(const Query& query) override;
  StatusOr<std::vector<Tuple>> Answers(const Query& query) override;

  /// All tuples of `pred` derivable at the base state (extensional plus
  /// derived). Convenience for examples and tests. Under demand this
  /// registers full demand for `pred` (the whole relation is asked for).
  StatusOr<std::vector<Tuple>> FactsFor(PredicateId pred);

  const EngineStats& stats() const override;
  void ResetStats() override {
    stats_ = EngineStats();
    retired_index_builds_ = 0;
  }
  std::string name() const override { return "bottom-up"; }

  /// Number of distinct database states currently memoized.
  int64_t num_states() const { return static_cast<int64_t>(states_.size()); }

 private:
  using StateKey = std::vector<FactId>;
  struct StateKeyHash {
    size_t operator()(const StateKey& k) const {
      return static_cast<size_t>(HashVector(k, k.size()));
    }
  };

  struct State {
    StateKey key;                           // Sorted added-fact ids.
    std::unordered_set<FactId> added_set;   // Same ids, for membership.
    Database ext;                           // Added + derived facts.
    /// Highest stratum whose fixpoint has completed for this state under
    /// the current demand (-1 = none). Without demand every state is
    /// computed through the last stratum on materialization; with demand
    /// this grows monotonically as queries ask deeper.
    int completed_through = -1;
    /// The demand_version_ the model was last (re)computed under; a
    /// mismatch means the transformed program changed (profile widened)
    /// and the state must be re-extended before use.
    int demand_version = 0;
    /// True while a (re)computation is running: a model left behind by an
    /// aborted ComputeModel is incomplete and must be recomputed on the
    /// next touch, not served from the memo (abort recovery).
    bool dirty = false;

    explicit State(std::shared_ptr<SymbolTable> symbols)
        : ext(std::move(symbols)) {}
  };

  /// Static per-rule facts for the tuple-level semi-naive rewrite,
  /// computed once per program build against the rule's own stratum.
  struct RuleDeltaInfo {
    /// Positive premises whose predicate can gain tuples during the
    /// rule's stratum fixpoint; each is designated as the delta premise
    /// of one rewritten rule version.
    std::vector<int> delta_premises;
    /// Queried predicates of hypothetical premises that live in the same
    /// stratum: `A[add: C̄]` degenerates to a Visible(A) check when every
    /// C is already present, so the premise can flip as A's relation
    /// grows — such rules fall back to full re-evaluation in rounds
    /// where one of these predicates changed.
    std::vector<PredicateId> hypo_sensitive_preds;
  };

  /// Per-round evaluation context threaded through WalkPlan: the state
  /// under construction plus the optional delta designation.
  struct EvalCtx {
    State* state = nullptr;
    int delta_premise = -1;          // Designated premise index, or -1.
    const Database* delta = nullptr; // Last round's newly derived tuples.
  };

  /// The program the fixpoint actually evaluates: the magic-set rewrite
  /// when demand is active, the original rulebase otherwise.
  const RuleBase& active() const {
    return demand_program_ != nullptr ? demand_program_->rules : *rulebase_;
  }

  /// True iff `fact` holds in `state` (base database or ext model).
  bool Visible(const State& state, const Fact& fact) const {
    return base_->Contains(fact) || state.ext.Contains(fact);
  }

  /// Re-initializes the domain (and drops all memoized states) if the
  /// query mentions constants outside the current domain.
  Status EnsureConstants(const Query& query);

  /// Same for a probed ground fact: its constants join dom(R, DB) for
  /// this and later evaluations (Definition 3's domain, extended by the
  /// constants the caller introduces).
  Status EnsureFactConstants(const Fact& fact);

  /// Recomputes strata / plans / delta info over active(). Called by
  /// Init() and whenever the demand program is rebuilt.
  Status RebuildActivePlans();

  /// Rebuilds the demand program when forced or when the profile widened
  /// since the last build; bumps demand_version_ so memoized states are
  /// re-extended lazily on their next touch.
  Status RefreshDemandProgram(bool widened);

  /// Registers query/fact demand with the profile, rebuilds the program
  /// if it widened, and emits the magic seed facts plus the stratum the
  /// top state must be computed through. No-ops (through = last stratum)
  /// when demand is off.
  Status PrepareFactDemand(const Fact& fact, std::vector<Fact>* seeds,
                           int* through);
  Status PrepareQueryDemand(const Query& query, std::vector<Fact>* seeds,
                            int* through);

  /// Stratum the model must reach for `pred` to be complete: its stratum
  /// in the active program (-1 for extensional predicates, which need no
  /// rules at all). Only meaningful under demand; without it callers use
  /// the last stratum.
  int StratumCap(PredicateId pred) const;

  /// Returns the state for `key` with `seeds` inserted into its magic
  /// relations and its model computed through stratum `through` (both
  /// monotone: a new seed or a wider program triggers a re-extension run,
  /// a lower `through` never un-computes anything).
  StatusOr<State*> MaterializeState(const StateKey& key, int through,
                                    const std::vector<Fact>& seeds);

  Status ComputeModel(State* state, int through);

  /// Evaluates one rule version over `ctx->state`, inserting derived
  /// heads into the model; predicates that gained tuples go to `changed`
  /// (a set: one entry per predicate per round, not per fact), and the
  /// new facts themselves to `next_delta` when delta tracking is on.
  Status EvaluateRule(int rule_index, EvalCtx* ctx, Database* next_delta,
                      std::unordered_set<PredicateId>* changed);

  /// Recursive plan walker shared by rule evaluation and queries.
  /// `sink` returns false to stop enumeration early. The walker returns
  /// false iff the sink stopped it.
  StatusOr<bool> WalkPlan(const std::vector<Premise>& premises,
                          const BodyPlan& plan, size_t step,
                          Binding* binding, EvalCtx* ctx,
                          const std::function<StatusOr<bool>(
                              const Binding&)>& sink);

  /// Tests a fully ground hypothetical premise against `state`.
  StatusOr<bool> TestHypothetical(State* state, const Fact& query,
                                  const std::vector<Fact>& additions);

  /// True iff some extension of `binding` matches `atom` in `state`;
  /// probes the generalized access paths on all bound columns.
  bool ExistsMatch(const State& state, const Atom& atom, Binding* binding);

  Status CheckLimits();

  /// Counts one domain-grounding iteration and enforces max_steps on
  /// enumeration-heavy plans (checked every 256 iterations so purely
  /// extensional domain^n loops cannot run away unmetered). Inline: the
  /// fast path must cost one increment and one predictable branch.
  Status CountEnumeration() {
    if ((++stats_.enumerations & 255) != 0) return Status::OK();
    return CheckLimits();
  }

  const RuleBase* rulebase_;
  const Database* base_;
  EngineOptions options_;

  NegationStrata strata_;
  std::vector<BodyPlan> rule_plans_;
  std::vector<RuleDeltaInfo> rule_delta_info_;
  std::vector<ConstId> domain_;
  std::unordered_set<ConstId> domain_set_;
  std::vector<ConstId> extra_constants_;

  // Demand-driven evaluation (options_.demand). The profile accumulates
  // monotonically over the engine's lifetime; the program is rebuilt (and
  // demand_version_ bumped) whenever the profile widens.
  std::unique_ptr<DemandProfile> demand_profile_;
  std::unique_ptr<DemandProgram> demand_program_;
  int demand_version_ = 0;

  FactInterner interner_;
  std::unordered_map<StateKey, std::unique_ptr<State>, StateKeyHash> states_;

  mutable EngineStats stats_;
  /// Index builds on per-round delta relations already destroyed;
  /// stats() adds the live databases' counts on top.
  int64_t retired_index_builds_ = 0;
  bool initialized_ = false;
};

}  // namespace hypo

#endif  // HYPO_ENGINE_BOTTOM_UP_H_
