#ifndef HYPO_ENGINE_SCAN_H_
#define HYPO_ENGINE_SCAN_H_

#include <algorithm>

#include "ast/rule.h"
#include "db/database.h"
#include "db/overlay.h"
#include "engine/binding.h"

namespace hypo {

/// Resolves `atom`'s first argument under `binding`: the constant it is
/// already fixed to, or kInvalidConst when it is an unbound variable (or
/// the atom is 0-ary).
inline ConstId ResolvedFirstArg(const Atom& atom, const Binding& binding) {
  if (atom.args.empty()) return kInvalidConst;
  const Term& t = atom.args[0];
  if (t.is_const()) return t.const_id();
  return binding.IsBound(t.var_index()) ? binding.Value(t.var_index())
                                        : kInvalidConst;
}

/// Computes the bound-column signature of `atom` under `binding`: the
/// mask of columns whose value is already fixed (a constant, or a bound
/// variable) and, in `key`, the fixed values in increasing column order.
/// Columns past kMaxIndexedColumns are ignored (left to MatchTuple's
/// post-filter). Returns 0 when no column is fixed.
inline ColumnMask BoundSignature(const Atom& atom, const Binding& binding,
                                 Tuple* key) {
  ColumnMask mask = 0;
  key->clear();
  int limit = std::min<int>(static_cast<int>(atom.args.size()),
                            kMaxIndexedColumns);
  for (int i = 0; i < limit; ++i) {
    const Term& t = atom.args[i];
    if (t.is_const()) {
      mask |= 1u << i;
      key->push_back(t.const_id());
    } else if (binding.IsBound(t.var_index())) {
      mask |= 1u << i;
      key->push_back(binding.Value(t.var_index()));
    }
  }
  return mask;
}

/// Invokes `fn(tuple)` for each stored tuple of `atom`'s predicate in
/// `db` that can possibly match: the hash-index bucket for the full
/// bound-column signature when any column is bound (built on demand by
/// Database::ProbeIndex), the full relation otherwise. `fn` returns
/// false to stop; ForEachBaseCandidate then returns false.
///
/// The scan is *snapshot-bounded*: only tuples stored when the scan
/// started are visited, even though `fn` may insert into the same
/// relation while the scan is in flight. This keeps fixpoint rounds
/// honest (a round joins exactly the previous rounds' tuples, so the
/// naive/rule-filter/delta strategies do comparable per-round work) and
/// is realloc-safe: iteration indexes through the stable vector objects
/// (relation and bucket nodes never move in their unordered_maps), never
/// through a saved data pointer.
template <typename Fn>
bool ForEachBaseCandidate(const Database& db, const Atom& atom,
                          const Binding& binding, Fn&& fn) {
  Tuple key;
  ColumnMask mask = BoundSignature(atom, binding, &key);
  if (mask != 0) {
    const std::vector<int>* subset =
        db.ProbeIndex(atom.predicate, mask, key);
    if (subset == nullptr) return true;
    if (subset != Database::ScanAllMarker()) {
      const std::vector<Tuple>& all = db.TuplesFor(atom.predicate);
      const size_t n = subset->size();
      for (size_t i = 0; i < n; ++i) {
        if (!fn(all[(*subset)[i]])) return false;
      }
      return true;
    }
    // Sealed database without an up-to-date index for this signature:
    // fall through to the full scan. Callers post-filter with MatchTuple,
    // so correctness is unaffected — only the access path degrades.
  }
  const std::vector<Tuple>& all = db.TuplesFor(atom.predicate);
  const size_t n = all.size();
  for (size_t i = 0; i < n; ++i) {
    if (!fn(all[i])) return false;
  }
  return true;
}

/// The overlay-additions counterpart of ForEachBaseCandidate: invokes
/// `fn(tuple)` for each hypothetically added tuple of `atom`'s predicate
/// that can possibly match — the first-argument bucket when the first
/// argument is bound, all added tuples otherwise. Masked tuples are NOT
/// filtered here; callers check TupleVisible as part of `fn`. `fn` returns
/// false to stop; ForEachAddedCandidate then returns false.
///
/// Like the base version, iteration is index-based over stable-by-prefix
/// vectors, so `fn` may push and pop overlay frames (growing and shrinking
/// the tail of the relation) while the scan is in flight.
template <typename Fn>
bool ForEachAddedCandidate(const OverlayDatabase& overlay, const Atom& atom,
                           const Binding& binding, Fn&& fn) {
  ConstId first = ResolvedFirstArg(atom, binding);
  if (first != kInvalidConst) {
    const std::vector<int>* subset =
        overlay.AddedTuplesWithFirstArg(atom.predicate, first);
    if (subset == nullptr) return true;
    const std::vector<Tuple>& all = overlay.AddedTuplesFor(atom.predicate);
    for (size_t i = 0; i < subset->size(); ++i) {
      if (!fn(all[(*subset)[i]])) return false;
    }
    return true;
  }
  const std::vector<Tuple>& all = overlay.AddedTuplesFor(atom.predicate);
  for (size_t i = 0; i < all.size(); ++i) {
    if (!fn(all[i])) return false;
  }
  return true;
}

}  // namespace hypo

#endif  // HYPO_ENGINE_SCAN_H_
