#ifndef HYPO_ENGINE_SCAN_H_
#define HYPO_ENGINE_SCAN_H_

#include <algorithm>

#include "ast/rule.h"
#include "db/database.h"
#include "db/overlay.h"
#include "engine/binding.h"

namespace hypo {

/// Computes the bound-column signature of `atom` under `binding`: the
/// mask of columns whose value is already fixed (a constant, or a bound
/// variable) and, in `key`, the fixed values in increasing column order.
/// Columns past kMaxIndexedColumns are ignored (left to MatchTuple's
/// post-filter). Returns 0 when no column is fixed.
inline ColumnMask BoundSignature(const Atom& atom, const Binding& binding,
                                 Tuple* key) {
  ColumnMask mask = 0;
  key->clear();
  int limit = std::min<int>(static_cast<int>(atom.args.size()),
                            kMaxIndexedColumns);
  for (int i = 0; i < limit; ++i) {
    const Term& t = atom.args[i];
    if (t.is_const()) {
      mask |= 1u << i;
      key->push_back(t.const_id());
    } else if (binding.IsBound(t.var_index())) {
      mask |= 1u << i;
      key->push_back(binding.Value(t.var_index()));
    }
  }
  return mask;
}

/// Invokes `fn(row)` for each stored tuple of `atom`'s predicate in `db`
/// that can possibly match: the index subset for the full bound-column
/// signature when any column is bound (a sorted range or hash bucket,
/// per Database::ForEachCandidate), the full relation otherwise. `row`
/// is backend-native — const Tuple& on the reference backend, a columnar
/// RowRef otherwise — so `fn` must be a generic lambda; it returns false
/// to stop, and ForEachBaseCandidate then returns false.
///
/// Snapshot-bounded and realloc-safe per ForEachCandidate's contract:
/// `fn` may insert into the same relation while the scan is in flight.
template <typename Fn>
bool ForEachBaseCandidate(const Database& db, const Atom& atom,
                          const Binding& binding, Fn&& fn) {
  Tuple key;
  ColumnMask mask = BoundSignature(atom, binding, &key);
  return db.ForEachCandidate(atom.predicate, mask, key, std::forward<Fn>(fn));
}

/// The overlay-additions counterpart of ForEachBaseCandidate: invokes
/// `fn(tuple)` for each hypothetically added tuple of `atom`'s predicate
/// that can possibly match — the bound-column-signature bucket when any
/// column is bound (built on demand by OverlayDatabase::AddedProbe), all
/// added tuples otherwise. Masked tuples are NOT filtered here; callers
/// check TupleVisible as part of `fn`. `fn` returns false to stop;
/// ForEachAddedCandidate then returns false.
///
/// Iteration is index-based over stable-by-prefix vectors, so `fn` may
/// push and pop overlay frames (growing and shrinking the tail of the
/// relation) while the scan is in flight.
template <typename Fn>
bool ForEachAddedCandidate(const OverlayDatabase& overlay, const Atom& atom,
                           const Binding& binding, Fn&& fn) {
  Tuple key;
  ColumnMask mask = BoundSignature(atom, binding, &key);
  const std::vector<Tuple>& all = overlay.AddedTuplesFor(atom.predicate);
  if (mask != 0) {
    const std::vector<RowId>* subset =
        overlay.AddedProbe(atom.predicate, mask, key);
    if (subset == nullptr) return true;
    // Dynamic bound: `fn` may pop frames, trimming the bucket under us.
    for (size_t i = 0; i < subset->size(); ++i) {
      if (!fn(all[(*subset)[i]])) return false;
    }
    return true;
  }
  for (size_t i = 0; i < all.size(); ++i) {
    if (!fn(all[i])) return false;
  }
  return true;
}

}  // namespace hypo

#endif  // HYPO_ENGINE_SCAN_H_
