#ifndef HYPO_ENGINE_SCAN_H_
#define HYPO_ENGINE_SCAN_H_

#include "ast/rule.h"
#include "db/database.h"
#include "db/overlay.h"
#include "engine/binding.h"

namespace hypo {

/// Resolves `atom`'s first argument under `binding`: the constant it is
/// already fixed to, or kInvalidConst when it is an unbound variable (or
/// the atom is 0-ary).
inline ConstId ResolvedFirstArg(const Atom& atom, const Binding& binding) {
  if (atom.args.empty()) return kInvalidConst;
  const Term& t = atom.args[0];
  if (t.is_const()) return t.const_id();
  return binding.IsBound(t.var_index()) ? binding.Value(t.var_index())
                                        : kInvalidConst;
}

/// Invokes `fn(tuple)` for each stored tuple of `atom`'s predicate in
/// `db` that can possibly match: the first-argument index bucket when the
/// first argument is bound, the full relation otherwise. `fn` returns
/// false to stop; ForEachBaseCandidate then returns false.
///
/// Safe against concurrent growth of the relation (iterates by index over
/// a stable prefix), matching the fixpoint loops' expectations.
template <typename Fn>
bool ForEachBaseCandidate(const Database& db, const Atom& atom,
                          const Binding& binding, Fn&& fn) {
  ConstId first = ResolvedFirstArg(atom, binding);
  if (first != kInvalidConst) {
    const std::vector<int>* subset =
        db.TuplesWithFirstArg(atom.predicate, first);
    if (subset == nullptr) return true;
    const std::vector<Tuple>& all = db.TuplesFor(atom.predicate);
    for (size_t i = 0; i < subset->size(); ++i) {
      if (!fn(all[(*subset)[i]])) return false;
    }
    return true;
  }
  const std::vector<Tuple>& all = db.TuplesFor(atom.predicate);
  for (size_t i = 0; i < all.size(); ++i) {
    if (!fn(all[i])) return false;
  }
  return true;
}

/// The overlay-additions counterpart of ForEachBaseCandidate: invokes
/// `fn(tuple)` for each hypothetically added tuple of `atom`'s predicate
/// that can possibly match — the first-argument bucket when the first
/// argument is bound, all added tuples otherwise. Masked tuples are NOT
/// filtered here; callers check TupleVisible as part of `fn`. `fn` returns
/// false to stop; ForEachAddedCandidate then returns false.
///
/// Like the base version, iteration is index-based over stable-by-prefix
/// vectors, so `fn` may push and pop overlay frames (growing and shrinking
/// the tail of the relation) while the scan is in flight.
template <typename Fn>
bool ForEachAddedCandidate(const OverlayDatabase& overlay, const Atom& atom,
                           const Binding& binding, Fn&& fn) {
  ConstId first = ResolvedFirstArg(atom, binding);
  if (first != kInvalidConst) {
    const std::vector<int>* subset =
        overlay.AddedTuplesWithFirstArg(atom.predicate, first);
    if (subset == nullptr) return true;
    const std::vector<Tuple>& all = overlay.AddedTuplesFor(atom.predicate);
    for (size_t i = 0; i < subset->size(); ++i) {
      if (!fn(all[(*subset)[i]])) return false;
    }
    return true;
  }
  const std::vector<Tuple>& all = overlay.AddedTuplesFor(atom.predicate);
  for (size_t i = 0; i < all.size(); ++i) {
    if (!fn(all[i])) return false;
  }
  return true;
}

}  // namespace hypo

#endif  // HYPO_ENGINE_SCAN_H_
