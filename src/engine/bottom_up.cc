#include "engine/bottom_up.h"

#include "engine/scan.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "analysis/restricted.h"
#include "base/failpoint.h"
#include "base/stopwatch.h"
#include "engine/memo_board.h"
#include "engine/vm/compiler.h"
#include "engine/vm/executor.h"

namespace hypo {

namespace {

/// Collects the constants mentioned by a query (they extend dom(R, DB)).
std::vector<ConstId> QueryConstants(const Query& query) {
  std::vector<ConstId> out;
  auto collect = [&out](const Atom& atom) {
    for (const Term& t : atom.args) {
      if (t.is_const()) out.push_back(t.const_id());
    }
  };
  for (const Premise& p : query.premises) {
    collect(p.atom);
    for (const Atom& a : p.additions) collect(a);
  }
  return out;
}

/// A pseudo-head listing every variable of the query, so the plan
/// enumerates unbound variables and Answers() returns total bindings.
Atom PseudoHead(const Query& query) {
  Atom head;
  head.predicate = kInvalidPredicate;
  for (int v = 0; v < query.num_vars(); ++v) {
    head.args.push_back(Term::MakeVar(v));
  }
  return head;
}

/// The demand mask a query-root atom contributes: its constant argument
/// positions (variables are free at the root — bindings flowing in from
/// sibling premises are not adornments, so this is conservative).
AdornMask ConstMask(const Atom& atom) {
  AdornMask mask = 0;
  const int limit =
      std::min<int>(static_cast<int>(atom.args.size()), kMaxIndexedColumns);
  for (int i = 0; i < limit; ++i) {
    if (atom.args[i].is_const()) mask |= 1u << i;
  }
  return mask;
}

/// All-positions-bound mask for a ground fact probe.
AdornMask GroundMask(size_t arity) {
  if (arity >= static_cast<size_t>(kMaxIndexedColumns)) return ~0u;
  return arity == 0 ? 0u : ((1u << arity) - 1u);
}

/// The premise a full (non-delta) rule version is sharded on: the plan's
/// first positive match, whose candidate tuples partition the rule's
/// instantiations. -1 when the rule has no positive premise (the version
/// then runs whole in shard 0).
int FirstPositivePremise(const BodyPlan& plan) {
  for (const PlanStep& step : plan.steps) {
    if (step.kind == PlanStep::Kind::kMatchPositive) return step.premise_index;
  }
  return -1;
}

/// RAII unseal for the databases a parallel phase froze; UnsealIndexes is
/// idempotent, so early explicit unseals (before the barrier merge) are
/// fine.
struct Unsealer {
  const Database* db;
  explicit Unsealer(const Database* d) : db(d) {}
  ~Unsealer() {
    if (db != nullptr) db->UnsealIndexes();
  }
  Unsealer(const Unsealer&) = delete;
  Unsealer& operator=(const Unsealer&) = delete;
};

}  // namespace

BottomUpEngine::BottomUpEngine(const RuleBase* rulebase, const Database* db,
                               EngineOptions options)
    : rulebase_(rulebase), base_(db), options_(options) {}

Status BottomUpEngine::Init() {
  if (rulebase_->symbols_ptr().get() != base_->symbols_ptr().get()) {
    return Status::InvalidArgument(
        "rulebase and database must share one SymbolTable");
  }
  if (rulebase_->HasDeletions()) {
    return Status::Unimplemented(
        "hypothetical deletion ([del: ...]) is supported only by "
        "TabledEngine; the eager engine's state lattice relies on states "
        "only growing");
  }
  // The *original* program must stratify even when demand will evaluate
  // the rewrite (the rewrite only adds positive dependencies on fresh
  // magic predicates, so it stratifies whenever the original does).
  HYPO_RETURN_IF_ERROR(ComputeNegationStrata(*rulebase_).status());
  HYPO_RETURN_IF_ERROR(CheckRuleRestrictions(*rulebase_));
  if (options_.demand && demand_profile_ == nullptr) {
    demand_profile_ = std::make_unique<DemandProfile>(rulebase_);
  }
  if (options_.num_threads >= 2 && pool_ == nullptr) {
    // N-way parallelism = N-1 workers + the calling thread (RunBatch
    // callers participate).
    pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1);
  }
  HYPO_RETURN_IF_ERROR(RebuildActivePlans());

  domain_ = ComputeDomain(*rulebase_, *base_, extra_constants_);
  domain_set_.clear();
  domain_set_.insert(domain_.begin(), domain_.end());
  domain_fp_ = DomainFingerprint(domain_);
  states_.Clear();
  tracked_bytes_.store(0, std::memory_order_relaxed);
  ++stats_.domain_rebuilds;
  initialized_ = true;
  return Status::OK();
}

Status BottomUpEngine::RebuildActivePlans() {
  const RuleBase& program = active();
  HYPO_ASSIGN_OR_RETURN(strata_, ComputeNegationStrata(program));
  rule_plans_.clear();
  rule_plans_.reserve(program.num_rules());
  for (const Rule& rule : program.rules()) {
    rule_plans_.push_back(
        BodyPlan::Build(rule.premises, &rule.head, rule.num_vars(), base_));
  }

  // Per-stratum "changing" predicate sets (heads of the stratum's rules)
  // drive the semi-naive rewrite: only those relations can gain tuples
  // while their stratum's fixpoint runs.
  std::vector<std::unordered_set<PredicateId>> changing(strata_.num_strata);
  for (int s = 0; s < strata_.num_strata; ++s) {
    for (int r : strata_.rules_by_stratum[s]) {
      changing[s].insert(program.rule(r).head.predicate);
    }
  }
  rule_delta_info_.assign(program.num_rules(), RuleDeltaInfo{});
  for (int s = 0; s < strata_.num_strata; ++s) {
    for (int r : strata_.rules_by_stratum[s]) {
      const Rule& rule = program.rule(r);
      RuleDeltaInfo& info = rule_delta_info_[r];
      for (int i = 0; i < static_cast<int>(rule.premises.size()); ++i) {
        const Premise& p = rule.premises[i];
        if (changing[s].count(p.atom.predicate) == 0) continue;
        if (p.kind == PremiseKind::kPositive) {
          info.delta_premises.push_back(i);
        } else if (p.kind == PremiseKind::kHypothetical) {
          info.hypo_sensitive_preds.push_back(p.atom.predicate);
        }
        // Negated premises live strictly below their rule's stratum
        // (stratified negation), so they can never flip mid-fixpoint.
      }
    }
  }

  // Every probe signature any plan step can issue at runtime, for the
  // parallel fixpoint's prepare-then-seal choreography. The static
  // probe_mask equals the runtime BoundSignature exactly, so a sealed
  // database prepared with these never degrades to a full scan.
  static_sigs_.clear();
  std::unordered_set<uint64_t> sig_seen;
  for (int r = 0; r < program.num_rules(); ++r) {
    const Rule& rule = program.rule(r);
    for (const PlanStep& step : rule_plans_[r].steps) {
      if (step.probe_mask == 0) continue;
      if (step.kind != PlanStep::Kind::kMatchPositive &&
          step.kind != PlanStep::Kind::kNegated) {
        continue;
      }
      PredicateId pred = rule.premises[step.premise_index].atom.predicate;
      uint64_t sig =
          (static_cast<uint64_t>(static_cast<uint32_t>(pred)) << 32) |
          step.probe_mask;
      if (sig_seen.insert(sig).second) {
        static_sigs_.emplace_back(pred, step.probe_mask);
      }
    }
  }

  // Base cardinalities the greedy premise ordering just consulted, for
  // the server-epoch staleness check (ApplyBaseDelta replans when any of
  // them moves by more than 2x).
  planned_counts_.clear();
  {
    std::unordered_set<PredicateId> watched;
    for (const Rule& rule : program.rules()) {
      for (const Premise& p : rule.premises) {
        if (p.kind != PremiseKind::kPositive) continue;
        if (watched.insert(p.atom.predicate).second) {
          planned_counts_.emplace_back(p.atom.predicate,
                                       base_->CountFor(p.atom.predicate));
        }
      }
    }
  }

  // Lower every rule version to bytecode once; the fixpoint rounds then
  // dispatch flat programs instead of re-walking the plan per candidate.
  rule_programs_.clear();
  if (options_.executor == ExecutorKind::kVm) {
    rule_programs_.resize(program.num_rules());
    for (int r = 0; r < program.num_rules(); ++r) {
      const Rule& rule = program.rule(r);
      vm::CompileInput in;
      in.premises = &rule.premises;
      in.plan = &rule_plans_[r];
      in.num_vars = rule.num_vars();
      rule_programs_[r].full = vm::Compile(in);
      ++stats_.vm_programs_compiled;
      for (int i = 0; i < static_cast<int>(rule.premises.size()); ++i) {
        if (rule.premises[i].kind != PremiseKind::kPositive) continue;
        in.delta_premise = i;
        rule_programs_[r].deltas.emplace_back(i, vm::Compile(in));
        ++stats_.vm_programs_compiled;
      }
    }
  }
  return Status::OK();
}

Status BottomUpEngine::RefreshDemandProgram(bool widened) {
  if (demand_program_ != nullptr && !widened) return Status::OK();
  HYPO_ASSIGN_OR_RETURN(DemandProgram program,
                        BuildDemandProgram(*rulebase_, *demand_profile_));
  demand_program_ = std::make_unique<DemandProgram>(std::move(program));
  // Memoized states are kept: demand only widens, so their models hold
  // true facts of a subset of the new demanded slice. The version bump
  // makes the state cache re-extend each one lazily on its next touch.
  ++demand_version_;
  return RebuildActivePlans();
}

int BottomUpEngine::StratumCap(PredicateId pred) const {
  if (!active().IsDefined(pred)) return -1;  // Extensional: no rules run.
  if (pred < 0 ||
      pred >= static_cast<int>(strata_.stratum_of_pred.size())) {
    return strata_.num_strata - 1;
  }
  return strata_.stratum_of_pred[pred];
}

Status BottomUpEngine::PrepareFactDemand(const Fact& fact,
                                         std::vector<Fact>* seeds,
                                         int* through) {
  if (!options_.demand) {
    *through = strata_.num_strata - 1;
    return Status::OK();
  }
  bool widened = demand_program_ == nullptr;
  if (rulebase_->IsDefined(fact.predicate)) {
    widened |= demand_profile_->AddDemand(fact.predicate,
                                          GroundMask(fact.args.size()));
  }
  HYPO_RETURN_IF_ERROR(RefreshDemandProgram(widened));
  *through = StratumCap(fact.predicate);
  if (auto seed = MagicSeedForFact(*demand_profile_, *demand_program_, fact)) {
    seeds->push_back(std::move(*seed));
  }
  return Status::OK();
}

Status BottomUpEngine::PrepareQueryDemand(const Query& query,
                                          std::vector<Fact>* seeds,
                                          int* through) {
  if (!options_.demand) {
    *through = strata_.num_strata - 1;
    return Status::OK();
  }
  bool widened = demand_program_ == nullptr;
  for (const Premise& p : query.premises) {
    if (!rulebase_->IsDefined(p.atom.predicate)) continue;
    if (p.kind == PremiseKind::kNegated) {
      // ~A at the root needs A's complete relation (Tekle-Liu).
      widened |= demand_profile_->AddFullDemand(p.atom.predicate);
    } else {
      widened |= demand_profile_->AddDemand(p.atom.predicate,
                                            ConstMask(p.atom));
    }
  }
  HYPO_RETURN_IF_ERROR(RefreshDemandProgram(widened));
  int cap = -1;
  for (const Premise& p : query.premises) {
    if (!rulebase_->IsDefined(p.atom.predicate)) continue;
    // Hypothetical premises are included: when the additions turn out to
    // be already-present facts the test degenerates to a check against
    // *this* state's model (non-degenerate tests seed the child state in
    // TestHypothetical instead).
    cap = std::max(cap, StratumCap(p.atom.predicate));
    if (p.kind == PremiseKind::kNegated) continue;  // kFull: no seed.
    if (auto seed =
            MagicSeedForAtom(*demand_profile_, *demand_program_, p.atom)) {
      seeds->push_back(std::move(*seed));
    }
  }
  *through = cap;
  return Status::OK();
}

Status BottomUpEngine::EnsureConstants(const Query& query) {
  bool missing = false;
  for (ConstId c : QueryConstants(query)) {
    // Insert into domain_set_ up front so a constant seen twice in one
    // query (or across queries) lands in extra_constants_ exactly once.
    if (domain_set_.insert(c).second) {
      extra_constants_.push_back(c);
      missing = true;
    }
  }
  if (missing) {
    // The domain changed, so every memoized model is stale: re-run Init.
    return Init();
  }
  return Status::OK();
}

Status BottomUpEngine::EnsureFactConstants(const Fact& fact) {
  bool missing = false;
  for (ConstId c : fact.args) {
    if (domain_set_.insert(c).second) {
      extra_constants_.push_back(c);
      missing = true;
    }
  }
  if (missing) return Init();
  return Status::OK();
}

Status BottomUpEngine::CheckLimits(WorkCtx* work) {
  const int64_t states = states_.size();
  if (states > options_.max_states) {
    Status s = Status::ResourceExhausted(
        LimitTripMessage("max_states", options_.max_states, states));
    if (work->meter != nullptr) work->meter->Record(s);
    return s;
  }
  // Flush this thread's incremental byte delta into the shared total:
  // always while a guard is armed (its memory check must see the bytes),
  // otherwise only past a threshold so unarmed metering costs no atomic
  // traffic.
  if (work->local_bytes != 0 &&
      (guard_.armed() || work->local_bytes >= 4096 ||
       work->local_bytes <= -4096)) {
    tracked_bytes_.fetch_add(work->local_bytes, std::memory_order_relaxed);
    work->local_bytes = 0;
  }
  if (work->meter == nullptr) {
    // Sequential path: the accumulator is the engine's own stats_.
    if (work->stats->goals_expanded > options_.max_steps ||
        work->stats->enumerations > options_.max_steps) {
      return Status::ResourceExhausted(LimitTripMessage(
          "max_steps", options_.max_steps,
          std::max(work->stats->goals_expanded,
                   work->stats->enumerations)));
    }
    if (guard_.armed()) {
      ++work->stats->guard_checks;
      return guard_.Check(guard_.wants_memory() ? MemoryBytes(work) : -1);
    }
    return Status::OK();
  }
  // Parallel path: publish this worker's unpublished counts, then enforce
  // the limits against the global totals, so max_steps means the same
  // thing at every thread count (up to one publish interval of slack).
  ParallelMeter& m = *work->meter;
  m.goals.fetch_add(work->stats->goals_expanded - work->published_goals,
                    std::memory_order_relaxed);
  work->published_goals = work->stats->goals_expanded;
  m.enums.fetch_add(work->stats->enumerations - work->published_enums,
                    std::memory_order_relaxed);
  work->published_enums = work->stats->enumerations;
  if (m.abort.load(std::memory_order_acquire)) return m.FirstError();
  const int64_t goals = m.goals.load(std::memory_order_relaxed);
  const int64_t enums = m.enums.load(std::memory_order_relaxed);
  if (goals > options_.max_steps || enums > options_.max_steps) {
    Status s = Status::ResourceExhausted(LimitTripMessage(
        "max_steps", options_.max_steps, std::max(goals, enums)));
    m.Record(s);
    return s;
  }
  if (guard_.armed()) {
    ++work->stats->guard_checks;
    Status gs = guard_.Check(guard_.wants_memory() ? MemoryBytes(work) : -1);
    if (!gs.ok()) {
      // Raise the shared abort flag so every sibling worker bails at its
      // next metering check with the same trip status.
      m.Record(gs);
      return gs;
    }
  }
  return Status::OK();
}

int64_t BottomUpEngine::StateBytes(const State& s) {
  return s.ext.ApproxBytes() + static_cast<int64_t>(sizeof(State)) + 64 +
         static_cast<int64_t>(s.key.size() * sizeof(FactId)) +
         static_cast<int64_t>(s.added_set.size() *
                              (sizeof(FactId) + 2 * sizeof(void*)));
}

int64_t BottomUpEngine::MemoryBytes(const WorkCtx* work) const {
  int64_t bytes = tracked_bytes_.load(std::memory_order_relaxed) +
                  interner_.ApproxBytes() + ctx_interner_.ApproxBytes();
  if (work != nullptr) bytes += work->local_bytes;
  return bytes;
}

void BottomUpEngine::RecomputeTrackedBytes() {
  int64_t bytes = 0;
  states_.ForEach([&bytes](const State& s) { bytes += StateBytes(s); });
  tracked_bytes_.store(bytes, std::memory_order_relaxed);
}

int64_t BottomUpEngine::InternStateKey(const StateKey& key) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return static_cast<int64_t>(ctx_interner_.InternAddedSet(key));
}

template <typename Read>
Status BottomUpEngine::EnsureState(int64_t ckey, const StateKey& key,
                                   int through,
                                   const std::vector<Fact>& seeds,
                                   WorkCtx* work, bool allow_parallel,
                                   const Read& read) {
  bool created = false;
  int target = through;
  auto factory = [&](int64_t) -> std::unique_ptr<State> {
    created = true;
    auto owned = std::make_unique<State>(base_->symbols_ptr(), base_->backend());
    owned->key = key;
    {
      // interner_ may be growing concurrently (TestHypothetical on other
      // workers); Get must not race a rehash. Shard-lock-then-intern is
      // the global lock order, so this nesting cannot deadlock.
      std::lock_guard<std::mutex> lock(intern_mu_);
      for (FactId id : key) {
        owned->added_set.insert(id);
        const Fact& added = interner_.Get(id);
        owned->ext.Insert(added);
        work->local_bytes += ApproxFactBytes(added.args.size());
      }
    }
    // Fixed per-state overhead (struct, key, id set), mirroring StateBytes.
    work->local_bytes +=
        static_cast<int64_t>(sizeof(State)) + 64 +
        static_cast<int64_t>(key.size() *
                             (2 * sizeof(FactId) + 2 * sizeof(void*)));
    owned->demand_version = demand_version_;
    ++work->stats->states_evaluated;
    return owned;
  };
  // Under the shard lock: decide whether the model must be (re)computed.
  // A model computed under a narrower demand profile, or left incomplete
  // by an aborted run, must be re-extended; so must one that has not yet
  // reached `through`, or into which a query just injected a new magic
  // seed. Re-extension re-runs the strata from 0: ext is append-only and
  // every fact in it is a true fact of the (wider) demanded slice, so the
  // re-run only adds facts — answers never change, work is only redone.
  auto needs_run = [&](State* s) -> bool {
    bool rerun = s->dirty || s->demand_version != demand_version_;
    for (const Fact& seed : seeds) {
      if (s->ext.Insert(seed)) {
        ++work->stats->magic_facts;
        work->local_bytes += ApproxFactBytes(seed.args.size());
        rerun = true;
      }
    }
    target = std::max(target, s->completed_through);
    return rerun || target > s->completed_through;
  };
  auto compute = [&](State* s) -> Status {
    // dirty stays raised until the model completes, so an abort mid-way
    // leaves the state marked for recomputation, never served as-is.
    s->dirty = true;
    HYPO_FAILPOINT("bottomup.compute_model");
    HYPO_RETURN_IF_ERROR(CheckLimits(work));
    // Only the base state's FULL model is board-shareable: the empty
    // context is the same id on every engine, no magic seeds narrow the
    // model, and the fixpoint runs through the last stratum. Runs on the
    // calling thread (workers only ever compute child states), so no
    // engine-local translation state can race.
    const bool shareable = board_ != nullptr && !options_.demand &&
                           key.empty() && seeds.empty() &&
                           target >= strata_.num_strata - 1;
    if (shareable) {
      std::shared_ptr<const Database> model =
          board_->LookupModel(ContextInterner::kEmptyContext, domain_fp_);
      if (model != nullptr) {
        // Adopt wholesale. Any partial ext left by an aborted run holds
        // sound derivations, i.e. a subset of the model — replacing it
        // loses nothing.
        const int64_t before = StateBytes(*s);
        s->ext = model->Clone();
        work->local_bytes += StateBytes(*s) - before;
        ++work->stats->cache_hits_cross_query;
        s->completed_through = target;
        s->demand_version = demand_version_;
        s->dirty = false;
        return Status::OK();
      }
    }
    HYPO_RETURN_IF_ERROR(ComputeModel(s, target, work, allow_parallel));
    s->completed_through = target;
    s->demand_version = demand_version_;
    s->dirty = false;
    if (shareable) {
      board_->PublishModel(ContextInterner::kEmptyContext, domain_fp_,
                           std::make_shared<Database>(s->ext.Clone()));
    }
    return Status::OK();
  };
  Status status =
      states_.EnsureComputed(ckey, factory, needs_run, compute, read);
  if (!created) ++work->stats->memo_hits;
  return status;
}

StatusOr<BottomUpEngine::State*> BottomUpEngine::MaterializeState(
    const StateKey& key, int through, const std::vector<Fact>& seeds,
    WorkCtx* work) {
  int64_t ckey = InternStateKey(key);
  State* out = nullptr;
  HYPO_RETURN_IF_ERROR(EnsureState(ckey, key, through, seeds, work,
                                   /*allow_parallel=*/true,
                                   [&](State* s) { out = s; }));
  return out;
}

Status BottomUpEngine::ComputeModel(State* state, int through, WorkCtx* work,
                                    bool allow_parallel) {
  const bool parallel = allow_parallel && pool_ != nullptr;
  // When a long-lived caller (src/server) has already sealed the base for
  // an epoch, its seal — and the indexes it prepared — are shared with
  // other concurrent readers; leave both alone. Probes for signatures the
  // caller did not prepare degrade to full scans, which stays correct.
  const bool own_base_seal = !base_->sealed();
  Unsealer base_unsealer(own_base_seal ? base_ : nullptr);
  if (own_base_seal) {
    // Freeze the shared base for the whole region: every statically
    // possible probe signature gets an up-to-date index, then probes
    // (including concurrent sequential child-state computations running
    // on workers in parallel mode) are strictly read-only. The base is
    // long-lived and read-mostly, so it gets the sorted-permutation
    // treatment: probes against it binary-search contiguous ranges, and
    // re-sealing for every hypothetical child state is O(1) per the
    // relation-version cache. (The engine's own delta/ext databases stay
    // on incremental hash indexes — they churn every round.)
    base_->EnableSortedIndexes();
    for (const auto& [pred, mask] : static_sigs_) {
      base_->PrepareIndex(pred, mask);
    }
    base_->SealIndexes();
  }
  const int last = std::min(through, strata_.num_strata - 1);
  for (int s = 0; s <= last; ++s) {
    if (parallel) {
      HYPO_RETURN_IF_ERROR(ComputeStratumParallel(state, s, work));
    } else {
      HYPO_RETURN_IF_ERROR(ComputeStratumSequential(state, s, work));
    }
  }
  if (last < strata_.num_strata - 1) {
    work->stats->strata_skipped += strata_.num_strata - 1 - last;
  }
  return Status::OK();
}

Status BottomUpEngine::ComputeStratumSequential(State* state, int stratum,
                                                WorkCtx* work) {
  const EvalStrategy strategy = options_.eval_strategy;
  const RuleBase& program = active();
  const std::vector<int>& stratum_rules = strata_.rules_by_stratum[stratum];
  // Predicates whose relations gained tuples in the previous round, and
  // (delta mode) the new tuples themselves, rotated per round.
  std::unordered_set<PredicateId> changed_last;
  std::unordered_set<PredicateId> changed_now;
  Database delta(base_->symbols_ptr(), base_->backend());
  Database next_delta(base_->symbols_ptr(), base_->backend());
  Database* track_delta =
      strategy == EvalStrategy::kDeltaSeminaive ? &next_delta : nullptr;
  bool first_round = true;
  while (true) {
    ++work->stats->fixpoint_rounds;
    HYPO_FAILPOINT("bottomup.round");
    for (int rule_index : stratum_rules) {
      EvalCtx ctx;
      ctx.state = state;
      ctx.work = work;
      if (first_round || strategy == EvalStrategy::kNaive) {
        // Round 0 instantiates every rule over the full relations (the
        // semi-naive base case); naive mode keeps doing that forever.
        HYPO_RETURN_IF_ERROR(
            EvaluateRule(rule_index, &ctx, track_delta, &changed_now));
        continue;
      }
      if (strategy == EvalStrategy::kRuleFilter) {
        const Rule& rule = program.rule(rule_index);
        bool relevant = false;
        for (const Premise& p : rule.premises) {
          if (changed_last.count(p.atom.predicate) > 0) {
            relevant = true;
            break;
          }
        }
        if (!relevant) continue;
        HYPO_RETURN_IF_ERROR(
            EvaluateRule(rule_index, &ctx, nullptr, &changed_now));
        continue;
      }
      // Delta semi-naive. A rule whose hypothetical premise watches a
      // same-stratum predicate that just changed cannot be delta-
      // restricted (the premise is a test, not a generator): fall back
      // to a full instantiation for this round.
      const RuleDeltaInfo& info = rule_delta_info_[rule_index];
      bool full = false;
      for (PredicateId p : info.hypo_sensitive_preds) {
        if (changed_last.count(p) > 0) {
          full = true;
          break;
        }
      }
      if (full) {
        HYPO_RETURN_IF_ERROR(
            EvaluateRule(rule_index, &ctx, track_delta, &changed_now));
        continue;
      }
      // The standard rewrite: one rule version per changed positive
      // premise, that premise ranging over last round's delta only.
      const std::vector<Premise>& premises =
          program.rule(rule_index).premises;
      for (int premise_index : info.delta_premises) {
        if (changed_last.count(premises[premise_index].atom.predicate) ==
            0) {
          continue;
        }
        ctx.delta_premise = premise_index;
        ctx.delta = &delta;
        HYPO_RETURN_IF_ERROR(
            EvaluateRule(rule_index, &ctx, track_delta, &changed_now));
      }
    }
    if (changed_now.empty()) break;
    if (track_delta != nullptr) {
      retired_index_builds_ += delta.index_builds();
      delta = std::move(next_delta);
      next_delta = Database(base_->symbols_ptr(), base_->backend());
    }
    changed_last = std::move(changed_now);
    changed_now.clear();
    first_round = false;
  }
  retired_index_builds_ += delta.index_builds() + next_delta.index_builds();
  return Status::OK();
}

Status BottomUpEngine::ComputeStratumParallel(State* state, int stratum,
                                              WorkCtx* work) {
  const EvalStrategy strategy = options_.eval_strategy;
  const RuleBase& program = active();
  const std::vector<int>& stratum_rules = strata_.rules_by_stratum[stratum];
  std::unordered_set<PredicateId> changed_last;
  std::unordered_set<PredicateId> changed_now;
  Database delta(base_->symbols_ptr(), base_->backend());
  Database next_delta(base_->symbols_ptr(), base_->backend());
  const bool track_delta = strategy == EvalStrategy::kDeltaSeminaive;
  const int num_shards = pool_->num_workers() + 1;
  struct Version {
    int rule;
    int delta_premise;  // -1 = full instantiation.
  };
  ParallelMeter meter;
  bool first_round = true;
  while (true) {
    ++work->stats->fixpoint_rounds;
    HYPO_FAILPOINT("bottomup.round");
    // The coordinator owns the bytes from the state's seeding and from
    // every barrier merge; flush and guard-check them once per round, or
    // the workers' memory checks would never see the growing model (their
    // own inserts are buffered and deliberately uncounted).
    HYPO_RETURN_IF_ERROR(CheckLimits(work));
    // Rule-version selection: identical to the sequential rounds, hoisted
    // out of the tasks so every shard evaluates the same version list.
    std::vector<Version> versions;
    for (int rule_index : stratum_rules) {
      if (first_round || strategy == EvalStrategy::kNaive) {
        versions.push_back({rule_index, -1});
        continue;
      }
      if (strategy == EvalStrategy::kRuleFilter) {
        const Rule& rule = program.rule(rule_index);
        bool relevant = false;
        for (const Premise& p : rule.premises) {
          if (changed_last.count(p.atom.predicate) > 0) {
            relevant = true;
            break;
          }
        }
        if (relevant) versions.push_back({rule_index, -1});
        continue;
      }
      const RuleDeltaInfo& info = rule_delta_info_[rule_index];
      bool full = false;
      for (PredicateId p : info.hypo_sensitive_preds) {
        if (changed_last.count(p) > 0) {
          full = true;
          break;
        }
      }
      if (full) {
        versions.push_back({rule_index, -1});
        continue;
      }
      const std::vector<Premise>& premises =
          program.rule(rule_index).premises;
      for (int premise_index : info.delta_premises) {
        if (changed_last.count(premises[premise_index].atom.predicate) == 0) {
          continue;
        }
        versions.push_back({rule_index, premise_index});
      }
    }
    if (!versions.empty()) {
      ++work->stats->parallel_rounds;
      // Re-baseline the shared meter to the exact totals so far; tasks
      // publish their deltas on top.
      meter.goals.store(work->stats->goals_expanded,
                        std::memory_order_relaxed);
      meter.enums.store(work->stats->enumerations, std::memory_order_relaxed);
      // Freeze the round's read set (model + delta) behind up-to-date
      // indexes for every statically possible probe signature.
      for (const auto& [pred, mask] : static_sigs_) {
        state->ext.PrepareIndex(pred, mask);
        delta.PrepareIndex(pred, mask);
      }
      state->ext.SealIndexes();
      delta.SealIndexes();
      Unsealer ext_unsealer(&state->ext);
      Unsealer delta_unsealer(&delta);

      std::vector<EngineStats> task_stats(num_shards);
      std::vector<Database> buffers;
      buffers.reserve(num_shards);
      for (int i = 0; i < num_shards; ++i) {
        buffers.emplace_back(base_->symbols_ptr(), base_->backend());
      }
      std::vector<std::function<Status()>> tasks;
      tasks.reserve(num_shards);
      for (int shard = 0; shard < num_shards; ++shard) {
        tasks.push_back([this, shard, num_shards, state, &versions, &delta,
                         &buffers, &task_stats, &meter]() -> Status {
          WorkCtx tw;
          tw.stats = &task_stats[shard];
          tw.meter = &meter;
          for (const Version& v : versions) {
            const int sp = v.delta_premise >= 0
                               ? v.delta_premise
                               : FirstPositivePremise(rule_plans_[v.rule]);
            if (sp < 0 && shard != 0) continue;
            EvalCtx ctx;
            ctx.state = state;
            ctx.work = &tw;
            ctx.buffer = &buffers[shard];
            if (v.delta_premise >= 0) {
              ctx.delta_premise = v.delta_premise;
              ctx.delta = &delta;
            }
            if (sp >= 0) {
              ctx.shard_premise = sp;
              ctx.shard = shard;
              ctx.num_shards = num_shards;
            }
            Status st = EvaluateRule(v.rule, &ctx, nullptr, nullptr);
            if (!st.ok()) {
              // Raise the shared abort flag so sibling tasks bail at
              // their next metering check instead of finishing the round.
              meter.Record(st);
              return st;
            }
          }
          return Status::OK();
        });
      }
      Status round_status = pool_->RunBatch(std::move(tasks));

      Stopwatch barrier;
      state->ext.UnsealIndexes();
      delta.UnsealIndexes();
      // Per-worker counters merge exactly, success or abort.
      for (const EngineStats& ts : task_stats) work->stats->Merge(ts);
      // After the merge, before the status gate: an injected barrier
      // abort leaves the state dirty with the round's buffers dropped.
      HYPO_FAILPOINT("bottomup.round_barrier");
      HYPO_RETURN_IF_ERROR(round_status);

      // Deterministic merge: buffered facts from all shards, sorted by
      // (predicate, tuple), inserted once each. The round's resulting
      // model — contents AND insertion order — is independent of both the
      // scheduling and the thread count.
      std::vector<Fact> merged;
      for (const Database& b : buffers) {
        b.ForEach([&merged](const Fact& f) { merged.push_back(f); });
      }
      std::sort(merged.begin(), merged.end(),
                [](const Fact& a, const Fact& b) {
                  if (a.predicate != b.predicate) {
                    return a.predicate < b.predicate;
                  }
                  return a.args < b.args;
                });
      for (const Fact& f : merged) {
        if (!state->ext.Insert(f)) continue;  // Cross-shard duplicate.
        work->local_bytes += ApproxFactBytes(f.args.size());
        ++work->stats->facts_derived;
        if (demand_program_ != nullptr &&
            demand_program_->IsMagic(f.predicate)) {
          ++work->stats->magic_facts;
        }
        changed_now.insert(f.predicate);
        if (track_delta) {
          next_delta.Insert(f);
          ++work->stats->delta_facts;
        }
      }
      work->stats->barrier_micros += barrier.ElapsedMicros();
    }
    if (changed_now.empty()) break;
    if (track_delta) {
      retired_index_builds_ += delta.index_builds();
      delta = std::move(next_delta);
      next_delta = Database(base_->symbols_ptr(), base_->backend());
    }
    changed_last = std::move(changed_now);
    changed_now.clear();
    first_round = false;
  }
  retired_index_builds_ += delta.index_builds() + next_delta.index_builds();
  return Status::OK();
}

// The callbacks mirror WalkPlan's per-step semantics (and counter order)
// exactly; as a nested class the host reaches the engine's private state
// and its callbacks inline into vm::Run's loop.
template <typename EmitFn>
struct BottomUpEngine::VmHost {
  BottomUpEngine* eng;
  const std::vector<Premise>* premises;
  EvalCtx* ctx;
  const EmitFn* emit;
  Binding* scratch;  // kNegProbe seeding; bound_vars Set/Unset per test.

  /// The row hash is only computed when this premise actually shards the
  /// round (the interpreter's `sharded` precondition) — hashing every
  /// candidate row would dominate tight single-threaded joins.
  template <typename Row>
  bool InShard(int premise_index, const Row& row) const {
    if (premise_index != ctx->shard_premise || ctx->num_shards <= 1) {
      return true;
    }
    return static_cast<int>(HashRowLike(row) %
                            static_cast<size_t>(ctx->num_shards)) ==
           ctx->shard;
  }

  Status OpenScan(const vm::Op& op, const std::vector<ConstId>&,
                  vm::ScanState* st) {
    if (op.designated) {
      st->AddDb(ctx->delta);
      return Status::OK();
    }
    // Same segment order as the interpreter: base, then the state's
    // model, then (DRed old-model mode) this epoch's deleted facts.
    st->AddDb(eng->base_);
    st->AddDb(&ctx->state->ext);
    if (ctx->vis_plus != nullptr) st->AddDb(ctx->vis_plus);
    return Status::OK();
  }

  template <typename Row>
  bool AcceptRow(const vm::Op& op, const Row& row) {
    // Filter order matches try_tuple: shard (uncounted), join_probes,
    // exclude_delta, old-model minus.
    if (!InShard(op.premise_index, row)) return false;
    ++ctx->work->stats->join_probes;
    if (op.exclude_delta && ctx->delta->Contains(op.pred, row)) {
      return false;
    }
    if (!op.designated && ctx->vis_minus != nullptr &&
        ctx->vis_minus->Contains(op.pred, row)) {
      return false;
    }
    return true;
  }

  StatusOr<bool> TestGround(const vm::Op& op,
                            const std::vector<ConstId>& regs) {
    const Atom& atom = (*premises)[op.premise_index].atom;
    Fact f = vm::GroundAtom(atom, regs.data());
    // Another shard's instantiation: fail the op so the VM backtracks
    // (the interpreter's `return true` skips the instantiation the same
    // way — it just expresses "don't descend" from the caller's side).
    if (!InShard(op.premise_index, f.args)) return false;
    bool holds =
        op.designated ? ctx->delta->Contains(f) : eng->Visible(*ctx->state, f);
    if (!op.designated) {
      if (holds && ctx->vis_minus != nullptr && ctx->vis_minus->Contains(f)) {
        holds = false;
      }
      if (!holds && ctx->vis_plus != nullptr && ctx->vis_plus->Contains(f)) {
        holds = true;
      }
    }
    if (holds && op.exclude_delta && ctx->delta->Contains(f)) holds = false;
    return holds;
  }

  StatusOr<bool> ProveCall(const vm::Op&, const std::vector<ConstId>&) {
    return Status::Internal(
        "bottom-up programs have no kProveCall premises");
  }

  StatusOr<bool> HypoTest(const vm::Op& op,
                          const std::vector<ConstId>& regs) {
    const Premise& premise = (*premises)[op.premise_index];
    if (!premise.deletions.empty()) {
      return Status::Unimplemented(
          "hypothetical deletion is supported only by TabledEngine");
    }
    Fact query = vm::GroundAtom(premise.atom, regs.data());
    std::vector<Fact> additions;
    additions.reserve(premise.additions.size());
    for (const Atom& a : premise.additions) {
      additions.push_back(vm::GroundAtom(a, regs.data()));
    }
    return eng->TestHypothetical(ctx->state, query, additions, ctx->work);
  }

  StatusOr<bool> NegHolds(const vm::Op& op,
                          const std::vector<ConstId>& regs) {
    const Atom& atom = (*premises)[op.premise_index].atom;
    if (op.code == vm::OpCode::kNegGround) {
      return !eng->Visible(*ctx->state,
                           vm::GroundAtom(atom, regs.data()));
    }
    // kNegProbe: seed exactly the statically bound variables (unbound
    // registers hold stale candidate values and must not leak in).
    for (VarIndex v : op.bound_vars) scratch->Set(v, regs[v]);
    const bool witness =
        eng->ExistsMatch(*ctx->state, atom, scratch, ctx->work);
    for (VarIndex v : op.bound_vars) scratch->Unset(v);
    return !witness;
  }

  StatusOr<bool> Emit(const std::vector<ConstId>& regs) {
    return (*emit)(regs.data());
  }

  const std::vector<ConstId>& Domain() { return eng->domain_; }
  Status CountEnumeration() { return eng->CountEnumeration(ctx->work); }
  void FlushOps(int64_t executed) {
    ctx->work->stats->vm_ops_executed += executed;
  }
};

template <typename EmitFn>
StatusOr<bool> BottomUpEngine::RunProgram(const std::vector<Premise>& premises,
                                          const vm::Program& prog,
                                          EvalCtx* ctx, const EmitFn& emit) {
  vm::FrameLease frame(&ctx->work->vm_frames, prog.num_vars);
  VmHost<EmitFn> host{this, &premises, ctx, &emit, &frame->neg};
  return vm::Run(prog, &host, &frame->regs, &frame->states);
}

Status BottomUpEngine::EvaluateRule(
    int rule_index, EvalCtx* ctx, Database* next_delta,
    std::unordered_set<PredicateId>* changed) {
  const Rule& rule = active().rule(rule_index);
  const BodyPlan& plan = rule_plans_[rule_index];
  State* state = ctx->state;
  auto sink_body = [&](const Fact& head) -> StatusOr<bool> {
    if (ctx->buffer != nullptr) {
      // Parallel round: the model is sealed. Buffer the head (deduped per
      // task by the buffer's own hash set); the barrier merge inserts it
      // and does the exact-once accounting.
      if (!Visible(*state, head)) ctx->buffer->Insert(head);
      return true;
    }
    if (!Visible(*state, head)) {
      state->ext.Insert(head);
      ctx->work->local_bytes += ApproxFactBytes(head.args.size());
      ++ctx->work->stats->facts_derived;
      if (demand_program_ != nullptr &&
          demand_program_->IsMagic(head.predicate)) {
        ++ctx->work->stats->magic_facts;
      }
      changed->insert(head.predicate);
      if (next_delta != nullptr) {
        next_delta->Insert(head);
        ++ctx->work->stats->delta_facts;
      }
    }
    return true;  // Keep enumerating.
  };
  if (options_.executor == ExecutorKind::kVm &&
      rule_index < static_cast<int>(rule_programs_.size())) {
    const vm::Program* prog =
        rule_programs_[rule_index].For(ctx->delta_premise);
    if (prog != nullptr) {
      Fact head;  // Reused across emits; Insert copies it out.
      auto emit = [&](const ConstId* regs) -> StatusOr<bool> {
        ++ctx->work->stats->goals_expanded;
        HYPO_RETURN_IF_ERROR(CheckLimits(ctx->work));
        vm::GroundAtomInto(rule.head, regs, &head);
        return sink_body(head);
      };
      return RunProgram(rule.premises, *prog, ctx, emit).status();
    }
  }
  Binding binding(rule.num_vars());
  auto sink = [&](const Binding& b) -> StatusOr<bool> {
    ++ctx->work->stats->goals_expanded;
    HYPO_RETURN_IF_ERROR(CheckLimits(ctx->work));
    return sink_body(b.Ground(rule.head));
  };
  return WalkPlan(rule.premises, plan, 0, &binding, ctx, sink).status();
}

StatusOr<bool> BottomUpEngine::WalkPlan(
    const std::vector<Premise>& premises, const BodyPlan& plan, size_t step,
    Binding* binding, EvalCtx* ctx,
    const std::function<StatusOr<bool>(const Binding&)>& sink) {
  if (step == plan.steps.size()) return sink(*binding);
  const PlanStep& ps = plan.steps[step];
  State* state = ctx->state;
  switch (ps.kind) {
    case PlanStep::Kind::kMatchPositive: {
      const Atom& atom = premises[ps.premise_index].atom;
      // The designated delta premise of a semi-naive rule version ranges
      // over last round's newly derived tuples only. Premises *before* the
      // designated one (in source order) range over the pre-delta relation
      // (total minus delta): each instantiation touching k ≥ 1 delta
      // tuples then fires exactly once, in the version designating its
      // first delta premise, instead of k times. Later premises see the
      // full (base + ext) relations.
      const bool designated = ps.premise_index == ctx->delta_premise;
      const bool exclude_delta = !designated && ctx->delta != nullptr &&
                                 ps.premise_index < ctx->delta_premise;
      // Parallel rounds partition instantiations across shards by the
      // hash of the tuple matched at the shard premise.
      const bool sharded =
          ps.premise_index == ctx->shard_premise && ctx->num_shards > 1;
      // Generic over the row type (Tuple or columnar RowRef); HashRowLike
      // makes shard assignment bit-identical across storage backends.
      auto in_shard = [&](const auto& t) {
        return static_cast<int>(HashRowLike(t) %
                                static_cast<size_t>(ctx->num_shards)) ==
               ctx->shard;
      };
      if (binding->Grounds(atom)) {
        Fact f = binding->Ground(atom);
        if (sharded && !in_shard(f.args)) return true;  // Another shard's.
        bool holds = designated ? ctx->delta->Contains(f) : Visible(*state, f);
        if (!designated) {
          // DRed old-model mode: this epoch's net insertions were not
          // visible before it, its net deletions were (see EvalCtx).
          if (holds && ctx->vis_minus != nullptr && ctx->vis_minus->Contains(f))
            holds = false;
          if (!holds && ctx->vis_plus != nullptr && ctx->vis_plus->Contains(f))
            holds = true;
        }
        if (holds && exclude_delta && ctx->delta->Contains(f)) holds = false;
        if (!holds) return true;
        return WalkPlan(premises, plan, step + 1, binding, ctx, sink);
      }
      // The model can grow while we iterate (the sink inserts facts);
      // index-based iteration over the stable prefix is safe because
      // vectors only get appended to, and the fixpoint loop re-runs the
      // rule until nothing changes.
      std::vector<VarIndex> trail;
      Status error;
      bool stopped = false;
      // Generic lambda: candidates arrive as const Tuple& from the
      // reference backend and as RowRef views from columnar storage, so
      // the filters and MatchTuple monomorphize per backend — no Tuple is
      // materialized on the columnar hot path.
      auto try_tuple = [&](const auto& tuple) -> bool {
        if (sharded && !in_shard(tuple)) return true;
        ++ctx->work->stats->join_probes;
        if (exclude_delta && ctx->delta->Contains(atom.predicate, tuple)) {
          return true;
        }
        // Old-model mode: skip this epoch's net insertions. (Deleted facts
        // arrive via the extra vis_plus scan below; they are physically
        // absent from base and ext, so the scans cannot duplicate them.)
        if (!designated && ctx->vis_minus != nullptr &&
            ctx->vis_minus->Contains(atom.predicate, tuple)) {
          return true;
        }
        if (!binding->MatchTuple(atom, tuple, &trail)) return true;
        StatusOr<bool> r =
            WalkPlan(premises, plan, step + 1, binding, ctx, sink);
        binding->Undo(&trail, 0);
        if (!r.ok()) {
          error = r.status();
          return false;
        }
        if (!*r) {
          stopped = true;
          return false;
        }
        return true;
      };
      if (designated) {
        ForEachBaseCandidate(*ctx->delta, atom, *binding, try_tuple);
      } else if (ForEachBaseCandidate(*base_, atom, *binding, try_tuple) &&
                 ForEachBaseCandidate(state->ext, atom, *binding, try_tuple) &&
                 ctx->vis_plus != nullptr) {
        ForEachBaseCandidate(*ctx->vis_plus, atom, *binding, try_tuple);
      }
      HYPO_RETURN_IF_ERROR(error);
      if (stopped) return false;
      return true;
    }
    case PlanStep::Kind::kEnumerateVars: {
      // Nested enumeration of dom(R, DB) for each listed variable.
      std::function<StatusOr<bool>(size_t)> enumerate =
          [&](size_t v) -> StatusOr<bool> {
        if (v == ps.enum_vars.size()) {
          return WalkPlan(premises, plan, step + 1, binding, ctx, sink);
        }
        VarIndex var = ps.enum_vars[v];
        if (binding->IsBound(var)) return enumerate(v + 1);
        for (ConstId c : domain_) {
          // Purely extensional domain^n loops derive no heads, so they
          // must be metered here or max_steps never triggers.
          HYPO_RETURN_IF_ERROR(CountEnumeration(ctx->work));
          binding->Set(var, c);
          StatusOr<bool> r = enumerate(v + 1);
          binding->Unset(var);
          HYPO_RETURN_IF_ERROR(r.status());
          if (!*r) return false;
        }
        return true;
      };
      return enumerate(0);
    }
    case PlanStep::Kind::kHypothetical: {
      const Premise& premise = premises[ps.premise_index];
      if (!premise.deletions.empty()) {
        return Status::Unimplemented(
            "hypothetical deletion is supported only by TabledEngine");
      }
      Fact query = binding->Ground(premise.atom);
      std::vector<Fact> additions;
      additions.reserve(premise.additions.size());
      for (const Atom& a : premise.additions) {
        additions.push_back(binding->Ground(a));
      }
      HYPO_ASSIGN_OR_RETURN(
          bool holds, TestHypothetical(state, query, additions, ctx->work));
      if (!holds) return true;
      return WalkPlan(premises, plan, step + 1, binding, ctx, sink);
    }
    case PlanStep::Kind::kNegated: {
      const Atom& atom = premises[ps.premise_index].atom;
      // Variables still unbound here occur only under negation: the
      // premise succeeds iff *no* instance is visible (∄ reading).
      if (ExistsMatch(*state, atom, binding, ctx->work)) return true;
      return WalkPlan(premises, plan, step + 1, binding, ctx, sink);
    }
  }
  return Status::Internal("unknown plan step");
}

StatusOr<bool> BottomUpEngine::TestHypothetical(
    State* state, const Fact& query, const std::vector<Fact>& additions,
    WorkCtx* work) {
  HYPO_FAILPOINT("bottomup.hypothetical");
  // Additions already present in the state's *database* (base or added
  // facts — derived facts do not count, they are conclusions, not entries)
  // leave the state unchanged.
  std::vector<FactId> new_ids;
  StateKey key;
  int64_t ckey = 0;
  {
    // One intern_mu_ hold covers both the fact interning and the child
    // key's context id — this runs once per hypothetical premise test, so
    // a second lock round-trip is measurable.
    std::lock_guard<std::mutex> lock(intern_mu_);
    for (const Fact& f : additions) {
      if (base_->Contains(f)) continue;
      FactId id = interner_.Intern(f);
      if (state->added_set.count(id) > 0) continue;
      new_ids.push_back(id);
    }
    if (!new_ids.empty()) {
      key = state->key;
      key.insert(key.end(), new_ids.begin(), new_ids.end());
      std::sort(key.begin(), key.end());
      key.erase(std::unique(key.begin(), key.end()), key.end());
      ckey = static_cast<int64_t>(ctx_interner_.InternAddedSet(key));
    }
  }
  if (new_ids.empty()) {
    // Same state: behaves like a positive premise over the in-progress
    // model (the enclosing fixpoint re-checks it every round). Under
    // demand the static magic propagation rule for this premise has
    // already demanded the queried slice in this state.
    return Visible(*state, query);
  }
  // Demand propagates *into* the child state: seed its magic relation
  // with the ground queried atom's bound projection, and compute its
  // model only through the queried predicate's stratum.
  int through = strata_.num_strata - 1;
  std::vector<Fact> seeds;
  if (options_.demand && demand_program_ != nullptr) {
    through = StratumCap(query.predicate);
    if (auto seed =
            MagicSeedForFact(*demand_profile_, *demand_program_, query)) {
      seeds.push_back(std::move(*seed));
    }
  }
  // Children are always computed sequentially (inter-state parallelism
  // comes from different workers reaching *different* children); the
  // visibility check runs under the cache-shard lock so a concurrent
  // demand re-extension of the child can never be observed half-done.
  bool holds = false;
  HYPO_RETURN_IF_ERROR(
      EnsureState(ckey, key, through, seeds, work, /*allow_parallel=*/false,
                  [&](State* s) { holds = Visible(*s, query); }));
  return holds;
}

bool BottomUpEngine::ExistsMatch(const State& state, const Atom& atom,
                                 Binding* binding, WorkCtx* work) {
  if (binding->Grounds(atom)) {
    return Visible(state, binding->Ground(atom));
  }
  std::vector<VarIndex> trail;
  bool found = false;
  auto probe = [&](const auto& tuple) -> bool {
    ++work->stats->join_probes;
    if (binding->MatchTuple(atom, tuple, &trail)) {
      binding->Undo(&trail, 0);
      found = true;
      return false;  // One witness suffices.
    }
    return true;
  };
  if (ForEachBaseCandidate(*base_, atom, *binding, probe)) {
    ForEachBaseCandidate(state.ext, atom, *binding, probe);
  }
  return found;
}

Status BottomUpEngine::ApplyBaseDelta(const BaseDelta& delta) {
  if (delta.empty()) return Status::OK();
  if (!initialized_) return Status::OK();  // First query Init()s fresh.
  ++stats_.base_deltas;
  // A domain change invalidates every memoized enumeration, and demand's
  // magic programs are seeded from base contents: both fall back to a
  // full re-Init (models recompute lazily on the next query).
  std::vector<ConstId> domain =
      ComputeDomain(*rulebase_, *base_, extra_constants_);
  if (domain != domain_ || options_.demand) return Init();

  // A sibling engine already repaired and published this epoch's base
  // model: drop local states and adopt it lazily at the next query
  // (EnsureState's shareable path) instead of repairing redundantly.
  if (board_ != nullptr &&
      board_->LookupModel(ContextInterner::kEmptyContext, domain_fp_) !=
          nullptr) {
    states_.Clear();
    tracked_bytes_.store(0, std::memory_order_relaxed);
    return MaybeReplanForCardinality();
  }

  // Hypothetical child states are whole models over the old base: drop
  // them (they rebuild lazily on their next touch) and repair the base
  // state's model in place.
  State* base_state = states_.RetainOnly(InternStateKey({}));
  if (base_state == nullptr) {
    RecomputeTrackedBytes();
    return MaybeReplanForCardinality();
  }
  if (base_state->dirty ||
      base_state->completed_through < strata_.num_strata - 1) {
    // Incomplete model (aborted run): dropping it is cheaper and simpler
    // than repairing a partial fixpoint.
    states_.Clear();
    RecomputeTrackedBytes();
    return MaybeReplanForCardinality();
  }
  // Start from an exact total (RetainOnly just dropped the children), so
  // the commit-time delta below lands on the truth, not on drift.
  RecomputeTrackedBytes();
  const int64_t bytes_before = StateBytes(*base_state);
  WorkCtx work;
  work.stats = &stats_;
  Status status = RepairBaseModel(base_state, delta, &work);
  if (!status.ok()) {
    // A half-repaired model must never be served: drop everything and
    // surface the error; the next query recomputes from scratch.
    states_.Clear();
    RecomputeTrackedBytes();
    return status;
  }
  // Commit the repair's byte effects exactly. The per-fact charges the
  // repair accumulated in work.local_bytes are estimates; the exact
  // figure is the state's own ApproxBytes, so the commit-time delta
  // SUPERSEDES them (adding both would double-count). When the repair
  // also materialized hypothetical child states, re-sum everything
  // instead — the total must be exact either way, and governance_test
  // asserts it against an independent re-sum.
  work.local_bytes = 0;
  if (states_.size() == 1) {
    tracked_bytes_.fetch_add(StateBytes(*base_state) - bytes_before,
                             std::memory_order_relaxed);
  } else {
    RecomputeTrackedBytes();
  }
  if (board_ != nullptr) {
    board_->PublishModel(ContextInterner::kEmptyContext, domain_fp_,
                         std::make_shared<Database>(base_state->ext.Clone()));
  }
  // Repaired model stays; only the PLANS (ordered against pre-epoch
  // cardinalities) and their compiled programs refresh when the epoch
  // moved a watched relation past the 2x band.
  return MaybeReplanForCardinality();
}

Status BottomUpEngine::MaybeReplanForCardinality() {
  for (const auto& [pred, planned] : planned_counts_) {
    const int64_t now = base_->CountFor(pred);
    if (now > 2 * planned || 2 * now < planned) {
      return RebuildActivePlans();
    }
  }
  return Status::OK();
}

void BottomUpEngine::AttachMemoBoard(MemoBoard* board) { board_ = board; }

Status BottomUpEngine::RepairBaseModel(State* state, const BaseDelta& delta,
                                       WorkCtx* work) {
  Database ins(base_->symbols_ptr(), base_->backend());
  Database del(base_->symbols_ptr(), base_->backend());
  for (const Fact& f : delta.inserts) {
    if (state->ext.Contains(f)) {
      // Already derived: the fact moves from "derived" to "stored" with
      // no visibility change (ext must never shadow base facts).
      state->ext.Retract(f);
    } else {
      ins.Insert(f);
    }
  }
  for (const Fact& f : delta.retracts) {
    // Physically gone from the base already. Its defining stratum (if
    // any) will try to rederive it; until then it counts as deleted.
    if (!state->ext.Contains(f)) del.Insert(f);
  }
  for (int s = 0; s < strata_.num_strata; ++s) {
    HYPO_RETURN_IF_ERROR(RepairStratum(state, s, &ins, &del, work));
  }
  return Status::OK();
}

Status BottomUpEngine::RepairStratum(State* state, int stratum, Database* ins,
                                     Database* del, WorkCtx* work) {
  const RuleBase& program = active();
  const bool any_delta = !ins->empty() || !del->empty();
  bool has_hypo = false;
  bool pos_touched = false;   // Some positive premise pred has a delta.
  bool neg_touched = false;   // Some negated premise pred has a delta.
  bool head_deleted = false;  // A deleted fact's pred is defined here.
  for (int r : strata_.rules_by_stratum[stratum]) {
    const Rule& rule = program.rule(r);
    if (del->CountFor(rule.head.predicate) > 0) head_deleted = true;
    for (const Premise& p : rule.premises) {
      const PredicateId pred = p.atom.predicate;
      const bool touched =
          ins->CountFor(pred) > 0 || del->CountFor(pred) > 0;
      switch (p.kind) {
        case PremiseKind::kPositive:
          if (touched) pos_touched = true;
          break;
        case PremiseKind::kNegated:
          if (touched) neg_touched = true;
          break;
        case PremiseKind::kHypothetical:
          has_hypo = true;
          break;
      }
    }
  }
  if (!pos_touched && !neg_touched && !head_deleted &&
      !(has_hypo && any_delta)) {
    return Status::OK();  // The delta cannot reach this stratum.
  }
  if (neg_touched || (has_hypo && any_delta)) {
    // A flipped negation retracts facts with no deleted support behind
    // them, and a hypothetical premise consults a child model that
    // changed wholesale: both are outside DRed's reach — rebuild + diff.
    return RepairStratumRecompute(state, stratum, ins, del, work);
  }
  return RepairStratumIncremental(state, stratum, ins, del, work);
}

Status BottomUpEngine::RepairStratumIncremental(State* state, int stratum,
                                                Database* ins, Database* del,
                                                WorkCtx* work) {
  ++work->stats->strata_repaired;
  const RuleBase& program = active();
  const std::vector<int>& stratum_rules = strata_.rules_by_stratum[stratum];

  std::unordered_set<PredicateId> pos_preds;  // Delta routing targets.
  std::unordered_set<PredicateId> head_preds;
  for (int r : stratum_rules) {
    const Rule& rule = program.rule(r);
    head_preds.insert(rule.head.predicate);
    for (const Premise& p : rule.premises) {
      if (p.kind == PremiseKind::kPositive) pos_preds.insert(p.atom.predicate);
    }
  }

  // One batch of delta rule versions: for every rule and every positive
  // premise whose predicate appears in `round`, run the version with that
  // premise designated over `round` (others in plus/minus mode), handing
  // each ground head to `on_head`.
  auto run_versions =
      [&](const Database& round, const Database* plus, const Database* minus,
          const std::function<StatusOr<bool>(const Fact&)>& on_head)
      -> Status {
    for (int rule_index : stratum_rules) {
      const Rule& rule = program.rule(rule_index);
      for (int i = 0; i < static_cast<int>(rule.premises.size()); ++i) {
        const Premise& p = rule.premises[i];
        if (p.kind != PremiseKind::kPositive) continue;
        if (round.CountFor(p.atom.predicate) == 0) continue;
        EvalCtx ctx;
        ctx.state = state;
        ctx.work = work;
        ctx.delta_premise = i;
        ctx.delta = &round;
        ctx.vis_plus = plus;
        ctx.vis_minus = minus;
        const vm::Program* prog =
            options_.executor == ExecutorKind::kVm &&
                    rule_index < static_cast<int>(rule_programs_.size())
                ? rule_programs_[rule_index].For(i)
                : nullptr;
        if (prog != nullptr) {
          auto emit = [&](const ConstId* regs) -> StatusOr<bool> {
            ++work->stats->goals_expanded;
            HYPO_RETURN_IF_ERROR(CheckLimits(work));
            return on_head(vm::GroundAtom(rule.head, regs));
          };
          HYPO_RETURN_IF_ERROR(
              RunProgram(rule.premises, *prog, &ctx, emit).status());
          continue;
        }
        Binding binding(rule.num_vars());
        auto sink = [&](const Binding& b) -> StatusOr<bool> {
          ++work->stats->goals_expanded;
          HYPO_RETURN_IF_ERROR(CheckLimits(work));
          return on_head(b.Ground(rule.head));
        };
        HYPO_RETURN_IF_ERROR(WalkPlan(rule.premises, rule_plans_[rule_index],
                                      0, &binding, &ctx, sink)
                                 .status());
      }
    }
    return Status::OK();
  };

  // DRed overdeletion: every derived fact with SOME derivation through a
  // deleted fact, to fixpoint. Non-designated premises evaluate against
  // the PRE-epoch model (plus = deletions so far, minus = insertions so
  // far); same-stratum overdeleted facts are still physically present
  // until the fixpoint completes, so they stay visible here too.
  Database overdeleted(base_->symbols_ptr(), base_->backend());
  {
    Database round(base_->symbols_ptr(), base_->backend());
    del->ForEach([&](const Fact& f) {
      if (pos_preds.count(f.predicate) > 0) round.Insert(f);
    });
    while (!round.empty()) {
      Database next(base_->symbols_ptr(), base_->backend());
      HYPO_RETURN_IF_ERROR(run_versions(
          round, /*plus=*/del, /*minus=*/ins,
          [&](const Fact& h) -> StatusOr<bool> {
            // Only currently derived facts can be overdeleted: base facts
            // are stored, not derived, and already-queued heads are done.
            if (!state->ext.Contains(h)) return true;
            if (!overdeleted.Insert(h)) return true;
            ++work->stats->facts_overdeleted;
            if (pos_preds.count(h.predicate) > 0) next.Insert(h);
            return true;
          }));
      round = std::move(next);
    }
  }
  // Physically prune before rederiving, so an overdeleted fact can never
  // support itself (or a cycle partner) through a stale derivation. Each
  // touched relation is rebuilt once from its survivors — Retract per
  // fact would cost O(overdeleted × |relation|) in erase scans and
  // repeated index invalidations.
  {
    std::unordered_set<PredicateId> touched;
    overdeleted.ForEach([&](const Fact& f) { touched.insert(f.predicate); });
    for (PredicateId p : touched) {
      std::vector<Tuple> survivors;
      const Database::RowsView rows = state->ext.TuplesFor(p);
      for (size_t i = 0; i < rows.size(); ++i) {
        Tuple t = rows.TupleAt(i);
        if (!overdeleted.Contains(p, t)) survivors.push_back(std::move(t));
      }
      state->ext.ClearRelation(p);
      for (Tuple& t : survivors) state->ext.Insert(Fact{p, std::move(t)});
    }
  }

  // Rederivation: overdeleted facts — and this stratum's retracted base
  // facts — that still have a derivation in the pruned model survive the
  // epoch. Late restorations cascade through the insertion rounds below.
  Database restored(base_->symbols_ptr(), base_->backend());
  Database reinserted(base_->symbols_ptr(), base_->backend());
  std::vector<Fact> candidates;
  overdeleted.ForEach([&](const Fact& f) { candidates.push_back(f); });
  del->ForEach([&](const Fact& f) {
    if (head_preds.count(f.predicate) > 0) candidates.push_back(f);
  });
  for (const Fact& f : candidates) {
    HYPO_ASSIGN_OR_RETURN(bool derivable,
                          HeadDerivable(f, stratum, state, work));
    if (!derivable) continue;
    state->ext.Insert(f);
    ++work->stats->facts_rederived;
    reinserted.Insert(f);
    if (overdeleted.Contains(f)) {
      restored.Insert(f);
    } else {
      del->Retract(f);  // A retracted base fact that is still derivable.
    }
  }

  // Insertion semi-naive rounds: this epoch's newly visible facts plus
  // every rederived fact propagate through the stratum's rules against
  // the CURRENT model.
  {
    Database round(base_->symbols_ptr(), base_->backend());
    ins->ForEach([&](const Fact& f) {
      if (pos_preds.count(f.predicate) > 0) round.Insert(f);
    });
    reinserted.ForEach([&](const Fact& f) {
      if (pos_preds.count(f.predicate) > 0) round.Insert(f);
    });
    while (!round.empty()) {
      Database next(base_->symbols_ptr(), base_->backend());
      HYPO_RETURN_IF_ERROR(run_versions(
          round, /*plus=*/nullptr, /*minus=*/nullptr,
          [&](const Fact& h) -> StatusOr<bool> {
            if (Visible(*state, h)) return true;
            state->ext.Insert(h);
            ++work->stats->facts_derived;
            // Net bookkeeping: a fact visible before the epoch
            // (overdeleted above, or a retracted base fact) is merely
            // restored; everything else is a genuine insertion.
            if (overdeleted.Contains(h)) {
              restored.Insert(h);
            } else if (del->Contains(h)) {
              del->Retract(h);
            } else {
              ins->Insert(h);
            }
            if (pos_preds.count(h.predicate) > 0) next.Insert(h);
            return true;
          }));
      round = std::move(next);
    }
  }

  // Commit this stratum's net deletions for the strata above.
  overdeleted.ForEach([&](const Fact& f) {
    if (!restored.Contains(f)) del->Insert(f);
  });
  return Status::OK();
}

Status BottomUpEngine::RepairStratumRecompute(State* state, int stratum,
                                              Database* ins, Database* del,
                                              WorkCtx* work) {
  ++work->stats->strata_recomputed;
  const RuleBase& program = active();
  std::unordered_set<PredicateId> head_preds;
  for (int r : strata_.rules_by_stratum[stratum]) {
    head_preds.insert(program.rule(r).head.predicate);
  }
  // Pre-epoch visible set of each head predicate: what is stored now,
  // minus this epoch's insertions, plus its deletions.
  std::unordered_map<PredicateId, std::unordered_set<Tuple, TupleHash>>
      old_visible;
  auto insert_tuples = [](const Database& db, PredicateId p, auto&& accept) {
    const Database::RowsView rows = db.TuplesFor(p);
    for (size_t i = 0; i < rows.size(); ++i) accept(rows.TupleAt(i));
  };
  for (PredicateId p : head_preds) {
    auto& old_set = old_visible[p];
    insert_tuples(*base_, p, [&](Tuple t) {
      if (!ins->Contains(p, t)) old_set.insert(std::move(t));
    });
    insert_tuples(state->ext, p, [&](Tuple t) {
      if (!ins->Contains(p, t)) old_set.insert(std::move(t));
    });
    insert_tuples(*del, p, [&](Tuple t) { old_set.insert(std::move(t)); });
    // The predicate's net delta is recomputed from scratch by the diff.
    ins->ClearRelation(p);
    del->ClearRelation(p);
    state->ext.ClearRelation(p);
  }
  HYPO_RETURN_IF_ERROR(ComputeStratumSequential(state, stratum, work));
  for (PredicateId p : head_preds) {
    const auto& old_set = old_visible[p];
    std::unordered_set<Tuple, TupleHash> new_set;
    insert_tuples(*base_, p, [&](Tuple t) { new_set.insert(std::move(t)); });
    insert_tuples(state->ext, p,
                  [&](Tuple t) { new_set.insert(std::move(t)); });
    for (const Tuple& t : new_set) {
      if (old_set.count(t) == 0) ins->Insert(Fact{p, t});
    }
    for (const Tuple& t : old_set) {
      if (new_set.count(t) == 0) del->Insert(Fact{p, t});
    }
  }
  return Status::OK();
}

StatusOr<bool> BottomUpEngine::HeadDerivable(const Fact& fact, int stratum,
                                             State* state, WorkCtx* work) {
  const RuleBase& program = active();
  for (int rule_index : strata_.rules_by_stratum[stratum]) {
    const Rule& rule = program.rule(rule_index);
    if (rule.head.predicate != fact.predicate) continue;
    Binding binding(rule.num_vars());
    std::vector<VarIndex> trail;
    // Bind the head against the fact; a constant mismatch or inconsistent
    // repeated variable rules this rule out immediately.
    if (!binding.MatchTuple(rule.head, fact.args, &trail)) continue;
    EvalCtx ctx;
    ctx.state = state;
    ctx.work = work;
    bool found = false;
    auto sink = [&found](const Binding&) -> StatusOr<bool> {
      found = true;
      return false;  // One witness suffices.
    };
    HYPO_RETURN_IF_ERROR(WalkPlan(rule.premises, rule_plans_[rule_index], 0,
                                  &binding, &ctx, sink)
                             .status());
    if (found) return true;
  }
  return false;
}

std::string BottomUpEngine::ExplainPlans() const {
  if (!initialized_) return "bottom-up: not initialized\n";
  std::ostringstream out;
  const RuleBase& program = active();
  const SymbolTable& symbols = *base_->symbols_ptr();
  out << "engine=bottom-up executor="
      << (options_.executor == ExecutorKind::kVm ? "vm" : "interp") << "\n";
  for (int r = 0; r < program.num_rules(); ++r) {
    const Rule& rule = program.rule(r);
    out << "  rule " << r << ": "
        << symbols.PredicateName(rule.head.predicate) << "/"
        << rule.head.args.size() << "\n";
    out << DescribePlan(rule_plans_[r], rule.premises, symbols);
    if (r < static_cast<int>(rule_programs_.size())) {
      out << "    bytecode (full):\n"
          << vm::Disassemble(rule_programs_[r].full, rule.premises, symbols);
      for (const auto& [premise, prog] : rule_programs_[r].deltas) {
        out << "    bytecode (delta p" << premise << "):\n"
            << vm::Disassemble(prog, rule.premises, symbols);
      }
    }
  }
  return out.str();
}

const EngineStats& BottomUpEngine::stats() const {
  // Index builds live in the Databases themselves: the shared base, each
  // memoized state's model, and the per-round deltas already retired.
  stats_.index_builds = retired_index_builds_.load(std::memory_order_relaxed) +
                        base_->index_builds();
  stats_.memo_bytes = interner_.ApproxBytes() + ctx_interner_.ApproxBytes();
  stats_.sorted_probes = base_->sorted_probes();
  stats_.merge_join_rows = base_->merge_join_rows();
  stats_.index_sort_micros = base_->index_sort_micros();
  stats_.arena_bytes = base_->ArenaBytes();
  states_.ForEach([this](const State& state) {
    stats_.index_builds += state.ext.index_builds();
    stats_.sorted_probes += state.ext.sorted_probes();
    stats_.merge_join_rows += state.ext.merge_join_rows();
    stats_.index_sort_micros += state.ext.index_sort_micros();
    stats_.arena_bytes += state.ext.ArenaBytes();
    stats_.memo_bytes += StateBytes(state);
  });
  stats_.demanded_predicates =
      demand_profile_ != nullptr ? demand_profile_->num_demanded() : 0;
  // Non-empty hypothetical contexts interned as state-cache keys (the
  // ever-present empty context is the base state, not a hypothesis).
  stats_.contexts_interned = ctx_interner_.num_contexts() - 1;
  if (pool_ != nullptr) {
    stats_.tasks_stolen = pool_->tasks_stolen();
    stats_.peak_workers =
        std::max<int64_t>(stats_.peak_workers, pool_->peak_active());
  }
  return stats_;
}

void BottomUpEngine::ResetStats() {
  stats_ = EngineStats();
  retired_index_builds_.store(0, std::memory_order_relaxed);
  if (pool_ != nullptr) pool_->ResetCounters();
}

StatusOr<bool> BottomUpEngine::ProveFact(const Fact& fact) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(EnsureFactConstants(fact));
  GuardScope guard_scope(&guard_, options_, &stats_);
  if (guard_.wants_memory()) RecomputeTrackedBytes();
  std::vector<Fact> seeds;
  int through = 0;
  HYPO_RETURN_IF_ERROR(PrepareFactDemand(fact, &seeds, &through));
  WorkCtx work;
  work.stats = &stats_;
  HYPO_ASSIGN_OR_RETURN(State * top,
                        MaterializeState({}, through, seeds, &work));
  return Visible(*top, fact);
}

StatusOr<bool> BottomUpEngine::ProveQuery(const Query& query) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(CheckQueryRestrictions(*rulebase_, query));
  HYPO_RETURN_IF_ERROR(EnsureConstants(query));
  GuardScope guard_scope(&guard_, options_, &stats_);
  if (guard_.wants_memory()) RecomputeTrackedBytes();
  std::vector<Fact> seeds;
  int through = 0;
  HYPO_RETURN_IF_ERROR(PrepareQueryDemand(query, &seeds, &through));
  WorkCtx work;
  work.stats = &stats_;
  HYPO_ASSIGN_OR_RETURN(State * top,
                        MaterializeState({}, through, seeds, &work));
  Atom head = PseudoHead(query);
  BodyPlan plan =
      BodyPlan::Build(query.premises, &head, query.num_vars(), base_);
  EvalCtx ctx;
  ctx.state = top;
  ctx.work = &work;
  bool found = false;
  if (options_.executor == ExecutorKind::kVm) {
    vm::CompileInput in;
    in.premises = &query.premises;
    in.plan = &plan;
    in.num_vars = query.num_vars();
    vm::Program prog = vm::Compile(in);
    ++stats_.vm_programs_compiled;
    auto emit = [&found](const ConstId*) -> StatusOr<bool> {
      found = true;
      return false;  // Stop at the first witness.
    };
    HYPO_RETURN_IF_ERROR(
        RunProgram(query.premises, prog, &ctx, emit).status());
    return found;
  }
  Binding binding(query.num_vars());
  auto sink = [&found](const Binding&) -> StatusOr<bool> {
    found = true;
    return false;  // Stop at the first witness.
  };
  HYPO_RETURN_IF_ERROR(
      WalkPlan(query.premises, plan, 0, &binding, &ctx, sink).status());
  return found;
}

StatusOr<std::vector<Tuple>> BottomUpEngine::Answers(const Query& query) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(CheckQueryRestrictions(*rulebase_, query));
  HYPO_RETURN_IF_ERROR(EnsureConstants(query));
  GuardScope guard_scope(&guard_, options_, &stats_);
  if (guard_.wants_memory()) RecomputeTrackedBytes();
  std::vector<Fact> seeds;
  int through = 0;
  HYPO_RETURN_IF_ERROR(PrepareQueryDemand(query, &seeds, &through));
  WorkCtx work;
  work.stats = &stats_;
  HYPO_ASSIGN_OR_RETURN(State * top,
                        MaterializeState({}, through, seeds, &work));
  Atom head = PseudoHead(query);
  BodyPlan plan =
      BodyPlan::Build(query.premises, &head, query.num_vars(), base_);
  EvalCtx ctx;
  ctx.state = top;
  ctx.work = &work;
  std::unordered_set<Tuple, TupleHash> seen;
  std::vector<Tuple> answers;
  if (options_.executor == ExecutorKind::kVm) {
    vm::CompileInput in;
    in.premises = &query.premises;
    in.plan = &plan;
    in.num_vars = query.num_vars();
    vm::Program prog = vm::Compile(in);
    ++stats_.vm_programs_compiled;
    // The pseudo-head enumerates every query variable, so all registers
    // are bound at emit and the register file IS the answer tuple.
    auto emit = [&](const ConstId* regs) -> StatusOr<bool> {
      Tuple t(regs, regs + query.num_vars());
      if (seen.insert(t).second) answers.push_back(std::move(t));
      return true;
    };
    HYPO_RETURN_IF_ERROR(
        RunProgram(query.premises, prog, &ctx, emit).status());
    return answers;
  }
  Binding binding(query.num_vars());
  auto sink = [&](const Binding& b) -> StatusOr<bool> {
    Tuple t = b.values();
    if (seen.insert(t).second) answers.push_back(std::move(t));
    return true;
  };
  HYPO_RETURN_IF_ERROR(
      WalkPlan(query.premises, plan, 0, &binding, &ctx, sink).status());
  return answers;
}

StatusOr<std::vector<Tuple>> BottomUpEngine::FactsFor(PredicateId pred) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  GuardScope guard_scope(&guard_, options_, &stats_);
  if (guard_.wants_memory()) RecomputeTrackedBytes();
  int through = strata_.num_strata - 1;
  if (options_.demand) {
    bool widened = demand_program_ == nullptr;
    if (rulebase_->IsDefined(pred)) {
      widened |= demand_profile_->AddFullDemand(pred);
    }
    HYPO_RETURN_IF_ERROR(RefreshDemandProgram(widened));
    through = StratumCap(pred);
  }
  WorkCtx work;
  work.stats = &stats_;
  HYPO_ASSIGN_OR_RETURN(State * top, MaterializeState({}, through, {}, &work));
  std::vector<Tuple> out;
  const Database::RowsView base_rows = base_->TuplesFor(pred);
  const Database::RowsView ext_rows = top->ext.TuplesFor(pred);
  out.reserve(base_rows.size() + ext_rows.size());
  for (size_t i = 0; i < base_rows.size(); ++i) {
    out.push_back(base_rows.TupleAt(i));
  }
  for (size_t i = 0; i < ext_rows.size(); ++i) {
    out.push_back(ext_rows.TupleAt(i));
  }
  return out;
}

}  // namespace hypo
