#include "engine/engine.h"

#include <algorithm>
#include <unordered_set>

#include "base/hash.h"

namespace hypo {

std::vector<ConstId> ComputeDomain(const RuleBase& rulebase,
                                   const Database& db,
                                   const std::vector<ConstId>& extra) {
  std::unordered_set<ConstId> domain;
  domain.insert(rulebase.constants().begin(), rulebase.constants().end());
  domain.insert(db.constants().begin(), db.constants().end());
  domain.insert(extra.begin(), extra.end());
  std::vector<ConstId> out(domain.begin(), domain.end());
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t DomainFingerprint(const std::vector<ConstId>& domain) {
  uint64_t fp = 0x9E3779B97F4A7C15ull + domain.size();
  for (ConstId c : domain) {
    fp = HashCombine(fp, static_cast<uint64_t>(static_cast<uint32_t>(c)));
  }
  return fp;
}

}  // namespace hypo
