#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>

#include "base/hash.h"

namespace hypo {

namespace {

// -1 = uninitialized; else an ExecutorKind value. Initialized from the
// environment on first use so test/bench harnesses can flip the whole
// process (every engine constructed afterwards) per run.
std::atomic<int>& DefaultExecutorSlot() {
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace

ExecutorKind DefaultExecutor() {
  std::atomic<int>& slot = DefaultExecutorSlot();
  int v = slot.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("HYPO_EXEC");
    ExecutorKind kind = (env != nullptr && std::strcmp(env, "interp") == 0)
                            ? ExecutorKind::kInterp
                            : ExecutorKind::kVm;
    v = static_cast<int>(kind);
    slot.store(v, std::memory_order_relaxed);
  }
  return static_cast<ExecutorKind>(v);
}

Status ValidateExecutorEnv() {
  const char* env = std::getenv("HYPO_EXEC");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "interp") == 0 ||
      std::strcmp(env, "vm") == 0) {
    return Status::OK();
  }
  return Status::InvalidArgument(std::string("unknown HYPO_EXEC value \"") +
                                 env + "\" (expected \"vm\" or \"interp\")");
}

std::vector<ConstId> ComputeDomain(const RuleBase& rulebase,
                                   const Database& db,
                                   const std::vector<ConstId>& extra) {
  std::unordered_set<ConstId> domain;
  domain.insert(rulebase.constants().begin(), rulebase.constants().end());
  domain.insert(db.constants().begin(), db.constants().end());
  domain.insert(extra.begin(), extra.end());
  std::vector<ConstId> out(domain.begin(), domain.end());
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t DomainFingerprint(const std::vector<ConstId>& domain) {
  uint64_t fp = 0x9E3779B97F4A7C15ull + domain.size();
  for (ConstId c : domain) {
    fp = HashCombine(fp, static_cast<uint64_t>(static_cast<uint32_t>(c)));
  }
  return fp;
}

}  // namespace hypo
