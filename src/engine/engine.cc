#include "engine/engine.h"

#include <algorithm>
#include <unordered_set>

namespace hypo {

std::vector<ConstId> ComputeDomain(const RuleBase& rulebase,
                                   const Database& db,
                                   const std::vector<ConstId>& extra) {
  std::unordered_set<ConstId> domain;
  domain.insert(rulebase.constants().begin(), rulebase.constants().end());
  domain.insert(db.constants().begin(), db.constants().end());
  domain.insert(extra.begin(), extra.end());
  std::vector<ConstId> out(domain.begin(), domain.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hypo
