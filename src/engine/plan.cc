#include "engine/plan.h"

#include <algorithm>
#include <sstream>

#include "db/database.h"

namespace hypo {

namespace {

/// Appends the unbound variables of `atom` to `out` and marks them bound.
void CollectUnbound(const Atom& atom, std::vector<bool>* bound,
                    std::vector<VarIndex>* out) {
  for (const Term& t : atom.args) {
    if (t.is_var() && !(*bound)[t.var_index()]) {
      (*bound)[t.var_index()] = true;
      out->push_back(t.var_index());
    }
  }
}

int CountUnbound(const Atom& atom, const std::vector<bool>& bound) {
  int n = 0;
  for (const Term& t : atom.args) {
    if (t.is_var() && !bound[t.var_index()]) ++n;
  }
  return n;
}

/// Columns whose value is fixed before the premise runs (a constant or an
/// already-bound variable): each one narrows the index probe.
int CountBoundColumns(const Atom& atom, const std::vector<bool>& bound) {
  int n = 0;
  for (const Term& t : atom.args) {
    if (t.is_const() || bound[t.var_index()]) ++n;
  }
  return n;
}

/// The bound-column mask the runtime BoundSignature will compute for
/// `atom` given the variables bound before this step.
ColumnMask StaticProbeMask(const Atom& atom, const std::vector<bool>& bound) {
  ColumnMask mask = 0;
  int limit = std::min<int>(static_cast<int>(atom.args.size()),
                            kMaxIndexedColumns);
  for (int i = 0; i < limit; ++i) {
    const Term& t = atom.args[i];
    if (t.is_const() || bound[t.var_index()]) mask |= 1u << i;
  }
  return mask;
}

}  // namespace

BodyPlan BodyPlan::Build(const std::vector<Premise>& premises,
                         const Atom* head, int num_vars,
                         const Database* db) {
  BodyPlan plan;
  std::vector<bool> bound(num_vars, false);

  // 1. Positive premises, greedily cheapest-first: fewest unbound
  // variables, then most bound columns (index probes beat scans), then
  // smallest stored relation, then source order.
  std::vector<int> positive;
  for (int i = 0; i < static_cast<int>(premises.size()); ++i) {
    if (premises[i].kind == PremiseKind::kPositive) positive.push_back(i);
  }
  std::vector<bool> used(premises.size(), false);
  for (size_t picked = 0; picked < positive.size(); ++picked) {
    int best = -1;
    int best_unbound = 0;
    int best_cols = 0;
    int best_count = 0;
    for (int i : positive) {
      if (used[i]) continue;
      int u = CountUnbound(premises[i].atom, bound);
      int cols = CountBoundColumns(premises[i].atom, bound);
      int count = db == nullptr ? 0 : db->CountFor(premises[i].atom.predicate);
      if (best == -1 || u < best_unbound ||
          (u == best_unbound &&
           (cols > best_cols || (cols == best_cols && count < best_count)))) {
        best = i;
        best_unbound = u;
        best_cols = cols;
        best_count = count;
      }
    }
    used[best] = true;
    plan.steps.push_back(
        PlanStep{PlanStep::Kind::kMatchPositive, best, {},
                 StaticProbeMask(premises[best].atom, bound)});
    for (const Term& t : premises[best].atom.args) {
      if (t.is_var()) bound[t.var_index()] = true;
    }
  }

  // 2. Hypothetical premises: enumerate their unbound variables (the
  // paper's θ over dom(R, DB)), then test.
  for (int i = 0; i < static_cast<int>(premises.size()); ++i) {
    if (premises[i].kind != PremiseKind::kHypothetical) continue;
    std::vector<VarIndex> to_enum;
    CollectUnbound(premises[i].atom, &bound, &to_enum);
    for (const Atom& added : premises[i].additions) {
      CollectUnbound(added, &bound, &to_enum);
    }
    for (const Atom& deleted : premises[i].deletions) {
      CollectUnbound(deleted, &bound, &to_enum);
    }
    if (!to_enum.empty()) {
      plan.steps.push_back(
          PlanStep{PlanStep::Kind::kEnumerateVars, -1, std::move(to_enum)});
    }
    plan.steps.push_back(PlanStep{PlanStep::Kind::kHypothetical, i, {}});
  }

  // 3. Unbound head variables (unsafe heads range over the domain).
  if (head != nullptr) {
    std::vector<VarIndex> to_enum;
    CollectUnbound(*head, &bound, &to_enum);
    if (!to_enum.empty()) {
      plan.steps.push_back(
          PlanStep{PlanStep::Kind::kEnumerateVars, -1, std::move(to_enum)});
    }
  }

  // 4. Negated premises last; their remaining free variables get the ∄
  // reading inside the engines.
  for (int i = 0; i < static_cast<int>(premises.size()); ++i) {
    if (premises[i].kind == PremiseKind::kNegated) {
      plan.steps.push_back(PlanStep{PlanStep::Kind::kNegated, i, {},
                                    StaticProbeMask(premises[i].atom, bound)});
    }
  }
  return plan;
}

std::string DescribePlan(const BodyPlan& plan,
                         const std::vector<Premise>& premises,
                         const SymbolTable& symbols) {
  std::ostringstream out;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    out << "    step " << i << ": ";
    switch (step.kind) {
      case PlanStep::Kind::kMatchPositive:
        out << "match p" << step.premise_index << "="
            << symbols.PredicateName(
                   premises[step.premise_index].atom.predicate)
            << " mask=0x" << std::hex << step.probe_mask << std::dec;
        break;
      case PlanStep::Kind::kEnumerateVars:
        out << "enumerate";
        for (VarIndex v : step.enum_vars) out << " r" << v;
        break;
      case PlanStep::Kind::kHypothetical:
        out << "hypothetical p" << step.premise_index << "="
            << symbols.PredicateName(
                   premises[step.premise_index].atom.predicate);
        break;
      case PlanStep::Kind::kNegated:
        out << "negated p" << step.premise_index << "="
            << symbols.PredicateName(
                   premises[step.premise_index].atom.predicate)
            << " mask=0x" << std::hex << step.probe_mask << std::dec;
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hypo
