#ifndef HYPO_ENGINE_STATE_CACHE_H_
#define HYPO_ENGINE_STATE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "base/failpoint.h"
#include "base/status.h"

namespace hypo {

/// A sharded, mutex-striped memo table from interned context keys to
/// lazily computed state models, safe for concurrent lookups from the
/// parallel fixpoint's workers.
///
/// S is the engine's state record. It must expose a `bool computing`
/// member (false at rest) that the cache flips while a thread runs the
/// expensive compute step outside the shard lock; concurrent requests for
/// the same key wait on the shard's condition variable instead of
/// duplicating the work or reading a half-built model.
///
/// The one subtlety EnsureComputed is shaped around: whether a memoized
/// state needs (re)computation, and what a caller reads out of it, must
/// both happen under the shard lock — demand-driven evaluation *mutates*
/// memoized states (monotone re-extension when a later query demands a
/// deeper slice), so a bare "return S*" API would hand out a pointer
/// another worker might be extending. Callers therefore pass closures and
/// never see a raw pointer outside the lock.
///
/// Deadlock-freedom: a compute step may recursively call EnsureComputed,
/// but only ever for *strictly larger* hypothetical states (children add
/// facts; states only grow — DESIGN.md §3). Waits thus follow a strict
/// partial order on states and cannot cycle.
template <typename S>
class ShardedStateCache {
 public:
  /// `factory(key)` builds the record on first touch (under the shard
  /// lock; must be cheap). `needs_run(s)` decides, under the lock, whether
  /// `compute` must run for this request. `compute(s)` runs OUTSIDE the
  /// lock with s->computing set; it may mutate *s freely and recurse into
  /// the cache for larger states. `read(s)` runs under the lock after the
  /// state is settled and extracts whatever the caller needs (a Visible()
  /// check, a copy of answer tuples). Returns compute's status, or OK.
  ///
  /// Templated on the callables (rather than std::function) because this
  /// sits on the engine's hottest path — every memoized hypothetical test
  /// lands here, and four type-erased closures per hit measurably drag
  /// the sequential fixpoint.
  template <typename Factory, typename NeedsRun, typename Compute,
            typename Read>
  Status EnsureComputed(int64_t key, const Factory& factory,
                        const NeedsRun& needs_run, const Compute& compute,
                        const Read& read) {
    Shard& shard = shards_[ShardOf(key)];
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.states.find(key);
    if (it == shard.states.end()) {
      it = shard.states.emplace(key, factory(key)).first;
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    S* s = it->second.get();
    for (;;) {
      if (s->computing) {
        // Another worker is materializing this state; wait for it, then
        // re-check (it may have been computed for a shallower demand).
        shard.cv.wait(lock, [&] { return !s->computing; });
        continue;
      }
      if (!needs_run(s)) break;
      // Injected abort between "must run" and "in flight": the state is
      // left at rest (never half-marked), so recovery just re-enters.
      HYPO_FAILPOINT("statecache.materialize");
      s->computing = true;
      lock.unlock();
      Status status = compute(s);
      lock.lock();
      s->computing = false;
      shard.cv.notify_all();
      if (!status.ok()) return status;
      // Loop: under demand, a concurrent deeper request may have queued
      // behind us; needs_run re-evaluates against the fresh state.
    }
    read(s);
    return Status::OK();
  }

  int64_t size() const { return size_.load(std::memory_order_relaxed); }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.states.clear();
    }
    size_.store(0, std::memory_order_relaxed);
  }

  /// Removes every memoized state except `keep`'s record, returning the
  /// retained record (null when `keep` is not present). Single-threaded
  /// use only (between queries, like ForEach): the returned pointer is
  /// handed out raw, which is exactly what EnsureComputed avoids during
  /// concurrent evaluation.
  S* RetainOnly(int64_t keep) {
    S* kept = nullptr;
    for (int i = 0; i < kShards; ++i) {
      Shard& shard = shards_[i];
      std::lock_guard<std::mutex> lock(shard.mu);
      if (i == ShardOf(keep)) {
        auto it = shard.states.find(keep);
        if (it != shard.states.end()) {
          std::unique_ptr<S> node = std::move(it->second);
          shard.states.clear();
          kept = node.get();
          shard.states.emplace(keep, std::move(node));
          continue;
        }
      }
      shard.states.clear();
    }
    size_.store(kept != nullptr ? 1 : 0, std::memory_order_relaxed);
    return kept;
  }

  /// Visits every state single-threadedly (between queries, for stats
  /// aggregation). Not safe concurrently with EnsureComputed.
  void ForEach(const std::function<void(const S&)>& fn) const {
    for (const Shard& shard : shards_) {
      for (const auto& [key, s] : shard.states) {
        (void)key;
        fn(*s);
      }
    }
  }

 private:
  static constexpr int kShards = 16;

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<int64_t, std::unique_ptr<S>> states;
  };

  static int ShardOf(int64_t key) {
    // Mix so consecutive interned ids spread across shards.
    uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    return static_cast<int>(h >> 60) & (kShards - 1);
  }

  Shard shards_[kShards];
  std::atomic<int64_t> size_{0};
};

}  // namespace hypo

#endif  // HYPO_ENGINE_STATE_CACHE_H_
