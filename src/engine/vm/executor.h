#ifndef HYPO_ENGINE_VM_EXECUTOR_H_
#define HYPO_ENGINE_VM_EXECUTOR_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "db/database.h"
#include "db/overlay.h"
#include "engine/binding.h"
#include "engine/vm/bytecode.h"

namespace hypo {
namespace vm {

/// Cursor state for one kScan op: up to kMaxSegments storage segments
/// (base database, derived model, overlay additions, DRed vis_plus),
/// visited in order. Segments are declared at open time but each one is
/// probed lazily when the cursor first reaches it — the interpreter
/// probes each database's index only when the previous scan exhausts, and
/// the probe counters (and the snapshot bound, for models that grow while
/// scanned) must match.
struct ScanState {
  static constexpr int kMaxSegments = 4;

  struct Segment {
    enum class Kind : uint8_t { kNone, kDb, kAdded };
    Kind kind = Kind::kNone;
    const Database* db = nullptr;               // kDb
    const OverlayDatabase* overlay = nullptr;   // kAdded
    bool opened = false;
    Database::Scan scan;                        // kDb
    const std::vector<Tuple>* all = nullptr;    // kAdded
    const std::vector<RowId>* subset = nullptr; // kAdded, mask != 0
    size_t pos = 0;
  };

  Segment segs[kMaxSegments];
  int num_segs = 0;
  int cur = 0;
  Tuple key;  // Probe-key scratch, rebuilt on every open.

  void Clear() {
    num_segs = 0;
    cur = 0;
  }
  /// Segments are reset field-by-field, NOT `s = Segment{}`: `scan`
  /// carries the cursor's relation/index binding cache across re-opens
  /// (inner joins re-open once per outer row; Scan::Open revalidates
  /// the binding itself), so it must survive the reset.
  void AddDb(const Database* db) {
    Segment& s = segs[num_segs++];
    s.kind = Segment::Kind::kDb;
    s.db = db;
    s.opened = false;
  }
  void AddOverlay(const OverlayDatabase* overlay) {
    Segment& s = segs[num_segs++];
    s.kind = Segment::Kind::kAdded;
    s.overlay = overlay;
    s.opened = false;
    s.all = nullptr;
    s.subset = nullptr;
    s.pos = 0;
  }
};

struct OpState {
  ScanState scan;
  size_t enum_idx = 0;
};

/// Reusable execution frames, one per live Run nesting level. Delta
/// fixpoints call Run once per rule per round with only a handful of ops
/// each, so allocating the register file, the per-op scan states, and
/// the negation-probe binding on every call dominates those rounds. A
/// stack keyed by nesting depth keeps each vector's capacity warm across
/// calls while nested runs (hypothetical sub-fixpoints, tabled subproofs
/// re-entering on the same thread) still get a frame of their own. Not
/// thread-safe: stacks live in per-worker contexts or in engines that
/// serve one query at a time.
class FrameStack {
 public:
  struct Frame {
    std::vector<ConstId> regs;
    std::vector<OpState> states;
    Binding neg{0};  // kNegProbe scratch; all-unbound between uses.
  };

  /// Borrows the frame for the next nesting level: `num_vars` registers
  /// reset to kUnbound, the negation binding grown to match.
  Frame* Push(int num_vars) {
    if (frames_.size() <= depth_) {
      frames_.push_back(std::make_unique<Frame>());
    }
    Frame* f = frames_[depth_++].get();
    f->regs.assign(static_cast<size_t>(num_vars), kUnbound);
    f->neg.EnsureSize(num_vars);
    return f;
  }
  void Pop() { --depth_; }

 private:
  std::vector<std::unique_ptr<Frame>> frames_;
  size_t depth_ = 0;
};

/// RAII lease over FrameStack::Push/Pop.
class FrameLease {
 public:
  FrameLease(FrameStack* stack, int num_vars)
      : stack_(stack), frame_(stack->Push(num_vars)) {}
  ~FrameLease() { stack_->Pop(); }
  FrameLease(const FrameLease&) = delete;
  FrameLease& operator=(const FrameLease&) = delete;

  FrameStack::Frame* get() const { return frame_; }
  FrameStack::Frame* operator->() const { return frame_; }

 private:
  FrameStack* stack_;
  FrameStack::Frame* frame_;
};

/// Builds a kScan op's probe key from the registers.
inline void BuildKey(const Op& op, const std::vector<ConstId>& regs,
                     Tuple* key) {
  key->clear();
  for (const KeyAction& ka : op.key) {
    key->push_back(ka.from_reg ? regs[ka.operand]
                               : static_cast<ConstId>(ka.operand));
  }
}

/// Applies one action list to a candidate row. Loads write registers;
/// a failed check leaves any partial loads in place — they are provably
/// dead (every load is rewritten by the next candidate before any read,
/// and ops deeper in the program only read statically bound registers).
template <typename Row>
inline bool MatchActions(const std::vector<MatchAction>& actions,
                         const Row& row, ConstId* regs) {
  for (const MatchAction& a : actions) {
    const ConstId v = row[a.col];
    switch (a.kind) {
      case MatchAction::Kind::kCheckConst:
        if (v != a.operand) return false;
        break;
      case MatchAction::Kind::kCheckReg:
        if (v != regs[a.operand]) return false;
        break;
      case MatchAction::Kind::kLoadReg:
        regs[a.operand] = v;
        break;
    }
  }
  return true;
}

/// Runs `prog` against an engine host. Returns false iff the sink stopped
/// the enumeration early (mirroring the interpretive walker's sink
/// protocol), true when the program enumerated to exhaustion.
///
/// The host supplies storage, engine callbacks and metering:
///   Status OpenScan(const Op&, const std::vector<ConstId>& regs,
///                   ScanState*);              // declare segments
///   bool AcceptRow(const Op&, const Row&);    // pre-match filter+counters
///   StatusOr<bool> TestGround(const Op&, const std::vector<ConstId>&);
///   StatusOr<bool> ProveCall(const Op&, const std::vector<ConstId>&);
///   StatusOr<bool> HypoTest(const Op&, const std::vector<ConstId>&);
///   StatusOr<bool> NegHolds(const Op&, std::vector<ConstId>&);  // premise
///   StatusOr<bool> Emit(const std::vector<ConstId>& regs);
///   const std::vector<ConstId>& Domain();
///   Status CountEnumeration();
///   void FlushOps(int64_t executed);          // vm_ops_executed delta
template <typename Host>
StatusOr<bool> Run(const Program& prog, Host* host,
                   std::vector<ConstId>* regs_vec,
                   std::vector<OpState>* states) {
  if (states->size() < prog.ops.size()) states->resize(prog.ops.size());
  ConstId* regs = regs_vec->data();
  struct Flusher {
    Host* host;
    int64_t executed = 0;
    ~Flusher() { host->FlushOps(executed); }
  } ops{host};

  int pc = 0;
  bool forward = true;
  while (pc >= 0) {
    const Op& op = prog.ops[pc];
    ++ops.executed;
    switch (op.code) {
      case OpCode::kScan: {
        ScanState& st = (*states)[pc].scan;
        if (forward) {
          st.Clear();
          BuildKey(op, *regs_vec, &st.key);
          HYPO_RETURN_IF_ERROR(host->OpenScan(op, *regs_vec, &st));
        }
        bool matched = false;
        for (; st.cur < st.num_segs && !matched; matched ? 0 : ++st.cur) {
          ScanState::Segment& seg = st.segs[st.cur];
          if (seg.kind == ScanState::Segment::Kind::kDb) {
            if (!seg.opened) {
              seg.scan.Open(*seg.db, op.pred, op.mask, st.key);
              seg.opened = true;
            }
            const std::vector<MatchAction>& actions =
                seg.scan.index_served() ? op.post : op.full;
            while (!seg.scan.AtEnd()) {
              const Database::Scan::Row row = seg.scan.CurrentRow(op.arity);
              const bool ok = host->AcceptRow(op, row) &&
                              MatchActions(actions, row, regs);
              seg.scan.Next();
              if (ok) {
                matched = true;
                break;
              }
            }
          } else {
            if (!seg.opened) {
              seg.all = &seg.overlay->AddedTuplesFor(op.pred);
              if (op.mask != 0) {
                seg.subset =
                    seg.overlay->AddedProbe(op.pred, op.mask, st.key);
              }
              seg.pos = 0;
              seg.opened = true;
            }
            // Index-served additions already match the masked columns.
            const bool served = op.mask != 0;
            if (served && seg.subset == nullptr) continue;  // No bucket.
            const std::vector<MatchAction>& actions =
                served ? op.post : op.full;
            // Dynamic bound: proof frames may push/pop additions while
            // this scan is suspended, growing or trimming the tail.
            while (seg.pos <
                   (served ? seg.subset->size() : seg.all->size())) {
              const Tuple& row =
                  served ? (*seg.all)[(*seg.subset)[seg.pos]]
                         : (*seg.all)[seg.pos];
              ++seg.pos;
              if (host->AcceptRow(op, row) &&
                  MatchActions(actions, row, regs)) {
                matched = true;
                break;
              }
            }
          }
        }
        if (matched) {
          ++pc;
          forward = true;
        } else {
          pc = op.prev_choice;
          forward = false;
        }
        break;
      }
      case OpCode::kEnumDomain: {
        size_t& idx = (*states)[pc].enum_idx;
        const std::vector<ConstId>& domain = host->Domain();
        if (forward) {
          idx = 0;
        } else {
          ++idx;
        }
        if (idx < domain.size()) {
          // Metered per candidate value, exactly like the interpreter's
          // enumeration loops (the check precedes the bind).
          HYPO_RETURN_IF_ERROR(host->CountEnumeration());
          regs[op.var] = domain[idx];
          ++pc;
          forward = true;
        } else {
          pc = op.prev_choice;
          forward = false;
        }
        break;
      }
      case OpCode::kTestGround: {
        HYPO_ASSIGN_OR_RETURN(bool holds, host->TestGround(op, *regs_vec));
        if (holds) {
          ++pc;
          forward = true;
        } else {
          pc = op.prev_choice;
          forward = false;
        }
        break;
      }
      case OpCode::kProveCall: {
        HYPO_ASSIGN_OR_RETURN(bool holds, host->ProveCall(op, *regs_vec));
        if (holds) {
          ++pc;
          forward = true;
        } else {
          pc = op.prev_choice;
          forward = false;
        }
        break;
      }
      case OpCode::kHypoTest: {
        HYPO_ASSIGN_OR_RETURN(bool holds, host->HypoTest(op, *regs_vec));
        if (holds) {
          ++pc;
          forward = true;
        } else {
          pc = op.prev_choice;
          forward = false;
        }
        break;
      }
      case OpCode::kNegGround:
      case OpCode::kNegProbe:
      case OpCode::kNegCall: {
        HYPO_ASSIGN_OR_RETURN(bool holds, host->NegHolds(op, *regs_vec));
        if (holds) {
          ++pc;
          forward = true;
        } else {
          pc = op.prev_choice;
          forward = false;
        }
        break;
      }
      case OpCode::kEmitHead: {
        HYPO_ASSIGN_OR_RETURN(bool keep, host->Emit(*regs_vec));
        if (!keep) return false;  // Sink stopped the enumeration.
        pc = op.prev_choice;
        forward = false;
        break;
      }
    }
  }
  return true;
}

}  // namespace vm
}  // namespace hypo

#endif  // HYPO_ENGINE_VM_EXECUTOR_H_
