#ifndef HYPO_ENGINE_VM_BYTECODE_H_
#define HYPO_ENGINE_VM_BYTECODE_H_

#include <cstdint>
#include <vector>

#include "ast/rule.h"
#include "db/database.h"
#include "db/fact.h"

namespace hypo {
namespace vm {

/// The register file of a compiled rule body IS the rule's variable
/// numbering: register v holds the binding of VarIndex v, kUnbound when
/// the variable is (statically) unbound at the current program point.
/// There is no allocator and no renaming — the compiler proves at build
/// time which registers are bound at every op, so execution never asks.

/// One opcode of a compiled rule body. A program is a straight line of
/// ops; kScan and kEnumDomain are choice points (they enumerate
/// candidates), every other op is a test. An op that fails transfers
/// control to `Op::prev_choice` (the nearest earlier choice point), which
/// resumes its enumeration — classic backtracking join, flattened.
enum class OpCode : uint8_t {
  /// Enumerate the stored candidates of a positive premise (base +
  /// model/overlay segments, opened by the engine host), binding the
  /// premise's fresh variables per candidate row. Choice point.
  kScan,
  /// A positive premise whose columns are all statically bound: one host
  /// membership test, no enumeration and no join_probes.
  kTestGround,
  /// Bind one register from dom(R, DB). Choice point. Duplicate free
  /// occurrences of one variable compile to one op each, replicating the
  /// interpreter's nested-loop semantics (and enumeration counts) exactly.
  kEnumDomain,
  /// Ground subproof of a defined (IDB) premise — tabled ProveGoal /
  /// stratified ProveGround. All variables bound by preceding ops.
  kProveCall,
  /// Ground hypothetical premise test; the plan's preceding kEnumDomain
  /// ops have bound every variable of the atom and its additions.
  kHypoTest,
  /// Fully bound negated premise: host membership test, succeeds iff the
  /// instance is NOT visible.
  kNegGround,
  /// Negated premise with free variables, refuted by a stored witness
  /// (∄ reading). The host runs the interpreter's ExistsMatch/ExistsStored
  /// probe over a scratch Binding seeded from the registers.
  kNegProbe,
  /// Negated premise with free variables, refuted by a provable witness:
  /// the host enumerates dom(R, DB) over `free_vars` (duplicates kept,
  /// matching the interpreter) and calls the engine's prover per tuple.
  kNegCall,
  /// Complete instantiation: hand the registers to the sink. The sink
  /// returning false stops the whole enumeration (first-witness queries);
  /// true backtracks to the last choice point for the next instantiation.
  kEmitHead,
};

/// Per-column action of a kScan candidate row, in column order. kLoadReg
/// always precedes any kCheckReg of the same register within one op (a
/// variable's first occurrence loads, later occurrences check), so stale
/// register values from a previous candidate are never read.
struct MatchAction {
  enum class Kind : uint8_t {
    kCheckConst,  // row[col] must equal `operand` (a ConstId).
    kCheckReg,    // row[col] must equal register `operand`.
    kLoadReg,     // register `operand` := row[col].
  };
  Kind kind;
  uint16_t col;
  int32_t operand;
};

/// One value of a kScan probe key, in increasing masked-column order:
/// either a literal constant or a register read at scan-open time.
struct KeyAction {
  bool from_reg;
  int32_t operand;  // Register index or ConstId.
};

struct Op {
  OpCode code = OpCode::kEmitHead;
  /// Premise this op tests/enumerates (premise-backed ops), -1 otherwise.
  int16_t premise_index = -1;
  /// Nearest earlier choice point (op index), -1 = none: a failure here
  /// ends the program.
  int16_t prev_choice = -1;
  PredicateId pred = kInvalidPredicate;
  /// kScan: statically known bound-column signature of the probe — equal
  /// by construction to the runtime BoundSignature the interpreter would
  /// compute at this point. kNegProbe/kNegGround: the signature the
  /// host's runtime probe will use (recorded so PrepareIndex can cover
  /// it). Others: 0.
  ColumnMask mask = 0;
  uint16_t arity = 0;
  /// kEnumDomain: the register to bind.
  VarIndex var = -1;
  /// Bottom-up delta rule versions: this premise ranges over last round's
  /// delta relation instead of base + model.
  bool designated = false;
  /// Bottom-up delta rule versions: this positive premise precedes the
  /// designated one in source order, so candidates present in the delta
  /// are skipped (each instantiation fires in exactly one version).
  bool exclude_delta = false;
  /// kScan: probe-key recipe (masked columns, ascending).
  std::vector<KeyAction> key;
  /// kScan: per-column actions over all columns, column order.
  std::vector<MatchAction> full;
  /// kScan: actions over the columns NOT covered by `mask` only — an
  /// index-served candidate already matches the masked columns exactly
  /// (hash buckets are keyed by the masked values; sorted ranges are
  /// binary-searched on them), so their rechecks are skipped.
  std::vector<MatchAction> post;
  /// kNegCall: free-variable occurrences in argument order, duplicates
  /// kept (the interpreter collects them the same way).
  std::vector<VarIndex> free_vars;
  /// kNegProbe: the statically bound variables of the negated atom,
  /// deduplicated. The host seeds a scratch Binding from exactly these
  /// registers — copying the whole register file would read stale values
  /// from statically unbound registers.
  std::vector<VarIndex> bound_vars;
};

/// A compiled rule body (or query body). Executed by vm::Run (executor.h)
/// against an engine-specific host.
struct Program {
  std::vector<Op> ops;
  int num_vars = 0;
  /// The designated delta premise this version was compiled for, -1 for
  /// the full version (bottom-up semi-naive rewrite).
  int delta_premise = -1;
  /// Head-bound programs (top-down engines): match actions applied to the
  /// goal's argument tuple before the program runs, seeding the entry-
  /// bound registers. Mirrors Binding::MatchTuple over the rule head; an
  /// action failing means the rule cannot produce the goal. Empty for
  /// entry-unbound programs.
  std::vector<MatchAction> head_match;
};

/// Runs a program's head_match against a goal's ground argument tuple,
/// seeding the entry-bound registers. Returns false iff the goal cannot
/// match the head (partial register loads are dead: callers only run the
/// program after a successful match, and the next goal re-seeds).
template <typename Row>
inline bool MatchHead(const Program& prog, const Row& goal_args,
                      ConstId* regs) {
  for (const MatchAction& a : prog.head_match) {
    const ConstId v = goal_args[a.col];
    switch (a.kind) {
      case MatchAction::Kind::kCheckConst:
        if (v != a.operand) return false;
        break;
      case MatchAction::Kind::kCheckReg:
        if (v != regs[a.operand]) return false;
        break;
      case MatchAction::Kind::kLoadReg:
        regs[a.operand] = v;
        break;
    }
  }
  return true;
}

/// Instantiates `atom` from the register file; every variable argument
/// must be statically bound at the call site (the compiler guarantees it).
inline Fact GroundAtom(const Atom& atom, const ConstId* regs) {
  Fact fact;
  fact.predicate = atom.predicate;
  fact.args.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    fact.args.push_back(t.is_const() ? t.const_id() : regs[t.var_index()]);
  }
  return fact;
}

/// GroundAtom into a reusable fact, keeping the args vector's capacity.
/// Fixpoint emit paths ground one head per instantiation; a fresh Fact
/// per emit would put an allocation on the hottest loop.
inline void GroundAtomInto(const Atom& atom, const ConstId* regs,
                           Fact* fact) {
  fact->predicate = atom.predicate;
  fact->args.clear();
  for (const Term& t : atom.args) {
    fact->args.push_back(t.is_const() ? t.const_id() : regs[t.var_index()]);
  }
}

}  // namespace vm
}  // namespace hypo

#endif  // HYPO_ENGINE_VM_BYTECODE_H_
