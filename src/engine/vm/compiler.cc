#include "engine/vm/compiler.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"

namespace hypo {
namespace vm {

namespace {

/// Mirrors plan.cc's StaticProbeMask: bit i set iff column i < 32 carries
/// a constant or a bound register.
ColumnMask MaskFor(const Atom& atom, const std::vector<bool>& bound) {
  ColumnMask mask = 0;
  const int limit =
      std::min<int>(static_cast<int>(atom.args.size()), kMaxIndexedColumns);
  for (int i = 0; i < limit; ++i) {
    const Term& t = atom.args[i];
    if (t.is_const() || bound[t.var_index()]) mask |= 1u << i;
  }
  return mask;
}

bool AllBound(const Atom& atom, const std::vector<bool>& bound) {
  for (const Term& t : atom.args) {
    if (t.is_var() && !bound[t.var_index()]) return false;
  }
  return true;
}

void MarkBound(const Atom& atom, std::vector<bool>* bound) {
  for (const Term& t : atom.args) {
    if (t.is_var()) (*bound)[t.var_index()] = true;
  }
}

/// Free-variable occurrences in argument order, duplicates kept — exactly
/// the list the interpreter's MatchDefined/ExistsProvable/Σ paths collect
/// (they filter on the binding before any enumeration Set, so a variable
/// occurring free twice is listed twice and enumerates domain² times).
std::vector<VarIndex> FreeOccurrences(const Atom& atom,
                                      const std::vector<bool>& bound) {
  std::vector<VarIndex> free;
  for (const Term& t : atom.args) {
    if (t.is_var() && !bound[t.var_index()]) free.push_back(t.var_index());
  }
  return free;
}

/// Fills a kScan op's key/full/post action lists for `atom` under the
/// pre-premise boundness, and returns the probe mask.
ColumnMask BuildScanActions(const Atom& atom, const std::vector<bool>& bound,
                            Op* op) {
  const ColumnMask mask = MaskFor(atom, bound);
  op->mask = mask;
  op->arity = static_cast<uint16_t>(atom.args.size());
  // Probe key: masked-column values in increasing column order, matching
  // BoundSignature's runtime construction.
  for (int i = 0; i < static_cast<int>(atom.args.size()); ++i) {
    if (i >= kMaxIndexedColumns || (mask & (1u << i)) == 0) continue;
    const Term& t = atom.args[i];
    KeyAction ka;
    ka.from_reg = t.is_var();
    ka.operand = t.is_var() ? t.var_index() : t.const_id();
    op->key.push_back(ka);
  }
  // Per-column actions. Within this atom a variable's FIRST free
  // occurrence loads its register; later occurrences check it, so the
  // repeated-variable semantics of Binding::MatchTuple carry over.
  std::vector<bool> loaded(bound);
  for (int i = 0; i < static_cast<int>(atom.args.size()); ++i) {
    const Term& t = atom.args[i];
    MatchAction a;
    a.col = static_cast<uint16_t>(i);
    if (t.is_const()) {
      a.kind = MatchAction::Kind::kCheckConst;
      a.operand = t.const_id();
    } else if (loaded[t.var_index()]) {
      a.kind = MatchAction::Kind::kCheckReg;
      a.operand = t.var_index();
    } else {
      a.kind = MatchAction::Kind::kLoadReg;
      a.operand = t.var_index();
      loaded[t.var_index()] = true;
    }
    op->full.push_back(a);
    // Index-served candidates already match the masked columns exactly;
    // only the unmasked ones (which include every load — loads are first
    // free occurrences, never masked) still need work.
    const bool masked = i < kMaxIndexedColumns && (mask & (1u << i)) != 0;
    if (!masked) op->post.push_back(a);
  }
  return mask;
}

}  // namespace

Program Compile(const CompileInput& in) {
  const std::vector<Premise>& premises = *in.premises;
  Program prog;
  prog.num_vars = in.num_vars;
  prog.delta_premise = in.delta_premise;

  std::vector<bool> bound(in.num_vars, false);
  if (in.head != nullptr) {
    HYPO_DCHECK(in.entry_bound.empty());
    // Head match: constants check, a variable's first occurrence loads,
    // later occurrences check — Binding::MatchTuple over the head atom.
    for (int i = 0; i < static_cast<int>(in.head->args.size()); ++i) {
      const Term& t = in.head->args[i];
      MatchAction a;
      a.col = static_cast<uint16_t>(i);
      if (t.is_const()) {
        a.kind = MatchAction::Kind::kCheckConst;
        a.operand = t.const_id();
      } else if (bound[t.var_index()]) {
        a.kind = MatchAction::Kind::kCheckReg;
        a.operand = t.var_index();
      } else {
        a.kind = MatchAction::Kind::kLoadReg;
        a.operand = t.var_index();
        bound[t.var_index()] = true;
      }
      prog.head_match.push_back(a);
    }
  } else if (!in.entry_bound.empty()) {
    HYPO_DCHECK(static_cast<int>(in.entry_bound.size()) == in.num_vars);
    bound = in.entry_bound;
  }
  auto mode_of = [&](int premise_index) {
    return in.modes.empty() ? PremiseMode::kStorage
                            : in.modes[premise_index];
  };
  int last_choice = -1;
  auto push = [&](Op op) {
    op.prev_choice = static_cast<int16_t>(last_choice);
    const bool choice =
        op.code == OpCode::kScan || op.code == OpCode::kEnumDomain;
    prog.ops.push_back(std::move(op));
    if (choice) last_choice = static_cast<int>(prog.ops.size()) - 1;
  };
  auto push_enum = [&](VarIndex v) {
    Op op;
    op.code = OpCode::kEnumDomain;
    op.var = v;
    push(std::move(op));
  };

  for (const PlanStep& step : in.plan->steps) {
    switch (step.kind) {
      case PlanStep::Kind::kMatchPositive: {
        const Atom& atom = premises[step.premise_index].atom;
        Op op;
        op.premise_index = static_cast<int16_t>(step.premise_index);
        op.pred = atom.predicate;
        op.designated = step.premise_index == in.delta_premise;
        op.exclude_delta = in.delta_premise >= 0 && !op.designated &&
                           step.premise_index < in.delta_premise;
        if (mode_of(step.premise_index) == PremiseMode::kProve) {
          // Defined premise: enumerate each free occurrence (duplicates
          // kept) from the domain, then one ground subproof.
          for (VarIndex v : FreeOccurrences(atom, bound)) push_enum(v);
          op.code = OpCode::kProveCall;
          push(std::move(op));
        } else if (AllBound(atom, bound)) {
          op.code = OpCode::kTestGround;
          push(std::move(op));
        } else {
          op.code = OpCode::kScan;
          const ColumnMask mask = BuildScanActions(atom, bound, &op);
          // With no entry bindings, static boundness mirrors the plan's
          // own bookkeeping, so the masks must agree (plan_test invariant
          // the parallel fixpoint's PrepareIndex already relies on).
          if (in.head == nullptr && in.entry_bound.empty() &&
              in.delta_premise < 0) {
            HYPO_DCHECK(mask == step.probe_mask)
                << "compiled probe mask diverged from the plan's";
          }
          push(std::move(op));
        }
        MarkBound(atom, &bound);
        break;
      }
      case PlanStep::Kind::kEnumerateVars: {
        for (VarIndex v : step.enum_vars) {
          if (bound[v]) continue;  // The interpreter's IsBound skip.
          push_enum(v);
          bound[v] = true;
        }
        break;
      }
      case PlanStep::Kind::kHypothetical: {
        const Premise& p = premises[step.premise_index];
        HYPO_DCHECK(AllBound(p.atom, bound));
        Op op;
        op.code = OpCode::kHypoTest;
        op.premise_index = static_cast<int16_t>(step.premise_index);
        op.pred = p.atom.predicate;
        push(std::move(op));
        break;
      }
      case PlanStep::Kind::kNegated: {
        const Atom& atom = premises[step.premise_index].atom;
        Op op;
        op.premise_index = static_cast<int16_t>(step.premise_index);
        op.pred = atom.predicate;
        if (mode_of(step.premise_index) == PremiseMode::kProve) {
          op.code = OpCode::kNegCall;
          op.free_vars = FreeOccurrences(atom, bound);
        } else if (AllBound(atom, bound)) {
          op.code = OpCode::kNegGround;
        } else {
          op.code = OpCode::kNegProbe;
          op.mask = MaskFor(atom, bound);
          // Dedup'd bound variables: the host seeds its scratch Binding
          // from exactly these registers (never the unbound ones, whose
          // registers hold stale values from earlier candidates).
          for (const Term& t : atom.args) {
            if (!t.is_var() || !bound[t.var_index()]) continue;
            if (std::find(op.bound_vars.begin(), op.bound_vars.end(),
                          t.var_index()) == op.bound_vars.end()) {
              op.bound_vars.push_back(t.var_index());
            }
          }
        }
        push(std::move(op));
        break;
      }
    }
  }
  push(Op{});  // kEmitHead.
  return prog;
}

namespace {

const char* Name(OpCode c) {
  switch (c) {
    case OpCode::kScan:
      return "scan";
    case OpCode::kTestGround:
      return "test_ground";
    case OpCode::kEnumDomain:
      return "enum_domain";
    case OpCode::kProveCall:
      return "prove_call";
    case OpCode::kHypoTest:
      return "hypo_test";
    case OpCode::kNegGround:
      return "neg_ground";
    case OpCode::kNegProbe:
      return "neg_probe";
    case OpCode::kNegCall:
      return "neg_call";
    case OpCode::kEmitHead:
      return "emit_head";
  }
  return "?";
}

}  // namespace

namespace {

void PrintActions(std::ostringstream& out,
                  const std::vector<MatchAction>& actions) {
  out << "[";
  for (size_t k = 0; k < actions.size(); ++k) {
    const MatchAction& a = actions[k];
    if (k > 0) out << ",";
    switch (a.kind) {
      case MatchAction::Kind::kCheckConst:
        out << a.col << "==c" << a.operand;
        break;
      case MatchAction::Kind::kCheckReg:
        out << a.col << "==r" << a.operand;
        break;
      case MatchAction::Kind::kLoadReg:
        out << "r" << a.operand << ":=" << a.col;
        break;
    }
  }
  out << "]";
}

}  // namespace

std::string Disassemble(const Program& program,
                        const std::vector<Premise>& premises,
                        const SymbolTable& symbols) {
  std::ostringstream out;
  if (!program.head_match.empty()) {
    out << "      head_match=";
    PrintActions(out, program.head_match);
    out << "\n";
  }
  for (size_t i = 0; i < program.ops.size(); ++i) {
    const Op& op = program.ops[i];
    out << "      " << i << ": " << Name(op.code);
    if (op.premise_index >= 0) {
      out << " p" << op.premise_index << "="
          << symbols.PredicateName(premises[op.premise_index].atom.predicate);
    }
    if (op.code == OpCode::kScan || op.code == OpCode::kNegProbe) {
      out << " mask=0x" << std::hex << op.mask << std::dec;
    }
    if (op.code == OpCode::kScan) {
      out << " key=[";
      for (size_t k = 0; k < op.key.size(); ++k) {
        if (k > 0) out << ",";
        out << (op.key[k].from_reg ? "r" : "c") << op.key[k].operand;
      }
      out << "] match=";
      PrintActions(out, op.full);
      if (op.designated) out << " delta";
      if (op.exclude_delta) out << " -delta";
    }
    if (op.code == OpCode::kNegProbe && !op.bound_vars.empty()) {
      out << " bound=[";
      for (size_t k = 0; k < op.bound_vars.size(); ++k) {
        if (k > 0) out << ",";
        out << "r" << op.bound_vars[k];
      }
      out << "]";
    }
    if (op.code == OpCode::kEnumDomain) out << " r" << op.var;
    if (op.code == OpCode::kNegCall && !op.free_vars.empty()) {
      out << " free=[";
      for (size_t k = 0; k < op.free_vars.size(); ++k) {
        if (k > 0) out << ",";
        out << "r" << op.free_vars[k];
      }
      out << "]";
    }
    if (op.prev_choice >= 0) out << " <-" << op.prev_choice;
    out << "\n";
  }
  return out.str();
}

}  // namespace vm
}  // namespace hypo
