#ifndef HYPO_ENGINE_VM_COMPILER_H_
#define HYPO_ENGINE_VM_COMPILER_H_

#include <string>
#include <vector>

#include "ast/rule.h"
#include "ast/symbol_table.h"
#include "engine/plan.h"
#include "engine/vm/bytecode.h"

namespace hypo {
namespace vm {

/// How the runtime establishes a premise's truth. kStorage premises probe
/// stored relations (base database, derived models, overlay additions);
/// kProve premises call back into the engine's prover (tabled ProveGoal,
/// stratified ProveGround for Σ-partition predicates).
enum class PremiseMode : uint8_t { kStorage, kProve };

/// Everything the compiler needs to lower one BodyPlan. The plan's step
/// order is taken as-is; the compiler only tracks static boundness to
/// choose opcodes and probe masks.
struct CompileInput {
  const std::vector<Premise>* premises = nullptr;
  const BodyPlan* plan = nullptr;
  int num_vars = 0;
  /// Head-bound programs (top-down engines): when set, the compiler emits
  /// Program::head_match over this atom (first occurrence loads, later
  /// ones check, constants check) and treats every head variable as bound
  /// at entry — exactly the boundness Binding::MatchTuple(head, goal)
  /// establishes in the interpreter. Mutually exclusive with entry_bound.
  const Atom* head = nullptr;
  /// Registers bound before the program starts (e.g. head variables bound
  /// by the goal match in the top-down engines). Empty = none. Static
  /// boundness is exact: entry bindings are all-or-nothing per engine, so
  /// the compiled masks equal the interpreter's runtime BoundSignature at
  /// every step.
  std::vector<bool> entry_bound;
  /// Bottom-up semi-naive versions: the positive premise designated to
  /// range over the delta relation, -1 for the full version.
  int delta_premise = -1;
  /// Per-premise evaluation mode; empty = all kStorage.
  std::vector<PremiseMode> modes;
};

/// Lowers `in.plan` to a flat backtracking program. The input plan must
/// satisfy BodyPlan::Build's invariants (tested by tests/plan_test.cc):
/// negated steps last, each hypothetical step preceded by the enumeration
/// of its unbound variables.
Program Compile(const CompileInput& in);

/// Human-readable listing of a compiled program (one op per line) for
/// --explain-plan and the server `explain` verb.
std::string Disassemble(const Program& program,
                        const std::vector<Premise>& premises,
                        const SymbolTable& symbols);

}  // namespace vm
}  // namespace hypo

#endif  // HYPO_ENGINE_VM_COMPILER_H_
