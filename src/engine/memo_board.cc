#include "engine/memo_board.h"

namespace hypo {

void MemoBoard::BeginEpoch(int64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
  // Goal entries are cheap and all stale at once: drop them eagerly so
  // the first post-epoch queries don't pay a probe-and-erase per goal.
  bytes_ -= static_cast<int64_t>(goals_.size()) * kGoalEntryBytes;
  goals_.clear();
  // Models stay resident: the repairing engine republishes the repaired
  // snapshot under the new epoch and the stale ones age out via LRU (or
  // are dropped on first touch).
}

int64_t MemoBoard::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

FactId MemoBoard::InternFact(const Fact& fact) {
  std::lock_guard<std::mutex> lock(mu_);
  return facts_.Intern(fact);
}

ContextId MemoBoard::InternContext(const std::vector<int64_t>& elems,
                                   bool* reused) {
  std::lock_guard<std::mutex> lock(mu_);
  int before = contexts_.num_contexts();
  // Walk element transitions from the empty context; every edge is cached
  // bidirectionally, so re-interning a known context is O(|elems|) hash
  // hits.
  ContextId id = ContextInterner::kEmptyContext;
  for (int64_t e : elems) id = contexts_.Insert(id, e);
  // The ever-present empty context is not a reuse signal.
  bool hit = !elems.empty() && contexts_.num_contexts() == before;
  if (hit) ++stats_.contexts_reused;
  if (reused != nullptr) *reused = hit;
  return id;
}

int MemoBoard::LookupGoal(FactId fact, ContextId context,
                          uint64_t domain_fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = goals_.find(GoalKeyOf(fact, context, domain_fp));
  if (it == goals_.end()) return 0;
  if (it->second.epoch != epoch_) {
    goals_.erase(it);
    bytes_ -= kGoalEntryBytes;
    return 0;
  }
  ++stats_.goal_hits;
  return it->second.provable ? 1 : -1;
}

void MemoBoard::PublishGoal(FactId fact, ContextId context,
                            uint64_t domain_fp, bool provable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      goals_.insert_or_assign(GoalKeyOf(fact, context, domain_fp),
                              GoalEntry{epoch_, provable});
  (void)it;
  if (inserted) bytes_ += kGoalEntryBytes;
  ++stats_.goal_publishes;
  if (bytes_ > max_bytes_) EvictLocked();
}

std::shared_ptr<const Database> MemoBoard::LookupModel(ContextId context,
                                                       uint64_t domain_fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(ModelKeyOf(context, domain_fp));
  if (it == models_.end()) return nullptr;
  if (it->second.epoch != epoch_) {
    bytes_ -= it->second.bytes;
    model_lru_.erase(it->second.lru);
    models_.erase(it);
    return nullptr;
  }
  model_lru_.splice(model_lru_.begin(), model_lru_, it->second.lru);
  ++stats_.model_hits;
  return it->second.model;
}

void MemoBoard::PublishModel(ContextId context, uint64_t domain_fp,
                             std::shared_ptr<const Database> model) {
  if (model == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Key key = ModelKeyOf(context, domain_fp);
  int64_t model_bytes = model->ApproxBytes() + 256;
  auto it = models_.find(key);
  if (it != models_.end()) {
    bytes_ -= it->second.bytes;
    model_lru_.erase(it->second.lru);
    models_.erase(it);
  }
  model_lru_.push_front(key);
  models_.emplace(key, ModelEntry{epoch_, model_bytes, std::move(model),
                                  model_lru_.begin()});
  bytes_ += model_bytes;
  ++stats_.model_publishes;
  if (bytes_ > max_bytes_) EvictLocked();
}

void MemoBoard::EvictLocked() {
  while (bytes_ > max_bytes_ && !model_lru_.empty()) {
    Key victim = model_lru_.back();
    model_lru_.pop_back();
    auto it = models_.find(victim);
    if (it != models_.end()) {
      bytes_ -= it->second.bytes;
      models_.erase(it);
    }
    ++stats_.evictions;
  }
  if (bytes_ > max_bytes_ && !goals_.empty()) {
    bytes_ -= static_cast<int64_t>(goals_.size()) * kGoalEntryBytes;
    goals_.clear();
    ++stats_.evictions;
  }
}

MemoBoard::Stats MemoBoard::snapshot_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.bytes = bytes_ + static_cast<int64_t>(facts_.ApproxBytes()) +
            static_cast<int64_t>(contexts_.ApproxBytes());
  s.epoch = epoch_;
  return s;
}

}  // namespace hypo
