#ifndef HYPO_ENGINE_ENGINE_H_
#define HYPO_ENGINE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ast/query.h"
#include "ast/rulebase.h"
#include "base/query_guard.h"
#include "base/statusor.h"
#include "db/database.h"

namespace hypo {

class MemoBoard;

/// How the bottom-up fixpoints (BottomUpEngine per-state models, the
/// StratifiedProver's Δ segments) re-apply rules round after round.
enum class EvalStrategy {
  /// Re-run every rule over the full relations each round. O(rounds ×
  /// full-join); the ablation floor.
  kNaive = 0,
  /// Skip whole rules none of whose body predicates gained tuples in the
  /// previous round, but still join full relations for the rest.
  kRuleFilter = 1,
  /// Tuple-level semi-naive: per-round delta relations, with each rule
  /// instantiated once per changed positive premise, that premise ranging
  /// over the delta only (the standard rewrite). BottomUpEngine only; the
  /// StratifiedProver treats it as kRuleFilter.
  kDeltaSeminaive = 2,
};

/// How rule bodies (and query bodies) execute.
enum class ExecutorKind {
  /// The interpretive plan walker: recursive WalkPlan over BodyPlan
  /// steps with Binding maps. Kept as the differential oracle.
  kInterp = 0,
  /// Compiled execution: each body is lowered once (per Init / server
  /// epoch) to flat register bytecode (engine/vm/) and run by a switch
  /// inner loop over dense register frames. Answers, models, and every
  /// non-vm_* counter are identical to the interpreter.
  kVm = 1,
};

/// Process default for ExecutorKind, from the HYPO_EXEC environment
/// variable ("vm" | "interp"; unset/empty = vm). Mirrors HYPO_STORAGE:
/// read once on first use so a whole test/bench process flips per run.
ExecutorKind DefaultExecutor();

/// Validates HYPO_EXEC without consuming it (CLI startup check).
Status ValidateExecutorEnv();

/// Evaluation limits and switches shared by the engines.
struct EngineOptions {
  /// Maximum number of memoized database states before evaluation aborts
  /// with ResourceExhausted. Hypothetical inference is PSPACE-complete in
  /// general; this cap turns runaway searches into clean errors.
  int64_t max_states = 4'000'000;

  /// Maximum number of goal expansions / rule firings before aborting.
  int64_t max_steps = 500'000'000;

  /// Fixpoint evaluation strategy; kNaive and kRuleFilter are kept as
  /// ablation baselines for bench_engine.
  EvalStrategy eval_strategy = EvalStrategy::kDeltaSeminaive;

  /// Rule-body execution backend (see ExecutorKind). Defaults from the
  /// HYPO_EXEC environment variable; kVm when unset. Changing it after
  /// Init() is undefined (programs are compiled at Init / replan time).
  ExecutorKind executor = DefaultExecutor();

  /// Cross-check the overlay's incrementally interned context id against
  /// a from-scratch canonical key on every memoized goal lookup.
  /// O(|overlay|) per goal — test/debug only.
  bool validate_contexts = false;

  /// Demand-driven (magic-set) evaluation for the BottomUpEngine: rewrite
  /// the rulebase per query so each state materializes only the demanded
  /// slice of its perfect model instead of the whole model. Answers are
  /// unchanged (see DESIGN.md); off keeps the eager behavior as the
  /// ablation baseline. Ignored by the top-down engines, which are
  /// demand-driven by construction.
  bool demand = false;

  /// Worker threads for the BottomUpEngine's parallel fixpoint (see
  /// DESIGN.md "Parallel evaluation"). 1 (the default) runs the exact
  /// sequential code path; N >= 2 partitions each round's work across a
  /// work-stealing pool of N-1 workers plus the calling thread, and
  /// materializes independent hypothetical child states concurrently.
  /// Answers and models are identical at every thread count. Ignored by
  /// the top-down engines.
  int num_threads = 1;

  // Resource governance (DESIGN.md "Resource governance & failure
  // semantics"). Each limit applies per top-level query; 0 / null means
  // "no limit" and costs nothing on the metering path.

  /// Wall-clock budget in microseconds for one top-level query. Enforced
  /// at the same metering points as max_steps; a trip aborts all workers
  /// and returns StatusCode::kDeadlineExceeded.
  int64_t timeout_micros = 0;

  /// Approximate memory budget in bytes across the engine's memo tables,
  /// interners, derived models, and state cache. A trip returns
  /// StatusCode::kResourceExhausted naming the limit.
  int64_t max_memory_bytes = 0;

  /// Cooperative cancellation: when set, Cancel() (safe from a signal
  /// handler) aborts the running query with StatusCode::kCancelled at its
  /// next metering check. Reset() the token to issue further queries on
  /// the same engine.
  std::shared_ptr<CancellationToken> cancel;
};

/// A batch of base-database mutations that have ALREADY been applied to
/// the engine's Database by the caller (src/server's epoch turn, or a
/// test driving Database::Insert/Retract directly). Engines receive it
/// through ApplyBaseDelta so their memoized models can be repaired
/// incrementally instead of recomputed. Facts the caller's mutation did
/// not actually change (duplicate insert, absent retract) must not
/// appear here.
struct BaseDelta {
  std::vector<Fact> inserts;
  std::vector<Fact> retracts;

  bool empty() const { return inserts.empty() && retracts.empty(); }
};

/// Counters reported by the engines; reset per top-level call group via
/// ResetStats(). These back the Appendix-A measurements (E10).
struct EngineStats {
  int64_t states_evaluated = 0;   // Distinct database states materialized.
  int64_t memo_hits = 0;          // Goal or model memo hits.
  int64_t goals_expanded = 0;     // Top-down goal expansions / rule firings.
  int64_t facts_derived = 0;      // Facts inserted into models.
  int64_t fixpoint_rounds = 0;    // Bottom-up iteration rounds.
  int64_t max_goal_depth = 0;     // Deepest top-down proof chain.

  int64_t enumerations = 0;       // Domain-grounding loop iterations.
  int64_t domain_rebuilds = 0;    // Init() runs (1 + per-new-constant).

  // Join machinery (delta semi-naive + generalized access paths).
  int64_t delta_facts = 0;        // Tuples routed through per-round deltas.
  int64_t join_probes = 0;        // Candidate tuples offered to matching.
  int64_t index_builds = 0;       // Distinct (predicate, mask) indexes built.

  // Columnar storage & sorted permutation indexes (src/db columnar
  // backend; see DESIGN.md "Columnar storage & sorted indexes").
  int64_t sorted_probes = 0;      // Probes answered by sorted-range lookup.
  int64_t merge_join_rows = 0;    // Rows yielded from sorted probe ranges.
  int64_t index_sort_micros = 0;  // Wall time sorting permutation indexes.
  int64_t arena_bytes = 0;        // Columnar arena footprint gauge (bytes).

  // Demand-driven evaluation (BottomUpEngine with EngineOptions::demand).
  int64_t magic_facts = 0;          // Tuples derived into magic relations.
  int64_t demanded_predicates = 0;  // Predicates demanded (magic or full).
  int64_t strata_skipped = 0;       // Strata never run thanks to demand.

  // Hypothetical-context interning (tabled / stratified provers).
  int64_t contexts_interned = 0;     // Distinct overlay states seen.
  int64_t context_transitions = 0;   // Add/Delete/undo context steps.
  int64_t context_cache_hits = 0;    // Transitions answered from cache.
  int64_t memo_bytes = 0;            // Approx. bytes held by memo tables.

  // Parallel fixpoint (BottomUpEngine with num_threads >= 2).
  int64_t tasks_stolen = 0;       // Pool tasks run off their home deque.
  int64_t parallel_rounds = 0;    // Fixpoint rounds evaluated sharded.
  int64_t barrier_micros = 0;     // Wall time in round-barrier merges.
  int64_t peak_workers = 0;       // Max tasks observed in flight at once.

  // Persistent cross-query cache (engine/memo_board.h).
  int64_t cache_hits_cross_query = 0;  // Goals/models answered by the board.
  int64_t contexts_reused = 0;    // Board contexts re-hit across queries.

  // Incremental base-fact maintenance (ApplyBaseDelta).
  int64_t base_deltas = 0;        // Delta batches applied incrementally.
  int64_t facts_overdeleted = 0;  // DRed overdeletion removals.
  int64_t facts_rederived = 0;    // Overdeleted facts with other support.
  int64_t strata_repaired = 0;    // Strata repaired by delta rounds.
  int64_t strata_recomputed = 0;  // Strata rebuilt and diffed (fallback).

  // Compiled execution (EngineOptions::executor == kVm; engine/vm/).
  int64_t vm_programs_compiled = 0;  // Bodies lowered to bytecode.
  int64_t vm_ops_executed = 0;       // Bytecode ops dispatched.

  // Resource governance (QueryGuard).
  int64_t guard_checks = 0;     // Armed-guard checks performed.
  int64_t deadline_micros_remaining = 0;  // Headroom at query completion
                                          // (negative if tripped); 0 when
                                          // no deadline was set.
  int64_t budget_bytes_peak = 0;  // Peak bytes observed while budgeted.
  int64_t cancellations = 0;      // Queries aborted by a CancellationToken.

  // Per-Δ-stratum model-construction time (StratifiedProver only);
  // stratum_micros[i] is the cumulative wall time building Δ_{i+1} models.
  std::vector<int64_t> stratum_micros;

  /// Adds `other`'s counters into this one. Max-like fields (max_goal_depth,
  /// peak_workers) take the max; stratum_micros merges element-wise. Used to
  /// combine per-worker accumulators at round barriers so counts stay exact
  /// under parallel evaluation.
  void Merge(const EngineStats& other) {
    states_evaluated += other.states_evaluated;
    memo_hits += other.memo_hits;
    goals_expanded += other.goals_expanded;
    facts_derived += other.facts_derived;
    fixpoint_rounds += other.fixpoint_rounds;
    max_goal_depth = std::max(max_goal_depth, other.max_goal_depth);
    enumerations += other.enumerations;
    domain_rebuilds += other.domain_rebuilds;
    delta_facts += other.delta_facts;
    join_probes += other.join_probes;
    index_builds += other.index_builds;
    sorted_probes += other.sorted_probes;
    merge_join_rows += other.merge_join_rows;
    index_sort_micros += other.index_sort_micros;
    // Footprint gauge, not a flow: the largest snapshot wins.
    arena_bytes = std::max(arena_bytes, other.arena_bytes);
    magic_facts += other.magic_facts;
    demanded_predicates += other.demanded_predicates;
    strata_skipped += other.strata_skipped;
    contexts_interned += other.contexts_interned;
    context_transitions += other.context_transitions;
    context_cache_hits += other.context_cache_hits;
    memo_bytes += other.memo_bytes;
    cache_hits_cross_query += other.cache_hits_cross_query;
    contexts_reused += other.contexts_reused;
    base_deltas += other.base_deltas;
    facts_overdeleted += other.facts_overdeleted;
    facts_rederived += other.facts_rederived;
    strata_repaired += other.strata_repaired;
    strata_recomputed += other.strata_recomputed;
    tasks_stolen += other.tasks_stolen;
    parallel_rounds += other.parallel_rounds;
    barrier_micros += other.barrier_micros;
    peak_workers = std::max(peak_workers, other.peak_workers);
    vm_programs_compiled += other.vm_programs_compiled;
    vm_ops_executed += other.vm_ops_executed;
    guard_checks += other.guard_checks;
    // Completion gauge, written only by the arming thread after every
    // barrier: a non-zero incoming value is authoritative, 0 means "not
    // set" (workers never write it).
    if (other.deadline_micros_remaining != 0) {
      deadline_micros_remaining = other.deadline_micros_remaining;
    }
    budget_bytes_peak = std::max(budget_bytes_peak, other.budget_bytes_peak);
    cancellations += other.cancellations;
    if (other.stratum_micros.size() > stratum_micros.size()) {
      stratum_micros.resize(other.stratum_micros.size(), 0);
    }
    for (size_t i = 0; i < other.stratum_micros.size(); ++i) {
      stratum_micros[i] += other.stratum_micros[i];
    }
  }
};

/// Arms an engine's QueryGuard from the governance fields of its options
/// for the duration of one public entry point, and records the completion
/// gauges (deadline headroom, byte peak, cancellation count) into the
/// engine's stats on the way out.
///
/// Arm() refuses to re-arm an already-armed guard, so a public entry
/// reached from another public entry leaves the outer scope as owner and
/// this one is a no-op — governance spans the *outermost* call.
class GuardScope {
 public:
  GuardScope(QueryGuard* guard, const EngineOptions& options,
             EngineStats* stats)
      : guard_(guard),
        stats_(stats),
        owner_(guard->Arm(options.timeout_micros, options.max_memory_bytes,
                          options.cancel)) {}

  GuardScope(const GuardScope&) = delete;
  GuardScope& operator=(const GuardScope&) = delete;

  ~GuardScope() {
    if (!owner_) return;
    stats_->deadline_micros_remaining = guard_->micros_remaining();
    stats_->budget_bytes_peak =
        std::max(stats_->budget_bytes_peak, guard_->bytes_peak());
    if (guard_->tripped_cancelled()) ++stats_->cancellations;
    guard_->Disarm();
  }

 private:
  QueryGuard* guard_;
  EngineStats* stats_;
  bool owner_;
};

/// Common interface of the two evaluation procedures.
///
/// An Engine is constructed over one (rulebase, database) pair; Init()
/// performs the static analysis (stratification, plans, domain) and must
/// be called before any query. Both referenced objects must outlive the
/// engine. The external interface is single-threaded — one query at a
/// time — but the BottomUpEngine may fan work out to an internal pool
/// when EngineOptions::num_threads >= 2.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual Status Init() = 0;

  /// Decides R, DB ⊢ A for a ground atom A.
  virtual StatusOr<bool> ProveFact(const Fact& fact) = 0;

  /// Decides whether some binding of the query's free variables makes
  /// every premise inferable (free variables are existential).
  virtual StatusOr<bool> ProveQuery(const Query& query) = 0;

  /// Returns every distinct binding of the query's variables (in VarIndex
  /// order) that makes every premise inferable.
  virtual StatusOr<std::vector<Tuple>> Answers(const Query& query) = 0;

  virtual const EngineStats& stats() const = 0;
  virtual void ResetStats() = 0;

  /// Human-readable engine name for logs and benchmark labels.
  virtual std::string name() const = 0;

  /// The governance fields (timeout_micros, max_memory_bytes, cancel) may
  /// be changed between queries — e.g. to retry a tripped query with a
  /// larger budget on the same warm engine. Changing the evaluation
  /// fields (strategy, demand, threads) after Init() is undefined.
  virtual EngineOptions* mutable_options() = 0;

  /// Notifies the engine that the caller has mutated the base Database
  /// (the facts in `delta` are already inserted/retracted). Memoized
  /// models derived from the old base must not be served afterwards.
  ///
  /// The default discards everything and re-runs the static analysis —
  /// always correct, since the top-down engines rebuild their memos
  /// lazily per query anyway. The BottomUpEngine overrides this with
  /// true incremental repair (DRed-style delete-and-rederive plus
  /// insertion semi-naive rounds) of the base state's model.
  virtual Status ApplyBaseDelta(const BaseDelta& delta) {
    (void)delta;
    return Init();
  }

  /// Attaches a server-lifetime cross-query cache (engine/memo_board.h).
  /// The board must outlive the engine and must only be shared among
  /// engines evaluating the same rulebase over the same base database and
  /// SymbolTable (the server's engine pool). Null detaches. Engines that
  /// do not support cross-query caching ignore the call.
  virtual void AttachMemoBoard(MemoBoard* board) { (void)board; }

  /// Human-readable description of the engine's active evaluation plans:
  /// per rule, the premise order and probe masks, plus the disassembled
  /// bytecode of each compiled program version when the VM executor is
  /// active. Backs hypo_cli --explain-plan and the server `explain` verb.
  /// Engines must be Init()ed first; the default reports nothing.
  virtual std::string ExplainPlans() const { return ""; }

  /// Every (predicate, bound-column mask) signature this engine's plans
  /// can probe against the BASE database. A caller that seals the base
  /// for an epoch (src/server) prepares these first so sealed probes stay
  /// indexed; engines that cannot enumerate their probes return nothing
  /// and their sealed probes degrade to correct full scans.
  virtual std::vector<std::pair<PredicateId, ColumnMask>>
  BaseProbeSignatures() const {
    return {};
  }
};

/// dom(R, DB) of Definition 3: every constant in the rulebase or the
/// database, plus `extra` (constants introduced by a top-level query).
/// Sorted for determinism.
std::vector<ConstId> ComputeDomain(const RuleBase& rulebase,
                                   const Database& db,
                                   const std::vector<ConstId>& extra = {});

/// Order-sensitive fingerprint of a computed domain. Cross-query cache
/// keys include it so engines whose domains diverged (per-engine
/// extra_constants_ from out-of-domain query constants) never share
/// entries — ground truth under negation can depend on the domain.
uint64_t DomainFingerprint(const std::vector<ConstId>& domain);

}  // namespace hypo

#endif  // HYPO_ENGINE_ENGINE_H_
