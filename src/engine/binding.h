#ifndef HYPO_ENGINE_BINDING_H_
#define HYPO_ENGINE_BINDING_H_

#include <vector>

#include "ast/rule.h"
#include "base/logging.h"
#include "db/fact.h"

namespace hypo {

constexpr ConstId kUnbound = -1;

/// A partial assignment of rule-local variables to constants, indexed by
/// VarIndex. Engines mutate it in place during premise matching and undo
/// via the return values of Bind/MatchTuple.
class Binding {
 public:
  explicit Binding(int num_vars) : values_(num_vars, kUnbound) {}

  bool IsBound(VarIndex v) const { return values_[v] != kUnbound; }
  ConstId Value(VarIndex v) const { return values_[v]; }

  void Set(VarIndex v, ConstId c) { values_[v] = c; }
  void Unset(VarIndex v) { values_[v] = kUnbound; }

  /// Grows the frame to at least `num_vars` slots, new slots unbound;
  /// existing entries are untouched. For reusable scratch bindings whose
  /// users restore every Set with an Unset.
  void EnsureSize(int num_vars) {
    if (static_cast<int>(values_.size()) < num_vars) {
      values_.resize(num_vars, kUnbound);
    }
  }

  int num_vars() const { return static_cast<int>(values_.size()); }

  /// Unifies `atom`'s arguments with the ground `tuple`, binding fresh
  /// variables. On success returns true and appends newly bound variables
  /// to `trail` (so the caller can undo them); on failure the binding is
  /// left exactly as it was. `Row` is anything tuple-shaped — a
  /// materialized Tuple or a columnar RowRef — so the join walker
  /// monomorphizes per storage backend instead of rebuilding Tuples.
  template <typename Row>
  bool MatchTuple(const Atom& atom, const Row& tuple,
                  std::vector<VarIndex>* trail) {
    size_t undo_from = trail->size();
    HYPO_DCHECK(atom.args.size() == tuple.size());
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.is_const()) {
        if (t.const_id() != tuple[i]) {
          Undo(trail, undo_from);
          return false;
        }
        continue;
      }
      VarIndex v = t.var_index();
      if (IsBound(v)) {
        if (values_[v] != tuple[i]) {
          Undo(trail, undo_from);
          return false;
        }
      } else {
        values_[v] = tuple[i];
        trail->push_back(v);
      }
    }
    return true;
  }

  /// Unbinds every variable recorded in `trail` past `from`, shrinking it.
  void Undo(std::vector<VarIndex>* trail, size_t from) {
    while (trail->size() > from) {
      values_[trail->back()] = kUnbound;
      trail->pop_back();
    }
  }

  /// True iff every variable of `atom` is bound.
  bool Grounds(const Atom& atom) const {
    for (const Term& t : atom.args) {
      if (t.is_var() && !IsBound(t.var_index())) return false;
    }
    return true;
  }

  /// Instantiates `atom` under this binding; every variable must be bound.
  Fact Ground(const Atom& atom) const {
    Fact fact;
    fact.predicate = atom.predicate;
    fact.args.reserve(atom.args.size());
    for (const Term& t : atom.args) {
      if (t.is_const()) {
        fact.args.push_back(t.const_id());
      } else {
        HYPO_DCHECK(IsBound(t.var_index())) << "grounding an unbound var";
        fact.args.push_back(values_[t.var_index()]);
      }
    }
    return fact;
  }

  const std::vector<ConstId>& values() const { return values_; }

 private:
  std::vector<ConstId> values_;
};

}  // namespace hypo

#endif  // HYPO_ENGINE_BINDING_H_
