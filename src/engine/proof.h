#ifndef HYPO_ENGINE_PROOF_H_
#define HYPO_ENGINE_PROOF_H_

#include <string>
#include <vector>

#include "ast/symbol_table.h"
#include "db/fact.h"

namespace hypo {

/// One node of a derivation tree, as produced by TabledEngine::ExplainFact.
///
/// The tree mirrors Definition 3's inference rules: a fact is justified by
/// being a database entry (rule 1), by a hypothetical context (the add/del
/// lists annotate the child built under rule 2), or by a rule instance
/// (rule 3) whose premise sub-proofs are the children. Negated premises
/// appear as kNegationAsFailure leaves: the recorded fact is the one whose
/// *unprovability* the derivation relies on.
struct ProofNode {
  enum class Kind {
    kDatabaseFact,        // Inference rule 1: an entry of the database.
    kHypotheticalEntry,   // Rule 1 applied to a hypothetically added fact.
    kRule,                // Inference rule 3: a rule instance.
    kNegationAsFailure,   // ~A premise: A has no proof in this state.
  };

  Kind kind = Kind::kDatabaseFact;
  Fact fact;
  int rule_index = -1;  // For kRule: index into the rulebase.

  /// For kRule: the hypothetical context changes each child premise was
  /// evaluated under, rendered inline by ProofToString.
  std::vector<Fact> added;    // Facts this node's premise inserted.
  std::vector<Fact> deleted;  // Facts this node's premise removed.

  /// When non-empty, rendered instead of `fact` (used for non-ground
  /// negation-as-failure premises, whose ∄ reading has no single fact).
  std::string note;

  std::vector<ProofNode> children;
};

/// Renders a proof tree, two-space indented, one fact per line, e.g.
///
///   grad(tony)  [rule 2]
///     take(tony, cs250)  [database]
///     take(tony, cs452)  [hypothetical addition]
std::string ProofToString(const ProofNode& node, const SymbolTable& symbols);

}  // namespace hypo

#endif  // HYPO_ENGINE_PROOF_H_
