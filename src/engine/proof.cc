#include "engine/proof.h"

namespace hypo {

namespace {

void Render(const ProofNode& node, const SymbolTable& symbols, int indent,
            std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (!node.note.empty()) {
    *out += node.note + "\n";
    for (const ProofNode& child : node.children) {
      Render(child, symbols, indent + 1, out);
    }
    return;
  }
  switch (node.kind) {
    case ProofNode::Kind::kDatabaseFact:
      *out += FactToString(node.fact, symbols) + "  [database]";
      break;
    case ProofNode::Kind::kHypotheticalEntry:
      *out += FactToString(node.fact, symbols) + "  [hypothetical addition]";
      break;
    case ProofNode::Kind::kNegationAsFailure:
      *out += "~" + FactToString(node.fact, symbols) + "  [no proof exists]";
      break;
    case ProofNode::Kind::kRule: {
      *out += FactToString(node.fact, symbols) + "  [rule " +
              std::to_string(node.rule_index) + "]";
      break;
    }
  }
  if (!node.added.empty() || !node.deleted.empty()) {
    *out += "  {";
    bool first = true;
    for (const Fact& f : node.added) {
      if (!first) *out += ", ";
      *out += "+" + FactToString(f, symbols);
      first = false;
    }
    for (const Fact& f : node.deleted) {
      if (!first) *out += ", ";
      *out += "-" + FactToString(f, symbols);
      first = false;
    }
    *out += "}";
  }
  *out += "\n";
  for (const ProofNode& child : node.children) {
    Render(child, symbols, indent + 1, out);
  }
}

}  // namespace

std::string ProofToString(const ProofNode& node,
                          const SymbolTable& symbols) {
  std::string out;
  Render(node, symbols, 0, &out);
  return out;
}

}  // namespace hypo
