#include "engine/stratified_prover.h"

#include "base/cleanup.h"
#include "base/failpoint.h"
#include "base/stopwatch.h"
#include "engine/memo_board.h"
#include "engine/scan.h"
#include "engine/vm/compiler.h"
#include "engine/vm/executor.h"

#include <algorithm>
#include <climits>
#include <functional>
#include <sstream>

namespace hypo {

namespace {

std::vector<ConstId> QueryConstants(const Query& query) {
  std::vector<ConstId> out;
  auto collect = [&out](const Atom& atom) {
    for (const Term& t : atom.args) {
      if (t.is_const()) out.push_back(t.const_id());
    }
  };
  for (const Premise& p : query.premises) {
    collect(p.atom);
    for (const Atom& a : p.additions) collect(a);
  }
  return out;
}

Atom PseudoHead(const Query& query) {
  Atom head;
  head.predicate = kInvalidPredicate;
  for (int v = 0; v < query.num_vars(); ++v) {
    head.args.push_back(Term::MakeVar(v));
  }
  return head;
}

/// Compile modes for the cascade: a Σ-defined premise (even partition
/// > 0) is a subproof; extensional and Δ premises match storage (with
/// the Δ model as an extra scan segment, resolved by the host at run
/// time). Negation follows the same split.
std::vector<vm::PremiseMode> StratifiedModes(
    const LinearStratification& strat,
    const std::vector<Premise>& premises) {
  std::vector<vm::PremiseMode> modes(premises.size(),
                                     vm::PremiseMode::kStorage);
  for (size_t i = 0; i < premises.size(); ++i) {
    const Premise& p = premises[i];
    if (p.kind == PremiseKind::kHypothetical) continue;
    const PredicateId pred = p.atom.predicate;
    if (pred < 0 ||
        pred >= static_cast<int>(strat.partition_of_pred.size())) {
      continue;
    }
    const int part = strat.partition_of_pred[pred];
    if (part > 0 && part % 2 == 0) modes[i] = vm::PremiseMode::kProve;
  }
  return modes;
}

}  // namespace

StratifiedProver::StratifiedProver(const RuleBase* rulebase,
                                   const Database* db, EngineOptions options)
    : rulebase_(rulebase), base_(db), options_(options) {}

Status StratifiedProver::Init() {
  if (rulebase_->symbols_ptr().get() != base_->symbols_ptr().get()) {
    return Status::InvalidArgument(
        "rulebase and database must share one SymbolTable");
  }
  if (rulebase_->HasDeletions()) {
    return Status::Unimplemented(
        "hypothetical deletion ([del: ...]) is supported only by "
        "TabledEngine; the paper's linear stratification covers "
        "insertions only");
  }
  HYPO_ASSIGN_OR_RETURN(strat_, ComputeLinearStratification(*rulebase_));
  HYPO_RETURN_IF_ERROR(CheckRuleRestrictions(*rulebase_));
  restrictions_ = std::make_unique<RestrictionAnalysis>(rulebase_);
  rule_plans_.clear();
  rule_plans_.reserve(rulebase_->num_rules());
  for (const Rule& rule : rulebase_->rules()) {
    rule_plans_.push_back(
        BodyPlan::Build(rule.premises, &rule.head, rule.num_vars(), base_));
  }
  rule_programs_.clear();
  if (options_.executor == ExecutorKind::kVm) {
    rule_programs_.reserve(rulebase_->num_rules());
    for (int r = 0; r < rulebase_->num_rules(); ++r) {
      const Rule& rule = rulebase_->rule(r);
      vm::CompileInput in;
      in.premises = &rule.premises;
      in.plan = &rule_plans_[r];
      in.num_vars = rule.num_vars();
      // Σ-headed rules enter from a ground goal (ProveSigma binds the
      // head); Δ-headed rules enter unbound from the model fixpoint.
      if (PartitionOf(rule.head.predicate) % 2 == 0) in.head = &rule.head;
      in.modes = StratifiedModes(strat_, rule.premises);
      rule_programs_.push_back(vm::Compile(in));
      ++stats_.vm_programs_compiled;
    }
  }
  domain_ = ComputeDomain(*rulebase_, *base_, extra_constants_);
  domain_set_.clear();
  domain_set_.insert(domain_.begin(), domain_.end());
  overlay_ = std::make_unique<OverlayDatabase>(base_, &interner_);
  ClearMemos();
  // Local context ids restart with the fresh overlay; the board-side fact
  // map survives (interner_ is never cleared).
  board_contexts_.clear();
  domain_fp_ = DomainFingerprint(domain_);
  ++stats_.domain_rebuilds;
  initialized_ = true;
  return Status::OK();
}

void StratifiedProver::AttachMemoBoard(MemoBoard* board) {
  board_ = board;
  board_facts_.clear();
  board_contexts_.clear();
}

FactId StratifiedProver::BoardFact(FactId local_id, const Fact& fact) {
  if (local_id >= static_cast<FactId>(board_facts_.size())) {
    board_facts_.resize(local_id + 1, -1);
  }
  FactId& slot = board_facts_[local_id];
  if (slot < 0) slot = board_->InternFact(fact);
  return slot;
}

ContextId StratifiedProver::BoardContext(PredicateId goal_pred) {
  ContextId local = overlay_->context_id();
  const bool filtered = restrictions_->active();
  if (!filtered) {
    auto it = board_contexts_.find(local);
    if (it != board_contexts_.end()) return it->second;
  }
  board_elems_.clear();
  for (int64_t e : overlay_->context_interner().Elements(local)) {
    FactId local_fact = static_cast<FactId>(e >> 1);
    const Fact& f = interner_.Get(local_fact);
    if (filtered && !restrictions_->Relevant(goal_pred, f.predicate)) {
      continue;
    }
    FactId bid = BoardFact(local_fact, f);
    board_elems_.push_back((e & 1) != 0
                               ? ContextInterner::MaskedElement(bid)
                               : ContextInterner::AddedElement(bid));
  }
  bool reused = false;
  ContextId board_ctx = board_->InternContext(board_elems_, &reused);
  if (reused) ++stats_.contexts_reused;
  if (!filtered) board_contexts_.emplace(local, board_ctx);
  return board_ctx;
}

void StratifiedProver::ClearMemos() {
  goal_memo_.clear();
  delta_models_.clear();
  delta_model_bytes_ = 0;
}

Status StratifiedProver::EnsureConstants(const Query& query) {
  bool missing = false;
  for (ConstId c : QueryConstants(query)) {
    // domain_set_ membership both dedupes extra_constants_ (repeated
    // queries with the same out-of-domain constant must not grow it) and
    // guards against re-adding a constant Init already folded in.
    if (domain_set_.insert(c).second) {
      extra_constants_.push_back(c);
      missing = true;
    }
  }
  if (missing) return Init();
  return Status::OK();
}

Status StratifiedProver::EnsureFactConstants(const Fact& fact) {
  bool missing = false;
  for (ConstId c : fact.args) {
    if (domain_set_.insert(c).second) {
      extra_constants_.push_back(c);
      missing = true;
    }
  }
  if (missing) return Init();
  return Status::OK();
}

Status StratifiedProver::CheckLimits() {
  if (stats_.goals_expanded > options_.max_steps ||
      stats_.enumerations > options_.max_steps) {
    return Status::ResourceExhausted(LimitTripMessage(
        "max_steps", options_.max_steps,
        std::max(stats_.goals_expanded, stats_.enumerations)));
  }
  int64_t states = std::max<int64_t>(
      static_cast<int64_t>(goal_memo_.size() + delta_models_.size()),
      overlay_->context_interner().num_contexts());
  if (states > options_.max_states) {
    return Status::ResourceExhausted(
        LimitTripMessage("max_states", options_.max_states, states));
  }
  if (guard_.armed()) {
    ++stats_.guard_checks;
    return guard_.Check(guard_.wants_memory() ? MemoryBytes() : -1);
  }
  return Status::OK();
}

int64_t StratifiedProver::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(
      goal_memo_.size() *
          (sizeof(GoalKey) + sizeof(GoalEntry) + 2 * sizeof(void*)) +
      delta_models_.size() * (sizeof(DeltaKey) + sizeof(void*) +
                              sizeof(Database) + 2 * sizeof(void*)));
  bytes += delta_model_bytes_;
  if (building_model_ != nullptr) bytes += building_model_->ApproxBytes();
  bytes += interner_.ApproxBytes();
  if (overlay_ != nullptr) {
    bytes +=
        static_cast<int64_t>(overlay_->context_interner().ApproxBytes());
  }
  return bytes;
}

ContextId StratifiedProver::CurrentContext() const {
  if (options_.validate_contexts) {
    HYPO_CHECK(overlay_->DebugContextConsistent())
        << "interned context id drifted from the canonical overlay key";
  }
  return overlay_->context_id();
}

const EngineStats& StratifiedProver::stats() const {
  if (overlay_ != nullptr) {
    const ContextInterner& contexts = overlay_->context_interner();
    stats_.contexts_interned = contexts.num_contexts();
    stats_.context_transitions = contexts.transitions();
    stats_.context_cache_hits = contexts.transition_hits();
    stats_.index_builds = base_->index_builds();
    stats_.sorted_probes = base_->sorted_probes();
    stats_.merge_join_rows = base_->merge_join_rows();
    stats_.index_sort_micros = base_->index_sort_micros();
    stats_.arena_bytes = base_->ArenaBytes();
    for (const auto& [key, model] : delta_models_) {
      stats_.index_builds += model->index_builds();
      stats_.sorted_probes += model->sorted_probes();
      stats_.merge_join_rows += model->merge_join_rows();
      stats_.index_sort_micros += model->index_sort_micros();
      stats_.arena_bytes += model->ArenaBytes();
    }
  }
  stats_.memo_bytes = MemoryBytes();
  return stats_;
}

// The callbacks mirror the cascade walker's per-step semantics (and
// counter order) exactly. Δ-model resolution is statusful — DeltaModelFor
// may run a whole fixpoint — and happens BEFORE any membership check,
// matching MatchPositive/TestNegated's resolution order.
template <typename EmitFn>
struct StratifiedProver::VmHost {
  StratifiedProver* eng;
  const std::vector<Premise>* premises;
  EvalContext* ctx;
  const EmitFn* emit;
  Binding* scratch;  // kNegProbe seeding; bound_vars Set/Unset per test.

  /// The Δ model backing `pred`'s storage segment: the model under
  /// construction for same-partition occurrences inside its own fixpoint,
  /// the memoized (or freshly computed) model otherwise; null for
  /// extensional predicates.
  StatusOr<const Database*> ModelFor(PredicateId pred) {
    const int part = eng->PartitionOf(pred);
    if (part % 2 != 1) return static_cast<const Database*>(nullptr);
    if (ctx->building_ext != nullptr && part == ctx->building_partition) {
      return static_cast<const Database*>(ctx->building_ext);
    }
    return eng->DeltaModelFor((part + 1) / 2);
  }

  Status OpenScan(const vm::Op& op, const std::vector<ConstId>&,
                  vm::ScanState* st) {
    // Base relation, overlay additions, then the Δ model if any (the
    // building model can grow beneath a suspended scan; the executor's
    // snapshot bound mirrors ForEachBaseCandidate's).
    st->AddDb(eng->base_);
    st->AddOverlay(eng->overlay_.get());
    HYPO_ASSIGN_OR_RETURN(const Database* model, ModelFor(op.pred));
    if (model != nullptr) st->AddDb(model);
    return Status::OK();
  }

  template <typename Row>
  bool AcceptRow(const vm::Op&, const Row&) {
    // Deletions are rejected by Init, so every stored tuple is visible.
    ++eng->stats_.join_probes;
    return true;
  }

  StatusOr<bool> TestGround(const vm::Op& op,
                            const std::vector<ConstId>& regs) {
    const Atom& atom = (*premises)[op.premise_index].atom;
    HYPO_ASSIGN_OR_RETURN(const Database* model, ModelFor(op.pred));
    Fact f = vm::GroundAtom(atom, regs.data());
    if (eng->overlay_->Contains(f)) return true;
    return model != nullptr && model->Contains(f);
  }

  StatusOr<bool> ProveCall(const vm::Op& op,
                           const std::vector<ConstId>& regs) {
    const Atom& atom = (*premises)[op.premise_index].atom;
    EvalContext sub = *ctx;
    sub.depth = ctx->depth + 1;
    return eng->ProveGround(vm::GroundAtom(atom, regs.data()), &sub);
  }

  StatusOr<bool> HypoTest(const vm::Op& op,
                          const std::vector<ConstId>& regs) {
    const Premise& premise = (*premises)[op.premise_index];
    if (!premise.deletions.empty()) {
      return Status::Unimplemented(
          "hypothetical deletion is supported only by TabledEngine");
    }
    Fact query = vm::GroundAtom(premise.atom, regs.data());
    HYPO_FAILPOINT("stratified.hypo_push");
    eng->overlay_->PushFrame();
    for (const Atom& a : premise.additions) {
      eng->overlay_->Add(vm::GroundAtom(a, regs.data()));
    }
    EvalContext sub = *ctx;
    sub.depth = ctx->depth + 1;
    // The queried atom is evaluated in the *new* state; a Δ model under
    // construction belongs to the old state and must not leak into it.
    sub.building_ext = nullptr;
    sub.building_partition = 0;
    StatusOr<bool> holds = eng->ProveGround(query, &sub);
    eng->overlay_->PopFrame();
    return holds;
  }

  /// TestNegated's Σ branch over op.free_vars (duplicate occurrences
  /// kept — domain² semantics; register writes are dead, see
  /// TabledEngine::VmHost::ExistsFrom).
  StatusOr<bool> ExistsFrom(const vm::Op& op, const Atom& atom, size_t v,
                            ConstId* regs) {
    if (v == op.free_vars.size()) {
      EvalContext sub = *ctx;
      sub.depth = ctx->depth + 1;
      return eng->ProveGround(vm::GroundAtom(atom, regs), &sub);
    }
    for (ConstId c : eng->domain_) {
      HYPO_RETURN_IF_ERROR(eng->CountEnumeration());
      regs[op.free_vars[v]] = c;
      HYPO_ASSIGN_OR_RETURN(bool found, ExistsFrom(op, atom, v + 1, regs));
      if (found) return true;
    }
    return false;
  }

  StatusOr<bool> NegHolds(const vm::Op& op, std::vector<ConstId>& regs) {
    const Atom& atom = (*premises)[op.premise_index].atom;
    if (op.code == vm::OpCode::kNegCall) {
      // Σ predicate from a strictly higher stratum: ask the complete
      // lower-stratum procedure for a witness.
      HYPO_ASSIGN_OR_RETURN(bool exists,
                            ExistsFrom(op, atom, 0, regs.data()));
      return !exists;
    }
    HYPO_ASSIGN_OR_RETURN(const Database* model, ModelFor(op.pred));
    if (op.code == vm::OpCode::kNegGround) {
      Fact f = vm::GroundAtom(atom, regs.data());
      if (eng->overlay_->Contains(f)) return false;
      return !(model != nullptr && model->Contains(f));
    }
    // kNegProbe: seed exactly the statically bound variables (unbound
    // registers hold stale candidate values and must not leak in).
    for (VarIndex v : op.bound_vars) scratch->Set(v, regs[v]);
    const bool witness = eng->ExistsStored(atom, scratch, model);
    for (VarIndex v : op.bound_vars) scratch->Unset(v);
    return !witness;
  }

  StatusOr<bool> Emit(const std::vector<ConstId>& regs) {
    return (*emit)(regs.data());
  }

  const std::vector<ConstId>& Domain() { return eng->domain_; }
  Status CountEnumeration() { return eng->CountEnumeration(); }
  void FlushOps(int64_t executed) {
    eng->stats_.vm_ops_executed += executed;
  }
};

template <typename EmitFn>
StatusOr<bool> StratifiedProver::RunProgram(
    const std::vector<Premise>& premises, const vm::Program& prog,
    EvalContext* ctx, vm::FrameStack::Frame* frame, const EmitFn& emit) {
  VmHost<EmitFn> host{this, &premises, ctx, &emit, &frame->neg};
  return vm::Run(prog, &host, &frame->regs, &frame->states);
}

StatusOr<bool> StratifiedProver::ProveGround(const Fact& goal,
                                             EvalContext* ctx) {
  int part = PartitionOf(goal.predicate);
  if (part == 0) {
    // Extensional predicate: inference rule 1 only.
    return overlay_->Contains(goal);
  }
  if (part % 2 == 1) {
    // Δ predicate: membership in the perfect model of its Δ segment
    // (which subsumes inference rule 1, since LFP starts from DB).
    if (ctx->building_ext != nullptr && part == ctx->building_partition) {
      // The model of this very segment is under construction (a positive
      // or lower-substratum occurrence inside Δ_i); consult the partial
      // model — the enclosing fixpoint re-checks until convergence.
      return overlay_->Contains(goal) || ctx->building_ext->Contains(goal);
    }
    HYPO_ASSIGN_OR_RETURN(const Database* model,
                          DeltaModelFor((part + 1) / 2));
    return overlay_->Contains(goal) || model->Contains(goal);
  }
  return ProveSigma(goal, ctx);
}

StatusOr<bool> StratifiedProver::ProveSigma(const Fact& goal,
                                            EvalContext* ctx) {
  // Inference rule 1: the goal may simply be a database entry.
  if (overlay_->Contains(goal)) return true;

  GoalKey key{interner_.Intern(goal), CurrentContext()};
  auto it = goal_memo_.find(key);
  if (it != goal_memo_.end()) {
    switch (it->second.status) {
      case GoalEntry::Status::kTrue:
        ++stats_.memo_hits;
        return true;
      case GoalEntry::Status::kFalse:
        ++stats_.memo_hits;
        return false;
      case GoalEntry::Status::kInProgress:
        // The goal is on the DFS stack with the same state: a circular
        // derivation, pruned (least-fixpoint semantics). Record the
        // ancestor's depth so failure caching stays sound.
        if (ctx->min_pruned != nullptr) {
          *ctx->min_pruned = std::min(*ctx->min_pruned, it->second.depth);
        }
        return false;
    }
  }

  // Cross-query memo: settled verdicts published by any pool engine are
  // adopted into the local memo (same discipline as TabledEngine).
  FactId board_fact = -1;
  ContextId board_ctx = ContextInterner::kEmptyContext;
  if (board_ != nullptr) {
    board_fact = BoardFact(key.fact, goal);
    board_ctx = BoardContext(goal.predicate);
    int known = board_->LookupGoal(board_fact, board_ctx, domain_fp_);
    if (known != 0) {
      ++stats_.cache_hits_cross_query;
      goal_memo_[key] = GoalEntry{known > 0 ? GoalEntry::Status::kTrue
                                            : GoalEntry::Status::kFalse,
                                  ctx->depth};
      return known > 0;
    }
  }

  ++stats_.goals_expanded;
  HYPO_RETURN_IF_ERROR(CheckLimits());
  int depth = ctx->depth;
  stats_.max_goal_depth = std::max<int64_t>(stats_.max_goal_depth, depth);
  goal_memo_[key] = GoalEntry{GoalEntry::Status::kInProgress, depth};
  // Same abort-recovery guard as TabledEngine::ProveGoal: an early error
  // return (CheckLimits inside WalkPlan) must not leak the kInProgress
  // entry, or later queries on this engine prune on a dead "on-stack"
  // goal. DeltaModelFor needs no guard — it memoizes its model only after
  // the fixpoint completes, so an abort leaves no partial Δ model behind.
  Cleanup unmark([this, &key] {
    auto entry = goal_memo_.find(key);
    if (entry != goal_memo_.end() &&
        entry->second.status == GoalEntry::Status::kInProgress) {
      goal_memo_.erase(entry);
    }
  });
  // After the unmark guard, so an injected abort exercises it.
  HYPO_FAILPOINT("stratified.memo_insert");

  int my_min = INT_MAX;
  bool proved = false;
  for (int rule_index : rulebase_->DefinitionOf(goal.predicate)) {
    const Rule& rule = rulebase_->rule(rule_index);
    if (options_.executor == ExecutorKind::kVm &&
        rule_index < static_cast<int>(rule_programs_.size())) {
      const vm::Program& prog = rule_programs_[rule_index];
      vm::FrameLease frame(&vm_frames_, prog.num_vars);
      if (!vm::MatchHead(prog, goal.args, frame->regs.data())) continue;
      // Σ rules never match against a Δ model under construction: the
      // fresh context leaves building_ext null.
      EvalContext sub;
      sub.depth = depth + 1;
      sub.min_pruned = &my_min;
      auto emit = [&proved](const ConstId*) -> StatusOr<bool> {
        proved = true;
        return false;  // First proof wins; stop enumerating.
      };
      HYPO_RETURN_IF_ERROR(
          RunProgram(rule.premises, prog, &sub, frame.get(), emit)
              .status());
      if (proved) break;
      continue;
    }
    Binding binding(rule.num_vars());
    std::vector<VarIndex> trail;
    if (!binding.MatchTuple(rule.head, goal.args, &trail)) continue;
    EvalContext sub;
    sub.depth = depth + 1;
    sub.min_pruned = &my_min;
    // Σ rules never match against a Δ model under construction: clear it.
    auto sink = [&proved](const Binding&) -> StatusOr<bool> {
      proved = true;
      return false;  // First proof wins; stop enumerating.
    };
    StatusOr<bool> r = WalkPlan(rule.premises, rule_plans_[rule_index], 0,
                                &binding, &sub, sink);
    HYPO_RETURN_IF_ERROR(r.status());
    if (proved) break;
  }

  if (proved) {
    goal_memo_[key] = GoalEntry{GoalEntry::Status::kTrue, depth};
    if (board_fact >= 0) {
      board_->PublishGoal(board_fact, board_ctx, domain_fp_, true);
    }
    return true;
  }
  if (my_min >= depth) {
    // Every pruned in-progress goal was this goal itself (or deeper):
    // the failure is context-free and safe to cache (and to share).
    goal_memo_[key] = GoalEntry{GoalEntry::Status::kFalse, depth};
    if (board_fact >= 0) {
      board_->PublishGoal(board_fact, board_ctx, domain_fp_, false);
    }
  } else {
    // The failure depended on a shallower in-progress ancestor; it may
    // not hold once that ancestor resolves, so forget it and propagate.
    goal_memo_.erase(key);
    if (ctx->min_pruned != nullptr) {
      *ctx->min_pruned = std::min(*ctx->min_pruned, my_min);
    }
  }
  return false;
}

StatusOr<const Database*> StratifiedProver::DeltaModelFor(int stratum_i) {
  DeltaKey key{stratum_i, CurrentContext()};
  auto it = delta_models_.find(key);
  if (it != delta_models_.end()) {
    ++stats_.memo_hits;
    return it->second.get();
  }
  HYPO_RETURN_IF_ERROR(CheckLimits());
  HYPO_FAILPOINT("stratified.delta_model");
  ++stats_.states_evaluated;
  if (static_cast<int>(stats_.stratum_micros.size()) < stratum_i) {
    stats_.stratum_micros.resize(stratum_i, 0);
  }
  Stopwatch stratum_timer;
  auto ext = std::make_unique<Database>(base_->symbols_ptr(), base_->backend());
  Database* model = ext.get();
  const int partition = 2 * stratum_i - 1;

  // Expose the in-flight model to the memory budget; restore the outer
  // one (lower-stratum oracle calls recurse through here) on every exit.
  const Database* prev_building = building_model_;
  building_model_ = model;
  Cleanup restore_building(
      [this, prev_building] { building_model_ = prev_building; });

  // §5.2.2: apply the substrata Δ_i1 ... Δ_im in order, each to fixpoint.
  for (const std::vector<int>& substratum :
       strat_.delta_substrata[stratum_i - 1]) {
    std::unordered_set<PredicateId> changed_last_round;
    bool first_round = true;
    while (true) {
      ++stats_.fixpoint_rounds;
      std::vector<PredicateId> changed_now;
      for (int rule_index : substratum) {
        const Rule& rule = rulebase_->rule(rule_index);
        if (options_.eval_strategy != EvalStrategy::kNaive && !first_round) {
          bool relevant = false;
          for (const Premise& p : rule.premises) {
            if (changed_last_round.count(p.atom.predicate) > 0) {
              relevant = true;
              break;
            }
          }
          if (!relevant) continue;
        }
        EvalContext ctx;
        int min_pruned = INT_MAX;
        ctx.min_pruned = &min_pruned;
        ctx.building_ext = model;
        ctx.building_partition = partition;
        if (options_.executor == ExecutorKind::kVm &&
            rule_index < static_cast<int>(rule_programs_.size())) {
          const vm::Program& prog = rule_programs_[rule_index];
          vm::FrameLease frame(&vm_frames_, prog.num_vars);
          Fact head;  // Reused across emits; Insert copies it out.
          auto emit = [&](const ConstId* r) -> StatusOr<bool> {
            ++stats_.goals_expanded;
            HYPO_RETURN_IF_ERROR(CheckLimits());
            vm::GroundAtomInto(rule.head, r, &head);
            if (!overlay_->Contains(head) && !model->Contains(head)) {
              model->Insert(head);
              ++stats_.facts_derived;
              changed_now.push_back(head.predicate);
            }
            return true;
          };
          HYPO_RETURN_IF_ERROR(
              RunProgram(rule.premises, prog, &ctx, frame.get(), emit)
                  .status());
          HYPO_DCHECK(min_pruned == INT_MAX)
              << "Δ oracle computation pruned on an in-progress goal";
          continue;
        }
        Binding binding(rule.num_vars());
        auto sink = [&](const Binding& b) -> StatusOr<bool> {
          ++stats_.goals_expanded;
          HYPO_RETURN_IF_ERROR(CheckLimits());
          Fact head = b.Ground(rule.head);
          if (!overlay_->Contains(head) && !model->Contains(head)) {
            model->Insert(head);
            ++stats_.facts_derived;
            changed_now.push_back(head.predicate);
          }
          return true;
        };
        HYPO_RETURN_IF_ERROR(WalkPlan(rule.premises,
                                      rule_plans_[rule_index], 0, &binding,
                                      &ctx, sink)
                                 .status());
        // Lower-stratum oracle answers are definite: nothing shallower
        // can be in progress at this level (see class comment).
        HYPO_DCHECK(min_pruned == INT_MAX)
            << "Δ oracle computation pruned on an in-progress goal";
      }
      if (changed_now.empty()) break;
      changed_last_round.clear();
      changed_last_round.insert(changed_now.begin(), changed_now.end());
      first_round = false;
    }
  }
  stats_.stratum_micros[stratum_i - 1] += stratum_timer.ElapsedMicros();
  const Database* result = ext.get();
  delta_model_bytes_ += result->ApproxBytes();
  delta_models_.emplace(key, std::move(ext));
  return result;
}

StatusOr<bool> StratifiedProver::WalkPlan(
    const std::vector<Premise>& premises, const BodyPlan& plan, size_t step,
    Binding* binding, EvalContext* ctx,
    const std::function<StatusOr<bool>(const Binding&)>& sink) {
  if (step == plan.steps.size()) return sink(*binding);
  const PlanStep& ps = plan.steps[step];
  auto next = [&]() -> StatusOr<bool> {
    return WalkPlan(premises, plan, step + 1, binding, ctx, sink);
  };
  switch (ps.kind) {
    case PlanStep::Kind::kMatchPositive:
      return MatchPositive(premises[ps.premise_index].atom, binding, ctx,
                           next);
    case PlanStep::Kind::kEnumerateVars: {
      std::function<StatusOr<bool>(size_t)> enumerate =
          [&](size_t v) -> StatusOr<bool> {
        if (v == ps.enum_vars.size()) return next();
        VarIndex var = ps.enum_vars[v];
        if (binding->IsBound(var)) return enumerate(v + 1);
        for (ConstId c : domain_) {
          HYPO_RETURN_IF_ERROR(CountEnumeration());
          binding->Set(var, c);
          StatusOr<bool> r = enumerate(v + 1);
          binding->Unset(var);
          HYPO_RETURN_IF_ERROR(r.status());
          if (!*r) return false;
        }
        return true;
      };
      return enumerate(0);
    }
    case PlanStep::Kind::kHypothetical: {
      const Premise& premise = premises[ps.premise_index];
      if (!premise.deletions.empty()) {
        return Status::Unimplemented(
            "hypothetical deletion is supported only by TabledEngine");
      }
      Fact query = binding->Ground(premise.atom);
      HYPO_FAILPOINT("stratified.hypo_push");
      overlay_->PushFrame();
      for (const Atom& a : premise.additions) {
        overlay_->Add(binding->Ground(a));
      }
      EvalContext sub = *ctx;
      sub.depth = ctx->depth + 1;
      // The queried atom is evaluated in the *new* state; a Δ model under
      // construction belongs to the old state and must not leak into it.
      sub.building_ext = nullptr;
      sub.building_partition = 0;
      StatusOr<bool> holds = ProveGround(query, &sub);
      overlay_->PopFrame();
      HYPO_RETURN_IF_ERROR(holds.status());
      if (!*holds) return true;  // Premise failed; keep enumerating.
      return next();
    }
    case PlanStep::Kind::kNegated: {
      HYPO_ASSIGN_OR_RETURN(
          bool exists,
          TestNegated(premises[ps.premise_index].atom, binding, ctx));
      if (exists) return true;  // Some instance provable: premise fails.
      return next();
    }
  }
  return Status::Internal("unknown plan step");
}

StatusOr<bool> StratifiedProver::MatchPositive(
    const Atom& atom, Binding* binding, EvalContext* ctx,
    const std::function<StatusOr<bool>()>& next) {
  int part = PartitionOf(atom.predicate);

  if (part % 2 == 0 && part > 0) {
    // Σ-defined predicate: instances cannot be enumerated from storage.
    // Ground any free variables over the domain, then prove top-down.
    std::vector<VarIndex> free;
    for (const Term& t : atom.args) {
      if (t.is_var() && !binding->IsBound(t.var_index())) {
        free.push_back(t.var_index());
      }
    }
    std::function<StatusOr<bool>(size_t)> enumerate =
        [&](size_t v) -> StatusOr<bool> {
      if (v == free.size()) {
        EvalContext sub = *ctx;
        sub.depth = ctx->depth + 1;
        HYPO_ASSIGN_OR_RETURN(bool holds,
                              ProveGround(binding->Ground(atom), &sub));
        if (!holds) return true;
        return next();
      }
      for (ConstId c : domain_) {
        HYPO_RETURN_IF_ERROR(CountEnumeration());
        binding->Set(free[v], c);
        StatusOr<bool> r = enumerate(v + 1);
        binding->Unset(free[v]);
        HYPO_RETURN_IF_ERROR(r.status());
        if (!*r) return false;
      }
      return true;
    };
    return enumerate(0);
  }

  // Extensional or Δ-defined: match against stored tuples.
  const Database* model_ext = nullptr;
  if (part % 2 == 1) {
    if (ctx->building_ext != nullptr && part == ctx->building_partition) {
      model_ext = ctx->building_ext;
    } else {
      HYPO_ASSIGN_OR_RETURN(model_ext, DeltaModelFor((part + 1) / 2));
    }
  }

  if (binding->Grounds(atom)) {
    Fact f = binding->Ground(atom);
    bool holds = overlay_->Contains(f) ||
                 (model_ext != nullptr && model_ext->Contains(f));
    if (!holds) return true;
    return next();
  }

  // Index-based: the building model can grow beneath us (the enclosing
  // fixpoint re-runs the rule until convergence). The base relation and
  // the Δ model use the first-argument access path when available.
  std::vector<VarIndex> trail;
  Status error;
  bool stopped = false;
  auto try_tuple = [&](const auto& tuple) -> bool {
    ++stats_.join_probes;
    if (!binding->MatchTuple(atom, tuple, &trail)) return true;
    StatusOr<bool> r = next();
    binding->Undo(&trail, 0);
    if (!r.ok()) {
      error = r.status();
      return false;
    }
    if (!*r) {
      stopped = true;
      return false;
    }
    return true;
  };
  bool keep = ForEachBaseCandidate(*base_, atom, *binding, try_tuple);
  if (keep) {
    // Overlay additions via the first-argument access path; deletions are
    // rejected by Init, so every added tuple is visible.
    keep = ForEachAddedCandidate(*overlay_, atom, *binding, try_tuple);
  }
  if (keep && model_ext != nullptr) {
    ForEachBaseCandidate(*model_ext, atom, *binding, try_tuple);
  }
  HYPO_RETURN_IF_ERROR(error);
  if (stopped) return false;
  return true;
}

StatusOr<bool> StratifiedProver::TestNegated(const Atom& atom,
                                             Binding* binding,
                                             EvalContext* ctx) {
  int part = PartitionOf(atom.predicate);
  if (part % 2 == 0 && part > 0) {
    // Negation of a Σ predicate from a strictly higher stratum: enumerate
    // free variables and ask the complete lower-stratum procedure.
    std::vector<VarIndex> free;
    for (const Term& t : atom.args) {
      if (t.is_var() && !binding->IsBound(t.var_index())) {
        free.push_back(t.var_index());
      }
    }
    std::function<StatusOr<bool>(size_t)> enumerate =
        [&](size_t v) -> StatusOr<bool> {
      if (v == free.size()) {
        EvalContext sub = *ctx;
        sub.depth = ctx->depth + 1;
        return ProveGround(binding->Ground(atom), &sub);
      }
      for (ConstId c : domain_) {
        HYPO_RETURN_IF_ERROR(CountEnumeration());
        binding->Set(free[v], c);
        StatusOr<bool> r = enumerate(v + 1);
        binding->Unset(free[v]);
        HYPO_RETURN_IF_ERROR(r.status());
        if (*r) return true;  // Witness found.
      }
      return false;
    };
    return enumerate(0);
  }

  const Database* model_ext = nullptr;
  if (part % 2 == 1) {
    if (ctx->building_ext != nullptr && part == ctx->building_partition) {
      // Negation inside Δ_i of a same-segment predicate: it belongs to a
      // strictly lower substratum, whose tuples in the building model are
      // already final.
      model_ext = ctx->building_ext;
    } else {
      HYPO_ASSIGN_OR_RETURN(model_ext, DeltaModelFor((part + 1) / 2));
    }
  }
  return ExistsStored(atom, binding, model_ext);
}

bool StratifiedProver::ExistsStored(const Atom& atom, Binding* binding,
                                    const Database* model_ext) {
  if (binding->Grounds(atom)) {
    Fact f = binding->Ground(atom);
    return overlay_->Contains(f) ||
           (model_ext != nullptr && model_ext->Contains(f));
  }
  std::vector<VarIndex> trail;
  bool found = false;
  auto probe = [&](const auto& tuple) -> bool {
    ++stats_.join_probes;
    if (binding->MatchTuple(atom, tuple, &trail)) {
      binding->Undo(&trail, 0);
      found = true;
      return false;
    }
    return true;
  };
  // First-argument access path over base and overlay additions; the Δ
  // model uses the base scan since it is a plain Database.
  if (ForEachBaseCandidate(*base_, atom, *binding, probe) &&
      ForEachAddedCandidate(*overlay_, atom, *binding, probe) &&
      model_ext != nullptr) {
    ForEachBaseCandidate(*model_ext, atom, *binding, probe);
  }
  return found;
}

StatusOr<bool> StratifiedProver::ProveFact(const Fact& fact) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(EnsureFactConstants(fact));
  GuardScope guard_scope(&guard_, options_, &stats_);
  EvalContext ctx;
  int min_pruned = INT_MAX;
  ctx.min_pruned = &min_pruned;
  return ProveGround(fact, &ctx);
}

StatusOr<bool> StratifiedProver::ProveQuery(const Query& query) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(CheckQueryRestrictions(*rulebase_, query));
  HYPO_RETURN_IF_ERROR(EnsureConstants(query));
  GuardScope guard_scope(&guard_, options_, &stats_);
  Atom head = PseudoHead(query);
  BodyPlan plan =
      BodyPlan::Build(query.premises, &head, query.num_vars(), base_);
  EvalContext ctx;
  int min_pruned = INT_MAX;
  ctx.min_pruned = &min_pruned;
  bool found = false;
  if (options_.executor == ExecutorKind::kVm) {
    vm::CompileInput in;
    in.premises = &query.premises;
    in.plan = &plan;
    in.num_vars = query.num_vars();
    in.modes = StratifiedModes(strat_, query.premises);
    vm::Program prog = vm::Compile(in);
    ++stats_.vm_programs_compiled;
    vm::FrameLease frame(&vm_frames_, prog.num_vars);
    auto emit = [&found](const ConstId*) -> StatusOr<bool> {
      found = true;
      return false;
    };
    HYPO_RETURN_IF_ERROR(
        RunProgram(query.premises, prog, &ctx, frame.get(), emit).status());
    return found;
  }
  Binding binding(query.num_vars());
  auto sink = [&found](const Binding&) -> StatusOr<bool> {
    found = true;
    return false;
  };
  HYPO_RETURN_IF_ERROR(
      WalkPlan(query.premises, plan, 0, &binding, &ctx, sink).status());
  return found;
}

StatusOr<std::vector<Tuple>> StratifiedProver::Answers(const Query& query) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(CheckQueryRestrictions(*rulebase_, query));
  HYPO_RETURN_IF_ERROR(EnsureConstants(query));
  GuardScope guard_scope(&guard_, options_, &stats_);
  Atom head = PseudoHead(query);
  BodyPlan plan =
      BodyPlan::Build(query.premises, &head, query.num_vars(), base_);
  EvalContext ctx;
  int min_pruned = INT_MAX;
  ctx.min_pruned = &min_pruned;
  std::unordered_set<Tuple, TupleHash> seen;
  std::vector<Tuple> answers;
  if (options_.executor == ExecutorKind::kVm) {
    vm::CompileInput in;
    in.premises = &query.premises;
    in.plan = &plan;
    in.num_vars = query.num_vars();
    in.modes = StratifiedModes(strat_, query.premises);
    vm::Program prog = vm::Compile(in);
    ++stats_.vm_programs_compiled;
    vm::FrameLease frame(&vm_frames_, prog.num_vars);
    auto emit = [&](const ConstId* r) -> StatusOr<bool> {
      Tuple t(r, r + query.num_vars());
      if (seen.insert(t).second) answers.push_back(std::move(t));
      return true;
    };
    HYPO_RETURN_IF_ERROR(
        RunProgram(query.premises, prog, &ctx, frame.get(), emit).status());
    return answers;
  }
  Binding binding(query.num_vars());
  auto sink = [&](const Binding& b) -> StatusOr<bool> {
    Tuple t = b.values();
    if (seen.insert(t).second) answers.push_back(std::move(t));
    return true;
  };
  HYPO_RETURN_IF_ERROR(
      WalkPlan(query.premises, plan, 0, &binding, &ctx, sink).status());
  return answers;
}

std::string StratifiedProver::ExplainPlans() const {
  if (!initialized_) return "stratified-prover: not initialized\n";
  std::ostringstream out;
  const SymbolTable& symbols = *base_->symbols_ptr();
  out << "engine=stratified-prover executor="
      << (options_.executor == ExecutorKind::kVm ? "vm" : "interp") << "\n";
  for (int r = 0; r < rulebase_->num_rules(); ++r) {
    const Rule& rule = rulebase_->rule(r);
    const bool sigma = PartitionOf(rule.head.predicate) % 2 == 0;
    out << "  rule " << r << ": "
        << symbols.PredicateName(rule.head.predicate) << "/"
        << rule.head.args.size() << (sigma ? " [sigma]" : " [delta]")
        << "\n";
    out << DescribePlan(rule_plans_[r], rule.premises, symbols);
    if (r < static_cast<int>(rule_programs_.size())) {
      out << (sigma ? "    bytecode (head-bound):\n"
                    : "    bytecode (entry-unbound):\n")
          << vm::Disassemble(rule_programs_[r], rule.premises, symbols);
    }
  }
  return out.str();
}

}  // namespace hypo
