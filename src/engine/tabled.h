#ifndef HYPO_ENGINE_TABLED_H_
#define HYPO_ENGINE_TABLED_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#include <functional>

#include "analysis/restricted.h"
#include "analysis/stratification.h"
#include "base/hash.h"
#include "db/fact_interner.h"
#include "db/overlay.h"
#include "engine/binding.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "engine/proof.h"
#include "engine/vm/bytecode.h"
#include "engine/vm/executor.h"

namespace hypo {

/// The general reference engine: goal-directed, tabled, top-down
/// evaluation of hypothetical rulebases with stratified negation.
///
/// Every defined predicate is proved by depth-first search over its rules
/// with memoization per (ground goal, database state); hypothetical
/// premises push additions onto an overlay with undo frames. Unlike the
/// eager BottomUpEngine, only goals actually demanded are evaluated, so
/// rules like Example 3's `within1(S, D) <- degree(S, D)[add: take(S, C)]`
/// do not drag the evaluation through the exponential lattice of addition
/// states — only the states a proof actually visits are materialized.
///
/// Negation-as-failure is sound here because negation is stratified: along
/// any call chain the negation stratum never increases, and a NAF subquery
/// lives strictly below every in-progress goal outside its own subtree, so
/// its answer is always definite. (Failures are cached under the usual
/// tabling completion condition; see StratifiedProver for the discipline.)
///
/// This engine accepts every rulebase of Definition 3 + stratified NAF —
/// no linearity needed — and serves as the oracle that both other engines
/// are cross-checked against.
class TabledEngine : public Engine {
 public:
  /// Neither pointer is owned; both must outlive the engine.
  TabledEngine(const RuleBase* rulebase, const Database* db,
               EngineOptions options = EngineOptions());

  Status Init() override;
  StatusOr<bool> ProveFact(const Fact& fact) override;
  StatusOr<bool> ProveQuery(const Query& query) override;
  StatusOr<std::vector<Tuple>> Answers(const Query& query) override;

  /// Reconstructs a well-founded derivation tree for a provable ground
  /// fact (NotFound if the fact is not derivable). Reconstruction reuses
  /// the memo tables, so it is cheap after a Prove call; it chooses the
  /// first non-circular justification it finds.
  StatusOr<ProofNode> ExplainFact(const Fact& fact);

  const EngineStats& stats() const override;
  void ResetStats() override { stats_ = EngineStats(); }
  std::string name() const override { return "tabled"; }

  /// Premise order, probe masks, and (VM mode) disassembled head-bound
  /// bytecode for every rule.
  std::string ExplainPlans() const override;

  /// The governance fields (timeout_micros, max_memory_bytes, cancel) may
  /// be changed between queries — e.g. to retry a tripped query with a
  /// larger budget on the same warm engine. Changing the evaluation
  /// fields (strategy, demand, threads) after Init() is undefined.
  EngineOptions* mutable_options() override { return &options_; }

  /// Shares settled goal-memo entries with a server-lifetime MemoBoard:
  /// local misses consult the board before expanding, and definite
  /// results (kTrue, context-free kFalse) are published back.
  void AttachMemoBoard(MemoBoard* board) override;

 private:
  struct GoalEntry {
    enum class Status : uint8_t { kInProgress, kTrue, kFalse } status;
    int depth;
  };
  /// Memo key: interned goal fact x interned hypothetical context. Both
  /// ids are O(1) to obtain at lookup time — no per-goal vector build.
  struct GoalKey {
    FactId fact;
    ContextId context;
    friend bool operator==(const GoalKey& a, const GoalKey& b) {
      return a.fact == b.fact && a.context == b.context;
    }
  };
  struct GoalKeyHash {
    size_t operator()(const GoalKey& k) const {
      return static_cast<size_t>(
          HashCombine(static_cast<uint64_t>(k.fact),
                      static_cast<uint64_t>(k.context)));
    }
  };

  /// Decides R, state ⊢ goal for a ground atom. `depth` is the DFS depth;
  /// `min_pruned` accumulates the shallowest in-progress goal pruned on.
  StatusOr<bool> ProveGoal(const Fact& goal, int depth, int* min_pruned);

  StatusOr<bool> WalkPlan(const std::vector<Premise>& premises,
                          const BodyPlan& plan, size_t step,
                          Binding* binding, int depth, int* min_pruned,
                          const std::function<StatusOr<bool>(
                              const Binding&)>& sink);

  /// VM executor host (see BottomUpEngine::VmHost for why this is a
  /// nested class template). Defined in tabled.cc.
  template <typename EmitFn>
  struct VmHost;

  /// Runs one compiled program; `frame->regs` arrives pre-seeded by
  /// MatchHead for rule programs (head-bound) or all-kUnbound for query
  /// programs. `depth` is the WalkPlan-equivalent depth: every subproof
  /// the host spawns runs at depth + 1, leasing its own frame.
  template <typename EmitFn>
  StatusOr<bool> RunProgram(const std::vector<Premise>& premises,
                            const vm::Program& prog, int depth,
                            int* min_pruned, vm::FrameStack::Frame* frame,
                            const EmitFn& emit);

  /// Enumerates the free variables of `atom` over the domain and proves
  /// each grounding; invokes `next` for bindings that hold.
  StatusOr<bool> MatchDefined(const Atom& atom, Binding* binding, int depth,
                              int* min_pruned,
                              const std::function<StatusOr<bool>()>& next);

  /// True iff some grounding of `atom` extending `binding` is provable
  /// (used for the ∄ reading of negated premises).
  StatusOr<bool> ExistsProvable(const Atom& atom, Binding* binding,
                                int depth, int* min_pruned);

  Status EnsureConstants(const Query& query);
  Status EnsureFactConstants(const Fact& fact);
  Status CheckLimits();

  /// Approximate bytes held by the goal memo and both interners — O(1),
  /// read by the QueryGuard memory budget at metering frequency.
  int64_t MemoryBytes() const;

  /// Counts one domain-grounding iteration and enforces max_steps on
  /// enumeration-heavy plans (checked every 256 iterations so purely
  /// extensional domain^n loops cannot run away unmetered). Inline: the
  /// fast path must cost one increment and one predictable branch.
  Status CountEnumeration() {
    if ((++stats_.enumerations & 255) != 0) return Status::OK();
    return CheckLimits();
  }

  /// Current (fact, context) memo key for `goal` — O(1), no vector build.
  GoalKey KeyFor(const Fact& goal);

  /// Board-local id of the locally interned fact `local_id` (`fact` is
  /// its content), cached per local id.
  FactId BoardFact(FactId local_id, const Fact& fact);

  /// Board context for the overlay's current state, canonicalized for
  /// `goal_pred` when restrictions are declared: context elements whose
  /// predicate cannot influence the goal's derivation are dropped, so
  /// distinct-but-equivalent overlay states share one board line.
  ContextId BoardContext(PredicateId goal_pred);

  /// Proof reconstruction: fills `out` with a justification of `goal`
  /// (which must be provable in the current overlay state), avoiding the
  /// goals in `visiting` so the derivation stays well-founded. Returns
  /// false when every justification runs through `visiting`.
  StatusOr<bool> Reconstruct(const Fact& goal,
                             std::unordered_set<GoalKey, GoalKeyHash>*
                                 visiting,
                             ProofNode* out);
  StatusOr<bool> ReconstructBody(const Rule& rule, const BodyPlan& plan,
                                 size_t step, Binding* binding,
                                 std::unordered_set<GoalKey, GoalKeyHash>*
                                     visiting,
                                 std::vector<ProofNode>* children);

  const RuleBase* rulebase_;
  const Database* base_;
  EngineOptions options_;

  std::vector<BodyPlan> rule_plans_;
  /// Head-bound bytecode, one program per rule (VM executor only;
  /// empty under ExecutorKind::kInterp). Rebuilt with rule_plans_.
  std::vector<vm::Program> rule_programs_;
  /// Reusable VM frames, depth-indexed for re-entrant subproofs. Safe as
  /// an engine member: the engine serves one query at a time.
  vm::FrameStack vm_frames_;
  std::vector<ConstId> domain_;
  std::unordered_set<ConstId> domain_set_;
  std::vector<ConstId> extra_constants_;

  FactInterner interner_;
  std::unique_ptr<OverlayDatabase> overlay_;
  std::unordered_map<GoalKey, GoalEntry, GoalKeyHash> goal_memo_;
  QueryGuard guard_;

  // Persistent cross-query cache (optional; see AttachMemoBoard).
  MemoBoard* board_ = nullptr;
  std::unique_ptr<RestrictionAnalysis> restrictions_;
  uint64_t domain_fp_ = 0;
  std::vector<FactId> board_facts_;  // local FactId -> board id, -1 unknown.
  std::unordered_map<ContextId, ContextId> board_contexts_;
  std::vector<int64_t> board_elems_;  // Scratch for BoardContext.

  // stats() refreshes the derived fields (context counters, memo bytes)
  // on read; the hot path only touches the plain counters.
  mutable EngineStats stats_;
  bool initialized_ = false;
};

}  // namespace hypo

#endif  // HYPO_ENGINE_TABLED_H_
