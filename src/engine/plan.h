#ifndef HYPO_ENGINE_PLAN_H_
#define HYPO_ENGINE_PLAN_H_

#include <string>
#include <vector>

#include "ast/query.h"
#include "ast/rule.h"
#include "ast/symbol_table.h"
#include "db/database.h"

namespace hypo {

/// One evaluation step of a rule body or query.
struct PlanStep {
  enum class Kind {
    /// Join a positive premise against available facts, binding fresh vars.
    kMatchPositive,
    /// Enumerate dom(R, DB) values for `vars` (the paper's ground
    /// substitution θ over the domain, applied lazily).
    kEnumerateVars,
    /// Test a hypothetical premise; all of its variables are bound by now.
    kHypothetical,
    /// Test a negated premise. Variables still unbound here occur only in
    /// negated premises, and get the ∄ reading (see DESIGN.md §2).
    kNegated,
  };

  Kind kind;
  int premise_index = -1;            // For premise-backed steps.
  std::vector<VarIndex> enum_vars;   // For kEnumerateVars.
  /// For kMatchPositive: the statically known bound-column signature the
  /// runtime probe will use — column i is set iff argument i is a constant
  /// or a variable bound by an earlier step. Matches BoundSignature's
  /// runtime computation exactly (including the repeated-unbound-variable
  /// case, since both computations look at the binding *before* this
  /// premise matches). The parallel fixpoint uses it to PrepareIndex every
  /// probe signature ahead of sealing.
  ColumnMask probe_mask = 0;
};

/// An ordered evaluation plan for a conjunction of premises.
///
/// Step order: positive premises first (greedily, by the cost model
/// below, so joins stay selective), then for each hypothetical premise an
/// enumeration of its still-unbound variables followed by the test
/// itself, then an enumeration of any unbound head variables, then the
/// negated premises. Negated premises come last so that a variable shared
/// with any binding premise is bound before the negation is tested,
/// leaving the ∄ reading only for genuinely negation-local variables.
///
/// Positive-premise cost model (greedy, lexicographic): fewest unbound
/// variables first (selectivity), then most bound columns (an indexed
/// probe beats a scan), then — when `db` is supplied — smallest stored
/// relation, then source order for determinism.
struct BodyPlan {
  std::vector<PlanStep> steps;

  /// Builds a plan for `premises` with `num_vars` rule-local variables.
  /// `head` (optional) contributes variables that must be enumerated if no
  /// premise binds them. `db` (optional) supplies extensional relation
  /// cardinalities as an ordering tie-break.
  static BodyPlan Build(const std::vector<Premise>& premises,
                        const Atom* head, int num_vars,
                        const Database* db = nullptr);
};

/// One line per step: premise order, kind, predicate, and probe mask.
/// Backs hypo_cli --explain-plan and the server `explain` verb.
std::string DescribePlan(const BodyPlan& plan,
                         const std::vector<Premise>& premises,
                         const SymbolTable& symbols);

}  // namespace hypo

#endif  // HYPO_ENGINE_PLAN_H_
