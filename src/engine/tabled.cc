#include "engine/tabled.h"

#include "ast/printer.h"
#include "base/cleanup.h"
#include "base/failpoint.h"
#include "engine/memo_board.h"
#include "engine/scan.h"
#include "engine/vm/compiler.h"
#include "engine/vm/executor.h"

#include <algorithm>
#include <climits>
#include <functional>
#include <sstream>

namespace hypo {

namespace {

std::vector<ConstId> QueryConstants(const Query& query) {
  std::vector<ConstId> out;
  auto collect = [&out](const Atom& atom) {
    for (const Term& t : atom.args) {
      if (t.is_const()) out.push_back(t.const_id());
    }
  };
  for (const Premise& p : query.premises) {
    collect(p.atom);
    for (const Atom& a : p.additions) collect(a);
    for (const Atom& a : p.deletions) collect(a);
  }
  return out;
}

Atom PseudoHead(const Query& query) {
  Atom head;
  head.predicate = kInvalidPredicate;
  for (int v = 0; v < query.num_vars(); ++v) {
    head.args.push_back(Term::MakeVar(v));
  }
  return head;
}

/// Compile modes for the top-down prover: a defined positive premise is a
/// subproof (MatchDefined), an extensional one a storage scan; a negated
/// premise ALWAYS goes through ExistsProvable — even ground, even
/// extensional — because ProveGoal itself resolves database entries.
std::vector<vm::PremiseMode> TabledModes(const RuleBase& rulebase,
                                         const std::vector<Premise>& premises) {
  std::vector<vm::PremiseMode> modes(premises.size(),
                                     vm::PremiseMode::kStorage);
  for (size_t i = 0; i < premises.size(); ++i) {
    const Premise& p = premises[i];
    if (p.kind == PremiseKind::kNegated ||
        (p.kind == PremiseKind::kPositive &&
         rulebase.IsDefined(p.atom.predicate))) {
      modes[i] = vm::PremiseMode::kProve;
    }
  }
  return modes;
}

}  // namespace

TabledEngine::TabledEngine(const RuleBase* rulebase, const Database* db,
                           EngineOptions options)
    : rulebase_(rulebase), base_(db), options_(options) {}

Status TabledEngine::Init() {
  if (rulebase_->symbols_ptr().get() != base_->symbols_ptr().get()) {
    return Status::InvalidArgument(
        "rulebase and database must share one SymbolTable");
  }
  // Negation must be stratified for NAF to be well-defined (§3.1); the
  // strata themselves are not needed at run time.
  HYPO_RETURN_IF_ERROR(ComputeNegationStrata(*rulebase_).status());
  HYPO_RETURN_IF_ERROR(CheckRuleRestrictions(*rulebase_));
  restrictions_ = std::make_unique<RestrictionAnalysis>(rulebase_);
  rule_plans_.clear();
  rule_plans_.reserve(rulebase_->num_rules());
  for (const Rule& rule : rulebase_->rules()) {
    rule_plans_.push_back(
        BodyPlan::Build(rule.premises, &rule.head, rule.num_vars(), base_));
  }
  rule_programs_.clear();
  if (options_.executor == ExecutorKind::kVm) {
    rule_programs_.reserve(rulebase_->num_rules());
    for (int r = 0; r < rulebase_->num_rules(); ++r) {
      const Rule& rule = rulebase_->rule(r);
      vm::CompileInput in;
      in.premises = &rule.premises;
      in.plan = &rule_plans_[r];
      in.num_vars = rule.num_vars();
      in.head = &rule.head;
      in.modes = TabledModes(*rulebase_, rule.premises);
      rule_programs_.push_back(vm::Compile(in));
      ++stats_.vm_programs_compiled;
    }
  }
  domain_ = ComputeDomain(*rulebase_, *base_, extra_constants_);
  domain_set_.clear();
  domain_set_.insert(domain_.begin(), domain_.end());
  overlay_ = std::make_unique<OverlayDatabase>(base_, &interner_);
  goal_memo_.clear();
  // Local context ids restart with the fresh overlay; the board-side fact
  // map survives (interner_ is never cleared).
  board_contexts_.clear();
  domain_fp_ = DomainFingerprint(domain_);
  ++stats_.domain_rebuilds;
  initialized_ = true;
  return Status::OK();
}

void TabledEngine::AttachMemoBoard(MemoBoard* board) {
  board_ = board;
  board_facts_.clear();
  board_contexts_.clear();
}

FactId TabledEngine::BoardFact(FactId local_id, const Fact& fact) {
  if (local_id >= static_cast<FactId>(board_facts_.size())) {
    board_facts_.resize(local_id + 1, -1);
  }
  FactId& slot = board_facts_[local_id];
  if (slot < 0) slot = board_->InternFact(fact);
  return slot;
}

ContextId TabledEngine::BoardContext(PredicateId goal_pred) {
  ContextId local = overlay_->context_id();
  const bool filtered = restrictions_->active();
  if (!filtered) {
    auto it = board_contexts_.find(local);
    if (it != board_contexts_.end()) return it->second;
  }
  board_elems_.clear();
  for (int64_t e : overlay_->context_interner().Elements(local)) {
    FactId local_fact = static_cast<FactId>(e >> 1);
    const Fact& f = interner_.Get(local_fact);
    if (filtered && !restrictions_->Relevant(goal_pred, f.predicate)) {
      continue;
    }
    FactId bid = BoardFact(local_fact, f);
    board_elems_.push_back((e & 1) != 0
                               ? ContextInterner::MaskedElement(bid)
                               : ContextInterner::AddedElement(bid));
  }
  bool reused = false;
  ContextId board_ctx = board_->InternContext(board_elems_, &reused);
  if (reused) ++stats_.contexts_reused;
  if (!filtered) board_contexts_.emplace(local, board_ctx);
  return board_ctx;
}

Status TabledEngine::EnsureConstants(const Query& query) {
  bool missing = false;
  for (ConstId c : QueryConstants(query)) {
    // insert() dedupes the pending list: the same out-of-domain constant
    // named twice (in one query or across queries) is recorded once and
    // triggers at most one Init() rebuild.
    if (domain_set_.insert(c).second) {
      extra_constants_.push_back(c);
      missing = true;
    }
  }
  if (missing) return Init();
  return Status::OK();
}

Status TabledEngine::EnsureFactConstants(const Fact& fact) {
  bool missing = false;
  for (ConstId c : fact.args) {
    if (domain_set_.insert(c).second) {
      extra_constants_.push_back(c);
      missing = true;
    }
  }
  if (missing) return Init();
  return Status::OK();
}

Status TabledEngine::CheckLimits() {
  if (stats_.goals_expanded > options_.max_steps ||
      stats_.enumerations > options_.max_steps) {
    return Status::ResourceExhausted(LimitTripMessage(
        "max_steps", options_.max_steps,
        std::max(stats_.goals_expanded, stats_.enumerations)));
  }
  int64_t states = std::max<int64_t>(
      static_cast<int64_t>(goal_memo_.size()),
      overlay_->context_interner().num_contexts());
  if (states > options_.max_states) {
    return Status::ResourceExhausted(
        LimitTripMessage("max_states", options_.max_states, states));
  }
  if (guard_.armed()) {
    ++stats_.guard_checks;
    return guard_.Check(guard_.wants_memory() ? MemoryBytes() : -1);
  }
  return Status::OK();
}

int64_t TabledEngine::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(
      goal_memo_.size() *
      (sizeof(GoalKey) + sizeof(GoalEntry) + 2 * sizeof(void*)));
  bytes += interner_.ApproxBytes();
  if (overlay_ != nullptr) {
    bytes +=
        static_cast<int64_t>(overlay_->context_interner().ApproxBytes());
  }
  return bytes;
}

TabledEngine::GoalKey TabledEngine::KeyFor(const Fact& goal) {
  if (options_.validate_contexts) {
    HYPO_CHECK(overlay_->DebugContextConsistent())
        << "interned context id drifted from the canonical overlay key";
  }
  return GoalKey{interner_.Intern(goal), overlay_->context_id()};
}

std::string TabledEngine::ExplainPlans() const {
  if (!initialized_) return "tabled: not initialized\n";
  std::ostringstream out;
  const SymbolTable& symbols = *base_->symbols_ptr();
  out << "engine=tabled executor="
      << (options_.executor == ExecutorKind::kVm ? "vm" : "interp") << "\n";
  for (int r = 0; r < rulebase_->num_rules(); ++r) {
    const Rule& rule = rulebase_->rule(r);
    out << "  rule " << r << ": "
        << symbols.PredicateName(rule.head.predicate) << "/"
        << rule.head.args.size() << "\n";
    out << DescribePlan(rule_plans_[r], rule.premises, symbols);
    if (r < static_cast<int>(rule_programs_.size())) {
      out << "    bytecode (head-bound):\n"
          << vm::Disassemble(rule_programs_[r], rule.premises, symbols);
    }
  }
  return out.str();
}

const EngineStats& TabledEngine::stats() const {
  stats_.index_builds = base_->index_builds();
  stats_.sorted_probes = base_->sorted_probes();
  stats_.merge_join_rows = base_->merge_join_rows();
  stats_.index_sort_micros = base_->index_sort_micros();
  stats_.arena_bytes = base_->ArenaBytes();
  if (overlay_ != nullptr) {
    const ContextInterner& contexts = overlay_->context_interner();
    stats_.contexts_interned = contexts.num_contexts();
    stats_.context_transitions = contexts.transitions();
    stats_.context_cache_hits = contexts.transition_hits();
  }
  stats_.memo_bytes = MemoryBytes();
  return stats_;
}

// The callbacks mirror the tabled WalkPlan's per-step semantics (and
// counter order) exactly; every subproof runs at depth + 1 against the
// same overlay, so suspended scans see frames pushed and popped beneath
// them just as the interpreter's recursion does.
template <typename EmitFn>
struct TabledEngine::VmHost {
  TabledEngine* eng;
  const std::vector<Premise>* premises;
  int depth;
  int* min_pruned;
  const EmitFn* emit;

  Status OpenScan(const vm::Op&, const std::vector<ConstId>&,
                  vm::ScanState* st) {
    // Base relation, then overlay additions (ForEachBaseCandidate then
    // ForEachAddedCandidate).
    st->AddDb(eng->base_);
    st->AddOverlay(eng->overlay_.get());
    return Status::OK();
  }

  template <typename Row>
  bool AcceptRow(const vm::Op& op, const Row& row) {
    ++eng->stats_.join_probes;
    // Hypothetically deleted facts are masked, not removed.
    return eng->overlay_->TupleVisible(op.pred, row);
  }

  StatusOr<bool> TestGround(const vm::Op& op,
                            const std::vector<ConstId>& regs) {
    // Ground extensional premise: database entry, base or added.
    const Atom& atom = (*premises)[op.premise_index].atom;
    return eng->overlay_->Contains(vm::GroundAtom(atom, regs.data()));
  }

  StatusOr<bool> ProveCall(const vm::Op& op,
                           const std::vector<ConstId>& regs) {
    const Atom& atom = (*premises)[op.premise_index].atom;
    return eng->ProveGoal(vm::GroundAtom(atom, regs.data()), depth + 1,
                          min_pruned);
  }

  StatusOr<bool> HypoTest(const vm::Op& op,
                          const std::vector<ConstId>& regs) {
    const Premise& premise = (*premises)[op.premise_index];
    Fact query = vm::GroundAtom(premise.atom, regs.data());
    HYPO_FAILPOINT("tabled.hypo_push");
    eng->overlay_->PushFrame();
    // Deletions apply before additions; a fact in both ends up present.
    for (const Atom& a : premise.deletions) {
      eng->overlay_->Delete(vm::GroundAtom(a, regs.data()));
    }
    for (const Atom& a : premise.additions) {
      eng->overlay_->Add(vm::GroundAtom(a, regs.data()));
    }
    StatusOr<bool> holds = eng->ProveGoal(query, depth + 1, min_pruned);
    eng->overlay_->PopFrame();
    return holds;
  }

  /// ExistsProvable over op.free_vars (duplicate occurrences kept, inner
  /// write wins — domain² semantics). Writing enumeration values into the
  /// register file is safe: negation-local variables are never statically
  /// bound, so no later op reads these registers.
  StatusOr<bool> ExistsFrom(const vm::Op& op, const Atom& atom, size_t v,
                            ConstId* regs) {
    if (v == op.free_vars.size()) {
      return eng->ProveGoal(vm::GroundAtom(atom, regs), depth + 1,
                            min_pruned);
    }
    for (ConstId c : eng->domain_) {
      HYPO_RETURN_IF_ERROR(eng->CountEnumeration());
      regs[op.free_vars[v]] = c;
      HYPO_ASSIGN_OR_RETURN(bool found, ExistsFrom(op, atom, v + 1, regs));
      if (found) return true;
    }
    return false;
  }

  StatusOr<bool> NegHolds(const vm::Op& op, std::vector<ConstId>& regs) {
    if (op.code != vm::OpCode::kNegCall) {
      return Status::Internal("tabled programs negate via kNegCall only");
    }
    const Atom& atom = (*premises)[op.premise_index].atom;
    HYPO_ASSIGN_OR_RETURN(bool exists,
                          ExistsFrom(op, atom, 0, regs.data()));
    return !exists;
  }

  StatusOr<bool> Emit(const std::vector<ConstId>& regs) {
    return (*emit)(regs.data());
  }

  const std::vector<ConstId>& Domain() { return eng->domain_; }
  Status CountEnumeration() { return eng->CountEnumeration(); }
  void FlushOps(int64_t executed) {
    eng->stats_.vm_ops_executed += executed;
  }
};

template <typename EmitFn>
StatusOr<bool> TabledEngine::RunProgram(const std::vector<Premise>& premises,
                                        const vm::Program& prog, int depth,
                                        int* min_pruned,
                                        vm::FrameStack::Frame* frame,
                                        const EmitFn& emit) {
  VmHost<EmitFn> host{this, &premises, depth, min_pruned, &emit};
  return vm::Run(prog, &host, &frame->regs, &frame->states);
}

StatusOr<bool> TabledEngine::ProveGoal(const Fact& goal, int depth,
                                       int* min_pruned) {
  // Inference rule 1: database entries (base or hypothetically added).
  if (overlay_->Contains(goal)) return true;
  if (!rulebase_->IsDefined(goal.predicate)) return false;

  GoalKey key = KeyFor(goal);
  auto it = goal_memo_.find(key);
  if (it != goal_memo_.end()) {
    switch (it->second.status) {
      case GoalEntry::Status::kTrue:
        ++stats_.memo_hits;
        return true;
      case GoalEntry::Status::kFalse:
        ++stats_.memo_hits;
        return false;
      case GoalEntry::Status::kInProgress:
        *min_pruned = std::min(*min_pruned, it->second.depth);
        return false;
    }
  }

  // Cross-query memo: a settled verdict published by any pool engine —
  // this one in an earlier query, or a sibling — short-circuits the whole
  // expansion. Adopted into the local memo so repeats stay local.
  FactId board_fact = -1;
  ContextId board_ctx = ContextInterner::kEmptyContext;
  if (board_ != nullptr) {
    board_fact = BoardFact(key.fact, goal);
    board_ctx = BoardContext(goal.predicate);
    int known = board_->LookupGoal(board_fact, board_ctx, domain_fp_);
    if (known != 0) {
      ++stats_.cache_hits_cross_query;
      goal_memo_[key] = GoalEntry{known > 0 ? GoalEntry::Status::kTrue
                                            : GoalEntry::Status::kFalse,
                                  depth};
      return known > 0;
    }
  }

  ++stats_.goals_expanded;
  HYPO_RETURN_IF_ERROR(CheckLimits());
  stats_.max_goal_depth = std::max<int64_t>(stats_.max_goal_depth, depth);
  goal_memo_[key] = GoalEntry{GoalEntry::Status::kInProgress, depth};
  // Every exit below either resolves the entry (kTrue / kFalse) or erases
  // it; the guard covers the remaining paths — the early error returns
  // (CheckLimits tripping inside WalkPlan) — where a leaked kInProgress
  // entry would read as a dead "on-stack" goal and make later queries on
  // this engine prune on it, returning wrong answers after an abort.
  Cleanup unmark([this, &key] {
    auto entry = goal_memo_.find(key);
    if (entry != goal_memo_.end() &&
        entry->second.status == GoalEntry::Status::kInProgress) {
      goal_memo_.erase(entry);
    }
  });
  // After the unmark guard, so an injected abort exercises it.
  HYPO_FAILPOINT("tabled.memo_insert");

  int my_min = INT_MAX;
  bool proved = false;
  for (int rule_index : rulebase_->DefinitionOf(goal.predicate)) {
    const Rule& rule = rulebase_->rule(rule_index);
    if (options_.executor == ExecutorKind::kVm &&
        rule_index < static_cast<int>(rule_programs_.size())) {
      const vm::Program& prog = rule_programs_[rule_index];
      vm::FrameLease frame(&vm_frames_, prog.num_vars);
      if (!vm::MatchHead(prog, goal.args, frame->regs.data())) continue;
      auto emit = [&proved](const ConstId*) -> StatusOr<bool> {
        proved = true;
        return false;
      };
      HYPO_RETURN_IF_ERROR(RunProgram(rule.premises, prog, depth + 1,
                                      &my_min, frame.get(), emit)
                               .status());
      if (proved) break;
      continue;
    }
    Binding binding(rule.num_vars());
    std::vector<VarIndex> trail;
    if (!binding.MatchTuple(rule.head, goal.args, &trail)) continue;
    auto sink = [&proved](const Binding&) -> StatusOr<bool> {
      proved = true;
      return false;
    };
    StatusOr<bool> r = WalkPlan(rule.premises, rule_plans_[rule_index], 0,
                                &binding, depth + 1, &my_min, sink);
    HYPO_RETURN_IF_ERROR(r.status());
    if (proved) break;
  }

  if (proved) {
    goal_memo_[key] = GoalEntry{GoalEntry::Status::kTrue, depth};
    if (board_fact >= 0) {
      board_->PublishGoal(board_fact, board_ctx, domain_fp_, true);
    }
    return true;
  }
  if (my_min >= depth) {
    // Context-free failure: definite under (R, DB + context), so it is
    // sound to share across queries and engines.
    goal_memo_[key] = GoalEntry{GoalEntry::Status::kFalse, depth};
    if (board_fact >= 0) {
      board_->PublishGoal(board_fact, board_ctx, domain_fp_, false);
    }
  } else {
    goal_memo_.erase(key);
    *min_pruned = std::min(*min_pruned, my_min);
  }
  return false;
}

StatusOr<bool> TabledEngine::WalkPlan(
    const std::vector<Premise>& premises, const BodyPlan& plan, size_t step,
    Binding* binding, int depth, int* min_pruned,
    const std::function<StatusOr<bool>(const Binding&)>& sink) {
  if (step == plan.steps.size()) return sink(*binding);
  const PlanStep& ps = plan.steps[step];
  auto next = [&]() -> StatusOr<bool> {
    return WalkPlan(premises, plan, step + 1, binding, depth, min_pruned,
                    sink);
  };
  switch (ps.kind) {
    case PlanStep::Kind::kMatchPositive: {
      const Atom& atom = premises[ps.premise_index].atom;
      if (!rulebase_->IsDefined(atom.predicate)) {
        // Extensional: match stored tuples (base plus overlay additions).
        if (binding->Grounds(atom)) {
          if (!overlay_->Contains(binding->Ground(atom))) return true;
          return next();
        }
        std::vector<VarIndex> trail;
        Status error;
        bool stopped = false;
        auto try_tuple = [&](const auto& tuple) -> bool {
          ++stats_.join_probes;
          // Hypothetically deleted facts are masked, not removed.
          if (!overlay_->TupleVisible(atom.predicate, tuple)) return true;
          if (!binding->MatchTuple(atom, tuple, &trail)) return true;
          StatusOr<bool> r = next();
          binding->Undo(&trail, 0);
          if (!r.ok()) {
            error = r.status();
            return false;
          }
          if (!*r) {
            stopped = true;
            return false;
          }
          return true;
        };
        // Base relation, then overlay additions, both via the
        // first-argument access path when the first argument is bound.
        if (ForEachBaseCandidate(*base_, atom, *binding, try_tuple)) {
          ForEachAddedCandidate(*overlay_, atom, *binding, try_tuple);
        }
        HYPO_RETURN_IF_ERROR(error);
        if (stopped) return false;
        return true;
      }
      return MatchDefined(atom, binding, depth, min_pruned, next);
    }
    case PlanStep::Kind::kEnumerateVars: {
      std::function<StatusOr<bool>(size_t)> enumerate =
          [&](size_t v) -> StatusOr<bool> {
        if (v == ps.enum_vars.size()) return next();
        VarIndex var = ps.enum_vars[v];
        if (binding->IsBound(var)) return enumerate(v + 1);
        for (ConstId c : domain_) {
          // Purely extensional domain^n loops expand no goals, so they
          // must be metered here or max_steps never triggers.
          HYPO_RETURN_IF_ERROR(CountEnumeration());
          binding->Set(var, c);
          StatusOr<bool> r = enumerate(v + 1);
          binding->Unset(var);
          HYPO_RETURN_IF_ERROR(r.status());
          if (!*r) return false;
        }
        return true;
      };
      return enumerate(0);
    }
    case PlanStep::Kind::kHypothetical: {
      const Premise& premise = premises[ps.premise_index];
      Fact query = binding->Ground(premise.atom);
      HYPO_FAILPOINT("tabled.hypo_push");
      overlay_->PushFrame();
      // Deletions apply before additions; a fact in both ends up present.
      for (const Atom& a : premise.deletions) {
        overlay_->Delete(binding->Ground(a));
      }
      for (const Atom& a : premise.additions) {
        overlay_->Add(binding->Ground(a));
      }
      StatusOr<bool> holds = ProveGoal(query, depth + 1, min_pruned);
      overlay_->PopFrame();
      HYPO_RETURN_IF_ERROR(holds.status());
      if (!*holds) return true;
      return next();
    }
    case PlanStep::Kind::kNegated: {
      HYPO_ASSIGN_OR_RETURN(
          bool exists,
          ExistsProvable(premises[ps.premise_index].atom, binding, depth,
                         min_pruned));
      if (exists) return true;
      return next();
    }
  }
  return Status::Internal("unknown plan step");
}

StatusOr<bool> TabledEngine::MatchDefined(
    const Atom& atom, Binding* binding, int depth, int* min_pruned,
    const std::function<StatusOr<bool>()>& next) {
  std::vector<VarIndex> free;
  for (const Term& t : atom.args) {
    if (t.is_var() && !binding->IsBound(t.var_index())) {
      free.push_back(t.var_index());
    }
  }
  std::function<StatusOr<bool>(size_t)> enumerate =
      [&](size_t v) -> StatusOr<bool> {
    if (v == free.size()) {
      HYPO_ASSIGN_OR_RETURN(
          bool holds,
          ProveGoal(binding->Ground(atom), depth + 1, min_pruned));
      if (!holds) return true;
      return next();
    }
    for (ConstId c : domain_) {
      HYPO_RETURN_IF_ERROR(CountEnumeration());
      binding->Set(free[v], c);
      StatusOr<bool> r = enumerate(v + 1);
      binding->Unset(free[v]);
      HYPO_RETURN_IF_ERROR(r.status());
      if (!*r) return false;
    }
    return true;
  };
  return enumerate(0);
}

StatusOr<bool> TabledEngine::ExistsProvable(const Atom& atom,
                                            Binding* binding, int depth,
                                            int* min_pruned) {
  std::vector<VarIndex> free;
  for (const Term& t : atom.args) {
    if (t.is_var() && !binding->IsBound(t.var_index())) {
      free.push_back(t.var_index());
    }
  }
  std::function<StatusOr<bool>(size_t)> enumerate =
      [&](size_t v) -> StatusOr<bool> {
    if (v == free.size()) {
      return ProveGoal(binding->Ground(atom), depth + 1, min_pruned);
    }
    for (ConstId c : domain_) {
      HYPO_RETURN_IF_ERROR(CountEnumeration());
      binding->Set(free[v], c);
      StatusOr<bool> r = enumerate(v + 1);
      binding->Unset(free[v]);
      HYPO_RETURN_IF_ERROR(r.status());
      if (*r) return true;
    }
    return false;
  };
  return enumerate(0);
}

StatusOr<bool> TabledEngine::ProveFact(const Fact& fact) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(EnsureFactConstants(fact));
  GuardScope guard_scope(&guard_, options_, &stats_);
  int min_pruned = INT_MAX;
  return ProveGoal(fact, 0, &min_pruned);
}

StatusOr<bool> TabledEngine::ProveQuery(const Query& query) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(CheckQueryRestrictions(*rulebase_, query));
  HYPO_RETURN_IF_ERROR(EnsureConstants(query));
  GuardScope guard_scope(&guard_, options_, &stats_);
  Atom head = PseudoHead(query);
  BodyPlan plan =
      BodyPlan::Build(query.premises, &head, query.num_vars(), base_);
  int min_pruned = INT_MAX;
  bool found = false;
  if (options_.executor == ExecutorKind::kVm) {
    vm::CompileInput in;
    in.premises = &query.premises;
    in.plan = &plan;
    in.num_vars = query.num_vars();
    in.modes = TabledModes(*rulebase_, query.premises);
    vm::Program prog = vm::Compile(in);
    ++stats_.vm_programs_compiled;
    vm::FrameLease frame(&vm_frames_, prog.num_vars);
    auto emit = [&found](const ConstId*) -> StatusOr<bool> {
      found = true;
      return false;
    };
    HYPO_RETURN_IF_ERROR(
        RunProgram(query.premises, prog, 0, &min_pruned, frame.get(), emit)
            .status());
    return found;
  }
  Binding binding(query.num_vars());
  auto sink = [&found](const Binding&) -> StatusOr<bool> {
    found = true;
    return false;
  };
  HYPO_RETURN_IF_ERROR(
      WalkPlan(query.premises, plan, 0, &binding, 0, &min_pruned, sink)
          .status());
  return found;
}

StatusOr<std::vector<Tuple>> TabledEngine::Answers(const Query& query) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(CheckQueryRestrictions(*rulebase_, query));
  HYPO_RETURN_IF_ERROR(EnsureConstants(query));
  GuardScope guard_scope(&guard_, options_, &stats_);
  Atom head = PseudoHead(query);
  BodyPlan plan =
      BodyPlan::Build(query.premises, &head, query.num_vars(), base_);
  int min_pruned = INT_MAX;
  std::unordered_set<Tuple, TupleHash> seen;
  std::vector<Tuple> answers;
  if (options_.executor == ExecutorKind::kVm) {
    vm::CompileInput in;
    in.premises = &query.premises;
    in.plan = &plan;
    in.num_vars = query.num_vars();
    in.modes = TabledModes(*rulebase_, query.premises);
    vm::Program prog = vm::Compile(in);
    ++stats_.vm_programs_compiled;
    vm::FrameLease frame(&vm_frames_, prog.num_vars);
    // The pseudo-head forces every query variable bound at emit, so the
    // register file IS the answer tuple.
    auto emit = [&](const ConstId* r) -> StatusOr<bool> {
      Tuple t(r, r + query.num_vars());
      if (seen.insert(t).second) answers.push_back(std::move(t));
      return true;
    };
    HYPO_RETURN_IF_ERROR(
        RunProgram(query.premises, prog, 0, &min_pruned, frame.get(), emit)
            .status());
    return answers;
  }
  Binding binding(query.num_vars());
  auto sink = [&](const Binding& b) -> StatusOr<bool> {
    Tuple t = b.values();
    if (seen.insert(t).second) answers.push_back(std::move(t));
    return true;
  };
  HYPO_RETURN_IF_ERROR(
      WalkPlan(query.premises, plan, 0, &binding, 0, &min_pruned, sink)
          .status());
  return answers;
}

StatusOr<ProofNode> TabledEngine::ExplainFact(const Fact& fact) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  HYPO_RETURN_IF_ERROR(EnsureFactConstants(fact));
  GuardScope guard_scope(&guard_, options_, &stats_);
  int min_pruned = INT_MAX;
  HYPO_ASSIGN_OR_RETURN(bool provable, ProveGoal(fact, 0, &min_pruned));
  if (!provable) {
    return Status::NotFound("fact is not derivable: no proof to explain");
  }
  std::unordered_set<GoalKey, GoalKeyHash> visiting;
  ProofNode root;
  HYPO_ASSIGN_OR_RETURN(bool ok, Reconstruct(fact, &visiting, &root));
  if (!ok) {
    return Status::Internal(
        "provable fact has no reconstructible derivation (bug)");
  }
  return root;
}

StatusOr<bool> TabledEngine::Reconstruct(
    const Fact& goal,
    std::unordered_set<GoalKey, GoalKeyHash>* visiting, ProofNode* out) {
  // Inference rule 1: a database entry (base or hypothetically added).
  if (overlay_->Contains(goal)) {
    out->fact = goal;
    out->kind = base_->Contains(goal) ? ProofNode::Kind::kDatabaseFact
                                      : ProofNode::Kind::kHypotheticalEntry;
    out->children.clear();
    return true;
  }
  if (!rulebase_->IsDefined(goal.predicate)) return false;
  int min_pruned = INT_MAX;
  HYPO_ASSIGN_OR_RETURN(bool provable, ProveGoal(goal, 0, &min_pruned));
  if (!provable) return false;

  GoalKey key = KeyFor(goal);
  if (visiting->count(key) > 0) {
    // A justification through this goal would be circular; the caller
    // must pick a different rule or binding.
    return false;
  }
  visiting->insert(key);
  bool done = false;
  for (int rule_index : rulebase_->DefinitionOf(goal.predicate)) {
    const Rule& rule = rulebase_->rule(rule_index);
    Binding binding(rule.num_vars());
    std::vector<VarIndex> trail;
    if (!binding.MatchTuple(rule.head, goal.args, &trail)) continue;
    std::vector<ProofNode> children;
    HYPO_ASSIGN_OR_RETURN(
        bool ok, ReconstructBody(rule, rule_plans_[rule_index], 0, &binding,
                                 visiting, &children));
    if (ok) {
      out->kind = ProofNode::Kind::kRule;
      out->fact = goal;
      out->rule_index = rule_index;
      out->children = std::move(children);
      done = true;
      break;
    }
  }
  visiting->erase(key);
  return done;
}

StatusOr<bool> TabledEngine::ReconstructBody(
    const Rule& rule, const BodyPlan& plan, size_t step, Binding* binding,
    std::unordered_set<GoalKey, GoalKeyHash>* visiting,
    std::vector<ProofNode>* children) {
  if (step == plan.steps.size()) return true;
  const PlanStep& ps = plan.steps[step];
  auto next = [&]() -> StatusOr<bool> {
    return ReconstructBody(rule, plan, step + 1, binding, visiting,
                           children);
  };
  switch (ps.kind) {
    case PlanStep::Kind::kMatchPositive: {
      const Atom& atom = rule.premises[ps.premise_index].atom;
      // Enumerate candidate bindings exactly like the prover, but demand
      // a reconstructible sub-proof for each match.
      std::vector<VarIndex> free;
      for (const Term& t : atom.args) {
        if (t.is_var() && !binding->IsBound(t.var_index())) {
          free.push_back(t.var_index());
        }
      }
      std::function<StatusOr<bool>(size_t)> enumerate =
          [&](size_t v) -> StatusOr<bool> {
        if (v == free.size()) {
          ProofNode child;
          HYPO_ASSIGN_OR_RETURN(
              bool ok, Reconstruct(binding->Ground(atom), visiting, &child));
          if (!ok) return false;
          children->push_back(std::move(child));
          StatusOr<bool> rest = next();
          if (!rest.ok() || !*rest) {
            children->pop_back();
            HYPO_RETURN_IF_ERROR(rest.status());
            return false;
          }
          return true;
        }
        for (ConstId c : domain_) {
          HYPO_RETURN_IF_ERROR(CountEnumeration());
          binding->Set(free[v], c);
          StatusOr<bool> r = enumerate(v + 1);
          binding->Unset(free[v]);
          HYPO_RETURN_IF_ERROR(r.status());
          if (*r) return true;
        }
        return false;
      };
      return enumerate(0);
    }
    case PlanStep::Kind::kEnumerateVars: {
      std::function<StatusOr<bool>(size_t)> enumerate =
          [&](size_t v) -> StatusOr<bool> {
        if (v == ps.enum_vars.size()) return next();
        VarIndex var = ps.enum_vars[v];
        if (binding->IsBound(var)) return enumerate(v + 1);
        for (ConstId c : domain_) {
          HYPO_RETURN_IF_ERROR(CountEnumeration());
          binding->Set(var, c);
          StatusOr<bool> r = enumerate(v + 1);
          binding->Unset(var);
          HYPO_RETURN_IF_ERROR(r.status());
          if (*r) return true;
        }
        return false;
      };
      return enumerate(0);
    }
    case PlanStep::Kind::kHypothetical: {
      const Premise& premise = rule.premises[ps.premise_index];
      Fact query = binding->Ground(premise.atom);
      ProofNode child;
      overlay_->PushFrame();
      for (const Atom& a : premise.deletions) {
        Fact f = binding->Ground(a);
        if (overlay_->Delete(f)) child.deleted.push_back(f);
      }
      for (const Atom& a : premise.additions) {
        Fact f = binding->Ground(a);
        if (overlay_->Add(f)) child.added.push_back(f);
      }
      StatusOr<bool> ok = Reconstruct(query, visiting, &child);
      overlay_->PopFrame();
      HYPO_RETURN_IF_ERROR(ok.status());
      if (!*ok) return false;
      children->push_back(std::move(child));
      StatusOr<bool> rest = next();
      if (!rest.ok() || !*rest) {
        children->pop_back();
        HYPO_RETURN_IF_ERROR(rest.status());
        return false;
      }
      return true;
    }
    case PlanStep::Kind::kNegated: {
      const Atom& atom = rule.premises[ps.premise_index].atom;
      int min_pruned = INT_MAX;
      ProofNode child;
      child.kind = ProofNode::Kind::kNegationAsFailure;
      if (binding->Grounds(atom)) {
        Fact f = binding->Ground(atom);
        HYPO_ASSIGN_OR_RETURN(bool holds, ProveGoal(f, 0, &min_pruned));
        if (holds) return false;
        child.fact = f;
      } else {
        HYPO_ASSIGN_OR_RETURN(
            bool exists, ExistsProvable(atom, binding, 0, &min_pruned));
        if (exists) return false;
        child.note =
            "~" +
            AtomToString(atom, rulebase_->symbols(), &rule.var_names) +
            "  [no instance provable]";
      }
      children->push_back(std::move(child));
      StatusOr<bool> rest = next();
      if (!rest.ok() || !*rest) {
        children->pop_back();
        HYPO_RETURN_IF_ERROR(rest.status());
        return false;
      }
      return true;
    }
  }
  return Status::Internal("unknown plan step");
}

}  // namespace hypo
