#ifndef HYPO_ANALYSIS_REPORT_H_
#define HYPO_ANALYSIS_REPORT_H_

#include <string>

#include "analysis/stratification.h"
#include "ast/rulebase.h"

namespace hypo {

/// Renders a linear stratification in the paper's notation: for each
/// stratum i, the Σ_i (hypothetical) and Δ_i (Horn) rules — with Δ's
/// internal negation substrata — plus the predicates assigned to each
/// partition. Intended for diagnostics and the CLI's --explain flag.
std::string StratificationReport(const RuleBase& rulebase,
                                 const LinearStratification& strat);

/// Convenience: computes the stratification and renders it, or renders
/// the reason the rulebase is not linearly stratifiable.
std::string ExplainStratification(const RuleBase& rulebase);

}  // namespace hypo

#endif  // HYPO_ANALYSIS_REPORT_H_
