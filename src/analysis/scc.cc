#include "analysis/scc.h"

#include <algorithm>

namespace hypo {

SccResult ComputeSccs(const DependencyGraph& graph) {
  const int n = graph.num_predicates();
  SccResult result;
  result.component_of.assign(n, -1);

  // Iterative Tarjan. lowlink/index per node; explicit stack of frames.
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;

  struct Frame {
    int node;
    size_t edge_pos;  // Position within OutEdges(node).
  };
  std::vector<Frame> frames;

  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    frames.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::vector<int>& out = graph.OutEdges(frame.node);
      if (frame.edge_pos < out.size()) {
        int target = graph.edges()[out[frame.edge_pos]].premise;
        ++frame.edge_pos;
        if (index[target] == -1) {
          index[target] = lowlink[target] = next_index++;
          stack.push_back(target);
          on_stack[target] = true;
          frames.push_back(Frame{target, 0});
        } else if (on_stack[target]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[target]);
        }
        continue;
      }
      // All edges explored: close the frame.
      int node = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        // node is the root of a component; pop it off the Tarjan stack.
        std::vector<PredicateId> component;
        while (true) {
          int member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          result.component_of[member] = result.num_components;
          component.push_back(member);
          if (member == node) break;
        }
        result.members.push_back(std::move(component));
        ++result.num_components;
      }
    }
  }

  // Tarjan emits components in reverse topological order: every edge goes
  // from a later-emitted component to an earlier one, i.e. component ids
  // already satisfy "edges run to <= ids".

  // A component is recursive iff it has > 1 member or a self-edge.
  result.is_recursive.assign(result.num_components, false);
  for (int c = 0; c < result.num_components; ++c) {
    if (result.members[c].size() > 1) result.is_recursive[c] = true;
  }
  for (const DepEdge& e : graph.edges()) {
    if (e.head == e.premise) {
      result.is_recursive[result.component_of[e.head]] = true;
    }
  }
  return result;
}

}  // namespace hypo
