#ifndef HYPO_ANALYSIS_RESTRICTED_H_
#define HYPO_ANALYSIS_RESTRICTED_H_

#include <unordered_map>
#include <vector>

#include "ast/query.h"
#include "ast/rulebase.h"
#include "base/status.h"

namespace hypo {

/// Restricted predicates (Sáenz-Pérez, "Restricted Predicates for
/// Hypothetical Datalog"): `:- assumable p/2.` / `:- retractable q/1.`
/// declarations bound which predicates may be hypothetically inserted or
/// deleted. A rulebase with no declarations is unrestricted — every
/// predicate may be assumed and retracted, the paper's original
/// semantics — so existing programs are unaffected.
///
/// Beyond rejection, the declarations bound the overlay lattice: only
/// assumable/retractable facts can ever appear in a hypothetical context,
/// so a persistent cross-query cache (engine/memo_board.h) can
/// canonicalize contexts per goal — context elements whose predicate
/// cannot influence the goal's derivation are dropped from the cache key,
/// making distinct-but-equivalent contexts hit the same line.
class RestrictionAnalysis {
 public:
  explicit RestrictionAnalysis(const RuleBase* rulebase);

  bool active() const { return rulebase_->has_restrictions(); }

  /// True iff `pred` may appear in an `[add: ...]` group. Always true
  /// when no directive was declared.
  bool CanAssume(PredicateId pred) const {
    return !active() || rulebase_->assumable().count(pred) > 0;
  }
  /// True iff `pred` may appear in a `[del: ...]` group.
  bool CanRetract(PredicateId pred) const {
    return !active() || rulebase_->retractable().count(pred) > 0;
  }

  /// True iff facts of `context_pred` can influence the derivation of
  /// `goal_pred`: `context_pred` is in the reflexive-transitive dependency
  /// cone of `goal_pred` over edges head -> {premise, addition, deletion}
  /// predicates. Predicates unknown to the cone (e.g. interned after
  /// construction) are conservatively reported relevant.
  bool Relevant(PredicateId goal_pred, PredicateId context_pred) const;

 private:
  const std::vector<bool>& ConeOf(PredicateId goal_pred) const;

  const RuleBase* rulebase_;
  int num_predicates_;
  /// Adjacency: head predicate -> predicates its rules read or write.
  std::vector<std::vector<PredicateId>> edges_;
  mutable std::unordered_map<PredicateId, std::vector<bool>> cones_;
};

/// Checks every rule of `rulebase` against its own declarations: each
/// `[add:]` atom's predicate must be assumable, each `[del:]` atom's
/// retractable. Violations are typed kFailedPrecondition errors (parse
/// errors are kInvalidArgument), naming the predicate and the directive
/// that would allow it. No-op for unrestricted rulebases.
Status CheckRuleRestrictions(const RuleBase& rulebase);

/// Same check for the hypothetical premises of an ad-hoc query.
Status CheckQueryRestrictions(const RuleBase& rulebase, const Query& query);

}  // namespace hypo

#endif  // HYPO_ANALYSIS_RESTRICTED_H_
