#ifndef HYPO_ANALYSIS_SCC_H_
#define HYPO_ANALYSIS_SCC_H_

#include <vector>

#include "analysis/dependency_graph.h"

namespace hypo {

/// Strongly connected components of the dependency graph: the equivalence
/// classes of mutually recursive predicates (Definition 16, and [2]).
struct SccResult {
  /// Component id per predicate (dense, topologically numbered so that
  /// every edge runs from a component to one with an id <= its own).
  std::vector<int> component_of;
  int num_components = 0;

  /// Members of each component.
  std::vector<std::vector<PredicateId>> members;

  /// True iff the component contains a cycle (size > 1, or a self-edge):
  /// exactly when its predicates are recursive.
  std::vector<bool> is_recursive;

  bool MutuallyRecursive(PredicateId a, PredicateId b) const {
    return component_of[a] == component_of[b] &&
           is_recursive[component_of[a]];
  }
};

/// Tarjan's algorithm (iterative) over all edge kinds.
SccResult ComputeSccs(const DependencyGraph& graph);

}  // namespace hypo

#endif  // HYPO_ANALYSIS_SCC_H_
