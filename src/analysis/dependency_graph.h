#ifndef HYPO_ANALYSIS_DEPENDENCY_GRAPH_H_
#define HYPO_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <vector>

#include "ast/rulebase.h"

namespace hypo {

/// How a premise predicate occurs in a rule (Definition 4).
///
/// The *added* atoms of a hypothetical premise do not create dependency
/// edges: Definition 4 defines occurrence only for the queried formula, and
/// the stratification conditions of Definition 6 never mention them.
enum class EdgeKind {
  kPositive,      // B(x̄) as a premise.
  kNegative,      // ~B(x̄) as a premise.
  kHypothetical,  // B(x̄)[add: ...] as a premise (B is the queried symbol).
};

/// One head→premise dependency.
struct DepEdge {
  PredicateId head;     // The rule's conclusion predicate.
  PredicateId premise;  // A predicate occurring in the rule's premise.
  EdgeKind kind;
  int rule_index;       // Which rule of the RuleBase produced the edge.
};

/// The predicate dependency graph of a rulebase.
///
/// Nodes are every predicate of the SymbolTable (dense ids); edges run from
/// the head predicate of each rule to each predicate occurring in its
/// premises, labelled with the occurrence kind.
class DependencyGraph {
 public:
  static DependencyGraph Build(const RuleBase& rulebase);

  int num_predicates() const { return num_predicates_; }
  const std::vector<DepEdge>& edges() const { return edges_; }

  /// Indices into edges() of the edges whose head is `pred`.
  const std::vector<int>& OutEdges(PredicateId pred) const {
    return out_edges_[pred];
  }

 private:
  int num_predicates_ = 0;
  std::vector<DepEdge> edges_;
  std::vector<std::vector<int>> out_edges_;
};

}  // namespace hypo

#endif  // HYPO_ANALYSIS_DEPENDENCY_GRAPH_H_
