#include "analysis/dependency_graph.h"

namespace hypo {

DependencyGraph DependencyGraph::Build(const RuleBase& rulebase) {
  DependencyGraph graph;
  graph.num_predicates_ = rulebase.symbols().num_predicates();
  graph.out_edges_.resize(graph.num_predicates_);
  const std::vector<Rule>& rules = rulebase.rules();
  for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
    const Rule& rule = rules[r];
    for (const Premise& p : rule.premises) {
      EdgeKind kind = EdgeKind::kPositive;
      switch (p.kind) {
        case PremiseKind::kPositive:
          kind = EdgeKind::kPositive;
          break;
        case PremiseKind::kNegated:
          kind = EdgeKind::kNegative;
          break;
        case PremiseKind::kHypothetical:
          kind = EdgeKind::kHypothetical;
          break;
      }
      int edge_index = static_cast<int>(graph.edges_.size());
      graph.edges_.push_back(
          DepEdge{rule.head.predicate, p.atom.predicate, kind, r});
      graph.out_edges_[rule.head.predicate].push_back(edge_index);
    }
  }
  return graph;
}

}  // namespace hypo
