#include "analysis/restricted.h"

#include <string>

namespace hypo {

namespace {

std::string PredicateLabel(const SymbolTable& symbols, PredicateId pred) {
  return symbols.PredicateName(pred) + "/" +
         std::to_string(symbols.PredicateArity(pred));
}

Status ViolationError(const SymbolTable& symbols, PredicateId pred,
                      bool assume, const char* where) {
  const char* directive = assume ? "assumable" : "retractable";
  const char* op = assume ? "insertion" : "deletion";
  return Status::FailedPrecondition(
      std::string("hypothetical ") + op + " of restricted predicate '" +
      PredicateLabel(symbols, pred) + "' in " + where +
      ": declare ':- " + directive + " " + PredicateLabel(symbols, pred) +
      ".' to allow it");
}

Status CheckPremises(const RuleBase& rulebase,
                     const std::vector<Premise>& premises,
                     const char* where) {
  const auto& assumable = rulebase.assumable();
  const auto& retractable = rulebase.retractable();
  for (const Premise& p : premises) {
    for (const Atom& a : p.additions) {
      if (assumable.count(a.predicate) == 0) {
        return ViolationError(rulebase.symbols(), a.predicate,
                              /*assume=*/true, where);
      }
    }
    for (const Atom& a : p.deletions) {
      if (retractable.count(a.predicate) == 0) {
        return ViolationError(rulebase.symbols(), a.predicate,
                              /*assume=*/false, where);
      }
    }
  }
  return Status::OK();
}

}  // namespace

RestrictionAnalysis::RestrictionAnalysis(const RuleBase* rulebase)
    : rulebase_(rulebase),
      num_predicates_(rulebase->symbols().num_predicates()) {
  edges_.resize(num_predicates_);
  for (const Rule& rule : rulebase_->rules()) {
    if (rule.head.predicate >= num_predicates_) continue;
    std::vector<PredicateId>& out = edges_[rule.head.predicate];
    for (const Premise& p : rule.premises) {
      out.push_back(p.atom.predicate);
      for (const Atom& a : p.additions) out.push_back(a.predicate);
      for (const Atom& a : p.deletions) out.push_back(a.predicate);
    }
  }
}

const std::vector<bool>& RestrictionAnalysis::ConeOf(
    PredicateId goal_pred) const {
  auto it = cones_.find(goal_pred);
  if (it != cones_.end()) return it->second;
  std::vector<bool> cone(num_predicates_, false);
  std::vector<PredicateId> stack;
  if (goal_pred >= 0 && goal_pred < num_predicates_) {
    cone[goal_pred] = true;
    stack.push_back(goal_pred);
  }
  while (!stack.empty()) {
    PredicateId p = stack.back();
    stack.pop_back();
    for (PredicateId q : edges_[p]) {
      if (q >= 0 && q < num_predicates_ && !cone[q]) {
        cone[q] = true;
        stack.push_back(q);
      }
    }
  }
  return cones_.emplace(goal_pred, std::move(cone)).first->second;
}

bool RestrictionAnalysis::Relevant(PredicateId goal_pred,
                                   PredicateId context_pred) const {
  if (context_pred < 0 || context_pred >= num_predicates_) return true;
  if (goal_pred < 0 || goal_pred >= num_predicates_) return true;
  return ConeOf(goal_pred)[context_pred];
}

Status CheckRuleRestrictions(const RuleBase& rulebase) {
  if (!rulebase.has_restrictions()) return Status::OK();
  for (const Rule& rule : rulebase.rules()) {
    HYPO_RETURN_IF_ERROR(CheckPremises(rulebase, rule.premises, "a rule"));
  }
  return Status::OK();
}

Status CheckQueryRestrictions(const RuleBase& rulebase, const Query& query) {
  if (!rulebase.has_restrictions()) return Status::OK();
  return CheckPremises(rulebase, query.premises, "the query");
}

}  // namespace hypo
