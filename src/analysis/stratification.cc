#include "analysis/stratification.h"

#include <algorithm>

#include "base/logging.h"

namespace hypo {

namespace {

/// Computes stratified-negation levels for the rules in `rule_indices`
/// only; premise predicates not defined by those rules are treated as base
/// (stratum 0). Fails if negation is not stratified within the subset.
StatusOr<std::vector<int>> NegationLevelsForSubset(
    const RuleBase& rulebase, const std::vector<int>& rule_indices) {
  const int n = rulebase.symbols().num_predicates();
  std::vector<bool> defined_here(n, false);
  for (int r : rule_indices) {
    defined_here[rulebase.rule(r).head.predicate] = true;
  }
  std::vector<int> level(n, 0);
  // Relaxation to the least fixpoint of the stratification constraints.
  // Levels can only rise, and in a stratified program no level exceeds the
  // number of predicates defined in the subset; a level beyond that bound
  // proves a recursive cycle through negation.
  int num_defined = 0;
  for (int pred = 0; pred < n; ++pred) {
    if (defined_here[pred]) ++num_defined;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int r : rule_indices) {
      const Rule& rule = rulebase.rule(r);
      PredicateId head = rule.head.predicate;
      for (const Premise& p : rule.premises) {
        PredicateId q = p.atom.predicate;
        if (!defined_here[q]) continue;
        int required = p.kind == PremiseKind::kNegated ? level[q] + 1
                                                       : level[q];
        if (level[head] < required) {
          if (required > num_defined) {
            return Status::InvalidArgument(
                "negation is not stratified: some recursive cycle passes "
                "through negation-by-failure");
          }
          level[head] = required;
          changed = true;
        }
      }
    }
  }
  return level;
}

}  // namespace

StatusOr<NegationStrata> ComputeNegationStrata(const RuleBase& rulebase) {
  std::vector<int> all_rules(rulebase.num_rules());
  for (int i = 0; i < rulebase.num_rules(); ++i) all_rules[i] = i;
  HYPO_ASSIGN_OR_RETURN(std::vector<int> level,
                        NegationLevelsForSubset(rulebase, all_rules));
  NegationStrata strata;
  strata.stratum_of_pred = std::move(level);
  int max_level = 0;
  for (int r = 0; r < rulebase.num_rules(); ++r) {
    max_level =
        std::max(max_level,
                 strata.stratum_of_pred[rulebase.rule(r).head.predicate]);
  }
  strata.num_strata = rulebase.num_rules() == 0 ? 0 : max_level + 1;
  strata.rules_by_stratum.resize(strata.num_strata);
  for (int r = 0; r < rulebase.num_rules(); ++r) {
    int s = strata.stratum_of_pred[rulebase.rule(r).head.predicate];
    strata.rules_by_stratum[s].push_back(r);
  }
  return strata;
}

LinearityInfo AnalyzeLinearity(const RuleBase& rulebase,
                               const DependencyGraph& graph,
                               const SccResult& sccs) {
  (void)graph;
  LinearityInfo info;
  const int num_rules = rulebase.num_rules();
  info.recursive_occurrences.assign(num_rules, 0);
  info.rule_is_recursive.assign(num_rules, false);
  info.rule_is_linear.assign(num_rules, true);
  info.scc_has_hypothetical_recursion.assign(sccs.num_components, false);
  info.scc_has_nonlinear_recursion.assign(sccs.num_components, false);
  info.scc_has_negative_recursion.assign(sccs.num_components, false);

  for (int r = 0; r < num_rules; ++r) {
    const Rule& rule = rulebase.rule(r);
    PredicateId head = rule.head.predicate;
    int component = sccs.component_of[head];
    int occurrences = 0;
    for (const Premise& p : rule.premises) {
      PredicateId q = p.atom.predicate;
      if (!sccs.MutuallyRecursive(head, q)) continue;
      ++occurrences;
      if (p.kind == PremiseKind::kHypothetical) {
        info.scc_has_hypothetical_recursion[component] = true;
      }
      if (p.kind == PremiseKind::kNegated) {
        info.scc_has_negative_recursion[component] = true;
      }
    }
    info.recursive_occurrences[r] = occurrences;
    info.rule_is_recursive[r] = occurrences >= 1;
    info.rule_is_linear[r] = occurrences <= 1;
    if (occurrences > 1) {
      info.scc_has_nonlinear_recursion[component] = true;
    }
  }
  return info;
}

Status CheckLinearlyStratifiable(const RuleBase& rulebase) {
  DependencyGraph graph = DependencyGraph::Build(rulebase);
  SccResult sccs = ComputeSccs(graph);
  LinearityInfo info = AnalyzeLinearity(rulebase, graph, sccs);
  for (int c = 0; c < sccs.num_components; ++c) {
    if (info.scc_has_negative_recursion[c]) {
      return Status::InvalidArgument(
          "not linearly stratifiable: predicate '" +
          rulebase.symbols().PredicateName(sccs.members[c][0]) +
          "' recurses through negation-by-failure");
    }
    if (info.scc_has_hypothetical_recursion[c] &&
        info.scc_has_nonlinear_recursion[c]) {
      return Status::InvalidArgument(
          "not linearly stratifiable: the recursion class of predicate '" +
          rulebase.symbols().PredicateName(sccs.members[c][0]) +
          "' has both hypothetical recursion and non-linear recursion");
    }
  }
  return Status::OK();
}

StatusOr<LinearStratification> ComputeLinearStratification(
    const RuleBase& rulebase) {
  HYPO_RETURN_IF_ERROR(CheckLinearlyStratifiable(rulebase));

  const int n = rulebase.symbols().num_predicates();
  const int num_rules = rulebase.num_rules();

  LinearStratification out;
  out.partition_of_pred.assign(n, 0);
  // Defined (intensional) predicates start in partition 1 (Lemma 1's
  // relaxation: "initially, each predicate is assigned to partition 1").
  for (int r = 0; r < num_rules; ++r) {
    out.partition_of_pred[rulebase.rule(r).head.predicate] = 1;
  }

  // Relaxation: raise part(H) while some Definition 6 condition fails.
  // Reading of Definition 6 (see DESIGN.md §2 for the ≤ correction):
  //   * positive occurrence of Q in a rule of partition p: part(Q) <= p;
  //   * negative occurrence:      part(Q) < p when p is even (Σ part),
  //                               part(Q) <= p when p is odd (Δ part,
  //                               where negation is stratified internally);
  //   * hypothetical occurrence:  part(Q) <= p when p is even,
  //                               part(Q) < p when p is odd.
  // The Lemma 1 pre-tests guarantee convergence; the bound below is a
  // defensive backstop (at worst every defined predicate ends up in its
  // own pair of partitions).
  const int max_partition = 2 * n + 2;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int r = 0; r < num_rules; ++r) {
      const Rule& rule = rulebase.rule(r);
      PredicateId head = rule.head.predicate;
      int p = out.partition_of_pred[head];
      bool violated = false;
      for (const Premise& premise : rule.premises) {
        int q = out.partition_of_pred[premise.atom.predicate];
        switch (premise.kind) {
          case PremiseKind::kPositive:
            violated = q > p;
            break;
          case PremiseKind::kNegated:
            violated = (p % 2 == 0) ? q >= p : q > p;
            break;
          case PremiseKind::kHypothetical:
            violated = (p % 2 == 0) ? q > p : q >= p;
            break;
        }
        if (violated) break;
      }
      if (violated) {
        if (p + 1 > max_partition) {
          return Status::Internal(
              "linear stratification relaxation exceeded its bound; "
              "this indicates a bug in CheckLinearlyStratifiable");
        }
        out.partition_of_pred[head] = p + 1;
        changed = true;
      }
    }
  }

  out.num_partitions = 0;
  for (int pred = 0; pred < n; ++pred) {
    out.num_partitions = std::max(out.num_partitions,
                                  out.partition_of_pred[pred]);
  }
  out.num_strata = (out.num_partitions + 1) / 2;

  out.partition_of_rule.assign(num_rules, 0);
  out.delta_rules.assign(out.num_strata, {});
  out.sigma_rules.assign(out.num_strata, {});
  for (int r = 0; r < num_rules; ++r) {
    int p = out.partition_of_pred[rulebase.rule(r).head.predicate];
    HYPO_CHECK(p >= 1) << "defined predicate left in partition 0";
    out.partition_of_rule[r] = p;
    int stratum = (p + 1) / 2;  // 1-based.
    if (p % 2 == 1) {
      out.delta_rules[stratum - 1].push_back(r);
    } else {
      out.sigma_rules[stratum - 1].push_back(r);
    }
  }

  // Inner negation substrata of each Δ_i (§5.2.2).
  out.delta_substrata.resize(out.num_strata);
  for (int i = 0; i < out.num_strata; ++i) {
    const std::vector<int>& delta = out.delta_rules[i];
    if (delta.empty()) continue;
    HYPO_ASSIGN_OR_RETURN(std::vector<int> level,
                          NegationLevelsForSubset(rulebase, delta));
    int max_level = 0;
    for (int r : delta) {
      max_level = std::max(max_level, level[rulebase.rule(r).head.predicate]);
    }
    out.delta_substrata[i].resize(max_level + 1);
    for (int r : delta) {
      out.delta_substrata[i][level[rulebase.rule(r).head.predicate]]
          .push_back(r);
    }
  }
  return out;
}

}  // namespace hypo
