#include "analysis/report.h"

#include "ast/printer.h"

namespace hypo {

std::string StratificationReport(const RuleBase& rulebase,
                                 const LinearStratification& strat) {
  const SymbolTable& symbols = rulebase.symbols();
  std::string out;
  out += "linear stratification: " + std::to_string(strat.num_strata) +
         " strat" + (strat.num_strata == 1 ? "um" : "a") + "\n";
  for (int i = strat.num_strata; i >= 1; --i) {
    out += "stratum " + std::to_string(i) + "\n";
    const std::vector<int>& sigma = strat.sigma_rules[i - 1];
    out += "  Σ_" + std::to_string(i) + " (" +
           std::to_string(sigma.size()) + " rule" +
           (sigma.size() == 1 ? "" : "s") + ")\n";
    for (int r : sigma) {
      out += "    " + RuleToString(rulebase.rule(r), symbols) + "\n";
    }
    const auto& substrata = strat.delta_substrata[i - 1];
    size_t delta_count = strat.delta_rules[i - 1].size();
    out += "  Δ_" + std::to_string(i) + " (" + std::to_string(delta_count) +
           " rule" + (delta_count == 1 ? "" : "s") + ", " +
           std::to_string(substrata.size()) + " negation substrat" +
           (substrata.size() == 1 ? "um" : "a") + ")\n";
    for (size_t j = 0; j < substrata.size(); ++j) {
      for (int r : substrata[j]) {
        out += "    [" + std::to_string(j) + "] " +
               RuleToString(rulebase.rule(r), symbols) + "\n";
      }
    }
  }
  // Predicate assignment summary.
  out += "predicates:\n";
  for (int pred = 0; pred < symbols.num_predicates(); ++pred) {
    int part = pred < static_cast<int>(strat.partition_of_pred.size())
                   ? strat.partition_of_pred[pred]
                   : 0;
    out += "  " + symbols.PredicateName(pred) + "/" +
           std::to_string(symbols.PredicateArity(pred));
    if (part == 0) {
      out += ": extensional\n";
    } else {
      out += ": " + std::string(part % 2 == 0 ? "Σ_" : "Δ_") +
             std::to_string((part + 1) / 2) + " (partition " +
             std::to_string(part) + ")\n";
    }
  }
  return out;
}

std::string ExplainStratification(const RuleBase& rulebase) {
  auto strat = ComputeLinearStratification(rulebase);
  if (!strat.ok()) {
    return "not linearly stratifiable: " + strat.status().message() +
           "\n(the general TabledEngine still evaluates it if negation "
           "is stratified)\n";
  }
  return StratificationReport(rulebase, *strat);
}

}  // namespace hypo
