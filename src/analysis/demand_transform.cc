#include "analysis/demand_transform.h"

#include <algorithm>
#include <string>

#include "base/logging.h"

namespace hypo {

namespace {

constexpr int kMaxAdornedColumns = 32;

/// The site mask of `atom` given the currently bound variables: bit i set
/// iff argument i is a constant or a bound variable (first 32 args only).
AdornMask SiteMask(const Atom& atom, const std::vector<bool>& bound_vars) {
  AdornMask mask = 0;
  const int limit = std::min<int>(static_cast<int>(atom.args.size()),
                                  kMaxAdornedColumns);
  for (int i = 0; i < limit; ++i) {
    const Term& t = atom.args[i];
    if (t.is_const() ||
        (t.var_index() < static_cast<int>(bound_vars.size()) &&
         bound_vars[t.var_index()])) {
      mask |= 1u << i;
    }
  }
  return mask;
}

bool AtomTouchesBound(const Atom& atom, const std::vector<bool>& bound) {
  for (const Term& t : atom.args) {
    if (t.is_const() || bound[t.var_index()]) return true;
  }
  return false;
}

void BindAtomVars(const Atom& atom, std::vector<bool>* bound) {
  for (const Term& t : atom.args) {
    if (t.is_var()) (*bound)[t.var_index()] = true;
  }
}

/// The extensional-only sideways pass for one rule: starting from the
/// head arguments selected by `head_mask`, repeatedly absorbs positive
/// extensional premises that share a constant or bound argument, binding
/// their variables. Returns the bound-variable set and (optionally) the
/// indices of the absorbed EDB premises — exactly the premises a magic
/// propagation rule may join on without risking new stratification cycles.
std::vector<bool> EdbBoundClosure(const RuleBase& rulebase, const Rule& rule,
                                  AdornMask head_mask,
                                  std::vector<int>* used_edb) {
  std::vector<bool> bound(rule.num_vars(), false);
  const int limit = std::min<int>(static_cast<int>(rule.head.args.size()),
                                  kMaxAdornedColumns);
  for (int i = 0; i < limit; ++i) {
    if ((head_mask & (1u << i)) == 0) continue;
    const Term& t = rule.head.args[i];
    if (t.is_var()) bound[t.var_index()] = true;
  }
  std::vector<bool> used(rule.premises.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < rule.premises.size(); ++i) {
      if (used[i]) continue;
      const Premise& p = rule.premises[i];
      if (p.kind != PremiseKind::kPositive) continue;
      if (rulebase.IsDefined(p.atom.predicate)) continue;
      if (!AtomTouchesBound(p.atom, bound)) continue;
      used[i] = true;
      BindAtomVars(p.atom, &bound);
      changed = true;
    }
  }
  if (used_edb != nullptr) {
    used_edb->clear();
    for (size_t i = 0; i < rule.premises.size(); ++i) {
      if (used[i]) used_edb->push_back(static_cast<int>(i));
    }
  }
  return bound;
}

/// Projects `atom`'s arguments at the positions of `mask` into a magic
/// head/guard atom for `magic_pred`.
Atom ProjectAtom(const Atom& atom, AdornMask mask, PredicateId magic_pred) {
  Atom out;
  out.predicate = magic_pred;
  const int limit = std::min<int>(static_cast<int>(atom.args.size()),
                                  kMaxAdornedColumns);
  for (int i = 0; i < limit; ++i) {
    if (mask & (1u << i)) out.args.push_back(atom.args[i]);
  }
  return out;
}

}  // namespace

void DemandProfile::EnsureSize(PredicateId pred) {
  if (pred >= static_cast<int>(mode_.size())) {
    mode_.resize(pred + 1, DemandMode::kNone);
    adornment_.resize(pred + 1, 0);
  }
}

bool DemandProfile::Join(PredicateId pred, AdornMask bound_mask,
                         std::vector<PredicateId>* worklist) {
  EnsureSize(pred);
  // Positions beyond the predicate's arity can never be bound; clamp so a
  // stray mask does not produce phantom adorned columns.
  const int arity = rulebase_->symbols().PredicateArity(pred);
  if (arity < kMaxAdornedColumns) {
    bound_mask &= (arity == 0) ? 0u : ((1u << arity) - 1u);
  }
  switch (mode_[pred]) {
    case DemandMode::kFull:
      return false;  // Already top of the lattice.
    case DemandMode::kNone: {
      ++num_demanded_;
      mode_[pred] = bound_mask == 0 ? DemandMode::kFull : DemandMode::kMagic;
      adornment_[pred] = bound_mask;
      worklist->push_back(pred);
      return true;
    }
    case DemandMode::kMagic: {
      AdornMask joined = adornment_[pred] & bound_mask;
      if (joined == adornment_[pred]) return false;
      adornment_[pred] = joined;
      if (joined == 0) mode_[pred] = DemandMode::kFull;
      worklist->push_back(pred);
      return true;
    }
  }
  return false;
}

bool DemandProfile::AddDemand(PredicateId pred, AdornMask bound_mask) {
  if (pred < 0 || !rulebase_->IsDefined(pred)) return false;
  std::vector<PredicateId> worklist;
  bool widened = Join(pred, bound_mask, &worklist);
  while (!worklist.empty()) {
    PredicateId head = worklist.back();
    worklist.pop_back();
    const AdornMask head_mask =
        mode_[head] == DemandMode::kMagic ? adornment_[head] : 0;
    for (int rule_index : rulebase_->DefinitionOf(head)) {
      const Rule& rule = rulebase_->rule(rule_index);
      std::vector<bool> bound =
          EdbBoundClosure(*rulebase_, rule, head_mask, nullptr);
      for (const Premise& p : rule.premises) {
        PredicateId q = p.atom.predicate;
        if (!rulebase_->IsDefined(q)) continue;
        if (p.kind == PremiseKind::kNegated) {
          // Tekle-Liu: demand under negation is full demand for the
          // negated predicate's stratum slice (its own body demands
          // propagate from here with an empty adornment).
          widened |= Join(q, 0, &worklist);
        } else {
          widened |= Join(q, SiteMask(p.atom, bound), &worklist);
        }
      }
    }
  }
  return widened;
}

StatusOr<DemandProgram> BuildDemandProgram(const RuleBase& rulebase,
                                           const DemandProfile& profile) {
  DemandProgram program(rulebase.symbols_ptr());
  SymbolTable* symbols = program.rules.mutable_symbols();
  program.magic_of.assign(symbols->num_predicates(), kInvalidPredicate);

  // Intern a magic predicate per kMagic predicate. The adornment is part
  // of the name so a later profile widening (which shrinks adornments)
  // gets a fresh predicate while an unchanged one is reused — reuse keeps
  // previously seeded magic facts in memoized states meaningful.
  for (PredicateId pred = 0;
       pred < static_cast<int>(program.magic_of.size()); ++pred) {
    if (profile.mode(pred) != DemandMode::kMagic) continue;
    AdornMask mask = profile.adornment(pred);
    std::string name = "__magic_" + symbols->PredicateName(pred) + "_" +
                       std::to_string(mask);
    HYPO_ASSIGN_OR_RETURN(
        PredicateId magic,
        symbols->InternPredicate(name, __builtin_popcount(mask)));
    if (static_cast<int>(program.magic_of.size()) <= magic) {
      program.magic_of.resize(magic + 1, kInvalidPredicate);
    }
    program.magic_of[pred] = magic;
    program.magic_preds.insert(magic);
  }

  std::vector<int> used_edb;
  for (const Rule& rule : rulebase.rules()) {
    const PredicateId head = rule.head.predicate;
    const DemandMode head_mode = profile.mode(head);
    if (head_mode == DemandMode::kNone) continue;  // Rule dropped.

    const AdornMask head_mask =
        head_mode == DemandMode::kMagic ? profile.adornment(head) : 0;
    std::vector<bool> bound =
        EdbBoundClosure(rulebase, rule, head_mask, &used_edb);

    Atom guard;  // Valid only when the head is magic-guarded.
    if (head_mode == DemandMode::kMagic) {
      guard = ProjectAtom(rule.head, head_mask, program.magic_of[head]);
    }

    // The guarded (or copied) rule version.
    Rule guarded;
    guarded.head = rule.head;
    guarded.var_names = rule.var_names;
    if (head_mode == DemandMode::kMagic) {
      guarded.premises.push_back(Premise::Positive(guard));
    }
    for (const Premise& p : rule.premises) guarded.premises.push_back(p);
    program.rules.AddRule(std::move(guarded));

    // Magic propagation rules for kMagic body occurrences (positive and
    // hypothetical queried atoms; negated ones are kFull by construction).
    for (const Premise& p : rule.premises) {
      if (p.kind == PremiseKind::kNegated) continue;
      PredicateId q = p.atom.predicate;
      if (profile.mode(q) != DemandMode::kMagic) continue;
      AdornMask qmask = profile.adornment(q) & SiteMask(p.atom, bound);
      // The profile guarantees adornment(q) is a subset of this site's
      // mask (it is an intersection over all sites), so the projection
      // below only sees bound positions.
      HYPO_DCHECK(qmask == profile.adornment(q))
          << "demand profile out of sync with rulebase";
      Rule magic_rule;
      magic_rule.head = ProjectAtom(p.atom, qmask, program.magic_of[q]);
      magic_rule.var_names = rule.var_names;
      if (head_mode == DemandMode::kMagic) {
        magic_rule.premises.push_back(Premise::Positive(guard));
      }
      for (int i : used_edb) {
        magic_rule.premises.push_back(rule.premises[i]);
      }
      // Skip the degenerate self-loop `__magic_p(x) <- __magic_p(x)`
      // produced by left-linear recursion: it can derive nothing new.
      if (magic_rule.premises.size() == 1 &&
          magic_rule.premises[0].atom == magic_rule.head) {
        continue;
      }
      program.rules.AddRule(std::move(magic_rule));
    }
  }
  return program;
}

std::optional<Fact> MagicSeedForFact(const DemandProfile& profile,
                                     const DemandProgram& program,
                                     const Fact& goal) {
  if (profile.mode(goal.predicate) != DemandMode::kMagic) return std::nullopt;
  const AdornMask mask = profile.adornment(goal.predicate);
  Fact seed;
  seed.predicate = program.MagicOf(goal.predicate);
  HYPO_DCHECK(seed.predicate != kInvalidPredicate);
  const int limit = std::min<int>(static_cast<int>(goal.args.size()),
                                  kMaxAdornedColumns);
  for (int i = 0; i < limit; ++i) {
    if (mask & (1u << i)) seed.args.push_back(goal.args[i]);
  }
  return seed;
}

std::optional<Fact> MagicSeedForAtom(const DemandProfile& profile,
                                     const DemandProgram& program,
                                     const Atom& atom) {
  if (profile.mode(atom.predicate) != DemandMode::kMagic) return std::nullopt;
  const AdornMask mask = profile.adornment(atom.predicate);
  Fact seed;
  seed.predicate = program.MagicOf(atom.predicate);
  HYPO_DCHECK(seed.predicate != kInvalidPredicate);
  const int limit = std::min<int>(static_cast<int>(atom.args.size()),
                                  kMaxAdornedColumns);
  for (int i = 0; i < limit; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    HYPO_DCHECK(atom.args[i].is_const())
        << "adorned position of a demanded query atom must be a constant";
    seed.args.push_back(atom.args[i].const_id());
  }
  return seed;
}

}  // namespace hypo
