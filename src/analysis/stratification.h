#ifndef HYPO_ANALYSIS_STRATIFICATION_H_
#define HYPO_ANALYSIS_STRATIFICATION_H_

#include <vector>

#include "analysis/dependency_graph.h"
#include "analysis/scc.h"
#include "ast/rulebase.h"
#include "base/statusor.h"

namespace hypo {

/// Standard stratified-negation levels for the whole rulebase, with
/// hypothetical occurrences treated like positive ones. This is what the
/// general bottom-up engine requires (§3.1: "we assume that negation is
/// stratified"). Fails if some recursive cycle passes through negation.
struct NegationStrata {
  /// Stratum per predicate (0-based; extensional predicates are 0).
  std::vector<int> stratum_of_pred;
  int num_strata = 0;  // 1 + max stratum (0 if there are no predicates).

  /// Rule indices grouped by the stratum of their head predicate.
  std::vector<std::vector<int>> rules_by_stratum;
};

StatusOr<NegationStrata> ComputeNegationStrata(const RuleBase& rulebase);

/// Per-rule linearity facts (Definition 8) and the per-class summary used
/// by the Lemma 1 tests.
struct LinearityInfo {
  /// Number of premise occurrences of predicates mutually recursive with
  /// the rule's head (positive + hypothetical + negative occurrences).
  std::vector<int> recursive_occurrences;   // Indexed by rule.
  std::vector<bool> rule_is_recursive;      // >= 1 occurrence.
  std::vector<bool> rule_is_linear;         // Recursive rules: exactly 1.

  /// Per SCC: does some rule recurse through a hypothetical premise?
  std::vector<bool> scc_has_hypothetical_recursion;
  /// Per SCC: does some recursive rule have more than one recursive
  /// occurrence (i.e. is the class non-linear)?
  std::vector<bool> scc_has_nonlinear_recursion;
  /// Per SCC: does some rule recurse through a negated premise?
  std::vector<bool> scc_has_negative_recursion;
};

LinearityInfo AnalyzeLinearity(const RuleBase& rulebase,
                               const DependencyGraph& graph,
                               const SccResult& sccs);

/// The Lemma 1 decision procedure: a rulebase is linearly stratifiable iff
/// (1) no equivalence class of mutually recursive predicates recurses
/// through negation, and (2) no class has both hypothetical recursion and
/// non-linear recursion. Returns OK or an explanatory error.
Status CheckLinearlyStratifiable(const RuleBase& rulebase);

/// A computed linear stratification (Definitions 6, 7, 9).
///
/// Partition numbers follow the paper: predicates in odd partition 2i-1
/// belong to Δ_i (Horn rules with stratified negation), predicates in even
/// partition 2i belong to Σ_i (linear hypothetical rules). Extensional
/// predicates get partition 0. The i-th *stratum* is Δ_i ∪ Σ_i.
struct LinearStratification {
  int num_strata = 0;      // k: number of strata.
  int num_partitions = 0;  // Highest assigned partition number.

  std::vector<int> partition_of_pred;  // Indexed by PredicateId; 0 = EDB.
  std::vector<int> partition_of_rule;  // = partition of the head predicate.

  /// delta_rules[i-1] / sigma_rules[i-1]: rule indices of Δ_i / Σ_i.
  std::vector<std::vector<int>> delta_rules;
  std::vector<std::vector<int>> sigma_rules;

  /// delta_substrata[i-1][j]: rule indices of Δ_ij, the j-th negation
  /// substratum inside Δ_i (§5.2.2: Δ_i = Δ_i1 ∪ ... ∪ Δ_im).
  std::vector<std::vector<std::vector<int>>> delta_substrata;

  /// Stratum number of `pred`: ceil(partition / 2); 0 for extensional.
  int StratumOf(PredicateId pred) const {
    return (partition_of_pred[pred] + 1) / 2;
  }

  /// True iff `pred` is defined in the Σ (hypothetical) part of its stratum.
  bool InSigma(PredicateId pred) const {
    int p = partition_of_pred[pred];
    return p > 0 && p % 2 == 0;
  }
};

/// Runs the Lemma 1 tests, then the relaxation algorithm assigning
/// partition numbers, and packages the result. Polynomial time in the
/// rulebase size, as the paper requires.
StatusOr<LinearStratification> ComputeLinearStratification(
    const RuleBase& rulebase);

}  // namespace hypo

#endif  // HYPO_ANALYSIS_STRATIFICATION_H_
