#ifndef HYPO_ANALYSIS_DEMAND_TRANSFORM_H_
#define HYPO_ANALYSIS_DEMAND_TRANSFORM_H_

#include <optional>
#include <unordered_set>
#include <vector>

#include "ast/rulebase.h"
#include "base/statusor.h"
#include "db/fact.h"

namespace hypo {

/// Bound-argument-position signature of a demand site (bit i set = the
/// i-th argument of the predicate carries a value known before the
/// subgoal is evaluated). Like db/database.h's ColumnMask, positions past
/// 32 never participate; they are simply treated as free.
using AdornMask = uint32_t;

/// How a predicate is demanded by the current query workload.
enum class DemandMode : uint8_t {
  /// Not reachable from any query root: its rules need not run at all.
  kNone,
  /// Demanded with a non-empty adornment: rules run guarded by a magic
  /// predicate, deriving only tuples whose adorned columns match a
  /// demanded binding.
  kMagic,
  /// Demanded with no usable binding (or under negation, per the
  /// Tekle-Liu stratified-negation rule): the full relation is computed.
  kFull,
};

/// The cumulative demand placed on a rulebase by the queries seen so far.
///
/// One adornment per predicate: every demand site contributes the mask of
/// argument positions it can bind, and the profile keeps the bitwise
/// intersection. Distinct incompatible patterns therefore widen to kFull
/// rather than multiplying adorned predicate versions — coarser than the
/// classic per-pattern adornment, but monotone (demand only ever widens,
/// so memoized models stay sound) and linear in the rulebase size.
///
/// Propagation walks rule bodies with *extensional-only* sideways
/// information passing: a premise argument counts as bound iff it is a
/// constant, a head argument bound by the adornment, or a variable bound
/// by a connected positive extensional premise. Restricting the sideways
/// pass to EDB premises keeps the rewritten program stratified
/// unconditionally (magic predicates depend only on magic predicates and
/// EDB relations, so no new cycle can pass through negation).
///
/// The two extensions the paper forces (see DESIGN.md):
///  * a negated premise ~q demands q *fully* — under stratified negation
///    the absence of a q-tuple is only meaningful against q's complete
///    stratum slice (Tekle & Liu's treatment);
///  * the queried atom of a hypothetical premise A[add: C...] is demanded
///    like a positive occurrence; the engine additionally seeds the child
///    state's magic relation with A's ground bound arguments at test time
///    (demand propagates *into* the hypothetical state).
class DemandProfile {
 public:
  /// The rulebase must outlive the profile.
  explicit DemandProfile(const RuleBase* rulebase) : rulebase_(rulebase) {}

  /// Registers a demand site for `pred` with the given bound positions
  /// (0 = no binding = full demand) and propagates transitively through
  /// the rulebase. Returns true iff the cumulative profile widened (the
  /// caller must then rebuild the transformed program).
  bool AddDemand(PredicateId pred, AdornMask bound_mask);
  bool AddFullDemand(PredicateId pred) { return AddDemand(pred, 0); }

  DemandMode mode(PredicateId pred) const {
    return pred >= 0 && pred < static_cast<int>(mode_.size())
               ? mode_[pred]
               : DemandMode::kNone;
  }
  /// Meaningful only when mode(pred) == kMagic (non-zero then).
  AdornMask adornment(PredicateId pred) const {
    return pred >= 0 && pred < static_cast<int>(adornment_.size())
               ? adornment_[pred]
               : 0;
  }

  /// Number of predicates demanded at all (kMagic or kFull).
  int64_t num_demanded() const { return num_demanded_; }

 private:
  /// Joins a site into the per-predicate lattice (None -> Magic -> Full,
  /// adornments intersecting); enqueues the predicate on change.
  bool Join(PredicateId pred, AdornMask bound_mask,
            std::vector<PredicateId>* worklist);
  void EnsureSize(PredicateId pred);

  const RuleBase* rulebase_;
  std::vector<DemandMode> mode_;
  std::vector<AdornMask> adornment_;
  int64_t num_demanded_ = 0;
};

/// The magic-set rewrite of a rulebase for a demand profile.
///
/// Per original rule with demanded head h:
///  * h kFull  -> the rule is copied unguarded;
///  * h kMagic -> the rule gets a `__magic_h(bound head args)` guard
///    prepended, so it only fires for demanded head bindings.
/// Per kMagic body occurrence q in such a rule, a magic propagation rule
///   __magic_q(bound args of q) <- [__magic_h(...),] <connected EDB premises>
/// is added (head-guard only when h is kMagic). Rules of undemanded
/// predicates are dropped entirely. Magic predicates are interned into the
/// shared SymbolTable as `__magic_<name>_<mask>` with arity popcount(mask).
struct DemandProgram {
  RuleBase rules;

  /// Original predicate id -> its magic predicate id, or kInvalidPredicate
  /// when the predicate is not magic-guarded. Indexed by the original
  /// SymbolTable's ids at build time.
  std::vector<PredicateId> magic_of;

  /// The magic predicate ids themselves (for stats and seed bookkeeping).
  std::unordered_set<PredicateId> magic_preds;

  explicit DemandProgram(std::shared_ptr<SymbolTable> symbols)
      : rules(std::move(symbols)) {}

  bool IsMagic(PredicateId pred) const { return magic_preds.count(pred) > 0; }

  PredicateId MagicOf(PredicateId pred) const {
    return pred >= 0 && pred < static_cast<int>(magic_of.size())
               ? magic_of[pred]
               : kInvalidPredicate;
  }
};

/// Builds the rewritten program; interns magic predicates into the
/// rulebase's SymbolTable. Fails only if a magic predicate name collides
/// with a user predicate of different arity.
StatusOr<DemandProgram> BuildDemandProgram(const RuleBase& rulebase,
                                           const DemandProfile& profile);

/// The magic seed fact demanding `goal`'s slice: the projection of the
/// ground goal onto its predicate's adornment. nullopt when the predicate
/// is not magic-guarded (kFull needs no seed; kNone derives nothing).
std::optional<Fact> MagicSeedForFact(const DemandProfile& profile,
                                     const DemandProgram& program,
                                     const Fact& goal);

/// Same for a (possibly non-ground) atom at a query root. Every adorned
/// position of a demanded atom is a constant by construction (the
/// adornment is the intersection of all site masks, and this site's mask
/// has exactly its constant positions set).
std::optional<Fact> MagicSeedForAtom(const DemandProfile& profile,
                                     const DemandProgram& program,
                                     const Atom& atom);

}  // namespace hypo

#endif  // HYPO_ANALYSIS_DEMAND_TRANSFORM_H_
