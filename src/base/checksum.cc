#include "base/checksum.h"

#include <array>

namespace hypo {

namespace {

/// Reflected CRC-32C lookup table, generated once at static-init time.
/// 256 entries * 4 bytes; the classic byte-at-a-time formulation is fast
/// enough for epoch-boundary record framing (journal appends are
/// dominated by the write+fsync, not the checksum).
std::array<uint32_t, 256> BuildTable() {
  constexpr uint32_t kPoly = 0x82f63b78u;  // Castagnoli, reflected.
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace hypo
