#include "base/io_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace hypo {

namespace {

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void AppendLengthPrefixed(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

StatusOr<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) {
    return Status::OutOfRange("byte reader underrun (u32)");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(
             static_cast<unsigned char>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 4;
  return v;
}

StatusOr<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) {
    return Status::OutOfRange("byte reader underrun (u64)");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<unsigned char>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 8;
  return v;
}

StatusOr<std::string_view> ByteReader::ReadLengthPrefixed() {
  auto len = ReadU32();
  if (!len.ok()) return len.status();
  if (remaining() < *len) {
    return Status::OutOfRange("byte reader underrun (length-prefixed)");
  }
  std::string_view s = data_.substr(offset_, *len);
  offset_ += *len;
  return s;
}

void UniqueFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<UniqueFd> OpenForWrite(const std::string& path, bool truncate) {
  int flags = O_CREAT | O_WRONLY | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::FailedPrecondition(ErrnoMessage("open", path));
  }
  return UniqueFd(fd);
}

Status WriteFully(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::FailedPrecondition(ErrnoMessage("write", path));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::FailedPrecondition(ErrnoMessage("fsync", path));
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::FailedPrecondition(ErrnoMessage("open-for-fsync", path));
  }
  UniqueFd owner(fd);
  return FsyncFd(fd, path);
}

Status TruncateFd(int fd, int64_t size, const std::string& path) {
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    return Status::FailedPrecondition(ErrnoMessage("ftruncate", path));
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::FailedPrecondition(
        ErrnoMessage("rename", from + " -> " + to));
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::FailedPrecondition(ErrnoMessage("unlink", path));
  }
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::FailedPrecondition("mkdir " + path + ": " + ec.message());
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

StatusOr<int64_t> FileSize(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::NotFound("stat " + path + ": " + ec.message());
  }
  return static_cast<int64_t>(size);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::FailedPrecondition(ErrnoMessage("open", path));
  }
  UniqueFd owner(fd);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::FailedPrecondition(ErrnoMessage("read", path));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("opendir " + dir + ": " + ec.message());
  }
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace hypo
