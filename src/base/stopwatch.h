#ifndef HYPO_BASE_STOPWATCH_H_
#define HYPO_BASE_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace hypo {

/// Monotonic wall-clock stopwatch used by the benchmark harness for
/// coarse phase timings (google-benchmark handles the fine-grained loops).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hypo

#endif  // HYPO_BASE_STOPWATCH_H_
