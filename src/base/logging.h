#ifndef HYPO_BASE_LOGGING_H_
#define HYPO_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hypo {
namespace internal_logging {

/// Accumulates a fatal-error message and aborts the process when destroyed.
///
/// Used only via HYPO_CHECK / HYPO_DCHECK; invariant failures inside the
/// library are bugs, and aborting with a location beats corrupting results.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands when a check passes; enables the
/// `HYPO_CHECK(x) << "detail"` form to compile away in the passing path.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace hypo

/// Aborts with a message if `condition` is false. Always on.
#define HYPO_CHECK(condition)                                        \
  (condition) ? static_cast<void>(0)                                 \
              : static_cast<void>(                                   \
                    ::hypo::internal_logging::FatalMessage(          \
                        __FILE__, __LINE__, #condition)              \
                        .stream())

// HYPO_CHECK with a streaming tail requires the ternary above to yield a
// stream. Provide the canonical macro via a helper that keeps both arms
// stream-typed.
#undef HYPO_CHECK
#define HYPO_CHECK(condition)                                           \
  switch (0)                                                            \
  case 0:                                                               \
  default:                                                              \
    if (condition)                                                      \
      ;                                                                 \
    else                                                                \
      ::hypo::internal_logging::FatalMessage(__FILE__, __LINE__,        \
                                             #condition)                \
          .stream()

#ifdef NDEBUG
#define HYPO_DCHECK(condition)                  \
  switch (0)                                    \
  case 0:                                       \
  default:                                      \
    if (true)                                   \
      ;                                         \
    else                                        \
      ::hypo::internal_logging::NullStream()
#else
#define HYPO_DCHECK(condition) HYPO_CHECK(condition)
#endif

#endif  // HYPO_BASE_LOGGING_H_
