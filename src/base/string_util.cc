#include "base/string_util.h"

#include <cctype>

namespace hypo {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

StatusOr<int64_t> ParseInt(std::string_view s, int64_t min, int64_t max) {
  if (s.empty()) return Status::InvalidArgument("expected an integer");
  size_t i = 0;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    ++i;
  }
  if (i == s.size()) {
    return Status::InvalidArgument("expected an integer, got \"" +
                                   std::string(s) + "\"");
  }
  // Accumulate negatively: |INT64_MIN| > INT64_MAX, so the negative range
  // covers both signs without overflowing before the final check.
  int64_t value = 0;
  for (; i < s.size(); ++i) {
    auto uc = static_cast<unsigned char>(s[i]);
    if (!std::isdigit(uc)) {
      return Status::InvalidArgument("expected an integer, got \"" +
                                     std::string(s) + "\"");
    }
    int digit = s[i] - '0';
    if (value < (INT64_MIN + digit) / 10) {
      return Status::InvalidArgument("integer out of range: \"" +
                                     std::string(s) + "\"");
    }
    value = value * 10 - digit;
  }
  if (!negative && value == INT64_MIN) {
    return Status::InvalidArgument("integer out of range: \"" +
                                   std::string(s) + "\"");
  }
  if (!negative) value = -value;
  if (value < min || value > max) {
    return Status::InvalidArgument(
        "integer out of range [" + std::to_string(min) + ", " +
        std::to_string(max) + "]: \"" + std::string(s) + "\"");
  }
  return value;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    auto uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && c != '_') return false;
  }
  return true;
}

}  // namespace hypo
