#ifndef HYPO_BASE_HASH_H_
#define HYPO_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hypo {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Constant is the 64-bit golden ratio; the shifts spread entropy across
  // all bits so sequential ids hash well.
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Finalizer (MurmurHash3 fmix64) that diffuses entropy into every bit.
/// HashCombine alone leaves sequential inputs clustered in the low bits —
/// harmless under prime-modulo bucketing, catastrophic under a
/// power-of-two mask — so anything that masks a hash (e.g. the columnar
/// open-addressing table) must finalize first. Bijective: applying it
/// never introduces or removes collisions over the full 64-bit value.
inline uint64_t HashFinalize(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Hashes a span of integer ids (e.g. the argument tuple of a ground atom).
template <typename Int>
uint64_t HashRange(const Int* data, size_t n, uint64_t seed = 0) {
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(data[i]));
  }
  return h;
}

template <typename Int>
uint64_t HashVector(const std::vector<Int>& v, uint64_t seed = 0) {
  return HashRange(v.data(), v.size(), seed);
}

}  // namespace hypo

#endif  // HYPO_BASE_HASH_H_
