#ifndef HYPO_BASE_THREAD_POOL_H_
#define HYPO_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/status.h"

namespace hypo {

/// A small fixed-size work-stealing thread pool for fork-join parallelism.
///
/// Geometry: `num_workers` background threads, each owning a deque of
/// tasks. An owner pops from the back of its deque (LIFO, cache-warm);
/// an idle thread steals from the front of a victim's deque (FIFO, oldest
/// first). The deques are mutex-guarded rather than lock-free: the tasks
/// this library schedules are coarse — a rule shard or a whole state
/// model, thousands of instructions each — so queue overhead is noise.
///
/// The unit of use is RunBatch(): submit a vector of Status-returning
/// tasks and block until every one has run. The calling thread
/// *participates* (it runs and steals tasks while waiting), so a pool
/// with W workers gives W+1-way parallelism, and nested RunBatch calls
/// from inside a task cannot deadlock: a nested caller keeps draining
/// queues — its own batch's tasks or anyone else's — until its batch
/// completes, and batches only ever wait on their own tasks (a DAG).
///
/// Abort is cooperative: every queued task runs to completion and its
/// Status is recorded; RunBatch returns the first non-OK status in task
/// order, which is deterministic and independent of scheduling. Making
/// the *remaining* tasks cheap after a failure is the caller's job (the
/// engines' shared step meter flips an atomic flag that short-circuits
/// every in-flight task at its next metering check).
class ThreadPool {
 public:
  /// Spawns `num_workers` background threads (>= 0; with 0 workers
  /// RunBatch degenerates to running every task inline on the caller).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every task to completion (on the workers and on the calling
  /// thread) and returns the first non-OK status in task-vector order.
  Status RunBatch(std::vector<std::function<Status()>> tasks);

  int num_workers() const { return static_cast<int>(threads_.size()); }

  /// Tasks executed by a thread other than the one whose deque they were
  /// queued on (includes tasks the RunBatch caller picked up).
  int64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }
  int64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

  /// High-water mark of tasks in flight at once (workers + helping
  /// callers): a lower bound on the parallelism actually achieved.
  int peak_active() const {
    return peak_active_.load(std::memory_order_relaxed);
  }

  /// Zeroes the steal/run counters and re-arms the high-water mark (for
  /// the engines' ResetStats). Call only while no batch is in flight.
  void ResetCounters() {
    tasks_stolen_.store(0, std::memory_order_relaxed);
    tasks_run_.store(0, std::memory_order_relaxed);
    peak_active_.store(active_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }

 private:
  struct Batch;
  struct Task {
    std::function<Status()> fn;
    Batch* batch;
    int index;  // Slot in the batch's result vector.
    int home;   // Deque the task was queued on.
  };
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Pops one task (own deque first, then steals) and runs it. `self` is
  /// the caller's deque index, or -1 for threads outside the pool.
  bool TryRunOne(int self);
  void RunTask(Task task, int runner);
  void WorkerLoop(int self);

  /// This thread's deque index in `pool`, or -1.
  static int SelfIndex(const ThreadPool* pool);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool shutdown_ = false;

  std::atomic<int64_t> queued_{0};  // Tasks currently sitting in a deque.
  std::atomic<int64_t> tasks_stolen_{0};
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int> active_{0};
  std::atomic<int> peak_active_{0};
  std::atomic<uint32_t> rr_{0};  // Round-robin cursor for task placement.
};

}  // namespace hypo

#endif  // HYPO_BASE_THREAD_POOL_H_
