#include "base/query_guard.h"

#include <utility>

namespace hypo {

bool QueryGuard::Arm(int64_t timeout_micros, int64_t max_memory_bytes,
                     std::shared_ptr<CancellationToken> cancel) {
  if (armed_) return false;
  if (timeout_micros <= 0 && max_memory_bytes <= 0 && cancel == nullptr) {
    return false;  // Nothing to govern; stay on the unarmed fast path.
  }
  timeout_micros_ = timeout_micros > 0 ? timeout_micros : 0;
  max_memory_bytes_ = max_memory_bytes > 0 ? max_memory_bytes : 0;
  cancel_ = std::move(cancel);
  if (timeout_micros_ > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(timeout_micros_);
  }
  bytes_peak_.store(0, std::memory_order_relaxed);
  tripped_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    trip_status_ = Status::OK();
  }
  armed_ = true;
  return true;
}

void QueryGuard::Disarm() {
  armed_ = false;
  cancel_.reset();
}

Status QueryGuard::Check(int64_t memory_bytes) {
  if (!armed_) return Status::OK();
  if (tripped_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    return trip_status_;
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Trip(Status::Cancelled(
        "query cancelled: CancellationToken set before completion"));
  }
  if (max_memory_bytes_ > 0 && memory_bytes >= 0) {
    int64_t peak = bytes_peak_.load(std::memory_order_relaxed);
    while (memory_bytes > peak &&
           !bytes_peak_.compare_exchange_weak(peak, memory_bytes,
                                              std::memory_order_relaxed)) {
    }
    if (memory_bytes > max_memory_bytes_) {
      return Trip(Status::ResourceExhausted(LimitTripMessage(
          "max_memory_bytes", max_memory_bytes_, memory_bytes)));
    }
  }
  if (timeout_micros_ > 0) {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline_) {
      int64_t elapsed =
          timeout_micros_ +
          std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                deadline_)
              .count();
      return Trip(Status::DeadlineExceeded(
          LimitTripMessage("timeout_micros", timeout_micros_, elapsed)));
    }
  }
  return Status::OK();
}

int64_t QueryGuard::micros_remaining() const {
  if (timeout_micros_ == 0) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             deadline_ - std::chrono::steady_clock::now())
      .count();
}

bool QueryGuard::tripped_cancelled() const {
  if (!tripped_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return trip_status_.code() == StatusCode::kCancelled;
}

Status QueryGuard::Trip(Status s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tripped_.load(std::memory_order_relaxed)) {
    trip_status_ = std::move(s);
    tripped_.store(true, std::memory_order_release);
  }
  return trip_status_;
}

}  // namespace hypo
