#ifndef HYPO_BASE_STRING_UTIL_H_
#define HYPO_BASE_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"

namespace hypo {

/// Joins the elements of `parts` with `sep` ("a", "b" -> "a, b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` is a valid identifier for the surface syntax:
/// [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view s);

/// Strict base-10 integer parsing for flag and protocol values.
///
/// The whole of `s` must be a decimal integer (optional leading '-');
/// trailing garbage ("4abc"), empty input, surrounding whitespace, and
/// values outside [min, max] are all InvalidArgument. This exists because
/// bare atoi/atol silently accept "4abc" as 4 and saturate on overflow
/// with no error report.
StatusOr<int64_t> ParseInt(std::string_view s, int64_t min, int64_t max);

}  // namespace hypo

#endif  // HYPO_BASE_STRING_UTIL_H_
