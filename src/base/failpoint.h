#ifndef HYPO_BASE_FAILPOINT_H_
#define HYPO_BASE_FAILPOINT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"

/// Deterministic fault injection.
///
/// A *failpoint* is a named site in library code — `HYPO_FAILPOINT("x.y")`
/// — where a test can program an error to surface on the Nth execution of
/// that site. This turns "what if the engine dies mid-round-barrier?" from
/// a thought experiment into a repeatable unit test: arm the site, run a
/// query, watch the typed error propagate, then re-run on the *same*
/// engine instance and require answers identical to a fresh engine
/// (tests/failpoint_test.cc drives exactly that differential sweep over
/// every site the workload touches).
///
/// Sites only exist where a Status (or StatusOr) already flows, so an
/// injected failure exercises the engine's real error path — nothing is
/// thrown, nothing longjmps.
///
/// The whole framework compiles to nothing when HYPO_FAILPOINTS is 0 (the
/// top-level CMakeLists forces that for Release builds); the macro then
/// expands to an empty statement and the registry class is not defined.
#ifndef HYPO_FAILPOINTS
#define HYPO_FAILPOINTS 0
#endif

namespace hypo {

/// True when failpoints are compiled into this build. Tests use this to
/// skip (rather than fail) the injection suites under Release.
constexpr bool FailpointsEnabled() { return HYPO_FAILPOINTS != 0; }

#if HYPO_FAILPOINTS

/// Process-global table of failpoint sites: per-site hit counters (always
/// maintained, so tests can *discover* which sites a workload crosses) and
/// at most one armed one-shot trigger per site.
///
/// All methods are thread-safe; arming and disarming are meant to happen
/// from the test thread while no query is in flight.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Programs `site` to return `status` on its `nth` next hit, counted
  /// from this call (nth=1 means the very next execution). One-shot: the
  /// trigger clears itself when it fires. Re-arming replaces any pending
  /// trigger for the site.
  void Arm(const std::string& site, int64_t nth, Status status);

  /// Like Arm, but once the trigger fires it KEEPS firing on every later
  /// hit until disarmed — a persistently failing device rather than a
  /// transient blip. The durability tests use this to defeat the
  /// journal's bounded retry (a one-shot trigger would be absorbed by
  /// the first retry) and to model a crash point: everything after the
  /// armed site behaves as if the process had died there.
  void ArmSticky(const std::string& site, int64_t nth, Status status);

  /// Clears every pending trigger (hit counters are kept).
  void DisarmAll();

  /// Called by the HYPO_FAILPOINT macro: counts a hit and returns the
  /// armed status if this hit is the one programmed to fire, OK otherwise.
  Status Hit(const char* site);

  /// Hits recorded for `site` since the last ResetCounts (0 if never hit).
  int64_t HitCount(const std::string& site) const;

  /// Every site hit at least once since the last ResetCounts, with counts.
  std::vector<std::pair<std::string, int64_t>> HitSites() const;

  /// Zeroes all hit counters (pending triggers are kept).
  void ResetCounts();

 private:
  struct Site {
    int64_t hits = 0;       // Executions since last ResetCounts.
    int64_t remaining = 0;  // >0: fires when this many more hits land;
                            // -1: sticky trigger fired, fire every hit.
    bool sticky = false;    // Keep firing after the first trip.
    Status status;          // What to return when the trigger fires.
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
};

/// Marks an injection site. Must appear in a function returning Status or
/// StatusOr<T> (the injected Status converts implicitly).
#define HYPO_FAILPOINT(site)                                              \
  do {                                                                    \
    ::hypo::Status _hypo_fp =                                             \
        ::hypo::FailpointRegistry::Global().Hit(site);                    \
    if (!_hypo_fp.ok()) return _hypo_fp;                                  \
  } while (false)

#else  // !HYPO_FAILPOINTS

#define HYPO_FAILPOINT(site) \
  do {                       \
  } while (false)

#endif  // HYPO_FAILPOINTS

}  // namespace hypo

#endif  // HYPO_BASE_FAILPOINT_H_
