#ifndef HYPO_BASE_QUERY_GUARD_H_
#define HYPO_BASE_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>

#include "base/status.h"

namespace hypo {

/// Cooperative cancellation flag shared between a caller and a running
/// query. Cancel() is async-signal-safe (a single atomic store), so a
/// SIGINT handler may call it directly; the engines observe the flag at
/// their metering points and abort with StatusCode::kCancelled.
///
/// The token outlives individual queries: Reset() rearms it so the same
/// engine instance can serve fresh queries after a cancellation.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-engine resource governor for one top-level query: a wall-clock
/// deadline, a memory budget, and an external CancellationToken, checked
/// at the same metering points that enforce max_steps (each engine's
/// CheckLimits). PSPACE-hard hypothetical queries cannot be bounded by
/// analysis, so the bound is imposed at runtime — and must compose with
/// the parallel fixpoint: Check() may race with itself from many workers.
///
/// Life cycle: an engine owns one QueryGuard and Arms it at each public
/// entry point (engine.h's GuardScope). When no limit is configured the
/// guard stays unarmed and the per-check cost is a single predictable
/// branch on a plain bool — the ≤2% overhead budget on ungoverned queries
/// is why armed() is *not* atomic: arming happens strictly outside the
/// parallel region (workers only ever run between Arm and Disarm, and the
/// pool's task handoff synchronizes the write).
///
/// First trip wins: the first limit to fire latches its Status, and every
/// later Check returns that same status so all workers abort with one
/// consistent, typed error identifying the limit, its configured value,
/// and the observed value at trip time.
class QueryGuard {
 public:
  /// Arms the guard if any of the three limits is configured (0/null mean
  /// "none"). Returns true iff this call armed it; returns false without
  /// touching state when already armed (re-entrant public entry), so the
  /// outer scope stays the owner.
  bool Arm(int64_t timeout_micros, int64_t max_memory_bytes,
           std::shared_ptr<CancellationToken> cancel);

  void Disarm();

  bool armed() const { return armed_; }

  /// True when the caller should pass a current memory figure to Check
  /// (i.e. a byte budget is configured). Lets engines skip computing
  /// memory usage when only time/cancel limits are set.
  bool wants_memory() const { return armed_ && max_memory_bytes_ > 0; }

  /// The metering-point check. `memory_bytes` is the engine's current
  /// approximate footprint, or -1 when not tracked for this call. Returns
  /// OK, or the (latched) typed trip status. Thread-safe.
  Status Check(int64_t memory_bytes);

  /// Largest memory_bytes value any Check observed since arming.
  int64_t bytes_peak() const {
    return bytes_peak_.load(std::memory_order_relaxed);
  }

  /// Microseconds until the deadline (negative once past it); 0 when no
  /// deadline is configured.
  int64_t micros_remaining() const;

  /// True iff the guard tripped and the tripping limit was cancellation.
  bool tripped_cancelled() const;

 private:
  /// Latches `s` as the trip status (first caller wins) and returns the
  /// latched status.
  Status Trip(Status s);

  bool armed_ = false;
  int64_t timeout_micros_ = 0;
  int64_t max_memory_bytes_ = 0;
  std::shared_ptr<CancellationToken> cancel_;
  std::chrono::steady_clock::time_point deadline_{};

  std::atomic<int64_t> bytes_peak_{0};
  std::atomic<bool> tripped_{false};
  mutable std::mutex mu_;  // Guards trip_status_.
  Status trip_status_;
};

}  // namespace hypo

#endif  // HYPO_BASE_QUERY_GUARD_H_
