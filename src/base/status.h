#ifndef HYPO_BASE_STATUS_H_
#define HYPO_BASE_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace hypo {

/// Error category carried by a non-OK Status.
///
/// The set is deliberately small: the library signals *why* an operation
/// failed at the level a caller can act on (bad input vs. violated
/// precondition vs. resource exhaustion), not at the level of individual
/// call sites.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // Malformed input (parse errors, bad rule syntax).
  kFailedPrecondition,// Operation needs state the caller did not establish.
  kNotFound,          // Named entity (predicate, constant, file) missing.
  kOutOfRange,        // Index or size outside the permitted range.
  kResourceExhausted, // Configured evaluation limit (memo entries, steps) hit.
  kUnimplemented,     // Feature intentionally not supported.
  kInternal,          // Invariant violation inside the library (a bug).
  kDeadlineExceeded,  // Wall-clock deadline for the query passed.
  kCancelled,         // Caller cancelled the query via a CancellationToken.
  kUnavailable,       // Service temporarily degraded (e.g. read-only after
                      // a journal write failure); retrying later or after
                      // operator intervention may succeed.
  kDataLoss,          // Durable state is unrecoverable (checksum mismatch,
                      // mid-journal corruption). Never returned for a torn
                      // final record, which recovery truncates instead.
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"…).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus a message.
///
/// Follows the RocksDB/Arrow idiom: the library does not throw across its
/// public API; fallible operations return `Status` (or `StatusOr<T>`).
/// The OK status is represented without allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// Message for a non-OK status; empty for OK.
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string();
    return rep_ ? rep_->message : *kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK (the common case); owned otherwise.
  std::unique_ptr<Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Formats the message every limit trip in the library uses:
/// "`<limit>` exceeded: configured <configured>, observed <observed>".
/// Keeping one formatter makes trips grep-able and lets tests assert the
/// shape once for every engine and limit kind.
std::string LimitTripMessage(const char* limit, long long configured,
                             long long observed);

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define HYPO_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::hypo::Status _hypo_status = (expr);           \
    if (!_hypo_status.ok()) return _hypo_status;    \
  } while (false)

}  // namespace hypo

#endif  // HYPO_BASE_STATUS_H_
