#include "base/failpoint.h"

#if HYPO_FAILPOINTS

namespace hypo {

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* const kRegistry = new FailpointRegistry();
  return *kRegistry;
}

void FailpointRegistry::Arm(const std::string& site, int64_t nth,
                            Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  s.remaining = nth;
  s.sticky = false;
  s.status = std::move(status);
}

void FailpointRegistry::ArmSticky(const std::string& site, int64_t nth,
                                  Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  s.remaining = nth;
  s.sticky = true;
  s.status = std::move(status);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) {
    (void)name;
    site.remaining = 0;
    site.sticky = false;
    site.status = Status::OK();
  }
}

Status FailpointRegistry::Hit(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  ++s.hits;
  if (s.remaining == -1) return s.status;  // Tripped sticky trigger.
  if (s.remaining > 0 && --s.remaining == 0) {
    if (s.sticky) {
      s.remaining = -1;
      return s.status;
    }
    Status fired = std::move(s.status);
    s.status = Status::OK();
    return fired;
  }
  return Status::OK();
}

int64_t FailpointRegistry::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, int64_t>> FailpointRegistry::HitSites()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& [name, site] : sites_) {
    if (site.hits > 0) out.emplace_back(name, site.hits);
  }
  return out;
}

void FailpointRegistry::ResetCounts() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) {
    (void)name;
    site.hits = 0;
  }
}

}  // namespace hypo

#endif  // HYPO_FAILPOINTS
