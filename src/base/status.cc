#include "base/status.h"

namespace hypo {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string LimitTripMessage(const char* limit, long long configured,
                             long long observed) {
  std::string msg = limit;
  msg += " exceeded: configured ";
  msg += std::to_string(configured);
  msg += ", observed ";
  msg += std::to_string(observed);
  return msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace hypo
