#ifndef HYPO_BASE_CHECKSUM_H_
#define HYPO_BASE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hypo {

/// CRC-32C (Castagnoli polynomial, the iSCSI/RocksDB variant) over
/// `data`. Table-driven software implementation — no hardware intrinsics,
/// so the value is identical on every platform a journal might be moved
/// between. `seed` chains partial computations: Crc32c(b, Crc32c(a)) ==
/// Crc32c(a + b).
///
/// The durability layer frames every journal record and checkpoint
/// payload with this checksum; recovery distinguishes a *torn* write
/// (short bytes at end-of-file, truncated silently) from *corruption*
/// (full-length bytes whose checksum does not match, a typed DataLoss).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace hypo

#endif  // HYPO_BASE_CHECKSUM_H_
