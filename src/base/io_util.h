#ifndef HYPO_BASE_IO_UTIL_H_
#define HYPO_BASE_IO_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"

namespace hypo {

// ---------------------------------------------------------------------------
// Little-endian binary framing. The durability layer (journal records,
// checkpoint payloads) serializes through these so the on-disk byte order
// is fixed regardless of host endianness.

void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);

/// u32 length prefix followed by the raw bytes.
void AppendLengthPrefixed(std::string* out, std::string_view s);

/// Sequential reader over a byte view. Every read is bounds-checked and
/// returns OutOfRange on underrun — the caller maps that to "torn" or
/// "corrupt" depending on where in a file the underrun happened.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<std::string_view> ReadLengthPrefixed();

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

// ---------------------------------------------------------------------------
// Status-returning POSIX file helpers. Every failure carries the path and
// the errno text, so a durability error names the exact file involved.

/// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Close(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Opens (creating if absent) `path` for writing. `truncate` empties any
/// existing file; otherwise the caller positions writes via the returned
/// fd (the journal appends at its recovered logical end).
StatusOr<UniqueFd> OpenForWrite(const std::string& path, bool truncate);

/// Writes all of `data` at the fd's current position, retrying short
/// writes and EINTR.
Status WriteFully(int fd, std::string_view data, const std::string& path);

/// fsync(2) on an open descriptor.
Status FsyncFd(int fd, const std::string& path);

/// Opens `path` read-only and fsyncs it — the directory-entry flush after
/// a rename or create makes the new name itself durable.
Status FsyncPath(const std::string& path);

/// ftruncate(2): rolls a partially written record off the journal tail.
Status TruncateFd(int fd, int64_t size, const std::string& path);

/// rename(2); atomic within one filesystem. The caller fsyncs the parent
/// directory afterwards to make the swap durable.
Status RenameFile(const std::string& from, const std::string& to);

Status RemoveFile(const std::string& path);

/// mkdir -p (every missing ancestor).
Status EnsureDir(const std::string& path);

bool FileExists(const std::string& path);

StatusOr<int64_t> FileSize(const std::string& path);

/// Whole-file read; NotFound when the file does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Plain entry names (no path prefix) of `dir`, sorted. "." and ".."
/// excluded.
StatusOr<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace hypo

#endif  // HYPO_BASE_IO_UTIL_H_
