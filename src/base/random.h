#ifndef HYPO_BASE_RANDOM_H_
#define HYPO_BASE_RANDOM_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace hypo {

/// Deterministic PRNG (splitmix64 seeded xorshift128+).
///
/// Tests, workload generators and benchmarks all derive their randomness
/// from this class so that every run is reproducible from a single seed.
/// Not cryptographically secure; never use for security purposes.
class Random {
 public:
  explicit Random(uint64_t seed = 0x853c49e6748fea9bULL) {
    // splitmix64 expansion of the seed into the two xorshift words.
    uint64_t z = seed;
    for (uint64_t* word : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      *word = t ^ (t >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s0_ = 1;  // xorshift must not be all-zero.
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    HYPO_DCHECK(bound > 0);
    // Modulo bias is negligible for the small bounds used here (< 2^32).
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    HYPO_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return (Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

}  // namespace hypo

#endif  // HYPO_BASE_RANDOM_H_
