#ifndef HYPO_BASE_CLEANUP_H_
#define HYPO_BASE_CLEANUP_H_

#include <utility>

namespace hypo {

/// Runs a callable at scope exit unless cancelled — the minimal
/// absl::Cleanup. The engines use it to guarantee that transient memo
/// entries (e.g. a goal marked "in progress" on the DFS stack) are rolled
/// back on *every* exit path, including early error returns from
/// HYPO_RETURN_IF_ERROR; leaking one poisons later queries on the same
/// engine (a dead on-stack entry reads as a circular derivation).
template <typename F>
class Cleanup {
 public:
  explicit Cleanup(F fn) : fn_(std::move(fn)) {}
  ~Cleanup() {
    if (armed_) fn_();
  }

  Cleanup(const Cleanup&) = delete;
  Cleanup& operator=(const Cleanup&) = delete;
  Cleanup(Cleanup&& other) : fn_(std::move(other.fn_)), armed_(other.armed_) {
    other.armed_ = false;
  }
  Cleanup& operator=(Cleanup&&) = delete;

  /// Disarms the guard: the callable will not run.
  void Cancel() { armed_ = false; }

 private:
  F fn_;
  bool armed_ = true;
};

template <typename F>
Cleanup(F) -> Cleanup<F>;

}  // namespace hypo

#endif  // HYPO_BASE_CLEANUP_H_
