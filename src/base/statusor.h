#ifndef HYPO_BASE_STATUSOR_H_
#define HYPO_BASE_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "base/logging.h"
#include "base/status.h"

namespace hypo {

/// Either a value of type T or a non-OK Status explaining why there is none.
///
/// Accessing the value of a non-OK StatusOr is a programming error and
/// aborts (HYPO_CHECK), mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. Passing an OK status is an error
  /// (an OK StatusOr must carry a value) and is converted to kInternal.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl.
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HYPO_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    HYPO_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    HYPO_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or
/// returns its status from the enclosing function.
#define HYPO_ASSIGN_OR_RETURN(lhs, rexpr)               \
  HYPO_ASSIGN_OR_RETURN_IMPL_(                          \
      HYPO_STATUS_CONCAT_(_hypo_statusor, __LINE__), lhs, rexpr)

#define HYPO_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) return statusor.status();           \
  lhs = std::move(statusor).value()

#define HYPO_STATUS_CONCAT_(x, y) HYPO_STATUS_CONCAT_IMPL_(x, y)
#define HYPO_STATUS_CONCAT_IMPL_(x, y) x##y

}  // namespace hypo

#endif  // HYPO_BASE_STATUSOR_H_
