#include "base/thread_pool.h"

#include <chrono>

#include "base/failpoint.h"

namespace hypo {

namespace {
/// Identifies the pool (and deque) the current thread belongs to, so a
/// nested RunBatch from inside a task prefers its own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_index = -1;
}  // namespace

struct ThreadPool::Batch {
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 0;
  std::vector<Status> results;
};

int ThreadPool::SelfIndex(const ThreadPool* pool) {
  return tls_pool == pool ? tls_index : -1;
}

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 0) num_workers = 0;
  queues_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

Status ThreadPool::RunBatch(std::vector<std::function<Status()>> tasks) {
  HYPO_FAILPOINT("pool.run_batch");
  if (tasks.empty()) return Status::OK();
  if (queues_.empty()) {
    // No workers: run inline, still executing *every* task (cooperative
    // abort semantics match the threaded path).
    Status first = Status::OK();
    for (auto& fn : tasks) {
      Status s = fn();
      if (first.ok() && !s.ok()) first = std::move(s);
    }
    return first;
  }

  Batch batch;
  batch.results.assign(tasks.size(), Status::OK());
  batch.remaining = static_cast<int>(tasks.size());

  // Spread tasks round-robin across the deques, starting at this thread's
  // own deque when called from a worker (nested fork-join).
  const int self = SelfIndex(this);
  const uint32_t start =
      self >= 0 ? static_cast<uint32_t>(self)
                : rr_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < tasks.size(); ++i) {
    const int home =
        static_cast<int>((start + i) % static_cast<uint32_t>(queues_.size()));
    std::lock_guard<std::mutex> lock(queues_[home]->mu);
    queues_[home]->tasks.push_back(
        Task{std::move(tasks[i]), &batch, static_cast<int>(i), home});
  }
  queued_.fetch_add(static_cast<int64_t>(tasks.size()),
                    std::memory_order_release);
  wake_cv_.notify_all();

  // Help until the batch completes: run own/stolen tasks while any are
  // queued, otherwise sleep briefly on the batch's condition variable
  // (re-checking, because nested batches can add new stealable work).
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(batch.mu);
      if (batch.remaining == 0) break;
    }
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lock(batch.mu);
    if (batch.remaining == 0) break;
    batch.cv.wait_for(lock, std::chrono::milliseconds(1),
                      [&] { return batch.remaining == 0; });
  }

  for (Status& s : batch.results) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

bool ThreadPool::TryRunOne(int self) {
  const int n = static_cast<int>(queues_.size());
  if (n == 0) return false;
  if (self >= 0) {
    WorkerQueue& q = *queues_[self];
    std::unique_lock<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      Task task = std::move(q.tasks.back());
      q.tasks.pop_back();
      lock.unlock();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      RunTask(std::move(task), self);
      return true;
    }
  }
  const uint32_t start = self >= 0
                             ? static_cast<uint32_t>(self + 1)
                             : rr_.fetch_add(1, std::memory_order_relaxed);
  for (int k = 0; k < n; ++k) {
    const int victim = static_cast<int>((start + static_cast<uint32_t>(k)) %
                                        static_cast<uint32_t>(n));
    if (victim == self) continue;
    WorkerQueue& q = *queues_[victim];
    std::unique_lock<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    Task task = std::move(q.tasks.front());
    q.tasks.pop_front();
    lock.unlock();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    RunTask(std::move(task), self);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(Task task, int runner) {
  if (runner != task.home) {
    tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  }
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  int active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  int peak = peak_active_.load(std::memory_order_relaxed);
  while (active > peak &&
         !peak_active_.compare_exchange_weak(peak, active,
                                             std::memory_order_relaxed)) {
  }
  Status s = task.fn();
  active_.fetch_sub(1, std::memory_order_relaxed);
  // Record + signal under the batch mutex; notifying while holding it
  // keeps the batch alive until the waiter actually observes remaining==0.
  std::lock_guard<std::mutex> lock(task.batch->mu);
  task.batch->results[task.index] = std::move(s);
  if (--task.batch->remaining == 0) task.batch->cv.notify_all();
}

void ThreadPool::WorkerLoop(int self) {
  tls_pool = this;
  tls_index = self;
  for (;;) {
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (shutdown_) return;
    if (queued_.load(std::memory_order_acquire) > 0) continue;
    // The timed fallback covers the benign race where a task finishes
    // queueing between our scan and the wait; submits always notify.
    wake_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

}  // namespace hypo
