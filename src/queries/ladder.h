#ifndef HYPO_QUERIES_LADDER_H_
#define HYPO_QUERIES_LADDER_H_

#include "queries/fixture.h"

namespace hypo {

/// Example 9 generalized: a ladder with k strata, the i-th defining a<i>.
///
///   a<i> <- bb<i>, a<i>[add: cc<i>].      (linear hypothetical recursion)
///   a<i> <- dd<i>, ~a<i-1>.               (negation into the stratum below)
///   a1   <- dd1.
///
/// With every bb<i> and dd<i> in the database, a1 is true and truth
/// alternates up the ladder: a<i> holds iff i is odd. ComputeLinear-
/// Stratification must report exactly k strata, with each a<i> in Σ_i.
ProgramFixture MakeStrataLadderFixture(int k);

/// Example 10 verbatim: H-stratified but *not* linearly stratified (the
/// class of a2 has both non-linear and hypothetical recursion).
/// CheckLinearlyStratifiable fails; the BottomUpEngine still evaluates it
/// (negation is stratified), with a1, d2 and a2 true, b2 and c2 false.
ProgramFixture MakeExample10Fixture();

}  // namespace hypo

#endif  // HYPO_QUERIES_LADDER_H_
