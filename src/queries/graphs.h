#ifndef HYPO_QUERIES_GRAPHS_H_
#define HYPO_QUERIES_GRAPHS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/random.h"
#include "db/database.h"

namespace hypo {

/// A directed graph on vertices 0..num_vertices-1, the database shape of
/// Example 7 (NODE/EDGE relations).
struct Graph {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;
};

/// 0 -> 1 -> ... -> n-1 (has a Hamiltonian path, no circuit for n > 1).
Graph MakePathGraph(int n);

/// A directed cycle on n vertices.
Graph MakeCycleGraph(int n);

/// Complete directed graph (all ordered pairs, no self loops).
Graph MakeCompleteGraph(int n);

/// Two disjoint directed cliques of size n/2 (never has a Hamiltonian
/// path for n >= 4: there is no edge between the halves).
Graph MakeDisconnectedCliques(int n);

/// G(n, p) with each ordered pair independently an edge.
Graph MakeRandomGraph(int n, double edge_probability, Random* rng);

/// Emits node(v<i>) and edge(v<i>, v<j>) facts into `db`.
void GraphToDatabase(const Graph& graph, Database* db);

/// Reference decision procedure: directed Hamiltonian path (visits every
/// vertex exactly once), by depth-first backtracking over bitmasks.
/// Requires num_vertices <= 30. The baseline of experiment E4.
bool HamiltonianPathExists(const Graph& graph);

/// Directed Hamiltonian circuit: a Hamiltonian path with an edge from its
/// last vertex back to its first. Requires num_vertices <= 30.
bool HamiltonianCircuitExists(const Graph& graph);

}  // namespace hypo

#endif  // HYPO_QUERIES_GRAPHS_H_
