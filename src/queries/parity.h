#ifndef HYPO_QUERIES_PARITY_H_
#define HYPO_QUERIES_PARITY_H_

#include "queries/fixture.h"

namespace hypo {

/// Example 6: the parity rulebase.
///
///   even <- select(X), odd[add: b(X)].
///   odd  <- select(X), even[add: b(X)].
///   even <- ~select(X).
///   select(X) <- a(X), ~b(X).
///
/// `even` is inferable iff the database holds an even number of a(·)
/// entries (and `odd` iff an odd number): the rules copy `a` to `b` one
/// tuple at a time, flipping between the two conclusions. [3] shows such
/// queries are not expressible in Datalog; this is also the paper's first
/// use of the order-independence idea reused in §6.
///
/// The database holds a(e1), ..., a(e<num_elements>).
ProgramFixture MakeParityFixture(int num_elements);

}  // namespace hypo

#endif  // HYPO_QUERIES_PARITY_H_
