#ifndef HYPO_QUERIES_UNIVERSITY_H_
#define HYPO_QUERIES_UNIVERSITY_H_

#include "queries/fixture.h"

namespace hypo {

/// The university-policy rulebase of §2 (Examples 1–3).
///
/// Predicates:
///  * take(S, C)        — student S has taken course C (extensional).
///  * grad(S)           — S is eligible to graduate (two course tracks).
///  * degree(S, D)      — S is eligible for a degree in discipline D.
///  * within1(S, D)     — S is within one course of a degree in D
///                        (Example 3's hypothetical rule).
///
/// Database: tony (cs250 + his101), mary (his101 + eng201, a graduate),
/// sue (m101 + m201 + p101), kim (m101 + p101), bob (nothing).
///
/// Known answers, used by tests and EXPERIMENTS.md (E1):
///  * Example 1: grad(tony)[add: take(tony, cs452)] holds.
///  * Example 2: "one more course" students = {tony, mary} (mary already
///    graduates, and inference is monotone under additions).
///  * Example 3: degree(S, mathphys) holds for sue and kim only.
///
/// `include_example3` controls whether the within1/mathphys rules are
/// present. Note a fact the paper leaves implicit: the Example 3 rulebase
/// is *not* linearly stratifiable — within1 and degree are mutually
/// recursive, the mathphys rule has two recursive occurrences (non-linear,
/// Definition 8) and the class recurses hypothetically, so the Lemma 1
/// test rejects it. Examples 1–3 are presented for the general §3 system;
/// the StratifiedProver therefore only accepts the fixture without
/// Example 3, while the general engines evaluate the full fixture.
ProgramFixture MakeUniversityFixture(bool include_example3 = true);

}  // namespace hypo

#endif  // HYPO_QUERIES_UNIVERSITY_H_
