#ifndef HYPO_QUERIES_HAMILTONIAN_H_
#define HYPO_QUERIES_HAMILTONIAN_H_

#include "queries/fixture.h"
#include "queries/graphs.h"

namespace hypo {

/// Examples 7 and 8: the Hamiltonian-path rulebase.
///
///   yes <- node(X), path(X)[add: pnode(X)].
///   path(X) <- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
///   path(X) <- ~select(Y).
///   select(Y) <- node(Y), ~pnode(Y).
///
/// `yes` is inferable iff the graph in the database has a directed
/// Hamiltonian path — the source of the NP-hardness in Theorem 1's k = 1
/// level. With `with_no_rule`, Example 8's single extra rule
///
///   no <- ~yes.
///
/// is added, making the rulebase decide the complement too (data-complexity
/// NP- and coNP-hard; the rulebase then needs a second stratum).
ProgramFixture MakeHamiltonianFixture(const Graph& graph, bool with_no_rule);

/// Example 8's literal claim is about Hamiltonian *circuits*; this
/// variant tracks the start node and closes the cycle:
///
///   cyes <- node(S), cpath(S, S)[add: pnode(S)].
///   cpath(S, X) <- select(Y), edge(X, Y), cpath(S, Y)[add: pnode(Y)].
///   cpath(S, X) <- ~select(Y), edge(X, S).
///   select(Y) <- node(Y), ~pnode(Y).
///
/// `cyes` is inferable iff the graph has a directed Hamiltonian circuit.
ProgramFixture MakeHamiltonianCircuitFixture(const Graph& graph);

}  // namespace hypo

#endif  // HYPO_QUERIES_HAMILTONIAN_H_
