#include "queries/parity.h"

#include <string>

#include "base/logging.h"
#include "parser/parser.h"

namespace hypo {

ProgramFixture MakeParityFixture(int num_elements) {
  static constexpr const char* kRules = R"(
    even <- select(X), odd[add: b(X)].
    odd  <- select(X), even[add: b(X)].
    even <- ~select(X).
    select(X) <- a(X), ~b(X).
  )";
  ProgramFixture fixture;
  StatusOr<RuleBase> rules = ParseRuleBase(kRules, fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  for (int i = 1; i <= num_elements; ++i) {
    Status s = fixture.db.Insert("a", {"e" + std::to_string(i)});
    HYPO_CHECK(s.ok()) << s;
  }
  return fixture;
}

}  // namespace hypo
