#include "queries/hamiltonian.h"

#include "base/logging.h"
#include "parser/parser.h"

namespace hypo {

ProgramFixture MakeHamiltonianFixture(const Graph& graph,
                                      bool with_no_rule) {
  static constexpr const char* kRules = R"(
    yes <- node(X), path(X)[add: pnode(X)].
    path(X) <- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
    path(X) <- ~select(Y).
    select(Y) <- node(Y), ~pnode(Y).
  )";
  ProgramFixture fixture;
  std::string text = kRules;
  if (with_no_rule) text += "\n    no <- ~yes.\n";
  StatusOr<RuleBase> rules = ParseRuleBase(text, fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  GraphToDatabase(graph, &fixture.db);
  return fixture;
}

ProgramFixture MakeHamiltonianCircuitFixture(const Graph& graph) {
  static constexpr const char* kRules = R"(
    cyes <- node(S), cpath(S, S)[add: pnode(S)].
    cpath(S, X) <- select(Y), edge(X, Y), cpath(S, Y)[add: pnode(Y)].
    cpath(S, X) <- ~select(Y), edge(X, S).
    select(Y) <- node(Y), ~pnode(Y).
  )";
  ProgramFixture fixture;
  StatusOr<RuleBase> rules = ParseRuleBase(kRules, fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  GraphToDatabase(graph, &fixture.db);
  return fixture;
}

}  // namespace hypo
