#include <string>

#include "queries/university.h"

#include "base/logging.h"
#include "parser/parser.h"

namespace hypo {

ProgramFixture MakeUniversityFixture(bool include_example3) {
  static constexpr const char* kRules = R"(
    % Graduation tracks (Examples 1-2).
    grad(S) <- take(S, his101), take(S, eng201).
    grad(S) <- take(S, cs250), take(S, cs452).

    % Departmental degrees.
    degree(S, math) <- take(S, m101), take(S, m201).
    degree(S, phys) <- take(S, p101), take(S, p201).
  )";
  static constexpr const char* kExample3Rules = R"(
    % Example 3: "within one course of a degree in D". Mutually recursive
    % with degree and non-linear: only the general engines accept this.
    within1(S, D) <- degree(S, D)[add: take(S, C)].
    degree(S, mathphys) <- within1(S, math), within1(S, phys).
  )";
  static constexpr const char* kFacts = R"(
    take(tony, cs250).
    take(tony, his101).
    take(mary, his101).
    take(mary, eng201).
    take(sue, m101).
    take(sue, m201).
    take(sue, p101).
    take(kim, m101).
    take(kim, p101).
    enrolled(bob).
  )";
  ProgramFixture fixture;
  std::string text = kRules;
  if (include_example3) text += kExample3Rules;
  StatusOr<RuleBase> rules = ParseRuleBase(text, fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  Status s = ParseFactsInto(kFacts, &fixture.db);
  HYPO_CHECK(s.ok()) << s;
  return fixture;
}

}  // namespace hypo
