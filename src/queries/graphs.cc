#include "queries/graphs.h"

#include <functional>
#include <string>

#include "base/logging.h"

namespace hypo {

Graph MakePathGraph(int n) {
  Graph g;
  g.num_vertices = n;
  for (int i = 0; i + 1 < n; ++i) g.edges.emplace_back(i, i + 1);
  return g;
}

Graph MakeCycleGraph(int n) {
  Graph g = MakePathGraph(n);
  if (n > 1) g.edges.emplace_back(n - 1, 0);
  return g;
}

Graph MakeCompleteGraph(int n) {
  Graph g;
  g.num_vertices = n;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) g.edges.emplace_back(i, j);
    }
  }
  return g;
}

Graph MakeDisconnectedCliques(int n) {
  Graph g;
  g.num_vertices = n;
  int half = n / 2;
  auto clique = [&g](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      for (int j = lo; j < hi; ++j) {
        if (i != j) g.edges.emplace_back(i, j);
      }
    }
  };
  clique(0, half);
  clique(half, n);
  return g;
}

Graph MakeRandomGraph(int n, double edge_probability, Random* rng) {
  Graph g;
  g.num_vertices = n;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng->Bernoulli(edge_probability)) {
        g.edges.emplace_back(i, j);
      }
    }
  }
  return g;
}

void GraphToDatabase(const Graph& graph, Database* db) {
  auto name = [](int v) { return "v" + std::to_string(v); };
  for (int v = 0; v < graph.num_vertices; ++v) {
    Status s = db->Insert("node", {name(v)});
    HYPO_CHECK(s.ok()) << s;
  }
  for (const auto& [from, to] : graph.edges) {
    Status s = db->Insert("edge", {name(from), name(to)});
    HYPO_CHECK(s.ok()) << s;
  }
}

namespace {

/// Shared backtracking core: find a Hamiltonian path; with `circuit`,
/// additionally require an edge from the last vertex back to the start.
bool HamiltonianSearch(const Graph& graph, bool circuit) {
  const int n = graph.num_vertices;
  HYPO_CHECK(n <= 30) << "bitmask baseline limited to 30 vertices";
  if (n == 0) return true;  // The empty tour covers the empty graph.
  std::vector<std::vector<int>> adj(n);
  std::vector<std::vector<bool>> has_edge(n, std::vector<bool>(n, false));
  for (const auto& [from, to] : graph.edges) {
    adj[from].push_back(to);
    has_edge[from][to] = true;
  }

  // Depth-first backtracking, mirroring the search the rulebase performs.
  std::function<bool(int, int, uint32_t)> extend =
      [&](int start, int at, uint32_t mask) -> bool {
    if (mask == (1u << n) - 1) {
      return !circuit || has_edge[at][start];
    }
    for (int next : adj[at]) {
      if (mask & (1u << next)) continue;
      if (extend(start, next, mask | (1u << next))) return true;
    }
    return false;
  };
  for (int start = 0; start < n; ++start) {
    if (extend(start, start, 1u << start)) return true;
    if (circuit) break;  // Circuits are rotation-invariant: one start.
  }
  return false;
}

}  // namespace

bool HamiltonianPathExists(const Graph& graph) {
  return HamiltonianSearch(graph, /*circuit=*/false);
}

bool HamiltonianCircuitExists(const Graph& graph) {
  return HamiltonianSearch(graph, /*circuit=*/true);
}

}  // namespace hypo
