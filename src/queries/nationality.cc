#include "queries/nationality.h"

#include "base/logging.h"
#include "parser/parser.h"

namespace hypo {

ProgramFixture MakeNationalityFixture() {
  static constexpr const char* kRules = R"(
    % Eligible today: born in the UK and alive.
    eligible(X) <- born_in_uk(X), alive(X).
    % The Act's hypothetical clause: eligible if your father would be
    % eligible were he still alive. Recursive: the father's eligibility
    % may itself rest on *his* father.
    eligible(X) <- father(F, X), eligible(F)[add: alive(F)].
  )";
  static constexpr const char* kFacts = R"(
    % george (born in UK, deceased) -> henry (deceased) -> brian (alive).
    born_in_uk(george).
    father(george, henry).
    father(henry, brian).
    alive(brian).
    % cora's line has no UK-born ancestor.
    father(dan, cora).
    alive(cora).
  )";
  ProgramFixture fixture;
  StatusOr<RuleBase> rules = ParseRuleBase(kRules, fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  Status s = ParseFactsInto(kFacts, &fixture.db);
  HYPO_CHECK(s.ok()) << s;
  return fixture;
}

}  // namespace hypo
