#ifndef HYPO_QUERIES_FIXTURE_H_
#define HYPO_QUERIES_FIXTURE_H_

#include <memory>

#include "ast/rulebase.h"
#include "ast/symbol_table.h"
#include "db/database.h"

namespace hypo {

/// A self-contained (rulebase, database) pair sharing one SymbolTable.
/// Every example workload in this library is packaged as a ProgramFixture.
struct ProgramFixture {
  std::shared_ptr<SymbolTable> symbols;
  RuleBase rules;
  Database db;

  ProgramFixture()
      : symbols(std::make_shared<SymbolTable>()),
        rules(symbols),
        db(symbols) {}

  ProgramFixture(ProgramFixture&&) = default;
  ProgramFixture& operator=(ProgramFixture&&) = default;
};

}  // namespace hypo

#endif  // HYPO_QUERIES_FIXTURE_H_
