#ifndef HYPO_QUERIES_CHAINS_H_
#define HYPO_QUERIES_CHAINS_H_

#include "queries/fixture.h"

namespace hypo {

/// Example 4: the add cascade
///
///   a1 <- a2[add: b1].   a2 <- a3[add: b2].   ...   an <- a<n+1>[add: bn].
///   a<n+1> <- d.
///
/// where `d` holds iff every b1..bn is present (implemented with the
/// Example 5/6 trick: missing <- el(X), ~b(X);  d <- ~missing(X), with
/// el(·) listing the names b1..bn as element constants and b(·) holding
/// the added markers). Consequently:
///
///   R, DB ⊢ a<i>  iff  b1, ..., b<i-1> are already database facts,
///
/// matching the paper's "R, DB ⊢ A_i iff R, DB + {B_i..B_n} ⊢ D".
/// `db_prefix` puts b1..b<db_prefix> into the database, so a1..a<prefix+1>
/// hold and the rest do not.
ProgramFixture MakeAddCascadeFixture(int n, int db_prefix);

/// Example 5: the linear-order loop
///
///   a <- first(X), ap(X)[add: b(X)].
///   ap(X) <- next(X, Y), ap(Y)[add: b(Y)].
///   ap(X) <- last(X), d.
///
/// over the chain first(x1), next(x1,x2), ..., last(xn), with `d` true iff
/// b(x1..xn) are all present (same ∄-trick). R, DB ⊢ a always holds: the
/// loop inserts b along the whole chain. Used by E2 to check the chain
/// semantics and by the benches as a linear-recursion microworkload.
ProgramFixture MakeOrderLoopFixture(int n);

}  // namespace hypo

#endif  // HYPO_QUERIES_CHAINS_H_
