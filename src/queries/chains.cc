#include "queries/chains.h"

#include <string>

#include "ast/rule_builder.h"
#include "base/logging.h"

namespace hypo {

namespace {

void AddRuleOrDie(RuleBase* rules, RuleBuilder&& builder) {
  StatusOr<Rule> rule = std::move(builder).Build();
  HYPO_CHECK(rule.ok()) << rule.status();
  rules->AddRule(std::move(rule).value());
}

/// Appends `missing <- el(X), ~b(X).` and `d <- ~missing(X).` so that `d`
/// holds iff b(e) is present for every el(e).
void AddAllPresentRules(SymbolTable* symbols, RuleBase* rules) {
  {
    RuleBuilder b(symbols);
    Term x = b.Var("X");
    b.Head(b.A("missing", {x}))
        .Positive(b.A("el", {x}))
        .Negated(b.A("b", {x}));
    AddRuleOrDie(rules, std::move(b));
  }
  {
    RuleBuilder b(symbols);
    Term x = b.Var("X");
    b.Head(b.A("d", {})).Negated(b.A("missing", {x}));
    AddRuleOrDie(rules, std::move(b));
  }
}

}  // namespace

ProgramFixture MakeAddCascadeFixture(int n, int db_prefix) {
  HYPO_CHECK(n >= 1 && db_prefix >= 0 && db_prefix <= n);
  ProgramFixture fixture;
  SymbolTable* symbols = fixture.symbols.get();
  auto a_name = [](int i) { return "a" + std::to_string(i); };
  auto b_name = [](int i) { return "marker" + std::to_string(i); };

  // a<i> <- a<i+1>[add: b<i>].
  for (int i = 1; i <= n; ++i) {
    RuleBuilder b(symbols);
    b.Head(b.A(a_name(i), {}))
        .Hypothetical(b.A(a_name(i + 1), {}),
                      {b.A("b", {b.C(b_name(i))})});
    AddRuleOrDie(&fixture.rules, std::move(b));
  }
  // a<n+1> <- d.
  {
    RuleBuilder b(symbols);
    b.Head(b.A(a_name(n + 1), {})).Positive(b.A("d", {}));
    AddRuleOrDie(&fixture.rules, std::move(b));
  }
  AddAllPresentRules(symbols, &fixture.rules);

  for (int i = 1; i <= n; ++i) {
    Status s = fixture.db.Insert("el", {b_name(i)});
    HYPO_CHECK(s.ok()) << s;
  }
  for (int i = 1; i <= db_prefix; ++i) {
    Status s = fixture.db.Insert("b", {b_name(i)});
    HYPO_CHECK(s.ok()) << s;
  }
  return fixture;
}

ProgramFixture MakeOrderLoopFixture(int n) {
  HYPO_CHECK(n >= 1);
  ProgramFixture fixture;
  SymbolTable* symbols = fixture.symbols.get();

  {  // a <- first(X), ap(X)[add: b(X)].
    RuleBuilder b(symbols);
    Term x = b.Var("X");
    b.Head(b.A("a", {}))
        .Positive(b.A("first", {x}))
        .Hypothetical(b.A("ap", {x}), {b.A("b", {x})});
    AddRuleOrDie(&fixture.rules, std::move(b));
  }
  {  // ap(X) <- next(X, Y), ap(Y)[add: b(Y)].
    RuleBuilder b(symbols);
    Term x = b.Var("X");
    Term y = b.Var("Y");
    b.Head(b.A("ap", {x}))
        .Positive(b.A("next", {x, y}))
        .Hypothetical(b.A("ap", {y}), {b.A("b", {y})});
    AddRuleOrDie(&fixture.rules, std::move(b));
  }
  {  // ap(X) <- last(X), d.
    RuleBuilder b(symbols);
    Term x = b.Var("X");
    b.Head(b.A("ap", {x}))
        .Positive(b.A("last", {x}))
        .Positive(b.A("d", {}));
    AddRuleOrDie(&fixture.rules, std::move(b));
  }
  AddAllPresentRules(symbols, &fixture.rules);

  auto el_name = [](int i) { return "x" + std::to_string(i); };
  Status s = fixture.db.Insert("first", {el_name(1)});
  HYPO_CHECK(s.ok()) << s;
  for (int i = 1; i < n; ++i) {
    s = fixture.db.Insert("next", {el_name(i), el_name(i + 1)});
    HYPO_CHECK(s.ok()) << s;
  }
  s = fixture.db.Insert("last", {el_name(n)});
  HYPO_CHECK(s.ok()) << s;
  for (int i = 1; i <= n; ++i) {
    s = fixture.db.Insert("el", {el_name(i)});
    HYPO_CHECK(s.ok()) << s;
  }
  return fixture;
}

}  // namespace hypo
