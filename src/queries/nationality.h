#ifndef HYPO_QUERIES_NATIONALITY_H_
#define HYPO_QUERIES_NATIONALITY_H_

#include "queries/fixture.h"

namespace hypo {

/// The §1 legal-domain motivation: Gabbay's British Nationality Act
/// fragment — "you are eligible for citizenship if your father would be
/// eligible if he were still alive" — a hypothetical rule over a family
/// tree, plus a recursive ancestral variant.
///
/// Predicates: born_in_uk/1, alive/1, father/2 (extensional);
/// eligible/1 (eligible today or via the hypothetical clause).
///
/// Database: george (born in UK, deceased) — ada's father; ada — brian's
/// mother... the tree is father-linked only: george -> ada -> brian.
/// Known answers: eligible(george) fails (not alive), eligible(ada)
/// holds via the hypothetical clause, eligible(brian) holds only through
/// the recursive clause (his father's eligibility is itself
/// hypothetical).
ProgramFixture MakeNationalityFixture();

}  // namespace hypo

#endif  // HYPO_QUERIES_NATIONALITY_H_
