#include "queries/ladder.h"

#include <string>

#include "ast/rule_builder.h"
#include "base/logging.h"
#include "parser/parser.h"

namespace hypo {

ProgramFixture MakeStrataLadderFixture(int k) {
  HYPO_CHECK(k >= 1);
  ProgramFixture fixture;
  SymbolTable* symbols = fixture.symbols.get();
  auto name = [](const char* stem, int i) {
    return std::string(stem) + std::to_string(i);
  };
  auto add = [&fixture](RuleBuilder&& b) {
    StatusOr<Rule> rule = std::move(b).Build();
    HYPO_CHECK(rule.ok()) << rule.status();
    fixture.rules.AddRule(std::move(rule).value());
  };

  for (int i = 1; i <= k; ++i) {
    {  // a<i> <- bb<i>, a<i>[add: cc<i>].
      RuleBuilder b(symbols);
      b.Head(b.A(name("a", i), {}))
          .Positive(b.A(name("bb", i), {}))
          .Hypothetical(b.A(name("a", i), {}), {b.A(name("cc", i), {})});
      add(std::move(b));
    }
    RuleBuilder b(symbols);
    b.Head(b.A(name("a", i), {})).Positive(b.A(name("dd", i), {}));
    if (i > 1) b.Negated(b.A(name("a", i - 1), {}));
    add(std::move(b));
  }
  for (int i = 1; i <= k; ++i) {
    Status s = fixture.db.Insert(name("bb", i), {});
    HYPO_CHECK(s.ok()) << s;
    s = fixture.db.Insert(name("dd", i), {});
    HYPO_CHECK(s.ok()) << s;
  }
  return fixture;
}

ProgramFixture MakeExample10Fixture() {
  static constexpr const char* kRules = R"(
    a2 <- a2[add: e2], a2[add: f2].
    a2 <- ~b2.
    b2 <- ~c2, b2.
    c2 <- ~d2, c2.
    d2 <- a1[add: g1].
    a1 <- a1[add: e1].
    a1 <- a1[add: f1].
    a1 <- ~b1.
  )";
  ProgramFixture fixture;
  StatusOr<RuleBase> rules = ParseRuleBase(kRules, fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  return fixture;
}

}  // namespace hypo
