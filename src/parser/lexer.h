#ifndef HYPO_PARSER_LEXER_H_
#define HYPO_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"

namespace hypo {

/// Token kinds of the surface syntax.
///
///   grad(S) <- take(S, his101), ~suspended(S), ok(S)[add: waiver(S)].
///
/// Identifiers starting with an upper-case letter or '_' are variables;
/// all other identifiers (and numerals) are constant / predicate symbols.
/// '%' starts a comment running to end of line.
enum class TokenKind {
  kIdentifier,  // lower-case identifier or numeral: constant or predicate.
  kVariable,    // upper-case or '_'-leading identifier.
  kArrow,       // "<-" or ":-"
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kComma,       // ,
  kPeriod,      // .
  kTilde,       // ~
  kColon,       // :
  kSlash,       // / (predicate/arity in directives)
  kEnd,         // end of input
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;    // 1-based.
  int column;  // 1-based.
};

/// Splits `input` into tokens. Fails with line/column info on a character
/// that belongs to no token.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

/// Human-readable token-kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace hypo

#endif  // HYPO_PARSER_LEXER_H_
