#include "parser/parser.h"

#include <unordered_map>
#include <utility>

#include "parser/lexer.h"

namespace hypo {
namespace {

/// Recursive-descent parser over a token stream. One instance parses one
/// source text; per-statement variable scopes are handled by the caller
/// passing a fresh VarScope for each rule or query.
class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable* symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  /// Variable scope: maps surface names to rule-local indices.
  struct VarScope {
    std::vector<std::string> names;
    std::unordered_map<std::string, VarIndex> index;

    Term Intern(const std::string& name) {
      auto it = index.find(name);
      if (it != index.end()) return Term::MakeVar(it->second);
      VarIndex vi = static_cast<VarIndex>(names.size());
      names.push_back(name);
      index.emplace(name, vi);
      return Term::MakeVar(vi);
    }
  };

  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status ErrorHere(const std::string& what) const {
    const Token& t = Peek();
    return Status::InvalidArgument(what + " at line " +
                                   std::to_string(t.line) + ", column " +
                                   std::to_string(t.column) +
                                   (t.text.empty() ? "" : " near '" + t.text +
                                                              "'"));
  }

  StatusOr<Token> Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return ErrorHere(std::string("expected ") + TokenKindName(kind) +
                       ", found " + TokenKindName(Peek().kind));
    }
    return tokens_[pos_++];
  }

  bool Consume(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  /// atom := identifier [ '(' term (',' term)* ')' ]
  StatusOr<Atom> ParseAtom(VarScope* scope) {
    HYPO_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdentifier));
    std::vector<Term> args;
    if (Consume(TokenKind::kLParen)) {
      do {
        const Token& t = Peek();
        if (t.kind == TokenKind::kVariable) {
          ++pos_;
          args.push_back(scope->Intern(t.text));
        } else if (t.kind == TokenKind::kIdentifier) {
          ++pos_;
          args.push_back(Term::MakeConst(symbols_->InternConst(t.text)));
        } else {
          return ErrorHere("expected a term (constant or variable)");
        }
      } while (Consume(TokenKind::kComma));
      HYPO_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    }
    HYPO_ASSIGN_OR_RETURN(
        PredicateId pred,
        symbols_->InternPredicate(name.text, static_cast<int>(args.size())));
    return Atom{pred, std::move(args)};
  }

  /// premise := '~' atom
  ///           | atom ( '[' ('add' | 'del') ':' atom (',' atom)* ']' )*
  ///
  /// Bracket groups may repeat and mix, e.g. `p(X)[add: q(X)][del: r(X)]`.
  StatusOr<Premise> ParsePremise(VarScope* scope) {
    if (Consume(TokenKind::kTilde)) {
      HYPO_ASSIGN_OR_RETURN(Atom atom, ParseAtom(scope));
      if (Peek().kind == TokenKind::kLBracket) {
        return ErrorHere(
            "negated hypothetical premise '~A[add: B]' is not allowed "
            "(§3.1); introduce a rule 'c <- A[add: B].' and use '~c'");
      }
      return Premise::Negated(std::move(atom));
    }
    HYPO_ASSIGN_OR_RETURN(Atom atom, ParseAtom(scope));
    if (Peek().kind != TokenKind::kLBracket) {
      return Premise::Positive(std::move(atom));
    }
    std::vector<Atom> additions;
    std::vector<Atom> deletions;
    while (Consume(TokenKind::kLBracket)) {
      HYPO_ASSIGN_OR_RETURN(Token kw, Expect(TokenKind::kIdentifier));
      if (kw.text != "add" && kw.text != "del") {
        return Status::InvalidArgument(
            "expected 'add' or 'del' after '[' at line " +
            std::to_string(kw.line));
      }
      HYPO_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
      std::vector<Atom>& target = kw.text == "add" ? additions : deletions;
      do {
        HYPO_ASSIGN_OR_RETURN(Atom listed, ParseAtom(scope));
        target.push_back(std::move(listed));
      } while (Consume(TokenKind::kComma));
      HYPO_RETURN_IF_ERROR(Expect(TokenKind::kRBracket).status());
    }
    return Premise::Hypothetical(std::move(atom), std::move(additions),
                                 std::move(deletions));
  }

  /// directive := arrow ('assumable' | 'retractable')
  ///              identifier '/' numeral (',' identifier '/' numeral)* '.'
  ///
  /// Restricted-predicate declarations (Sáenz-Pérez): a statement that
  /// *starts* with the arrow is a directive, e.g. `:- assumable take/2.`
  /// The caller has already seen (not consumed) the arrow.
  Status ParseDirectiveInto(RuleBase* rulebase) {
    HYPO_RETURN_IF_ERROR(Expect(TokenKind::kArrow).status());
    HYPO_ASSIGN_OR_RETURN(Token kw, Expect(TokenKind::kIdentifier));
    if (kw.text != "assumable" && kw.text != "retractable") {
      return Status::InvalidArgument(
          "unknown directive ':- " + kw.text + "' at line " +
          std::to_string(kw.line) +
          " (supported: 'assumable', 'retractable')");
    }
    const bool assumable = kw.text == "assumable";
    do {
      HYPO_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdentifier));
      HYPO_RETURN_IF_ERROR(Expect(TokenKind::kSlash).status());
      HYPO_ASSIGN_OR_RETURN(Token arity_tok,
                            Expect(TokenKind::kIdentifier));
      int arity = 0;
      for (char c : arity_tok.text) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument(
              "expected a numeral arity after '" + name.text +
              "/' at line " + std::to_string(arity_tok.line) + ", found '" +
              arity_tok.text + "'");
        }
        arity = arity * 10 + (c - '0');
      }
      HYPO_ASSIGN_OR_RETURN(PredicateId pred,
                            symbols_->InternPredicate(name.text, arity));
      if (assumable) {
        rulebase->DeclareAssumable(pred);
      } else {
        rulebase->DeclareRetractable(pred);
      }
    } while (Consume(TokenKind::kComma));
    return Expect(TokenKind::kPeriod).status();
  }

  /// rule := atom [ arrow premise (',' premise)* ] '.'
  StatusOr<Rule> ParseRule() {
    VarScope scope;
    Rule rule;
    HYPO_ASSIGN_OR_RETURN(rule.head, ParseAtom(&scope));
    if (Consume(TokenKind::kArrow)) {
      do {
        HYPO_ASSIGN_OR_RETURN(Premise p, ParsePremise(&scope));
        rule.premises.push_back(std::move(p));
      } while (Consume(TokenKind::kComma));
    }
    HYPO_RETURN_IF_ERROR(Expect(TokenKind::kPeriod).status());
    rule.var_names = std::move(scope.names);
    return rule;
  }

  StatusOr<Query> ParseWholeQuery() {
    VarScope scope;
    Query query;
    do {
      HYPO_ASSIGN_OR_RETURN(Premise p, ParsePremise(&scope));
      query.premises.push_back(std::move(p));
    } while (Consume(TokenKind::kComma));
    Consume(TokenKind::kPeriod);  // Optional trailing period.
    if (!AtEnd()) {
      return ErrorHere("trailing input after query");
    }
    query.var_names = std::move(scope.names);
    return query;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SymbolTable* symbols_;
};

}  // namespace

StatusOr<RuleBase> ParseRuleBase(std::string_view text,
                                 std::shared_ptr<SymbolTable> symbols) {
  HYPO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), symbols.get());
  RuleBase rulebase(std::move(symbols));
  while (!parser.AtEnd()) {
    if (parser.Peek().kind == TokenKind::kArrow) {
      HYPO_RETURN_IF_ERROR(parser.ParseDirectiveInto(&rulebase));
      continue;
    }
    HYPO_ASSIGN_OR_RETURN(Rule rule, parser.ParseRule());
    rulebase.AddRule(std::move(rule));
  }
  return rulebase;
}

Status ParseFactsInto(std::string_view text, Database* db) {
  HYPO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), db->mutable_symbols());
  while (!parser.AtEnd()) {
    HYPO_ASSIGN_OR_RETURN(Rule rule, parser.ParseRule());
    if (!rule.premises.empty() || !rule.head.IsGround()) {
      return Status::InvalidArgument(
          "database statements must be ground atoms without bodies");
    }
    Fact fact;
    fact.predicate = rule.head.predicate;
    for (const Term& t : rule.head.args) fact.args.push_back(t.const_id());
    db->Insert(fact);
  }
  return Status::OK();
}

StatusOr<Query> ParseQuery(std::string_view text, SymbolTable* symbols) {
  HYPO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), symbols);
  return parser.ParseWholeQuery();
}

StatusOr<Fact> ParseFact(std::string_view text, SymbolTable* symbols) {
  HYPO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), symbols);
  Parser::VarScope scope;
  HYPO_ASSIGN_OR_RETURN(Atom atom, parser.ParseAtom(&scope));
  parser.Consume(TokenKind::kPeriod);
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing input after fact");
  }
  if (!atom.IsGround()) {
    return Status::InvalidArgument("fact must be ground");
  }
  Fact fact;
  fact.predicate = atom.predicate;
  for (const Term& t : atom.args) fact.args.push_back(t.const_id());
  return fact;
}

StatusOr<ParsedProgram> ParseProgram(std::string_view text,
                                     std::shared_ptr<SymbolTable> symbols) {
  HYPO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), symbols.get());
  ParsedProgram program{RuleBase(symbols), Database(symbols)};
  while (!parser.AtEnd()) {
    if (parser.Peek().kind == TokenKind::kArrow) {
      HYPO_RETURN_IF_ERROR(parser.ParseDirectiveInto(&program.rules));
      continue;
    }
    HYPO_ASSIGN_OR_RETURN(Rule rule, parser.ParseRule());
    if (rule.premises.empty() && rule.head.IsGround()) {
      Fact fact;
      fact.predicate = rule.head.predicate;
      for (const Term& t : rule.head.args) fact.args.push_back(t.const_id());
      program.facts.Insert(fact);
    } else {
      program.rules.AddRule(std::move(rule));
    }
  }
  return program;
}

}  // namespace hypo
