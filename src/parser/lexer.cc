#include "parser/lexer.h"

#include <cctype>

namespace hypo {

namespace {

bool IsIdentStart(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsVariableStart(char c) {
  return (c >= 'A' && c <= 'Z') || c == '_';
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kArrow: return "'<-'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEnd: return "end of input";
  }
  return "unknown";
}

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (input[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += n;
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '%') {  // Comment to end of line.
      size_t n = 0;
      while (i + n < input.size() && input[i + n] != '\n') ++n;
      advance(n);
      continue;
    }
    int tok_line = line;
    int tok_col = column;
    auto emit = [&](TokenKind kind, size_t len) {
      tokens.push_back(
          Token{kind, std::string(input.substr(i, len)), tok_line, tok_col});
      advance(len);
    };
    if ((c == '<' || c == ':') && i + 1 < input.size() &&
        input[i + 1] == '-') {
      emit(TokenKind::kArrow, 2);
      continue;
    }
    switch (c) {
      case '(': emit(TokenKind::kLParen, 1); continue;
      case ')': emit(TokenKind::kRParen, 1); continue;
      case '[': emit(TokenKind::kLBracket, 1); continue;
      case ']': emit(TokenKind::kRBracket, 1); continue;
      case ',': emit(TokenKind::kComma, 1); continue;
      case '.': emit(TokenKind::kPeriod, 1); continue;
      case '~': emit(TokenKind::kTilde, 1); continue;
      case ':': emit(TokenKind::kColon, 1); continue;
      case '/': emit(TokenKind::kSlash, 1); continue;
      default: break;
    }
    if (c == '\'') {  // Quoted constant: 'any text until quote'.
      size_t n = 1;
      while (i + n < input.size() && input[i + n] != '\'') ++n;
      if (i + n >= input.size()) {
        return Status::InvalidArgument(
            "unterminated quoted constant at line " + std::to_string(line) +
            ", column " + std::to_string(column));
      }
      tokens.push_back(Token{TokenKind::kIdentifier,
                             std::string(input.substr(i + 1, n - 1)),
                             tok_line, tok_col});
      advance(n + 1);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t n = 1;
      while (i + n < input.size() && IsIdentChar(input[i + n])) ++n;
      TokenKind kind = IsVariableStart(c) ? TokenKind::kVariable
                                          : TokenKind::kIdentifier;
      emit(kind, n);
      continue;
    }
    return Status::InvalidArgument(
        std::string("unexpected character '") + c + "' at line " +
        std::to_string(line) + ", column " + std::to_string(column));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", line, column});
  return tokens;
}

}  // namespace hypo
