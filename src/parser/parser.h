#ifndef HYPO_PARSER_PARSER_H_
#define HYPO_PARSER_PARSER_H_

#include <memory>
#include <string_view>

#include "ast/query.h"
#include "ast/rulebase.h"
#include "ast/symbol_table.h"
#include "base/statusor.h"
#include "db/database.h"

namespace hypo {

/// Parses a rulebase in the surface syntax. Each statement is
///
///   head <- premise, premise, ... .      (rule)
///   head.                                (bodyless rule)
///
/// where a premise is `atom`, `~atom`, or `atom[add: atom, ...]`.
/// Variables start upper-case or with '_'; everything else is a constant
/// or predicate symbol; `%` comments to end of line. `~atom[add: ...]` is
/// rejected with the paper's suggested rewriting.
///
/// A statement that starts with the arrow is a restricted-predicate
/// directive: `:- assumable foo/2.` / `:- retractable bar/1.` (see
/// RuleBase::DeclareAssumable).
StatusOr<RuleBase> ParseRuleBase(std::string_view text,
                                 std::shared_ptr<SymbolTable> symbols);

/// Parses statements of ground atoms ("edge(a, b)." lines) into `db`.
Status ParseFactsInto(std::string_view text, Database* db);

/// Parses a single query: one or more premises separated by commas, with
/// an optional trailing period. Free variables are existential.
StatusOr<Query> ParseQuery(std::string_view text, SymbolTable* symbols);

/// Parses one ground atom, e.g. "grad(tony)".
StatusOr<Fact> ParseFact(std::string_view text, SymbolTable* symbols);

/// Result of ParseProgram: rules and extensional facts from one source.
struct ParsedProgram {
  RuleBase rules;
  Database facts;
};

/// Parses a mixed source file: statements whose head is ground and that
/// have no body become database facts; everything else becomes a rule.
/// (The paper keeps R and DB separate; this is a convenience for examples.)
StatusOr<ParsedProgram> ParseProgram(std::string_view text,
                                     std::shared_ptr<SymbolTable> symbols);

}  // namespace hypo

#endif  // HYPO_PARSER_PARSER_H_
