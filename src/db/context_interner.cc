#include "db/context_interner.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"

namespace hypo {

ContextInterner::ContextInterner() {
  ContextId id = InternElements({});
  HYPO_CHECK(id == kEmptyContext);
}

ContextId ContextInterner::InternElements(std::vector<int64_t> elems) {
  auto [it, inserted] =
      index_.emplace(std::move(elems),
                     static_cast<ContextId>(elements_by_id_.size()));
  if (inserted) {
    elements_by_id_.push_back(&it->first);
    approx_bytes_.fetch_add(
        static_cast<int64_t>(sizeof(std::vector<int64_t>) +
                             it->first.capacity() * sizeof(int64_t) +
                             sizeof(ContextId) + 3 * sizeof(void*)),
        std::memory_order_relaxed);
  }
  return it->second;
}

ContextId ContextInterner::InternAddedSet(const std::vector<FactId>& added) {
  std::vector<int64_t> elems;
  elems.reserve(added.size());
  for (FactId id : added) elems.push_back(AddedElement(id));
  HYPO_DCHECK(std::is_sorted(elems.begin(), elems.end()))
      << "InternAddedSet requires a sorted added-fact set";
  return InternElements(std::move(elems));
}

ContextId ContextInterner::Apply(ContextId from, int64_t elem, bool insert) {
  ++transitions_;
  EdgeKey key{from, elem, insert};
  auto it = edges_.find(key);
  if (it != edges_.end()) {
    ++transition_hits_;
    return it->second;
  }
  const std::vector<int64_t>& cur = Elements(from);
  std::vector<int64_t> next;
  next.reserve(cur.size() + (insert ? 1 : 0));
  auto pos = std::lower_bound(cur.begin(), cur.end(), elem);
  if (insert) {
    HYPO_DCHECK(pos == cur.end() || *pos != elem)
        << "inserting an element already in the context";
    next.insert(next.end(), cur.begin(), pos);
    next.push_back(elem);
    next.insert(next.end(), pos, cur.end());
  } else {
    HYPO_DCHECK(pos != cur.end() && *pos == elem)
        << "erasing an element not in the context";
    next.insert(next.end(), cur.begin(), pos);
    next.insert(next.end(), pos + 1, cur.end());
  }
  ContextId to = InternElements(std::move(next));
  constexpr int64_t kEdgeBytes =
      sizeof(EdgeKey) + sizeof(ContextId) + 2 * sizeof(void*);
  int64_t edge_bytes = 0;
  if (edges_.emplace(key, to).second) edge_bytes += kEdgeBytes;
  // The inverse edge is free knowledge: record it so the pop side of a
  // push/pop pair never rebuilds a set either.
  if (edges_.emplace(EdgeKey{to, elem, !insert}, from).second) {
    edge_bytes += kEdgeBytes;
  }
  if (edge_bytes != 0) {
    approx_bytes_.fetch_add(edge_bytes, std::memory_order_relaxed);
  }
  return to;
}

}  // namespace hypo
