#include "db/database.h"

#include <algorithm>
#include <functional>

#include "base/failpoint.h"
#include "base/logging.h"

namespace hypo {

std::string FactToString(const Fact& fact, const SymbolTable& symbols) {
  std::string out = symbols.PredicateName(fact.predicate);
  if (fact.args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < fact.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.ConstName(fact.args[i]);
  }
  out += ")";
  return out;
}

Database::Database(Database&& other) noexcept
    : symbols_(std::move(other.symbols_)),
      relations_(std::move(other.relations_)),
      constants_(std::move(other.constants_)),
      constant_refs_(std::move(other.constant_refs_)),
      size_(other.size_),
      approx_bytes_(other.approx_bytes_),
      sealed_(other.sealed_),
      index_builds_(other.index_builds_.load(std::memory_order_relaxed)),
      index_probes_(other.index_probes_.load(std::memory_order_relaxed)) {}

Database& Database::operator=(Database&& other) noexcept {
  symbols_ = std::move(other.symbols_);
  relations_ = std::move(other.relations_);
  constants_ = std::move(other.constants_);
  constant_refs_ = std::move(other.constant_refs_);
  size_ = other.size_;
  approx_bytes_ = other.approx_bytes_;
  sealed_ = other.sealed_;
  index_builds_.store(other.index_builds_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  index_probes_.store(other.index_probes_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return *this;
}

Database Database::Clone() const {
  Database copy(symbols_);
  copy.relations_ = relations_;
  copy.constants_ = constants_;
  copy.constant_refs_ = constant_refs_;
  copy.size_ = size_;
  copy.approx_bytes_ = approx_bytes_;
  return copy;
}

bool Database::Insert(const Fact& fact) {
  HYPO_DCHECK(fact.predicate >= 0) << "fact with invalid predicate";
  HYPO_DCHECK(static_cast<int>(fact.args.size()) ==
              symbols_->PredicateArity(fact.predicate))
      << "arity mismatch inserting " << symbols_->PredicateName(fact.predicate);
  Relation& rel = relations_[fact.predicate];
  auto [it, inserted] = rel.index.insert(fact.args);
  (void)it;
  if (!inserted) return false;
  // A real mutation on a sealed database starts a new epoch: drop the
  // seal so lazy index extension resumes. Leaving the seal up would serve
  // probes from indexes whose built_upto no longer covers the relation —
  // silently incomplete candidate sets.
  sealed_ = false;
  rel.tuples.push_back(fact.args);
  AddConstantRefs(fact.args);
  ++size_;
  approx_bytes_ += ApproxFactBytes(fact.args.size());
  return true;
}

bool Database::Retract(const Fact& fact) {
  HYPO_DCHECK(fact.predicate >= 0) << "fact with invalid predicate";
  auto it = relations_.find(fact.predicate);
  if (it == relations_.end()) return false;
  Relation& rel = it->second;
  if (rel.index.erase(fact.args) == 0) return false;
  sealed_ = false;
  auto pos = std::find(rel.tuples.begin(), rel.tuples.end(), fact.args);
  HYPO_DCHECK(pos != rel.tuples.end()) << "index/tuple vector out of sync";
  rel.tuples.erase(pos);
  DropRelationIndexes(rel);
  DropConstantRefs(fact.args);
  --size_;
  approx_bytes_ -= ApproxFactBytes(fact.args.size());
  if (rel.tuples.empty()) relations_.erase(it);
  return true;
}

int64_t Database::ClearRelation(PredicateId pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return 0;
  Relation& rel = it->second;
  sealed_ = false;
  const int64_t removed = static_cast<int64_t>(rel.tuples.size());
  for (const Tuple& t : rel.tuples) {
    DropConstantRefs(t);
    approx_bytes_ -= ApproxFactBytes(t.size());
  }
  DropRelationIndexes(rel);
  size_ -= removed;
  relations_.erase(it);
  return removed;
}

void Database::AddConstantRefs(const Tuple& args) {
  for (ConstId c : args) {
    if (++constant_refs_[c] == 1) constants_.insert(c);
  }
}

void Database::DropConstantRefs(const Tuple& args) {
  for (ConstId c : args) {
    auto it = constant_refs_.find(c);
    HYPO_DCHECK(it != constant_refs_.end()) << "unbalanced constant refcount";
    if (it != constant_refs_.end() && --it->second == 0) {
      constant_refs_.erase(it);
      constants_.erase(c);
    }
  }
}

void Database::DropRelationIndexes(const Relation& rel) {
  for (const auto& [mask, ci] : rel.column_indexes) {
    (void)mask;
    approx_bytes_ -=
        kApproxIndexEntryBytes * static_cast<int64_t>(ci.built_upto);
  }
  rel.column_indexes.clear();
}

const std::vector<int>* Database::TuplesWithFirstArg(PredicateId pred,
                                                     ConstId first) const {
  return ProbeIndex(pred, /*mask=*/1u, {first});
}

const std::vector<int>* Database::ScanAllMarker() {
  static const std::vector<int>* const kMarker = new std::vector<int>();
  return kMarker;
}

Database::ColumnIndex& Database::ExtendIndex(const Relation& rel,
                                             ColumnMask mask) const {
  auto [ci_it, created] = rel.column_indexes.try_emplace(mask);
  ColumnIndex& ci = ci_it->second;
  if (created) index_builds_.fetch_add(1, std::memory_order_relaxed);
  if (ci.built_upto < rel.tuples.size()) {
    // Catch up on tuples appended since the last probe. Insertions never
    // reorder or remove tuples, so extending the buckets is sound.
    approx_bytes_ += kApproxIndexEntryBytes *
                     static_cast<int64_t>(rel.tuples.size() - ci.built_upto);
    Tuple probe;
    for (size_t pos = ci.built_upto; pos < rel.tuples.size(); ++pos) {
      const Tuple& t = rel.tuples[pos];
      probe.clear();
      int limit = std::min<int>(static_cast<int>(t.size()),
                                kMaxIndexedColumns);
      for (int c = 0; c < limit; ++c) {
        if (mask & (1u << c)) probe.push_back(t[c]);
      }
      ci.buckets[probe].push_back(static_cast<int>(pos));
    }
    ci.built_upto = rel.tuples.size();
  }
  return ci;
}

const std::vector<int>* Database::ProbeIndex(PredicateId pred,
                                             ColumnMask mask,
                                             const Tuple& key) const {
  HYPO_DCHECK(mask != 0) << "probe with no bound columns is a full scan";
  auto it = relations_.find(pred);
  if (it == relations_.end()) return nullptr;
  const Relation& rel = it->second;
  index_probes_.fetch_add(1, std::memory_order_relaxed);
  if (sealed_) {
    // Strictly read-only: serve only indexes that were complete at seal
    // time; anything else degrades to a caller-side full scan rather
    // than mutating shared index state under concurrent readers.
    auto ci_it = rel.column_indexes.find(mask);
    if (ci_it == rel.column_indexes.end() ||
        ci_it->second.built_upto < rel.tuples.size()) {
      return ScanAllMarker();
    }
    auto bucket = ci_it->second.buckets.find(key);
    return bucket == ci_it->second.buckets.end() ? nullptr : &bucket->second;
  }
  ColumnIndex& ci = ExtendIndex(rel, mask);
  auto bucket = ci.buckets.find(key);
  return bucket == ci.buckets.end() ? nullptr : &bucket->second;
}

void Database::PrepareIndex(PredicateId pred, ColumnMask mask) const {
  HYPO_DCHECK(mask != 0) << "prepare with no bound columns";
  HYPO_DCHECK(!sealed_) << "prepare indexes before sealing";
  auto it = relations_.find(pred);
  if (it == relations_.end()) return;
  ExtendIndex(it->second, mask);
}

void Database::SealIndexes() const {
  for (const auto& [pred, rel] : relations_) {
    (void)pred;
    for (const auto& [mask, ci] : rel.column_indexes) {
      (void)ci;
      ExtendIndex(rel, mask);
    }
  }
  sealed_ = true;
}

Status Database::Insert(std::string_view predicate,
                        const std::vector<std::string_view>& args) {
  HYPO_FAILPOINT("db.insert");
  if (sealed_) {
    return Status::FailedPrecondition(
        "insert into a sealed database; call UnsealIndexes() to start a "
        "new epoch first");
  }
  StatusOr<PredicateId> pred =
      symbols_->InternPredicate(predicate, static_cast<int>(args.size()));
  HYPO_RETURN_IF_ERROR(pred.status());
  Fact fact;
  fact.predicate = *pred;
  fact.args.reserve(args.size());
  for (std::string_view a : args) fact.args.push_back(symbols_->InternConst(a));
  Insert(fact);
  return Status::OK();
}

bool Database::Contains(const Fact& fact) const {
  return Contains(fact.predicate, fact.args);
}

bool Database::Contains(PredicateId pred, const Tuple& args) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return false;
  return it->second.index.count(args) > 0;
}

const std::vector<Tuple>& Database::TuplesFor(PredicateId pred) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  auto it = relations_.find(pred);
  return it == relations_.end() ? *kEmpty : it->second.tuples;
}

void Database::ForEach(const std::function<void(const Fact&)>& fn) const {
  for (const auto& [pred, rel] : relations_) {
    for (const Tuple& t : rel.tuples) {
      fn(Fact{pred, t});
    }
  }
}

std::vector<PredicateId> Database::NonEmptyPredicates() const {
  std::vector<PredicateId> out;
  for (const auto& [pred, rel] : relations_) {
    if (!rel.tuples.empty()) out.push_back(pred);
  }
  return out;
}

void Database::Clear() {
  relations_.clear();
  constants_.clear();
  constant_refs_.clear();
  size_ = 0;
  approx_bytes_ = 0;
  // A cleared database is a fresh epoch: without this reset a repopulated
  // database would keep the read-only probe path forever and never build
  // indexes for its new contents (every probe degrades to a full scan).
  sealed_ = false;
}

}  // namespace hypo
