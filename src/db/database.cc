#include "db/database.h"

#include <algorithm>
#include <functional>

#include "base/logging.h"

namespace hypo {

std::string FactToString(const Fact& fact, const SymbolTable& symbols) {
  std::string out = symbols.PredicateName(fact.predicate);
  if (fact.args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < fact.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.ConstName(fact.args[i]);
  }
  out += ")";
  return out;
}

Database Database::Clone() const {
  Database copy(symbols_);
  copy.relations_ = relations_;
  copy.constants_ = constants_;
  copy.size_ = size_;
  return copy;
}

bool Database::Insert(const Fact& fact) {
  HYPO_DCHECK(fact.predicate >= 0) << "fact with invalid predicate";
  HYPO_DCHECK(static_cast<int>(fact.args.size()) ==
              symbols_->PredicateArity(fact.predicate))
      << "arity mismatch inserting " << symbols_->PredicateName(fact.predicate);
  Relation& rel = relations_[fact.predicate];
  auto [it, inserted] = rel.index.insert(fact.args);
  (void)it;
  if (!inserted) return false;
  rel.tuples.push_back(fact.args);
  for (ConstId c : fact.args) constants_.insert(c);
  ++size_;
  return true;
}

const std::vector<int>* Database::TuplesWithFirstArg(PredicateId pred,
                                                     ConstId first) const {
  return ProbeIndex(pred, /*mask=*/1u, {first});
}

const std::vector<int>* Database::ProbeIndex(PredicateId pred,
                                             ColumnMask mask,
                                             const Tuple& key) const {
  HYPO_DCHECK(mask != 0) << "probe with no bound columns is a full scan";
  auto it = relations_.find(pred);
  if (it == relations_.end()) return nullptr;
  const Relation& rel = it->second;
  ++index_probes_;
  auto [ci_it, created] = rel.column_indexes.try_emplace(mask);
  ColumnIndex& ci = ci_it->second;
  if (created) ++index_builds_;
  if (ci.built_upto < rel.tuples.size()) {
    // Catch up on tuples appended since the last probe. Insertions never
    // reorder or remove tuples, so extending the buckets is sound.
    Tuple probe;
    for (size_t pos = ci.built_upto; pos < rel.tuples.size(); ++pos) {
      const Tuple& t = rel.tuples[pos];
      probe.clear();
      int limit = std::min<int>(static_cast<int>(t.size()),
                                kMaxIndexedColumns);
      for (int c = 0; c < limit; ++c) {
        if (mask & (1u << c)) probe.push_back(t[c]);
      }
      ci.buckets[probe].push_back(static_cast<int>(pos));
    }
    ci.built_upto = rel.tuples.size();
  }
  auto bucket = ci.buckets.find(key);
  return bucket == ci.buckets.end() ? nullptr : &bucket->second;
}

Status Database::Insert(std::string_view predicate,
                        const std::vector<std::string_view>& args) {
  StatusOr<PredicateId> pred =
      symbols_->InternPredicate(predicate, static_cast<int>(args.size()));
  HYPO_RETURN_IF_ERROR(pred.status());
  Fact fact;
  fact.predicate = *pred;
  fact.args.reserve(args.size());
  for (std::string_view a : args) fact.args.push_back(symbols_->InternConst(a));
  Insert(fact);
  return Status::OK();
}

bool Database::Contains(const Fact& fact) const {
  return Contains(fact.predicate, fact.args);
}

bool Database::Contains(PredicateId pred, const Tuple& args) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return false;
  return it->second.index.count(args) > 0;
}

const std::vector<Tuple>& Database::TuplesFor(PredicateId pred) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  auto it = relations_.find(pred);
  return it == relations_.end() ? *kEmpty : it->second.tuples;
}

void Database::ForEach(const std::function<void(const Fact&)>& fn) const {
  for (const auto& [pred, rel] : relations_) {
    for (const Tuple& t : rel.tuples) {
      fn(Fact{pred, t});
    }
  }
}

std::vector<PredicateId> Database::NonEmptyPredicates() const {
  std::vector<PredicateId> out;
  for (const auto& [pred, rel] : relations_) {
    if (!rel.tuples.empty()) out.push_back(pred);
  }
  return out;
}

void Database::Clear() {
  relations_.clear();
  constants_.clear();
  size_ = 0;
}

}  // namespace hypo
