#include "db/database.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <numeric>

#include "base/failpoint.h"
#include "base/io_util.h"
#include "base/logging.h"

namespace hypo {

std::string FactToString(const Fact& fact, const SymbolTable& symbols) {
  std::string out = symbols.PredicateName(fact.predicate);
  if (fact.args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < fact.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.ConstName(fact.args[i]);
  }
  out += ")";
  return out;
}

namespace {

std::atomic<int>& DefaultBackendSlot() {
  // -1 = uninitialized; else a StorageBackend value. Initialized from the
  // environment on first use so bench/fuzz harnesses can flip the whole
  // process (every fixture- and parser-created database) per run.
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace

StorageBackend Database::DefaultBackend() {
  std::atomic<int>& slot = DefaultBackendSlot();
  int v = slot.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("HYPO_STORAGE");
    StorageBackend backend =
        (env != nullptr && std::strcmp(env, "hash") == 0)
            ? StorageBackend::kReferenceHash
            : StorageBackend::kColumnar;
    v = static_cast<int>(backend);
    slot.store(v, std::memory_order_relaxed);
  }
  return static_cast<StorageBackend>(v);
}

Status Database::ValidateStorageEnv() {
  const char* env = std::getenv("HYPO_STORAGE");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "hash") == 0 ||
      std::strcmp(env, "columnar") == 0) {
    return Status::OK();
  }
  return Status::InvalidArgument(
      std::string("unknown HYPO_STORAGE value \"") + env +
      "\" (expected \"columnar\" or \"hash\")");
}

void Database::SetDefaultBackend(StorageBackend backend) {
  DefaultBackendSlot().store(static_cast<int>(backend),
                             std::memory_order_relaxed);
}

Database::Database(Database&& other) noexcept
    : symbols_(std::move(other.symbols_)),
      backend_(other.backend_),
      relations_(std::move(other.relations_)),
      constants_(std::move(other.constants_)),
      constant_refs_(std::move(other.constant_refs_)),
      size_(other.size_),
      approx_bytes_(other.approx_bytes_),
      sealed_(other.sealed_),
      sorted_on_seal_(other.sorted_on_seal_),
      index_builds_(other.index_builds_.load(std::memory_order_relaxed)),
      index_probes_(other.index_probes_.load(std::memory_order_relaxed)),
      sorted_probes_(other.sorted_probes_.load(std::memory_order_relaxed)),
      merge_join_rows_(
          other.merge_join_rows_.load(std::memory_order_relaxed)),
      index_sort_micros_(
          other.index_sort_micros_.load(std::memory_order_relaxed)) {}

Database& Database::operator=(Database&& other) noexcept {
  symbols_ = std::move(other.symbols_);
  backend_ = other.backend_;
  relations_ = std::move(other.relations_);
  constants_ = std::move(other.constants_);
  constant_refs_ = std::move(other.constant_refs_);
  size_ = other.size_;
  approx_bytes_ = other.approx_bytes_;
  sealed_ = other.sealed_;
  sorted_on_seal_ = other.sorted_on_seal_;
  index_builds_.store(other.index_builds_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  index_probes_.store(other.index_probes_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  sorted_probes_.store(other.sorted_probes_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  merge_join_rows_.store(
      other.merge_join_rows_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  index_sort_micros_.store(
      other.index_sort_micros_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

Database Database::Clone() const {
  Database copy(symbols_, backend_);
  copy.relations_ = relations_;
  copy.constants_ = constants_;
  copy.constant_refs_ = constant_refs_;
  copy.size_ = size_;
  copy.approx_bytes_ = approx_bytes_;
  copy.sorted_on_seal_ = sorted_on_seal_;
  return copy;
}

bool Database::Insert(const Fact& fact) {
  HYPO_DCHECK(fact.predicate >= 0) << "fact with invalid predicate";
  HYPO_DCHECK(static_cast<int>(fact.args.size()) ==
              symbols_->PredicateArity(fact.predicate))
      << "arity mismatch inserting " << symbols_->PredicateName(fact.predicate);
  auto [it, created] = relations_.try_emplace(
      fact.predicate, static_cast<int>(fact.args.size()));
  Relation& rel = it->second;
  if (backend_ == StorageBackend::kColumnar) {
    const int64_t arena_before = rel.store.ArenaBytes();
    if (!rel.store.Insert(fact.args)) return false;
    approx_bytes_ += rel.store.ArenaBytes() - arena_before;
  } else {
    auto [dit, inserted] = rel.dedup.insert(fact.args);
    (void)dit;
    if (!inserted) return false;
    rel.tuples.push_back(fact.args);
    approx_bytes_ += ApproxFactBytes(fact.args.size());
  }
  // A real mutation on a sealed database starts a new epoch: drop the
  // seal so lazy index extension resumes. Leaving the seal up would serve
  // probes from indexes whose built_upto no longer covers the relation —
  // silently incomplete candidate sets.
  sealed_ = false;
  ++rel.version;
  AddConstantRefs(fact.args);
  ++size_;
  return true;
}

bool Database::Retract(const Fact& fact) {
  HYPO_DCHECK(fact.predicate >= 0) << "fact with invalid predicate";
  auto it = relations_.find(fact.predicate);
  if (it == relations_.end()) return false;
  Relation& rel = it->second;
  if (backend_ == StorageBackend::kColumnar) {
    const int64_t arena_before = rel.store.ArenaBytes();
    if (!rel.store.Erase(fact.args)) return false;
    approx_bytes_ += rel.store.ArenaBytes() - arena_before;
  } else {
    if (rel.dedup.erase(fact.args) == 0) return false;
    auto pos = std::find(rel.tuples.begin(), rel.tuples.end(), fact.args);
    HYPO_DCHECK(pos != rel.tuples.end()) << "dedup/tuple vector out of sync";
    rel.tuples.erase(pos);
    approx_bytes_ -= ApproxFactBytes(fact.args.size());
  }
  sealed_ = false;
  ++rel.version;
  DropRelationIndexes(rel);
  DropConstantRefs(fact.args);
  --size_;
  if (RelationSize(rel) == 0) {
    approx_bytes_ -= rel.store.ArenaBytes();
    relations_.erase(it);
    BumpCursorEpoch();
  }
  return true;
}

int64_t Database::ClearRelation(PredicateId pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return 0;
  Relation& rel = it->second;
  sealed_ = false;
  const int64_t removed = static_cast<int64_t>(RelationSize(rel));
  if (backend_ == StorageBackend::kColumnar) {
    const RowId n = rel.store.size();
    for (RowId row = 0; row < n; ++row) {
      DropConstantRefs(RowRef(&rel.store, row).ToTuple());
    }
    approx_bytes_ -= rel.store.ArenaBytes();
  } else {
    for (const Tuple& t : rel.tuples) {
      DropConstantRefs(t);
      approx_bytes_ -= ApproxFactBytes(t.size());
    }
  }
  DropRelationIndexes(rel);
  size_ -= removed;
  relations_.erase(it);
  BumpCursorEpoch();
  return removed;
}

void Database::AddConstantRefs(const Tuple& args) {
  for (ConstId c : args) {
    if (++constant_refs_[c] == 1) constants_.insert(c);
  }
}

void Database::DropConstantRefs(const Tuple& args) {
  for (ConstId c : args) {
    auto it = constant_refs_.find(c);
    HYPO_DCHECK(it != constant_refs_.end()) << "unbalanced constant refcount";
    if (it != constant_refs_.end() && --it->second == 0) {
      constant_refs_.erase(it);
      constants_.erase(c);
    }
  }
}

void Database::DropRelationIndexes(const Relation& rel) {
  for (const auto& [mask, ci] : rel.column_indexes) {
    (void)mask;
    approx_bytes_ -= IndexBytes(ci);
  }
  rel.column_indexes.clear();
  BumpCursorEpoch();
}

Database::ColumnIndex& Database::ExtendIndex(const Relation& rel,
                                             ColumnMask mask) const {
  auto [ci_it, created] = rel.column_indexes.try_emplace(mask);
  ColumnIndex& ci = ci_it->second;
  if (created) index_builds_.fetch_add(1, std::memory_order_relaxed);
  const size_t rel_size = RelationSize(rel);
  if (ci.built_upto < rel_size) {
    // Catch up on tuples appended since the last probe. Insertions never
    // reorder or remove tuples, so extending the buckets is sound.
    approx_bytes_ += kApproxIndexEntryBytes *
                     static_cast<int64_t>(rel_size - ci.built_upto);
    const bool columnar = backend_ == StorageBackend::kColumnar;
    const size_t arity =
        columnar ? static_cast<size_t>(rel.store.arity())
                 : (rel.tuples.empty() ? 0 : rel.tuples[0].size());
    const size_t limit = std::min<size_t>(
        arity, static_cast<size_t>(kMaxIndexedColumns));
    Tuple probe;
    for (size_t pos = ci.built_upto; pos < rel_size; ++pos) {
      probe.clear();
      for (size_t c = 0; c < limit; ++c) {
        if ((mask & (1u << c)) == 0) continue;
        probe.push_back(columnar
                            ? rel.store.At(static_cast<RowId>(pos), c)
                            : rel.tuples[pos][c]);
      }
      ci.buckets[probe].push_back(static_cast<RowId>(pos));
    }
    ci.built_upto = rel_size;
  }
  return ci;
}

void Database::SortIndex(const Relation& rel, ColumnMask mask,
                         ColumnIndex& ci) const {
  if (ci.sorted_version == rel.version) return;  // O(1) reseal.
  const auto start = std::chrono::steady_clock::now();
  // The sorted permutation supersedes this mask's hash buckets: release
  // them (and their byte charge) rather than keep two indexes current.
  approx_bytes_ -= IndexBytes(ci);
  ci.buckets.clear();
  ci.built_upto = 0;
  const ColumnStore& store = rel.store;
  std::vector<int> cols;
  const size_t limit = std::min<size_t>(
      static_cast<size_t>(store.arity()),
      static_cast<size_t>(kMaxIndexedColumns));
  for (size_t c = 0; c < limit; ++c) {
    if (mask & (1u << c)) cols.push_back(static_cast<int>(c));
  }
  ci.perm.resize(static_cast<size_t>(store.size()));
  std::iota(ci.perm.begin(), ci.perm.end(), 0);
  // Order by the masked columns, then by row id: equal-key runs ascend in
  // insertion order, so range iteration visits exactly the rows a hash
  // bucket would, in the same order — bit-identical results across
  // access paths.
  std::sort(ci.perm.begin(), ci.perm.end(), [&](RowId a, RowId b) {
    for (int c : cols) {
      const ConstId va = store.At(a, c);
      const ConstId vb = store.At(b, c);
      if (va != vb) return va < vb;
    }
    return a < b;
  });
  // Materialize the sorted key values as one flat row-major array so
  // SortedLookup's binary search never chases perm -> column pointers.
  ci.key_width = static_cast<int>(cols.size());
  ci.keys.clear();
  ci.keys.reserve(ci.perm.size() * cols.size());
  for (RowId row : ci.perm) {
    for (int c : cols) ci.keys.push_back(store.At(row, c));
  }
  // Dense-domain CSR offsets for single-column indexes: interned
  // ConstIds cluster near zero, so the key domain is usually within a
  // small factor of the row count and point probes collapse to one
  // offset-table load instead of a binary search.
  ci.starts.clear();
  ci.key_min = 0;
  if (cols.size() == 1 && !ci.keys.empty()) {
    const ConstId kmin = ci.keys.front();
    const ConstId kmax = ci.keys.back();
    const int64_t domain = static_cast<int64_t>(kmax) - kmin + 1;
    if (domain <= 2 * static_cast<int64_t>(ci.keys.size()) + 16) {
      ci.key_min = kmin;
      ci.starts.resize(static_cast<size_t>(domain) + 1);
      size_t pos = 0;
      for (int64_t d = 0; d < domain; ++d) {
        ci.starts[static_cast<size_t>(d)] = static_cast<uint32_t>(pos);
        const ConstId k = kmin + static_cast<ConstId>(d);
        while (pos < ci.keys.size() && ci.keys[pos] == k) ++pos;
      }
      ci.starts[static_cast<size_t>(domain)] =
          static_cast<uint32_t>(ci.keys.size());
    }
  }
  ci.sorted_version = rel.version;
  approx_bytes_ += IndexBytes(ci);
  index_builds_.fetch_add(1, std::memory_order_relaxed);
  index_sort_micros_.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count(),
      std::memory_order_relaxed);
}

Database::ProbeOutcome Database::SortedLookup(const Relation& rel,
                                              const ColumnIndex& ci,
                                              ColumnMask mask,
                                              const Tuple& key) const {
  (void)rel;
  (void)mask;
  const size_t w = static_cast<size_t>(ci.key_width);
  HYPO_DCHECK(w == key.size()) << "probe key arity does not match mask";
  const ConstId* keys = ci.keys.data();
  const ConstId* k = key.data();
  if (w == 1 && !ci.starts.empty()) {
    // Dense single-column domain: one offset-table load bounds the run.
    const int64_t d = static_cast<int64_t>(k[0]) - ci.key_min;
    ProbeOutcome outcome;
    if (d < 0 || d + 1 >= static_cast<int64_t>(ci.starts.size()) ||
        ci.starts[static_cast<size_t>(d)] ==
            ci.starts[static_cast<size_t>(d) + 1]) {
      outcome.kind = ProbeOutcome::kNone;
      return outcome;
    }
    const size_t begin = ci.starts[static_cast<size_t>(d)];
    const size_t end = ci.starts[static_cast<size_t>(d) + 1];
    sorted_probes_.fetch_add(1, std::memory_order_relaxed);
    merge_join_rows_.fetch_add(static_cast<int64_t>(end - begin),
                               std::memory_order_relaxed);
    outcome.kind = ProbeOutcome::kRange;
    outcome.rows = ci.perm.data() + begin;
    outcome.count = end - begin;
    return outcome;
  }
  // Binary search over the flat sorted key array (stride w), tracking
  // positions rather than iterators: position i holds the key of row
  // ci.perm[i], so the [lo, hi) answer maps straight onto perm.
  size_t lo = 0;
  size_t hi = ci.perm.size();
  while (lo < hi) {  // lower bound
    const size_t mid = lo + (hi - lo) / 2;
    const ConstId* row = keys + mid * w;
    bool row_below = false;
    for (size_t i = 0; i < w; ++i) {
      if (row[i] != k[i]) {
        row_below = row[i] < k[i];
        break;
      }
    }
    if (row_below) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t begin = lo;
  hi = ci.perm.size();
  while (lo < hi) {  // upper bound, resumed from the lower bound
    const size_t mid = lo + (hi - lo) / 2;
    const ConstId* row = keys + mid * w;
    bool key_below = false;
    for (size_t i = 0; i < w; ++i) {
      if (row[i] != k[i]) {
        key_below = k[i] < row[i];
        break;
      }
    }
    if (key_below) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ProbeOutcome outcome;
  if (begin == hi) {
    outcome.kind = ProbeOutcome::kNone;
    return outcome;
  }
  sorted_probes_.fetch_add(1, std::memory_order_relaxed);
  merge_join_rows_.fetch_add(static_cast<int64_t>(hi - begin),
                             std::memory_order_relaxed);
  outcome.kind = ProbeOutcome::kRange;
  outcome.rows = ci.perm.data() + begin;
  outcome.count = hi - begin;
  return outcome;
}

Database::ProbeOutcome Database::ProbeInternal(
    const Relation& rel, ColumnMask mask, const Tuple& key,
    const ColumnIndex** ci_cache) const {
  HYPO_DCHECK(mask != 0) << "probe with no bound columns is a full scan";
  index_probes_.fetch_add(1, std::memory_order_relaxed);
  ProbeOutcome outcome;
  if (backend_ == StorageBackend::kColumnar) {
    const ColumnIndex* ci;
    if (ci_cache != nullptr && *ci_cache != nullptr) {
      ci = *ci_cache;
    } else {
      auto ci_it = rel.column_indexes.find(mask);
      ci = ci_it == rel.column_indexes.end() ? nullptr : &ci_it->second;
      if (ci_cache != nullptr) *ci_cache = ci;
    }
    if (ci != nullptr && ci->sorted_version == rel.version) {
      // Current sorted permutation: binary-search it whether sealed or
      // not — the lookup is strictly read-only either way.
      return SortedLookup(rel, *ci, mask, key);
    }
  }
  if (sealed_) {
    // Strictly read-only: serve only indexes that were complete at seal
    // time; anything else degrades to a caller-side full scan rather
    // than mutating shared index state under concurrent readers.
    auto ci_it = rel.column_indexes.find(mask);
    if (ci_it == rel.column_indexes.end() ||
        ci_it->second.built_upto < RelationSize(rel)) {
      outcome.kind = ProbeOutcome::kScanAll;
      return outcome;
    }
    auto bucket = ci_it->second.buckets.find(key);
    if (bucket == ci_it->second.buckets.end()) return outcome;  // kNone.
    outcome.kind = ProbeOutcome::kBucket;
    outcome.bucket = &bucket->second;
    return outcome;
  }
  ColumnIndex& ci = ExtendIndex(rel, mask);
  if (ci_cache != nullptr) *ci_cache = &ci;
  auto bucket = ci.buckets.find(key);
  if (bucket == ci.buckets.end()) return outcome;  // kNone.
  outcome.kind = ProbeOutcome::kBucket;
  outcome.bucket = &bucket->second;
  return outcome;
}

Database::RowRange Database::ProbeIndex(PredicateId pred, ColumnMask mask,
                                        const Tuple& key) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return RowRange{};
  ProbeOutcome outcome = ProbeInternal(it->second, mask, key);
  switch (outcome.kind) {
    case ProbeOutcome::kNone:
      return RowRange{};
    case ProbeOutcome::kBucket:
      return RowRange{outcome.bucket->data(), outcome.bucket->size(), false};
    case ProbeOutcome::kRange:
      return RowRange{outcome.rows, outcome.count, false};
    case ProbeOutcome::kScanAll:
      return ScanAllMarker();
  }
  return RowRange{};
}

void Database::PrepareIndex(PredicateId pred, ColumnMask mask) const {
  HYPO_DCHECK(mask != 0) << "prepare with no bound columns";
  HYPO_DCHECK(!sealed_) << "prepare indexes before sealing";
  auto it = relations_.find(pred);
  if (it == relations_.end()) return;
  if (backend_ == StorageBackend::kColumnar && sorted_on_seal_) {
    // Registration is enough: the seal sorts every registered mask, so
    // building hash buckets here would be thrown away immediately.
    auto [ci_it, created] = it->second.column_indexes.try_emplace(mask);
    (void)ci_it;
    if (created) index_builds_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ExtendIndex(it->second, mask);
}

void Database::SealIndexes() const {
  for (const auto& [pred, rel] : relations_) {
    (void)pred;
    for (auto& [mask, ci] : rel.column_indexes) {
      if (backend_ == StorageBackend::kColumnar && sorted_on_seal_) {
        SortIndex(rel, mask, ci);
      } else {
        ExtendIndex(rel, mask);
      }
    }
  }
  sealed_ = true;
}

Status Database::Insert(std::string_view predicate,
                        const std::vector<std::string_view>& args) {
  HYPO_FAILPOINT("db.insert");
  if (sealed_) {
    return Status::FailedPrecondition(
        "insert into a sealed database; call UnsealIndexes() to start a "
        "new epoch first");
  }
  StatusOr<PredicateId> pred =
      symbols_->InternPredicate(predicate, static_cast<int>(args.size()));
  HYPO_RETURN_IF_ERROR(pred.status());
  Fact fact;
  fact.predicate = *pred;
  fact.args.reserve(args.size());
  for (std::string_view a : args) fact.args.push_back(symbols_->InternConst(a));
  Insert(fact);
  return Status::OK();
}

Database::RowsView Database::TuplesFor(PredicateId pred) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  RowsView view;
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    view.tuples_ = kEmpty;
    return view;
  }
  if (backend_ == StorageBackend::kColumnar) {
    view.store_ = &it->second.store;
    view.size_ = static_cast<size_t>(it->second.store.size());
  } else {
    view.tuples_ = &it->second.tuples;
    view.size_ = it->second.tuples.size();
  }
  return view;
}

int Database::CountFor(PredicateId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? 0
                                : static_cast<int>(RelationSize(it->second));
}

int64_t Database::ArenaBytes() const {
  if (backend_ != StorageBackend::kColumnar) return 0;
  int64_t bytes = 0;
  for (const auto& [pred, rel] : relations_) {
    (void)pred;
    bytes += rel.store.ArenaBytes();
    for (const auto& [mask, ci] : rel.column_indexes) {
      (void)mask;
      bytes += static_cast<int64_t>(ci.perm.capacity()) * sizeof(RowId);
    }
  }
  return bytes;
}

void Database::ForEach(const std::function<void(const Fact&)>& fn) const {
  for (const auto& [pred, rel] : relations_) {
    if (backend_ == StorageBackend::kColumnar) {
      const RowId n = rel.store.size();
      for (RowId row = 0; row < n; ++row) {
        fn(Fact{pred, RowRef(&rel.store, row).ToTuple()});
      }
    } else {
      for (const Tuple& t : rel.tuples) {
        fn(Fact{pred, t});
      }
    }
  }
}

std::vector<PredicateId> Database::NonEmptyPredicates() const {
  std::vector<PredicateId> out;
  for (const auto& [pred, rel] : relations_) {
    if (RelationSize(rel) > 0) out.push_back(pred);
  }
  return out;
}

void Database::SerializeRelations(std::string* out) const {
  std::vector<PredicateId> preds = NonEmptyPredicates();
  // NonEmptyPredicates walks an unordered map; sort so identical logical
  // contents always serialize to identical bytes.
  std::sort(preds.begin(), preds.end());
  AppendU32(out, static_cast<uint32_t>(preds.size()));
  for (PredicateId pred : preds) {
    RowsView rows = TuplesFor(pred);
    const size_t arity =
        static_cast<size_t>(symbols_->PredicateArity(pred));
    AppendU32(out, static_cast<uint32_t>(pred));
    AppendU32(out, static_cast<uint32_t>(arity));
    AppendU64(out, static_cast<uint64_t>(rows.size()));
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t c = 0; c < arity; ++c) {
        AppendU32(out, static_cast<uint32_t>(rows.At(r, c)));
      }
    }
  }
}

Status Database::DeserializeRelations(std::string_view bytes) {
  if (!empty()) {
    return Status::FailedPrecondition(
        "DeserializeRelations requires an empty database");
  }
  ByteReader reader(bytes);
  auto npreds = reader.ReadU32();
  if (!npreds.ok()) return npreds.status();
  Fact fact;
  for (uint32_t i = 0; i < *npreds; ++i) {
    auto pred = reader.ReadU32();
    if (!pred.ok()) return pred.status();
    auto arity = reader.ReadU32();
    if (!arity.ok()) return arity.status();
    auto nrows = reader.ReadU64();
    if (!nrows.ok()) return nrows.status();
    const auto id = static_cast<PredicateId>(*pred);
    if (id < 0 || id >= symbols_->num_predicates()) {
      return Status::InvalidArgument(
          "relation snapshot references unknown predicate id " +
          std::to_string(*pred));
    }
    if (static_cast<int>(*arity) != symbols_->PredicateArity(id)) {
      return Status::InvalidArgument(
          "relation snapshot arity mismatch for predicate id " +
          std::to_string(*pred));
    }
    fact.predicate = id;
    fact.args.assign(*arity, 0);
    for (uint64_t r = 0; r < *nrows; ++r) {
      for (uint32_t c = 0; c < *arity; ++c) {
        auto v = reader.ReadU32();
        if (!v.ok()) return v.status();
        const auto cid = static_cast<ConstId>(*v);
        if (cid < 0 || cid >= symbols_->num_consts()) {
          return Status::InvalidArgument(
              "relation snapshot references unknown constant id " +
              std::to_string(*v));
        }
        fact.args[c] = cid;
      }
      Insert(fact);
    }
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        "relation snapshot has trailing bytes after last relation");
  }
  return Status::OK();
}

void Database::Clear() {
  if (!relations_.empty()) BumpCursorEpoch();
  relations_.clear();
  constants_.clear();
  constant_refs_.clear();
  size_ = 0;
  approx_bytes_ = 0;
  // A cleared database is a fresh epoch: without this reset a repopulated
  // database would keep the read-only probe path forever and never build
  // indexes for its new contents (every probe degrades to a full scan).
  sealed_ = false;
}

}  // namespace hypo
