#include "db/columnar.h"

namespace hypo {

namespace {
constexpr size_t kMinSlots = 16;
}  // namespace

bool ColumnStore::Insert(const Tuple& vals) {
  HYPO_DCHECK(static_cast<int>(vals.size()) == arity_)
      << "arity mismatch in columnar insert";
  if (arity_ == 0) {
    if (rows_ > 0) return false;
    rows_ = 1;
    return true;
  }
  // Keep the load factor under 70% *before* probing so the probe always
  // terminates on an empty slot and the found slot stays valid for the
  // store below.
  if (slots_.empty() ||
      (static_cast<size_t>(rows_) + 1) * 10 > slots_.size() * 7) {
    Rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
  }
  size_t slot = FindSlot(vals, HashRowLike(vals));
  if (slots_[slot] >= 0) return false;
  for (int c = 0; c < arity_; ++c) cols_[c].push_back(vals[c]);
  slots_[slot] = rows_;
  ++rows_;
  return true;
}

bool ColumnStore::Erase(const Tuple& vals) {
  RowId row = Find(vals);
  if (row < 0) return false;
  if (arity_ == 0) {
    rows_ = 0;
    return true;
  }
  for (int c = 0; c < arity_; ++c) {
    cols_[c].erase(cols_[c].begin() + row);
  }
  --rows_;
  // Every row id at or past the hole shifted down by one: rebuild the
  // dedup table from the surviving rows.
  Rehash(slots_.size());
  return true;
}

void ColumnStore::Clear() {
  for (auto& col : cols_) col.clear();
  slots_.clear();
  slot_mask_ = 0;
  rows_ = 0;
}

void ColumnStore::Rehash(size_t min_slots) {
  size_t n = kMinSlots;
  while (n < min_slots) n *= 2;
  slots_.assign(n, -1);
  slot_mask_ = n - 1;
  for (RowId row = 0; row < rows_; ++row) {
    // Hash straight off the columns via RowRef — no per-row Tuple copy.
    uint64_t hash = HashFinalize(HashRowLike(RowRef(this, row)));
    size_t slot = static_cast<size_t>(hash) & slot_mask_;
    while (slots_[slot] >= 0) slot = (slot + 1) & slot_mask_;
    slots_[slot] = row;
  }
}

}  // namespace hypo
