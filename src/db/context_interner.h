#ifndef HYPO_DB_CONTEXT_INTERNER_H_
#define HYPO_DB_CONTEXT_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "db/fact_interner.h"

namespace hypo {

/// Dense id of an interned hypothetical context (a canonical overlay
/// state), local to one ContextInterner. Id 0 is always the empty context.
using ContextId = int32_t;

/// Hash-conses hypothetical-context states so that a database state is a
/// single integer instead of a sorted FactId vector.
///
/// A context is a set of *elements*: the visible hypothetical additions
/// and the masked base facts of an OverlayDatabase (exactly the
/// information the legacy CanonicalKey() vector carried). Each distinct
/// set gets one dense ContextId; two overlays in the same visible state
/// always report the same id, so the engines can memoize goals per
/// (FactId, ContextId) pair with no per-goal key construction.
///
/// Transitions are the hot path: Apply(from, elem, insert) returns the id
/// of `from` with one element inserted/erased. Every traversed edge is
/// cached bidirectionally, so a proof branch that pushes and pops the
/// same hypothetical frame (the overwhelmingly common pattern — the
/// paper's "inserted ... tested ... and then retracted" discipline)
/// performs O(1) hash lookups after the first visit; only the first visit
/// to a brand-new context pays O(|context|) to build its canonical set.
class ContextInterner {
 public:
  static constexpr ContextId kEmptyContext = 0;

  ContextInterner();
  ContextInterner(const ContextInterner&) = delete;
  ContextInterner& operator=(const ContextInterner&) = delete;

  /// Context element for a visible hypothetical addition.
  static int64_t AddedElement(FactId id) {
    return static_cast<int64_t>(id) << 1;
  }
  /// Context element for a masked (hypothetically deleted) base fact.
  static int64_t MaskedElement(FactId id) {
    return (static_cast<int64_t>(id) << 1) | 1;
  }

  /// Id of `from` with `elem` inserted; `elem` must not be present.
  ContextId Insert(ContextId from, int64_t elem) {
    return Apply(from, elem, /*insert=*/true);
  }
  /// Id of `from` with `elem` erased; `elem` must be present.
  ContextId Erase(ContextId from, int64_t elem) {
    return Apply(from, elem, /*insert=*/false);
  }

  /// Interns the context whose elements are exactly the additions in
  /// `added` (which must be sorted and duplicate-free). The direct route
  /// to a ContextId for callers that hold a canonical added-fact set
  /// rather than an overlay walk — the BottomUpEngine keys its sharded
  /// state cache this way.
  ContextId InternAddedSet(const std::vector<FactId>& added);

  /// The canonical (sorted) element set of `id`.
  const std::vector<int64_t>& Elements(ContextId id) const {
    return *elements_by_id_[id];
  }

  int num_contexts() const {
    return static_cast<int>(elements_by_id_.size());
  }
  int64_t transitions() const { return transitions_; }
  int64_t transition_hits() const { return transition_hits_; }

  /// Rough footprint of the interner (canonical sets + both hash maps).
  /// Maintained incrementally, so reading is O(1) and safe from worker
  /// threads while another thread interns (hence the atomic): the memory
  /// budget in QueryGuard polls this at metering frequency.
  size_t ApproxBytes() const {
    return static_cast<size_t>(
        approx_bytes_.load(std::memory_order_relaxed));
  }

 private:
  struct EdgeKey {
    ContextId from;
    int64_t elem;
    bool insert;
    friend bool operator==(const EdgeKey& a, const EdgeKey& b) {
      return a.from == b.from && a.elem == b.elem && a.insert == b.insert;
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      uint64_t h = HashCombine(static_cast<uint64_t>(k.from),
                               static_cast<uint64_t>(k.elem));
      return static_cast<size_t>(
          HashCombine(h, static_cast<uint64_t>(k.insert)));
    }
  };
  struct ElementsHash {
    size_t operator()(const std::vector<int64_t>& v) const {
      return static_cast<size_t>(HashVector(v, v.size()));
    }
  };

  ContextId Apply(ContextId from, int64_t elem, bool insert);
  ContextId InternElements(std::vector<int64_t> elems);

  /// Canonical set -> id. The map owns the vectors; elements_by_id_
  /// points at the node-stable keys.
  std::unordered_map<std::vector<int64_t>, ContextId, ElementsHash> index_;
  std::vector<const std::vector<int64_t>*> elements_by_id_;
  std::unordered_map<EdgeKey, ContextId, EdgeKeyHash> edges_;

  int64_t transitions_ = 0;
  int64_t transition_hits_ = 0;
  std::atomic<int64_t> approx_bytes_{0};
};

}  // namespace hypo

#endif  // HYPO_DB_CONTEXT_INTERNER_H_
