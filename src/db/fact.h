#ifndef HYPO_DB_FACT_H_
#define HYPO_DB_FACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/symbol_table.h"
#include "base/hash.h"

namespace hypo {

/// The argument tuple of a ground atom.
using Tuple = std::vector<ConstId>;

/// Hashes anything tuple-shaped (size() + operator[] over ConstId): a
/// materialized Tuple or a columnar RowRef. One definition so both
/// storage backends — and the parallel fixpoint's hash sharding — agree
/// on every row's hash bit-for-bit.
template <typename Row>
uint64_t HashRowLike(const Row& row) {
  uint64_t h = row.size();
  for (size_t i = 0; i < row.size(); ++i) {
    h = HashCombine(h, static_cast<uint64_t>(row[i]));
  }
  return h;
}

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(HashRowLike(t));
  }
};

/// A ground atomic formula: database entries, hypothetical additions and
/// query answers are all Facts.
struct Fact {
  PredicateId predicate = kInvalidPredicate;
  Tuple args;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
  friend bool operator!=(const Fact& a, const Fact& b) { return !(a == b); }

  /// Lexicographic order (predicate, then args); used for canonical
  /// memoization keys.
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.args < b.args;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    return static_cast<size_t>(
        HashVector(f.args, static_cast<uint64_t>(f.predicate) + 0x51ed2701));
  }
};

/// Renders a fact, e.g. "edge(a, b)".
std::string FactToString(const Fact& fact, const SymbolTable& symbols);

}  // namespace hypo

#endif  // HYPO_DB_FACT_H_
