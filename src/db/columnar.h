#ifndef HYPO_DB_COLUMNAR_H_
#define HYPO_DB_COLUMNAR_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"
#include "db/fact.h"

namespace hypo {

/// Position of a tuple inside its relation's columnar store (and inside
/// the reference backend's tuple vector). Row ids are dense, stable under
/// insertion, and only shift on Retract — an epoch-boundary operation
/// that drops every index over the relation anyway.
using RowId = int32_t;

/// Flat struct-of-arrays tuple storage for one relation: `arity` parallel
/// arena-backed `std::vector<ConstId>` columns plus an open-addressing
/// dedup table of row ids. No per-tuple heap nodes anywhere — the CaDiCaL
/// "plain vector pools" idiom — so a stored fact costs exactly
/// arity * sizeof(ConstId) of column arena plus one int32 dedup slot,
/// and byte accounting can be exact instead of estimated.
class ColumnStore {
 public:
  explicit ColumnStore(int arity) : arity_(arity), cols_(arity) {}

  int arity() const { return arity_; }
  RowId size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  ConstId At(RowId row, size_t col) const { return cols_[col][row]; }
  const std::vector<ConstId>& Column(size_t col) const { return cols_[col]; }

  /// Appends `vals` unless an equal row is already stored. Returns true
  /// iff a new row was appended (its id is size() - 1).
  bool Insert(const Tuple& vals);

  /// Row id of the row equal to `vals`, or -1. `Row` is anything with
  /// size() and operator[] over ConstId (Tuple, RowRef, ...).
  template <typename Row>
  RowId Find(const Row& vals) const {
    if (arity_ == 0) return rows_ > 0 ? 0 : -1;
    if (rows_ == 0) return -1;
    size_t slot = FindSlot(vals, HashRowLike(vals));
    return slots_[slot];
  }

  template <typename Row>
  bool Contains(const Row& vals) const {
    return Find(vals) >= 0;
  }

  /// Removes the row equal to `vals` if present, compacting the columns
  /// while preserving the order of the remaining rows (matching
  /// vector::erase semantics in the reference backend). Rebuilds the
  /// dedup table — O(rows * arity); retraction is an epoch-boundary
  /// operation, not a join-loop one.
  bool Erase(const Tuple& vals);

  void Clear();

  /// Exact heap bytes held: column arena capacities plus the dedup table.
  int64_t ArenaBytes() const {
    int64_t bytes =
        static_cast<int64_t>(slots_.capacity()) * sizeof(RowId);
    for (const auto& col : cols_) {
      bytes += static_cast<int64_t>(col.capacity()) * sizeof(ConstId);
    }
    return bytes;
  }

 private:
  template <typename Row>
  bool RowEquals(RowId row, const Row& vals) const {
    for (int c = 0; c < arity_; ++c) {
      if (cols_[c][row] != static_cast<ConstId>(vals[c])) return false;
    }
    return true;
  }

  /// Linear-probe slot for `vals`: either holds the matching row id or is
  /// the empty slot where it would go. slots_ must be non-empty. The hash
  /// is finalized before masking: HashRowLike's low bits cluster badly on
  /// sequential ConstIds, and under a power-of-two mask that degrades
  /// linear probing to near-linear scans (the reference backend never
  /// sees this because unordered_set buckets by prime modulo).
  template <typename Row>
  size_t FindSlot(const Row& vals, uint64_t hash) const {
    size_t slot = static_cast<size_t>(HashFinalize(hash)) & slot_mask_;
    while (slots_[slot] >= 0 && !RowEquals(slots_[slot], vals)) {
      slot = (slot + 1) & slot_mask_;
    }
    return slot;
  }

  /// Grows the dedup table to at least `min_slots` (power of two) and
  /// reinserts every live row id.
  void Rehash(size_t min_slots);

  int arity_;
  RowId rows_ = 0;
  std::vector<std::vector<ConstId>> cols_;
  std::vector<RowId> slots_;  // -1 = empty; else a row id.
  size_t slot_mask_ = 0;
};

/// A borrowed view of one stored row: tuple-shaped (size / operator[])
/// so generic join code monomorphizes over it without materializing a
/// Tuple. Valid until the store is next mutated.
class RowRef {
 public:
  RowRef(const ColumnStore* store, RowId row) : store_(store), row_(row) {}

  size_t size() const { return static_cast<size_t>(store_->arity()); }
  ConstId operator[](size_t i) const { return store_->At(row_, i); }
  RowId row() const { return row_; }

  Tuple ToTuple() const {
    Tuple t;
    t.reserve(size());
    for (size_t i = 0; i < size(); ++i) t.push_back((*this)[i]);
    return t;
  }

 private:
  const ColumnStore* store_;
  RowId row_;
};

}  // namespace hypo

#endif  // HYPO_DB_COLUMNAR_H_
