#ifndef HYPO_DB_FACT_INTERNER_H_
#define HYPO_DB_FACT_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/fact.h"

namespace hypo {

/// Dense id of an interned ground fact, local to one FactInterner.
using FactId = int32_t;

/// Interns ground facts to dense ids.
///
/// The engines memoize evaluation results per database *state*; a state's
/// canonical key is the sorted vector of FactIds of its hypothetically
/// added facts, which keeps keys compact and hashing cheap even when a
/// proof path has inserted hundreds of facts (as the §5.1 Turing-machine
/// encodings do).
class FactInterner {
 public:
  FactInterner() = default;
  FactInterner(const FactInterner&) = delete;
  FactInterner& operator=(const FactInterner&) = delete;

  /// Returns the id of `fact`, interning it on first use.
  FactId Intern(const Fact& fact) {
    auto it = index_.find(fact);
    if (it != index_.end()) return it->second;
    FactId id = static_cast<FactId>(facts_.size());
    facts_.push_back(fact);
    index_.emplace(fact, id);
    // The fact is stored twice (dense vector + index key); atomic so
    // budget checks on other threads can read while one thread interns.
    approx_bytes_.fetch_add(
        2 * static_cast<int64_t>(sizeof(Fact) +
                                 fact.args.size() * sizeof(ConstId)) +
            32,
        std::memory_order_relaxed);
    return id;
  }

  /// Returns the id of `fact` if already interned, -1 otherwise. Never
  /// mutates, so scan filters can probe without growing the table.
  FactId Find(const Fact& fact) const {
    auto it = index_.find(fact);
    return it == index_.end() ? -1 : it->second;
  }

  const Fact& Get(FactId id) const { return facts_[id]; }
  int size() const { return static_cast<int>(facts_.size()); }

  /// Rough footprint of the table; O(1), readable concurrently with
  /// interning (for the engines' memory-budget accounting).
  int64_t ApproxBytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Fact> facts_;
  std::unordered_map<Fact, FactId, FactHash> index_;
  std::atomic<int64_t> approx_bytes_{0};
};

}  // namespace hypo

#endif  // HYPO_DB_FACT_INTERNER_H_
