#ifndef HYPO_DB_OVERLAY_H_
#define HYPO_DB_OVERLAY_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/database.h"
#include "db/fact_interner.h"

namespace hypo {

/// A database with a stack of hypothetical insertions — and, for the [4]
/// extension, hypothetical deletions — on top.
///
/// Implements the `DB + {B}` operation of inference rule 2 (Definition 3)
/// and its `DB - {C}` counterpart for depth-first proof search: every
/// change is recorded in undo frames so a proof branch can be retracted
/// when the search backtracks — exactly the "inserted ... tested ... and
/// then retracted" discipline the paper describes for computation paths
/// (§5.1.2).
///
/// Deletions are implemented as a *mask*: a deleted fact (base or
/// previously added) stays in storage but is invisible to Contains and
/// must be filtered from scans via TupleVisible. Re-adding a masked fact
/// unmasks it. CanonicalKey() canonicalizes the visible state:
/// (still-visible additions, masked base facts).
///
/// The base database is never modified.
class OverlayDatabase {
 public:
  /// Neither pointer is owned; both must outlive the overlay.
  OverlayDatabase(const Database* base, FactInterner* interner)
      : base_(base), interner_(interner) {}

  OverlayDatabase(const OverlayDatabase&) = delete;
  OverlayDatabase& operator=(const OverlayDatabase&) = delete;

  /// True if `fact` is visible: in the base database or added, and not
  /// masked by a hypothetical deletion.
  bool Contains(const Fact& fact) const {
    if (!masked_.empty()) {
      FactId id = interner_->Find(fact);
      if (id >= 0 && masked_.count(id) > 0) return false;
    }
    if (base_->Contains(fact)) return true;
    auto it = added_.find(fact.predicate);
    return it != added_.end() && it->second.index.count(fact.args) > 0;
  }

  /// Hypothetically inserts `fact`. Unmasks it if it was hypothetically
  /// deleted. Returns true iff visibility changed.
  bool Add(const Fact& fact);

  /// Hypothetically deletes `fact` (masks it). Returns true iff it was
  /// visible before.
  bool Delete(const Fact& fact);

  /// Opens an undo frame; the matching PopFrame retracts every later
  /// Add/Delete.
  void PushFrame() { frames_.push_back(ops_.size()); }

  /// Retracts all changes made since the matching PushFrame.
  void PopFrame();

  /// Tuples added for `pred` (may include masked ones — filter scans
  /// through TupleVisible), insertion order.
  const std::vector<Tuple>& AddedTuplesFor(PredicateId pred) const;

  /// Scan filter: false iff the (stored) tuple is currently masked.
  /// Cheap when no deletions are active.
  bool TupleVisible(PredicateId pred, const Tuple& tuple) const {
    if (masked_.empty()) return true;
    FactId id = interner_->Find(Fact{pred, tuple});
    return id < 0 || masked_.count(id) == 0;
  }

  bool has_deletions() const { return !masked_.empty(); }

  /// Canonical state key: sorted FactIds of the visible additions, then —
  /// only if any base facts are masked — a -1 separator followed by the
  /// sorted masked base ids. States without deletions keep their old,
  /// purely-additive keys.
  std::vector<FactId> CanonicalKey() const;

  int num_added() const { return static_cast<int>(added_order_.size()); }
  const Database& base() const { return *base_; }
  FactInterner* interner() const { return interner_; }

  /// Invokes `fn` on every *visible* added fact, in insertion order.
  template <typename Fn>
  void ForEachAdded(Fn&& fn) const {
    for (FactId id : added_order_) {
      if (masked_.count(id) == 0) fn(interner_->Get(id));
    }
  }

 private:
  struct AddedRelation {
    std::vector<Tuple> tuples;
    std::unordered_set<Tuple, TupleHash> index;
  };

  /// What an operation did, so PopFrame can reverse it.
  enum class OpKind {
    kDidAdd,     // Appended to added storage.
    kDidMask,    // Inserted into masked_.
    kDidUnmask,  // Erased from masked_.
  };
  struct Op {
    OpKind kind;
    FactId id;
  };

  const Database* base_;
  FactInterner* interner_;
  std::unordered_map<PredicateId, AddedRelation> added_;
  std::vector<FactId> added_order_;
  std::unordered_set<FactId> masked_;
  std::vector<Op> ops_;
  std::vector<size_t> frames_;
};

}  // namespace hypo

#endif  // HYPO_DB_OVERLAY_H_
