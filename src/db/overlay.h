#ifndef HYPO_DB_OVERLAY_H_
#define HYPO_DB_OVERLAY_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/context_interner.h"
#include "db/database.h"
#include "db/fact_interner.h"

namespace hypo {

/// A database with a stack of hypothetical insertions — and, for the [4]
/// extension, hypothetical deletions — on top.
///
/// Implements the `DB + {B}` operation of inference rule 2 (Definition 3)
/// and its `DB - {C}` counterpart for depth-first proof search: every
/// change is recorded in undo frames so a proof branch can be retracted
/// when the search backtracks — exactly the "inserted ... tested ... and
/// then retracted" discipline the paper describes for computation paths
/// (§5.1.2).
///
/// Deletions are implemented as a *mask*: a deleted fact (base or
/// previously added) stays in storage but is invisible to Contains and
/// must be filtered from scans via TupleVisible. Re-adding a masked fact
/// unmasks it.
///
/// The visible state has a hash-consed identity: context_id() is a dense
/// ContextId maintained *incrementally* — every Add/Delete and every undo
/// step in PopFrame is one ContextInterner transition (an O(1) cached
/// hash lookup on revisited states), so the engines can memoize per
/// (goal, context_id()) without rebuilding a key vector per goal. The
/// legacy CanonicalKey() remains as the independent slow-path oracle the
/// incremental id is validated against.
///
/// The base database is never modified.
class OverlayDatabase {
 public:
  /// Neither pointer is owned; both must outlive the overlay.
  OverlayDatabase(const Database* base, FactInterner* interner)
      : base_(base), interner_(interner) {}

  OverlayDatabase(const OverlayDatabase&) = delete;
  OverlayDatabase& operator=(const OverlayDatabase&) = delete;

  /// True if `fact` is visible: in the base database or added, and not
  /// masked by a hypothetical deletion.
  bool Contains(const Fact& fact) const {
    if (!masked_.empty()) {
      FactId id = interner_->Find(fact);
      if (id >= 0 && masked_.count(id) > 0) return false;
    }
    if (base_->Contains(fact)) return true;
    auto it = added_.find(fact.predicate);
    return it != added_.end() && it->second.index.count(fact.args) > 0;
  }

  /// Hypothetically inserts `fact`. Unmasks it if it was hypothetically
  /// deleted. Returns true iff visibility changed.
  bool Add(const Fact& fact);

  /// Hypothetically deletes `fact` (masks it). Returns true iff it was
  /// visible before.
  bool Delete(const Fact& fact);

  /// Opens an undo frame; the matching PopFrame retracts every later
  /// Add/Delete.
  void PushFrame() { frames_.push_back(ops_.size()); }

  /// Retracts all changes made since the matching PushFrame.
  void PopFrame();

  /// Tuples added for `pred` (may include masked ones — filter scans
  /// through TupleVisible), insertion order.
  const std::vector<Tuple>& AddedTuplesFor(PredicateId pred) const;

  /// Positions (into AddedTuplesFor) of the added tuples of `pred` whose
  /// columns selected by `mask` equal `key`, or null when there are none.
  /// Mirrors Database::ProbeIndex for hypothetical additions: the index
  /// for each (pred, mask) pair is built lazily on first probe, extended
  /// as the frame stack grows, and trimmed as frames pop, so extensional
  /// matching over additions stops scanning every added tuple once any
  /// column is bound. `mask` must be non-zero.
  const std::vector<RowId>* AddedProbe(PredicateId pred, ColumnMask mask,
                                       const Tuple& key) const;

  /// Scan filter: false iff the (stored) tuple is currently masked.
  /// Cheap when no deletions are active. `Row` is anything tuple-shaped
  /// (Tuple or a columnar RowRef); the Fact is only materialized on the
  /// cold masked path.
  template <typename Row>
  bool TupleVisible(PredicateId pred, const Row& tuple) const {
    if (masked_.empty()) return true;
    Fact fact;
    fact.predicate = pred;
    fact.args.reserve(tuple.size());
    for (size_t i = 0; i < tuple.size(); ++i) fact.args.push_back(tuple[i]);
    FactId id = interner_->Find(fact);
    return id < 0 || masked_.count(id) == 0;
  }

  bool has_deletions() const { return !masked_.empty(); }

  /// Interned id of the current visible state. Two overlay states with
  /// the same visible additions and the same masked base facts — however
  /// they were reached — report the same id.
  ContextId context_id() const { return context_; }
  const ContextInterner& context_interner() const { return contexts_; }

  /// Legacy canonical state key: sorted FactIds of the visible additions,
  /// then — only if any base facts are masked — a -1 separator followed
  /// by the sorted masked base ids. Kept as the slow-path oracle for
  /// context_id() (see DebugContextConsistent) and for tests; the engines
  /// themselves memoize on context_id().
  std::vector<FactId> CanonicalKey() const;

  /// Cross-checks the incrementally maintained context_id() against a
  /// from-scratch CanonicalKey(). O(|overlay|); test/debug only.
  bool DebugContextConsistent() const;

  int num_added() const { return static_cast<int>(added_order_.size()); }
  const Database& base() const { return *base_; }
  FactInterner* interner() const { return interner_; }

  /// Invokes `fn` on every *visible* added fact, in insertion order.
  template <typename Fn>
  void ForEachAdded(Fn&& fn) const {
    for (FactId id : added_order_) {
      if (masked_.count(id) == 0) fn(interner_->Get(id));
    }
  }

 private:
  /// One lazily built per-mask index over the added tuples, mirroring
  /// Database::ColumnIndex: buckets cover tuples[0..built_upto). Probes
  /// extend it; PopFrame trims it back in lockstep with the tuple stack.
  struct AddedIndex {
    std::unordered_map<Tuple, std::vector<RowId>, TupleHash> buckets;
    size_t built_upto = 0;
  };

  struct AddedRelation {
    std::vector<Tuple> tuples;
    std::unordered_set<Tuple, TupleHash> index;
    // Generalized bound-column access paths, built on demand per mask.
    mutable std::unordered_map<ColumnMask, AddedIndex> mask_indexes;
  };

  /// The key of `args` under `mask` (bound values in column order).
  static Tuple MaskKey(const Tuple& args, ColumnMask mask);

  /// What an operation did, so PopFrame can reverse it. `elem`/`inserted`
  /// record the context transition the operation performed, so the undo
  /// is a single inverse transition (no base-database probing).
  enum class OpKind {
    kDidAdd,     // Appended to added storage.
    kDidMask,    // Inserted into masked_.
    kDidUnmask,  // Erased from masked_.
  };
  struct Op {
    OpKind kind;
    FactId id;
    int64_t elem;   // Context element the op inserted or erased.
    bool inserted;  // True if the op inserted `elem` into the context.
  };

  /// Applies a context transition and records it in the undo log.
  void Transition(OpKind kind, FactId id, int64_t elem, bool inserted) {
    context_ = inserted ? contexts_.Insert(context_, elem)
                        : contexts_.Erase(context_, elem);
    ops_.push_back(Op{kind, id, elem, inserted});
  }

  const Database* base_;
  FactInterner* interner_;
  std::unordered_map<PredicateId, AddedRelation> added_;
  std::vector<FactId> added_order_;
  std::unordered_set<FactId> masked_;
  std::vector<Op> ops_;
  std::vector<size_t> frames_;

  ContextInterner contexts_;
  ContextId context_ = ContextInterner::kEmptyContext;
};

}  // namespace hypo

#endif  // HYPO_DB_OVERLAY_H_
