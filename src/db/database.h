#ifndef HYPO_DB_DATABASE_H_
#define HYPO_DB_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/symbol_table.h"
#include "base/status.h"
#include "db/columnar.h"
#include "db/fact.h"

namespace hypo {

/// Bound-column signature for generalized access paths: bit i set means
/// column i carries a bound value in index probes. Masks cover the first
/// 32 columns; columns beyond that never participate in indexes (callers
/// post-filter with MatchTuple anyway).
using ColumnMask = uint32_t;

constexpr int kMaxIndexedColumns = 32;

/// How a Database stores its tuples.
///
/// kColumnar (the default) is flat struct-of-arrays column arenas with an
/// open-addressing row-id dedup table and optional sorted permutation
/// indexes built at seal time. kReferenceHash is the original node-based
/// layout (vector<Tuple> + unordered_set + lazy hash buckets), kept as
/// the differential-testing oracle the columnar path is fuzzed against.
/// Both backends store, iterate, and probe rows in identical order, so
/// query results are bit-identical across backends.
enum class StorageBackend { kColumnar, kReferenceHash };

/// Budget-tracking estimate of one stored ground fact of the given arity.
/// This is the *reference-hash* footprint (tuple stored twice plus hash
/// node overhead); the engines use it as the per-fact increment for live
/// budget tracking on both backends — deliberately conservative for
/// columnar storage, whose exact arena bytes (Database::ApproxBytes) true
/// up the tracked total at every metering checkpoint.
inline int64_t ApproxFactBytes(size_t arity) {
  return 2 * static_cast<int64_t>(sizeof(Tuple) +
                                  arity * sizeof(ConstId)) +
         32;
}

/// Rough per-position footprint of a hash-bucket column-index entry
/// (bucket slot plus amortized bucket/key overhead). Sorted permutation
/// indexes are accounted exactly instead (sizeof(RowId) per row).
constexpr int64_t kApproxIndexEntryBytes = 16;

/// A set of ground atomic formulas, organized per predicate.
///
/// This is both the extensional database of Definition 3 and the storage
/// used for derived models inside the engines. Tuples are stored per
/// predicate in insertion order (for deterministic iteration) with O(1)
/// dedup. Mostly append-only; Retract/ClearRelation support the
/// long-lived server's epoch mutations and invalidate the affected
/// relation's column indexes (rebuilt lazily on the next probe).
///
/// Access paths: every (predicate, ColumnMask) signature gets an index.
/// Unsealed, that is a lazily extended hash-bucket index on either
/// backend. On a columnar database with EnableSortedIndexes(), sealing
/// instead sorts a permutation of row ids per registered mask, so sealed
/// probes binary-search to a contiguous sorted range — the merge-join
/// access path — and re-sealing an unchanged relation is O(1) via a
/// version check (crucial when many hypothetical child states re-seal
/// the same base).
class Database {
 public:
  explicit Database(std::shared_ptr<SymbolTable> symbols)
      : Database(std::move(symbols), DefaultBackend()) {}

  Database(std::shared_ptr<SymbolTable> symbols, StorageBackend backend)
      : symbols_(std::move(symbols)), backend_(backend) {}

  /// Backend used when none is given to the constructor. Initialized from
  /// the HYPO_STORAGE environment variable ("columnar" | "hash") on first
  /// use, overridable for tests/benches. Process-wide.
  static StorageBackend DefaultBackend();
  static void SetDefaultBackend(StorageBackend backend);

  /// Validates the HYPO_STORAGE environment variable without consuming
  /// it: unset, "", "columnar", and "hash" are accepted; anything else is
  /// InvalidArgument naming the bad value. Entry points (hypo_cli,
  /// hypo_serve) call this at startup so a typo fails fast instead of
  /// silently evaluating on the default backend.
  static Status ValidateStorageEnv();

  StorageBackend backend() const { return backend_; }

  /// Databases are heavyweight; copying must be explicit via Clone().
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  Database Clone() const;

  /// Inserts `fact`. Returns true if it was not already present.
  /// The fact's arity must match the predicate's registered arity.
  /// Inserting into a sealed database auto-unseals it (the mutation starts
  /// a new epoch; see SealIndexes) — callers coordinating concurrent
  /// readers must quiesce them first, as src/server does.
  bool Insert(const Fact& fact);

  /// Convenience: interns the predicate (with arity = args.size()) and the
  /// constants, then inserts. Fails on arity mismatch. Unlike the typed
  /// overload this path REJECTS a sealed database with FailedPrecondition:
  /// it is the user-facing loader entry point, where an insert racing a
  /// sealed read phase is a caller bug worth surfacing, not an epoch turn.
  Status Insert(std::string_view predicate,
                const std::vector<std::string_view>& args);

  /// Removes `fact` if present; returns true when something was removed.
  /// Order-preserving for the remaining tuples. Drops the predicate's
  /// column indexes (stored row ids shift) and auto-unseals, exactly
  /// like Insert. O(|relation|) — retraction is an epoch-boundary
  /// operation, not a join-loop one.
  bool Retract(const Fact& fact);

  /// Removes every tuple of `pred`; returns how many were removed. Used
  /// by the engines' incremental repair to rebuild one stratum's derived
  /// relation in place. Auto-unseals when it removes anything.
  int64_t ClearRelation(PredicateId pred);

  bool Contains(const Fact& fact) const { return Contains(fact.predicate, fact.args); }

  /// Membership test for anything tuple-shaped (Tuple or RowRef) without
  /// materializing a Fact — the hot-path filter in join loops.
  template <typename Row>
  bool Contains(PredicateId pred, const Row& row) const {
    auto it = relations_.find(pred);
    if (it == relations_.end()) return false;
    if (backend_ == StorageBackend::kColumnar) {
      return it->second.store.Contains(row);
    }
    if constexpr (std::is_same_v<std::decay_t<Row>, Tuple>) {
      return it->second.dedup.count(row) > 0;
    } else {
      Tuple t;
      t.reserve(row.size());
      for (size_t i = 0; i < row.size(); ++i) t.push_back(row[i]);
      return it->second.dedup.count(t) > 0;
    }
  }

  /// Backend-neutral view of one relation's rows, in insertion order.
  /// Row ids index into it. Cold-path API (repair diffs, FactsFor,
  /// tests): hot join loops go through ForEachCandidate, which iterates
  /// backend-native rows without materializing Tuples.
  class RowsView {
   public:
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    ConstId At(size_t row, size_t col) const {
      return store_ != nullptr ? store_->At(static_cast<RowId>(row), col)
                               : (*tuples_)[row][col];
    }

    Tuple TupleAt(size_t row) const {
      if (store_ == nullptr) return (*tuples_)[row];
      return RowRef(store_, static_cast<RowId>(row)).ToTuple();
    }

   private:
    friend class Database;
    const ColumnStore* store_ = nullptr;
    const std::vector<Tuple>* tuples_ = nullptr;
    size_t size_ = 0;
  };

  /// All tuples of `pred`, in insertion order. Empty if none.
  RowsView TuplesFor(PredicateId pred) const;

  /// A resolved index probe: row ids of the tuples matching the probed
  /// key. `scan_all` set means "no usable index — scan the whole relation
  /// and post-filter" (the sealed-degraded path). When the serving index
  /// is a sorted permutation the ids are a contiguous sorted slice of it
  /// (the merge-join access path); bucket-served ids are in insertion
  /// order. Either way ids ascend, so iteration order matches a filtered
  /// full scan exactly. Valid until the database is next mutated.
  struct RowRange {
    const RowId* data = nullptr;
    size_t count = 0;
    bool scan_all = false;

    bool empty() const { return count == 0 && !scan_all; }
    friend bool operator==(const RowRange& a, const RowRange& b) {
      return a.data == b.data && a.count == b.count &&
             a.scan_all == b.scan_all;
    }
    friend bool operator!=(const RowRange& a, const RowRange& b) {
      return !(a == b);
    }
  };

  /// Generalized access path: the row ids (into TuplesFor) of the tuples
  /// of `pred` whose columns selected by `mask` equal `key` (the bound
  /// values, in increasing column order).
  ///
  /// Unsealed, the hash index for a (predicate, column-mask) pair is
  /// built lazily on first probe and extended incrementally as the
  /// relation grows — safe because relations are append-only between
  /// epoch boundaries. Sealed with sorted indexes enabled, the probe
  /// binary-searches the mask's sorted permutation instead. `mask` must
  /// be non-zero and `key` must have exactly popcount(mask) values.
  RowRange ProbeIndex(PredicateId pred, ColumnMask mask,
                      const Tuple& key) const;

  /// Distinguished ProbeIndex result meaning "no usable index — scan the
  /// whole relation and post-filter".
  static RowRange ScanAllMarker() { return RowRange{nullptr, 0, true}; }

  /// Hot-path join funnel: invokes `fn(row)` for each stored tuple of
  /// `pred` that can match the bound-column signature — the probed index
  /// subset when one is available, the full relation otherwise (mask 0,
  /// or the sealed-degraded scan-all path). `row` is backend-native
  /// (const Tuple& or RowRef) so `fn` must be generic; it returns false
  /// to stop, and then ForEachCandidate returns false.
  ///
  /// The scan is *snapshot-bounded*: only tuples stored when the scan
  /// started are visited, even though `fn` may insert into the same
  /// relation while the scan is in flight. Bucket iteration indexes
  /// through the stable vector object (bucket nodes never move in their
  /// unordered_map); sorted ranges are frozen permutation slices that
  /// inserts never touch (re-sorting happens only at the next seal).
  template <typename Fn>
  bool ForEachCandidate(PredicateId pred, ColumnMask mask, const Tuple& key,
                        Fn&& fn) const {
    auto it = relations_.find(pred);
    if (it == relations_.end()) return true;
    const Relation& rel = it->second;
    const bool columnar = backend_ == StorageBackend::kColumnar;
    if (mask != 0) {
      ProbeOutcome outcome = ProbeInternal(rel, mask, key);
      switch (outcome.kind) {
        case ProbeOutcome::kNone:
          return true;
        case ProbeOutcome::kBucket: {
          const std::vector<RowId>& bucket = *outcome.bucket;
          const size_t n = bucket.size();
          for (size_t i = 0; i < n; ++i) {
            if (columnar) {
              if (!fn(RowRef(&rel.store, bucket[i]))) return false;
            } else {
              if (!fn(rel.tuples[bucket[i]])) return false;
            }
          }
          return true;
        }
        case ProbeOutcome::kRange: {
          // Columnar-only: a frozen slice of the sorted permutation.
          for (size_t i = 0; i < outcome.count; ++i) {
            if (!fn(RowRef(&rel.store, outcome.rows[i]))) return false;
          }
          return true;
        }
        case ProbeOutcome::kScanAll:
          break;  // Degrade to the full scan below.
      }
    }
    if (columnar) {
      const RowId n = rel.store.size();
      for (RowId row = 0; row < n; ++row) {
        if (!fn(RowRef(&rel.store, row))) return false;
      }
    } else {
      const size_t n = rel.tuples.size();
      for (size_t i = 0; i < n; ++i) {
        if (!fn(rel.tuples[i])) return false;
      }
    }
    return true;
  }

  /// Eagerly registers (and on the unsealed hash path, catches up) the
  /// index for `(pred, mask)`. A no-op when the relation is absent. The
  /// engines hoist every join signature through this before sealing; on
  /// a sorted-index database registration is enough — the seal itself
  /// builds the sorted permutation.
  void PrepareIndex(PredicateId pred, ColumnMask mask) const;

  /// Seals the database for concurrent read-only probing: every
  /// registered column index is brought up to date — sorted permutations
  /// rebuilt where enabled (O(1) when the relation is unchanged since
  /// they were last sorted), hash buckets extended to the full relation
  /// otherwise — and until UnsealIndexes() every probe is strictly
  /// read-only. A sealed probe for a signature with no up-to-date index
  /// returns ScanAllMarker() instead of lazily building one. Mutating a
  /// sealed database through the typed Insert/Retract/ClearRelation
  /// paths drops the seal (a new epoch begins); doing so with readers
  /// still probing is a caller bug.
  void SealIndexes() const;
  void UnsealIndexes() const { sealed_ = false; }
  bool sealed() const { return sealed_; }

  /// Opts this database into sort-on-seal permutation indexes (columnar
  /// backend only; a no-op otherwise). Off by default because the
  /// engines' short-lived delta/ext databases reseal every fixpoint
  /// round — sorting those would be O(n log n) per round for indexes the
  /// incremental hash extension serves at O(new rows). The long-lived,
  /// read-mostly bases (the engine-owned seal in ComputeModel, the
  /// server's epoch base) enable it. One-way and logically const: an
  /// index-strategy hint, not data.
  void EnableSortedIndexes() const { sorted_on_seal_ = true; }
  bool sorted_indexes_enabled() const { return sorted_on_seal_; }

  /// Number of distinct (predicate, column-mask) indexes built so far
  /// (hash builds and sorted sorts both count), and the number of
  /// ProbeIndex calls served. Feed EngineStats.
  int64_t index_builds() const {
    return index_builds_.load(std::memory_order_relaxed);
  }
  int64_t index_probes() const {
    return index_probes_.load(std::memory_order_relaxed);
  }

  /// Probes answered from a sorted permutation range, total rows those
  /// ranges contained, and microseconds spent sorting permutations at
  /// seal time. Feed the PR 7 EngineStats counters.
  int64_t sorted_probes() const {
    return sorted_probes_.load(std::memory_order_relaxed);
  }
  int64_t merge_join_rows() const {
    return merge_join_rows_.load(std::memory_order_relaxed);
  }
  int64_t index_sort_micros() const {
    return index_sort_micros_.load(std::memory_order_relaxed);
  }

  /// Exact bytes held by columnar arenas (column vectors, dedup tables,
  /// sorted permutations). Zero on the reference-hash backend. O(#relations).
  int64_t ArenaBytes() const;

  /// Number of tuples of `pred`.
  int CountFor(PredicateId pred) const;

  /// Invokes `fn` for every fact in the database.
  void ForEach(const std::function<void(const Fact&)>& fn) const;

  /// Every constant appearing in some tuple. Part of dom(R, DB). Kept
  /// exact under retraction by per-constant reference counts: a constant
  /// leaves the set when its last occurrence is retracted.
  const std::unordered_set<ConstId>& constants() const { return constants_; }

  /// Predicates that have at least one tuple.
  std::vector<PredicateId> NonEmptyPredicates() const;

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  /// Appends a backend-neutral binary snapshot of every non-empty
  /// relation: per relation (ascending PredicateId, so the bytes are
  /// deterministic) the predicate id, arity, row count, then the rows in
  /// insertion order as raw little-endian ConstIds. Symbol *names* are
  /// not included — the checkpoint persists the SymbolTable alongside so
  /// the dense ids resolve identically on load. Backs the durability
  /// layer's checkpoint dump (DESIGN.md "Durability & recovery").
  void SerializeRelations(std::string* out) const;

  /// Rebuilds relations from SerializeRelations bytes into this database
  /// (which must be empty). Every predicate id must already be interned
  /// in the shared SymbolTable with a matching arity; rows are inserted
  /// in dump order, so iteration order — and therefore every downstream
  /// engine artifact — is identical to the dumped database's.
  Status DeserializeRelations(std::string_view bytes);

  /// Heap bytes held by tuple storage and column indexes — exact arena
  /// bytes on the columnar backend, the ApproxFactBytes estimate on the
  /// reference one. Maintained incrementally on every insert and index
  /// build, so reading it is O(1) — the memory-budget enforcement in
  /// QueryGuard reads it at metering frequency.
  int64_t ApproxBytes() const { return approx_bytes_; }

  const SymbolTable& symbols() const { return *symbols_; }
  SymbolTable* mutable_symbols() { return symbols_.get(); }
  const std::shared_ptr<SymbolTable>& symbols_ptr() const { return symbols_; }

  /// Global invalidation epoch for cursor binding caches (see Scan):
  /// bumped by any operation, on any database, that can dangle a cached
  /// Relation or ColumnIndex pointer — relation erasure, index drops,
  /// whole-map destruction or replacement. Cursors snapshot it at bind
  /// time; bumps are rare next to probes, so the coarse process-wide
  /// granularity only costs an occasional rebind.
  static uint64_t CursorEpoch() {
    return cursor_epoch_.load(std::memory_order_acquire);
  }
  static void BumpCursorEpoch() {
    cursor_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  /// One per-mask access path. Unsealed service comes from the lazily
  /// extended hash buckets covering rows [0, built_upto). On sorted-index
  /// databases the seal replaces them with `perm`: every row id, ordered
  /// by the masked columns and then by row id (so equal-key runs ascend
  /// in insertion order — the same visit order buckets give). `perm` is
  /// valid iff sorted_version == the relation's version.
  struct ColumnIndex {
    std::unordered_map<Tuple, std::vector<RowId>, TupleHash> buckets;
    size_t built_upto = 0;
    std::vector<RowId> perm;
    /// Masked column values of perm[i], row-major with stride key_width:
    /// the binary search runs over this flat array with no perm->column
    /// indirection, so each probe step is one contiguous load.
    std::vector<ConstId> keys;
    int key_width = 0;
    /// Single-column dense-domain acceleration (CSR offsets): when the
    /// key domain [key_min, key_min + starts.size() - 2] is dense —
    /// interned ConstIds usually are — starts[k - key_min] and the next
    /// entry bound the key's run in perm, making point probes O(1)
    /// instead of a binary search. Empty when unbuilt or too sparse.
    std::vector<uint32_t> starts;
    ConstId key_min = 0;
    uint64_t sorted_version = 0;
  };

  struct Relation {
    explicit Relation(int arity) : store(arity) {}
    ColumnStore store;                           // kColumnar rows.
    std::vector<Tuple> tuples;                   // kReferenceHash rows.
    std::unordered_set<Tuple, TupleHash> dedup;  // kReferenceHash membership.
    // Generalized access paths, registered/built on demand per mask.
    mutable std::unordered_map<ColumnMask, ColumnIndex> column_indexes;
    // Bumped on every mutation; sorted permutations cache it so an
    // unchanged relation re-seals without re-sorting.
    uint64_t version = 1;
  };

  /// How ProbeInternal answered; consumed by ForEachCandidate and
  /// repackaged as a RowRange by the public ProbeIndex.
  struct ProbeOutcome {
    enum Kind { kNone, kBucket, kRange, kScanAll };
    Kind kind = kNone;
    const std::vector<RowId>* bucket = nullptr;  // kBucket
    const RowId* rows = nullptr;                 // kRange
    size_t count = 0;                            // kRange
  };

  size_t RelationSize(const Relation& rel) const {
    return backend_ == StorageBackend::kColumnar
               ? static_cast<size_t>(rel.store.size())
               : rel.tuples.size();
  }

  /// `ci_cache`, when non-null, caches the mask's ColumnIndex slot
  /// across repeated probes of the same (relation, mask): a cached
  /// non-null pointer skips the index-map lookup (validity — sorted
  /// version, built range — is still rechecked every call, and the slot
  /// itself is pointer-stable until an epoch-bumping drop). Callers own
  /// invalidation via CursorEpoch.
  ProbeOutcome ProbeInternal(const Relation& rel, ColumnMask mask,
                             const Tuple& key,
                             const ColumnIndex** ci_cache = nullptr) const;

  /// Binary-searches `ci.perm` for the rows matching `key` under `mask`.
  ProbeOutcome SortedLookup(const Relation& rel, const ColumnIndex& ci,
                            ColumnMask mask, const Tuple& key) const;

  /// Builds or extends the hash-bucket index for `mask` over `rel`. Must
  /// not be called while sealed.
  ColumnIndex& ExtendIndex(const Relation& rel, ColumnMask mask) const;

  /// (Re)sorts the permutation index for `mask`; O(1) when the relation
  /// is unchanged since the last sort. Drops the mask's hash buckets —
  /// the sorted permutation supersedes them.
  void SortIndex(const Relation& rel, ColumnMask mask, ColumnIndex& ci) const;

  /// Refcount bookkeeping behind constants(): every tuple position holds
  /// one reference to its constant.
  void AddConstantRefs(const Tuple& args);
  void DropConstantRefs(const Tuple& args);

  /// Discards every column index of `rel` (with byte accounting): stored
  /// row ids are invalidated by retraction, so the indexes are rebuilt
  /// lazily from scratch on the next unsealed probe.
  void DropRelationIndexes(const Relation& rel);

  /// Bytes currently charged to `ci` in approx_bytes_.
  static int64_t IndexBytes(const ColumnIndex& ci) {
    return kApproxIndexEntryBytes * static_cast<int64_t>(ci.built_upto) +
           static_cast<int64_t>(ci.perm.capacity()) * sizeof(RowId) +
           static_cast<int64_t>(ci.keys.capacity()) * sizeof(ConstId) +
           static_cast<int64_t>(ci.starts.capacity()) * sizeof(uint32_t);
  }

  /// Relation storage. The wrapper bumps the cursor epoch whenever the
  /// map's nodes are about to be destroyed wholesale — destruction or
  /// assignment-over — so Scan binding caches never dangle; node-level
  /// erasure and index drops bump at their call sites. Move
  /// construction transfers nodes, so cached pointers stay valid.
  struct RelationMap : std::unordered_map<PredicateId, Relation> {
    RelationMap() = default;
    RelationMap(const RelationMap&) = default;
    RelationMap(RelationMap&&) = default;
    RelationMap& operator=(const RelationMap& other) {
      if (!empty()) BumpCursorEpoch();
      unordered_map::operator=(other);
      return *this;
    }
    RelationMap& operator=(RelationMap&& other) {
      if (!empty()) BumpCursorEpoch();
      unordered_map::operator=(std::move(other));
      return *this;
    }
    ~RelationMap() {
      if (!empty()) BumpCursorEpoch();
    }
  };

  static inline std::atomic<uint64_t> cursor_epoch_{1};

  std::shared_ptr<SymbolTable> symbols_;
  StorageBackend backend_;
  RelationMap relations_;
  std::unordered_set<ConstId> constants_;
  std::unordered_map<ConstId, int64_t> constant_refs_;
  int64_t size_ = 0;
  /// Incremental ApproxBytes total. Mutable because lazy index builds
  /// (const paths) grow it; never touched while sealed, so no atomics.
  mutable int64_t approx_bytes_ = 0;
  /// While true, probes never mutate index state (see SealIndexes).
  /// Flipped only between parallel phases, never concurrently with reads.
  mutable bool sealed_ = false;
  /// See EnableSortedIndexes().
  mutable bool sorted_on_seal_ = false;
  /// Counters are atomic so concurrent sealed probes stay exact (plain
  /// mutable increments in a const method would be a data race).
  mutable std::atomic<int64_t> index_builds_{0};
  mutable std::atomic<int64_t> index_probes_{0};
  mutable std::atomic<int64_t> sorted_probes_{0};
  mutable std::atomic<int64_t> merge_join_rows_{0};
  mutable std::atomic<int64_t> index_sort_micros_{0};

 public:
  /// Resumable cursor over exactly the candidate set ForEachCandidate
  /// would visit — same probe (and probe counters), same order, same
  /// snapshot bound — for callers that interleave other work between
  /// rows (the bytecode executor's backtracking join). Column access is
  /// per-cell, so no Tuple is materialized on the columnar backend.
  class Scan {
   public:
    Scan() = default;

    /// Opens the cursor. `mask`/`key` follow ProbeIndex's contract; mask 0
    /// scans the whole relation. Snapshot-bounded like ForEachCandidate:
    /// rows inserted after Open are not visited.
    ///
    /// Inner-loop joins re-open the cursor once per outer row, so the
    /// (db, pred) -> relation and mask -> index resolutions are cached
    /// across opens and revalidated against the global CursorEpoch —
    /// two hash lookups per row collapse to pointer reuse. An absent
    /// relation is re-probed every open (it can appear mid-fixpoint).
    void Open(const Database& db, PredicateId pred, ColumnMask mask,
              const Tuple& key) {
      pos_ = 0;
      count_ = 0;
      index_served_ = false;
      const uint64_t epoch = Database::CursorEpoch();
      if (&db != bound_db_ || pred != bound_pred_ ||
          epoch != bound_epoch_ || bound_rel_ == nullptr) {
        bound_db_ = &db;
        bound_pred_ = pred;
        bound_epoch_ = epoch;
        bound_mask_ = 0;
        bound_ci_ = nullptr;
        auto it = db.relations_.find(pred);
        bound_rel_ = it == db.relations_.end() ? nullptr : &it->second;
        columnar_ = db.backend_ == StorageBackend::kColumnar;
      }
      rel_ = bound_rel_;
      if (rel_ == nullptr) return;
      mode_ = Mode::kFull;
      if (mask != 0) {
        if (mask != bound_mask_) {
          bound_mask_ = mask;
          bound_ci_ = nullptr;
        }
        ProbeOutcome outcome =
            db.ProbeInternal(*rel_, mask, key, &bound_ci_);
        switch (outcome.kind) {
          case ProbeOutcome::kNone:
            rel_ = nullptr;
            return;
          case ProbeOutcome::kBucket:
            mode_ = Mode::kBucket;
            bucket_ = outcome.bucket;
            count_ = bucket_->size();
            index_served_ = true;
            return;
          case ProbeOutcome::kRange:
            mode_ = Mode::kRange;
            rows_ = outcome.rows;
            count_ = outcome.count;
            index_served_ = true;
            return;
          case ProbeOutcome::kScanAll:
            break;  // Degrade to the full scan below.
        }
      }
      count_ = db.RelationSize(*rel_);
    }

    bool AtEnd() const { return pos_ >= count_; }
    void Next() { ++pos_; }

    /// True when the rows come from an index keyed on the probe mask, so
    /// masked columns are guaranteed to equal the key already.
    bool index_served() const { return index_served_; }

    /// Storage row id at the cursor position, resolved once per row so
    /// column reads skip the mode dispatch.
    RowId CurrentId() const {
      switch (mode_) {
        case Mode::kBucket:
          return (*bucket_)[pos_];
        case Mode::kRange:
          return rows_[pos_];
        default:
          return static_cast<RowId>(pos_);
      }
    }

    ConstId Col(size_t c) const {
      const RowId row = CurrentId();
      return columnar_ ? rel_->store.At(row, c) : rel_->tuples[row][c];
    }

    /// Lightweight row view over the current cursor position (size() +
    /// operator[]), for HashRowLike / Contains / TupleVisible. Pins the
    /// row id at construction: one mode dispatch per row, direct column
    /// loads after.
    struct Row {
      const Relation* rel;
      RowId row;
      bool columnar;
      size_t width;
      size_t size() const { return width; }
      ConstId operator[](size_t i) const {
        return columnar ? rel->store.At(row, i) : rel->tuples[row][i];
      }
    };
    Row CurrentRow(size_t arity) const {
      return Row{rel_, CurrentId(), columnar_, arity};
    }

   private:
    enum class Mode : uint8_t { kFull, kBucket, kRange };
    const Relation* rel_ = nullptr;
    const std::vector<RowId>* bucket_ = nullptr;  // kBucket
    const RowId* rows_ = nullptr;                 // kRange
    size_t pos_ = 0;
    size_t count_ = 0;
    Mode mode_ = Mode::kFull;
    bool columnar_ = false;
    bool index_served_ = false;
    // Binding cache, revalidated against CursorEpoch on every Open.
    const Database* bound_db_ = nullptr;
    const Relation* bound_rel_ = nullptr;
    const ColumnIndex* bound_ci_ = nullptr;
    uint64_t bound_epoch_ = 0;
    PredicateId bound_pred_ = -1;
    ColumnMask bound_mask_ = 0;
  };
};

}  // namespace hypo

#endif  // HYPO_DB_DATABASE_H_
