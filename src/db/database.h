#ifndef HYPO_DB_DATABASE_H_
#define HYPO_DB_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/symbol_table.h"
#include "base/status.h"
#include "db/fact.h"

namespace hypo {

/// Bound-column signature for generalized access paths: bit i set means
/// column i carries a bound value in index probes. Masks cover the first
/// 32 columns; columns beyond that never participate in indexes (callers
/// post-filter with MatchTuple anyway).
using ColumnMask = uint32_t;

constexpr int kMaxIndexedColumns = 32;

/// Rough heap footprint of one stored ground fact of the given arity: the
/// tuple appears twice (insertion-order vector + membership hash set) plus
/// hash-node overhead. Shared by Database's own running total and the
/// engines' live budget tracking so both speak the same scale.
inline int64_t ApproxFactBytes(size_t arity) {
  return 2 * static_cast<int64_t>(sizeof(Tuple) +
                                  arity * sizeof(ConstId)) +
         32;
}

/// Rough per-position footprint of a column-index entry (bucket slot plus
/// amortized bucket/key overhead).
constexpr int64_t kApproxIndexEntryBytes = 16;

/// A set of ground atomic formulas, organized per predicate.
///
/// This is both the extensional database of Definition 3 and the storage
/// used for derived models inside the engines. Tuples are stored per
/// predicate in insertion order (for deterministic iteration) with a hash
/// set for O(1) membership. Mostly append-only; Retract/ClearRelation
/// support the long-lived server's epoch mutations and invalidate the
/// affected relation's column indexes (rebuilt lazily on the next probe).
class Database {
 public:
  explicit Database(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {}

  /// Databases are heavyweight; copying must be explicit via Clone().
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  Database Clone() const;

  /// Inserts `fact`. Returns true if it was not already present.
  /// The fact's arity must match the predicate's registered arity.
  /// Inserting into a sealed database auto-unseals it (the mutation starts
  /// a new epoch; see SealIndexes) — callers coordinating concurrent
  /// readers must quiesce them first, as src/server does.
  bool Insert(const Fact& fact);

  /// Convenience: interns the predicate (with arity = args.size()) and the
  /// constants, then inserts. Fails on arity mismatch. Unlike the typed
  /// overload this path REJECTS a sealed database with FailedPrecondition:
  /// it is the user-facing loader entry point, where an insert racing a
  /// sealed read phase is a caller bug worth surfacing, not an epoch turn.
  Status Insert(std::string_view predicate,
                const std::vector<std::string_view>& args);

  /// Removes `fact` if present; returns true when something was removed.
  /// Order-preserving for the remaining tuples. Drops the predicate's
  /// column indexes (stored positions shift) and auto-unseals, exactly
  /// like Insert. O(|relation|) — retraction is an epoch-boundary
  /// operation, not a join-loop one.
  bool Retract(const Fact& fact);

  /// Removes every tuple of `pred`; returns how many were removed. Used
  /// by the engines' incremental repair to rebuild one stratum's derived
  /// relation in place. Auto-unseals when it removes anything.
  int64_t ClearRelation(PredicateId pred);

  bool Contains(const Fact& fact) const;

  /// Same membership test without materializing a Fact (hot-path overload
  /// for candidate filtering in join loops).
  bool Contains(PredicateId pred, const Tuple& args) const;

  /// All tuples of `pred`, in insertion order. Empty if none.
  const std::vector<Tuple>& TuplesFor(PredicateId pred) const;

  /// Positions (into TuplesFor) of the tuples of `pred` whose first
  /// argument is `first`, or null when the relation is absent/empty for
  /// that key. The classic Datalog access path: premise matching uses it
  /// whenever the first argument is already bound. Now a thin wrapper
  /// over the generalized ProbeIndex with mask = 0b1.
  const std::vector<int>* TuplesWithFirstArg(PredicateId pred,
                                             ConstId first) const;

  /// Generalized access path: positions (into TuplesFor) of the tuples of
  /// `pred` whose columns selected by `mask` equal `key` (the bound
  /// values, in increasing column order), or null when no tuple matches.
  ///
  /// The hash index for a (predicate, column-mask) pair is built lazily on
  /// first probe and extended incrementally as the relation grows — safe
  /// because relations are append-only — so repeated probes cost
  /// O(matching bucket), and a signature probed once amortizes to one
  /// relation scan. `mask` must be non-zero and `key` must have exactly
  /// popcount(mask) values.
  const std::vector<int>* ProbeIndex(PredicateId pred, ColumnMask mask,
                                     const Tuple& key) const;

  /// Eagerly builds (or catches up) the hash index for `(pred, mask)`.
  /// A no-op when the relation is absent. Used by the parallel fixpoint
  /// to hoist every index build out of the join loops before sealing.
  void PrepareIndex(PredicateId pred, ColumnMask mask) const;

  /// Seals the database for concurrent read-only probing: every existing
  /// column index is extended to cover the full relation, and until
  /// UnsealIndexes() every ProbeIndex call is strictly read-only. A probe
  /// for a signature that has no up-to-date index returns ScanAllMarker()
  /// instead of lazily building one (callers fall back to a full relation
  /// scan — correct, just unindexed). Mutating a sealed database through
  /// the typed Insert/Retract/ClearRelation paths drops the seal (a new
  /// epoch begins); doing so with readers still probing is a caller bug.
  void SealIndexes() const;
  void UnsealIndexes() const { sealed_ = false; }
  bool sealed() const { return sealed_; }

  /// Distinguished ProbeIndex result meaning "no usable index — scan the
  /// whole relation and post-filter". Never a real bucket.
  static const std::vector<int>* ScanAllMarker();

  /// Number of distinct (predicate, column-mask) hash indexes built so
  /// far, and the number of ProbeIndex calls served. Feed EngineStats.
  int64_t index_builds() const {
    return index_builds_.load(std::memory_order_relaxed);
  }
  int64_t index_probes() const {
    return index_probes_.load(std::memory_order_relaxed);
  }

  /// Number of tuples of `pred`.
  int CountFor(PredicateId pred) const {
    return static_cast<int>(TuplesFor(pred).size());
  }

  /// Invokes `fn` for every fact in the database.
  void ForEach(const std::function<void(const Fact&)>& fn) const;

  /// Every constant appearing in some tuple. Part of dom(R, DB). Kept
  /// exact under retraction by per-constant reference counts: a constant
  /// leaves the set when its last occurrence is retracted.
  const std::unordered_set<ConstId>& constants() const { return constants_; }

  /// Predicates that have at least one tuple.
  std::vector<PredicateId> NonEmptyPredicates() const;

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  /// Approximate heap bytes held by tuples, membership sets, and column
  /// indexes. Maintained incrementally on every insert and index
  /// extension, so reading it is O(1) — the memory-budget enforcement in
  /// QueryGuard reads it at metering frequency.
  int64_t ApproxBytes() const { return approx_bytes_; }

  const SymbolTable& symbols() const { return *symbols_; }
  SymbolTable* mutable_symbols() { return symbols_.get(); }
  const std::shared_ptr<SymbolTable>& symbols_ptr() const { return symbols_; }

 private:
  /// One lazily built hash index over a bound-column signature. Buckets
  /// cover tuples[0..built_upto); probes extend them to the current end
  /// of the relation first. unordered_map node stability keeps bucket
  /// pointers handed to callers valid across later extensions.
  struct ColumnIndex {
    std::unordered_map<Tuple, std::vector<int>, TupleHash> buckets;
    size_t built_upto = 0;
  };

  struct Relation {
    std::vector<Tuple> tuples;
    std::unordered_set<Tuple, TupleHash> index;
    // Generalized access paths, built on demand per column mask.
    mutable std::unordered_map<ColumnMask, ColumnIndex> column_indexes;
  };

  /// Builds or extends the column index for `mask` over `rel`. Must not
  /// be called while sealed.
  ColumnIndex& ExtendIndex(const Relation& rel, ColumnMask mask) const;

  /// Refcount bookkeeping behind constants(): every tuple position holds
  /// one reference to its constant.
  void AddConstantRefs(const Tuple& args);
  void DropConstantRefs(const Tuple& args);

  /// Discards every column index of `rel` (with byte accounting): stored
  /// positions are invalidated by retraction, so the indexes are rebuilt
  /// lazily from scratch on the next unsealed probe.
  void DropRelationIndexes(const Relation& rel);

  std::shared_ptr<SymbolTable> symbols_;
  std::unordered_map<PredicateId, Relation> relations_;
  std::unordered_set<ConstId> constants_;
  std::unordered_map<ConstId, int64_t> constant_refs_;
  int64_t size_ = 0;
  /// Incremental ApproxBytes total. Mutable because lazy index builds
  /// (const paths) grow it; never touched while sealed, so no atomics.
  mutable int64_t approx_bytes_ = 0;
  /// While true, probes never mutate index state (see SealIndexes).
  /// Flipped only between parallel phases, never concurrently with reads.
  mutable bool sealed_ = false;
  /// Counters are atomic so concurrent sealed probes stay exact (plain
  /// mutable increments in a const method would be a data race).
  mutable std::atomic<int64_t> index_builds_{0};
  mutable std::atomic<int64_t> index_probes_{0};
};

}  // namespace hypo

#endif  // HYPO_DB_DATABASE_H_
