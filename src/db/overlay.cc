#include "db/overlay.h"

#include <algorithm>
#include <type_traits>

#include "base/logging.h"

namespace hypo {

// CanonicalKey uses -1 as the additions/masked separator, which is only
// collision-free while FactIds are non-negative int32s. The interned
// context path encodes the mask bit explicitly and has no such reliance,
// but the legacy key remains the validation oracle — keep it sound.
static_assert(std::is_same_v<FactId, int32_t>,
              "CanonicalKey's -1 separator assumes FactId == int32_t; "
              "update the separator encoding if FactId changes");

bool OverlayDatabase::Add(const Fact& fact) {
  FactId id = interner_->Intern(fact);
  if (masked_.count(id) > 0) {
    // Re-adding a hypothetically deleted fact: unmask it. A base fact
    // leaves the masked-base context element; an added fact re-enters
    // the visible-additions element set.
    masked_.erase(id);
    if (base_->Contains(fact)) {
      Transition(OpKind::kDidUnmask, id,
                 ContextInterner::MaskedElement(id), /*inserted=*/false);
    } else {
      Transition(OpKind::kDidUnmask, id,
                 ContextInterner::AddedElement(id), /*inserted=*/true);
    }
    return true;
  }
  if (Contains(fact)) return false;
  AddedRelation& rel = added_[fact.predicate];
  rel.index.insert(fact.args);
  rel.tuples.push_back(fact.args);
  // Mask indexes are NOT extended here: they catch up lazily on the next
  // AddedProbe, so un-probed signatures cost nothing per Add.
  added_order_.push_back(id);
  Transition(OpKind::kDidAdd, id, ContextInterner::AddedElement(id),
             /*inserted=*/true);
  return true;
}

bool OverlayDatabase::Delete(const Fact& fact) {
  if (!Contains(fact)) return false;  // Already absent: DB - {C} = DB.
  FactId id = interner_->Intern(fact);
  masked_.insert(id);
  // Masking an added fact removes its visible-additions element; masking
  // a base fact contributes a masked-base element. (A fact is never in
  // both stores: Add() refuses facts the base already contains.)
  auto it = added_.find(fact.predicate);
  bool is_added = it != added_.end() && it->second.index.count(fact.args) > 0;
  if (is_added) {
    Transition(OpKind::kDidMask, id, ContextInterner::AddedElement(id),
               /*inserted=*/false);
  } else {
    Transition(OpKind::kDidMask, id, ContextInterner::MaskedElement(id),
               /*inserted=*/true);
  }
  return true;
}

void OverlayDatabase::PopFrame() {
  HYPO_CHECK(!frames_.empty()) << "PopFrame without matching PushFrame";
  size_t target = frames_.back();
  frames_.pop_back();
  while (ops_.size() > target) {
    const Op op = ops_.back();
    ops_.pop_back();
    // Invert the recorded context transition (O(1) on revisited states).
    context_ = op.inserted ? contexts_.Erase(context_, op.elem)
                           : contexts_.Insert(context_, op.elem);
    switch (op.kind) {
      case OpKind::kDidAdd: {
        const Fact& fact = interner_->Get(op.id);
        AddedRelation& rel = added_[fact.predicate];
        HYPO_DCHECK(!rel.tuples.empty() && rel.tuples.back() == fact.args)
            << "overlay undo log out of sync";
        rel.index.erase(fact.args);
        rel.tuples.pop_back();
        // Trim any mask index that had caught up past the popped tuple
        // (built_upto never exceeds the pre-pop size, and ops are undone
        // one at a time, so "stale" here means exactly one entry over).
        for (auto& [mask, aidx] : rel.mask_indexes) {
          if (aidx.built_upto != rel.tuples.size() + 1) continue;
          auto bucket = aidx.buckets.find(MaskKey(fact.args, mask));
          HYPO_DCHECK(bucket != aidx.buckets.end() &&
                      !bucket->second.empty() &&
                      bucket->second.back() ==
                          static_cast<RowId>(rel.tuples.size()))
              << "overlay mask index out of sync";
          // pop_back only — never erase the (possibly empty) bucket node:
          // an in-flight scan may still hold a pointer to it.
          bucket->second.pop_back();
          aidx.built_upto = rel.tuples.size();
        }
        HYPO_DCHECK(!added_order_.empty() && added_order_.back() == op.id);
        added_order_.pop_back();
        break;
      }
      case OpKind::kDidMask:
        masked_.erase(op.id);
        break;
      case OpKind::kDidUnmask:
        masked_.insert(op.id);
        break;
    }
  }
}

const std::vector<Tuple>& OverlayDatabase::AddedTuplesFor(
    PredicateId pred) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  auto it = added_.find(pred);
  return it == added_.end() ? *kEmpty : it->second.tuples;
}

Tuple OverlayDatabase::MaskKey(const Tuple& args, ColumnMask mask) {
  Tuple key;
  const size_t limit = std::min<size_t>(
      args.size(), static_cast<size_t>(kMaxIndexedColumns));
  for (size_t c = 0; c < limit; ++c) {
    if (mask & (1u << c)) key.push_back(args[c]);
  }
  return key;
}

const std::vector<RowId>* OverlayDatabase::AddedProbe(PredicateId pred,
                                                      ColumnMask mask,
                                                      const Tuple& key) const {
  HYPO_DCHECK(mask != 0) << "added probe with no bound columns";
  auto it = added_.find(pred);
  if (it == added_.end()) return nullptr;
  const AddedRelation& rel = it->second;
  AddedIndex& aidx = rel.mask_indexes[mask];
  // Catch up on tuples added since the last probe of this signature.
  for (size_t pos = aidx.built_upto; pos < rel.tuples.size(); ++pos) {
    aidx.buckets[MaskKey(rel.tuples[pos], mask)].push_back(
        static_cast<RowId>(pos));
  }
  aidx.built_upto = rel.tuples.size();
  auto bucket = aidx.buckets.find(key);
  if (bucket == aidx.buckets.end() || bucket->second.empty()) return nullptr;
  return &bucket->second;
}

std::vector<FactId> OverlayDatabase::CanonicalKey() const {
  std::vector<FactId> key;
  key.reserve(added_order_.size());
  for (FactId id : added_order_) {
    HYPO_DCHECK(id >= 0) << "FactIds must be non-negative (separator is -1)";
    if (masked_.count(id) == 0) key.push_back(id);
  }
  std::sort(key.begin(), key.end());
  if (!masked_.empty()) {
    std::vector<FactId> masked_base;
    for (FactId id : masked_) {
      HYPO_DCHECK(id >= 0) << "FactIds must be non-negative (separator is -1)";
      if (base_->Contains(interner_->Get(id))) masked_base.push_back(id);
    }
    if (!masked_base.empty()) {
      std::sort(masked_base.begin(), masked_base.end());
      key.push_back(-1);  // Separator; FactIds are non-negative.
      key.insert(key.end(), masked_base.begin(), masked_base.end());
    }
  }
  return key;
}

bool OverlayDatabase::DebugContextConsistent() const {
  // Decode the interned element set back into the CanonicalKey layout.
  std::vector<FactId> from_context;
  std::vector<FactId> masked_base;
  for (int64_t elem : contexts_.Elements(context_)) {
    FactId id = static_cast<FactId>(elem >> 1);
    if ((elem & 1) == 0) {
      from_context.push_back(id);
    } else {
      masked_base.push_back(id);
    }
  }
  std::sort(from_context.begin(), from_context.end());
  std::sort(masked_base.begin(), masked_base.end());
  if (!masked_base.empty()) {
    from_context.push_back(-1);
    from_context.insert(from_context.end(), masked_base.begin(),
                        masked_base.end());
  }
  return from_context == CanonicalKey();
}

}  // namespace hypo
