#include "db/overlay.h"

#include <algorithm>

#include "base/logging.h"

namespace hypo {

bool OverlayDatabase::Add(const Fact& fact) {
  FactId id = interner_->Intern(fact);
  if (masked_.count(id) > 0) {
    // Re-adding a hypothetically deleted fact: unmask it.
    masked_.erase(id);
    ops_.push_back(Op{OpKind::kDidUnmask, id});
    return true;
  }
  if (Contains(fact)) return false;
  AddedRelation& rel = added_[fact.predicate];
  rel.index.insert(fact.args);
  rel.tuples.push_back(fact.args);
  added_order_.push_back(id);
  ops_.push_back(Op{OpKind::kDidAdd, id});
  return true;
}

bool OverlayDatabase::Delete(const Fact& fact) {
  if (!Contains(fact)) return false;  // Already absent: DB - {C} = DB.
  FactId id = interner_->Intern(fact);
  masked_.insert(id);
  ops_.push_back(Op{OpKind::kDidMask, id});
  return true;
}

void OverlayDatabase::PopFrame() {
  HYPO_CHECK(!frames_.empty()) << "PopFrame without matching PushFrame";
  size_t target = frames_.back();
  frames_.pop_back();
  while (ops_.size() > target) {
    const Op op = ops_.back();
    ops_.pop_back();
    switch (op.kind) {
      case OpKind::kDidAdd: {
        const Fact& fact = interner_->Get(op.id);
        AddedRelation& rel = added_[fact.predicate];
        HYPO_DCHECK(!rel.tuples.empty() && rel.tuples.back() == fact.args)
            << "overlay undo log out of sync";
        rel.index.erase(fact.args);
        rel.tuples.pop_back();
        HYPO_DCHECK(!added_order_.empty() && added_order_.back() == op.id);
        added_order_.pop_back();
        break;
      }
      case OpKind::kDidMask:
        masked_.erase(op.id);
        break;
      case OpKind::kDidUnmask:
        masked_.insert(op.id);
        break;
    }
  }
}

const std::vector<Tuple>& OverlayDatabase::AddedTuplesFor(
    PredicateId pred) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  auto it = added_.find(pred);
  return it == added_.end() ? *kEmpty : it->second.tuples;
}

std::vector<FactId> OverlayDatabase::CanonicalKey() const {
  std::vector<FactId> key;
  key.reserve(added_order_.size());
  for (FactId id : added_order_) {
    if (masked_.count(id) == 0) key.push_back(id);
  }
  std::sort(key.begin(), key.end());
  if (!masked_.empty()) {
    std::vector<FactId> masked_base;
    for (FactId id : masked_) {
      if (base_->Contains(interner_->Get(id))) masked_base.push_back(id);
    }
    if (!masked_base.empty()) {
      std::sort(masked_base.begin(), masked_base.end());
      key.push_back(-1);  // Separator; FactIds are non-negative.
      key.insert(key.end(), masked_base.begin(), masked_base.end());
    }
  }
  return key;
}

}  // namespace hypo
