#ifndef HYPO_WORKLOAD_RANDOM_PROGRAMS_H_
#define HYPO_WORKLOAD_RANDOM_PROGRAMS_H_

#include "base/random.h"
#include "queries/fixture.h"

namespace hypo {

/// Knobs for the random-program generator used by the differential tests
/// (all three engines must agree) and the fuzz-style robustness tests.
struct RandomProgramOptions {
  int num_constants = 3;
  int num_edb_predicates = 3;   // e0, e1, ... (facts only).
  int num_idb_predicates = 4;   // p0, p1, ... (defined by rules).
  int max_arity = 2;            // Arities drawn from 0..max_arity.
  int num_rules = 8;
  int max_premises = 3;
  double negation_probability = 0.25;
  double hypothetical_probability = 0.3;
  double fact_probability = 0.4;  // Per possible EDB fact.

  /// Probability that a hypothetical premise also carries a [del: ...]
  /// group (an EDB atom). Deletions are TabledEngine-only, so differential
  /// tests leave this at 0 except when exercising that engine alone.
  double deletion_probability = 0.0;
};

/// Generates a random hypothetical rulebase with *stratified negation by
/// construction*: each IDB predicate gets a level, positive and
/// hypothetical premises refer to levels <= the head's, negated premises
/// strictly below. Hypothetical additions insert EDB atoms. The result is
/// always accepted by the general engines; it may or may not be linearly
/// stratifiable (the differential test uses the StratifiedProver only
/// when it is).
ProgramFixture MakeRandomProgram(const RandomProgramOptions& options,
                                 Random* rng);

/// Returns a copy of `db` with constants renamed by `permutation`
/// (permutation[i] = new constant id for constant id i, over the ids in
/// db's SymbolTable). Used for genericity (§6.1 consistency) testing.
Database PermuteDatabaseConstants(const Database& db,
                                  const std::vector<ConstId>& permutation);

}  // namespace hypo

#endif  // HYPO_WORKLOAD_RANDOM_PROGRAMS_H_
