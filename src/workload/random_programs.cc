#include "workload/random_programs.h"

#include <string>
#include <vector>

#include "ast/rule_builder.h"
#include "base/logging.h"

namespace hypo {

namespace {

struct PredicatePool {
  std::vector<std::string> names;
  std::vector<int> arities;
  std::vector<int> levels;  // 0 for EDB; 1.. for IDB.
};

std::string ConstName(int i) { return "c" + std::to_string(i); }

/// Builds an atom over `pred` whose arguments are randomly drawn from the
/// rule's first few variables and the constant pool.
Atom RandomAtom(RuleBuilder* b, const PredicatePool& pool, int pred,
                const RandomProgramOptions& options, Random* rng) {
  std::vector<Term> args;
  for (int i = 0; i < pool.arities[pred]; ++i) {
    if (rng->Bernoulli(0.7)) {
      args.push_back(
          b->Var("V" + std::to_string(rng->Uniform(3))));
    } else {
      args.push_back(b->C(ConstName(
          static_cast<int>(rng->Uniform(options.num_constants)))));
    }
  }
  return b->A(pool.names[pred], std::move(args));
}

}  // namespace

ProgramFixture MakeRandomProgram(const RandomProgramOptions& options,
                                 Random* rng) {
  ProgramFixture fixture;
  SymbolTable* symbols = fixture.symbols.get();

  PredicatePool pool;
  for (int i = 0; i < options.num_edb_predicates; ++i) {
    pool.names.push_back("e" + std::to_string(i));
    pool.arities.push_back(
        static_cast<int>(rng->Uniform(options.max_arity + 1)));
    pool.levels.push_back(0);
  }
  int first_idb = options.num_edb_predicates;
  for (int i = 0; i < options.num_idb_predicates; ++i) {
    pool.names.push_back("p" + std::to_string(i));
    pool.arities.push_back(
        static_cast<int>(rng->Uniform(options.max_arity + 1)));
    // Levels 1..3: enough to exercise multiple negation strata.
    pool.levels.push_back(1 + static_cast<int>(rng->Uniform(3)));
  }
  const int num_preds = static_cast<int>(pool.names.size());

  for (int r = 0; r < options.num_rules; ++r) {
    int head =
        first_idb + static_cast<int>(rng->Uniform(options.num_idb_predicates));
    RuleBuilder b(symbols);
    b.Head(RandomAtom(&b, pool, head, options, rng));
    int premises = 1 + static_cast<int>(rng->Uniform(options.max_premises));
    for (int p = 0; p < premises; ++p) {
      if (rng->Bernoulli(options.negation_probability)) {
        // Negated premise: strictly lower level.
        std::vector<int> candidates;
        for (int q = 0; q < num_preds; ++q) {
          if (pool.levels[q] < pool.levels[head]) candidates.push_back(q);
        }
        if (!candidates.empty()) {
          int q = candidates[rng->Uniform(candidates.size())];
          b.Negated(RandomAtom(&b, pool, q, options, rng));
          continue;
        }
      }
      // Positive or hypothetical premise: level <= head's.
      std::vector<int> candidates;
      for (int q = 0; q < num_preds; ++q) {
        if (pool.levels[q] <= pool.levels[head]) candidates.push_back(q);
      }
      HYPO_CHECK(!candidates.empty());
      int q = candidates[rng->Uniform(candidates.size())];
      Atom atom = RandomAtom(&b, pool, q, options, rng);
      if (rng->Bernoulli(options.hypothetical_probability)) {
        // Additions insert EDB atoms so the state lattice stays small.
        int added = static_cast<int>(rng->Uniform(options.num_edb_predicates));
        std::vector<Atom> additions = {RandomAtom(&b, pool, added, options, rng)};
        std::vector<Atom> deletions;
        if (rng->Bernoulli(options.deletion_probability)) {
          // Deletions also target EDB atoms (TabledEngine-only programs).
          int deleted =
              static_cast<int>(rng->Uniform(options.num_edb_predicates));
          deletions.push_back(RandomAtom(&b, pool, deleted, options, rng));
        }
        b.Hypothetical(std::move(atom), std::move(additions),
                       std::move(deletions));
      } else {
        b.Positive(std::move(atom));
      }
    }
    StatusOr<Rule> rule = std::move(b).Build();
    HYPO_CHECK(rule.ok()) << rule.status();
    fixture.rules.AddRule(std::move(rule).value());
  }

  // EDB facts.
  for (int e = 0; e < options.num_edb_predicates; ++e) {
    int arity = pool.arities[e];
    // Enumerate all tuples when small; sample otherwise.
    int64_t space = 1;
    for (int i = 0; i < arity; ++i) space *= options.num_constants;
    for (int64_t t = 0; t < space; ++t) {
      if (!rng->Bernoulli(options.fact_probability)) continue;
      Fact fact;
      StatusOr<PredicateId> pred =
          symbols->InternPredicate(pool.names[e], arity);
      HYPO_CHECK(pred.ok());
      fact.predicate = *pred;
      int64_t rest = t;
      for (int i = 0; i < arity; ++i) {
        fact.args.push_back(symbols->InternConst(
            ConstName(static_cast<int>(rest % options.num_constants))));
        rest /= options.num_constants;
      }
      fixture.db.Insert(fact);
    }
  }
  // Make sure every constant exists even if no fact mentions it.
  for (int i = 0; i < options.num_constants; ++i) {
    symbols->InternConst(ConstName(i));
  }
  return fixture;
}

Database PermuteDatabaseConstants(const Database& db,
                                  const std::vector<ConstId>& permutation) {
  Database out(db.symbols_ptr());
  db.ForEach([&](const Fact& fact) {
    Fact renamed;
    renamed.predicate = fact.predicate;
    for (ConstId c : fact.args) {
      HYPO_CHECK(c >= 0 && c < static_cast<ConstId>(permutation.size()));
      renamed.args.push_back(permutation[c]);
    }
    out.Insert(renamed);
  });
  return out;
}

}  // namespace hypo
