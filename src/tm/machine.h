#ifndef HYPO_TM_MACHINE_H_
#define HYPO_TM_MACHINE_H_

#include <string>
#include <vector>

#include "base/status.h"

namespace hypo {

/// Tape symbols and control states are small dense integers; symbol 0 is
/// the blank `b`.
constexpr int kBlank = 0;

/// One element of a (non-deterministic) transition relation, in the
/// paper's §5.1.3 machine model: a transition reads the symbol under the
/// work head and may (i) write the work tape and move the work head,
/// (ii) write the oracle tape and move the oracle head, (iii) change the
/// control state.
///
/// Semantics (mirrored exactly by the rulebase encoding): the writes land
/// on the cells under the heads *before* the moves; a move off either end
/// of the tape kills that computation branch (the encoding's NEXT atom has
/// no match). The oracle head is write-only: transitions never read the
/// oracle tape.
struct Transition {
  int state = 0;         // Control state required to fire.
  int read = kBlank;     // Work-tape symbol required under the work head.
  int next_state = 0;
  int write = kBlank;    // Symbol written at the work head.
  int move_work = 0;     // -1 left, 0 stay, +1 right.
  int oracle_write = -1; // Symbol written at the oracle head; -1 = none.
  int move_oracle = 0;   // -1, 0, +1.
};

/// A non-deterministic oracle Turing machine (one work tape, one
/// write-only oracle tape), §5.1.1's M_i.
///
/// The oracle protocol: entering `query_state` (q?) suspends the machine,
/// runs the next machine down on the current oracle-tape contents, and
/// resumes in `yes_state` or `no_state`. Machines without an oracle leave
/// query_state at -1 and never set oracle_write/move_oracle.
struct MachineSpec {
  std::string name;
  int num_states = 0;
  int num_symbols = 1;  // Alphabet size including the blank (symbol 0).
  int initial_state = 0;
  std::vector<int> accepting_states;
  int query_state = -1;  // q?; -1 if the machine uses no oracle.
  int yes_state = -1;    // q_y.
  int no_state = -1;     // q_n.
  std::vector<Transition> transitions;

  bool UsesOracle() const { return query_state >= 0; }
  bool IsAccepting(int state) const {
    for (int a : accepting_states) {
      if (a == state) return true;
    }
    return false;
  }
};

/// Structural validation shared by the simulator and the encoder:
/// state/symbol indices in range, oracle protocol states consistent, and —
/// because the oracle head is active whenever the machine runs (§5.1.4's
/// frame axiom) — every transition of an oracle-using machine must write
/// the oracle tape.
Status ValidateMachine(const MachineSpec& machine);

/// Validates a cascade M_k, ..., M_1 (index 0 is M_k, the last entry M_1):
/// each machine valid, only the last machine may omit an oracle, and every
/// oracle user has a machine below it.
Status ValidateCascade(const std::vector<MachineSpec>& machines);

}  // namespace hypo

#endif  // HYPO_TM_MACHINE_H_
