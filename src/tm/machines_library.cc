#include "tm/machines_library.h"

namespace hypo {

namespace {
constexpr int kAllSymbols[] = {kBlank, kSym0, kSym1};
}  // namespace

MachineSpec MakeFirstCellIsOneMachine() {
  MachineSpec m;
  m.name = "first-cell-is-one";
  m.num_states = 2;
  m.num_symbols = 3;
  m.initial_state = 0;
  m.accepting_states = {1};
  m.transitions.push_back(
      Transition{/*state=*/0, /*read=*/kSym1, /*next_state=*/1,
                 /*write=*/kSym1, /*move_work=*/0, /*oracle_write=*/-1,
                 /*move_oracle=*/0});
  return m;
}

MachineSpec MakeParityMachine(bool accept_even) {
  MachineSpec m;
  m.name = accept_even ? "parity-even" : "parity-odd";
  m.num_states = 3;  // 0 = even-so-far, 1 = odd-so-far, 2 = accept.
  m.num_symbols = 3;
  m.initial_state = 0;
  m.accepting_states = {2};
  for (int state : {0, 1}) {
    // '0' keeps the parity, '1' flips it; both move right.
    m.transitions.push_back(Transition{state, kSym0, state, kSym0, +1, -1, 0});
    m.transitions.push_back(
        Transition{state, kSym1, 1 - state, kSym1, +1, -1, 0});
  }
  int accepting_on_blank = accept_even ? 0 : 1;
  m.transitions.push_back(
      Transition{accepting_on_blank, kBlank, 2, kBlank, 0, -1, 0});
  return m;
}

MachineSpec MakeContainsOneMachine() {
  MachineSpec m;
  m.name = "contains-one";
  m.num_states = 2;
  m.num_symbols = 3;
  m.initial_state = 0;
  m.accepting_states = {1};
  m.transitions.push_back(Transition{0, kSym0, 0, kSym0, +1, -1, 0});
  m.transitions.push_back(Transition{0, kSym1, 1, kSym1, 0, -1, 0});
  return m;
}

MachineSpec MakeGuessMachine() {
  MachineSpec m;
  m.name = "guess";
  m.num_states = 3;  // 0 = start, 1 = accept, 2 = detour.
  m.num_symbols = 3;
  m.initial_state = 0;
  m.accepting_states = {1};
  for (int s : kAllSymbols) {
    m.transitions.push_back(Transition{0, s, 1, s, 0, -1, 0});
    m.transitions.push_back(Transition{0, s, 2, s, 0, -1, 0});
  }
  m.transitions.push_back(Transition{2, kSym1, 1, kSym1, 0, -1, 0});
  return m;
}

MachineSpec MakeAskOracleMachine(bool accept_on_yes) {
  MachineSpec m;
  m.name = accept_on_yes ? "ask-oracle-yes" : "ask-oracle-no";
  m.num_states = 5;  // 0 = start, 1 = q?, 2 = q_y, 3 = q_n, 4 = accept.
  m.num_symbols = 3;
  m.initial_state = 0;
  m.accepting_states = {4};
  m.query_state = 1;
  m.yes_state = 2;
  m.no_state = 3;
  for (int s : kAllSymbols) {
    // Copy the work symbol under the head onto the oracle tape, then ask.
    m.transitions.push_back(Transition{0, s, 1, s, 0, /*oracle_write=*/s, 0});
    int resume = accept_on_yes ? 2 : 3;
    m.transitions.push_back(Transition{resume, s, 4, s, 0, s, 0});
  }
  return m;
}

MachineSpec MakeExpectNoMachine() {
  MachineSpec m;
  m.name = "expect-no";
  m.num_states = 5;
  m.num_symbols = 3;
  m.initial_state = 0;
  m.accepting_states = {4};
  m.query_state = 1;
  m.yes_state = 2;
  m.no_state = 3;
  for (int s : kAllSymbols) {
    // Write '0' for the oracle (it will reject), then expect "no".
    m.transitions.push_back(Transition{0, s, 1, s, 0, kSym0, 0});
    m.transitions.push_back(Transition{3, s, 4, s, 0, s, 0});
  }
  return m;
}

MachineSpec MakeCopyAndAskMachine(bool accept_on_yes) {
  MachineSpec m;
  m.name = accept_on_yes ? "copy-and-ask-yes" : "copy-and-ask-no";
  m.num_states = 5;  // 0 = copy, 1 = q?, 2 = q_y, 3 = q_n, 4 = accept.
  m.num_symbols = 3;
  m.initial_state = 0;
  m.accepting_states = {4};
  m.query_state = 1;
  m.yes_state = 2;
  m.no_state = 3;
  // Copy '0'/'1' cells rightwards onto the oracle tape in lockstep.
  for (int s : {kSym0, kSym1}) {
    m.transitions.push_back(Transition{0, s, 0, s, +1, s, +1});
  }
  // First blank: stop copying and invoke the oracle.
  m.transitions.push_back(Transition{0, kBlank, 1, kBlank, 0, kBlank, 0});
  int resume = accept_on_yes ? 2 : 3;
  for (int s : kAllSymbols) {
    m.transitions.push_back(Transition{resume, s, 4, s, 0, s, 0});
  }
  return m;
}

}  // namespace hypo
