#include "tm/simulator.h"

namespace hypo {

CascadeSimulator::CascadeSimulator(std::vector<MachineSpec> machines,
                                   int tape_length, int time_bound)
    : machines_(std::move(machines)),
      tape_length_(tape_length),
      time_bound_(time_bound) {}

Status CascadeSimulator::Init() {
  HYPO_RETURN_IF_ERROR(ValidateCascade(machines_));
  if (tape_length_ <= 0 || time_bound_ <= 0) {
    return Status::InvalidArgument(
        "tape length and time bound must be positive");
  }
  initialized_ = true;
  return Status::OK();
}

StatusOr<bool> CascadeSimulator::Accepts(const std::vector<int>& input) {
  if (!initialized_) HYPO_RETURN_IF_ERROR(Init());
  if (static_cast<int>(input.size()) > tape_length_) {
    return Status::InvalidArgument("input longer than the tape");
  }
  for (int s : input) {
    if (s < 0 || s >= machines_[0].num_symbols) {
      return Status::InvalidArgument("input symbol out of range");
    }
  }
  branches_ = 0;
  std::vector<int> work(tape_length_, kBlank);
  for (size_t i = 0; i < input.size(); ++i) work[i] = input[i];
  return Run(0, &work, 0);
}

StatusOr<bool> CascadeSimulator::Run(size_t index, std::vector<int>* work,
                                     int start_time) {
  const MachineSpec& m = machines_[index];
  std::vector<int> oracle(tape_length_, kBlank);
  return Search(index, work, &oracle, m.initial_state, 0, 0, start_time);
}

StatusOr<bool> CascadeSimulator::Search(size_t index, std::vector<int>* work,
                                        std::vector<int>* oracle, int state,
                                        int work_head, int oracle_head,
                                        int time) {
  const MachineSpec& m = machines_[index];
  if (++branches_ > max_branches_) {
    return Status::ResourceExhausted("simulator exceeded max_branches");
  }
  if (m.IsAccepting(state)) return true;

  // The oracle protocol: suspend, run the machine below on a copy of the
  // oracle tape, resume in q_y / q_n one tick later.
  if (m.UsesOracle() && state == m.query_state) {
    if (time + 1 >= time_bound_) return false;  // No tick left to resume.
    std::vector<int> oracle_input = *oracle;
    HYPO_ASSIGN_OR_RETURN(bool answer, Run(index + 1, &oracle_input, time));
    int resume = answer ? m.yes_state : m.no_state;
    return Search(index, work, oracle, resume, work_head, oracle_head,
                  time + 1);
  }

  if (time + 1 >= time_bound_) return false;  // Out of clock.
  int read = (*work)[work_head];
  for (const Transition& t : m.transitions) {
    if (t.state != state || t.read != read) continue;
    int new_work_head = work_head + t.move_work;
    int new_oracle_head = oracle_head + t.move_oracle;
    if (new_work_head < 0 || new_work_head >= tape_length_) continue;
    if (new_oracle_head < 0 || new_oracle_head >= tape_length_) continue;

    // Writes land before the moves; remember old symbols for backtracking.
    int old_work_symbol = (*work)[work_head];
    (*work)[work_head] = t.write;
    int old_oracle_symbol = -1;
    if (t.oracle_write >= 0) {
      old_oracle_symbol = (*oracle)[oracle_head];
      (*oracle)[oracle_head] = t.oracle_write;
    }

    StatusOr<bool> r = Search(index, work, oracle, t.next_state,
                              new_work_head, new_oracle_head, time + 1);

    (*work)[work_head] = old_work_symbol;
    if (old_oracle_symbol >= 0) (*oracle)[oracle_head] = old_oracle_symbol;

    HYPO_RETURN_IF_ERROR(r.status());
    if (*r) return true;
  }
  return false;
}

}  // namespace hypo
